#!/usr/bin/env python3
"""Validate an mpsm trace export and Prometheus metrics dump (CI leg).

Usage: check_trace.py TRACE_JSON METRICS_TXT [--coverage FRACTION]

Checks (docs/observability.md):
  1. The trace is well-formed Chrome trace_event JSON: a traceEvents
     list of X (complete), i (instant), and M (metadata) events with
     the fields Perfetto needs (name/cat/ph/pid/tid, ts+dur on spans).
  2. Spans nest per thread: two spans on one tid are either disjoint
     or one contains the other (no partial overlap) — the invariant a
     flame view depends on.
  3. Coverage: the union of non-root spans covers at least --coverage
     (default 0.95) of the root "query" span's wall time, i.e. the
     trace accounts for where the query went.
  4. The metrics dump is Prometheus text exposition with every
     expected family: admission/lane (service), engine, pool, cache,
     and io.

Exit 0 when all checks pass; prints each failure and exits 1 otherwise.
"""

import argparse
import json
import sys

REQUIRED_EVENT_KEYS = {"name", "ph", "pid", "tid"}
VALID_PHASES = {"X", "i", "M"}

# One representative per exported family; prefix match.
REQUIRED_METRIC_FAMILIES = [
    "mpsm_service_submitted_total",      # admission
    "mpsm_service_admission_wait_ns",    # admission latency
    "mpsm_service_lane_queries_total",   # per-lane throughput
    "mpsm_engine_queries_total",
    "mpsm_pool_",
    "mpsm_cache_",
    "mpsm_io_",
]

# Span ends are recorded with independent clock reads; allow this much
# partial overlap (microseconds) before calling nesting broken.
NESTING_TOLERANCE_US = 5.0


def fail(errors, message):
    errors.append(message)
    print(f"FAIL: {message}", file=sys.stderr)


def check_trace(path, coverage_floor, errors):
    with open(path) as f:
        trace = json.load(f)
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(errors, f"{path}: no traceEvents list")
        return

    spans_by_tid = {}
    root = None
    for i, event in enumerate(events):
        missing = REQUIRED_EVENT_KEYS - event.keys()
        if missing:
            fail(errors, f"{path}: event {i} missing {sorted(missing)}")
            continue
        if event["ph"] not in VALID_PHASES:
            fail(errors, f"{path}: event {i} has phase {event['ph']!r}")
            continue
        if event["ph"] == "M":
            continue
        if "cat" not in event or "ts" not in event:
            fail(errors, f"{path}: event {i} ({event['name']}) lacks cat/ts")
            continue
        if event["ph"] == "X":
            if "dur" not in event:
                fail(errors, f"{path}: span {i} ({event['name']}) lacks dur")
                continue
            spans_by_tid.setdefault(event["tid"], []).append(event)
            if event["name"] == "query" and event["cat"] == "query":
                root = event
    print(f"{path}: {len(events)} events, "
          f"{sum(len(s) for s in spans_by_tid.values())} spans on "
          f"{len(spans_by_tid)} threads")

    # 2. Nesting per tid: sweep by start; every span must close before
    # any enclosing span does (tolerance for clock-read skew).
    for tid, spans in spans_by_tid.items():
        spans.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack = []
        for span in spans:
            start, end = span["ts"], span["ts"] + span["dur"]
            while stack and stack[-1][1] <= start + NESTING_TOLERANCE_US:
                stack.pop()
            if stack and end > stack[-1][1] + NESTING_TOLERANCE_US:
                fail(errors,
                     f"{path}: tid {tid}: span '{span['name']}' "
                     f"[{start:.1f}, {end:.1f}] partially overlaps "
                     f"'{stack[-1][0]}' ending {stack[-1][1]:.1f}")
            stack.append((span["name"], end))

    # 3. Coverage of the root query span by everything beneath it.
    if root is None:
        fail(errors, f"{path}: no root 'query' span")
        return
    q_start, q_end = root["ts"], root["ts"] + root["dur"]
    intervals = []
    for spans in spans_by_tid.values():
        for span in spans:
            if span is root:
                continue
            lo = max(span["ts"], q_start)
            hi = min(span["ts"] + span["dur"], q_end)
            if hi > lo:
                intervals.append((lo, hi))
    intervals.sort()
    covered = 0.0
    cursor = q_start
    for lo, hi in intervals:
        if hi <= cursor:
            continue
        covered += hi - max(lo, cursor)
        cursor = hi
    fraction = covered / root["dur"] if root["dur"] > 0 else 0.0
    print(f"{path}: span coverage {fraction:.1%} of the query span "
          f"({root['dur'] / 1e3:.1f} ms)")
    if fraction < coverage_floor:
        fail(errors,
             f"{path}: coverage {fraction:.1%} below the "
             f"{coverage_floor:.0%} floor")


def check_metrics(path, errors):
    with open(path) as f:
        text = f.read()
    families = set()
    for line in text.splitlines():
        if not line or line.startswith("#"):
            # "# HELP name ..." / "# TYPE name counter|gauge|summary"
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                if parts[3] not in ("counter", "gauge", "summary"):
                    fail(errors, f"{path}: bad TYPE line: {line}")
            continue
        name = line.split("{")[0].split()[0]
        if len(line.split()) < 2:
            fail(errors, f"{path}: sample without value: {line}")
        families.add(name)
    print(f"{path}: {len(families)} metric series names")
    for required in REQUIRED_METRIC_FAMILIES:
        if not any(name.startswith(required) for name in families):
            fail(errors, f"{path}: missing metric family {required}*")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace_json")
    parser.add_argument("metrics_txt")
    parser.add_argument("--coverage", type=float, default=0.95)
    args = parser.parse_args()

    errors = []
    check_trace(args.trace_json, args.coverage, errors)
    check_metrics(args.metrics_txt, errors)
    if errors:
        print(f"{len(errors)} check(s) failed", file=sys.stderr)
        return 1
    print("all trace/metrics checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

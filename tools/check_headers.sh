#!/usr/bin/env bash
# Header self-containment check: every public header under src/ must
# compile as the sole include of a translation unit. Run from the repo
# root; any compiler (CXX env var) with -fsyntax-only works.
set -u
cd "$(dirname "$0")/.."

CXX="${CXX:-g++}"
failures=0
checked=0

while IFS= read -r header; do
  rel="${header#src/}"
  if ! printf '#include "%s"\n' "$rel" |
      "$CXX" -std=c++20 -fsyntax-only -Wall -Wextra -Isrc -x c++ - ; then
    echo "NOT SELF-CONTAINED: $header" >&2
    failures=$((failures + 1))
  fi
  checked=$((checked + 1))
done < <(find src -name '*.h' | sort)

echo "checked $checked headers, $failures failure(s)"
exit $((failures > 0))

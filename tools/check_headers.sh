#!/usr/bin/env bash
# Header self-containment check: every public header under src/ must
# compile as the sole include of a translation unit. Run from the repo
# root; any compiler (CXX env var) with -fsyntax-only works.
set -u
cd "$(dirname "$0")/.."

CXX="${CXX:-g++}"
failures=0
checked=0

while IFS= read -r header; do
  rel="${header#src/}"
  if ! printf '#include "%s"\n' "$rel" |
      "$CXX" -std=c++20 -fsyntax-only -Wall -Wextra -Isrc -x c++ - ; then
    echo "NOT SELF-CONTAINED: $header" >&2
    failures=$((failures + 1))
  fi
  checked=$((checked + 1))
done < <(find src -name '*.h' | sort)

# The simd headers carry per-function target attributes and must stay
# self-contained when the same ISAs are enabled globally too (the CI
# -mavx2 build leg); gate them under the widest flags the compiler has.
if printf 'int main(){}' |
    "$CXX" -std=c++20 -mavx2 -mavx512f -fsyntax-only -x c++ - 2>/dev/null; then
  while IFS= read -r header; do
    rel="${header#src/}"
    if ! printf '#include "%s"\n' "$rel" |
        "$CXX" -std=c++20 -mavx2 -mavx512f -fsyntax-only -Wall -Wextra \
            -Isrc -x c++ - ; then
      echo "NOT SELF-CONTAINED (with -mavx2 -mavx512f): $header" >&2
      failures=$((failures + 1))
    fi
    checked=$((checked + 1))
  done < <(find src/simd -name '*.h' | sort)
else
  echo "(compiler lacks -mavx2/-mavx512f; skipping the simd ISA pass)"
fi

echo "checked $checked headers, $failures failure(s)"
exit $((failures > 0))

#!/usr/bin/env bash
# Crash-injection sweep: run example_crash_resume_join (SIGKILL after
# the Nth durable manifest commit, then Engine::Resume, verified
# against the reference oracle) across every async I/O backend. The
# uring leg self-skips on hosts without io_uring support.
#
#   tools/crash_harness/run.sh [path-to-build-dir]
#
# Exit 0 only when every backend's full kill-point sweep resumed to the
# exact answer with completed chunks skipped. CI runs this on both
# io-backend matrix rows (.github/workflows/ci.yml).
set -u
cd "$(dirname "$0")/../.."

BUILD_DIR="${1:-build}"
HARNESS="$BUILD_DIR/example_crash_resume_join"
if [[ ! -x "$HARNESS" ]]; then
  echo "crash harness binary not found: $HARNESS (build the examples first)"
  exit 2
fi

failures=0
for backend in sync threadpool uring; do
  echo "=== crash sweep: $backend ==="
  if ! "$HARNESS" "$backend"; then
    echo "=== crash sweep FAILED: $backend ==="
    failures=$((failures + 1))
  fi
done

if [[ "$failures" -ne 0 ]]; then
  echo "crash harness: $failures backend sweep(s) failed"
  exit 1
fi
echo "crash harness: all backend sweeps passed"

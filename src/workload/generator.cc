#include "workload/generator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace mpsm::workload {

uint64_t DrawKey(KeyDistribution distribution, uint64_t domain,
                 Xoshiro256& rng) {
  assert(domain > 0);
  switch (distribution) {
    case KeyDistribution::kUniform:
      return rng.NextBounded(domain);
    case KeyDistribution::kSkewLowEnd: {
      // 80% of the keys fall into the low 20% of the domain.
      const uint64_t band = std::max<uint64_t>(1, domain / 5);
      if (rng.NextDouble() < 0.8) return rng.NextBounded(band);
      return band + rng.NextBounded(std::max<uint64_t>(1, domain - band));
    }
    case KeyDistribution::kSkewHighEnd: {
      const uint64_t band = std::max<uint64_t>(1, domain / 5);
      const uint64_t low_span = domain > band ? domain - band : 1;
      if (rng.NextDouble() < 0.8) {
        return low_span + rng.NextBounded(band);
      }
      return rng.NextBounded(low_span);
    }
  }
  return 0;
}

namespace {

/// Payloads stay below 2^32 so payload sums never overflow 64 bits.
uint64_t DrawPayload(Xoshiro256& rng) {
  return rng.Next() & 0xFFFFFFFFull;
}

void FillRelation(Relation& rel, KeyDistribution distribution,
                  uint64_t domain, uint64_t seed) {
  for (uint32_t c = 0; c < rel.num_chunks(); ++c) {
    // Independent stream per chunk: deterministic regardless of chunk
    // count/iteration order.
    Xoshiro256 rng(seed ^ (0x517CC1B727220A95ull * (c + 1)));
    Chunk& chunk = rel.chunk(c);
    for (size_t i = 0; i < chunk.size; ++i) {
      chunk.data[i] = Tuple{DrawKey(distribution, domain, rng),
                            DrawPayload(rng)};
    }
  }
}

void FillForeignKey(Relation& s, const std::vector<uint64_t>& r_keys,
                    uint64_t seed) {
  for (uint32_t c = 0; c < s.num_chunks(); ++c) {
    Xoshiro256 rng(seed ^ (0xA24BAED4963EE407ull * (c + 1)));
    Chunk& chunk = s.chunk(c);
    for (size_t i = 0; i < chunk.size; ++i) {
      const uint64_t key = r_keys.empty()
                               ? rng.Next()
                               : r_keys[rng.NextBounded(r_keys.size())];
      chunk.data[i] = Tuple{key, DrawPayload(rng)};
    }
  }
}

/// Rearranges S into global (rough) key order: tuples sorted by key are
/// dealt into chunks front to back, then each chunk is shuffled
/// internally — "small to large join key order, no total order" (§5.5).
void ApplyKeyOrderedArrangement(Relation& s, uint64_t seed) {
  std::vector<Tuple> all = s.ToVector();
  std::sort(all.begin(), all.end(), TupleKeyLess{});
  size_t offset = 0;
  for (uint32_t c = 0; c < s.num_chunks(); ++c) {
    Chunk& chunk = s.chunk(c);
    std::copy(all.begin() + offset, all.begin() + offset + chunk.size,
              chunk.data);
    offset += chunk.size;
    Xoshiro256 rng(seed ^ (0x2545F4914F6CDD1Dull * (c + 1)));
    std::shuffle(chunk.begin(), chunk.end(), rng);
  }
}

}  // namespace

Dataset Generate(const numa::Topology& topology, uint32_t num_chunks,
                 const DatasetSpec& spec) {
  Dataset dataset;
  const size_t s_tuples = static_cast<size_t>(
      std::llround(spec.multiplicity * static_cast<double>(spec.r_tuples)));

  dataset.r = Relation::Allocate(topology, spec.r_tuples, num_chunks);
  dataset.s = Relation::Allocate(topology, s_tuples, num_chunks);

  FillRelation(dataset.r, spec.r_distribution, spec.key_domain, spec.seed);

  if (spec.s_mode == SKeyMode::kForeignKey) {
    std::vector<uint64_t> r_keys;
    r_keys.reserve(spec.r_tuples);
    for (uint32_t c = 0; c < dataset.r.num_chunks(); ++c) {
      const Chunk& chunk = dataset.r.chunk(c);
      for (size_t i = 0; i < chunk.size; ++i) {
        r_keys.push_back(chunk.data[i].key);
      }
    }
    FillForeignKey(dataset.s, r_keys, spec.seed + 1);
  } else {
    FillRelation(dataset.s, spec.s_distribution, spec.key_domain,
                 spec.seed + 1);
  }

  if (spec.s_arrangement == Arrangement::kKeyOrdered) {
    ApplyKeyOrderedArrangement(dataset.s, spec.seed + 2);
  }
  return dataset;
}

}  // namespace mpsm::workload

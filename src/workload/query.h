// The paper's benchmark query harness (§5.1):
//
//   SELECT max(R.payload + S.payload)
//   FROM R, S WHERE R.joinkey = S.joinkey
//
// One entry point runs the query with any of the implemented join
// algorithms, so tests and benches compare like for like. The harness
// runs exclusively through mpsm::engine::Engine (the library's front
// door): each call forces one algorithm onto the planner and returns
// the executed plan alongside the answer.
#pragma once

#include <optional>

#include "core/join_stats.h"
#include "core/join_types.h"
#include "engine/engine.h"
#include "storage/relation.h"
#include "util/status.h"

namespace mpsm::workload {

/// Join algorithms the harness can dispatch to — the engine's own
/// enum, so harness and engine can never drift apart.
using Algorithm = engine::Algorithm;

/// Harness display name; differs from engine::AlgorithmName only in
/// flagging the radix join as the Vectorwise stand-in ("radix (vw)").
const char* AlgorithmName(Algorithm algorithm);

/// The query's answer plus the engine's full execution report (plan,
/// measured phases, counters, variant diagnostics, trace when enabled
/// — serializable with report.ToJson()).
struct QueryResult {
  std::optional<uint64_t> max_sum;  // nullopt for an empty join
  engine::JoinReport report;

  /// Shorthands into the report.
  const JoinRunInfo& info() const { return report.info; }
  const engine::JoinPlan& plan() const { return report.plan; }
};

/// Runs the benchmark query on `engine`'s session. `r` plays the
/// private/build role, `s` the public/probe role (callers decide role
/// reversal by swapping). `options` carries the MPSM-variant knobs
/// (ignored for the hash baselines, which keep their own defaults,
/// matching the historical harness behavior).
Result<QueryResult> RunBenchmarkQuery(Algorithm algorithm,
                                      engine::Engine& engine,
                                      const Relation& r, const Relation& s,
                                      const MpsmOptions& options = {});

}  // namespace mpsm::workload

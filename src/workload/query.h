// The paper's benchmark query harness (§5.1):
//
//   SELECT max(R.payload + S.payload)
//   FROM R, S WHERE R.joinkey = S.joinkey
//
// One entry point runs the query with any of the implemented join
// algorithms, so tests and benches compare like for like.
#pragma once

#include <optional>

#include "core/join_stats.h"
#include "core/join_types.h"
#include "parallel/worker_team.h"
#include "storage/relation.h"
#include "util/status.h"

namespace mpsm::workload {

/// Join algorithms the harness can dispatch to.
enum class Algorithm : uint8_t {
  kPMpsm,      // range-partitioned MPSM (the paper's flagship)
  kBMpsm,      // basic MPSM
  kWisconsin,  // no-partition hash join baseline
  kRadix,      // radix hash join baseline (Vectorwise stand-in)
};

/// Display name ("p-mpsm", "wisconsin", ...).
const char* AlgorithmName(Algorithm algorithm);

/// The query's answer plus execution statistics.
struct QueryResult {
  std::optional<uint64_t> max_sum;  // nullopt for an empty join
  JoinRunInfo info;
};

/// Runs the benchmark query. `r` plays the private/build role, `s` the
/// public/probe role (callers decide role reversal by swapping).
Result<QueryResult> RunBenchmarkQuery(Algorithm algorithm, WorkerTeam& team,
                                      const Relation& r, const Relation& s,
                                      const MpsmOptions& options = {});

}  // namespace mpsm::workload

#include "workload/query.h"

namespace mpsm::workload {

const char* AlgorithmName(Algorithm algorithm) {
  if (algorithm == Algorithm::kRadix) return "radix (vw)";
  return engine::AlgorithmName(algorithm);
}

Result<QueryResult> RunBenchmarkQuery(Algorithm algorithm,
                                      engine::Engine& engine,
                                      const Relation& r, const Relation& s,
                                      const MpsmOptions& options) {
  // Per-query knob override: the harness MpsmOptions map onto the
  // engine's canonical knobs for the MPSM variants; the hash baselines
  // keep their own defaults (e.g. the radix join's stealing scheduler).
  engine::EngineOptions query_options = engine.options();
  query_options.force_algorithm.reset();
  const bool mpsm_family = algorithm == Algorithm::kPMpsm ||
                           algorithm == Algorithm::kBMpsm ||
                           algorithm == Algorithm::kDMpsm;
  if (mpsm_family) {
    query_options.scheduler = options.scheduler;
    query_options.sort = options.sort;
    query_options.sort_config = options.sort_config;
    query_options.scatter = options.scatter;
    query_options.merge_prefetch_distance = options.merge_prefetch_distance;
    query_options.morsel_tuples = options.morsel_tuples;
    query_options.simd = options.simd;
    query_options.mpsm.radix_bits = options.radix_bits;
    query_options.mpsm.equi_height_factor = options.equi_height_factor;
    query_options.mpsm.start_search = options.start_search;
    query_options.mpsm.cost_balanced_splitters =
        options.cost_balanced_splitters;
    query_options.mpsm.phase_barriers = options.phase_barriers;
    query_options.mpsm.merge_skip_private_prefix =
        options.merge_skip_private_prefix;
  }

  engine::JoinSpec spec;
  spec.r = &r;
  spec.s = &s;
  spec.kind = options.kind;
  spec.algorithm = algorithm;
  spec.options = &query_options;

  MaxPayloadSumFactory consumers(engine.TeamSizeFor(spec));
  spec.consumers = &consumers;

  MPSM_ASSIGN_OR_RETURN(engine::JoinReport report, engine.Execute(spec));

  QueryResult result;
  result.max_sum = consumers.Result();
  result.report = std::move(report);
  return result;
}

}  // namespace mpsm::workload

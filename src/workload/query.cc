#include "workload/query.h"

#include "baseline/radix_join.h"
#include "baseline/wisconsin_join.h"
#include "core/b_mpsm.h"
#include "core/consumers.h"
#include "core/p_mpsm.h"

namespace mpsm::workload {

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kPMpsm:
      return "p-mpsm";
    case Algorithm::kBMpsm:
      return "b-mpsm";
    case Algorithm::kWisconsin:
      return "wisconsin";
    case Algorithm::kRadix:
      return "radix (vw)";
  }
  return "unknown";
}

Result<QueryResult> RunBenchmarkQuery(Algorithm algorithm, WorkerTeam& team,
                                      const Relation& r, const Relation& s,
                                      const MpsmOptions& options) {
  MaxPayloadSumFactory consumers(team.size());

  Result<JoinRunInfo> info = Status::Internal("unreachable");
  switch (algorithm) {
    case Algorithm::kPMpsm:
      info = PMpsmJoin(options).Execute(team, r, s, consumers);
      break;
    case Algorithm::kBMpsm:
      info = BMpsmJoin(options).Execute(team, r, s, consumers);
      break;
    case Algorithm::kWisconsin:
      info = baseline::WisconsinHashJoin().Execute(team, r, s, consumers);
      break;
    case Algorithm::kRadix:
      info = baseline::RadixHashJoin().Execute(team, r, s, consumers);
      break;
  }
  if (!info.ok()) return info.status();

  QueryResult result;
  result.max_sum = consumers.Result();
  result.info = std::move(info).value();
  return result;
}

}  // namespace mpsm::workload

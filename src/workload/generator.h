// Workload generators for the paper's evaluation scenarios (§5.1).
//
// Datasets are pairs (R, S) of join relations: |R| fixed, |S| =
// multiplicity * |R|, keys 64-bit in [0, 2^32), payloads 64-bit.
// Variants: uniform keys, foreign-key S (every S tuple joins), 80:20
// skew at either end of the domain (Figure 16's negatively correlated
// pair), and location skew (S arranged in rough key order, §5.5).
#pragma once

#include <cstdint>

#include "numa/topology.h"
#include "storage/relation.h"
#include "util/rng.h"

namespace mpsm::workload {

/// Key distributions for generated relations.
enum class KeyDistribution : uint8_t {
  kUniform,      // uniform over the domain
  kSkewLowEnd,   // 80% of keys in the low 20% of the domain
  kSkewHighEnd,  // 80% of keys in the high 20% of the domain
};

/// How S keys relate to R keys.
enum class SKeyMode : uint8_t {
  /// S keys drawn independently from the same domain/distribution.
  kIndependent,
  /// Foreign-key style: each S key is the key of a random R tuple
  /// (every S tuple has exactly |matching R tuples| partners).
  kForeignKey,
};

/// Physical arrangement of S (location skew, §5.5).
enum class Arrangement : uint8_t {
  kShuffled,     // no location skew (the default in all experiments)
  kKeyOrdered,   // extreme location skew: S globally arranged small ->
                 // large so Ri's partners concentrate in one Sj
                 // (clusters still unsorted internally)
};

/// Full dataset specification.
struct DatasetSpec {
  size_t r_tuples = 1u << 20;
  double multiplicity = 4.0;        // |S| = multiplicity * |R|
  uint64_t key_domain = uint64_t{1} << 32;
  KeyDistribution r_distribution = KeyDistribution::kUniform;
  KeyDistribution s_distribution = KeyDistribution::kUniform;
  SKeyMode s_mode = SKeyMode::kForeignKey;
  Arrangement s_arrangement = Arrangement::kShuffled;
  uint64_t seed = 42;
};

/// A generated join workload.
struct Dataset {
  Relation r;
  Relation s;
};

/// Generates the dataset chunked into `num_chunks` chunks per relation
/// (one per worker) placed on `topology`.
Dataset Generate(const numa::Topology& topology, uint32_t num_chunks,
                 const DatasetSpec& spec);

/// Draws one key from `distribution` over [0, domain).
uint64_t DrawKey(KeyDistribution distribution, uint64_t domain,
                 Xoshiro256& rng);

}  // namespace mpsm::workload

#include "parallel/worker_team.h"

#include <chrono>
#include <thread>

#include "numa/affinity.h"
#include "parallel/donation.h"

namespace mpsm {

namespace {
double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

PhaseScope::PhaseScope(WorkerContext& ctx, JoinPhase phase)
    : ctx_(ctx), phase_(phase), start_seconds_(NowSeconds()) {}

PhaseScope::~PhaseScope() {
  ctx_.stats->phase_seconds[phase_] += NowSeconds() - start_seconds_;
}

WorkerTeam::WorkerTeam(const numa::Topology& topology, uint32_t team_size)
    : topology_(&topology),
      team_size_(team_size),
      barrier_(team_size),
      stats_(team_size) {
  arenas_.reserve(team_size);
  for (uint32_t w = 0; w < team_size; ++w) {
    arenas_.push_back(std::make_unique<numa::Arena>(
        topology.NodeForWorker(w, team_size)));
  }
}

WorkerTeam::~WorkerTeam() = default;

void WorkerTeam::set_donation(DonationPool* pool) {
  donation_ = pool;
  donation_session_ = pool == nullptr ? 0 : pool->RegisterSession();
}

void WorkerTeam::Run(const std::function<void(WorkerContext&)>& job) {
  for (auto& stats : stats_) stats = WorkerStats{};

  std::vector<std::thread> threads;
  threads.reserve(team_size_);
  for (uint32_t w = 0; w < team_size_; ++w) {
    threads.emplace_back([this, w, &job] {
      WorkerContext ctx;
      ctx.worker_id = w;
      ctx.team_size = team_size_;
      ctx.core = topology_->CoreForWorker(w, team_size_);
      ctx.node = topology_->NodeOfCore(ctx.core);
      ctx.barrier = &barrier_;
      ctx.stats = &stats_[w];
      ctx.arena = arenas_[w].get();
      ctx.topology = topology_;
      // Pinning is advisory: on the development VM the simulated cores
      // exceed the physical ones and the pin is skipped.
      numa::PinCurrentThreadToCore(ctx.core);
      obs::ScopedTraceThread trace_scope(trace_, "worker", w);
      job(ctx);
    });
  }
  for (auto& thread : threads) thread.join();
}

WorkerStats WorkerTeam::AggregateStats() const {
  WorkerStats total;
  for (const auto& stats : stats_) total += stats;
  return total;
}

double WorkerTeam::CriticalPathSeconds() const {
  double total = 0;
  for (uint32_t p = 0; p < kNumJoinPhases; ++p) {
    double slowest = 0;
    for (const auto& stats : stats_) {
      slowest = std::max(slowest, stats.phase_seconds[p]);
    }
    total += slowest;
  }
  return total;
}

}  // namespace mpsm

#include "parallel/barrier.h"

namespace mpsm {

Barrier::Barrier(uint32_t participants) : participants_(participants) {}

bool Barrier::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  const uint64_t my_generation = generation_;
  if (++arrived_ == participants_) {
    arrived_ = 0;
    ++generation_;
    cv_.notify_all();
    return true;
  }
  cv_.wait(lock, [&] { return generation_ != my_generation; });
  return false;
}

bool Barrier::OthersArriving() const {
  std::unique_lock<std::mutex> lock(mu_);
  return arrived_ + 1 < participants_;
}

}  // namespace mpsm

// SchedulerKind enum, split from task_scheduler.h so option structs can
// name the knob without pulling in the scheduler machinery (atomics,
// std::function pipelines) — same pattern as partition/scatter_kind.h.
#pragma once

#include <cstdint>

namespace mpsm {

/// How a join's phases are orchestrated across the worker team.
enum class SchedulerKind : uint8_t {
  kStatic,    // the paper's fixed per-worker phase scripts
  kStealing,  // morsel-driven tasks with NUMA-aware work stealing
};

/// Name of a SchedulerKind ("static", "stealing").
const char* SchedulerKindName(SchedulerKind kind);

}  // namespace mpsm

#include "parallel/donation.h"

#include <thread>

#include "obs/metrics.h"

namespace mpsm {

DonationPool::DonationPool(uint32_t max_entries)
    : max_entries_(max_entries == 0 ? 1 : max_entries),
      entries_(new Entry[max_entries == 0 ? 1 : max_entries]) {}

DonationPool::~DonationPool() = default;

uint64_t DonationPool::RegisterSession() {
  std::lock_guard<std::mutex> lock(mu_);
  ++sessions_registered_;
  return next_session_++;
}

DonationPool::Ticket DonationPool::Publish(
    uint64_t session, TaskScheduler* scheduler,
    const std::function<void(WorkerContext&, const Morsel&)>* body,
    const numa::Topology* topology, uint32_t team_size) {
  std::lock_guard<std::mutex> lock(mu_);
  for (uint32_t i = 0; i < max_entries_; ++i) {
    Entry& entry = entries_[i];
    if (entry.open.load(std::memory_order_relaxed) ||
        entry.in_flight.load(std::memory_order_relaxed) != 0 ||
        entry.scheduler != nullptr) {
      continue;
    }
    entry.session = session;
    entry.scheduler = scheduler;
    entry.body = body;
    entry.topology = topology;
    entry.team_size = team_size;
    // Worker 0 of the owner team publishes from inside its query, so
    // its current sink IS the owner query's trace.
    entry.trace = obs::CurrentTraceSink();
    const uint64_t generation = next_generation_++;
    entry.generation.store(generation, std::memory_order_relaxed);
    // The release makes scheduler/body visible to guests that observe
    // open == true.
    entry.open.store(true, std::memory_order_release);
    ++phases_published_;
    return Ticket{static_cast<int>(i), generation};
  }
  return Ticket{};  // pool full: phase simply runs undonated
}

void DonationPool::Close(Ticket ticket) {
  if (ticket.slot < 0 ||
      static_cast<uint32_t>(ticket.slot) >= max_entries_) {
    return;
  }
  Entry& entry = entries_[ticket.slot];
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (entry.generation.load(std::memory_order_relaxed) !=
        ticket.generation) {
      return;  // already closed and re-published by someone else
    }
    entry.open.store(false, std::memory_order_release);
  }
  // Wait until no guest is mid-morsel: the acquire pairs with the
  // guest's release decrement, so every donated morsel's products are
  // visible to the host team when Close returns.
  while (entry.in_flight.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (entry.generation.load(std::memory_order_relaxed) == ticket.generation) {
    entry.scheduler = nullptr;
    entry.body = nullptr;
    entry.topology = nullptr;
    entry.trace = nullptr;
  }
}

bool DonationPool::TryHelp(uint64_t session, numa::NodeId guest_node,
                           uint32_t donor_lane) {
  for (uint32_t i = 0; i < max_entries_; ++i) {
    Entry& entry = entries_[i];
    if (!entry.open.load(std::memory_order_acquire)) continue;
    if (entry.session == session) continue;
    entry.in_flight.fetch_add(1, std::memory_order_acq_rel);
    // Re-check under the in-flight guard: Close observes either our
    // increment (and waits for us) or our bail-out below.
    if (!entry.open.load(std::memory_order_acquire)) {
      entry.in_flight.fetch_sub(1, std::memory_order_release);
      continue;
    }
    // Synthetic guest context: claims and bodies of guest-safe phases
    // use only node (queue choice / locality classification), stats
    // (counter sink) and team_size. worker_id == team_size is a
    // sentinel no guest-safe body may index with.
    WorkerStats scratch;
    WorkerContext guest;
    guest.worker_id = entry.team_size;
    guest.team_size = entry.team_size;
    guest.node = entry.topology == nullptr
                     ? 0
                     : guest_node % entry.topology->num_nodes();
    guest.stats = &scratch;
    guest.topology = entry.topology;
    const Morsel* morsel =
        entry.scheduler->Claim(guest, scratch.phase_counters[kPhaseJoin]);
    if (morsel == nullptr) {
      entry.in_flight.fetch_sub(1, std::memory_order_release);
      continue;
    }
    // The same work is attributed twice: a span in the *owner* query's
    // trace (the guest thread gets its own ring there, labeled
    // "guest") and a mirror span in the donor's own trace naming the
    // owner query it helped.
    obs::TraceSink* donor_sink = obs::CurrentTraceSink();
    if (entry.trace != nullptr) {
      entry.trace->LabelThread("guest", static_cast<uint32_t>(session));
    }
    const int64_t owner_start =
        entry.trace != nullptr ? entry.trace->NowNs() : 0;
    const int64_t donor_start =
        donor_sink != nullptr ? donor_sink->NowNs() : 0;
    const uint64_t owner_query =
        entry.trace != nullptr ? entry.trace->query_id() : 0;
    (*entry.body)(guest, *morsel);
    if (entry.trace != nullptr) {
      entry.trace->RecordSpan(obs::kCatDonation, "morsel.donated", owner_start,
                              entry.trace->NowNs() - owner_start, "donor_lane",
                              donor_lane, "donor_session", session);
    }
    if (donor_sink != nullptr) {
      donor_sink->RecordSpan(obs::kCatDonation, "donation.help", donor_start,
                             donor_sink->NowNs() - donor_start, "owner_query",
                             owner_query, "donor_lane", donor_lane);
    }
    static obs::Counter& donated_counter = obs::MetricsRegistry::Global().counter(
        "mpsm_service_donated_morsels_total",
        "Morsels executed by guest workers of other sessions");
    donated_counter.Add(1);
    morsels_donated_.fetch_add(1, std::memory_order_relaxed);
    entry.in_flight.fetch_sub(1, std::memory_order_release);
    return true;
  }
  return false;
}

DonationPool::Stats DonationPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.sessions_registered = sessions_registered_;
  stats.phases_published = phases_published_;
  stats.morsels_donated = morsels_donated_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace mpsm

// Cross-session worker donation: the elastic-teams layer.
//
// The TaskScheduler already steals morsels across NUMA nodes *within*
// one session's team. A DonationPool extends that stealing across
// sessions: while a team runs a guest-safe stealing phase, the phase's
// scheduler is published to the pool, and workers of *other* sessions
// that would otherwise idle at a PhasePipeline barrier claim and
// execute its morsels instead. A lone small query thus no longer
// strands the machine while a big sort saturates another session.
//
// Safety contract:
//  - Only phases whose bodies key all state off morsel.task (never off
//    ctx.worker_id) may be published; PhasePipeline enforces this via
//    PhaseOptions::guest_safe, and only stealing-kind schedulers are
//    eligible (a static scheduler indexes queues by worker id).
//  - A guest runs under a synthetic WorkerContext (its own node, a
//    scratch stats sink, worker_id == host team size as a sentinel, no
//    barrier); donated work's counters are aggregated pool-side, not
//    into the host session's per-worker stats (docs/service.md).
//  - Before the host team passes the phase's closing barrier, worker 0
//    closes the publication and waits until no guest is mid-morsel, so
//    phase products are complete and visible (release/acquire on the
//    in-flight count) when the next phase reads them.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>

#include "obs/trace.h"
#include "parallel/counters.h"
#include "parallel/task_scheduler.h"

namespace mpsm {

/// A registry of currently published (session, scheduler, body) phase
/// entries that idle workers of other sessions poll via TryHelp.
/// Thread-safe; one pool is shared by all sessions of a JoinService.
class DonationPool {
 public:
  /// Identifies one Publish so Close cannot clear a slot that was
  /// re-published by another session in the meantime.
  struct Ticket {
    int slot = -1;
    uint64_t generation = 0;
  };

  struct Stats {
    uint64_t sessions_registered = 0;
    uint64_t phases_published = 0;
    uint64_t morsels_donated = 0;
  };

  explicit DonationPool(uint32_t max_entries = 32);
  ~DonationPool();

  DonationPool(const DonationPool&) = delete;
  DonationPool& operator=(const DonationPool&) = delete;

  /// Returns a fresh session id (each WorkerTeam participating in
  /// donation gets one; guests never help their own session).
  uint64_t RegisterSession();

  /// Publishes a phase: guests may now claim from `scheduler` and run
  /// `body`. Returns an invalid Ticket (slot -1) when the pool is full
  /// — publication is best-effort. `scheduler` and `body` must stay
  /// valid until Close returns. The publisher's current trace sink
  /// (obs/trace.h) is captured so guest-executed morsels appear in the
  /// *owner* query's trace instead of vanishing.
  Ticket Publish(uint64_t session, TaskScheduler* scheduler,
                 const std::function<void(WorkerContext&, const Morsel&)>* body,
                 const numa::Topology* topology, uint32_t team_size);

  /// Stops new guest claims on `ticket` and blocks until every guest
  /// that already claimed a morsel finished executing it. Safe to call
  /// with an invalid ticket (no-op).
  void Close(Ticket ticket);

  /// Claims and executes at most one morsel from some other session's
  /// published phase. `guest_node` homes the claim (locality-first
  /// dispatch against the host's queues); returns false when no
  /// foreign work is available. `donor_lane` is the helping team's
  /// service lane, tagged — together with the owner's query id — onto
  /// the donated-morsel spans recorded in both queries' traces.
  bool TryHelp(uint64_t session, numa::NodeId guest_node,
               uint32_t donor_lane = 0);

  Stats stats() const;
  uint64_t morsels_donated() const {
    return morsels_donated_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    std::atomic<bool> open{false};
    std::atomic<int> in_flight{0};
    std::atomic<uint64_t> generation{0};
    uint64_t session = 0;
    TaskScheduler* scheduler = nullptr;
    const std::function<void(WorkerContext&, const Morsel&)>* body = nullptr;
    const numa::Topology* topology = nullptr;
    uint32_t team_size = 0;
    /// Owner query's trace sink at Publish time (null = untraced).
    obs::TraceSink* trace = nullptr;
  };

  const uint32_t max_entries_;
  std::unique_ptr<Entry[]> entries_;
  mutable std::mutex mu_;  // guards Publish/Close slot management
  uint64_t next_session_ = 1;
  uint64_t next_generation_ = 1;
  uint64_t phases_published_ = 0;
  uint64_t sessions_registered_ = 0;
  std::atomic<uint64_t> morsels_donated_{0};
};

}  // namespace mpsm

#include "parallel/counters.h"

#include "util/bits.h"

namespace mpsm {

const char* JoinPhaseName(JoinPhase phase) {
  switch (phase) {
    case kPhaseSortPublic:
      return "phase 1 (sort public)";
    case kPhasePartition:
      return "phase 2 (partition)";
    case kPhaseSortPrivate:
      return "phase 3 (sort private)";
    case kPhaseJoin:
      return "phase 4 (join)";
    default:
      return "unknown";
  }
}

void PerfCounters::CountSort(uint64_t n) {
  if (n == 0) return;
  sort_tuples += n;
  sort_tuple_logs += n * (n > 1 ? bits::Log2Ceil(n) : 1);
}

PerfCounters& PerfCounters::operator+=(const PerfCounters& other) {
  bytes_read_local_seq += other.bytes_read_local_seq;
  bytes_read_remote_seq += other.bytes_read_remote_seq;
  bytes_read_local_rand += other.bytes_read_local_rand;
  bytes_read_remote_rand += other.bytes_read_remote_rand;
  bytes_written_local_seq += other.bytes_written_local_seq;
  bytes_written_remote_seq += other.bytes_written_remote_seq;
  bytes_written_local_rand += other.bytes_written_local_rand;
  bytes_written_remote_rand += other.bytes_written_remote_rand;
  sort_tuples += other.sort_tuples;
  sort_tuple_logs += other.sort_tuple_logs;
  sync_acquisitions += other.sync_acquisitions;
  morsels_executed += other.morsels_executed;
  morsels_stolen += other.morsels_stolen;
  io_submits += other.io_submits;
  io_stall_ns += other.io_stall_ns;
  hash_probes += other.hash_probes;
  hash_inserts += other.hash_inserts;
  output_tuples += other.output_tuples;
  return *this;
}

uint64_t PerfCounters::TotalBytes() const {
  return bytes_read_local_seq + bytes_read_remote_seq + bytes_read_local_rand +
         bytes_read_remote_rand + bytes_written_local_seq +
         bytes_written_remote_seq + bytes_written_local_rand +
         bytes_written_remote_rand;
}

WorkerStats& WorkerStats::operator+=(const WorkerStats& other) {
  for (uint32_t p = 0; p < kNumJoinPhases; ++p) {
    phase_seconds[p] += other.phase_seconds[p];
    phase_counters[p] += other.phase_counters[p];
  }
  return *this;
}

double WorkerStats::TotalSeconds() const {
  double total = 0;
  for (double s : phase_seconds) total += s;
  return total;
}

PerfCounters WorkerStats::TotalCounters() const {
  PerfCounters total;
  for (const auto& counters : phase_counters) total += counters;
  return total;
}

}  // namespace mpsm

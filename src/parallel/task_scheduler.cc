#include "parallel/task_scheduler.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <thread>

#include "obs/trace.h"
#include "parallel/donation.h"

namespace mpsm {

const char* SchedulerKindName(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kStatic:
      return "static";
    case SchedulerKind::kStealing:
      return "stealing";
  }
  return "unknown";
}

TaskScheduler::TaskScheduler(const numa::Topology& topology,
                             uint32_t team_size, SchedulerKind kind)
    : topology_(&topology), team_size_(team_size), kind_(kind) {
  const uint32_t num_queues =
      kind == SchedulerKind::kStatic ? team_size : topology.num_nodes();
  queues_.reserve(num_queues);
  for (uint32_t q = 0; q < num_queues; ++q) {
    queues_.push_back(std::make_unique<Queue>());
  }
  if (kind == SchedulerKind::kStealing) {
    const uint32_t nodes = topology.num_nodes();
    steal_order_.resize(nodes);
    for (uint32_t n = 0; n < nodes; ++n) {
      for (uint32_t m = 0; m < nodes; ++m) {
        if (m != n) steal_order_[n].push_back(m);
      }
      std::stable_sort(steal_order_[n].begin(), steal_order_[n].end(),
                       [&](uint32_t a, uint32_t b) {
                         return topology.Distance(n, a) <
                                topology.Distance(n, b);
                       });
    }
  }
}

void TaskScheduler::Reset(std::vector<Morsel> morsels) {
  for (auto& queue : queues_) {
    queue->morsels.clear();
    queue->head.store(0, std::memory_order_relaxed);
  }
  for (const Morsel& morsel : morsels) {
    assert(morsel.home_worker < team_size_);
    const uint32_t q =
        kind_ == SchedulerKind::kStatic
            ? morsel.home_worker
            : topology_->NodeForWorker(morsel.home_worker, team_size_);
    queues_[q]->morsels.push_back(morsel);
  }
}

const Morsel* TaskScheduler::Claim(const WorkerContext& ctx,
                                   PerfCounters& counters) {
  if (kind_ == SchedulerKind::kStatic) {
    Queue& queue = *queues_[ctx.worker_id];
    const size_t h = queue.head.load(std::memory_order_relaxed);
    if (h >= queue.morsels.size()) return nullptr;
    queue.head.store(h + 1, std::memory_order_relaxed);
    ++counters.morsels_executed;
    return &queue.morsels[h];
  }

  const numa::NodeId own = ctx.node;
  const auto claim_from = [&](uint32_t q) -> const Morsel* {
    Queue& queue = *queues_[q];
    // Cheap non-atomic pre-check so drained queues cost no contention.
    if (queue.head.load(std::memory_order_relaxed) >= queue.morsels.size()) {
      return nullptr;
    }
    const size_t h = queue.head.fetch_add(1, std::memory_order_relaxed);
    if (h >= queue.morsels.size()) return nullptr;
    ++counters.sync_acquisitions;  // the claim's atomic acquisition
    ++counters.morsels_executed;
    if (q != own) ++counters.morsels_stolen;
    return &queue.morsels[h];
  };

  if (const Morsel* morsel = claim_from(own)) return morsel;
  for (uint32_t victim : steal_order_[own]) {
    if (const Morsel* morsel = claim_from(victim)) return morsel;
  }
  return nullptr;
}

size_t TaskScheduler::remaining() const {
  size_t total = 0;
  for (const auto& queue : queues_) {
    const size_t h = queue->head.load(std::memory_order_relaxed);
    total += queue->morsels.size() - std::min(h, queue->morsels.size());
  }
  return total;
}

PhasePipeline::PhasePipeline(const numa::Topology& topology,
                             uint32_t team_size, SchedulerKind kind)
    : topology_(&topology), team_size_(team_size), kind_(kind) {}

void PhasePipeline::AddSerial(JoinPhase slot, SerialFn fn) {
  Step step;
  step.slot = slot;
  step.serial = true;
  step.serial_fn = std::move(fn);
  steps_.push_back(std::move(step));
}

void PhasePipeline::AddPhase(JoinPhase slot, MorselFactory factory,
                             MorselBody body, PhaseOptions options) {
  Step step;
  step.slot = slot;
  step.factory = std::move(factory);
  step.body = std::move(body);
  step.options = options;
  step.scheduler = std::make_unique<TaskScheduler>(
      *topology_, team_size_,
      options.pinned ? SchedulerKind::kStatic : kind_);
  steps_.push_back(std::move(step));
}

void PhasePipeline::Run(WorkerTeam& team, bool phase_barriers) {
  // Eager factories see only pre-run inputs: evaluate them up front so
  // their phases need no distribution barrier.
  for (Step& step : steps_) {
    if (!step.serial && step.options.eager) {
      step.scheduler->Reset(step.factory());
    }
  }

  DonationPool* pool = team.donation();
  const uint64_t session = team.donation_session();
  // Barrier waits double as donation slots: instead of idling until the
  // stragglers arrive, a worker executes morsels published by *other*
  // sessions (parallel/donation.h). Approximate by design — a worker
  // mid-donated-morsel delays its own arrival by at most that morsel.
  const uint32_t donor_lane = team.lane();
  const auto help_then_wait = [&](WorkerContext& ctx) {
    if (pool != nullptr) {
      while (ctx.barrier->OthersArriving() &&
             pool->TryHelp(session, ctx.node, donor_lane)) {
      }
    }
    ctx.barrier->Wait();
  };

  team.Run([&](WorkerContext& ctx) {
    for (size_t s = 0; s < steps_.size(); ++s) {
      Step& step = steps_[s];
      // One span per worker per step, barrier wait included, so the
      // per-thread spans tile the whole pipeline (trace coverage,
      // docs/observability.md). Morsel-batch accounting rides as args.
      obs::TraceSpan phase_span(obs::kCatPhase, JoinPhaseName(step.slot));
      if (step.serial) {
        {
          PhaseScope scope(ctx, step.slot);
          if (ctx.worker_id == 0) step.serial_fn(ctx);
        }
        help_then_wait(ctx);
        continue;
      }

      if (!step.options.eager) {
        if (ctx.worker_id == 0) step.scheduler->Reset(step.factory());
        ctx.barrier->Wait();
      }
      const PerfCounters& slot_counters = ctx.Counters(step.slot);
      const uint64_t morsels_before = slot_counters.morsels_executed;
      const uint64_t stolen_before = slot_counters.morsels_stolen;

      // Publish guest-safe stealing phases so other sessions' idle
      // workers can claim morsels alongside this team. Published only
      // once this team reaches the step (never up front: an eager
      // factory's *morsels* are known before Run, but the body may
      // read earlier phases' products). Worker 0 closes the
      // publication — draining in-flight guests — before its own
      // barrier arrival, so the next step starts with every morsel's
      // products complete.
      const bool donatable = pool != nullptr && step.options.guest_safe &&
                             step.scheduler->kind() == SchedulerKind::kStealing;
      DonationPool::Ticket ticket;
      if (donatable && ctx.worker_id == 0) {
        ticket = pool->Publish(session, step.scheduler.get(), &step.body,
                               topology_, team_size_);
      }

      // Stealing teams yield between morsels: on an oversubscribed
      // machine (dev VMs timeshare the whole team on few cores) a
      // worker would otherwise burn its entire OS quantum claiming
      // morsel after morsel while the rest of the team is descheduled,
      // which serializes the queues and skews the per-worker
      // accounting the machine model maps to parallel time. On real
      // hardware with a core per worker the yield is a no-op. Static
      // lists are insensitive (fixed assignment), matching the paper's
      // yield-free scripts.
      const bool yield_between_morsels =
          step.scheduler->kind() == SchedulerKind::kStealing;
      if (step.options.self_timed) {
        while (const Morsel* morsel =
                   step.scheduler->Claim(ctx, ctx.Counters(step.slot))) {
          step.body(ctx, *morsel);
          if (yield_between_morsels) std::this_thread::yield();
        }
      } else {
        PhaseScope scope(ctx, step.slot);
        while (const Morsel* morsel =
                   step.scheduler->Claim(ctx, ctx.Counters(step.slot))) {
          step.body(ctx, *morsel);
          if (yield_between_morsels) std::this_thread::yield();
        }
      }

      if (donatable && ctx.worker_id == 0) pool->Close(ticket);

      phase_span.arg1("morsels",
                      slot_counters.morsels_executed - morsels_before);
      phase_span.arg2("stolen", slot_counters.morsels_stolen - stolen_before);

      const bool last = s + 1 == steps_.size();
      // An optional closing barrier may only be elided when no other
      // worker can observe this phase's products early: static
      // scheduling with the next step's morsels already distributed.
      const bool skippable =
          step.options.optional_barrier && !phase_barriers &&
          kind_ == SchedulerKind::kStatic &&
          (last || (!steps_[s + 1].serial && steps_[s + 1].options.eager));
      if (!last && !skippable) help_then_wait(ctx);
    }
  });
}

std::vector<Morsel> ChunkMorsels(uint32_t num_chunks) {
  std::vector<Morsel> morsels;
  morsels.reserve(num_chunks);
  for (uint32_t w = 0; w < num_chunks; ++w) {
    morsels.push_back(Morsel{w, w, 0, 0});
  }
  return morsels;
}

uint64_t ResolveMorselTuples(uint64_t knob, const uint64_t* sizes,
                             size_t count) {
  if (knob != 0) return knob;
  uint64_t total = 0;
  uint64_t max_size = 0;
  for (size_t i = 0; i < count; ++i) {
    total += sizes[i];
    max_size = std::max(max_size, sizes[i]);
  }
  if (count == 0 || total == 0) return kDefaultMorselTuples;

  // Coefficient of variation of the partition sizes: the straggler
  // signal. cv = 0 (uniform) keeps the default slice; cv = 1 (heavy
  // imbalance) slices 3x finer, clamped to the claim-overhead floor.
  const double mean = static_cast<double>(total) / static_cast<double>(count);
  double variance = 0;
  for (size_t i = 0; i < count; ++i) {
    const double d = static_cast<double>(sizes[i]) - mean;
    variance += d * d;
  }
  variance /= static_cast<double>(count);
  const double cv = std::sqrt(variance) / mean;

  const double scaled =
      static_cast<double>(kDefaultMorselTuples) / (1.0 + 2.0 * cv);
  // Even a uniform phase wants the largest unit split a few ways so a
  // stolen remainder is meaningful.
  const uint64_t eighth = std::max<uint64_t>(max_size / 8, 1);
  return std::clamp(std::min(static_cast<uint64_t>(scaled), eighth),
                    kMinAdaptiveMorselTuples, kDefaultMorselTuples);
}

std::vector<std::pair<uint64_t, uint64_t>> SliceRanges(uint64_t total,
                                                       uint64_t morsel_size) {
  std::vector<std::pair<uint64_t, uint64_t>> ranges;
  if (morsel_size == 0) morsel_size = 1;
  if (total == 0) {
    ranges.emplace_back(0, 0);
    return ranges;
  }
  for (uint64_t begin = 0; begin < total; begin += morsel_size) {
    ranges.emplace_back(begin, std::min(total, begin + morsel_size));
  }
  return ranges;
}

}  // namespace mpsm

// Per-worker, per-phase performance counters.
//
// Algorithms classify every bulk memory access as {local, remote} x
// {sequential, random} against the NUMA topology and record the byte
// volume here, together with sort work and synchronization events. The
// sim::MachineModel maps these counters to modeled execution times on
// the paper's hardware; the counters themselves are exact products of
// the real algorithm execution.
#pragma once

#include <array>
#include <cstdint>

namespace mpsm {

/// Phases of the MPSM join algorithms (paper Figures 3 and 5).
/// Baselines reuse slots: build -> kPhase1, probe -> kPhase4, and the
/// radix join's partitioning passes -> kPhase2.
enum JoinPhase : uint32_t {
  kPhaseSortPublic = 0,   // phase 1: sort public input S
  kPhasePartition = 1,    // phase 2: range partition private input R
  kPhaseSortPrivate = 2,  // phase 3: sort private input R
  kPhaseJoin = 3,         // phase 4: merge join
  kNumJoinPhases = 4,
};

/// Canonical display name of a phase ("phase 1 (sort public)" etc.).
const char* JoinPhaseName(JoinPhase phase);

/// Raw operation counts for one worker within one phase.
struct PerfCounters {
  // Bulk memory traffic, classified at the call site.
  uint64_t bytes_read_local_seq = 0;
  uint64_t bytes_read_remote_seq = 0;
  uint64_t bytes_read_local_rand = 0;
  uint64_t bytes_read_remote_rand = 0;
  uint64_t bytes_written_local_seq = 0;
  uint64_t bytes_written_remote_seq = 0;
  uint64_t bytes_written_local_rand = 0;
  uint64_t bytes_written_remote_rand = 0;

  // Sort work: sum over sorted arrays of n and n*ceil(log2 n).
  uint64_t sort_tuples = 0;
  uint64_t sort_tuple_logs = 0;

  // Fine-grained synchronization events (latch/CAS acquisitions);
  // MPSM keeps this at zero in all hot paths by design. The stealing
  // scheduler's morsel claims count here (one atomic per claim).
  uint64_t sync_acquisitions = 0;

  // Morsel-driven scheduling (parallel/task_scheduler.h): morsels this
  // worker executed, and how many of those were stolen from another
  // NUMA node's queue (each steal moves the claim line — and usually
  // the morsel's data — across the interconnect; the machine model
  // charges ns_per_steal on top of the byte traffic).
  uint64_t morsels_executed = 0;
  uint64_t morsels_stolen = 0;

  // Async page I/O (src/io/, the D-MPSM spill path): batched read
  // submissions this worker issued, and wall nanoseconds it spent
  // blocked on I/O with no stealable fetch work left. The machine
  // model charges ns_per_io_submit per submission; io_stall_ns is
  // observability only (measured wall time, not a modeled count).
  uint64_t io_submits = 0;
  uint64_t io_stall_ns = 0;

  // Hash table operations (baselines).
  uint64_t hash_probes = 0;
  uint64_t hash_inserts = 0;

  // Join output tuples produced by this worker.
  uint64_t output_tuples = 0;

  /// Records a bulk read of `bytes` bytes.
  void CountRead(bool local, bool sequential, uint64_t bytes) {
    if (local) {
      (sequential ? bytes_read_local_seq : bytes_read_local_rand) += bytes;
    } else {
      (sequential ? bytes_read_remote_seq : bytes_read_remote_rand) += bytes;
    }
  }

  /// Records a bulk write of `bytes` bytes.
  void CountWrite(bool local, bool sequential, uint64_t bytes) {
    if (local) {
      (sequential ? bytes_written_local_seq : bytes_written_local_rand) +=
          bytes;
    } else {
      (sequential ? bytes_written_remote_seq : bytes_written_remote_rand) +=
          bytes;
    }
  }

  /// Records sorting an array of n tuples (n log n work).
  void CountSort(uint64_t n);

  PerfCounters& operator+=(const PerfCounters& other);

  /// Total bytes moved (reads + writes).
  uint64_t TotalBytes() const;
};

/// Wall-clock seconds and counters for each phase of one worker.
struct WorkerStats {
  std::array<double, kNumJoinPhases> phase_seconds = {};
  std::array<PerfCounters, kNumJoinPhases> phase_counters = {};

  WorkerStats& operator+=(const WorkerStats& other);

  /// Sum of all phase wall times.
  double TotalSeconds() const;

  /// Counters summed across phases.
  PerfCounters TotalCounters() const;
};

}  // namespace mpsm

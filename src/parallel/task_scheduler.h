// Morsel-driven phase scheduler: the shared execution layer of all four
// join variants.
//
// The paper's algorithms script every phase statically: worker w sorts
// chunk w, scatters chunk w, sorts partition w, joins partition w. That
// is perfectly synchronization-free, but one hot partition in phase 3/4
// stalls the whole team at the next barrier (Figures 15/16). The
// TaskScheduler keeps the phase/barrier structure and replaces the
// static scripts with *morsels* — range-sliced units of phase work
// (run-generation chunks, scatter blocks, sort buckets, merge ranges) —
// queued per NUMA node. A worker drains its own node's queue first
// (locality-first dispatch) and then steals from other nodes in
// distance order, so idle workers absorb stragglers' backlogs instead
// of waiting. In static mode the scheduler degenerates to per-worker
// lists claimed without atomics, reproducing the paper's behavior
// exactly; MpsmOptions::scheduler selects the mode for A/B runs
// (docs/scheduler.md).
//
// PhasePipeline expresses a join as a sequence of steps — serial
// (worker-0) combines and morsel-parallel phases — so the four drivers
// share one orchestration point instead of four fused per-worker
// lambdas.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "numa/topology.h"
#include "parallel/counters.h"
#include "parallel/scheduler_kind.h"
#include "parallel/worker_team.h"

namespace mpsm {

/// One schedulable unit of phase work: a caller-defined task id plus a
/// half-open range within that task, homed on a preferred worker. The
/// interpretation of task/begin/end is the phase body's business (chunk
/// id + tuple range, partition id + bucket range, run pair + merge
/// range, ...).
struct Morsel {
  uint32_t home_worker = 0;
  uint32_t task = 0;
  uint64_t begin = 0;
  uint64_t end = 0;
};

/// Per-node morsel queues with locality-first dispatch and cross-node
/// work stealing (static mode: per-worker lists, no atomics).
///
/// Lifecycle per phase: one thread calls Reset() with the phase's
/// morsels while no Claim() is in flight (between barriers); workers
/// then Claim() until it returns nullptr. A worker never idles while
/// morsels remain anywhere: in stealing mode Claim() only returns
/// nullptr once every queue is drained.
class TaskScheduler {
 public:
  TaskScheduler(const numa::Topology& topology, uint32_t team_size,
                SchedulerKind kind);

  /// Replaces all queued morsels. Must not race with Claim().
  void Reset(std::vector<Morsel> morsels);

  /// Claims the next morsel for the calling worker, or nullptr when no
  /// claimable work remains. Stealing mode claims from the worker's own
  /// node queue first, then from other nodes in topology-distance
  /// order; every claim is one atomic acquisition and cross-node claims
  /// are additionally counted as steals in `counters`. Static mode
  /// walks the worker's own list in order, synchronization-free.
  /// The returned pointer stays valid until the next Reset().
  const Morsel* Claim(const WorkerContext& ctx, PerfCounters& counters);

  /// Morsels not yet claimed (exact only while no Claim is in flight).
  size_t remaining() const;

  SchedulerKind kind() const { return kind_; }
  uint32_t team_size() const { return team_size_; }

 private:
  struct Queue {
    std::vector<Morsel> morsels;
    alignas(64) std::atomic<size_t> head{0};
  };

  const numa::Topology* topology_;
  uint32_t team_size_;
  SchedulerKind kind_;
  // Static: one queue per worker. Stealing: one queue per node.
  std::vector<std::unique_ptr<Queue>> queues_;
  // steal_order_[n]: the other nodes, nearest (SLIT distance) first.
  std::vector<std::vector<uint32_t>> steal_order_;
};

/// A join expressed as a sequence of steps sharing one WorkerTeam run:
/// serial worker-0 combines and morsel-parallel phases with factories
/// that produce each phase's morsels.
class PhasePipeline {
 public:
  using SerialFn = std::function<void(WorkerContext&)>;
  using MorselBody = std::function<void(WorkerContext&, const Morsel&)>;
  using MorselFactory = std::function<std::vector<Morsel>()>;

  /// Per-phase knobs (all default to the common case).
  struct PhaseOptions {
    /// Eager factories depend only on inputs known before Run() and are
    /// evaluated up front, avoiding the pre-phase distribution barrier.
    /// Lazy factories run on worker 0 right before the phase, so they
    /// see every earlier step's products.
    bool eager = true;
    /// Pinned phases always execute morsels on their home worker, even
    /// under a stealing scheduler (first-touch allocations, stateful
    /// per-consumer walks).
    bool pinned = false;
    /// The closing barrier may be skipped when the driver's
    /// phase_barriers option is off. Only safe when the next step needs
    /// nothing from other workers' morsels (and only honored in static
    /// mode — stolen morsels may read any worker's phase products).
    bool optional_barrier = false;
    /// Self-timed bodies manage their own PhaseScope sub-timers (e.g.
    /// the radix join's pass-2/join split); the pipeline then only
    /// charges morsel claims to `slot`.
    bool self_timed = false;
    /// Guest-safe bodies key all state off morsel.task and never index
    /// per-worker arrays with ctx.worker_id, so workers of *other*
    /// sessions may execute their morsels via a DonationPool
    /// (parallel/donation.h). Only honored for stealing-kind phases on
    /// teams opted into donation; ignored otherwise.
    bool guest_safe = false;
  };

  PhasePipeline(const numa::Topology& topology, uint32_t team_size,
                SchedulerKind kind);

  /// Appends a worker-0 step; the team synchronizes after it.
  void AddSerial(JoinPhase slot, SerialFn fn);

  /// Appends a morsel-parallel phase accounted under `slot`.
  void AddPhase(JoinPhase slot, MorselFactory factory, MorselBody body,
                PhaseOptions options);
  void AddPhase(JoinPhase slot, MorselFactory factory, MorselBody body) {
    AddPhase(slot, std::move(factory), std::move(body), PhaseOptions{});
  }

  /// Executes all steps on `team`. `phase_barriers` mirrors
  /// MpsmOptions::phase_barriers: when false, optional closing barriers
  /// are skipped (static mode only).
  void Run(WorkerTeam& team, bool phase_barriers = true);

  SchedulerKind kind() const { return kind_; }

 private:
  struct Step {
    JoinPhase slot = kPhaseJoin;
    bool serial = false;
    SerialFn serial_fn;
    MorselFactory factory;
    MorselBody body;
    PhaseOptions options;
    std::unique_ptr<TaskScheduler> scheduler;
  };

  const numa::Topology* topology_;
  uint32_t team_size_;
  SchedulerKind kind_;
  std::vector<Step> steps_;
};

/// Slices [0, total) into ranges of at most `morsel_size` (>= 1) items;
/// the standard way phases turn a chunk/partition into morsels. Always
/// emits at least one (possibly empty) range so per-task bookkeeping
/// (plan rows, run slots) stays dense.
std::vector<std::pair<uint64_t, uint64_t>> SliceRanges(uint64_t total,
                                                       uint64_t morsel_size);

/// One morsel per chunk/partition/consumer, homed on its worker — the
/// canonical morsel list for per-chunk phases (task == home == index).
std::vector<Morsel> ChunkMorsels(uint32_t num_chunks);

/// Default stealing-mode morsel slice and the adaptive floor
/// (docs/scheduler.md): 2^14 tuples = one L2 of work; the adaptive
/// resolver never slices below 2^10 (claim overhead would dominate).
inline constexpr uint64_t kDefaultMorselTuples = uint64_t{1} << 14;
inline constexpr uint64_t kMinAdaptiveMorselTuples = uint64_t{1} << 10;

/// Resolves the `morsel_tuples` knob against the work-unit sizes it
/// will slice (chunks in phase 2, range partitions / runs in phases
/// 3-4). A non-zero knob passes through. 0 = adaptive: the slice
/// shrinks with the partition-size imbalance — uniform sizes keep the
/// default 2^14 (slicing costs claims and per-morsel searches without
/// balancing anything), while a high coefficient of variation divides
/// the slice so a hot partition's surplus spreads over idle workers.
uint64_t ResolveMorselTuples(uint64_t knob, const uint64_t* sizes,
                             size_t count);

}  // namespace mpsm

// Worker team: the unit of intra-operator parallelism.
//
// A WorkerTeam spawns T threads, pins each to a core chosen by the NUMA
// topology (socket-major round robin), gives each worker a private
// node-homed arena, and runs a job function on every worker. Workers
// coordinate only through the team barrier; there is no shared mutable
// state (commandment C3).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "numa/arena.h"
#include "numa/topology.h"
#include "obs/trace.h"
#include "parallel/barrier.h"
#include "parallel/counters.h"

namespace mpsm {

class DonationPool;
class WorkerTeam;

/// Everything a worker needs: identity, placement, barrier, stats sink,
/// and its local arena.
struct WorkerContext {
  uint32_t worker_id = 0;
  uint32_t team_size = 1;
  uint32_t core = 0;
  numa::NodeId node = 0;
  Barrier* barrier = nullptr;
  WorkerStats* stats = nullptr;
  numa::Arena* arena = nullptr;
  const numa::Topology* topology = nullptr;

  /// True when memory homed on `owner` is local to this worker.
  bool IsLocal(numa::NodeId owner) const { return owner == node; }

  /// Counters of the given phase for this worker.
  PerfCounters& Counters(JoinPhase phase) {
    return stats->phase_counters[phase];
  }
};

/// RAII phase timer: accumulates wall time into WorkerStats on scope exit.
class PhaseScope {
 public:
  PhaseScope(WorkerContext& ctx, JoinPhase phase);
  ~PhaseScope();

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  WorkerContext& ctx_;
  JoinPhase phase_;
  double start_seconds_;
};

/// Spawns and joins a fixed-size team of pinned worker threads.
class WorkerTeam {
 public:
  /// Creates a team of `team_size` workers placed on `topology`.
  WorkerTeam(const numa::Topology& topology, uint32_t team_size);
  ~WorkerTeam();

  WorkerTeam(const WorkerTeam&) = delete;
  WorkerTeam& operator=(const WorkerTeam&) = delete;

  /// Runs `job(ctx)` on every worker thread and waits for completion.
  /// Per-worker stats are reset at the start of each Run.
  void Run(const std::function<void(WorkerContext&)>& job);

  uint32_t size() const { return team_size_; }
  const numa::Topology& topology() const { return *topology_; }

  /// Stats of worker `w` from the most recent Run.
  const WorkerStats& stats(uint32_t w) const { return stats_[w]; }

  /// Stats aggregated over all workers from the most recent Run.
  WorkerStats AggregateStats() const;

  /// Longest per-phase wall time over workers (the barrier-to-barrier
  /// duration of each phase), summed over phases.
  double CriticalPathSeconds() const;

  /// Arena of worker `w` (homed on that worker's node).
  numa::Arena& ArenaOf(uint32_t w) { return *arenas_[w]; }

  /// Opts this team into cross-session worker donation
  /// (parallel/donation.h): its guest-safe stealing phases are
  /// published to `pool`, and its workers help other sessions while
  /// waiting at phase barriers. Registers a fresh session id on first
  /// call per pool. nullptr opts back out.
  void set_donation(DonationPool* pool);
  DonationPool* donation() const { return donation_; }
  uint64_t donation_session() const { return donation_session_; }

  /// Attaches the current query's trace sink (obs/trace.h): Run
  /// installs it as every worker thread's current sink, so spans
  /// recorded anywhere under the job land in this query's trace.
  /// nullptr (the default) keeps tracing off. The engine sets this per
  /// Execute and clears it after.
  void set_trace(obs::TraceSink* sink) { trace_ = sink; }
  obs::TraceSink* trace() const { return trace_; }

  /// Service lane this team serves (trace attribution of donated
  /// morsels, docs/observability.md); 0 outside a JoinService.
  void set_lane(uint32_t lane) { lane_ = lane; }
  uint32_t lane() const { return lane_; }

 private:
  const numa::Topology* topology_;
  uint32_t team_size_;
  Barrier barrier_;
  std::vector<WorkerStats> stats_;
  std::vector<std::unique_ptr<numa::Arena>> arenas_;
  DonationPool* donation_ = nullptr;
  uint64_t donation_session_ = 0;
  obs::TraceSink* trace_ = nullptr;
  uint32_t lane_ = 0;
};

}  // namespace mpsm

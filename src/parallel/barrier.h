// Reusable thread barrier.
//
// MPSM needs exactly one mandatory synchronization point (all public
// runs sorted before the join phase starts); the phase-instrumented
// drivers add barriers between phases so that per-phase times are well
// defined, matching how the paper reports phase breakdowns.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace mpsm {

/// A generation-counting barrier for a fixed number of participants.
///
/// Blocking (condvar-based) rather than spinning: the development
/// machine oversubscribes cores, and a spinning barrier would serialize
/// the team. Reusable across any number of Wait rounds.
class Barrier {
 public:
  explicit Barrier(uint32_t participants);

  /// Blocks until all participants have arrived. Returns true for
  /// exactly one participant per round (the "serial" thread), which is
  /// convenient for once-per-round work.
  bool Wait();

  /// Number of participants this barrier synchronizes.
  uint32_t participants() const { return participants_; }

  /// True while at least one *other* participant has not yet arrived
  /// at the current round — i.e. this caller would block in Wait().
  /// Approximate (may lag one arrival); used by workers deciding
  /// whether to spend their barrier wait executing donated morsels
  /// from another session (parallel/donation.h).
  bool OthersArriving() const;

 private:
  const uint32_t participants_;
  uint32_t arrived_ = 0;
  uint64_t generation_ = 0;
  mutable std::mutex mu_;
  std::condition_variable cv_;
};

}  // namespace mpsm

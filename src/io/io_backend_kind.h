// IoBackendKind enum, split from io_backend.h so option structs can
// name the knob without pulling in the backend machinery (threads,
// ring buffers) — same pattern as parallel/scheduler_kind.h.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace mpsm::io {

/// Which engine performs the asynchronous page reads of the spill path.
enum class IoBackendKind : uint8_t {
  kSync,        // preadv inline at submission (the blocking baseline)
  kThreadpool,  // portable worker threads servicing a submission queue
  kUring,       // Linux io_uring (raw syscalls; needs kernel support)
  kAuto,        // uring when the runtime probe succeeds, else threadpool
};

/// Name of an IoBackendKind ("sync", "threadpool", "uring", "auto").
const char* IoBackendKindName(IoBackendKind kind);

/// Parses a backend name (the strings IoBackendKindName emits);
/// nullopt on anything else.
std::optional<IoBackendKind> ParseIoBackendKind(std::string_view name);

}  // namespace mpsm::io

// Internal: per-backend factory functions and the shared blocking-read
// helper, so io_backend.cc (the public factory) can dispatch without
// the backend classes leaking into the public header.
#pragma once

#include <cstddef>
#include <memory>

#include "io/io_backend.h"
#include "util/status.h"

namespace mpsm::io {

std::unique_ptr<AsyncIoBackend> CreateSyncBackend(size_t queue_depth);
std::unique_ptr<AsyncIoBackend> CreateThreadpoolBackend(size_t queue_depth);
/// Nullptr when the build lacks <linux/io_uring.h> or ring setup fails.
std::unique_ptr<AsyncIoBackend> CreateUringBackend(size_t queue_depth);

/// Executes `read` synchronously: preadv with EINTR retry and
/// short-read resumption; a true EOF inside the range is an IoError.
/// Honors read.delay_us (the synthetic device). Shared by the sync and
/// threadpool backends.
Status PerformBlockingRead(const IoRead& read);

/// Executes `write` synchronously: pwritev with EINTR retry and
/// short-write resumption; zero progress (disk full) is an IoError.
/// Honors write.delay_us. Shared by the sync and threadpool backends.
Status PerformBlockingWrite(const IoWrite& write);

/// Executes `flush` synchronously: fdatasync with EINTR retry. Honors
/// flush.delay_us. Shared by the sync and threadpool backends.
Status PerformBlockingFlush(const IoFlush& flush);

}  // namespace mpsm::io

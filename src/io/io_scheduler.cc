#include "io/io_scheduler.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace mpsm::io {

Status IoSchedulerOptions::Validate() const {
  if (queue_depth == 0) {
    return Status::InvalidArgument("io_queue_depth must be >= 1");
  }
  if (batch_pages == 0 || batch_pages > kMaxIovPerRead) {
    return Status::InvalidArgument(
        "io_batch_pages must be in [1, " +
        std::to_string(kMaxIovPerRead) + "]");
  }
  if (completion_queues == 0) {
    return Status::InvalidArgument("completion_queues must be >= 1");
  }
  return Status::OK();
}

Result<std::unique_ptr<IoScheduler>> IoScheduler::Create(
    int fd, size_t page_bytes, uint32_t delay_us,
    IoSchedulerOptions options) {
  MPSM_RETURN_NOT_OK(options.Validate());
  MPSM_ASSIGN_OR_RETURN(
      auto backend, CreateIoBackend(options.backend, options.queue_depth));
  return CreateWithBackend(std::move(backend), fd, page_bytes, delay_us,
                           std::move(options));
}

Result<std::unique_ptr<IoScheduler>> IoScheduler::CreateWithBackend(
    std::unique_ptr<AsyncIoBackend> backend, int fd, size_t page_bytes,
    uint32_t delay_us, IoSchedulerOptions options) {
  MPSM_RETURN_NOT_OK(options.Validate());
  if (backend == nullptr) {
    return Status::InvalidArgument("io backend must be non-null");
  }
  if (page_bytes == 0) {
    return Status::InvalidArgument("page_bytes must be >= 1");
  }
  return std::unique_ptr<IoScheduler>(
      new IoScheduler(std::move(backend), fd, page_bytes, delay_us,
                      std::move(options)));
}

IoScheduler::IoScheduler(std::unique_ptr<AsyncIoBackend> backend, int fd,
                         size_t page_bytes, uint32_t delay_us,
                         IoSchedulerOptions options)
    : backend_(std::move(backend)),
      fd_(fd),
      page_bytes_(page_bytes),
      delay_us_(delay_us),
      options_(std::move(options)),
      byte_budget_(options_.max_inflight_bytes != 0
                       ? options_.max_inflight_bytes
                       : static_cast<uint64_t>(options_.queue_depth) *
                             options_.batch_pages * page_bytes),
      batches_(options_.queue_depth),
      queues_(options_.completion_queues) {
  free_batches_.reserve(options_.queue_depth);
  for (size_t s = options_.queue_depth; s > 0; --s) {
    free_batches_.push_back(s - 1);
  }
}

IoScheduler::~IoScheduler() {
  // Reap every in-flight read before the backend dies: callers' pinned
  // buffers must never be written after this destructor returns.
  // Never-submitted pending requests are simply dropped.
  {
    std::unique_lock<std::mutex> lock(mu_);
    while (inflight_reads_ > 0) {
      if (ReapLocked(lock, /*block=*/true) == 0 && inflight_reads_ > 0) {
        break;  // backend wedged; leak rather than spin forever
      }
    }
  }
  // Fold this (per-query) scheduler's lifetime totals into the global
  // mpsm_io_* families: one batch of atomic adds per query, no
  // registry traffic on the hot submit/reap paths.
  auto& registry = obs::MetricsRegistry::Global();
  static obs::Counter& pages_read = registry.counter(
      "mpsm_io_pages_read_total", "Spool pages whose reads completed");
  static obs::Counter& pages_written = registry.counter(
      "mpsm_io_pages_written_total", "Spool pages whose write-backs completed");
  static obs::Counter& read_batches = registry.counter(
      "mpsm_io_read_batches_total", "Vectored reads issued to the backend");
  static obs::Counter& write_batches = registry.counter(
      "mpsm_io_write_batches_total", "Vectored writes issued to the backend");
  static obs::Counter& coalesced = registry.counter(
      "mpsm_io_coalesced_pages_total",
      "Pages riding along in a vectored batch beyond the first");
  static obs::Counter& stall_ns = registry.counter(
      "mpsm_io_stall_ns_total", "Caller wall time blocked on I/O");
  static obs::Counter& retries = registry.counter(
      "mpsm_io_retries_total",
      "Pages re-submitted after transient (EINTR/EAGAIN-class) failures");
  static obs::Counter& flushes = registry.counter(
      "mpsm_io_flushes_total",
      "fdatasync durability barriers issued to the backend");
  pages_read.Add(pages_read_);
  pages_written.Add(pages_written_);
  read_batches.Add(io_batches_);
  write_batches.Add(write_batches_);
  coalesced.Add(coalesced_pages_ + coalesced_write_pages_);
  stall_ns.Add(io_stall_ns_.load(std::memory_order_relaxed));
  retries.Add(retries_);
  flushes.Add(flushes_);
}

Status IoScheduler::Submit(const PageFetchRequest* requests, size_t count) {
  std::unique_lock<std::mutex> lock(mu_);
  // All-or-nothing: validate every request before queueing any, so a
  // caller that sees an error owns all its buffers again (a partially
  // queued batch would keep reading into them after the error).
  for (size_t i = 0; i < count; ++i) {
    if (requests[i].queue >= queues_.size()) {
      return Status::InvalidArgument("completion queue out of range");
    }
  }
  for (size_t i = 0; i < count; ++i) {
    pending_.push_back(PendingPage{requests[i].page, requests[i].dest,
                                   requests[i].user_data,
                                   requests[i].queue});
  }
  return PushPendingLocked(lock);
}

Status IoScheduler::SubmitWrites(const PageWriteRequest* requests,
                                 size_t count) {
  std::unique_lock<std::mutex> lock(mu_);
  for (size_t i = 0; i < count; ++i) {
    if (requests[i].queue >= queues_.size()) {
      return Status::InvalidArgument("completion queue out of range");
    }
  }
  for (size_t i = 0; i < count; ++i) {
    // The const_cast is confined here: write batches build iovecs from
    // this pointer but the backend only ever reads through them.
    PendingPage page{requests[i].page, const_cast<char*>(requests[i].src),
                     requests[i].user_data, requests[i].queue};
    page.seq = ++write_enqueue_seq_;
    pending_writes_.push_back(std::move(page));
  }
  return PushPendingLocked(lock);
}

Status IoScheduler::SubmitFlush(uint64_t user_data, uint32_t queue) {
  std::unique_lock<std::mutex> lock(mu_);
  if (queue >= queues_.size()) {
    return Status::InvalidArgument("completion queue out of range");
  }
  // The barrier is the newest write enqueued so far: the flush waits
  // for every write with seq <= barrier to complete before it is
  // issued, so its OK completion proves those writes durable.
  pending_flushes_.push_back(
      PendingFlush{write_enqueue_seq_, user_data, queue});
  return PushPendingLocked(lock);
}

bool IoScheduler::FlushBarrierClearLocked(uint64_t barrier) const {
  // Pending writes are seq-ascending (new writes append with higher
  // seqs; transient retries re-queue at the front with their original,
  // lower seqs), so the front holds the minimum.
  if (!pending_writes_.empty() && pending_writes_.front().seq <= barrier) {
    return false;
  }
  if (!inflight_write_seqs_.empty() &&
      *inflight_write_seqs_.begin() <= barrier) {
    return false;
  }
  return true;
}

bool IoScheduler::PushOneFlushLocked(std::unique_lock<std::mutex>& lock) {
  if (pending_flushes_.empty() || free_batches_.empty()) return false;
  if (!FlushBarrierClearLocked(pending_flushes_.front().barrier)) {
    return false;
  }
  const PendingFlush req = pending_flushes_.front();
  pending_flushes_.pop_front();

  const size_t slot = free_batches_.back();
  free_batches_.pop_back();
  Batch& batch = batches_[slot];
  batch.pages.clear();
  BatchPage page;
  page.user_data = req.user_data;
  page.queue = req.queue;
  page.attempts = req.attempts;
  batch.pages.push_back(page);
  batch.bytes = 0;
  batch.used = true;
  batch.is_write = false;
  batch.is_flush = true;
  batch.min_seq = 0;

  ++inflight_reads_;
  ++flushes_;
  obs::TraceInstant(obs::kCatIo, "io.flush", "inflight", inflight_reads_);

  lock.unlock();
  WallTimer submit_timer;
  IoFlush flush;
  flush.fd = fd_;
  flush.user_data = slot;
  flush.delay_us = delay_us_;
  const Status submitted = backend_->SubmitFlush(flush);
  if (backend_->kind() == IoBackendKind::kSync) {
    AddStallNs(static_cast<uint64_t>(submit_timer.ElapsedSeconds() * 1e9));
  }
  lock.lock();
  if (!submitted.ok()) {
    --inflight_reads_;
    RouteBatchLocked(batch, submitted);
    batch.used = false;
    free_batches_.push_back(slot);
  }
  return true;
}

bool IoScheduler::PushOneBatchLocked(std::unique_lock<std::mutex>& lock,
                                     std::deque<PendingPage>& queue,
                                     bool is_write) {
  if (queue.empty() || free_batches_.empty()) return false;
  // Retry backoff: a re-queued transient failure at the front holds
  // this queue until its deadline (FIFO keeps write seqs ordered; the
  // waits are tens of microseconds).
  if (queue.front().attempts > 0 &&
      queue.front().not_before > std::chrono::steady_clock::now()) {
    return false;
  }
  // Coalesce the run of adjacent page ids at the queue's front
  // (fetches arrive in page-index order and flushes are sorted by page
  // id, so physically consecutive pages are queue-adjacent).
  const size_t max_pages = std::min(options_.batch_pages, queue.size());
  size_t take = 1;
  while (take < max_pages &&
         queue[take].page == queue[take - 1].page + 1) {
    ++take;
  }
  const uint64_t bytes = static_cast<uint64_t>(take) * page_bytes_;
  // The byte budget throttles only while operations are in flight: a
  // single batch must always be able to start (progress guarantee).
  if (inflight_bytes_ != 0 && inflight_bytes_ + bytes > byte_budget_) {
    return false;
  }

  const size_t slot = free_batches_.back();
  free_batches_.pop_back();
  Batch& batch = batches_[slot];
  batch.pages.clear();
  batch.bytes = bytes;
  batch.used = true;
  batch.is_write = is_write;
  batch.is_flush = false;
  batch.min_seq = queue.front().seq;

  const uint64_t offset = queue.front().page * page_bytes_;
  std::array<::iovec, kMaxIovPerRead> iov{};
  for (size_t p = 0; p < take; ++p) {
    const PendingPage& req = queue.front();
    iov[p] = {req.buf, page_bytes_};
    batch.pages.push_back(BatchPage{req.user_data, req.queue, req.page,
                                    req.buf, req.seq, req.attempts});
    queue.pop_front();
  }
  if (is_write) inflight_write_seqs_.insert(batch.min_seq);

  inflight_bytes_ += bytes;
  ++inflight_reads_;
  if (is_write) {
    ++write_batches_;
    coalesced_write_pages_ += take - 1;
  } else {
    ++io_batches_;
    coalesced_pages_ += take - 1;
  }
  depth_samples_sum_ += inflight_reads_;
  peak_inflight_reads_ = std::max<uint64_t>(peak_inflight_reads_,
                                            inflight_reads_);
  obs::TraceInstant(obs::kCatIo,
                    is_write ? "io.write_batch" : "io.read_batch", "pages",
                    take, "inflight", inflight_reads_);

  lock.unlock();
  // With the blocking sync backend, the submit *is* the device round
  // trip: charge it as stall so the sync/async A/B measures exactly
  // the wait that batched async submission converts into compute.
  WallTimer submit_timer;
  Status submitted;
  if (is_write) {
    IoWrite write;
    write.fd = fd_;
    write.offset = offset;
    write.iov_count = static_cast<uint32_t>(take);
    write.iov = iov;
    write.user_data = slot;
    write.delay_us = delay_us_;
    submitted = backend_->SubmitWrite(write);
  } else {
    IoRead read;
    read.fd = fd_;
    read.offset = offset;
    read.iov_count = static_cast<uint32_t>(take);
    read.iov = iov;
    read.user_data = slot;
    read.delay_us = delay_us_;
    submitted = backend_->SubmitRead(read);
  }
  if (backend_->kind() == IoBackendKind::kSync) {
    AddStallNs(static_cast<uint64_t>(submit_timer.ElapsedSeconds() * 1e9));
  }
  lock.lock();
  if (!submitted.ok()) {
    // Surface the failure through the normal completion path (or the
    // transient-retry re-queue) so every waiter learns about it, then
    // keep pushing what we can.
    if (is_write) {
      inflight_write_seqs_.erase(inflight_write_seqs_.find(batch.min_seq));
    }
    inflight_bytes_ -= bytes;
    --inflight_reads_;
    RouteBatchLocked(batch, submitted);
    batch.used = false;
    free_batches_.push_back(slot);
  }
  return true;
}

void IoScheduler::RouteBatchLocked(Batch& batch, const Status& status) {
  const bool retryable = !status.ok() &&
                         status.code() == StatusCode::kUnavailable &&
                         options_.max_retries > 0;
  // Re-queued pages go to the *front* (reverse order keeps batch
  // order), so retried writes keep their low seqs ahead of newer
  // writes and the flush-barrier front check stays a minimum check.
  for (size_t p = batch.pages.size(); p > 0; --p) {
    const BatchPage& page = batch.pages[p - 1];
    if (retryable && page.attempts < options_.max_retries) {
      const auto backoff = std::chrono::microseconds(
          static_cast<uint64_t>(options_.retry_backoff_us)
          << page.attempts);
      ++retries_;
      obs::TraceInstant(obs::kCatIo, "io.retry", "attempt",
                        page.attempts + 1);
      if (batch.is_flush) {
        pending_flushes_.push_front(
            PendingFlush{0, page.user_data, page.queue, page.attempts + 1});
        continue;
      }
      PendingPage retry{page.page, page.buf, page.user_data, page.queue};
      retry.seq = page.seq;
      retry.attempts = page.attempts + 1;
      retry.not_before = std::chrono::steady_clock::now() + backoff;
      (batch.is_write ? pending_writes_ : pending_).push_front(
          std::move(retry));
      continue;
    }
    queues_[page.queue].push_back(PageFetchCompletion{page.user_data, status});
  }
}

Status IoScheduler::PushPendingLocked(std::unique_lock<std::mutex>& lock) {
  // Reads before writes: fetches gate join progress now; write-backs
  // are background work whose only deadline is freeing frames. A read
  // backlog cannot starve writes forever — once it drains (or the
  // budget blocks it), pending writes get the leftover slots.
  while (PushOneBatchLocked(lock, pending_, /*is_write=*/false)) {
  }
  while (PushOneBatchLocked(lock, pending_writes_, /*is_write=*/true)) {
  }
  // Flushes last: they only become eligible once the writes they fence
  // have fully completed (FlushBarrierClearLocked).
  while (PushOneFlushLocked(lock)) {
  }
  return Status::OK();
}

size_t IoScheduler::ReapLocked(std::unique_lock<std::mutex>& lock,
                               bool block) {
  constexpr size_t kReapMax = 32;
  IoCompletion raw[kReapMax];
  lock.unlock();
  size_t n = backend_->PollCompletions(raw, kReapMax, /*block=*/false);
  if (n == 0 && block) {
    n = backend_->PollCompletions(raw, kReapMax, /*block=*/true);
  }
  lock.lock();
  for (size_t i = 0; i < n; ++i) {
    Batch& batch = batches_[raw[i].user_data];
    if (batch.is_write) {
      inflight_write_seqs_.erase(inflight_write_seqs_.find(batch.min_seq));
    }
    if (raw[i].status.ok() && !batch.is_flush) {
      (batch.is_write ? pages_written_ : pages_read_) +=
          batch.pages.size();
    }
    inflight_bytes_ -= batch.bytes;
    --inflight_reads_;
    RouteBatchLocked(batch, raw[i].status);
    batch.used = false;
    free_batches_.push_back(raw[i].user_data);
  }
  return n;
}

std::optional<std::chrono::steady_clock::time_point>
IoScheduler::NextRetryAtLocked() const {
  std::optional<std::chrono::steady_clock::time_point> at;
  for (const auto* queue : {&pending_, &pending_writes_}) {
    if (!queue->empty() && queue->front().attempts > 0) {
      const auto deadline = queue->front().not_before;
      if (!at || deadline < *at) at = deadline;
    }
  }
  return at;
}

Status IoScheduler::Pump(bool block) {
  std::unique_lock<std::mutex> lock(mu_);
  MPSM_RETURN_NOT_OK(PushPendingLocked(lock));
  size_t reaped = ReapLocked(lock, /*block=*/false);
  if (block && reaped == 0 && inflight_reads_ > 0) {
    reaped = ReapLocked(lock, /*block=*/true);
  }
  // Freed batch slots (and byte budget) admit more pending work.
  if (reaped > 0) MPSM_RETURN_NOT_OK(PushPendingLocked(lock));
  // Nothing in flight but a retry waiting out its backoff: a blocking
  // pump sleeps to the deadline and re-submits, so callers looping on
  // Pump(block=true) cannot spin (or deadlock) across the backoff.
  if (block && reaped == 0 && inflight_reads_ == 0) {
    if (const auto retry_at = NextRetryAtLocked()) {
      lock.unlock();
      std::this_thread::sleep_until(*retry_at);
      lock.lock();
      MPSM_RETURN_NOT_OK(PushPendingLocked(lock));
    }
  }
  return Status::OK();
}

size_t IoScheduler::Drain(uint32_t queue, PageFetchCompletion* out,
                          size_t max) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& q = queues_[queue];
  size_t n = 0;
  while (n < max && !q.empty()) {
    out[n++] = std::move(q.front());
    q.pop_front();
  }
  return n;
}

bool IoScheduler::Busy() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !pending_.empty() || !pending_writes_.empty() ||
         !pending_flushes_.empty() || inflight_reads_ > 0;
}

void IoScheduler::AddStallNs(uint64_t ns) {
  io_stall_ns_.fetch_add(ns, std::memory_order_relaxed);
  obs::TraceSpanEndingNow(obs::kCatIo, "io.stall", static_cast<int64_t>(ns));
  static obs::Histogram& stall_hist = obs::MetricsRegistry::Global().histogram(
      "mpsm_io_stall_ns", "Caller wall time blocked on I/O per stall");
  stall_hist.Record(ns);
}

IoSchedulerStats IoScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  IoSchedulerStats stats;
  stats.pages_read = pages_read_;
  stats.io_batches = io_batches_;
  stats.coalesced_pages = coalesced_pages_;
  stats.pages_written = pages_written_;
  stats.write_batches = write_batches_;
  stats.coalesced_write_pages = coalesced_write_pages_;
  stats.io_stall_ns = io_stall_ns_.load(std::memory_order_relaxed);
  stats.retries = retries_;
  stats.flushes = flushes_;
  const uint64_t all_batches = io_batches_ + write_batches_;
  stats.mean_queue_depth =
      all_batches > 0 ? static_cast<double>(depth_samples_sum_) /
                            static_cast<double>(all_batches)
                      : 0.0;
  stats.peak_inflight_reads = peak_inflight_reads_;
  return stats;
}

}  // namespace mpsm::io

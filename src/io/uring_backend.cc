// Linux io_uring backend on raw syscalls (no liburing dependency): one
// SQ/CQ ring pair per backend, IORING_OP_READV/WRITEV submissions, a
// slot table keeping each op's iovec array alive until its CQE is
// reaped.
// Compiled to a stub returning nullptr when <linux/io_uring.h> is
// absent; on Linux the runtime probe (UringSupported) still gates
// whether CreateIoBackend hands this out, so old kernels and
// seccomp-filtered containers degrade to the threadpool backend.
//
// The synthetic device delay (IoRead::delay_us) is ignored here: this
// backend talks to the real device, and sleeping in the submitter
// would serialize exactly the latency the ring exists to overlap.
#include "io/backend_factories.h"

#if defined(__linux__) && __has_include(<linux/io_uring.h>)

#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace mpsm::io {

namespace {

int SysUringSetup(unsigned entries, struct io_uring_params* params) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, params));
}

int SysUringEnter(int fd, unsigned to_submit, unsigned min_complete,
                  unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

/// Acquire-load of a ring index published by the kernel.
unsigned LoadAcquire(const unsigned* ptr) {
  return std::atomic_ref<const unsigned>(*ptr).load(
      std::memory_order_acquire);
}

/// Release-store of a ring index for the kernel to observe.
void StoreRelease(unsigned* ptr, unsigned value) {
  std::atomic_ref<unsigned>(*ptr).store(value, std::memory_order_release);
}

class UringBackend final : public AsyncIoBackend {
 public:
  /// True when ring setup + mmaps succeeded; otherwise the factory
  /// discards the instance and reports nullptr.
  bool Init(size_t queue_depth) {
    struct io_uring_params params {};
    // The kernel rounds entries up to a power of two and caps at 4096.
    const unsigned entries = static_cast<unsigned>(
        std::clamp<size_t>(queue_depth, 1, 4096));
    ring_fd_ = SysUringSetup(entries, &params);
    if (ring_fd_ < 0) return false;

    sq_ring_bytes_ =
        params.sq_off.array + params.sq_entries * sizeof(unsigned);
    cq_ring_bytes_ =
        params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
    const bool single_mmap =
        (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
    if (single_mmap) {
      sq_ring_bytes_ = cq_ring_bytes_ = std::max(sq_ring_bytes_,
                                                 cq_ring_bytes_);
    }
    sq_ring_ptr_ = ::mmap(nullptr, sq_ring_bytes_, PROT_READ | PROT_WRITE,
                          MAP_SHARED | MAP_POPULATE, ring_fd_,
                          IORING_OFF_SQ_RING);
    if (sq_ring_ptr_ == MAP_FAILED) return false;
    cq_ring_ptr_ = single_mmap
                       ? sq_ring_ptr_
                       : ::mmap(nullptr, cq_ring_bytes_,
                                PROT_READ | PROT_WRITE,
                                MAP_SHARED | MAP_POPULATE, ring_fd_,
                                IORING_OFF_CQ_RING);
    if (cq_ring_ptr_ == MAP_FAILED) return false;
    sqe_bytes_ = params.sq_entries * sizeof(io_uring_sqe);
    sqes_ = static_cast<io_uring_sqe*>(
        ::mmap(nullptr, sqe_bytes_, PROT_READ | PROT_WRITE,
               MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES));
    if (sqes_ == MAP_FAILED) {
      sqes_ = nullptr;
      return false;
    }

    auto sq_base = static_cast<char*>(sq_ring_ptr_);
    sq_head_ = reinterpret_cast<unsigned*>(sq_base + params.sq_off.head);
    sq_tail_ = reinterpret_cast<unsigned*>(sq_base + params.sq_off.tail);
    sq_mask_ = reinterpret_cast<unsigned*>(sq_base +
                                           params.sq_off.ring_mask);
    sq_array_ = reinterpret_cast<unsigned*>(sq_base + params.sq_off.array);
    auto cq_base = static_cast<char*>(cq_ring_ptr_);
    cq_head_ = reinterpret_cast<unsigned*>(cq_base + params.cq_off.head);
    cq_tail_ = reinterpret_cast<unsigned*>(cq_base + params.cq_off.tail);
    cq_mask_ = reinterpret_cast<unsigned*>(cq_base +
                                           params.cq_off.ring_mask);
    cqes_ = reinterpret_cast<io_uring_cqe*>(cq_base + params.cq_off.cqes);

    depth_ = params.sq_entries;
    slots_.resize(depth_);
    free_slots_.reserve(depth_);
    for (size_t s = depth_; s > 0; --s) free_slots_.push_back(s - 1);
    return true;
  }

  ~UringBackend() override {
    // Reap stragglers before unmapping: the kernel must not scribble
    // into caller buffers (or these rings) after destruction.
    IoCompletion sink[16];
    while (InFlight() > 0) {
      if (PollCompletions(sink, 16, /*block=*/true) == 0) break;
    }
    if (sqes_ != nullptr) ::munmap(sqes_, sqe_bytes_);
    if (cq_ring_ptr_ != nullptr && cq_ring_ptr_ != MAP_FAILED &&
        cq_ring_ptr_ != sq_ring_ptr_) {
      ::munmap(cq_ring_ptr_, cq_ring_bytes_);
    }
    if (sq_ring_ptr_ != nullptr && sq_ring_ptr_ != MAP_FAILED) {
      ::munmap(sq_ring_ptr_, sq_ring_bytes_);
    }
    if (ring_fd_ >= 0) ::close(ring_fd_);
  }

  Status SubmitRead(const IoRead& read) override {
    Op op;
    op.iov = read.iov;
    op.iov_count = read.iov_count;
    op.user_data = read.user_data;
    op.total_bytes = read.TotalBytes();
    op.kind = Op::Kind::kRead;
    return SubmitOp(std::move(op), read.fd, read.offset);
  }

  Status SubmitWrite(const IoWrite& write) override {
    Op op;
    op.iov = write.iov;
    op.iov_count = write.iov_count;
    op.user_data = write.user_data;
    op.total_bytes = write.TotalBytes();
    op.kind = Op::Kind::kWrite;
    return SubmitOp(std::move(op), write.fd, write.offset);
  }

  Status SubmitFlush(const IoFlush& flush) override {
    Op op;
    op.user_data = flush.user_data;
    op.kind = Op::Kind::kFlush;
    return SubmitOp(std::move(op), flush.fd, 0);
  }

  size_t PollCompletions(IoCompletion* out, size_t max,
                         bool block) override {
    std::unique_lock<std::mutex> lock(mu_);
    size_t n = ReapLocked(out, max);
    while (n == 0 && block && in_flight_ > 0) {
      // Bounded sleep-poll instead of io_uring_enter(GETEVENTS): with
      // several reapers, a racing thread can take the only CQE and a
      // kernel-side wait on the then-idle ring would never wake.
      lock.unlock();
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      lock.lock();
      n = ReapLocked(out, max);
    }
    return n;
  }

  size_t InFlight() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return in_flight_;
  }

  size_t queue_depth() const override { return depth_; }
  IoBackendKind kind() const override { return IoBackendKind::kUring; }

 private:
  /// One in-flight operation; the slot copy pins the iovec array for
  /// the kernel's async transfer.
  struct Op {
    enum class Kind { kRead, kWrite, kFlush };
    std::array<::iovec, kMaxIovPerRead> iov{};
    uint32_t iov_count = 0;
    uint64_t user_data = 0;
    size_t total_bytes = 0;
    Kind kind = Kind::kRead;
  };

  Status SubmitOp(Op op, int fd, uint64_t offset) {
    std::lock_guard<std::mutex> lock(mu_);
    if (free_slots_.empty()) {
      return Status::Internal("io_uring submission queue full");
    }
    const size_t slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = std::move(op);

    const unsigned mask = *sq_mask_;
    const unsigned tail = *sq_tail_;  // single producer: plain load
    const unsigned index = tail & mask;
    io_uring_sqe& sqe = sqes_[index];
    std::memset(&sqe, 0, sizeof(sqe));
    sqe.fd = fd;
    sqe.user_data = slot;
    switch (slots_[slot].kind) {
      case Op::Kind::kFlush:
        // Data-only sync: the spool/journal files never need their
        // metadata (mtime) durable, just the page/record bytes.
        sqe.opcode = IORING_OP_FSYNC;
        sqe.fsync_flags = IORING_FSYNC_DATASYNC;
        break;
      case Op::Kind::kWrite:
      case Op::Kind::kRead:
        sqe.opcode = slots_[slot].kind == Op::Kind::kWrite
                         ? IORING_OP_WRITEV
                         : IORING_OP_READV;
        sqe.off = offset;
        sqe.addr = reinterpret_cast<uint64_t>(slots_[slot].iov.data());
        sqe.len = slots_[slot].iov_count;
        break;
    }
    sq_array_[index] = index;
    StoreRelease(sq_tail_, tail + 1);

    int submitted;
    do {
      submitted = SysUringEnter(ring_fd_, 1, 0, 0);
    } while (submitted < 0 && errno == EINTR);
    if (submitted < 1) {
      // The kernel consumed nothing: roll the tail back before freeing
      // the slot, or the next submit would make the kernel read this
      // stale SQE (wrong fd/offset into the next request's buffers)
      // while the new SQE is never consumed.
      StoreRelease(sq_tail_, tail);
      free_slots_.push_back(slot);
      return Status::IoError(std::string("io_uring_enter: ") +
                             (submitted < 0 ? std::strerror(errno)
                                            : "no sqe consumed"));
    }
    ++in_flight_;
    return Status::OK();
  }

  size_t ReapLocked(IoCompletion* out, size_t max) {
    size_t n = 0;
    unsigned head = LoadAcquire(cq_head_);
    const unsigned tail = LoadAcquire(cq_tail_);
    const unsigned mask = *cq_mask_;
    while (n < max && head != tail) {
      const io_uring_cqe& cqe = cqes_[head & mask];
      const auto slot = static_cast<size_t>(cqe.user_data);
      const char* what = slots_[slot].kind == Op::Kind::kWrite
                             ? "io_uring writev: "
                             : slots_[slot].kind == Op::Kind::kFlush
                                   ? "io_uring fsync: "
                                   : "io_uring readv: ";
      IoCompletion& done = out[n++];
      done.user_data = slots_[slot].user_data;
      if (cqe.res < 0) {
        done.status =
            (-cqe.res == EAGAIN || -cqe.res == EINTR)
                ? Status::Unavailable(std::string(what) +
                                      std::strerror(-cqe.res))
                : Status::IoError(std::string(what) + std::strerror(-cqe.res));
      } else if (slots_[slot].kind != Op::Kind::kFlush &&
                 static_cast<size_t>(cqe.res) !=
                     slots_[slot].total_bytes) {
        // Spooled pages are fully written before any read, so a short
        // readv here is a hard error, not an EOF to resume; a short
        // writev means the device accepted only part of the page.
        done.status =
            Status::IoError(std::string(what) + "short transfer");
      } else {
        done.status = Status::OK();
      }
      free_slots_.push_back(slot);
      --in_flight_;
      ++head;
    }
    StoreRelease(cq_head_, head);
    return n;
  }

  int ring_fd_ = -1;
  void* sq_ring_ptr_ = nullptr;
  void* cq_ring_ptr_ = nullptr;
  size_t sq_ring_bytes_ = 0;
  size_t cq_ring_bytes_ = 0;
  io_uring_sqe* sqes_ = nullptr;
  size_t sqe_bytes_ = 0;
  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned* sq_mask_ = nullptr;
  unsigned* sq_array_ = nullptr;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned* cq_mask_ = nullptr;
  io_uring_cqe* cqes_ = nullptr;

  mutable std::mutex mu_;
  size_t depth_ = 0;
  std::vector<Op> slots_;
  std::vector<size_t> free_slots_;
  size_t in_flight_ = 0;
};

}  // namespace

std::unique_ptr<AsyncIoBackend> CreateUringBackend(size_t queue_depth) {
  if (!UringSupported()) return nullptr;
  auto backend = std::make_unique<UringBackend>();
  if (!backend->Init(queue_depth)) return nullptr;
  return backend;
}

}  // namespace mpsm::io

#else  // no <linux/io_uring.h>

namespace mpsm::io {

std::unique_ptr<AsyncIoBackend> CreateUringBackend(size_t /*queue_depth*/) {
  return nullptr;
}

}  // namespace mpsm::io

#endif

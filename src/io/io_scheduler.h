// IoScheduler: batched, budgeted page-fetch scheduling over an
// AsyncIoBackend (docs/io.md).
//
// Callers submit PageFetchRequests — "read page id P into this pinned
// buffer, and route the completion to queue Q" — and, for the buffer
// pool's write-back path, PageWriteRequests ("write this frame to page
// P"). The scheduler
//   - coalesces runs of *adjacent* page ids into single vectored reads
//     (pages are contiguous on the spool file, so consecutive ids are
//     one device request), and likewise adjacent write-backs into
//     vectored writes,
//   - enforces a queue-depth cap and an in-flight byte budget toward
//     the backend (shared by reads and writes; reads go first),
//   - routes completions into per-queue lists (the spill path uses one
//     queue per NUMA node plus one per worker's private window), and
//   - keeps the counters the engine reports (pages_read, io_batches,
//     coalesced_pages, io_stall_ns, mean/peak queue depth).
//
// Thread-safe: any worker may Submit, Pump, or Drain concurrently;
// Pump is how I/O progresses — there is no scheduler thread. A blocked
// consumer pumping the scheduler *is* the poll-or-steal design: its
// wait time becomes submission/completion work for everyone.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <vector>

#include "io/io_backend.h"
#include "util/status.h"

namespace mpsm::io {

/// Scheduler tuning; Validate() is called by every front door that
/// embeds these knobs (DMpsmOptions, EngineOptions).
struct IoSchedulerOptions {
  /// Which engine performs the reads.
  IoBackendKind backend = IoBackendKind::kThreadpool;
  /// Most vectored reads in flight at the backend at once (>= 1).
  size_t queue_depth = 16;
  /// Most adjacent pages coalesced into one vectored read
  /// (1 <= batch <= kMaxIovPerRead).
  size_t batch_pages = 8;
  /// In-flight byte budget toward the backend; 0 derives
  /// queue_depth * batch_pages * page_bytes (i.e. no extra cap).
  uint64_t max_inflight_bytes = 0;
  /// Completion queues (>= 1); requests name their queue.
  uint32_t completion_queues = 1;
  /// Most times a transiently failed batch (kUnavailable: EINTR/EAGAIN
  /// class) is re-submitted before the failure is routed to callers.
  /// 0 disables retry.
  uint32_t max_retries = 3;
  /// Backoff before the first retry; doubles per attempt (bounded
  /// exponential: attempt k waits retry_backoff_us << k).
  uint32_t retry_backoff_us = 100;

  Status Validate() const;
};

/// One page fetch: read page `page` into `dest` (exactly the store's
/// page_bytes), complete onto queue `queue` carrying `user_data`.
struct PageFetchRequest {
  uint64_t page = 0;
  char* dest = nullptr;
  uint64_t user_data = 0;
  uint32_t queue = 0;
};

/// One page write-back: write `src` (exactly page_bytes, caller-owned
/// and unmodified until completion) to page `page`, complete onto
/// queue `queue` carrying `user_data` (the buffer pool's flush path).
struct PageWriteRequest {
  uint64_t page = 0;
  const char* src = nullptr;
  uint64_t user_data = 0;
  uint32_t queue = 0;
};

/// One finished page fetch or write-back.
struct PageFetchCompletion {
  uint64_t user_data = 0;
  Status status;
};

/// Cumulative scheduler counters (JoinReport observability).
struct IoSchedulerStats {
  /// Pages whose reads completed successfully.
  uint64_t pages_read = 0;
  /// Vectored reads issued to the backend.
  uint64_t io_batches = 0;
  /// Pages that rode along in a batch beyond the first (coalescing
  /// wins: pages_read - io_batches when everything coalesced).
  uint64_t coalesced_pages = 0;
  /// Pages whose write-backs completed successfully.
  uint64_t pages_written = 0;
  /// Vectored writes issued to the backend.
  uint64_t write_batches = 0;
  /// Pages that rode along in a write batch beyond the first.
  uint64_t coalesced_write_pages = 0;
  /// Wall nanoseconds callers spent blocked on I/O with no productive
  /// work available (recorded by callers via AddStallNs).
  uint64_t io_stall_ns = 0;
  /// Pages re-submitted after a transient (kUnavailable) failure.
  uint64_t retries = 0;
  /// fdatasync barriers issued to the backend (journal durability).
  uint64_t flushes = 0;
  /// Mean backend operations in flight, sampled after each submission
  /// (reads and writes).
  double mean_queue_depth = 0;
  /// Peak backend operations in flight (reads and writes share the
  /// queue-depth cap and byte budget).
  uint64_t peak_inflight_reads = 0;
};

/// Batched page-fetch scheduler over one spool file.
class IoScheduler {
 public:
  /// Creates a scheduler reading `page_bytes`-sized pages from `fd`
  /// (page id * page_bytes addressing). `delay_us` is the synthetic
  /// per-read device latency forwarded to software backends. Fails
  /// when the backend cannot be created (e.g. kUring unsupported).
  static Result<std::unique_ptr<IoScheduler>> Create(
      int fd, size_t page_bytes, uint32_t delay_us,
      IoSchedulerOptions options);

  /// As Create, with an injected backend (tests: fault injection).
  static Result<std::unique_ptr<IoScheduler>> CreateWithBackend(
      std::unique_ptr<AsyncIoBackend> backend, int fd, size_t page_bytes,
      uint32_t delay_us, IoSchedulerOptions options);

  ~IoScheduler();
  IoScheduler(const IoScheduler&) = delete;
  IoScheduler& operator=(const IoScheduler&) = delete;

  /// Queues `count` fetches and starts as many as the depth/byte
  /// budget allows. Buffers stay caller-owned until the matching
  /// completion is drained.
  Status Submit(const PageFetchRequest* requests, size_t count);

  /// Queues `count` write-backs (coalesced like reads; reads are
  /// pushed first when both are pending — write-back is background
  /// work). Source buffers stay caller-owned and must stay unmodified
  /// until the matching completion is drained.
  Status SubmitWrites(const PageWriteRequest* requests, size_t count);

  /// Queues one fdatasync durability barrier on the spool fd, completed
  /// onto `queue` carrying `user_data`. Write-barrier ordering: the
  /// flush is not issued to the backend until every write submitted
  /// *before* this call has completed, so an OK flush completion means
  /// those writes are on stable storage (the journal's commit fence —
  /// docs/recovery.md). Writes submitted after the flush may overtake
  /// it; they are simply also covered if they complete first.
  Status SubmitFlush(uint64_t user_data, uint32_t queue);

  /// Drives I/O forward: pushes pending coalesced batches while the
  /// budget allows and reaps ready backend completions into their
  /// queues. With `block`, waits for at least one completion when
  /// reads are in flight. Callers record any true blocking time via
  /// AddStallNs themselves (only they know whether the wait was
  /// stealable).
  Status Pump(bool block);

  /// Pops up to `max` completions from `queue`; returns the count.
  size_t Drain(uint32_t queue, PageFetchCompletion* out, size_t max);

  /// True while fetches are pending or in flight anywhere.
  bool Busy() const;

  /// Records caller wall time blocked with nothing productive to do.
  void AddStallNs(uint64_t ns);

  IoSchedulerStats stats() const;
  const IoSchedulerOptions& options() const { return options_; }
  const AsyncIoBackend& backend() const { return *backend_; }

 private:
  IoScheduler(std::unique_ptr<AsyncIoBackend> backend, int fd,
              size_t page_bytes, uint32_t delay_us,
              IoSchedulerOptions options);

  /// One page of an in-flight batch: where to route its completion,
  /// plus what is needed to re-queue it after a transient failure.
  struct BatchPage {
    uint64_t user_data = 0;
    uint32_t queue = 0;
    uint64_t page = 0;
    char* buf = nullptr;
    uint64_t seq = 0;       // write enqueue order (barrier tracking)
    uint32_t attempts = 0;  // transient-retry count so far
  };
  struct Batch {
    std::vector<BatchPage> pages;
    uint64_t bytes = 0;
    bool used = false;
    bool is_write = false;
    bool is_flush = false;
    /// Enqueue seq of the batch's first write page (FIFO: the minimum),
    /// tracked in inflight_write_seqs_ while the batch is in flight.
    uint64_t min_seq = 0;
  };

  /// One queued page transfer (read or write; `buf` is the const-cast
  /// source for writes — the backend never modifies write iovecs).
  struct PendingPage {
    uint64_t page = 0;
    char* buf = nullptr;
    uint64_t user_data = 0;
    uint32_t queue = 0;
    uint64_t seq = 0;
    uint32_t attempts = 0;
    /// Earliest submission time (transient-retry backoff); zero for
    /// first attempts.
    std::chrono::steady_clock::time_point not_before{};
  };

  /// One queued fdatasync barrier: eligible once every write with
  /// seq <= barrier has completed.
  struct PendingFlush {
    uint64_t barrier = 0;
    uint64_t user_data = 0;
    uint32_t queue = 0;
    uint32_t attempts = 0;
  };

  /// Builds + submits coalesced batches (reads first, then writes,
  /// then barrier-eligible flushes) while budget allows; caller holds
  /// mu_ on entry and exit (dropped around backend calls).
  Status PushPendingLocked(std::unique_lock<std::mutex>& lock);
  /// Coalesces + submits one batch from the front of `queue`; caller
  /// holds mu_ (dropped around the backend call). Returns false when
  /// the depth/byte budget blocks further submission from this queue.
  bool PushOneBatchLocked(std::unique_lock<std::mutex>& lock,
                          std::deque<PendingPage>& queue, bool is_write);
  /// Submits the front pending flush when its write barrier is clear;
  /// returns false when blocked (barrier, slots) or nothing pending.
  bool PushOneFlushLocked(std::unique_lock<std::mutex>& lock);
  /// True when every write submitted before `barrier` has completed.
  bool FlushBarrierClearLocked(uint64_t barrier) const;
  /// Routes a finished batch: re-queues transiently failed pages that
  /// have retries left (counting stats_.retries), routes everything
  /// else to its completion queue.
  void RouteBatchLocked(Batch& batch, const Status& status);
  /// Reaps backend completions and routes them; caller holds mu_ on
  /// entry and exit (dropped around backend calls). Returns reaped
  /// batch count.
  size_t ReapLocked(std::unique_lock<std::mutex>& lock, bool block);
  /// Earliest retry-backoff deadline among pending pages, if any.
  std::optional<std::chrono::steady_clock::time_point> NextRetryAtLocked()
      const;

  std::unique_ptr<AsyncIoBackend> backend_;
  const int fd_;
  const size_t page_bytes_;
  const uint32_t delay_us_;
  const IoSchedulerOptions options_;
  const uint64_t byte_budget_;

  mutable std::mutex mu_;
  std::deque<PendingPage> pending_;
  std::deque<PendingPage> pending_writes_;
  std::deque<PendingFlush> pending_flushes_;
  std::vector<Batch> batches_;  // slot table, index == backend user_data
  std::vector<size_t> free_batches_;
  std::vector<std::deque<PageFetchCompletion>> queues_;
  uint64_t inflight_bytes_ = 0;
  size_t inflight_reads_ = 0;
  /// Per-write enqueue sequence (monotonic) and the min seqs of write
  /// batches currently in flight — together they answer "is every
  /// write before barrier B durable-ordered?" for SubmitFlush.
  uint64_t write_enqueue_seq_ = 0;
  std::multiset<uint64_t> inflight_write_seqs_;

  // Stats (under mu_ except the atomic stall counter).
  uint64_t pages_read_ = 0;
  uint64_t io_batches_ = 0;
  uint64_t coalesced_pages_ = 0;
  uint64_t pages_written_ = 0;
  uint64_t write_batches_ = 0;
  uint64_t coalesced_write_pages_ = 0;
  uint64_t depth_samples_sum_ = 0;
  uint64_t peak_inflight_reads_ = 0;
  uint64_t retries_ = 0;
  uint64_t flushes_ = 0;
  std::atomic<uint64_t> io_stall_ns_{0};
};

}  // namespace mpsm::io

#include "io/io_backend.h"

#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <mutex>
#include <string>
#include <thread>

#include "io/backend_factories.h"

#if defined(__linux__) && __has_include(<linux/io_uring.h>)
#include <linux/io_uring.h>
#include <sys/syscall.h>
#define MPSM_HAVE_URING_HEADER 1
#endif

namespace mpsm::io {

const char* IoBackendKindName(IoBackendKind kind) {
  switch (kind) {
    case IoBackendKind::kSync:
      return "sync";
    case IoBackendKind::kThreadpool:
      return "threadpool";
    case IoBackendKind::kUring:
      return "uring";
    case IoBackendKind::kAuto:
      return "auto";
  }
  return "unknown";
}

std::optional<IoBackendKind> ParseIoBackendKind(std::string_view name) {
  if (name == "sync") return IoBackendKind::kSync;
  if (name == "threadpool") return IoBackendKind::kThreadpool;
  if (name == "uring") return IoBackendKind::kUring;
  if (name == "auto") return IoBackendKind::kAuto;
  return std::nullopt;
}

Status PerformBlockingRead(const IoRead& read) {
  if (read.delay_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(read.delay_us));
  }
  // Resume after short reads: preadv may legally return less than the
  // full range (signals, readahead boundaries). Only a zero return —
  // EOF inside the requested range — is a hard error.
  std::array<::iovec, kMaxIovPerRead> iov = read.iov;
  uint32_t first = 0;
  uint32_t count = read.iov_count;
  uint64_t offset = read.offset;
  while (count > 0) {
    const ssize_t n = ::preadv(read.fd, iov.data() + first,
                               static_cast<int>(count),
                               static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::Unavailable(std::string("preadv: ") +
                                   std::strerror(errno));
      }
      return Status::IoError(std::string("preadv: ") + std::strerror(errno));
    }
    if (n == 0) {
      return Status::IoError("preadv: unexpected EOF (short read)");
    }
    offset += static_cast<uint64_t>(n);
    size_t consumed = static_cast<size_t>(n);
    while (count > 0 && consumed >= iov[first].iov_len) {
      consumed -= iov[first].iov_len;
      ++first;
      --count;
    }
    if (count > 0 && consumed > 0) {
      iov[first].iov_base = static_cast<char*>(iov[first].iov_base) + consumed;
      iov[first].iov_len -= consumed;
    }
  }
  return Status::OK();
}

Status PerformBlockingWrite(const IoWrite& write) {
  if (write.delay_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(write.delay_us));
  }
  // Resume after short writes (signals, quota boundaries) instead of
  // failing the query on a legal partial pwritev. Zero progress means
  // the device accepted nothing (disk full) — a hard error.
  std::array<::iovec, kMaxIovPerRead> iov = write.iov;
  uint32_t first = 0;
  uint32_t count = write.iov_count;
  uint64_t offset = write.offset;
  while (count > 0) {
    const ssize_t n = ::pwritev(write.fd, iov.data() + first,
                                static_cast<int>(count),
                                static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::Unavailable(std::string("pwritev: ") +
                                   std::strerror(errno));
      }
      return Status::IoError(std::string("pwritev: ") + std::strerror(errno));
    }
    if (n == 0) {
      return Status::IoError("pwritev: no progress (disk full?)");
    }
    offset += static_cast<uint64_t>(n);
    size_t consumed = static_cast<size_t>(n);
    while (count > 0 && consumed >= iov[first].iov_len) {
      consumed -= iov[first].iov_len;
      ++first;
      --count;
    }
    if (count > 0 && consumed > 0) {
      iov[first].iov_base = static_cast<char*>(iov[first].iov_base) + consumed;
      iov[first].iov_len -= consumed;
    }
  }
  return Status::OK();
}

Status PerformBlockingFlush(const IoFlush& flush) {
  if (flush.delay_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(flush.delay_us));
  }
  while (::fdatasync(flush.fd) != 0) {
    if (errno == EINTR) continue;
    return Status::IoError(std::string("fdatasync: ") + std::strerror(errno));
  }
  return Status::OK();
}

namespace {

/// The blocking baseline: SubmitRead/SubmitWrite perform the
/// preadv/pwritev inline, so a submitter eats the full device round
/// trip — exactly the pre-async behavior every A/B run compares
/// against.
class SyncBackend final : public AsyncIoBackend {
 public:
  explicit SyncBackend(size_t queue_depth) : queue_depth_(queue_depth) {}

  Status SubmitRead(const IoRead& read) override {
    IoCompletion done;
    done.user_data = read.user_data;
    done.status = PerformBlockingRead(read);
    std::lock_guard<std::mutex> lock(mu_);
    completed_.push_back(std::move(done));
    return Status::OK();
  }

  Status SubmitWrite(const IoWrite& write) override {
    IoCompletion done;
    done.user_data = write.user_data;
    done.status = PerformBlockingWrite(write);
    std::lock_guard<std::mutex> lock(mu_);
    completed_.push_back(std::move(done));
    return Status::OK();
  }

  Status SubmitFlush(const IoFlush& flush) override {
    IoCompletion done;
    done.user_data = flush.user_data;
    done.status = PerformBlockingFlush(flush);
    std::lock_guard<std::mutex> lock(mu_);
    completed_.push_back(std::move(done));
    return Status::OK();
  }

  size_t PollCompletions(IoCompletion* out, size_t max,
                         bool /*block*/) override {
    std::lock_guard<std::mutex> lock(mu_);
    size_t n = 0;
    while (n < max && !completed_.empty()) {
      out[n++] = std::move(completed_.front());
      completed_.pop_front();
    }
    return n;
  }

  size_t InFlight() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return completed_.size();  // submitted == completed; all unreaped
  }

  size_t queue_depth() const override { return queue_depth_; }
  IoBackendKind kind() const override { return IoBackendKind::kSync; }

 private:
  const size_t queue_depth_;
  mutable std::mutex mu_;
  std::deque<IoCompletion> completed_;
};

}  // namespace

std::unique_ptr<AsyncIoBackend> CreateSyncBackend(size_t queue_depth) {
  return std::make_unique<SyncBackend>(queue_depth);
}

bool UringSupported() {
#ifdef MPSM_HAVE_URING_HEADER
  // Probe once: io_uring_setup with a tiny ring. EPERM/ENOSYS (seccomp
  // filters, old kernels) both mean "no".
  static const bool supported = [] {
    struct io_uring_params params {};
    const long fd = ::syscall(__NR_io_uring_setup, 1u, &params);
    if (fd < 0) return false;
    ::close(static_cast<int>(fd));
    return true;
  }();
  return supported;
#else
  return false;
#endif
}

IoBackendKind ResolveIoBackendKind(IoBackendKind kind) {
  if (kind != IoBackendKind::kAuto) return kind;
  return UringSupported() ? IoBackendKind::kUring : IoBackendKind::kThreadpool;
}

Result<std::unique_ptr<AsyncIoBackend>> CreateIoBackend(IoBackendKind kind,
                                                        size_t queue_depth) {
  if (queue_depth == 0) {
    return Status::InvalidArgument("io queue depth must be >= 1");
  }
  switch (ResolveIoBackendKind(kind)) {
    case IoBackendKind::kSync:
      return CreateSyncBackend(queue_depth);
    case IoBackendKind::kThreadpool:
      return CreateThreadpoolBackend(queue_depth);
    case IoBackendKind::kUring: {
      auto backend = CreateUringBackend(queue_depth);
      if (backend == nullptr) {
        return Status::NotSupported(
            "io_uring unavailable (kernel too old, seccomp-filtered, or "
            "built without <linux/io_uring.h>); use io_backend=auto to "
            "fall back to the threadpool backend");
      }
      return backend;
    }
    case IoBackendKind::kAuto:
      break;  // unreachable: ResolveIoBackendKind returned a concrete kind
  }
  return Status::Internal("unresolved io backend kind");
}

}  // namespace mpsm::io

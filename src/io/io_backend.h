// AsyncIoBackend: the submission/completion interface every page-I/O
// engine implements (src/io/ design: docs/io.md).
//
// A backend accepts *vectored reads* — one file range scattered into up
// to kMaxIovPerRead destination buffers — and completes them out of
// order. Three implementations ship: a sync backend that performs the
// preadv inline (the blocking baseline every A/B compares against), a
// portable threadpool backend, and a Linux io_uring backend built on
// raw syscalls (<linux/io_uring.h> at compile time, io_uring_setup
// probed at runtime, so CI containers and macOS keep working).
//
// Backends are deliberately dumb: no coalescing, no budgets, no
// routing. That policy lives in IoScheduler (io_scheduler.h), which is
// what the engine talks to.
#pragma once

#include <sys/uio.h>

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "io/io_backend_kind.h"
#include "util/status.h"

namespace mpsm::io {

/// Most destination buffers one vectored read can scatter into (the
/// coalescing cap of IoScheduler; well under the kernel's IOV_MAX).
inline constexpr size_t kMaxIovPerRead = 16;

/// One vectored read: fill iov[0..iov_count) from `fd` starting at
/// `offset`. Every buffer must stay valid until the read completes.
struct IoRead {
  int fd = -1;
  uint64_t offset = 0;
  uint32_t iov_count = 0;
  std::array<::iovec, kMaxIovPerRead> iov{};
  /// Opaque caller tag, returned verbatim in the completion.
  uint64_t user_data = 0;
  /// Synthetic per-read device latency (models a disk on page-cached
  /// dev machines). Honored by the software backends; the uring
  /// backend talks to the real device and ignores it.
  uint32_t delay_us = 0;

  /// Sum of the iov lengths.
  size_t TotalBytes() const {
    size_t bytes = 0;
    for (uint32_t i = 0; i < iov_count; ++i) bytes += iov[i].iov_len;
    return bytes;
  }
};

/// One vectored write: gather iov[0..iov_count) to `fd` starting at
/// `offset` (the buffer-pool write-back path). Every buffer must stay
/// valid — and unmodified — until the write completes.
struct IoWrite {
  int fd = -1;
  uint64_t offset = 0;
  uint32_t iov_count = 0;
  std::array<::iovec, kMaxIovPerRead> iov{};
  /// Opaque caller tag, returned verbatim in the completion.
  uint64_t user_data = 0;
  /// Synthetic per-write device latency (see IoRead::delay_us).
  uint32_t delay_us = 0;

  /// Sum of the iov lengths.
  size_t TotalBytes() const {
    size_t bytes = 0;
    for (uint32_t i = 0; i < iov_count; ++i) bytes += iov[i].iov_len;
    return bytes;
  }
};

/// One durability barrier: fdatasync `fd`, completing only once every
/// byte previously written to it is on stable storage (the recovery
/// journal's commit discipline — docs/recovery.md). The caller is
/// responsible for ordering: flush after the writes it must cover have
/// *completed* (IoScheduler::SubmitFlush adds that write barrier).
struct IoFlush {
  int fd = -1;
  /// Opaque caller tag, returned verbatim in the completion.
  uint64_t user_data = 0;
  /// Synthetic device latency (see IoRead::delay_us).
  uint32_t delay_us = 0;
};

/// One finished read, write, or flush. A short transfer (EOF inside a
/// read range, full device on a write) or device error surfaces as a
/// non-OK status; EINTR/EAGAIN-class transient failures surface as
/// kUnavailable so the scheduler can retry them.
struct IoCompletion {
  uint64_t user_data = 0;
  Status status;
};

/// Asynchronous vectored-I/O engine. Thread-safe: any thread may
/// submit or reap. The caller bounds in-flight operations to
/// queue_depth() (IoScheduler enforces this; backends may reject excess
/// submissions). Reads and writes complete through the same
/// PollCompletions stream, distinguished by user_data.
class AsyncIoBackend {
 public:
  virtual ~AsyncIoBackend() = default;

  /// Queues one read. Buffers and the completion slot they imply stay
  /// owned by the caller until the matching completion is reaped.
  virtual Status SubmitRead(const IoRead& read) = 0;

  /// Queues one write. Source buffers stay caller-owned (and must stay
  /// unmodified) until the matching completion is reaped.
  virtual Status SubmitWrite(const IoWrite& write) = 0;

  /// Queues one fdatasync barrier (sync: inline; threadpool: pool
  /// thread; uring: IORING_OP_FSYNC | IORING_FSYNC_DATASYNC).
  virtual Status SubmitFlush(const IoFlush& flush) = 0;

  /// Reaps up to `max` completions into `out`, returning the count.
  /// With `block` and operations in flight, waits for at least one;
  /// without `block` (or with nothing in flight) returns immediately.
  virtual size_t PollCompletions(IoCompletion* out, size_t max,
                                 bool block) = 0;

  /// Operations submitted and not yet reaped.
  virtual size_t InFlight() const = 0;

  virtual size_t queue_depth() const = 0;
  virtual IoBackendKind kind() const = 0;
};

/// True when this build has the io_uring header *and* the running
/// kernel accepts io_uring_setup (probed once, cached).
bool UringSupported();

/// Resolves kAuto to a concrete backend for this host: kUring when
/// UringSupported(), else kThreadpool. Concrete kinds pass through.
IoBackendKind ResolveIoBackendKind(IoBackendKind kind);

/// Creates a backend with the given queue depth (>= 1). kAuto resolves
/// via ResolveIoBackendKind; an explicit kUring on a host without
/// support returns NotSupported (the query fails, not the process).
Result<std::unique_ptr<AsyncIoBackend>> CreateIoBackend(IoBackendKind kind,
                                                        size_t queue_depth);

}  // namespace mpsm::io

// Portable async backend: a small pool of I/O threads services a
// bounded submission queue with blocking preadv/pwritev. This is the backend
// CI and non-Linux hosts run; it also carries the synthetic device
// delay (the sleep burns inside a pool thread, so submitters overlap
// it with compute — which is the whole point of the subsystem).
#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "io/backend_factories.h"

namespace mpsm::io {

namespace {

class ThreadpoolBackend final : public AsyncIoBackend {
 public:
  explicit ThreadpoolBackend(size_t queue_depth)
      : queue_depth_(queue_depth) {
    // One thread per 4 queue slots keeps deep queues from spawning a
    // thread army while still letting delay-carrying ops overlap.
    const size_t threads = std::clamp<size_t>((queue_depth + 3) / 4, 1, 8);
    for (size_t t = 0; t < threads; ++t) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadpoolBackend() override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    submitted_.notify_all();
    for (auto& worker : workers_) worker.join();
  }

  Status SubmitRead(const IoRead& read) override {
    PendingOp op;
    op.read = read;
    return SubmitOp(std::move(op));
  }

  Status SubmitWrite(const IoWrite& write) override {
    PendingOp op;
    op.kind = PendingOp::Kind::kWrite;
    op.write = write;
    return SubmitOp(std::move(op));
  }

  Status SubmitFlush(const IoFlush& flush) override {
    PendingOp op;
    op.kind = PendingOp::Kind::kFlush;
    op.flush = flush;
    return SubmitOp(std::move(op));
  }

  size_t PollCompletions(IoCompletion* out, size_t max,
                         bool block) override {
    std::unique_lock<std::mutex> lock(mu_);
    if (block) {
      completed_cv_.wait(lock, [&] {
        return !completed_.empty() || in_flight_ == completed_.size();
      });
    }
    size_t n = 0;
    while (n < max && !completed_.empty()) {
      out[n++] = std::move(completed_.front());
      completed_.pop_front();
      --in_flight_;
    }
    return n;
  }

  size_t InFlight() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return in_flight_;
  }

  size_t queue_depth() const override { return queue_depth_; }
  IoBackendKind kind() const override { return IoBackendKind::kThreadpool; }

 private:
  /// One queued operation: a read, a write, or an fdatasync barrier
  /// (the pool threads execute all three with the blocking helpers).
  struct PendingOp {
    enum class Kind { kRead, kWrite, kFlush };
    Kind kind = Kind::kRead;
    IoRead read;
    IoWrite write;
    IoFlush flush;
  };

  Status SubmitOp(PendingOp op) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_) return Status::Internal("io backend stopped");
      pending_.push_back(std::move(op));
      ++in_flight_;
    }
    submitted_.notify_one();
    return Status::OK();
  }

  void WorkerLoop() {
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
      submitted_.wait(lock, [&] { return stop_ || !pending_.empty(); });
      if (stop_) return;
      const PendingOp op = pending_.front();
      pending_.pop_front();
      lock.unlock();
      IoCompletion done;
      switch (op.kind) {
        case PendingOp::Kind::kWrite:
          done.user_data = op.write.user_data;
          done.status = PerformBlockingWrite(op.write);
          break;
        case PendingOp::Kind::kFlush:
          done.user_data = op.flush.user_data;
          done.status = PerformBlockingFlush(op.flush);
          break;
        case PendingOp::Kind::kRead:
          done.user_data = op.read.user_data;
          done.status = PerformBlockingRead(op.read);
          break;
      }
      lock.lock();
      completed_.push_back(std::move(done));
      completed_cv_.notify_all();
    }
  }

  const size_t queue_depth_;
  mutable std::mutex mu_;
  std::condition_variable submitted_;
  std::condition_variable completed_cv_;
  std::deque<PendingOp> pending_;
  std::deque<IoCompletion> completed_;
  // Submitted and not yet reaped (pending + executing + completed).
  size_t in_flight_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace

std::unique_ptr<AsyncIoBackend> CreateThreadpoolBackend(size_t queue_depth) {
  return std::make_unique<ThreadpoolBackend>(queue_depth);
}

}  // namespace mpsm::io

#include "util/env.h"

#include <algorithm>
#include <cstdlib>

namespace mpsm {

std::optional<std::string> GetEnv(const std::string& name) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr) return std::nullopt;
  return std::string(value);
}

int64_t GetEnvInt(const std::string& name, int64_t fallback) {
  auto value = GetEnv(name);
  if (!value) return fallback;
  char* end = nullptr;
  const int64_t parsed = std::strtoll(value->c_str(), &end, 10);
  if (end == value->c_str() || *end != '\0') return fallback;
  return parsed;
}

double GetEnvDouble(const std::string& name, double fallback) {
  auto value = GetEnv(name);
  if (!value) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value->c_str(), &end);
  if (end == value->c_str() || *end != '\0') return fallback;
  return parsed;
}

bool GetEnvBool(const std::string& name, bool fallback) {
  auto value = GetEnv(name);
  if (!value) return fallback;
  std::string lowered = *value;
  std::transform(lowered.begin(), lowered.end(), lowered.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lowered == "1" || lowered == "true" || lowered == "yes" ||
      lowered == "on") {
    return true;
  }
  if (lowered == "0" || lowered == "false" || lowered == "no" ||
      lowered == "off") {
    return false;
  }
  return fallback;
}

}  // namespace mpsm

// Minimal fixed-width ASCII table printer used by the benchmark harness
// to emit the paper's figure series in a readable form.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace mpsm {

/// Accumulates rows of string cells and prints them as an aligned table.
///
/// Example output:
///   algorithm  multiplicity  phase1[ms]  total[ms]
///   ---------  ------------  ----------  ---------
///   p-mpsm     4             118.2       407.8
class TablePrinter {
 public:
  /// Sets the column headers; must be called before AddRow.
  void SetHeader(std::vector<std::string> header);

  /// Appends one data row. Row length must equal the header length.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats arithmetic values with %g / integrals directly.
  template <typename... Args>
  void AddRowValues(const Args&... args) {
    std::vector<std::string> row;
    (row.push_back(FormatCell(args)), ...);
    AddRow(std::move(row));
  }

  /// Renders the table to a string.
  std::string ToString() const;

  /// Prints the table to stdout.
  void Print() const;

 private:
  static std::string FormatCell(const std::string& s) { return s; }
  static std::string FormatCell(const char* s) { return s; }
  static std::string FormatCell(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f", v);
    return buf;
  }
  template <typename T>
  static std::string FormatCell(const T& v) {
    return std::to_string(v);
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mpsm

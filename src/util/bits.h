// Bit-manipulation helpers used by radix clustering, histograms and the
// key normalizer.
#pragma once

#include <bit>
#include <cstdint>

namespace mpsm::bits {

/// True iff v is zero or a power of two.
constexpr bool IsPowerOfTwoOrZero(uint64_t v) { return (v & (v - 1)) == 0; }

/// True iff v is a (nonzero) power of two.
constexpr bool IsPowerOfTwo(uint64_t v) { return v != 0 && IsPowerOfTwoOrZero(v); }

/// Smallest power of two >= v (v must be <= 2^63).
constexpr uint64_t NextPowerOfTwo(uint64_t v) {
  if (v <= 1) return 1;
  return uint64_t{1} << (64 - std::countl_zero(v - 1));
}

/// floor(log2(v)); v must be nonzero.
constexpr uint32_t Log2Floor(uint64_t v) {
  return 63 - static_cast<uint32_t>(std::countl_zero(v));
}

/// ceil(log2(v)); v must be nonzero.
constexpr uint32_t Log2Ceil(uint64_t v) {
  return v <= 1 ? 0 : Log2Floor(v - 1) + 1;
}

/// Number of significant (used) bits in v: 0 for 0, Log2Floor(v)+1 otherwise.
constexpr uint32_t BitWidth(uint64_t v) {
  return static_cast<uint32_t>(std::bit_width(v));
}

/// ceil(a / b) for b > 0.
constexpr uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

/// Rounds v up to the next multiple of alignment (a power of two).
constexpr uint64_t AlignUp(uint64_t v, uint64_t alignment) {
  return (v + alignment - 1) & ~(alignment - 1);
}

}  // namespace mpsm::bits

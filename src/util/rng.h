// Deterministic, fast pseudo-random number generation for workload
// generators and property tests. Not cryptographic.
#pragma once

#include <cstdint>

namespace mpsm {

/// SplitMix64: used to seed/bootstrap other generators and as a cheap
/// stateless mixer. Reference: Steele, Lea, Flood (2014).
constexpr uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// xoshiro256**: fast, high-quality 64-bit PRNG (Blackman & Vigna).
/// Deterministic for a given seed across platforms.
class Xoshiro256 {
 public:
  explicit Xoshiro256(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : s_) word = SplitMix64(sm);
  }

  /// Next uniformly distributed 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound) without modulo bias (Lemire's method).
  uint64_t NextBounded(uint64_t bound) {
    // 128-bit multiply keeps the distribution unbiased enough for
    // workload generation (single-pass variant).
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * 0x1.0p-53; }

  // UniformRandomBitGenerator interface for <algorithm> interop.
  using result_type = uint64_t;
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~uint64_t{0}; }
  uint64_t operator()() { return Next(); }

 private:
  static constexpr uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t s_[4];
};

}  // namespace mpsm

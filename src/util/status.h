// Status / Result error-handling primitives.
//
// The library does not throw exceptions from its hot paths. API-level
// operations that can fail (I/O, configuration validation) return a Status
// or a Result<T>, in the style of Arrow / RocksDB.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace mpsm {

/// Coarse error taxonomy for the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfMemory,
  kIoError,
  kInternal,
  kNotSupported,
  kResourceExhausted,
  kCancelled,
  /// Transient condition (EINTR/EAGAIN-class): retrying the same
  /// operation may succeed. The IoScheduler retries these with bounded
  /// backoff before latching a terminal failure.
  kUnavailable,
  /// A named durable artifact does not exist (e.g. no recovery
  /// manifest for a query — a cold start, not a failure).
  kNotFound,
};

/// Human-readable name of a StatusCode (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Lightweight success-or-error value returned by fallible operations.
///
/// An OK status carries no message and is cheap to copy. Error statuses
/// carry a code and a free-form message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// A value-or-Status union: holds T on success, an error Status otherwise.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status. `status.ok()` must be false.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Access to the contained value; requires ok().
  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Propagates an error status out of the enclosing function.
#define MPSM_RETURN_NOT_OK(expr)                 \
  do {                                           \
    ::mpsm::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                   \
  } while (0)

/// Evaluates a Result expression, assigning the value into `lhs` or
/// propagating the error.
#define MPSM_ASSIGN_OR_RETURN(lhs, expr)         \
  auto MPSM_CONCAT_(_res_, __LINE__) = (expr);   \
  if (!MPSM_CONCAT_(_res_, __LINE__).ok())       \
    return MPSM_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(MPSM_CONCAT_(_res_, __LINE__)).value()

#define MPSM_CONCAT_IMPL_(a, b) a##b
#define MPSM_CONCAT_(a, b) MPSM_CONCAT_IMPL_(a, b)

}  // namespace mpsm

#include "util/status.h"

namespace mpsm {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfMemory:
      return "OutOfMemory";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kNotFound:
      return "NotFound";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace mpsm

// Minimal streaming JSON writer for report/metric serialization
// (JoinReport::ToJson, bench report emission). Write-only, no DOM: the
// caller opens/closes objects and arrays in order; commas and escaping
// are handled here.
#pragma once

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>

namespace mpsm {

class JsonWriter {
 public:
  std::string& str() { return out_; }
  const std::string& str() const { return out_; }

  void BeginObject() {
    Comma();
    out_ += '{';
    fresh_ = true;
  }
  void EndObject() {
    out_ += '}';
    fresh_ = false;
  }
  void BeginArray() {
    Comma();
    out_ += '[';
    fresh_ = true;
  }
  void EndArray() {
    out_ += ']';
    fresh_ = false;
  }

  /// Object key; follow with exactly one value (or Begin*).
  void Key(const char* key) {
    Comma();
    AppendString(key);
    out_ += ':';
    fresh_ = true;  // the value itself must not emit a comma
  }

  void Value(const char* s) {
    Comma();
    AppendString(s);
  }
  void Value(const std::string& s) { Value(s.c_str()); }
  void Value(uint64_t v) {
    Comma();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    out_ += buf;
  }
  void Value(int64_t v) {
    Comma();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, v);
    out_ += buf;
  }
  void Value(uint32_t v) { Value(static_cast<uint64_t>(v)); }
  void Value(int v) { Value(static_cast<int64_t>(v)); }
  void Value(double v) {
    Comma();
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    out_ += buf;
  }
  void Value(bool v) {
    Comma();
    out_ += v ? "true" : "false";
  }

  /// Key + value in one call.
  template <typename T>
  void Field(const char* key, T value) {
    Key(key);
    Value(value);
  }

 private:
  void Comma() {
    if (!fresh_) out_ += ',';
    fresh_ = false;
  }

  void AppendString(const char* s) {
    out_ += '"';
    for (; *s != '\0'; ++s) {
      const char c = *s;
      if (c == '"' || c == '\\') {
        out_ += '\\';
        out_ += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x", c);
        out_ += buf;
      } else {
        out_ += c;
      }
    }
    out_ += '"';
  }

  std::string out_;
  bool fresh_ = true;
};

}  // namespace mpsm

#include "util/table.h"

#include <algorithm>
#include <cassert>

namespace mpsm {

void TablePrinter::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto append_row = [&](std::string& out, const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      if (c + 1 < row.size()) {
        out.append(widths[c] - row[c].size() + 2, ' ');
      }
    }
    out += '\n';
  };

  std::string out;
  append_row(out, header_);
  std::vector<std::string> rule;
  rule.reserve(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) {
    rule.emplace_back(widths[c], '-');
  }
  append_row(out, rule);
  for (const auto& row : rows_) append_row(out, row);
  return out;
}

void TablePrinter::Print() const {
  const std::string rendered = ToString();
  std::fwrite(rendered.data(), 1, rendered.size(), stdout);
  std::fflush(stdout);
}

}  // namespace mpsm

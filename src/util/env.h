// Environment-variable driven configuration knobs shared by tests and
// benches (e.g. MPSM_SCALE_LOG2 to shrink/grow workloads).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace mpsm {

/// Reads an environment variable, if set.
std::optional<std::string> GetEnv(const std::string& name);

/// Reads an integer environment variable; returns `fallback` when unset
/// or unparsable.
int64_t GetEnvInt(const std::string& name, int64_t fallback);

/// Reads a floating point environment variable with fallback.
double GetEnvDouble(const std::string& name, double fallback);

/// Reads a boolean environment variable ("1"/"true"/"yes" are true).
bool GetEnvBool(const std::string& name, bool fallback);

}  // namespace mpsm

// Wall-clock timing helpers for phase instrumentation and benches.
#pragma once

#include <chrono>
#include <cstdint>

namespace mpsm {

/// Monotonic wall-clock stopwatch with microsecond resolution.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or last Reset, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mpsm

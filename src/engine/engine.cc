#include "engine/engine.h"

#include <utility>

#include "baseline/radix_join.h"
#include "baseline/wisconsin_join.h"
#include "core/b_mpsm.h"
#include "simd/caps.h"
#include "util/timer.h"

namespace mpsm::engine {

Engine::Engine(EngineOptions options)
    : topology_(numa::Topology::Probe()), options_(std::move(options)) {
  stats_.topology_probes = 1;
}

Engine::Engine(const numa::Topology& topology, EngineOptions options)
    : topology_(topology), options_(std::move(options)) {}

Engine::~Engine() = default;

uint32_t Engine::TeamSizeFor(const JoinSpec& spec) const {
  const EngineOptions& options = spec.options ? *spec.options : options_;
  if (options.workers != 0) return options.workers;
  if (spec.r != nullptr && spec.r->num_chunks() != 0) {
    return spec.r->num_chunks();
  }
  return std::max(topology_.num_cores(), 1u);
}

WorkerTeam& Engine::TeamFor(uint32_t team_size) {
  if (team_ == nullptr || team_->size() != team_size) {
    team_ = std::make_unique<WorkerTeam>(topology_, team_size);
    ++stats_.team_spawns;
  }
  return *team_;
}

Result<JoinPlan> Engine::Plan(const JoinSpec& spec) const {
  const EngineOptions& options = spec.options ? *spec.options : options_;
  Planner planner(&topology_, &options);
  return planner.Plan(spec, TeamSizeFor(spec));
}

Result<JoinReport> Engine::Execute(const JoinSpec& spec) {
  if (spec.r == nullptr || spec.s == nullptr) {
    return Status::InvalidArgument("JoinSpec needs both input relations");
  }
  if (spec.consumers == nullptr) {
    return Status::InvalidArgument("JoinSpec needs a consumer factory");
  }
  const uint32_t team_size = TeamSizeFor(spec);
  if (spec.r->num_chunks() != team_size ||
      spec.s->num_chunks() != team_size) {
    return Status::InvalidArgument(
        "inputs must be chunked into one chunk per worker (" +
        std::to_string(team_size) + "): |R| chunks = " +
        std::to_string(spec.r->num_chunks()) + ", |S| chunks = " +
        std::to_string(spec.s->num_chunks()));
  }

  JoinReport report;
  WallTimer plan_timer;
  {
    const EngineOptions& options = spec.options ? *spec.options : options_;
    Planner planner(&topology_, &options);
    MPSM_ASSIGN_OR_RETURN(report.plan, planner.Plan(spec, team_size));
  }
  report.plan_seconds = plan_timer.ElapsedSeconds();
  ++stats_.plans_created;
  stats_.plan_seconds_total += report.plan_seconds;
  report.simd_used = simd::Resolve(PlanSimdKnob(report.plan));

  WorkerTeam& team = TeamFor(team_size);
  Result<JoinRunInfo> info = Status::Internal("unreachable");
  switch (report.plan.algorithm) {
    case Algorithm::kPMpsm: {
      report.pmpsm.emplace();
      info = PMpsmJoin(report.plan.mpsm)
                 .Execute(team, *spec.r, *spec.s, *spec.consumers,
                          &*report.pmpsm);
      break;
    }
    case Algorithm::kBMpsm:
      info = BMpsmJoin(report.plan.mpsm)
                 .Execute(team, *spec.r, *spec.s, *spec.consumers);
      break;
    case Algorithm::kDMpsm: {
      report.dmpsm.emplace();
      info = disk::DMpsmJoin(report.plan.dmpsm)
                 .Execute(team, *spec.r, *spec.s, *spec.consumers,
                          &*report.dmpsm);
      break;
    }
    case Algorithm::kRadix:
      info = baseline::RadixHashJoin(report.plan.radix)
                 .Execute(team, *spec.r, *spec.s, *spec.consumers);
      break;
    case Algorithm::kWisconsin:
      info = baseline::WisconsinHashJoin().Execute(team, *spec.r, *spec.s,
                                                   *spec.consumers);
      break;
  }
  if (!info.ok()) return info.status();
  report.info = std::move(info).value();
  ++stats_.queries_executed;
  return report;
}

}  // namespace mpsm::engine

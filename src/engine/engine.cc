#include "engine/engine.h"

#include <utility>

#include "baseline/radix_join.h"
#include "baseline/wisconsin_join.h"
#include "core/b_mpsm.h"
#include "parallel/donation.h"
#include "sim/calibration.h"
#include "simd/caps.h"
#include "util/timer.h"

namespace mpsm::engine {

Engine::Engine(EngineOptions options)
    : topology_(numa::Topology::Probe()), options_(std::move(options)) {
  stats_.topology_probes = 1;
}

Engine::Engine(const numa::Topology& topology, EngineOptions options)
    : topology_(topology), options_(std::move(options)) {}

Engine::~Engine() = default;

uint32_t Engine::TeamSizeFor(const JoinSpec& spec) const {
  const EngineOptions& options = spec.options ? *spec.options : options_;
  if (options.workers != 0) return options.workers;
  if (spec.r != nullptr && spec.r->num_chunks() != 0) {
    return spec.r->num_chunks();
  }
  return std::max(topology_.num_cores(), 1u);
}

WorkerTeam& Engine::TeamFor(uint32_t team_size) {
  if (team_ == nullptr || team_->size() != team_size) {
    team_ = std::make_unique<WorkerTeam>(topology_, team_size);
    ++stats_.team_spawns;
    if (donation_ != nullptr) team_->set_donation(donation_);
  }
  return *team_;
}

void Engine::set_donation(DonationPool* pool) {
  donation_ = pool;
  if (team_ != nullptr) team_->set_donation(pool);
}

sim::MachineModel Engine::machine() const {
  if (calibrated_machine_.has_value()) return *calibrated_machine_;
  return Planner(&topology_, &options_).PlanningMachine();
}

Result<JoinPlan> Engine::Plan(const JoinSpec& spec) const {
  const EngineOptions& options = spec.options ? *spec.options : options_;
  Planner planner(&topology_, &options);
  return planner.Plan(spec, TeamSizeFor(spec));
}

Result<JoinReport> Engine::Execute(const JoinSpec& spec) {
  if (spec.r == nullptr || spec.s == nullptr) {
    return Status::InvalidArgument("JoinSpec needs both input relations");
  }
  if (spec.consumers == nullptr) {
    return Status::InvalidArgument("JoinSpec needs a consumer factory");
  }
  const uint32_t team_size = TeamSizeFor(spec);
  if (spec.r->num_chunks() != team_size ||
      spec.s->num_chunks() != team_size) {
    return Status::InvalidArgument(
        "inputs must be chunked into one chunk per worker (" +
        std::to_string(team_size) + "): |R| chunks = " +
        std::to_string(spec.r->num_chunks()) + ", |S| chunks = " +
        std::to_string(spec.s->num_chunks()));
  }

  JoinReport report;
  WallTimer plan_timer;
  {
    const EngineOptions& options = spec.options ? *spec.options : options_;
    Planner planner(&topology_, &options);
    MPSM_ASSIGN_OR_RETURN(report.plan, planner.Plan(spec, team_size));
  }
  report.plan_seconds = plan_timer.ElapsedSeconds();
  ++stats_.plans_created;
  stats_.plan_seconds_total += report.plan_seconds;
  report.simd_used = simd::Resolve(PlanSimdKnob(report.plan));

  if (spec.shared_public_runs != nullptr &&
      report.plan.algorithm != Algorithm::kPMpsm) {
    return Status::InvalidArgument(
        "shared public runs require a P-MPSM plan (got " +
        std::string(AlgorithmName(report.plan.algorithm)) +
        "); force Algorithm::kPMpsm");
  }

  WorkerTeam& team = TeamFor(team_size);
  Result<JoinRunInfo> info = Status::Internal("unreachable");
  switch (report.plan.algorithm) {
    case Algorithm::kPMpsm: {
      report.pmpsm.emplace();
      info = PMpsmJoin(report.plan.mpsm)
                 .Execute(team, *spec.r, *spec.s, *spec.consumers,
                          &*report.pmpsm, spec.shared_public_runs);
      break;
    }
    case Algorithm::kBMpsm:
      info = BMpsmJoin(report.plan.mpsm)
                 .Execute(team, *spec.r, *spec.s, *spec.consumers);
      break;
    case Algorithm::kDMpsm: {
      report.dmpsm.emplace();
      info = disk::DMpsmJoin(report.plan.dmpsm)
                 .Execute(team, *spec.r, *spec.s, *spec.consumers,
                          &*report.dmpsm);
      break;
    }
    case Algorithm::kRadix:
      info = baseline::RadixHashJoin(report.plan.radix)
                 .Execute(team, *spec.r, *spec.s, *spec.consumers);
      break;
    case Algorithm::kWisconsin:
      info = baseline::WisconsinHashJoin().Execute(team, *spec.r, *spec.s,
                                                   *spec.consumers);
      break;
  }
  if (!info.ok()) return info.status();
  report.info = std::move(info).value();
  report.measured_phase_seconds = report.info.MaxPhaseSeconds();
  report.measured_seconds = report.info.critical_path_seconds;
  ++stats_.queries_executed;

  // Close the planner feedback loop: fold this run's effective
  // coefficients into the session model so the next plan's predictions
  // track this host. Session options only — a per-query override must
  // not steer the session model.
  if (spec.options == nullptr && options_.recalibrate) {
    sim::MachineModel model = machine();
    sim::Recalibrate(model,
                     sim::ObserveRun(report.info.workers,
                                     simd::KeysPerCompare(report.simd_used)));
    calibrated_machine_ = model;
    options_.machine = model;
  }
  return report;
}

}  // namespace mpsm::engine

#include "engine/engine.h"

#include <atomic>
#include <utility>

#include "baseline/radix_join.h"
#include "baseline/wisconsin_join.h"
#include "cache/run_cache.h"
#include "core/b_mpsm.h"
#include "core/public_runs.h"
#include "obs/metrics.h"
#include "parallel/donation.h"
#include "recovery/recovery_manager.h"
#include "sim/calibration.h"
#include "simd/caps.h"
#include "util/json.h"
#include "util/timer.h"

namespace mpsm::engine {

namespace {
/// Engine-assigned query ids; process-wide so concurrent sessions
/// (service lanes) never collide on the trace pid.
std::atomic<uint64_t> g_next_query_id{1};
}  // namespace

const char* RunSourceName(RunSource source) {
  switch (source) {
    case RunSource::kFreshSort:
      return "fresh-sort";
    case RunSource::kSharedRuns:
      return "shared-runs";
    case RunSource::kCachedBase:
      return "cached-base";
    case RunSource::kCachedMerge:
      return "cached-merge";
  }
  return "unknown";
}

Engine::Engine(EngineOptions options)
    : topology_(numa::Topology::Probe()), options_(std::move(options)) {
  stats_.topology_probes = 1;
}

Engine::Engine(const numa::Topology& topology, EngineOptions options)
    : topology_(topology), options_(std::move(options)) {}

Engine::~Engine() = default;

uint32_t Engine::TeamSizeFor(const JoinSpec& spec) const {
  const EngineOptions& options = spec.options ? *spec.options : options_;
  if (options.workers != 0) return options.workers;
  if (spec.r != nullptr && spec.r->num_chunks() != 0) {
    return spec.r->num_chunks();
  }
  return std::max(topology_.num_cores(), 1u);
}

WorkerTeam& Engine::TeamFor(uint32_t team_size) {
  if (team_ == nullptr || team_->size() != team_size) {
    team_ = std::make_unique<WorkerTeam>(topology_, team_size);
    ++stats_.team_spawns;
    if (donation_ != nullptr) team_->set_donation(donation_);
  }
  return *team_;
}

void Engine::set_donation(DonationPool* pool) {
  donation_ = pool;
  if (team_ != nullptr) team_->set_donation(pool);
}

sim::MachineModel Engine::machine() const {
  if (calibrated_machine_.has_value()) return *calibrated_machine_;
  return Planner(&topology_, &options_).PlanningMachine();
}

Result<uint64_t> Engine::Ingest(Relation& rel, const Tuple* tuples,
                                size_t n) {
  if (run_cache_ == nullptr) {
    return Status::InvalidArgument(
        "Ingest needs a run cache: call set_run_cache first");
  }
  if (rel.id() == 0) {
    return Status::InvalidArgument(
        "relation has no identity (default-constructed): ingest targets "
        "must come from Relation::Allocate or Relation::FromVector");
  }
  return run_cache_->Ingest(rel, tuples, n);
}

/// Equi-height bound count the engine installs/looks up cached runs
/// with — the same f*T a fresh P-MPSM phase 1 would derive.
static uint32_t CacheNumBounds(uint32_t equi_height_factor,
                               uint32_t team_size) {
  return std::max(1u, equi_height_factor * team_size);
}

Result<JoinPlan> Engine::Plan(const JoinSpec& spec) const {
  const EngineOptions& options = spec.options ? *spec.options : options_;
  Planner planner(&topology_, &options);
  const uint32_t team_size = TeamSizeFor(spec);
  CachedRunsHint hint;
  const CachedRunsHint* hint_ptr = nullptr;
  if (run_cache_ != nullptr && spec.shared_public_runs == nullptr &&
      spec.s != nullptr) {
    const auto peek = run_cache_->Peek(
        *spec.s, team_size,
        CacheNumBounds(ResolveMpsmOptions(options, spec.kind)
                           .equi_height_factor,
                       team_size));
    if (peek.hit) {
      hint.delta_tuples = peek.delta_tuples;
      hint.delta_runs = peek.delta_runs;
      hint_ptr = &hint;
    }
  }
  return planner.Plan(spec, team_size, hint_ptr);
}

Result<JoinReport> Engine::Execute(const JoinSpec& spec) {
  if (spec.r == nullptr || spec.s == nullptr) {
    return Status::InvalidArgument("JoinSpec needs both input relations");
  }
  if (spec.consumers == nullptr) {
    return Status::InvalidArgument("JoinSpec needs a consumer factory");
  }
  const EngineOptions& options = spec.options ? *spec.options : options_;
  const uint32_t team_size = TeamSizeFor(spec);

  JoinReport report;
  report.query_id = spec.query_id != 0
                        ? spec.query_id
                        : g_next_query_id.fetch_add(
                              1, std::memory_order_relaxed);
  report.admission_wait_ns = spec.admission_wait_ns;
  if (options.trace) {
    obs::TraceSinkOptions trace_options;
    trace_options.ring_events = options.trace_ring_events;
    report.trace =
        std::make_shared<obs::TraceSink>(report.query_id, trace_options);
  }
  obs::TraceSink* sink = report.trace.get();
  obs::ScopedTraceThread trace_scope(sink, "caller", 0);
  const int64_t query_start_ns = sink != nullptr ? sink->NowNs() : 0;
  if (sink != nullptr && spec.admission_wait_ns > 0) {
    // The wait happened before Execute was entered: record it as a
    // retroactive span ending at the query's start.
    sink->RecordSpan(
        obs::kCatService, "admission.wait",
        query_start_ns - static_cast<int64_t>(spec.admission_wait_ns),
        static_cast<int64_t>(spec.admission_wait_ns));
  }

  // Effective inputs: a relation with delta-ingested tuples is
  // logically base + delta log (cache/run_cache.h). The cached P-MPSM
  // path below merges S's deltas on read; every *other* reader of a
  // delta-bearing relation gets the cache's materialized view in place
  // of the stale base storage.
  JoinSpec run_spec = spec;
  std::shared_ptr<const Relation> r_view;
  if (run_cache_ != nullptr &&
      run_cache_->PendingDeltaTuples(*spec.r) > 0) {
    r_view = run_cache_->MaterializedView(*spec.r, topology_, team_size);
    if (r_view != nullptr) {
      run_spec.r = r_view.get();
      ++stats_.cache_materializations;
    }
  }
  if (run_spec.r->num_chunks() != team_size ||
      run_spec.s->num_chunks() != team_size) {
    return Status::InvalidArgument(
        "inputs must be chunked into one chunk per worker (" +
        std::to_string(team_size) + "): |R| chunks = " +
        std::to_string(run_spec.r->num_chunks()) + ", |S| chunks = " +
        std::to_string(run_spec.s->num_chunks()));
  }

  // Every thread that runs this query — workers, the pool's flusher,
  // donated guests — records into the query's sink; cleared on every
  // exit path so the session team never carries a dead sink.
  WorkerTeam* traced_team = nullptr;
  if (sink != nullptr) {
    traced_team = &TeamFor(team_size);
    traced_team->set_trace(sink);
  }
  struct TeamTraceReset {
    WorkerTeam* team;
    ~TeamTraceReset() {
      if (team != nullptr) team->set_trace(nullptr);
    }
  } team_trace_reset{traced_team};

  WallTimer plan_timer;
  CachedRunsHint hint;
  const CachedRunsHint* hint_ptr = nullptr;
  uint32_t cache_bounds = 0;
  if (run_cache_ != nullptr && spec.shared_public_runs == nullptr) {
    cache_bounds = CacheNumBounds(
        ResolveMpsmOptions(options, spec.kind).equi_height_factor,
        team_size);
    const auto peek = run_cache_->Peek(*spec.s, team_size, cache_bounds);
    if (peek.hit) {
      hint.delta_tuples = peek.delta_tuples;
      hint.delta_runs = peek.delta_runs;
      hint_ptr = &hint;
    }
  }
  {
    obs::TraceSpan plan_span(obs::kCatPlan, "plan");
    Planner planner(&topology_, &options);
    MPSM_ASSIGN_OR_RETURN(report.plan,
                          planner.Plan(run_spec, team_size, hint_ptr));
  }
  report.plan_seconds = plan_timer.ElapsedSeconds();
  ++stats_.plans_created;
  stats_.plan_seconds_total += report.plan_seconds;
  report.simd_used = simd::Resolve(PlanSimdKnob(report.plan));

  if (spec.shared_public_runs != nullptr &&
      report.plan.algorithm != Algorithm::kPMpsm) {
    return Status::InvalidArgument(
        "shared public runs require a P-MPSM plan (got " +
        std::string(AlgorithmName(report.plan.algorithm)) +
        "); force Algorithm::kPMpsm");
  }

  // Resolve the public-run source. The holders below pin whatever the
  // executed join reads past any concurrent eviction or compaction.
  const PublicRuns* shared_runs = spec.shared_public_runs;
  if (shared_runs != nullptr) report.run_source = RunSource::kSharedRuns;
  cache::CachedView cached_view;            // pins a warm cached view
  std::shared_ptr<const PublicRuns> built;  // pins a cold install
  std::shared_ptr<const Relation> s_view;   // pins a materialized S
  if (run_cache_ != nullptr && shared_runs == nullptr &&
      report.plan.algorithm == Algorithm::kPMpsm) {
    if (report.plan.cached_runs.use) {
      // Stale-plan hazard: an Ingest, eviction, or external version
      // bump between Plan and Execute invalidates the priced view.
      // Re-validate here; the failover is the cold path's fresh sort,
      // never stale runs.
      cached_view = run_cache_->Lookup(*spec.s, team_size, cache_bounds);
      if (cached_view.valid()) {
        shared_runs = &cached_view.view;
        report.run_source = cached_view.delta_tuples > 0
                                ? RunSource::kCachedMerge
                                : RunSource::kCachedBase;
        report.cache_delta_tuples = cached_view.delta_tuples;
        ++stats_.cache_hits;
      } else {
        ++stats_.cache_misses;
      }
    } else if (!report.plan.cached_runs.available) {
      ++stats_.cache_misses;
    }
    if (shared_runs == nullptr) {
      // Cold (or stale, or fresh-is-cheaper) path: sort S once on the
      // session team, install the runs for the next query, and execute
      // against them — phase 1 is never paid twice. Capture the
      // covered version *before* building so a concurrent Ingest is
      // never claimed as covered.
      const Relation* s_input = run_spec.s;
      uint64_t covers = spec.s->version();
      if (run_cache_->PendingDeltaTuples(*spec.s) > 0) {
        s_view = run_cache_->MaterializedView(*spec.s, topology_,
                                              team_size, &covers);
        if (s_view != nullptr) {
          s_input = s_view.get();
          ++stats_.cache_materializations;
        }
      }
      auto runs = std::make_shared<PublicRuns>();
      MPSM_ASSIGN_OR_RETURN(
          *runs, BuildPublicRuns(TeamFor(team_size), *s_input,
                                 report.plan.mpsm, cache_bounds));
      built = std::move(runs);
      shared_runs = built.get();
      report.run_source = RunSource::kFreshSort;
      if (spec.s->id() != 0 &&
          run_cache_->Install(spec.s->id(), team_size, cache_bounds,
                              covers, built)) {
        ++stats_.cache_installs;
      }
    }
  } else if (run_cache_ != nullptr && spec.shared_public_runs == nullptr &&
             run_cache_->PendingDeltaTuples(*spec.s) > 0) {
    // Non-P-MPSM plan reading a delta-bearing S: materialize.
    s_view = run_cache_->MaterializedView(*spec.s, topology_, team_size);
    if (s_view != nullptr) {
      run_spec.s = s_view.get();
      ++stats_.cache_materializations;
    }
  }

  WorkerTeam& team = TeamFor(team_size);
  Result<JoinRunInfo> info = Status::Internal("unreachable");
  const int64_t exec_start_ns = sink != nullptr ? sink->NowNs() : 0;
  switch (report.plan.algorithm) {
    case Algorithm::kPMpsm: {
      report.pmpsm.emplace();
      info = PMpsmJoin(report.plan.mpsm)
                 .Execute(team, *run_spec.r, *run_spec.s, *spec.consumers,
                          &*report.pmpsm, shared_runs);
      break;
    }
    case Algorithm::kBMpsm:
      info = BMpsmJoin(report.plan.mpsm)
                 .Execute(team, *run_spec.r, *run_spec.s, *spec.consumers);
      break;
    case Algorithm::kDMpsm: {
      report.dmpsm.emplace();
      disk::DMpsmOptions dmpsm_options = report.plan.dmpsm;
      std::optional<recovery::ResumeState> resume_state;
      if (options.recovery.enabled) {
        // Crash-safe restartability (docs/recovery.md): fingerprint
        // the query, load any durable state a previous incarnation
        // committed, and run with a journal. A manifest that fails
        // validation yields an empty ResumeState — a cold but still
        // journaled run. Only a real device error reading the
        // manifest fails the query.
        const recovery::QueryFingerprint fp = recovery::FingerprintFor(
            *run_spec.r, *run_spec.s, team_size,
            dmpsm_options.tuples_per_page);
        recovery::RecoveryManagerOptions manager_options;
        manager_options.dir = options.recovery.dir.empty()
                                  ? dmpsm_options.directory
                                  : options.recovery.dir;
        manager_options.verify_runs = options.recovery.verify_runs;
        manager_options.tuples_per_page = dmpsm_options.tuples_per_page;
        recovery::RecoveryManager manager(manager_options);
        auto loaded = manager.Load(fp);
        if (!loaded.ok()) {
          info = loaded.status();
          break;
        }
        resume_state = std::move(loaded).value();
        dmpsm_options.recovery.journal = true;
        dmpsm_options.recovery.journal_path = manager.JournalPath(fp);
        dmpsm_options.recovery.spool_path = manager.SpoolPath(fp);
        dmpsm_options.recovery.resume = &*resume_state;
        dmpsm_options.recovery.retain_artifacts =
            options.recovery.retain_artifacts;
        dmpsm_options.recovery.checksum_runs =
            options.recovery.checksum_runs;
        dmpsm_options.recovery.strict_sync = options.recovery.strict_sync;
        dmpsm_options.recovery.kill_after_commits =
            options.recovery.kill_after_commits;
      }
      info = disk::DMpsmJoin(dmpsm_options)
                 .Execute(team, *run_spec.r, *run_spec.s, *spec.consumers,
                          &*report.dmpsm);
      break;
    }
    case Algorithm::kRadix:
      info = baseline::RadixHashJoin(report.plan.radix)
                 .Execute(team, *run_spec.r, *run_spec.s, *spec.consumers);
      break;
    case Algorithm::kWisconsin:
      info = baseline::WisconsinHashJoin().Execute(
          team, *run_spec.r, *run_spec.s, *spec.consumers);
      break;
  }
  if (sink != nullptr) {
    sink->RecordSpan(obs::kCatQuery, "execute", exec_start_ns,
                     sink->NowNs() - exec_start_ns);
  }
  if (!info.ok()) return info.status();
  report.info = std::move(info).value();
  report.measured_phase_seconds = report.info.MaxPhaseSeconds();
  report.measured_seconds = report.info.critical_path_seconds;
  ++stats_.queries_executed;

  // Close the planner feedback loop: fold this run's effective
  // coefficients into the session model so the next plan's predictions
  // track this host. Session options only — a per-query override must
  // not steer the session model. Runs that skipped phase 1 (shared or
  // cached public runs) are not representative observations.
  if (spec.options == nullptr && options_.recalibrate &&
      shared_runs == nullptr) {
    sim::MachineModel model = machine();
    sim::Recalibrate(model,
                     sim::ObserveRun(report.info.workers,
                                     simd::KeysPerCompare(report.simd_used)));
    calibrated_machine_ = model;
    options_.machine = model;
  }

  static obs::Counter& queries_total = obs::MetricsRegistry::Global().counter(
      "mpsm_engine_queries_total", "Joins executed by engine sessions");
  static obs::Histogram& query_duration =
      obs::MetricsRegistry::Global().histogram(
          "mpsm_engine_query_duration_ns",
          "Measured critical-path time per executed join");
  queries_total.Add(1);
  query_duration.Record(
      static_cast<uint64_t>(report.measured_seconds * 1e9));
  if (sink != nullptr) {
    sink->RecordSpan(obs::kCatQuery, "query", query_start_ns,
                     sink->NowNs() - query_start_ns, "query_id",
                     report.query_id);
  }
  return report;
}

Result<JoinReport> Engine::Resume(const JoinSpec& spec) {
  // A local options copy with recovery switched on; planning stays
  // deterministic, so a crashed D-MPSM run replans to D-MPSM and finds
  // its manifest under the same fingerprint.
  EngineOptions options = spec.options ? *spec.options : options_;
  options.recovery.enabled = true;
  JoinSpec resume_spec = spec;
  resume_spec.options = &options;
  return Execute(resume_spec);
}

std::string JoinReport::ExplainAnalyzeString() const {
  JoinPlan::ExplainAnalyze analyze;
  analyze.measured_phase_seconds = measured_phase_seconds;
  analyze.measured_seconds = measured_seconds;
  analyze.output_tuples = info.output_tuples;
  analyze.run_source = RunSourceName(run_source);
  return plan.ToString(analyze);
}

std::string JoinReport::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Field("query_id", query_id);
  w.Field("algorithm", AlgorithmName(plan.algorithm));
  w.Field("join_kind", JoinKindName(plan.inputs.kind));
  w.Field("run_source", RunSourceName(run_source));
  w.Field("simd_used", simd::SimdKindName(simd_used));
  w.Field("cache_delta_tuples", cache_delta_tuples);
  w.Field("admission_wait_ns", admission_wait_ns);
  w.Field("plan_seconds", plan_seconds);

  w.Key("plan");
  w.BeginObject();
  w.Field("r_tuples", plan.inputs.r_tuples);
  w.Field("s_tuples", plan.inputs.s_tuples);
  w.Field("team_size", plan.inputs.team_size);
  w.Field("numa_nodes", plan.inputs.numa_nodes);
  w.Field("memory_budget_bytes", plan.inputs.memory_budget_bytes);
  w.Field("working_set_bytes", plan.inputs.working_set_bytes);
  w.Field("predicted_seconds", plan.predicted_seconds);
  w.Key("predicted_phase_seconds");
  w.BeginArray();
  for (double s : plan.predicted_phase_seconds) w.Value(s);
  w.EndArray();
  w.Field("rationale", plan.rationale);
  w.EndObject();

  w.Key("measured");
  w.BeginObject();
  w.Field("wall_seconds", info.wall_seconds);
  w.Field("critical_path_seconds", measured_seconds);
  w.Key("phase_seconds");
  w.BeginArray();
  for (double s : measured_phase_seconds) w.Value(s);
  w.EndArray();
  w.Field("output_tuples", info.output_tuples);
  w.EndObject();

  const PerfCounters totals = info.aggregate.TotalCounters();
  w.Key("counters");
  w.BeginObject();
  w.Field("bytes_total", totals.TotalBytes());
  w.Field("sort_tuples", totals.sort_tuples);
  w.Field("sync_acquisitions", totals.sync_acquisitions);
  w.Field("morsels_executed", totals.morsels_executed);
  w.Field("morsels_stolen", totals.morsels_stolen);
  w.Field("io_submits", totals.io_submits);
  w.Field("io_stall_ns", totals.io_stall_ns);
  w.EndObject();

  if (dmpsm.has_value()) {
    w.Key("dmpsm");
    w.BeginObject();
    w.Field("io_backend", io::IoBackendKindName(dmpsm->io_backend_used));
    w.Field("pages_read", dmpsm->io_sched.pages_read);
    w.Field("io_batches", dmpsm->io_sched.io_batches);
    w.Field("coalesced_pages", dmpsm->io_sched.coalesced_pages);
    w.Field("pages_written", dmpsm->io_sched.pages_written);
    w.Field("io_stall_ns", dmpsm->io_sched.io_stall_ns);
    w.Field("spool_write_stall_ns", dmpsm->spool_write_stall_ns);
    w.Field("peak_pool_pages", dmpsm->peak_pool_pages);
    w.Field("resumed", dmpsm->resumed);
    w.Field("runs_reattached", dmpsm->runs_reattached);
    w.Field("chunks_skipped", dmpsm->chunks_skipped);
    w.Field("journal_commits", dmpsm->journal_commits);
    w.Key("pool");
    w.BeginObject();
    w.Field("hits", dmpsm->pool.hits);
    w.Field("misses", dmpsm->pool.misses);
    w.Field("evictions", dmpsm->pool.evictions);
    w.Field("writebacks", dmpsm->pool.writebacks);
    w.Field("append_pages", dmpsm->pool.append_pages);
    w.Field("append_stall_ns", dmpsm->pool.append_stall_ns);
    w.Field("deferred_pins", dmpsm->pool.deferred_pins);
    w.EndObject();
    w.EndObject();
  }

  if (trace != nullptr) {
    const obs::TraceSummary summary = trace->Summary();
    w.Key("trace");
    w.BeginObject();
    w.Field("events", summary.events);
    w.Field("dropped_events", summary.dropped_events);
    w.Field("threads", summary.threads);
    w.Field("extent_ns",
            static_cast<uint64_t>(summary.end_ns - summary.begin_ns));
    w.Key("categories");
    w.BeginObject();
    for (const auto& category : summary.categories) {
      w.Key(category.category);
      w.BeginObject();
      w.Field("events", category.events);
      w.Field("span_ns", category.span_ns);
      w.EndObject();
    }
    w.EndObject();
    w.EndObject();
  }
  w.EndObject();
  return w.str();
}

}  // namespace mpsm::engine

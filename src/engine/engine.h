// mpsm::engine::Engine — the library's one front door.
//
// Callers describe a join (JoinSpec: inputs, kind, memory budget,
// consumer) and the engine does the rest: it probes the NUMA topology
// once, builds a worker team once, plans the algorithm per query with
// the cost-model planner, validates every knob, runs the chosen
// variant, and returns one unified JoinReport. Sessions are meant to
// be long-lived: repeated Execute() calls amortize the topology probe
// and the team's node-homed arenas across queries. (WorkerTeam::Run
// still launches its pinned threads per query; keeping the threads —
// and donating idle ones between sessions — is the ROADMAP's
// elastic-teams item.)
//
//   engine::Engine engine;                    // probe + defaults
//   engine::JoinSpec spec;
//   spec.r = &orders; spec.s = &orderlines;
//   spec.consumers = &aggregate;
//   auto report = engine.Execute(spec);       // planned, validated, run
//   std::puts(report->plan.ToString().c_str());
//
// The variant classes (PMpsmJoin, DMpsmJoin, ...) remain available as
// the internal layer for tests and kernel benches; examples, the
// query harness, and the figure benches all go through the engine.
// API tour: docs/engine.md.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "core/join_stats.h"
#include "core/p_mpsm.h"
#include "disk/d_mpsm.h"
#include "engine/planner.h"
#include "numa/topology.h"
#include "obs/trace.h"
#include "parallel/worker_team.h"
#include "util/status.h"

namespace mpsm::cache {
class RunCache;
}  // namespace mpsm::cache

namespace mpsm::engine {

/// Where the public (S) runs a query joined against came from.
enum class RunSource {
  kFreshSort,    // phase 1 (or BuildPublicRuns) sorted S this query
  kSharedRuns,   // caller-supplied spec.shared_public_runs
  kCachedBase,   // run-cache hit, no pending deltas
  kCachedMerge,  // run-cache hit + delta runs (merge-on-read)
};

const char* RunSourceName(RunSource source);

/// Everything one executed join produced, across all variants:
/// JoinRunInfo (all), P-MPSM splitter diagnostics, D-MPSM spill
/// report — plus the plan that chose the variant.
struct JoinReport {
  /// The plan that was executed (algorithm, predictions, knobs).
  JoinPlan plan;

  /// Provenance of the public runs this query consumed. kCached* only
  /// appears when a run cache is attached (set_run_cache); a stale
  /// cached plan that failed Execute-time re-validation reports the
  /// fresh-sort fallback it actually ran, never the cached source.
  RunSource run_source = RunSource::kFreshSort;
  /// Delta tuples merged on read (kCachedMerge only).
  uint64_t cache_delta_tuples = 0;

  /// Execution statistics (wall time, per-worker counters, output
  /// cardinality).
  JoinRunInfo info;

  /// Measured counterpart of plan.predicted_phase_seconds: max over
  /// workers of each phase's wall time (info.MaxPhaseSeconds), so
  /// predicted-vs-measured sits side by side in one report. Feeds the
  /// recalibration pass (sim/calibration.h).
  std::array<double, kNumJoinPhases> measured_phase_seconds{};
  /// Sum of measured_phase_seconds (== info.critical_path_seconds).
  double measured_seconds = 0;

  /// Concrete vector ISA the kernels ran on (the chosen algorithm's
  /// simd knob after simd::Resolve — kAuto and unsupported kinds made
  /// visible; kScalar for the wisconsin baseline).
  simd::SimdKind simd_used = simd::SimdKind::kScalar;

  /// Planner overhead for this query, in seconds.
  double plan_seconds = 0;

  /// Splitter/CDF internals; set when a P-MPSM plan ran.
  std::optional<PMpsmDiagnostics> pmpsm;

  /// Spill observability (I/O, pool peaks); set when a D-MPSM plan ran.
  std::optional<disk::DMpsmReport> dmpsm;

  /// Engine-assigned (or caller-provided, JoinSpec::query_id) id of
  /// this query; the Chrome trace's pid and the service's log key.
  uint64_t query_id = 0;

  /// Wall nanoseconds the query waited for admission (join service;
  /// 0 for direct Engine callers).
  uint64_t admission_wait_ns = 0;

  /// The query's trace (EngineOptions::trace); null when tracing was
  /// off. Export with trace->ToChromeJson() (Perfetto-loadable).
  std::shared_ptr<obs::TraceSink> trace;

  /// The whole report as one JSON object: plan, predicted vs measured
  /// phases, aggregate counters, variant reports, trace summary. The
  /// figure benches emit this under MPSM_BENCH_REPORT_JSON.
  std::string ToJson() const;

  /// EXPLAIN ANALYZE: plan.ToString plus predicted-vs-measured
  /// per-phase cost for this execution.
  std::string ExplainAnalyzeString() const;
};

/// Session-lifetime observability: proves reuse across queries.
struct SessionStats {
  uint64_t queries_executed = 0;
  uint64_t plans_created = 0;
  /// Worker-team spawns. Stays at 1 across a session as long as every
  /// query's inputs are chunked for the same team size.
  uint64_t team_spawns = 0;
  /// Topology probes performed by this engine (0 when injected, else
  /// exactly 1 — never per query).
  uint64_t topology_probes = 0;
  /// Total planner overhead across queries, in seconds.
  double plan_seconds_total = 0;

  /// Run-cache traffic from this session's queries (the cache's own
  /// stats() aggregate across every session sharing it).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_installs = 0;
  /// MaterializedView builds (a delta-bearing relation fed to a
  /// non-merge path).
  uint64_t cache_materializations = 0;
};

/// A reusable query session: topology + worker team + planner.
class Engine {
 public:
  /// Probes the host topology (once, at construction).
  explicit Engine(EngineOptions options = {});

  /// Uses an explicit (e.g. simulated) topology instead of probing.
  Engine(const numa::Topology& topology, EngineOptions options = {});

  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Plans and runs one join, streaming output to spec.consumers.
  Result<JoinReport> Execute(const JoinSpec& spec);

  /// Execute with crash recovery forced on (docs/recovery.md): if a
  /// previous incarnation of this exact query (same inputs, versions,
  /// team size, page geometry) left a durable manifest — e.g. the
  /// process was killed mid-spill — its spooled runs are re-attached
  /// and completed chunks are skipped; otherwise this is a cold but
  /// journaled run. Only meaningful for spilling (D-MPSM) plans;
  /// in-memory plans execute normally. Check
  /// report.dmpsm->resumed / chunks_skipped for what was salvaged.
  Result<JoinReport> Resume(const JoinSpec& spec);

  /// Plans without executing (EXPLAIN). Does not spawn the team.
  Result<JoinPlan> Plan(const JoinSpec& spec) const;

  const numa::Topology& topology() const { return topology_; }
  const EngineOptions& options() const { return options_; }

  /// Replaces the session options; takes effect from the next query.
  /// The team is kept (only a changed `workers` forces a re-spawn).
  /// Resets any recalibration drift to the new options' machine.
  void set_options(EngineOptions options) {
    options_ = std::move(options);
    calibrated_machine_.reset();
  }

  const SessionStats& stats() const { return stats_; }

  /// The cost model the next query will be planned with. Starts as the
  /// resolved EngineOptions::machine and — under options().recalibrate
  /// — drifts toward this host's measured coefficients query by query.
  sim::MachineModel machine() const;

  /// Opts this session's worker team into cross-session donation
  /// (parallel/donation.h): its guest-safe phases are published to
  /// `pool` and its idle workers help other sessions at barriers. Call
  /// before the first Execute or any time between queries; nullptr
  /// opts out. The pool must outlive the engine.
  void set_donation(DonationPool* pool);

  /// Attaches a cross-query run cache (cache/run_cache.h): P-MPSM
  /// public runs are installed after a cold sort and reused —
  /// merge-on-read over any ingested deltas — on repeat joins of the
  /// same public input. One cache may be shared by many engines (the
  /// join service wires one across its lanes). nullptr detaches. The
  /// cache must outlive the engine.
  void set_run_cache(cache::RunCache* cache) { run_cache_ = cache; }
  cache::RunCache* run_cache() const { return run_cache_; }

  /// Appends tuples to `rel`'s logical content through the session's
  /// run cache as a sorted delta run (requires set_run_cache). The
  /// next join touching `rel` sees the rows — merge-on-read when runs
  /// are cached, via a materialized view otherwise. Returns the new
  /// relation version.
  Result<uint64_t> Ingest(Relation& rel, const Tuple* tuples, size_t n);
  Result<uint64_t> Ingest(Relation& rel, const std::vector<Tuple>& tuples) {
    return Ingest(rel, tuples.data(), tuples.size());
  }

  /// The session's worker team; nullptr before the first Execute.
  WorkerTeam* team() { return team_.get(); }

  /// Spawns (or reuses) the session team at `team_size` ahead of any
  /// Execute. The join service sorts shared public runs on it
  /// (core/public_runs.h) before the batched Executes reuse the same
  /// team.
  WorkerTeam& EnsureTeam(uint32_t team_size) { return TeamFor(team_size); }

  /// Team size a query with these inputs will run on (callers size
  /// their per-worker consumers with this).
  uint32_t TeamSizeFor(const JoinSpec& spec) const;

 private:
  /// Returns the session team, spawning or re-spawning only when the
  /// required size changed.
  WorkerTeam& TeamFor(uint32_t team_size);

  numa::Topology topology_;
  EngineOptions options_;
  std::unique_ptr<WorkerTeam> team_;
  SessionStats stats_;
  DonationPool* donation_ = nullptr;
  cache::RunCache* run_cache_ = nullptr;
  /// Session cost model under recalibration; unset until the first
  /// recalibrating query resolves EngineOptions::machine.
  std::optional<sim::MachineModel> calibrated_machine_;
};

}  // namespace mpsm::engine

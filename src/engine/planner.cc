#include "engine/planner.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "simd/caps.h"
#include "storage/tuple.h"

namespace mpsm::engine {

namespace {

constexpr uint64_t kTupleBytes = sizeof(Tuple);

/// log2 for sort-work estimates; >= 1 so tiny arrays still cost.
double Log2Work(double n) { return std::log2(std::max(n, 2.0)); }

/// Formats seconds as "12.3 ms".
std::string FormatMs(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f ms", seconds * 1e3);
  return buf;
}

/// Synthetic balanced per-worker counters for one phase slot.
struct PhaseEstimate {
  PerfCounters counters;
  /// Slowest-worker multiplier over the balanced estimate (skewed
  /// fragments / partitions under barrier semantics).
  double imbalance = 1.0;
  /// Spill-device seconds this phase spends reading pages. With an
  /// async backend the device runs concurrently with the counters'
  /// compute (phase time = max of the two); the sync baseline
  /// serializes them (sum).
  double io_seconds = 0;
  bool io_overlapped = false;
  /// Extra per-worker CPU nanoseconds beyond the counter-priced work
  /// (the merge-compare term, scaled by the SIMD width).
  double cpu_extra_ns = 0;
};

/// The merge-compare CPU term for a phase-4 sweep over `merge_keys`
/// keys per worker: scalar cost divided by the resolved vector width.
double MergeCompareNs(const sim::MachineModel& machine, double merge_keys,
                      simd::SimdKind simd) {
  const double keys_per_compare = simd::KeysPerCompare(simd::Resolve(simd));
  return merge_keys * machine.ns_per_merge_key / keys_per_compare;
}

/// Splits `bytes` of traffic into local and remote shares: with data
/// spread uniformly over N nodes, (N-1)/N of a worker's accesses cross
/// the interconnect.
void CountSplit(PerfCounters& c, bool write, bool sequential,
                double bytes, double remote_fraction) {
  const auto local = static_cast<uint64_t>(bytes * (1.0 - remote_fraction));
  const auto remote = static_cast<uint64_t>(bytes * remote_fraction);
  if (write) {
    c.CountWrite(/*local=*/true, sequential, local);
    c.CountWrite(/*local=*/false, sequential, remote);
  } else {
    c.CountRead(/*local=*/true, sequential, local);
    c.CountRead(/*local=*/false, sequential, remote);
  }
}

/// Sort of n tuples in local memory: one read+write pass plus the
/// n log2 n comparison/move work (mirrors PerfCounters::CountSort).
void CountLocalSort(PerfCounters& c, double n) {
  c.sort_tuples += static_cast<uint64_t>(n);
  c.sort_tuple_logs += static_cast<uint64_t>(n * Log2Work(n));
  c.CountRead(true, true, static_cast<uint64_t>(n * kTupleBytes));
  c.CountWrite(true, true, static_cast<uint64_t>(n * kTupleBytes));
}

/// Cache lines touched per hash-table operation on a table that does
/// not fit in cache (the Wisconsin global table).
constexpr double kHashLineBytes = 64.0;

}  // namespace

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kPMpsm:
      return "p-mpsm";
    case Algorithm::kBMpsm:
      return "b-mpsm";
    case Algorithm::kDMpsm:
      return "d-mpsm";
    case Algorithm::kRadix:
      return "radix";
    case Algorithm::kWisconsin:
      return "wisconsin";
  }
  return "unknown";
}

bool SupportsKind(Algorithm algorithm, JoinKind kind) {
  switch (algorithm) {
    case Algorithm::kPMpsm:
    case Algorithm::kBMpsm:
      return true;  // semi/anti/outer ride on the same merge kernel
    case Algorithm::kDMpsm:
    case Algorithm::kRadix:
    case Algorithm::kWisconsin:
      return kind == JoinKind::kInner;
  }
  return false;
}

MpsmOptions ResolveMpsmOptions(const EngineOptions& options, JoinKind kind) {
  MpsmOptions m;
  m.kind = kind;
  m.radix_bits = options.mpsm.radix_bits;
  m.equi_height_factor = options.mpsm.equi_height_factor;
  m.start_search = options.mpsm.start_search;
  m.cost_balanced_splitters = options.mpsm.cost_balanced_splitters;
  m.phase_barriers = options.mpsm.phase_barriers;
  m.merge_skip_private_prefix = options.mpsm.merge_skip_private_prefix;
  m.simd_scatter_digits = options.mpsm.simd_scatter_digits;
  m.scheduler = options.scheduler.value_or(m.scheduler);
  m.sort = options.sort.value_or(m.sort);
  m.sort_config = options.sort_config.value_or(m.sort_config);
  m.scatter = options.scatter.value_or(m.scatter);
  m.merge_prefetch_distance =
      options.merge_prefetch_distance.value_or(m.merge_prefetch_distance);
  m.morsel_tuples = options.morsel_tuples.value_or(m.morsel_tuples);
  // The canonical simd knob steers the sort's histogram kernels too
  // (applied after sort_config so it wins over a combined override).
  if (options.simd.has_value()) {
    m.simd = *options.simd;
    m.sort_config.simd = *options.simd;
  }
  return m;
}

disk::DMpsmOptions ResolveDMpsmOptions(const EngineOptions& options,
                                       uint64_t memory_budget_bytes) {
  disk::DMpsmOptions d;
  d.tuples_per_page = options.dmpsm.tuples_per_page;
  d.directory = options.dmpsm.directory;
  d.io_delay_us = options.dmpsm.io_delay_us;
  d.io_backend = options.dmpsm.io_backend;
  d.io_queue_depth = options.dmpsm.io_queue_depth;
  d.io_batch_pages = options.dmpsm.io_batch_pages;
  d.io_max_inflight_bytes = options.dmpsm.io_max_inflight_bytes;
  d.sort = options.sort.value_or(d.sort);
  d.sort_config = options.sort_config.value_or(d.sort_config);
  d.merge_prefetch_distance =
      options.merge_prefetch_distance.value_or(d.merge_prefetch_distance);
  d.scheduler = options.scheduler.value_or(d.scheduler);
  if (options.simd.has_value()) {
    d.simd = *options.simd;
    d.sort_config.simd = *options.simd;
  }
  d.synchronous_spool = options.dmpsm.synchronous_spool;
  if (options.dmpsm.pool_pages != 0) {
    d.pool_pages = options.dmpsm.pool_pages;
  } else if (memory_budget_bytes != 0) {
    // Budget-driven pool sizing: spend half the budget on the shared S
    // staging pool (the other half covers the per-worker private
    // windows and transient sort buffers), at least one page.
    const uint64_t page_bytes =
        std::max<uint64_t>(d.tuples_per_page * kTupleBytes, 1);
    d.pool_pages = static_cast<size_t>(
        std::max<uint64_t>(memory_budget_bytes / 2 / page_bytes, 1));
  } else {
    d.pool_pages = 64;  // the DMpsmOptions default
  }
  if (options.dmpsm.pool_budget_bytes != 0) {
    d.pool_budget_bytes = options.dmpsm.pool_budget_bytes;
  } else if (memory_budget_bytes != 0) {
    // Cap the buffer pool's frames at half the query budget: staging
    // ring, private-window readahead and dirty write-back frames all
    // come out of this one pot (docs/storage.md), and the remaining
    // half covers transient sort scratch.
    d.pool_budget_bytes = memory_budget_bytes / 2;
  }
  return d;
}

baseline::RadixJoinOptions ResolveRadixOptions(const EngineOptions& options) {
  baseline::RadixJoinOptions r;
  r.pass1_bits = options.radix.pass1_bits;
  r.pass2_bits = options.radix.pass2_bits;
  r.target_fragment_tuples = options.radix.target_fragment_tuples;
  r.scatter = options.scatter.value_or(r.scatter);
  r.scheduler = options.scheduler.value_or(r.scheduler);
  r.simd = options.simd.value_or(r.simd);
  return r;
}

uint64_t Planner::WorkingSetBytes(uint64_t r_tuples, uint64_t s_tuples) {
  // Inputs plus one full copy: sorted public runs + scattered private
  // partitions (P-MPSM) or partitioned copies (radix). The hash
  // baselines need less but share the in-memory regime.
  return 2 * (r_tuples + s_tuples) * kTupleBytes;
}

double Planner::EstimateSkew(const Relation& r, const Relation& s) {
  constexpr size_t kSampleTarget = 4096;
  constexpr size_t kBuckets = 64;

  auto sample_skew = [](const Relation& rel) -> double {
    if (rel.size() < kBuckets * 4) return 1.0;  // too few keys to tell
    const size_t stride = std::max<size_t>(rel.size() / kSampleTarget, 1);
    std::vector<uint64_t> keys;
    keys.reserve(rel.size() / stride + 1);
    uint64_t min_key = UINT64_MAX, max_key = 0;
    for (uint32_t c = 0; c < rel.num_chunks(); ++c) {
      const Chunk& chunk = rel.chunk(c);
      for (size_t i = 0; i < chunk.size; i += stride) {
        const uint64_t key = chunk.data[i].key;
        keys.push_back(key);
        min_key = std::min(min_key, key);
        max_key = std::max(max_key, key);
      }
    }
    if (keys.size() < kBuckets * 2 || min_key >= max_key) return 1.0;
    const double width =
        static_cast<double>(max_key - min_key) / kBuckets;
    std::array<uint64_t, kBuckets> histogram{};
    for (const uint64_t key : keys) {
      const auto b = std::min<size_t>(
          static_cast<size_t>(static_cast<double>(key - min_key) / width),
          kBuckets - 1);
      ++histogram[b];
    }
    const double avg = static_cast<double>(keys.size()) / kBuckets;
    const uint64_t max_bucket =
        *std::max_element(histogram.begin(), histogram.end());
    return std::max(static_cast<double>(max_bucket) / avg, 1.0);
  };

  // Either side can carry the skew: R drives partition sizes, S drives
  // each partition's merge-join share.
  return std::max(sample_skew(r), sample_skew(s));
}

CandidateCost Planner::EstimateCost(Algorithm algorithm,
                                    const PlannerInputs& in,
                                    const sim::MachineModel& machine,
                                    const MpsmOptions& mpsm,
                                    const disk::DMpsmOptions& dmpsm) {
  CandidateCost cost;
  cost.algorithm = algorithm;
  cost.feasible = true;

  const double T = std::max<uint32_t>(in.team_size, 1);
  const double nr = static_cast<double>(in.r_tuples) / T;
  const double ns = static_cast<double>(in.s_tuples) / T;
  const double s_total = static_cast<double>(in.s_tuples);
  const double nodes = std::max<uint32_t>(in.numa_nodes, 1);
  // Data spread uniformly over the nodes: this share of untargeted
  // accesses crosses the interconnect.
  const double rf = (nodes - 1.0) / nodes;
  const double skew = std::max(in.skew, 1.0);

  std::array<PhaseEstimate, kNumJoinPhases> phases;
  switch (algorithm) {
    case Algorithm::kPMpsm: {
      // Phase 1: sort local S chunk into a run (+ histograms). With a
      // coherent cached view (docs/cache.md) the sort vanishes — the
      // runs were paid for by an earlier query.
      if (!in.cached_runs) {
        CountLocalSort(phases[kPhaseSortPublic].counters, ns);
      }
      // Phase 2: histogram scan of the local R chunk, then the
      // synchronization-free sequential scatter into range partitions
      // homed across the team's nodes.
      auto& p2 = phases[kPhasePartition].counters;
      p2.CountRead(true, true, static_cast<uint64_t>(2 * nr * kTupleBytes));
      CountSplit(p2, /*write=*/true, /*sequential=*/true, nr * kTupleBytes,
                 rf);
      // Phase 3: sort the received range partition locally.
      CountLocalSort(phases[kPhaseSortPrivate].counters, nr);
      // Phase 4: merge the local partition against its key range of
      // every public run — |S|/T tuples spread over all nodes. A cached
      // view adds its delta runs to the merge (merge-on-read): their
      // tuples ride the same sequential scan, plus one start search's
      // random probes per extra run.
      const double delta_share =
          in.cached_runs
              ? static_cast<double>(in.cached_delta_tuples) / T
              : 0.0;
      auto& p4 = phases[kPhaseJoin];
      p4.counters.CountRead(true, true,
                            static_cast<uint64_t>(nr * kTupleBytes));
      CountSplit(p4.counters, /*write=*/false, /*sequential=*/true,
                 (ns + delta_share) * kTupleBytes, rf);
      if (in.cached_runs && in.cached_delta_runs > 0) {
        constexpr double kProbesPerSearch = 8.0;
        CountSplit(p4.counters, /*write=*/false, /*sequential=*/false,
                   in.cached_delta_runs * kProbesPerSearch * kTupleBytes,
                   rf);
      }
      // Merge-loop CPU at the machine's vector width.
      p4.cpu_extra_ns =
          MergeCompareNs(machine, nr + ns + delta_share, mpsm.simd);
      // Cost-balanced splitters absorb most key skew (Figure 16);
      // equi-height splitting leaves the full imbalance.
      p4.imbalance =
          mpsm.cost_balanced_splitters ? 1.0 + 0.05 * (skew - 1.0) : skew;
      phases[kPhasePartition].imbalance = p4.imbalance;
      break;
    }
    case Algorithm::kBMpsm: {
      CountLocalSort(phases[kPhaseSortPublic].counters, ns);
      CountLocalSort(phases[kPhaseSortPrivate].counters, nr);
      // Every worker merges its run against ALL public runs: the full
      // |S| per worker — the complexity gap of §2.2.
      auto& p4 = phases[kPhaseJoin];
      p4.counters.CountRead(true, true,
                            static_cast<uint64_t>(nr * kTupleBytes));
      CountSplit(p4.counters, /*write=*/false, /*sequential=*/true,
                 s_total * kTupleBytes, rf);
      p4.cpu_extra_ns = MergeCompareNs(machine, nr + s_total, mpsm.simd);
      // Skew-immune: every worker scans everything regardless.
      break;
    }
    case Algorithm::kDMpsm: {
      // Sort + spool both inputs through the page store, then join
      // from staged pages: one extra write+read pass per input over
      // the in-memory sort-merge, plus the spill device itself.
      auto& p1 = phases[kPhaseSortPublic].counters;
      CountLocalSort(p1, ns);
      p1.CountWrite(true, true, static_cast<uint64_t>(ns * kTupleBytes));
      auto& p3 = phases[kPhaseSortPrivate].counters;
      CountLocalSort(p3, nr);
      p3.CountWrite(true, true, static_cast<uint64_t>(nr * kTupleBytes));
      // Spool writes hit the device too. With the buffer pool's async
      // write-back the flusher overlaps them with the sort compute at
      // queue depth; the synchronous_spool baseline stalls each worker
      // for every page at depth 1. Deliberately keyed on the spool
      // mode only — the read backend does not change spool pricing.
      const double spool_depth_bw = machine.IoBytesPerSec(
          dmpsm.synchronous_spool ? 1 : dmpsm.io_queue_depth);
      phases[kPhaseSortPublic].io_overlapped = !dmpsm.synchronous_spool;
      phases[kPhaseSortPublic].io_seconds =
          static_cast<double>(in.s_tuples) * kTupleBytes / spool_depth_bw;
      phases[kPhaseSortPrivate].io_overlapped = !dmpsm.synchronous_spool;
      phases[kPhaseSortPrivate].io_seconds =
          static_cast<double>(in.r_tuples) * kTupleBytes / spool_depth_bw;
      // Phase 4 re-reads the spooled pages. The device is shared, so
      // each worker sees the full |R|+|S| read stream; an async
      // backend overlaps it with the merge compute at depth-scaled
      // bandwidth (src/io/), the sync baseline stalls serially at
      // depth 1.
      auto& p4 = phases[kPhaseJoin];
      p4.counters.CountRead(true, true,
                            static_cast<uint64_t>(2 * (nr + ns) *
                                                  kTupleBytes));
      const double io_bytes =
          static_cast<double>(in.r_tuples + in.s_tuples) * kTupleBytes;
      const double page_bytes = std::max<double>(
          static_cast<double>(dmpsm.tuples_per_page) * kTupleBytes, 1.0);
      // Pool pressure: pages still frame-resident from spooling are
      // pin hits and never touch the device. The hit fraction scales
      // with pool bytes over the spooled working set, capped — clock
      // eviction churn always leaves some misses.
      const double pool_bytes =
          dmpsm.pool_budget_bytes != 0
              ? static_cast<double>(dmpsm.pool_budget_bytes)
              : static_cast<double>(dmpsm.pool_pages) * page_bytes;
      const double hit_rate =
          std::min(0.95, pool_bytes / std::max(io_bytes, 1.0));
      p4.io_overlapped = dmpsm.io_backend != io::IoBackendKind::kSync;
      const size_t depth = p4.io_overlapped ? dmpsm.io_queue_depth : 1;
      p4.io_seconds =
          io_bytes * (1.0 - hit_rate) / machine.IoBytesPerSec(depth);
      // Submission CPU: one vectored read per io_batch_pages pages of
      // this worker's share.
      const double worker_pages = (nr + ns) * kTupleBytes / page_bytes;
      p4.counters.io_submits = static_cast<uint64_t>(
          worker_pages / static_cast<double>(
                             std::max<size_t>(dmpsm.io_batch_pages, 1)) +
          1);
      p4.cpu_extra_ns = MergeCompareNs(machine, nr + ns, dmpsm.simd);
      break;
    }
    case Algorithm::kRadix: {
      // Pass 1 (cross-NUMA): scatter both inputs on the top hash bits.
      auto& p1 = phases[kPhasePartition].counters;
      p1.CountRead(true, true,
                   static_cast<uint64_t>((nr + ns) * kTupleBytes));
      CountSplit(p1, /*write=*/true, /*sequential=*/false,
                 (nr + ns) * kTupleBytes, rf);
      // Pass 2 (node-local): re-partition to cache-sized fragments.
      auto& p2 = phases[kPhaseSortPrivate].counters;
      p2.CountRead(true, true,
                   static_cast<uint64_t>((nr + ns) * kTupleBytes));
      p2.CountWrite(true, false,
                    static_cast<uint64_t>((nr + ns) * kTupleBytes));
      // Build + probe per cache-resident fragment.
      auto& p4 = phases[kPhaseJoin];
      p4.counters.hash_inserts = static_cast<uint64_t>(nr);
      p4.counters.hash_probes = static_cast<uint64_t>(ns);
      p4.counters.CountRead(true, true,
                            static_cast<uint64_t>((nr + ns) * kTupleBytes));
      // Hash partitioning cannot split a hot key: the fragment holding
      // it bounds the barrier.
      p4.imbalance = skew;
      break;
    }
    case Algorithm::kWisconsin: {
      // Build a single global latched table (slot: phase 1).
      auto& p1 = phases[kPhaseSortPublic].counters;
      p1.CountRead(true, true, static_cast<uint64_t>(nr * kTupleBytes));
      p1.hash_inserts = static_cast<uint64_t>(nr);
      p1.sync_acquisitions = static_cast<uint64_t>(nr);  // bucket latches
      CountSplit(p1, /*write=*/true, /*sequential=*/false,
                 nr * kHashLineBytes, rf);
      // Probe it with S (slot: phase 4): one cache/TLB-missing line
      // per probe, mostly remote — all three NUMA commandments broken.
      auto& p4 = phases[kPhaseJoin];
      p4.counters.CountRead(true, true,
                            static_cast<uint64_t>(ns * kTupleBytes));
      p4.counters.hash_probes = static_cast<uint64_t>(ns);
      CountSplit(p4.counters, /*write=*/false, /*sequential=*/false,
                 ns * kHashLineBytes, rf);
      p4.imbalance = skew;  // hot keys serialize on the same chains
      break;
    }
  }

  // Oversubscribed teams timeshare the machine's cores (Figure 13).
  const double slowdown =
      T > machine.cores ? T / static_cast<double>(machine.cores) : 1.0;
  for (uint32_t p = 0; p < kNumJoinPhases; ++p) {
    const double compute =
        (machine.PhaseSeconds(phases[p].counters) +
         phases[p].cpu_extra_ns * 1e-9) *
        slowdown * phases[p].imbalance;
    // Device reads overlap async compute (max) or serialize (sum).
    cost.phase_seconds[p] = phases[p].io_overlapped
                                ? std::max(compute, phases[p].io_seconds)
                                : compute + phases[p].io_seconds;
    cost.total_seconds += cost.phase_seconds[p];
  }
  return cost;
}

sim::MachineModel Planner::PlanningMachine() const {
  if (options_->machine.has_value()) return *options_->machine;
  sim::MachineModel machine = sim::MachineModel::HyPer1();
  if (topology_->num_nodes() > 1) {
    machine.nodes = topology_->num_nodes();
    machine.cores = topology_->num_cores();
  }
  return machine;
}

Result<JoinPlan> Planner::Plan(const JoinSpec& spec, uint32_t team_size,
                               const CachedRunsHint* cached_runs) const {
  if (spec.r == nullptr || spec.s == nullptr) {
    return Status::InvalidArgument("JoinSpec needs both input relations");
  }
  const EngineOptions& options = spec.options ? *spec.options : *options_;

  JoinPlan plan;
  plan.mpsm = ResolveMpsmOptions(options, spec.kind);
  const uint64_t budget = spec.memory_budget_bytes != 0
                              ? spec.memory_budget_bytes
                              : options.memory_budget_bytes;
  plan.dmpsm = ResolveDMpsmOptions(options, budget);
  plan.radix = ResolveRadixOptions(options);

  // Front-door validation: every resolved knob set must be legal, even
  // for the variants the planner ends up not choosing — a bad knob is
  // a caller bug regardless of today's plan.
  MPSM_RETURN_NOT_OK(plan.mpsm.Validate(team_size));
  MPSM_RETURN_NOT_OK(plan.dmpsm.Validate());
  MPSM_RETURN_NOT_OK(plan.radix.Validate());

  PlannerInputs& in = plan.inputs;
  in.r_tuples = spec.r->size();
  in.s_tuples = spec.s->size();
  in.multiplicity = spec.multiplicity_hint.value_or(
      in.r_tuples > 0
          ? static_cast<double>(in.s_tuples) / static_cast<double>(in.r_tuples)
          : 1.0);
  in.skew = std::max(spec.skew_hint.value_or(EstimateSkew(*spec.r, *spec.s)),
                     1.0);
  in.memory_budget_bytes = budget;
  in.working_set_bytes = WorkingSetBytes(in.r_tuples, in.s_tuples);
  in.team_size = team_size;
  in.numa_nodes = topology_->num_nodes();
  in.kind = spec.kind;

  const sim::MachineModel machine = PlanningMachine();
  // Price candidates against the model's node count: the model may
  // describe a bigger deployment machine than a single-node dev host.
  PlannerInputs model_in = in;
  model_in.numa_nodes = std::max(in.numa_nodes, machine.nodes);

  const bool over_budget = budget != 0 && in.working_set_bytes > budget;
  const bool tiny = in.r_tuples + in.s_tuples <= options.tiny_input_tuples;

  // Cost every candidate so the plan is inspectable even for the paths
  // rules excluded.
  constexpr Algorithm kAll[] = {Algorithm::kPMpsm, Algorithm::kBMpsm,
                                Algorithm::kDMpsm, Algorithm::kRadix,
                                Algorithm::kWisconsin};
  for (const Algorithm a : kAll) {
    CandidateCost cost =
        EstimateCost(a, model_in, machine, plan.mpsm, plan.dmpsm);
    if (!SupportsKind(a, spec.kind)) {
      cost.feasible = false;
      cost.note = std::string("no ") + JoinKindName(spec.kind) + " support";
    } else if (over_budget && a != Algorithm::kDMpsm) {
      cost.feasible = false;
      cost.note = "working set exceeds memory budget";
    } else if (a == Algorithm::kDMpsm && !over_budget) {
      // Feasible, but spilling is never chosen while memory suffices.
      cost.note = "spill path (not needed: working set fits the budget)";
    }
    plan.candidates.push_back(std::move(cost));
  }
  auto candidate = [&](Algorithm a) -> const CandidateCost& {
    return plan.candidates[static_cast<size_t>(a)];
  };

  // Cached-merge vs fresh-sort pricing (docs/cache.md). The candidates
  // vector keeps the fresh costs (its fixed order and values are the
  // inspection contract); the cached alternative is priced separately
  // and, when cheaper, substitutes for P-MPSM in the decision below.
  CandidateCost cached_cost;
  if (cached_runs != nullptr) {
    PlannerInputs cached_in = model_in;
    cached_in.cached_runs = true;
    cached_in.cached_delta_tuples = cached_runs->delta_tuples;
    cached_in.cached_delta_runs = cached_runs->delta_runs;
    cached_cost = EstimateCost(Algorithm::kPMpsm, cached_in, machine,
                               plan.mpsm, plan.dmpsm);
    plan.cached_runs.available = true;
    plan.cached_runs.delta_tuples = cached_runs->delta_tuples;
    plan.cached_runs.delta_runs = cached_runs->delta_runs;
    plan.cached_runs.cached_seconds = cached_cost.total_seconds;
    plan.cached_runs.fresh_seconds =
        candidate(Algorithm::kPMpsm).total_seconds;
  }
  const auto pmpsm_seconds = [&]() -> double {
    const double fresh = candidate(Algorithm::kPMpsm).total_seconds;
    return plan.cached_runs.available
               ? std::min(fresh, cached_cost.total_seconds)
               : fresh;
  };

  // ------------------------------------------------------- decision
  const std::optional<Algorithm> forced =
      spec.algorithm ? spec.algorithm : options.force_algorithm;
  if (forced.has_value()) {
    if (!SupportsKind(*forced, spec.kind)) {
      return Status::NotSupported(
          std::string(AlgorithmName(*forced)) + " does not implement " +
          JoinKindName(spec.kind) + " joins");
    }
    plan.algorithm = *forced;
    plan.rationale = spec.algorithm ? "forced by JoinSpec::algorithm"
                                    : "forced by EngineOptions::force_algorithm";
  } else if (over_budget) {
    if (spec.kind != JoinKind::kInner) {
      return Status::NotSupported(
          std::string("working set exceeds the memory budget and the spill "
                      "path (d-mpsm) does not implement ") +
          JoinKindName(spec.kind) + " joins");
    }
    plan.algorithm = Algorithm::kDMpsm;
    plan.rationale =
        "working set (" + std::to_string(in.working_set_bytes / 1000000) +
        " MB) exceeds the memory budget (" + std::to_string(budget / 1000000) +
        " MB): spill via d-mpsm, staging pool " +
        std::to_string(plan.dmpsm.pool_pages) + " pages";
  } else if (spec.kind != JoinKind::kInner) {
    plan.algorithm =
        pmpsm_seconds() <= candidate(Algorithm::kBMpsm).total_seconds
            ? Algorithm::kPMpsm
            : Algorithm::kBMpsm;
    plan.rationale = std::string(JoinKindName(spec.kind)) +
                     " join: MPSM family only; cheapest modeled variant";
  } else if (tiny) {
    plan.algorithm = Algorithm::kWisconsin;
    plan.rationale =
        "tiny inputs (" + std::to_string(in.r_tuples + in.s_tuples) +
        " <= " + std::to_string(options.tiny_input_tuples) +
        " tuples): phase orchestration would dominate; no-partition hash "
        "join";
  } else {
    plan.algorithm = Algorithm::kPMpsm;
    double best = pmpsm_seconds();
    for (const Algorithm a :
         {Algorithm::kBMpsm, Algorithm::kRadix, Algorithm::kWisconsin}) {
      if (candidate(a).feasible && candidate(a).total_seconds < best) {
        plan.algorithm = a;
        best = candidate(a).total_seconds;
      }
    }
    plan.rationale = "cheapest modeled in-memory candidate";
  }

  plan.predicted_seconds = candidate(plan.algorithm).total_seconds;
  plan.predicted_phase_seconds = candidate(plan.algorithm).phase_seconds;

  // Adopt the cached-merge pricing when P-MPSM won and the cached view
  // is the cheaper way to run it. Execute re-validates the view at run
  // time (stale plans fail over to the fresh sort, never stale runs).
  if (plan.cached_runs.available && plan.algorithm == Algorithm::kPMpsm &&
      cached_cost.total_seconds <= plan.cached_runs.fresh_seconds) {
    plan.cached_runs.use = true;
    plan.predicted_seconds = cached_cost.total_seconds;
    plan.predicted_phase_seconds = cached_cost.phase_seconds;
    plan.rationale += "; cached runs beat a fresh sort (merge-on-read)";
  }
  return plan;
}

simd::SimdKind PlanSimdKnob(const JoinPlan& plan) {
  switch (plan.algorithm) {
    case Algorithm::kPMpsm:
    case Algorithm::kBMpsm:
      return plan.mpsm.simd;
    case Algorithm::kDMpsm:
      return plan.dmpsm.simd;
    case Algorithm::kRadix:
      return plan.radix.simd;
    case Algorithm::kWisconsin:
      return simd::SimdKind::kScalar;
  }
  return simd::SimdKind::kScalar;
}

std::string JoinPlan::ToString() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "plan: %s (%s join)\n",
                AlgorithmName(algorithm), JoinKindName(inputs.kind));
  out += line;
  std::snprintf(line, sizeof(line),
                "  inputs: |R| = %llu, |S| = %llu (multiplicity %.1f), "
                "skew ~%.1f\n",
                static_cast<unsigned long long>(inputs.r_tuples),
                static_cast<unsigned long long>(inputs.s_tuples),
                inputs.multiplicity, inputs.skew);
  out += line;
  if (inputs.memory_budget_bytes != 0) {
    std::snprintf(line, sizeof(line),
                  "  budget: %.1f MB (working set %.1f MB)\n",
                  inputs.memory_budget_bytes / 1e6,
                  inputs.working_set_bytes / 1e6);
  } else {
    std::snprintf(line, sizeof(line),
                  "  budget: unlimited (working set %.1f MB)\n",
                  inputs.working_set_bytes / 1e6);
  }
  out += line;
  std::snprintf(line, sizeof(line), "  team: %u workers on %u node%s\n",
                inputs.team_size, inputs.numa_nodes,
                inputs.numa_nodes == 1 ? "" : "s");
  out += line;
  const simd::SimdKind simd_knob = PlanSimdKnob(*this);
  const simd::SimdKind simd_resolved = simd::Resolve(simd_knob);
  std::snprintf(line, sizeof(line),
                "  simd: %s (requested %s, %u keys/compare)\n",
                simd::SimdKindName(simd_resolved),
                simd::SimdKindName(simd_knob),
                simd::KeysPerCompare(simd_resolved));
  out += line;
  std::snprintf(
      line, sizeof(line),
      "  predicted: %s  [ph1 %s | ph2 %s | ph3 %s | ph4 %s]\n",
      FormatMs(predicted_seconds).c_str(),
      FormatMs(predicted_phase_seconds[0]).c_str(),
      FormatMs(predicted_phase_seconds[1]).c_str(),
      FormatMs(predicted_phase_seconds[2]).c_str(),
      FormatMs(predicted_phase_seconds[3]).c_str());
  out += line;
  if (cached_runs.available) {
    std::snprintf(
        line, sizeof(line),
        "  cache: %s (cached merge %s vs fresh sort %s; %llu delta "
        "tuples in %u runs)\n",
        cached_runs.use ? "warm, merge-on-read" : "warm, fresh sort cheaper",
        FormatMs(cached_runs.cached_seconds).c_str(),
        FormatMs(cached_runs.fresh_seconds).c_str(),
        static_cast<unsigned long long>(cached_runs.delta_tuples),
        cached_runs.delta_runs);
    out += line;
  }
  out += "  candidates:";
  for (const CandidateCost& c : candidates) {
    out += " ";
    out += AlgorithmName(c.algorithm);
    if (c.feasible) {
      out += " ";
      out += FormatMs(c.total_seconds);
    } else {
      out += " (excluded: ";
      out += c.note;
      out += ")";
    }
    if (&c != &candidates.back()) out += " |";
  }
  out += "\n  why: ";
  out += rationale;
  out += "\n";
  return out;
}

std::string JoinPlan::ToString(const ExplainAnalyze& analyze) const {
  std::string out = ToString();
  char line[256];
  out += "  analyze (predicted vs measured):\n";
  // Relative error per phase; "-" when the model predicted (or the run
  // spent) nothing in the slot.
  const auto error_column = [](double predicted, double measured) {
    if (predicted <= 0 || measured <= 0) return std::string("      -");
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%+6.1f%%",
                  (measured - predicted) / predicted * 100.0);
    return std::string(buf);
  };
  for (uint32_t p = 0; p < kNumJoinPhases; ++p) {
    std::snprintf(line, sizeof(line), "    %-24s %10s %10s %s\n",
                  JoinPhaseName(static_cast<JoinPhase>(p)),
                  FormatMs(predicted_phase_seconds[p]).c_str(),
                  FormatMs(analyze.measured_phase_seconds[p]).c_str(),
                  error_column(predicted_phase_seconds[p],
                               analyze.measured_phase_seconds[p])
                      .c_str());
    out += line;
  }
  std::snprintf(line, sizeof(line), "    %-24s %10s %10s %s\n", "total",
                FormatMs(predicted_seconds).c_str(),
                FormatMs(analyze.measured_seconds).c_str(),
                error_column(predicted_seconds, analyze.measured_seconds)
                    .c_str());
  out += line;
  std::snprintf(line, sizeof(line), "  output: %llu tuples",
                static_cast<unsigned long long>(analyze.output_tuples));
  out += line;
  if (analyze.run_source != nullptr) {
    out += " (run source: ";
    out += analyze.run_source;
    out += ")";
  }
  out += "\n";
  return out;
}

}  // namespace mpsm::engine

// Cost-model join planner: picks the MPSM-family variant (or a hash
// baseline) for one join from workload statistics, the NUMA topology,
// and a memory budget.
//
// The paper's thesis is that one sort-merge family covers everything
// from in-memory flagship joins (P-MPSM, §3.2) to memory-constrained
// spilling (D-MPSM, §3.1). The planner encodes that reasoning so
// callers no longer pick variants by hand:
//
//   1. A forced algorithm (JoinSpec / EngineOptions) wins, if it
//      supports the requested JoinKind.
//   2. If the memory budget cannot hold both inputs plus their runs,
//      the join spills: D-MPSM, with the staging pool sized from the
//      budget.
//   3. Non-inner joins (semi / anti / outer) are MPSM-family only.
//   4. Tiny inputs skip partitioned algorithms entirely: the
//      no-partition hash join's simplicity wins when everything fits
//      in cache and phase orchestration would dominate.
//   5. Otherwise every candidate is costed through the calibrated
//      sim::MachineModel (synthetic per-phase counters from the
//      cardinalities, multiplicity, skew estimate, and node count) and
//      the cheapest modeled response time wins.
//
// The outcome is an inspectable JoinPlan: chosen algorithm, predicted
// phase costs, every candidate's modeled cost, and the fully resolved
// per-variant option structs. See docs/engine.md for the decision
// table.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "baseline/radix_join.h"
#include "core/consumers.h"
#include "core/join_types.h"
#include "disk/d_mpsm.h"
#include "numa/topology.h"
#include "parallel/counters.h"
#include "sim/machine_model.h"
#include "simd/simd_kind.h"
#include "storage/relation.h"
#include "util/status.h"

namespace mpsm {
struct PublicRuns;  // core/public_runs.h — shared-sort batching
}  // namespace mpsm

namespace mpsm::engine {

/// Every join implementation the engine can dispatch to.
enum class Algorithm : uint8_t {
  kPMpsm,      // range-partitioned MPSM (§3.2, the flagship)
  kBMpsm,      // basic MPSM (§2.1, skew-immune baseline)
  kDMpsm,      // disk-enabled MPSM (§3.1, the spill path)
  kRadix,      // radix hash join (Vectorwise stand-in)
  kWisconsin,  // no-partition hash join (Blanas et al.)
};

inline constexpr size_t kNumAlgorithms = 5;

/// Display name ("p-mpsm", "d-mpsm", ...).
const char* AlgorithmName(Algorithm algorithm);

/// True when `algorithm` implements `kind`. The MPSM in-memory
/// variants cover all four kinds; the spill path and the hash
/// baselines are inner-only.
bool SupportsKind(Algorithm algorithm, JoinKind kind);

/// Per-algorithm overrides for the MPSM variants (knobs that have no
/// cross-algorithm meaning; the canonical knobs live on EngineOptions).
struct MpsmOverrides {
  uint32_t radix_bits = 0;  // 0 = auto (see MpsmOptions::radix_bits)
  uint32_t equi_height_factor = 4;
  StartSearch start_search = StartSearch::kInterpolation;
  bool cost_balanced_splitters = true;
  bool phase_barriers = true;
  bool merge_skip_private_prefix = true;
  bool simd_scatter_digits = true;
};

/// Per-algorithm overrides for the D-MPSM spill path.
struct DMpsmOverrides {
  size_t tuples_per_page = 4096;
  /// Staging ring capacity in pages; 0 derives it from the query's
  /// memory budget (half the budget, at least one page).
  size_t pool_pages = 0;
  /// Buffer-pool frame budget in bytes (DMpsmOptions::pool_budget_bytes);
  /// 0 derives half the query's memory budget when one is set, else the
  /// legacy unbounded-frames shape.
  uint64_t pool_budget_bytes = 0;
  /// Bypass the pool's async write-back and spool runs with blocking
  /// device writes (the A/B baseline; see DMpsmOptions).
  bool synchronous_spool = false;
  std::string directory = "/tmp";
  uint32_t io_delay_us = 0;
  /// Async page-I/O engine for the spill path (docs/io.md): sync is
  /// the blocking baseline, auto probes for io_uring at runtime.
  io::IoBackendKind io_backend = io::IoBackendKind::kThreadpool;
  /// Backend queue depth; the planner prices D-MPSM reads at the
  /// machine model's effective bandwidth for this depth.
  size_t io_queue_depth = 16;
  /// Pages coalesced per vectored read / private-window readahead.
  size_t io_batch_pages = 8;
  /// In-flight byte budget toward the I/O backend; 0 = no extra cap
  /// (queue_depth * batch_pages * page_bytes). The join service slices
  /// its global I/O budget into per-session shares through this knob.
  uint64_t io_max_inflight_bytes = 0;
};

/// Crash-safe restartability of the D-MPSM spill path
/// (docs/recovery.md). Enabled, a D-MPSM execution spools through a
/// persistent named file and commits a checksummed manifest record
/// after each durable run and each completed chunk walk. A repeat
/// Execute of the *same* query (inputs, versions, team size, page
/// geometry — the manifest fingerprint) re-attaches the durable runs
/// and skips completed chunks; any mismatch falls back to a clean cold
/// run. Engine::Resume is Execute with this switched on.
struct RecoveryOverrides {
  bool enabled = false;
  /// Manifest + persistent-spool directory; empty uses the D-MPSM
  /// spill directory (DMpsmOverrides::directory).
  std::string dir;
  /// Re-read and checksum every recorded run during Load (paranoid
  /// resume; catches spool corruption the manifest cannot see).
  bool verify_runs = false;
  /// Keep the manifest and spool after a successful run instead of
  /// retiring them (tests and the crash harness inspect them).
  bool retain_artifacts = false;
  /// Record per-run content checksums in the manifest
  /// (DMpsmRecoveryOptions::checksum_runs) — one fnv1a pass over every
  /// spooled byte; only verify_runs reads them.
  bool checksum_runs = false;
  /// Per-commit durability (DMpsmRecoveryOptions::strict_sync).
  /// Default relaxed: commits are process-crash durable, device
  /// fdatasyncs are deferred to query end. Strict pays ~2 device
  /// flushes per commit for power-loss-grade durability.
  bool strict_sync = false;
  /// Crash injection (tools/crash_harness): SIGKILL this process right
  /// after the n-th durable manifest commit. 0 = off.
  uint64_t kill_after_commits = 0;
};

/// Per-algorithm overrides for the radix hash join.
struct RadixOverrides {
  uint32_t pass1_bits = 0;  // 0 = auto
  uint32_t pass2_bits = 0;
  uint32_t target_fragment_tuples = 2048;
};

/// The engine's one canonical knob set. Shared kernel knobs are stated
/// once (std::nullopt keeps each algorithm's own default, e.g. the
/// in-memory variants and the radix join default to stealing while
/// D-MPSM schedules statically); algorithm-specific knobs live in the
/// override sub-structs. This
/// replaces hand-tuning MpsmOptions / DMpsmOptions / RadixJoinOptions
/// in parallel.
struct EngineOptions {
  // ------------------------------------------------------------ session
  /// Worker-team size. 0 sizes the team to the inputs' chunk count
  /// (each query's relations must be chunked into team-size chunks).
  uint32_t workers = 0;

  // ------------------------------------------------------------ planner
  /// Bypass planning and always run this algorithm (A/B harnesses).
  std::optional<Algorithm> force_algorithm;

  /// Session-wide RAM budget for a join's working set (inputs + runs);
  /// 0 = unlimited. JoinSpec::memory_budget_bytes overrides per query.
  uint64_t memory_budget_bytes = 0;

  /// |R|+|S| at or below this runs the no-partition hash join for
  /// inner joins: phase orchestration dominates partitioned algorithms
  /// on inputs this small.
  uint64_t tiny_input_tuples = uint64_t{1} << 15;

  /// Cost model the planner prices candidates with. Unset derives one
  /// from the probed topology (its node/core counts with the paper's
  /// calibrated HyPer1 coefficients); on single-node development
  /// machines the HyPer1 layout is kept so plans match the paper's
  /// NUMA reasoning (bench/common.h convention).
  std::optional<sim::MachineModel> machine;

  /// Close the planner feedback loop: after each executed query, fold
  /// the measured per-phase times back into the session's cost model
  /// (sim/calibration.h), so repeated sessions converge on this host's
  /// observed ns_per_sort_unit / ns_per_merge_key. Session-level only:
  /// a per-query options override never mutates the session model.
  bool recalibrate = false;

  // ------------------------------------------------------------ tracing
  /// Record a per-query trace (obs/trace.h) and return it in
  /// JoinReport::trace. Off by default; the disabled record path costs
  /// one thread-local load per span (BM_TraceOverheadOff measures it
  /// at < 1% of join throughput).
  bool trace = false;
  /// Events per thread ring of a traced query (TraceSinkOptions).
  size_t trace_ring_events = 4096;

  // ---------------------------------------- canonical kernel knobs
  std::optional<SchedulerKind> scheduler;
  std::optional<sort::SortKind> sort;
  std::optional<sort::RadixSortConfig> sort_config;
  std::optional<ScatterKind> scatter;
  std::optional<uint32_t> merge_prefetch_distance;
  std::optional<uint32_t> morsel_tuples;
  /// Vector ISA of the merge / search / histogram kernels
  /// (docs/simd.md). Set, it steers every algorithm's simd knob
  /// *including* the sort's digit histograms (sort_config.simd); unset
  /// keeps each algorithm's default (kAuto everywhere).
  std::optional<simd::SimdKind> simd;

  // ---------------------------------------- per-algorithm overrides
  MpsmOverrides mpsm;
  DMpsmOverrides dmpsm;
  RadixOverrides radix;

  /// Crash-safe restartable spilling joins (docs/recovery.md).
  RecoveryOverrides recovery;
};

/// One join request: inputs, semantics, constraints, and the consumer
/// of the result. The engine plans everything else.
struct JoinSpec {
  /// Private/build input (R: range partitioned / hash built).
  const Relation* r = nullptr;
  /// Public/probe input (S: sorted once and shared / probed).
  const Relation* s = nullptr;

  JoinKind kind = JoinKind::kInner;

  /// Receives the join output; one consumer per worker.
  ConsumerFactory* consumers = nullptr;

  /// RAM budget for this query's working set; 0 = the session default
  /// (EngineOptions::memory_budget_bytes).
  uint64_t memory_budget_bytes = 0;

  /// Force a specific algorithm for this query only.
  std::optional<Algorithm> algorithm;

  /// Workload statistics, when the caller knows them. Unset values are
  /// estimated from the data (|S|/|R|; a key-histogram sample).
  std::optional<double> multiplicity_hint;
  std::optional<double> skew_hint;

  /// Per-query override of the session's EngineOptions (the pointee
  /// must outlive the Execute call). Null uses the session options.
  const EngineOptions* options = nullptr;

  /// Pre-sorted runs of `s` built by BuildPublicRuns on a team of the
  /// same size (core/public_runs.h): P-MPSM skips phase 1. Requires a
  /// P-MPSM plan (force via `algorithm` when in doubt); other plans
  /// fail the query. The join service sets this when batching
  /// compatible queries over one public input (docs/service.md).
  const PublicRuns* shared_public_runs = nullptr;

  /// Query id stamped on the report and trace (the Chrome trace's
  /// pid); 0 lets the engine assign a process-unique one. The join
  /// service sets this so lane logs and traces share ids.
  uint64_t query_id = 0;

  /// Wall nanoseconds this query waited for admission before Execute
  /// (set by the join service); recorded as a retroactive trace span
  /// and surfaced in JoinReport::admission_wait_ns.
  uint64_t admission_wait_ns = 0;
};

/// Workload statistics the planner derived for one join.
struct PlannerInputs {
  uint64_t r_tuples = 0;
  uint64_t s_tuples = 0;
  double multiplicity = 1.0;  // |S| / |R|
  /// Key-density skew estimate: max/avg bucket of a sampled 64-bucket
  /// key histogram over both inputs (1.0 = perfectly uniform).
  double skew = 1.0;
  uint64_t memory_budget_bytes = 0;  // 0 = unlimited
  /// Bytes an in-memory variant keeps resident: both inputs plus their
  /// sorted runs / partitions.
  uint64_t working_set_bytes = 0;
  uint32_t team_size = 1;
  uint32_t numa_nodes = 1;
  JoinKind kind = JoinKind::kInner;

  // -------------------------------------- cached-run pricing inputs
  /// True when the run cache holds a coherent sorted view of S
  /// (docs/cache.md): P-MPSM's phase 1 vanishes and phase 4 merges the
  /// delta runs on read instead.
  bool cached_runs = false;
  uint64_t cached_delta_tuples = 0;
  uint32_t cached_delta_runs = 0;
};

/// Modeled cost of one candidate algorithm.
struct CandidateCost {
  Algorithm algorithm = Algorithm::kPMpsm;
  /// False when a rule excludes the candidate (unsupported JoinKind,
  /// working set over budget); `note` says why.
  bool feasible = false;
  std::string note;
  /// Modeled slowest-worker time per phase slot (barrier semantics).
  std::array<double, kNumJoinPhases> phase_seconds{};
  double total_seconds = 0;
};

/// An inspectable join plan: what will run, why, at what predicted
/// cost, with every knob resolved.
struct JoinPlan {
  Algorithm algorithm = Algorithm::kPMpsm;
  PlannerInputs inputs;

  /// Modeled cost of the chosen algorithm.
  double predicted_seconds = 0;
  std::array<double, kNumJoinPhases> predicted_phase_seconds{};

  /// Every candidate the planner considered (fixed Algorithm order).
  std::vector<CandidateCost> candidates;

  /// One-line reason for the choice.
  std::string rationale;

  /// Fully resolved knobs; the struct matching `algorithm` is the one
  /// Execute uses (kPMpsm/kBMpsm -> mpsm, kDMpsm -> dmpsm, ...).
  MpsmOptions mpsm;
  disk::DMpsmOptions dmpsm;
  baseline::RadixJoinOptions radix;

  /// Cached-merge vs fresh-sort pricing (only when the engine found a
  /// coherent run-cache view of S at plan time, docs/cache.md). The
  /// decision is *advisory*: Execute re-validates the view against the
  /// relation's version and chunking and falls back to a fresh sort if
  /// it went stale between plan and execution.
  struct CachedRunsDecision {
    bool available = false;  // coherent cached view existed at plan time
    bool use = false;        // cached-merge priced at or below fresh-sort
    uint64_t delta_tuples = 0;
    uint32_t delta_runs = 0;
    double cached_seconds = 0;  // modeled P-MPSM over cached runs
    double fresh_seconds = 0;   // modeled P-MPSM with its own phase 1
  };
  CachedRunsDecision cached_runs;

  /// Measured counterpart for the post-execution EXPLAIN ANALYZE
  /// rendering (JoinReport::ExplainAnalyzeString fills one from its
  /// measured_phase_seconds).
  struct ExplainAnalyze {
    std::array<double, kNumJoinPhases> measured_phase_seconds{};
    double measured_seconds = 0;
    uint64_t output_tuples = 0;
    /// Optional provenance note (RunSourceName); null omits the line.
    const char* run_source = nullptr;
  };

  /// Multi-line human-readable plan (EXPLAIN-style).
  std::string ToString() const;
  /// EXPLAIN ANALYZE: the plan plus a per-phase predicted-vs-measured
  /// table for the execution `analyze` describes.
  std::string ToString(const ExplainAnalyze& analyze) const;
};

/// The simd knob of the plan's chosen algorithm (kScalar for the
/// wisconsin baseline, which has no vector kernels). Resolve it with
/// simd::Resolve for the kind that will actually execute.
simd::SimdKind PlanSimdKnob(const JoinPlan& plan);

/// What the engine's run cache would serve for S (cache::RunCache::Peek
/// distilled to the planner-relevant numbers). The planner stays
/// ignorant of the cache type itself.
struct CachedRunsHint {
  uint64_t delta_tuples = 0;
  uint32_t delta_runs = 0;
};

/// Plans joins for one (topology, options) session. Stateless beyond
/// the borrowed references; cheap to construct per query.
class Planner {
 public:
  /// Both pointees must outlive the planner.
  Planner(const numa::Topology* topology, const EngineOptions* options)
      : topology_(topology), options_(options) {}

  /// Produces the plan for `spec` on a team of `team_size` workers.
  /// Validates the resolved option structs (Validate() satellites)
  /// before any cost is estimated. `cached_runs` (optional) announces a
  /// coherent run-cache view of S: the planner then prices cached-merge
  /// vs fresh-sort and records the decision in JoinPlan::cached_runs.
  Result<JoinPlan> Plan(const JoinSpec& spec, uint32_t team_size,
                        const CachedRunsHint* cached_runs = nullptr) const;

  /// The cost model this planner prices candidates with (the resolved
  /// EngineOptions::machine).
  sim::MachineModel PlanningMachine() const;

  /// Modeled cost of `algorithm` under `inputs` on `machine`;
  /// exposed for tests and the decision-table doc generator. `dmpsm`
  /// supplies the spill path's I/O shape (backend, queue depth, page
  /// size): an async backend overlaps device reads with merge compute
  /// (max instead of sum), a sync backend serializes them at depth-1
  /// bandwidth.
  static CandidateCost EstimateCost(Algorithm algorithm,
                                    const PlannerInputs& inputs,
                                    const sim::MachineModel& machine,
                                    const MpsmOptions& mpsm,
                                    const disk::DMpsmOptions& dmpsm);

  /// Key-density skew estimate over both inputs (sampled); >= 1.
  static double EstimateSkew(const Relation& r, const Relation& s);

  /// Bytes an in-memory variant keeps resident for these inputs.
  static uint64_t WorkingSetBytes(uint64_t r_tuples, uint64_t s_tuples);

 private:
  const numa::Topology* topology_;
  const EngineOptions* options_;
};

/// Resolves the canonical + override knobs into each variant's own
/// option struct (exposed for tests; the planner embeds the results in
/// the JoinPlan).
MpsmOptions ResolveMpsmOptions(const EngineOptions& options, JoinKind kind);
disk::DMpsmOptions ResolveDMpsmOptions(const EngineOptions& options,
                                       uint64_t memory_budget_bytes);
baseline::RadixJoinOptions ResolveRadixOptions(const EngineOptions& options);

}  // namespace mpsm::engine

// Thread-to-core pinning.
#pragma once

#include <cstdint>

namespace mpsm::numa {

/// Pins the calling thread to `core`. Returns false when the platform
/// refuses (e.g. the core does not exist on the development machine, or
/// the container restricts affinity); callers treat pinning as advisory.
bool PinCurrentThreadToCore(uint32_t core);

/// Clears any affinity restriction for the calling thread (best effort).
void UnpinCurrentThread();

}  // namespace mpsm::numa

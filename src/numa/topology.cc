#include "numa/topology.h"

#include <dirent.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

namespace mpsm::numa {

Topology Topology::Simulated(uint32_t num_nodes, uint32_t cores_per_node,
                             uint32_t remote_distance) {
  Topology t;
  t.simulated_ = true;
  t.num_cores_ = num_nodes * cores_per_node;
  t.node_of_core_.resize(t.num_cores_);
  t.cores_of_node_.resize(num_nodes);
  for (uint32_t core = 0; core < t.num_cores_; ++core) {
    const NodeId node = core / cores_per_node;
    t.node_of_core_[core] = node;
    t.cores_of_node_[node].push_back(core);
  }
  t.distance_.assign(static_cast<size_t>(num_nodes) * num_nodes,
                     remote_distance);
  for (uint32_t n = 0; n < num_nodes; ++n) {
    t.distance_[n * num_nodes + n] = 10;
  }
  return t;
}

Topology Topology::HyPer1() {
  // Four X7560 sockets, eight physical cores each (Figure 11).
  return Simulated(/*num_nodes=*/4, /*cores_per_node=*/8,
                   /*remote_distance=*/21);
}

namespace {

// Parses a kernel cpulist like "0-3,8,10-11" into core ids.
std::vector<uint32_t> ParseCpuList(const char* list) {
  std::vector<uint32_t> cores;
  const char* p = list;
  while (*p != '\0' && *p != '\n') {
    char* end = nullptr;
    const long lo = std::strtol(p, &end, 10);
    if (end == p) break;
    long hi = lo;
    p = end;
    if (*p == '-') {
      ++p;
      hi = std::strtol(p, &end, 10);
      if (end == p) break;
      p = end;
    }
    for (long c = lo; c <= hi; ++c) cores.push_back(static_cast<uint32_t>(c));
    if (*p == ',') ++p;
  }
  return cores;
}

}  // namespace

Topology Topology::Probe() {
  std::vector<std::vector<uint32_t>> nodes;
  DIR* dir = opendir("/sys/devices/system/node");
  if (dir != nullptr) {
    for (dirent* entry = readdir(dir); entry != nullptr;
         entry = readdir(dir)) {
      unsigned node_id = 0;
      if (std::sscanf(entry->d_name, "node%u", &node_id) != 1) continue;
      char path[256];
      std::snprintf(path, sizeof(path),
                    "/sys/devices/system/node/node%u/cpulist", node_id);
      FILE* f = std::fopen(path, "r");
      if (f == nullptr) continue;
      char buf[4096];
      if (std::fgets(buf, sizeof(buf), f) != nullptr) {
        if (nodes.size() <= node_id) nodes.resize(node_id + 1);
        nodes[node_id] = ParseCpuList(buf);
      }
      std::fclose(f);
    }
    closedir(dir);
  }

  // Drop empty (memory-only) nodes and fall back when nothing was found.
  std::vector<std::vector<uint32_t>> populated;
  for (auto& cores : nodes) {
    if (!cores.empty()) populated.push_back(std::move(cores));
  }
  if (populated.empty()) {
    const long n = sysconf(_SC_NPROCESSORS_ONLN);
    return Simulated(1, n > 0 ? static_cast<uint32_t>(n) : 1);
  }

  Topology t;
  t.simulated_ = false;
  t.cores_of_node_ = std::move(populated);
  const uint32_t num_nodes = static_cast<uint32_t>(t.cores_of_node_.size());
  uint32_t max_core = 0;
  for (uint32_t n = 0; n < num_nodes; ++n) {
    for (uint32_t core : t.cores_of_node_[n]) {
      max_core = core > max_core ? core : max_core;
    }
  }
  t.num_cores_ = max_core + 1;
  t.node_of_core_.assign(t.num_cores_, 0);
  for (uint32_t n = 0; n < num_nodes; ++n) {
    for (uint32_t core : t.cores_of_node_[n]) t.node_of_core_[core] = n;
  }
  t.distance_.assign(static_cast<size_t>(num_nodes) * num_nodes, 21);
  for (uint32_t n = 0; n < num_nodes; ++n) t.distance_[n * num_nodes + n] = 10;
  return t;
}

uint32_t Topology::CoreForWorker(uint32_t w, uint32_t team_size) const {
  // Socket-major round robin: worker 0 -> node 0 core 0,
  // worker 1 -> node 1 core 0, ... so memory bandwidth spreads across
  // controllers even for small teams, mirroring the paper's placement.
  (void)team_size;
  const uint32_t nodes = num_nodes();
  const NodeId node = w % nodes;
  const auto& cores = cores_of_node_[node];
  return cores[(w / nodes) % cores.size()];
}

std::string Topology::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%u nodes x %zu cores (%s)", num_nodes(),
                cores_of_node_.empty() ? size_t{0} : cores_of_node_[0].size(),
                simulated_ ? "simulated" : "probed");
  return buf;
}

}  // namespace mpsm::numa

// NUMA topology model.
//
// The MPSM algorithms make placement decisions (which node owns a run,
// which worker scans remote memory) against this topology. On a real
// multi-socket machine the topology is probed from /sys; on development
// machines a simulated topology with an explicit distance matrix is used
// so that placement logic and local/remote accounting behave exactly as
// they would on the paper's 4-socket HyPer1 server.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mpsm::numa {

/// Identifies a NUMA node (socket). Nodes are dense, starting at 0.
using NodeId = uint32_t;

/// Describes the node/core layout of a (possibly simulated) machine.
class Topology {
 public:
  /// Builds a simulated topology with `num_nodes` nodes of
  /// `cores_per_node` cores each. The distance matrix uses the customary
  /// ACPI SLIT convention: 10 for local, `remote_distance` otherwise.
  static Topology Simulated(uint32_t num_nodes, uint32_t cores_per_node,
                            uint32_t remote_distance = 21);

  /// Probes the host topology from /sys/devices/system/node. Falls back
  /// to a single-node topology covering all online CPUs when the probe
  /// fails (e.g. inside minimal containers).
  static Topology Probe();

  /// The paper's evaluation machine: 4 sockets x 8 cores
  /// (Intel X7560, "HyPer1"), 2 hardware contexts per core.
  static Topology HyPer1();

  uint32_t num_nodes() const { return static_cast<uint32_t>(cores_of_node_.size()); }
  uint32_t num_cores() const { return num_cores_; }

  /// Node that owns a given core.
  NodeId NodeOfCore(uint32_t core) const { return node_of_core_[core]; }

  /// Cores belonging to a node.
  const std::vector<uint32_t>& CoresOfNode(NodeId node) const {
    return cores_of_node_[node];
  }

  /// SLIT-style distance between two nodes (10 == local).
  uint32_t Distance(NodeId from, NodeId to) const {
    return distance_[from * num_nodes() + to];
  }

  /// True when `from` and `to` are the same node.
  bool IsLocal(NodeId from, NodeId to) const { return from == to; }

  /// Assigns worker `w` of a team of `team_size` to a core, spreading
  /// workers round-robin across nodes first (socket-major) so that a
  /// T-worker team uses T distinct memory controllers where possible.
  uint32_t CoreForWorker(uint32_t w, uint32_t team_size) const;

  /// Node hosting worker `w` under CoreForWorker placement.
  NodeId NodeForWorker(uint32_t w, uint32_t team_size) const {
    return NodeOfCore(CoreForWorker(w, team_size));
  }

  /// Human-readable description, e.g. "4 nodes x 8 cores (simulated)".
  std::string ToString() const;

  bool simulated() const { return simulated_; }

 private:
  Topology() = default;

  std::vector<NodeId> node_of_core_;          // core -> node
  std::vector<std::vector<uint32_t>> cores_of_node_;  // node -> cores
  std::vector<uint32_t> distance_;            // row-major num_nodes^2
  uint32_t num_cores_ = 0;
  bool simulated_ = true;
};

}  // namespace mpsm::numa

// Node-tagged bump-pointer memory arenas.
//
// Every run / partition array in MPSM lives in exactly one NUMA node's
// memory. The Arena makes that ownership explicit: allocations are
// tagged with the arena's home node so algorithms (and the machine
// model) can classify each access as local or remote. On machines with
// real NUMA support the arena additionally first-touches pages from the
// owning thread, which is how Linux places pages without libnuma.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "numa/topology.h"

namespace mpsm::numa {

/// A bump-pointer arena whose memory logically belongs to one NUMA node.
///
/// Allocation is O(1); all memory is released when the arena dies.
/// Thread-compatible: concurrent Allocate calls must be externally
/// synchronized (in MPSM each worker owns its arenas, so there is no
/// sharing in the hot path — commandment C3).
class Arena {
 public:
  /// Creates an arena homed on `node`. `block_bytes` is the granularity
  /// of the underlying allocations.
  explicit Arena(NodeId node, size_t block_bytes = size_t{8} << 20);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;
  ~Arena();

  /// Allocates `count` default-constructible objects of type T, aligned
  /// to 64 bytes (cache line). The objects are NOT constructed; T must
  /// be trivially constructible/destructible (tuples, integers).
  template <typename T>
  T* AllocateArray(size_t count) {
    static_assert(std::is_trivially_destructible_v<T>);
    return static_cast<T*>(AllocateBytes(count * sizeof(T), 64));
  }

  /// Raw aligned allocation of `bytes` bytes.
  void* AllocateBytes(size_t bytes, size_t alignment = 64);

  /// Home node of this arena's memory.
  NodeId node() const { return node_; }

  /// Total bytes handed out so far.
  size_t bytes_allocated() const { return bytes_allocated_; }

  /// Total bytes reserved from the OS.
  size_t bytes_reserved() const { return bytes_reserved_; }

 private:
  struct Block {
    void* data = nullptr;
    size_t size = 0;
  };

  void AddBlock(size_t min_bytes);

  NodeId node_;
  size_t block_bytes_;
  std::vector<Block> blocks_;
  char* cursor_ = nullptr;
  char* end_ = nullptr;
  size_t bytes_allocated_ = 0;
  size_t bytes_reserved_ = 0;
};

/// One arena per NUMA node plus a per-worker view; the standard memory
/// layout for a worker team (worker w allocates from the arena of its
/// home node).
class NodeArenas {
 public:
  explicit NodeArenas(const Topology& topology,
                      size_t block_bytes = size_t{8} << 20);

  /// Arena owned by `node`.
  Arena& OfNode(NodeId node) { return *arenas_[node]; }

  /// Arena local to worker `w` in a team of `team_size`.
  Arena& ForWorker(uint32_t w, uint32_t team_size) {
    return OfNode(topology_->NodeForWorker(w, team_size));
  }

  const Topology& topology() const { return *topology_; }

 private:
  const Topology* topology_;
  std::vector<std::unique_ptr<Arena>> arenas_;
};

}  // namespace mpsm::numa

#include "numa/affinity.h"

#include <pthread.h>
#include <sched.h>
#include <unistd.h>

namespace mpsm::numa {

bool PinCurrentThreadToCore(uint32_t core) {
  const long online = sysconf(_SC_NPROCESSORS_ONLN);
  if (online <= 0 || core >= static_cast<uint32_t>(online)) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(core, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
}

void UnpinCurrentThread() {
  const long online = sysconf(_SC_NPROCESSORS_ONLN);
  if (online <= 0) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  for (long core = 0; core < online; ++core) CPU_SET(core, &set);
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
}

}  // namespace mpsm::numa

#include "numa/arena.h"

#include <cstdlib>

#include "util/bits.h"

namespace mpsm::numa {

Arena::Arena(NodeId node, size_t block_bytes)
    : node_(node), block_bytes_(block_bytes) {}

Arena::~Arena() {
  for (Block& block : blocks_) std::free(block.data);
}

void Arena::AddBlock(size_t min_bytes) {
  const size_t size = std::max(block_bytes_, min_bytes);
  void* data = std::aligned_alloc(4096, bits::AlignUp(size, 4096));
  if (data == nullptr) {
    // Allocation failure in the arena is unrecoverable for the join —
    // surface it immediately rather than corrupting state.
    std::abort();
  }
  blocks_.push_back(Block{data, size});
  cursor_ = static_cast<char*>(data);
  end_ = cursor_ + size;
  bytes_reserved_ += size;
}

void* Arena::AllocateBytes(size_t bytes, size_t alignment) {
  char* aligned = reinterpret_cast<char*>(
      bits::AlignUp(reinterpret_cast<uintptr_t>(cursor_), alignment));
  if (aligned + bytes > end_) {
    AddBlock(bytes + alignment);
    aligned = reinterpret_cast<char*>(
        bits::AlignUp(reinterpret_cast<uintptr_t>(cursor_), alignment));
  }
  cursor_ = aligned + bytes;
  bytes_allocated_ += bytes;
  return aligned;
}

NodeArenas::NodeArenas(const Topology& topology, size_t block_bytes)
    : topology_(&topology) {
  arenas_.reserve(topology.num_nodes());
  for (NodeId node = 0; node < topology.num_nodes(); ++node) {
    arenas_.push_back(std::make_unique<Arena>(node, block_bytes));
  }
}

}  // namespace mpsm::numa

// Cross-query sorted-run cache with LSM-style delta ingest
// (docs/cache.md).
//
// MPSM's currency is sorted runs, yet a plain engine session re-sorts
// the public input for every query — the wrong amortization when the
// same fact table is joined repeatedly, or keeps growing under ingest.
// RunCache retains the phase-1 products (core/public_runs.h) across
// queries and absorbs new tuples as small sorted *delta runs*, so a
// repeat join executes merge-on-read: the cached base runs plus the
// delta runs are handed to P-MPSM as one shared run view, whose phase 4
// already joins every private run against every public run. Re-sorting
// O(N log N) becomes merging O(delta).
//
// Keying. An entry is identified by (relation id, chunk count,
// histogram bounds). The sorted-run *content* is canonical — every
// sort kind / ISA / scheduler produces the same bytes — so kernel
// knobs deliberately do not fragment the key; only the equi-height
// bound count changes the histograms a view carries.
//
// Versioning. Relation::version() is the content epoch. Ingest bumps
// it and logs a delta segment covering exactly the new version; an
// entry installed at version V plus the contiguous segments covering
// (V, rel.version()] compose a coherent view. Any gap — an external
// BumpVersion() the cache never saw, or an eviction — fails the
// composition and the caller falls back to a fresh sort (the planner's
// stale-run re-validation rides on this).
//
// Ownership. Everything handed out is pinned by shared_ptr: eviction
// and compaction swap map references, never memory under a reader.
// Delta segments are data, not cache — they hold ingested tuples that
// exist nowhere else, so LRU eviction only ever drops base entries.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/public_runs.h"
#include "numa/topology.h"
#include "parallel/worker_team.h"
#include "storage/relation.h"
#include "storage/run.h"
#include "storage/tuple.h"

namespace mpsm::cache {

/// One immutable sorted batch of ingested tuples, covering a closed
/// version range of its relation. Level 0 segments come straight from
/// Ingest; compaction merges contiguous same-level segments into one
/// segment a level up (tiered LSM shape).
struct DeltaSegment {
  std::vector<Tuple> tuples;  // key-sorted
  uint64_t first_version = 0;
  uint64_t last_version = 0;
  uint32_t level = 0;

  uint64_t bytes() const { return tuples.size() * sizeof(Tuple); }
  Run AsRun() const {
    return Run{const_cast<Tuple*>(tuples.data()), tuples.size(), 0};
  }
};

/// A coherent cached view of one relation: base runs + delta runs,
/// usable directly as JoinSpec::shared_public_runs. `view` borrows the
/// tuples; the shared_ptrs pin them for the view's lifetime.
struct CachedView {
  PublicRuns view;  // non-owning (arenas empty)
  std::shared_ptr<const PublicRuns> base;
  std::vector<std::shared_ptr<const DeltaSegment>> deltas;
  uint64_t version = 0;      // relation version the view reflects
  uint64_t delta_tuples = 0;

  bool valid() const { return base != nullptr; }
};

/// Monotonic counters + current residency.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t installs = 0;
  uint64_t evictions = 0;
  /// Entries dropped because the relation's version moved past what the
  /// delta log can reconstruct (external BumpVersion).
  uint64_t stale_invalidations = 0;
  uint64_t ingested_batches = 0;
  uint64_t ingested_tuples = 0;
  uint64_t compactions = 0;
  uint64_t compacted_segments = 0;
  uint64_t base_bytes = 0;   // evictable
  uint64_t delta_bytes = 0;  // not evictable (authoritative data)
};

struct RunCacheOptions {
  /// Resident-byte capacity (base entries + delta logs). Install evicts
  /// LRU base entries to fit; 0 = unlimited.
  uint64_t capacity_bytes = 0;

  /// Tiered-compaction fanout: a contiguous stretch of >= this many
  /// same-level segments becomes one CompactPending merge job.
  uint32_t delta_level_fanout = 4;
};

/// Thread-safe cross-query run cache. One instance is meant to be
/// shared by every engine session of a process (the join service wires
/// one across its lanes).
class RunCache {
 public:
  explicit RunCache(RunCacheOptions options = {});

  // --------------------------------------------------------- ingest
  /// Appends `n` tuples to `rel`'s logical content as one sorted L0
  /// delta segment and bumps rel's version. The base storage is never
  /// touched; joins see the rows via merge-on-read or MaterializedView.
  /// Returns the new relation version (unchanged for an empty batch).
  uint64_t Ingest(Relation& rel, const Tuple* tuples, size_t n);
  uint64_t Ingest(Relation& rel, const std::vector<Tuple>& tuples) {
    return Ingest(rel, tuples.data(), tuples.size());
  }

  // --------------------------------------------------------- lookup
  /// Coherent view for rel at its current version, or an invalid view.
  /// Touches LRU and counts a hit/miss. `num_bounds` must match the
  /// value the entry was installed with (the engine derives both from
  /// equi_height_factor * team_size).
  CachedView Lookup(const Relation& rel, uint32_t num_chunks,
                    uint32_t num_bounds);

  /// Metadata-only probe (no LRU touch, no hit/miss accounting): would
  /// Lookup succeed, and how much delta would the view merge? Feeds
  /// the planner's cached-merge vs fresh-sort pricing.
  struct PeekInfo {
    bool hit = false;
    uint64_t base_tuples = 0;
    uint64_t delta_tuples = 0;
    uint32_t delta_runs = 0;
  };
  PeekInfo Peek(const Relation& rel, uint32_t num_chunks,
                uint32_t num_bounds) const;

  /// Installs freshly built runs for relation `relation_id` as of
  /// `covers_version` (capture rel.version() *before* building the
  /// runs — a concurrent Ingest must not be claimed as covered).
  /// Evicts LRU entries to fit; returns false when the entry alone
  /// exceeds capacity and was not retained.
  bool Install(uint64_t relation_id, uint32_t num_chunks,
               uint32_t num_bounds, uint64_t covers_version,
               std::shared_ptr<const PublicRuns> runs);

  // ------------------------------------------------------ delta state
  /// Total tuples in `rel`'s delta log (rows not in the base storage).
  /// Non-zero means a fresh sort of the base alone would be *wrong*;
  /// use MaterializedView as the input instead.
  uint64_t PendingDeltaTuples(const Relation& rel) const;

  /// The relation's logical content — base storage plus delta log — as
  /// one freshly chunked relation at rel's current version. Memoized
  /// per (relation, chunk count) until the version moves; also the
  /// oracle input for tests. `version_out` (optional) receives the
  /// version the returned content reflects — pass it as Install's
  /// covers_version so a concurrent Ingest is never claimed as covered.
  /// Returns null only if rel has no id.
  std::shared_ptr<const Relation> MaterializedView(
      const Relation& rel, const numa::Topology& topology,
      uint32_t num_chunks, uint64_t* version_out = nullptr);

  // ------------------------------------------------------- compaction
  /// Runs every ready merge job (contiguous stretches of >=
  /// delta_level_fanout same-level segments, never across a live
  /// entry's covered-version boundary). With a team, jobs run as
  /// stealable guest-safe morsels on the task scheduler — idle service
  /// lanes and donated workers compact; nullptr merges inline on the
  /// caller. Returns the number of merges performed.
  uint64_t CompactPending(WorkerTeam* team = nullptr);

  // --------------------------------------------------------- eviction
  /// Evicts LRU base entries until resident bytes <= `target_bytes`
  /// (or no evictable entries remain — delta logs and materialized
  /// views pinned by readers stay). Returns bytes released.
  uint64_t EvictToFit(uint64_t target_bytes);

  /// Drops every entry, delta segment, and memoized materialization of
  /// one relation (e.g. the table was dropped or rewritten wholesale).
  void InvalidateRelation(uint64_t relation_id);

  /// Drops everything.
  void Clear();

  // ------------------------------------------------------------ state
  uint64_t resident_bytes() const;
  uint64_t capacity_bytes() const { return options_.capacity_bytes; }
  CacheStats stats() const;

 private:
  struct Entry {
    uint32_t num_chunks = 0;
    uint32_t num_bounds = 0;
    uint64_t covers_version = 0;
    uint64_t bytes = 0;
    uint64_t lru_tick = 0;
    std::shared_ptr<const PublicRuns> runs;
  };
  struct EntryKey {
    uint64_t relation_id = 0;
    uint32_t num_chunks = 0;
    uint32_t num_bounds = 0;
    bool operator==(const EntryKey& o) const {
      return relation_id == o.relation_id && num_chunks == o.num_chunks &&
             num_bounds == o.num_bounds;
    }
  };
  struct EntryKeyHash {
    size_t operator()(const EntryKey& k) const {
      uint64_t h = k.relation_id * 0x9e3779b97f4a7c15ull;
      h ^= (uint64_t{k.num_chunks} << 32 | k.num_bounds) +
           0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
      return static_cast<size_t>(h);
    }
  };
  struct DeltaLog {
    /// Ascending, contiguous version ranges.
    std::vector<std::shared_ptr<const DeltaSegment>> segments;
    /// Version after the last Ingest this log saw.
    uint64_t version = 0;
  };
  struct Materialized {
    std::shared_ptr<const Relation> relation;
    uint64_t version = 0;
  };
  /// One ready compaction merge: `sources` are contiguous same-level
  /// segments of `relation_id`.
  struct CompactJob {
    uint64_t relation_id = 0;
    std::vector<std::shared_ptr<const DeltaSegment>> sources;
    std::shared_ptr<DeltaSegment> merged;
  };

  /// Segments of `log` strictly after `covers_version`, iff they cover
  /// (covers_version, target_version] contiguously. Returns false on
  /// any gap or straddle.
  static bool ComposeDeltas(
      const DeltaLog& log, uint64_t covers_version, uint64_t target_version,
      std::vector<std::shared_ptr<const DeltaSegment>>* out);

  void EvictLruLocked();
  std::vector<CompactJob> CollectCompactJobsLocked();
  void CommitCompactJobLocked(CompactJob& job);

  RunCacheOptions options_;
  mutable std::mutex mu_;
  std::unordered_map<EntryKey, Entry, EntryKeyHash> entries_;
  std::unordered_map<uint64_t, DeltaLog> logs_;
  /// Memoized Materialize results, keyed like entries (num_bounds 0).
  std::unordered_map<EntryKey, Materialized, EntryKeyHash> materialized_;
  uint64_t lru_clock_ = 0;
  uint64_t base_bytes_ = 0;
  uint64_t delta_bytes_ = 0;
  CacheStats stats_;
  bool compacting_ = false;  // single compactor at a time
};

}  // namespace mpsm::cache

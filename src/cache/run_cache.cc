#include "cache/run_cache.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "core/run_merge.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/counters.h"
#include "parallel/task_scheduler.h"
#include "partition/equi_height.h"

namespace mpsm::cache {

namespace {
// The cache outlives queries, so its counters are updated live (unlike
// the per-query pool/scheduler, which fold totals at close).
obs::Counter& HitCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().counter(
      "mpsm_cache_hits_total", "Run-cache lookups served from a cached entry");
  return c;
}
obs::Counter& MissCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().counter(
      "mpsm_cache_misses_total", "Run-cache lookups that found no usable entry");
  return c;
}
obs::Counter& InstallCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().counter(
      "mpsm_cache_installs_total", "Sorted-run sets installed into the cache");
  return c;
}
obs::Counter& EvictionCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().counter(
      "mpsm_cache_evictions_total", "Cache entries evicted or invalidated");
  return c;
}
obs::Counter& IngestCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().counter(
      "mpsm_cache_ingested_tuples_total", "Tuples ingested as delta segments");
  return c;
}
obs::Counter& CompactionCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().counter(
      "mpsm_cache_compactions_total", "Delta-log compaction merges committed");
  return c;
}
}  // namespace

RunCache::RunCache(RunCacheOptions options) : options_(options) {
  options_.delta_level_fanout = std::max(options_.delta_level_fanout, 2u);
}

uint64_t RunCache::Ingest(Relation& rel, const Tuple* tuples, size_t n) {
  if (rel.id() == 0) return 0;
  if (n == 0) return rel.version();

  auto segment = std::make_shared<DeltaSegment>();
  segment->tuples.assign(tuples, tuples + n);
  std::sort(segment->tuples.begin(), segment->tuples.end(),
            [](const Tuple& a, const Tuple& b) { return a.key < b.key; });
  segment->level = 0;

  std::lock_guard<std::mutex> lock(mu_);
  // Bump under the cache lock: the version order and the log's segment
  // order must agree, or ComposeDeltas would see interleaved ranges.
  const uint64_t version = rel.BumpVersion();
  segment->first_version = version;
  segment->last_version = version;
  DeltaLog& log = logs_[rel.id()];
  log.segments.push_back(segment);
  log.version = version;
  delta_bytes_ += segment->bytes();
  ++stats_.ingested_batches;
  stats_.ingested_tuples += n;
  IngestCounter().Add(n);
  obs::TraceInstant(obs::kCatCache, "cache.ingest", "tuples", n, "relation",
                    rel.id());
  // The memoized materialization describes the previous version.
  for (auto it = materialized_.begin(); it != materialized_.end();) {
    if (it->first.relation_id == rel.id()) {
      base_bytes_ -= it->second.relation->size() * sizeof(Tuple);
      it = materialized_.erase(it);
    } else {
      ++it;
    }
  }
  return version;
}

bool RunCache::ComposeDeltas(
    const DeltaLog& log, uint64_t covers_version, uint64_t target_version,
    std::vector<std::shared_ptr<const DeltaSegment>>* out) {
  if (covers_version == target_version) return true;
  if (covers_version > target_version) return false;
  uint64_t expected = covers_version + 1;
  for (const auto& segment : log.segments) {
    if (segment->last_version <= covers_version) continue;
    // A segment straddling the covered boundary would double-count the
    // versions at or below it (a compaction merged across the install
    // point); the entry cannot compose anymore.
    if (segment->first_version != expected) return false;
    if (out != nullptr) out->push_back(segment);
    expected = segment->last_version + 1;
    if (expected > target_version) break;
  }
  return expected == target_version + 1;
}

CachedView RunCache::Lookup(const Relation& rel, uint32_t num_chunks,
                            uint32_t num_bounds) {
  CachedView out;
  if (rel.id() == 0) return out;
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t target = rel.version();
  const EntryKey key{rel.id(), num_chunks, num_bounds};
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    MissCounter().Add(1);
    obs::TraceInstant(obs::kCatCache, "cache.miss", "relation", rel.id());
    return out;
  }
  Entry& entry = it->second;
  static const DeltaLog kEmptyLog;
  auto log_it = logs_.find(rel.id());
  const DeltaLog& log = log_it != logs_.end() ? log_it->second : kEmptyLog;
  std::vector<std::shared_ptr<const DeltaSegment>> deltas;
  if (!ComposeDeltas(log, entry.covers_version, target, &deltas)) {
    // Unrecoverable: a version exists that no delta segment covers
    // (external BumpVersion) or compaction crossed the install point.
    base_bytes_ -= entry.bytes;
    entries_.erase(it);
    ++stats_.stale_invalidations;
    ++stats_.misses;
    MissCounter().Add(1);
    obs::TraceInstant(obs::kCatCache, "cache.miss", "relation", rel.id());
    return out;
  }

  entry.lru_tick = ++lru_clock_;
  ++stats_.hits;
  HitCounter().Add(1);
  obs::TraceInstant(obs::kCatCache, "cache.hit", "relation", rel.id());
  out.base = entry.runs;
  out.deltas = std::move(deltas);
  out.version = target;
  out.view.runs = entry.runs->runs;
  out.view.histograms = entry.runs->histograms;
  out.view.num_bounds = entry.num_bounds;
  out.view.team_size = entry.runs->team_size;
  for (const auto& segment : out.deltas) {
    const Run run = segment->AsRun();
    out.view.runs.push_back(run);
    out.view.histograms.push_back(
        BuildEquiHeightHistogram(run, entry.num_bounds));
    out.delta_tuples += run.size;
  }
  return out;
}

RunCache::PeekInfo RunCache::Peek(const Relation& rel, uint32_t num_chunks,
                                  uint32_t num_bounds) const {
  PeekInfo info;
  if (rel.id() == 0) return info;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(EntryKey{rel.id(), num_chunks, num_bounds});
  if (it == entries_.end()) return info;
  static const DeltaLog kEmptyLog;
  const auto log_it = logs_.find(rel.id());
  const DeltaLog& log = log_it != logs_.end() ? log_it->second : kEmptyLog;
  std::vector<std::shared_ptr<const DeltaSegment>> deltas;
  if (!ComposeDeltas(log, it->second.covers_version, rel.version(), &deltas)) {
    return info;
  }
  info.hit = true;
  info.base_tuples = TotalSize(it->second.runs->runs);
  for (const auto& segment : deltas) info.delta_tuples += segment->tuples.size();
  info.delta_runs = static_cast<uint32_t>(deltas.size());
  return info;
}

bool RunCache::Install(uint64_t relation_id, uint32_t num_chunks,
                       uint32_t num_bounds, uint64_t covers_version,
                       std::shared_ptr<const PublicRuns> runs) {
  if (relation_id == 0 || runs == nullptr) return false;
  const uint64_t bytes = runs->bytes();
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.capacity_bytes != 0 && bytes > options_.capacity_bytes) {
    return false;
  }
  const EntryKey key{relation_id, num_chunks, num_bounds};
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    base_bytes_ -= it->second.bytes;
    entries_.erase(it);
  }
  Entry entry;
  entry.num_chunks = num_chunks;
  entry.num_bounds = num_bounds;
  entry.covers_version = covers_version;
  entry.bytes = bytes;
  entry.lru_tick = ++lru_clock_;
  entry.runs = std::move(runs);
  base_bytes_ += bytes;
  entries_.emplace(key, std::move(entry));
  ++stats_.installs;
  InstallCounter().Add(1);
  obs::TraceInstant(obs::kCatCache, "cache.install", "relation", relation_id,
                    "bytes", bytes);
  while (options_.capacity_bytes != 0 &&
         base_bytes_ + delta_bytes_ > options_.capacity_bytes &&
         entries_.size() > 1) {
    EvictLruLocked();
  }
  return true;
}

uint64_t RunCache::PendingDeltaTuples(const Relation& rel) const {
  if (rel.id() == 0) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = logs_.find(rel.id());
  if (it == logs_.end()) return 0;
  uint64_t total = 0;
  for (const auto& segment : it->second.segments) {
    total += segment->tuples.size();
  }
  return total;
}

std::shared_ptr<const Relation> RunCache::MaterializedView(
    const Relation& rel, const numa::Topology& topology, uint32_t num_chunks,
    uint64_t* version_out) {
  if (rel.id() == 0) return nullptr;
  std::unique_lock<std::mutex> lock(mu_);
  const uint64_t target = rel.version();
  if (version_out != nullptr) *version_out = target;
  const EntryKey key{rel.id(), num_chunks, 0};
  auto memo = materialized_.find(key);
  if (memo != materialized_.end() && memo->second.version == target) {
    return memo->second.relation;
  }
  std::vector<std::shared_ptr<const DeltaSegment>> segments;
  const auto log_it = logs_.find(rel.id());
  if (log_it != logs_.end()) segments = log_it->second.segments;
  lock.unlock();

  // Copy base + deltas outside the lock (the heavy part); segments are
  // pinned, the base relation is the caller's to keep alive.
  size_t total = rel.size();
  for (const auto& segment : segments) total += segment->tuples.size();
  auto out = std::make_shared<Relation>(
      Relation::Allocate(topology, total, num_chunks));
  size_t cursor_chunk = 0;
  size_t cursor_offset = 0;
  const auto append = [&](const Tuple* data, size_t n) {
    while (n > 0) {
      Chunk& chunk = out->chunk(static_cast<uint32_t>(cursor_chunk));
      const size_t room = chunk.size - cursor_offset;
      const size_t take = std::min(room, n);
      std::copy(data, data + take, chunk.data + cursor_offset);
      data += take;
      n -= take;
      cursor_offset += take;
      if (cursor_offset == chunk.size && cursor_chunk + 1 < num_chunks) {
        ++cursor_chunk;
        cursor_offset = 0;
      }
    }
  };
  for (uint32_t c = 0; c < rel.num_chunks(); ++c) {
    append(rel.chunk(c).data, rel.chunk(c).size);
  }
  for (const auto& segment : segments) {
    append(segment->tuples.data(), segment->tuples.size());
  }

  lock.lock();
  // A concurrent Ingest may have advanced the version meanwhile; only
  // memoize (and serve) a still-current materialization.
  if (rel.version() != target) return out;
  memo = materialized_.find(key);
  if (memo != materialized_.end()) {
    base_bytes_ -= memo->second.relation->size() * sizeof(Tuple);
  }
  materialized_[key] = Materialized{out, target};
  base_bytes_ += total * sizeof(Tuple);
  return out;
}

std::vector<RunCache::CompactJob> RunCache::CollectCompactJobsLocked() {
  std::vector<CompactJob> jobs;
  for (auto& [relation_id, log] : logs_) {
    if (log.segments.size() < options_.delta_level_fanout) continue;
    // Merging across a live entry's install point would straddle its
    // covered-version boundary and invalidate a warm entry; cut
    // candidate stretches there.
    std::vector<uint64_t> boundaries;
    for (const auto& [key, entry] : entries_) {
      if (key.relation_id == relation_id) {
        boundaries.push_back(entry.covers_version);
      }
    }
    const auto protected_after = [&](uint64_t last_version) {
      return std::find(boundaries.begin(), boundaries.end(), last_version) !=
             boundaries.end();
    };
    size_t i = 0;
    while (i < log.segments.size()) {
      const uint32_t level = log.segments[i]->level;
      size_t j = i + 1;
      while (j < log.segments.size() && log.segments[j]->level == level &&
             !protected_after(log.segments[j - 1]->last_version)) {
        ++j;
      }
      if (j - i >= options_.delta_level_fanout) {
        CompactJob job;
        job.relation_id = relation_id;
        job.sources.assign(log.segments.begin() + static_cast<ptrdiff_t>(i),
                           log.segments.begin() + static_cast<ptrdiff_t>(j));
        jobs.push_back(std::move(job));
      }
      i = j;
    }
  }
  return jobs;
}

void RunCache::CommitCompactJobLocked(CompactJob& job) {
  auto log_it = logs_.find(job.relation_id);
  if (log_it == logs_.end()) return;  // relation invalidated meanwhile
  auto& segments = log_it->second.segments;
  const auto first = std::find(segments.begin(), segments.end(),
                               job.sources.front());
  if (first == segments.end() ||
      static_cast<size_t>(segments.end() - first) < job.sources.size()) {
    return;
  }
  // All sources must still sit contiguously where we left them.
  for (size_t k = 0; k < job.sources.size(); ++k) {
    if (*(first + static_cast<ptrdiff_t>(k)) != job.sources[k]) return;
  }
  const auto last = first + static_cast<ptrdiff_t>(job.sources.size());
  *first = job.merged;
  segments.erase(first + 1, last);
  ++stats_.compactions;
  stats_.compacted_segments += job.sources.size();
  // Same tuples, one segment: resident delta bytes are unchanged.
}

uint64_t RunCache::CompactPending(WorkerTeam* team) {
  std::vector<CompactJob> jobs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (compacting_) return 0;
    jobs = CollectCompactJobsLocked();
    if (jobs.empty()) return 0;
    compacting_ = true;
  }

  const auto merge_job = [](CompactJob& job) {
    std::vector<Run> runs;
    runs.reserve(job.sources.size());
    uint32_t level = 0;
    for (const auto& segment : job.sources) {
      runs.push_back(segment->AsRun());
      level = std::max(level, segment->level);
    }
    auto merged = std::make_shared<DeltaSegment>();
    merged->tuples = MergeRuns(std::move(runs));
    merged->first_version = job.sources.front()->first_version;
    merged->last_version = job.sources.back()->last_version;
    merged->level = level + 1;
    job.merged = std::move(merged);
  };

  if (team != nullptr && jobs.size() > 1) {
    // Low-priority background shape: one guest-safe stealable morsel
    // per merge, so idle workers — including donated foreign ones —
    // drain the compaction backlog (docs/cache.md).
    PhasePipeline pipeline(team->topology(), team->size(),
                           SchedulerKind::kStealing);
    pipeline.AddPhase(
        kPhaseSortPublic,
        [&jobs, team] {
          std::vector<Morsel> morsels;
          for (uint32_t j = 0; j < jobs.size(); ++j) {
            morsels.push_back(Morsel{j % team->size(), j, 0, 0});
          }
          return morsels;
        },
        [&](WorkerContext&, const Morsel& morsel) {
          merge_job(jobs[morsel.task]);
        },
        PhasePipeline::PhaseOptions{.guest_safe = true});
    pipeline.Run(*team);
  } else {
    for (CompactJob& job : jobs) merge_job(job);
  }

  uint64_t committed = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (CompactJob& job : jobs) {
      const uint64_t before = stats_.compactions;
      CommitCompactJobLocked(job);
      committed += stats_.compactions - before;
    }
    compacting_ = false;
  }
  if (committed > 0) {
    CompactionCounter().Add(committed);
    obs::TraceInstant(obs::kCatCache, "cache.compact", "merges", committed);
  }
  return committed;
}

void RunCache::EvictLruLocked() {
  auto victim = entries_.end();
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (victim == entries_.end() ||
        it->second.lru_tick < victim->second.lru_tick) {
      victim = it;
    }
  }
  if (victim == entries_.end()) return;
  base_bytes_ -= victim->second.bytes;
  entries_.erase(victim);
  ++stats_.evictions;
  EvictionCounter().Add(1);
  obs::TraceInstant(obs::kCatCache, "cache.evict");
}

uint64_t RunCache::EvictToFit(uint64_t target_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t before = base_bytes_ + delta_bytes_;
  if (before <= target_bytes) return 0;
  // Memoized materializations are pure recomputations — drop them first.
  for (auto it = materialized_.begin(); it != materialized_.end();) {
    base_bytes_ -= it->second.relation->size() * sizeof(Tuple);
    it = materialized_.erase(it);
    if (base_bytes_ + delta_bytes_ <= target_bytes) break;
  }
  while (base_bytes_ + delta_bytes_ > target_bytes && !entries_.empty()) {
    EvictLruLocked();
  }
  return before - (base_bytes_ + delta_bytes_);
}

void RunCache::InvalidateRelation(uint64_t relation_id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.relation_id == relation_id) {
      base_bytes_ -= it->second.bytes;
      it = entries_.erase(it);
      ++stats_.evictions;
      EvictionCounter().Add(1);
    } else {
      ++it;
    }
  }
  for (auto it = materialized_.begin(); it != materialized_.end();) {
    if (it->first.relation_id == relation_id) {
      base_bytes_ -= it->second.relation->size() * sizeof(Tuple);
      it = materialized_.erase(it);
    } else {
      ++it;
    }
  }
  auto log = logs_.find(relation_id);
  if (log != logs_.end()) {
    for (const auto& segment : log->second.segments) {
      delta_bytes_ -= segment->bytes();
    }
    logs_.erase(log);
  }
}

void RunCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  materialized_.clear();
  logs_.clear();
  base_bytes_ = 0;
  delta_bytes_ = 0;
}

uint64_t RunCache::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return base_bytes_ + delta_bytes_;
}

CacheStats RunCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  CacheStats out = stats_;
  out.base_bytes = base_bytes_;
  out.delta_bytes = delta_bytes_;
  return out;
}

}  // namespace mpsm::cache

#include "simd/simd_kind.h"

namespace mpsm::simd {

const char* SimdKindName(SimdKind kind) {
  switch (kind) {
    case SimdKind::kScalar:
      return "scalar";
    case SimdKind::kSse:
      return "sse";
    case SimdKind::kAvx2:
      return "avx2";
    case SimdKind::kAvx512:
      return "avx512";
    case SimdKind::kAuto:
      return "auto";
  }
  return "unknown";
}

std::optional<SimdKind> ParseSimdKind(std::string_view name) {
  if (name == "scalar") return SimdKind::kScalar;
  if (name == "sse") return SimdKind::kSse;
  if (name == "avx2") return SimdKind::kAvx2;
  if (name == "avx512") return SimdKind::kAvx512;
  if (name == "auto") return SimdKind::kAuto;
  return std::nullopt;
}

}  // namespace mpsm::simd

// Compile-time gate for the x86 vector kernels.
//
// The kernels are built with per-function target attributes
// (MPSM_SIMD_TARGET), so the library never needs a global -mavx2: the
// binary always contains every kernel the compiler can emit, and the
// cached runtime probe (caps.h) decides which ones this CPU may
// execute. Non-x86 builds (and compilers without target attributes)
// compile none of them and simd::Resolve degrades everything to
// kScalar — CI stays green off-x86.
#pragma once

#if (defined(__x86_64__) || defined(__i386__)) &&        \
    (defined(__GNUC__) || defined(__clang__)) &&         \
    defined(__has_include)
#if __has_include(<immintrin.h>)
#define MPSM_SIMD_X86 1
#include <immintrin.h>
#endif
#endif

#ifndef MPSM_SIMD_X86
#define MPSM_SIMD_X86 0
#endif

#if MPSM_SIMD_X86
#define MPSM_SIMD_TARGET(isa) __attribute__((target(isa)))
#else
#define MPSM_SIMD_TARGET(isa)
#endif

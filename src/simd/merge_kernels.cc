#include "simd/merge_kernels.h"

namespace mpsm::simd {

#if MPSM_SIMD_X86

namespace {

// Pointer-form wrappers over the inline kernels (the searches call
// through AdvanceFn; one call per probe window is noise there).
size_t AdvanceSse(const Tuple* data, size_t begin, size_t n, uint64_t key) {
  return AdvanceLowerBoundSse(data, begin, n, key);
}

size_t AdvanceAvx2(const Tuple* data, size_t begin, size_t n, uint64_t key) {
  return AdvanceLowerBoundAvx2(data, begin, n, key);
}

size_t AdvanceAvx512(const Tuple* data, size_t begin, size_t n,
                     uint64_t key) {
  return AdvanceLowerBoundAvx512(data, begin, n, key);
}

}  // namespace

#endif  // MPSM_SIMD_X86

AdvanceFn AdvanceForKind(SimdKind resolved) {
  switch (resolved) {
#if MPSM_SIMD_X86
    case SimdKind::kSse:
      return &AdvanceSse;
    case SimdKind::kAvx2:
      return &AdvanceAvx2;
    case SimdKind::kAvx512:
      return &AdvanceAvx512;
#endif
    default:
      return nullptr;  // kScalar (and unprobed kinds off-x86)
  }
}

}  // namespace mpsm::simd

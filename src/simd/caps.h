// Runtime SIMD capability probe and kind resolution.
//
// Mirrors the io_uring probe pattern from src/io/: compile-time gates
// decide which kernels exist in the binary (x86 + a compiler that
// supports per-function target attributes, so no global -mavx2 is
// required), and a cached runtime CPUID probe decides which of them
// this machine can actually execute. simd::Resolve maps the SimdKind
// knob onto that intersection: kAuto picks the widest supported kind,
// and an explicit kind on a host without it degrades to the widest
// *narrower* kind instead of faulting (an A/B harness asking for
// avx512 on an avx2 box measures avx2, it does not SIGILL — the
// resolved kind is surfaced in JoinPlan/JoinReport so the downgrade is
// visible).
#pragma once

#include <vector>

#include "simd/simd_kind.h"

namespace mpsm::simd {

/// What this build + this CPU can execute (compile-time kernel gates
/// intersected with the cached CPUID probe).
struct Caps {
  bool sse42 = false;
  bool avx2 = false;
  bool avx512f = false;
};

/// The host's capabilities; probed once, cached.
const Caps& DetectCaps();

/// Resolves `kind` to a concrete executable kind: kAuto becomes the
/// widest supported kind, an unsupported explicit kind degrades to the
/// widest supported narrower one (kScalar always executes). The
/// MPSM_SIMD environment variable, when set to a kind name, overrides
/// the requested kind before resolution (CI forces "scalar" through it
/// without touching every knob).
SimdKind Resolve(SimdKind kind);

/// Keys compared per vector register for a *resolved* kind (1, 2, 4,
/// 8): the planner's keys_per_compare coefficient.
uint32_t KeysPerCompare(SimdKind resolved);

/// Every concrete kind this host can execute, narrowest first
/// (kScalar always included) — what the kernel-matrix tests sweep.
std::vector<SimdKind> SupportedKinds();

}  // namespace mpsm::simd

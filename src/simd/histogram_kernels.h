// Vectorized histogram / digit-extraction kernels for the radix
// passes (§3.2.1, §2.3) and the key-range scan.
//
// The counting loops of the partitioning phases are comparison-free
// but not compute-free: every tuple costs a shift/mask (radix digit),
// a subtract-shift-clamp (range cluster) or a multiply-shift (hash
// digit) before the increment. These kernels lift one register of
// keys at a time out of the 16-byte tuples with unpack shuffles (no
// gathers), extract the digits with packed ALU ops, and spill them to
// a small stack buffer for the scalar increments — the table update
// itself stays scalar because neighboring tuples may hit the same
// bucket. All kinds produce bit-identical histograms; SSE has no
// 64-bit packed shifts worth the trip and resolves to scalar here.
#pragma once

#include <cstddef>
#include <cstdint>

#include "simd/simd_kind.h"
#include "storage/tuple.h"

namespace mpsm::simd {

/// histogram[(key >> shift) & 0xFF] += 1 per tuple (the 8-bit MSD
/// radix pass of src/sort/). `histogram` must have 256 zero-initialized
/// (or accumulating) slots; shift <= 63.
void RadixDigitHistogram(const Tuple* data, size_t n, uint32_t shift,
                         uint64_t* histogram, SimdKind kind);

/// histogram[cluster(key)] += 1 per tuple under the KeyNormalizer
/// mapping of src/partition/: cluster = key <= min_key ? 0 :
/// min((key - min_key) >> shift, num_clusters - 1). num_clusters >= 1.
void ClusterHistogram(const Tuple* data, size_t n, uint64_t min_key,
                      uint32_t shift, uint32_t num_clusters,
                      uint64_t* histogram, SimdKind kind);

/// digits[i] = cluster(data[i].key) for every tuple, same mapping as
/// ClusterHistogram but spilled *in source order* for the scatter of
/// phase 2.3 (partition/prefix_scatter.h): the subtract-shift-clamp
/// per tuple vectorizes here, the scatter then maps each digit through
/// the splitter vector with a scalar table lookup. All kinds produce
/// identical digits.
void ClusterDigits(const Tuple* data, size_t n, uint64_t min_key,
                   uint32_t shift, uint32_t num_clusters, uint32_t* digits,
                   SimdKind kind);

/// histogram[digit(key)] += 1 per tuple for the radix hash join's
/// partitioning digit: digit = ((key * multiplier) << bit_offset) >>
/// (64 - bit_count) — the caller supplies its multiplicative hash
/// constant (baseline/hash_table.h HashKey). 1 <= bit_count <= 32.
void HashDigitHistogram(const Tuple* data, size_t n, uint64_t multiplier,
                        uint32_t bit_offset, uint32_t bit_count,
                        uint64_t* histogram, SimdKind kind);

/// Min and max key over data[0..n); n must be >= 1.
void KeyMinMax(const Tuple* data, size_t n, uint64_t* min_key,
               uint64_t* max_key, SimdKind kind);

}  // namespace mpsm::simd

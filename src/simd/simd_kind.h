// SimdKind enum, split from the kernel headers so option structs can
// name the knob without pulling in the dispatch machinery (CPUID
// probes, intrinsics) — same pattern as io/io_backend_kind.h and
// partition/scatter_kind.h.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace mpsm::simd {

/// Which vector ISA the merge / search / histogram kernels run on.
/// Widths are cumulative: every non-scalar kind keeps the scalar tail
/// loop, and kAuto resolves to the widest kind this build *and* this
/// CPU support (simd::Resolve, caps.h).
enum class SimdKind : uint8_t {
  kScalar,  // one key per compare (the correctness oracle / A/B base)
  kSse,     // SSE4.2: 2 keys per 128-bit register, 4-tuple blocks
  kAvx2,    // AVX2: 4 keys per 256-bit register, 8-tuple blocks
  kAvx512,  // AVX-512F: 8 keys per 512-bit register, 16-tuple blocks
  kAuto,    // widest supported kind (cached runtime CPUID probe)
};

/// Name of a SimdKind ("scalar", "sse", "avx2", "avx512", "auto").
const char* SimdKindName(SimdKind kind);

/// Parses a kind name (the strings SimdKindName emits); nullopt on
/// anything else.
std::optional<SimdKind> ParseSimdKind(std::string_view name);

}  // namespace mpsm::simd

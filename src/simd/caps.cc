#include "simd/caps.h"

#include "simd/arch.h"
#include "util/env.h"

namespace mpsm::simd {

const Caps& DetectCaps() {
  static const Caps caps = [] {
    Caps c;
#if MPSM_SIMD_X86
    __builtin_cpu_init();
    c.sse42 = __builtin_cpu_supports("sse4.2");
    c.avx2 = __builtin_cpu_supports("avx2");
    c.avx512f = __builtin_cpu_supports("avx512f");
#endif
    return c;
  }();
  return caps;
}

SimdKind Resolve(SimdKind kind) {
  // CI / debugging escape hatch: MPSM_SIMD=scalar forces every kernel
  // to its scalar path without touching any knob (read once, cached).
  static const std::optional<SimdKind> env_kind = [] {
    const auto value = GetEnv("MPSM_SIMD");
    return value.has_value() ? ParseSimdKind(*value) : std::nullopt;
  }();
  if (env_kind.has_value()) kind = *env_kind;

  const Caps& caps = DetectCaps();
  if (kind == SimdKind::kAuto) kind = SimdKind::kAvx512;
  // Degrade an unexecutable kind to the widest narrower one that
  // measures no worse than scalar. kSse is skipped on the way down:
  // its 4-wide window exhausts every ~multiplicity tuples and the
  // merge A/B puts it below the scalar loop (docs/simd.md) — it stays
  // selectable explicitly as the A/B point that documents exactly
  // that.
  if (kind == SimdKind::kAvx512 && !caps.avx512f) kind = SimdKind::kAvx2;
  if (kind == SimdKind::kAvx2 && !caps.avx2) kind = SimdKind::kScalar;
  if (kind == SimdKind::kSse && !caps.sse42) kind = SimdKind::kScalar;
  return kind;
}

uint32_t KeysPerCompare(SimdKind resolved) {
  switch (resolved) {
    case SimdKind::kScalar:
      return 1;
    case SimdKind::kSse:
      return 2;
    case SimdKind::kAvx2:
      return 4;
    case SimdKind::kAvx512:
      return 8;
    case SimdKind::kAuto:
      return KeysPerCompare(Resolve(SimdKind::kAuto));
  }
  return 1;
}

std::vector<SimdKind> SupportedKinds() {
  const Caps& caps = DetectCaps();
  std::vector<SimdKind> kinds{SimdKind::kScalar};
  if (caps.sse42) kinds.push_back(SimdKind::kSse);
  if (caps.avx2) kinds.push_back(SimdKind::kAvx2);
  if (caps.avx512f) kinds.push_back(SimdKind::kAvx512);
  return kinds;
}

}  // namespace mpsm::simd

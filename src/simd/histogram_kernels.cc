#include "simd/histogram_kernels.h"

#include <algorithm>

#include "simd/arch.h"
#include "simd/caps.h"

// GCC's _mm512_undefined_epi32 self-initializes (__Y = __Y) inside
// avx512fintrin.h; -Wall reports it against this TU when the unpack
// intrinsics inline into the kernels. Toolchain noise, not repo code.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace mpsm::simd {

namespace {

void RadixDigitHistogramScalar(const Tuple* data, size_t n, uint32_t shift,
                               uint64_t* histogram) {
  for (size_t i = 0; i < n; ++i) {
    ++histogram[(data[i].key >> shift) & 0xFF];
  }
}

uint32_t ClusterOf(uint64_t key, uint64_t min_key, uint32_t shift,
                   uint32_t num_clusters) {
  if (key <= min_key) return 0;
  const uint64_t cluster = (key - min_key) >> shift;
  return cluster >= num_clusters ? num_clusters - 1
                                 : static_cast<uint32_t>(cluster);
}

void ClusterHistogramScalar(const Tuple* data, size_t n, uint64_t min_key,
                            uint32_t shift, uint32_t num_clusters,
                            uint64_t* histogram) {
  for (size_t i = 0; i < n; ++i) {
    ++histogram[ClusterOf(data[i].key, min_key, shift, num_clusters)];
  }
}

void ClusterDigitsScalar(const Tuple* data, size_t n, uint64_t min_key,
                         uint32_t shift, uint32_t num_clusters,
                         uint32_t* digits) {
  for (size_t i = 0; i < n; ++i) {
    digits[i] = ClusterOf(data[i].key, min_key, shift, num_clusters);
  }
}

void HashDigitHistogramScalar(const Tuple* data, size_t n,
                              uint64_t multiplier, uint32_t bit_offset,
                              uint32_t bit_count, uint64_t* histogram) {
  for (size_t i = 0; i < n; ++i) {
    ++histogram[((data[i].key * multiplier) << bit_offset) >>
                (64 - bit_count)];
  }
}

void KeyMinMaxScalar(const Tuple* data, size_t n, uint64_t* min_key,
                     uint64_t* max_key) {
  uint64_t lo = data[0].key;
  uint64_t hi = data[0].key;
  for (size_t i = 1; i < n; ++i) {
    lo = std::min(lo, data[i].key);
    hi = std::max(hi, data[i].key);
  }
  *min_key = lo;
  *max_key = hi;
}

#if MPSM_SIMD_X86

constexpr long long kSignBias = static_cast<long long>(0x8000000000000000ull);

// ------------------------------------------------------------- AVX2

/// Keys of 8 consecutive tuples as two 4-lane vectors (lane order is a
/// permutation of the source order; histogram counting is
/// order-insensitive).
MPSM_SIMD_TARGET("avx2")
inline void LoadKeys8Avx2(const Tuple* block, __m256i* a, __m256i* b) {
  const __m256i t0 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(block));
  const __m256i t1 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(block + 2));
  const __m256i t2 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(block + 4));
  const __m256i t3 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(block + 6));
  *a = _mm256_unpacklo_epi64(t0, t1);
  *b = _mm256_unpacklo_epi64(t2, t3);
}

/// 64-bit low-half multiply (AVX2 has no mullo_epi64): three 32x32
/// partial products.
MPSM_SIMD_TARGET("avx2")
inline __m256i Mullo64Avx2(__m256i a, __m256i c) {
  const __m256i lolo = _mm256_mul_epu32(a, c);
  const __m256i cross =
      _mm256_add_epi64(_mm256_mul_epu32(_mm256_srli_epi64(a, 32), c),
                       _mm256_mul_epu32(a, _mm256_srli_epi64(c, 32)));
  return _mm256_add_epi64(lolo, _mm256_slli_epi64(cross, 32));
}

MPSM_SIMD_TARGET("avx2")
void RadixDigitHistogramAvx2(const Tuple* data, size_t n, uint32_t shift,
                             uint64_t* histogram) {
  const __m128i count = _mm_cvtsi32_si128(static_cast<int>(shift));
  const __m256i mask = _mm256_set1_epi64x(0xFF);
  alignas(32) uint64_t digits[8];
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i a, b;
    LoadKeys8Avx2(data + i, &a, &b);
    _mm256_store_si256(
        reinterpret_cast<__m256i*>(digits),
        _mm256_and_si256(_mm256_srl_epi64(a, count), mask));
    _mm256_store_si256(
        reinterpret_cast<__m256i*>(digits + 4),
        _mm256_and_si256(_mm256_srl_epi64(b, count), mask));
    for (int d = 0; d < 8; ++d) ++histogram[digits[d]];
  }
  RadixDigitHistogramScalar(data + i, n - i, shift, histogram);
}

MPSM_SIMD_TARGET("avx2")
void ClusterHistogramAvx2(const Tuple* data, size_t n, uint64_t min_key,
                          uint32_t shift, uint32_t num_clusters,
                          uint64_t* histogram) {
  const __m128i count = _mm_cvtsi32_si128(static_cast<int>(shift));
  const __m256i bias = _mm256_set1_epi64x(kSignBias);
  const __m256i min_vec =
      _mm256_set1_epi64x(static_cast<long long>(min_key));
  const __m256i min_biased = _mm256_xor_si256(min_vec, bias);
  const __m256i limit =
      _mm256_set1_epi64x(static_cast<long long>(num_clusters - 1));
  const __m256i limit_biased = _mm256_xor_si256(limit, bias);
  alignas(32) uint64_t clusters[8];
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i keys[2];
    LoadKeys8Avx2(data + i, &keys[0], &keys[1]);
    for (int half = 0; half < 2; ++half) {
      const __m256i k = keys[half];
      // key > min_key (unsigned): lanes at or below min clamp to 0.
      const __m256i above =
          _mm256_cmpgt_epi64(_mm256_xor_si256(k, bias), min_biased);
      const __m256i diff =
          _mm256_and_si256(_mm256_sub_epi64(k, min_vec), above);
      __m256i cluster = _mm256_srl_epi64(diff, count);
      const __m256i over = _mm256_cmpgt_epi64(
          _mm256_xor_si256(cluster, bias), limit_biased);
      cluster = _mm256_blendv_epi8(cluster, limit, over);
      _mm256_store_si256(reinterpret_cast<__m256i*>(clusters + 4 * half),
                         cluster);
    }
    for (int d = 0; d < 8; ++d) ++histogram[clusters[d]];
  }
  ClusterHistogramScalar(data + i, n - i, min_key, shift, num_clusters,
                         histogram);
}

MPSM_SIMD_TARGET("avx2")
void ClusterDigitsAvx2(const Tuple* data, size_t n, uint64_t min_key,
                       uint32_t shift, uint32_t num_clusters,
                       uint32_t* digits) {
  const __m128i count = _mm_cvtsi32_si128(static_cast<int>(shift));
  const __m256i bias = _mm256_set1_epi64x(kSignBias);
  const __m256i min_vec =
      _mm256_set1_epi64x(static_cast<long long>(min_key));
  const __m256i min_biased = _mm256_xor_si256(min_vec, bias);
  const __m256i limit =
      _mm256_set1_epi64x(static_cast<long long>(num_clusters - 1));
  const __m256i limit_biased = _mm256_xor_si256(limit, bias);
  // LoadKeys8Avx2 permutes lane order within each half: the spill
  // below restores source order (clusters[d] belongs to tuple
  // i + kLane[d]), which the histogram kernels may ignore but a digit
  // stream must not.
  static constexpr int kLane[8] = {0, 2, 1, 3, 4, 6, 5, 7};
  alignas(32) uint64_t clusters[8];
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i keys[2];
    LoadKeys8Avx2(data + i, &keys[0], &keys[1]);
    for (int half = 0; half < 2; ++half) {
      const __m256i k = keys[half];
      const __m256i above =
          _mm256_cmpgt_epi64(_mm256_xor_si256(k, bias), min_biased);
      const __m256i diff =
          _mm256_and_si256(_mm256_sub_epi64(k, min_vec), above);
      __m256i cluster = _mm256_srl_epi64(diff, count);
      const __m256i over = _mm256_cmpgt_epi64(
          _mm256_xor_si256(cluster, bias), limit_biased);
      cluster = _mm256_blendv_epi8(cluster, limit, over);
      _mm256_store_si256(reinterpret_cast<__m256i*>(clusters + 4 * half),
                         cluster);
    }
    for (int d = 0; d < 8; ++d) {
      digits[i + kLane[d]] = static_cast<uint32_t>(clusters[d]);
    }
  }
  ClusterDigitsScalar(data + i, n - i, min_key, shift, num_clusters,
                      digits + i);
}

MPSM_SIMD_TARGET("avx2")
void HashDigitHistogramAvx2(const Tuple* data, size_t n, uint64_t multiplier,
                            uint32_t bit_offset, uint32_t bit_count,
                            uint64_t* histogram) {
  const __m256i mult =
      _mm256_set1_epi64x(static_cast<long long>(multiplier));
  const __m128i left = _mm_cvtsi32_si128(static_cast<int>(bit_offset));
  const __m128i right = _mm_cvtsi32_si128(static_cast<int>(64 - bit_count));
  alignas(32) uint64_t digits[8];
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i keys[2];
    LoadKeys8Avx2(data + i, &keys[0], &keys[1]);
    for (int half = 0; half < 2; ++half) {
      const __m256i hash = Mullo64Avx2(keys[half], mult);
      const __m256i digit =
          _mm256_srl_epi64(_mm256_sll_epi64(hash, left), right);
      _mm256_store_si256(reinterpret_cast<__m256i*>(digits + 4 * half),
                         digit);
    }
    for (int d = 0; d < 8; ++d) ++histogram[digits[d]];
  }
  HashDigitHistogramScalar(data + i, n - i, multiplier, bit_offset,
                           bit_count, histogram);
}

/// Folds 4 biased keys into running biased min/max accumulators
/// (AVX2 has no unsigned 64-bit min/max; compare-and-blend on
/// sign-flipped lanes).
MPSM_SIMD_TARGET("avx2")
inline void FoldMinMaxAvx2(__m256i* lo_acc, __m256i* hi_acc,
                           __m256i biased) {
  *lo_acc = _mm256_blendv_epi8(*lo_acc, biased,
                               _mm256_cmpgt_epi64(*lo_acc, biased));
  *hi_acc = _mm256_blendv_epi8(*hi_acc, biased,
                               _mm256_cmpgt_epi64(biased, *hi_acc));
}

MPSM_SIMD_TARGET("avx2")
void KeyMinMaxAvx2(const Tuple* data, size_t n, uint64_t* min_key,
                   uint64_t* max_key) {
  if (n < 8) {
    KeyMinMaxScalar(data, n, min_key, max_key);
    return;
  }
  const __m256i bias = _mm256_set1_epi64x(kSignBias);
  __m256i a0, b0;
  LoadKeys8Avx2(data, &a0, &b0);
  __m256i lo = _mm256_xor_si256(a0, bias);
  __m256i hi = lo;
  FoldMinMaxAvx2(&lo, &hi, _mm256_xor_si256(b0, bias));
  size_t i = 8;
  for (; i + 8 <= n; i += 8) {
    __m256i a, b;
    LoadKeys8Avx2(data + i, &a, &b);
    FoldMinMaxAvx2(&lo, &hi, _mm256_xor_si256(a, bias));
    FoldMinMaxAvx2(&lo, &hi, _mm256_xor_si256(b, bias));
  }
  alignas(32) uint64_t lanes[4];
  uint64_t result_lo = UINT64_MAX;
  uint64_t result_hi = 0;
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes),
                     _mm256_xor_si256(lo, bias));
  for (int lane = 0; lane < 4; ++lane) {
    result_lo = std::min(result_lo, lanes[lane]);
  }
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes),
                     _mm256_xor_si256(hi, bias));
  for (int lane = 0; lane < 4; ++lane) {
    result_hi = std::max(result_hi, lanes[lane]);
  }
  for (; i < n; ++i) {
    result_lo = std::min(result_lo, data[i].key);
    result_hi = std::max(result_hi, data[i].key);
  }
  *min_key = result_lo;
  *max_key = result_hi;
}

// ----------------------------------------------------------- AVX-512

MPSM_SIMD_TARGET("avx512f")
inline void LoadKeys16Avx512(const Tuple* block, __m512i* a, __m512i* b) {
  const __m512i t0 = _mm512_loadu_si512(block);
  const __m512i t1 = _mm512_loadu_si512(block + 4);
  const __m512i t2 = _mm512_loadu_si512(block + 8);
  const __m512i t3 = _mm512_loadu_si512(block + 12);
  // maskz unpack: see merge_kernels.h CountLessAvx512.
  *a = _mm512_maskz_unpacklo_epi64(static_cast<__mmask8>(0xFF), t0, t1);
  *b = _mm512_maskz_unpacklo_epi64(static_cast<__mmask8>(0xFF), t2, t3);
}

MPSM_SIMD_TARGET("avx512f")
inline __m512i Mullo64Avx512(__m512i a, __m512i c) {
  const __m512i lolo = _mm512_mul_epu32(a, c);
  const __m512i cross =
      _mm512_add_epi64(_mm512_mul_epu32(_mm512_srli_epi64(a, 32), c),
                       _mm512_mul_epu32(a, _mm512_srli_epi64(c, 32)));
  return _mm512_add_epi64(lolo, _mm512_slli_epi64(cross, 32));
}

MPSM_SIMD_TARGET("avx512f")
void RadixDigitHistogramAvx512(const Tuple* data, size_t n, uint32_t shift,
                               uint64_t* histogram) {
  const __m128i count = _mm_cvtsi32_si128(static_cast<int>(shift));
  const __m512i mask = _mm512_set1_epi64(0xFF);
  alignas(64) uint64_t digits[16];
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m512i a, b;
    LoadKeys16Avx512(data + i, &a, &b);
    _mm512_store_si512(digits,
                       _mm512_and_si512(_mm512_srl_epi64(a, count), mask));
    _mm512_store_si512(digits + 8,
                       _mm512_and_si512(_mm512_srl_epi64(b, count), mask));
    for (int d = 0; d < 16; ++d) ++histogram[digits[d]];
  }
  RadixDigitHistogramScalar(data + i, n - i, shift, histogram);
}

MPSM_SIMD_TARGET("avx512f")
void ClusterHistogramAvx512(const Tuple* data, size_t n, uint64_t min_key,
                            uint32_t shift, uint32_t num_clusters,
                            uint64_t* histogram) {
  const __m128i count = _mm_cvtsi32_si128(static_cast<int>(shift));
  const __m512i min_vec =
      _mm512_set1_epi64(static_cast<long long>(min_key));
  const __m512i limit =
      _mm512_set1_epi64(static_cast<long long>(num_clusters - 1));
  alignas(64) uint64_t clusters[16];
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m512i keys[2];
    LoadKeys16Avx512(data + i, &keys[0], &keys[1]);
    for (int half = 0; half < 2; ++half) {
      const __m512i k = keys[half];
      const __mmask8 above = _mm512_cmpgt_epu64_mask(k, min_vec);
      const __m512i diff =
          _mm512_maskz_sub_epi64(above, k, min_vec);
      const __m512i cluster =
          _mm512_min_epu64(_mm512_srl_epi64(diff, count), limit);
      _mm512_store_si512(clusters + 8 * half, cluster);
    }
    for (int d = 0; d < 16; ++d) ++histogram[clusters[d]];
  }
  ClusterHistogramScalar(data + i, n - i, min_key, shift, num_clusters,
                         histogram);
}

MPSM_SIMD_TARGET("avx512f")
void ClusterDigitsAvx512(const Tuple* data, size_t n, uint64_t min_key,
                         uint32_t shift, uint32_t num_clusters,
                         uint32_t* digits) {
  const __m128i count = _mm_cvtsi32_si128(static_cast<int>(shift));
  const __m512i min_vec =
      _mm512_set1_epi64(static_cast<long long>(min_key));
  const __m512i limit =
      _mm512_set1_epi64(static_cast<long long>(num_clusters - 1));
  // Source index of clusters[d] under LoadKeys16Avx512's per-128-bit
  // unpack order (see ClusterDigitsAvx2).
  static constexpr int kLane[16] = {0, 4, 1, 5, 2,  6,  3,  7,
                                    8, 12, 9, 13, 10, 14, 11, 15};
  alignas(64) uint64_t clusters[16];
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m512i keys[2];
    LoadKeys16Avx512(data + i, &keys[0], &keys[1]);
    for (int half = 0; half < 2; ++half) {
      const __m512i k = keys[half];
      const __mmask8 above = _mm512_cmpgt_epu64_mask(k, min_vec);
      const __m512i diff = _mm512_maskz_sub_epi64(above, k, min_vec);
      const __m512i cluster =
          _mm512_min_epu64(_mm512_srl_epi64(diff, count), limit);
      _mm512_store_si512(clusters + 8 * half, cluster);
    }
    for (int d = 0; d < 16; ++d) {
      digits[i + kLane[d]] = static_cast<uint32_t>(clusters[d]);
    }
  }
  ClusterDigitsScalar(data + i, n - i, min_key, shift, num_clusters,
                      digits + i);
}

MPSM_SIMD_TARGET("avx512f")
void HashDigitHistogramAvx512(const Tuple* data, size_t n,
                              uint64_t multiplier, uint32_t bit_offset,
                              uint32_t bit_count, uint64_t* histogram) {
  const __m512i mult =
      _mm512_set1_epi64(static_cast<long long>(multiplier));
  const __m128i left = _mm_cvtsi32_si128(static_cast<int>(bit_offset));
  const __m128i right = _mm_cvtsi32_si128(static_cast<int>(64 - bit_count));
  alignas(64) uint64_t digits[16];
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m512i keys[2];
    LoadKeys16Avx512(data + i, &keys[0], &keys[1]);
    for (int half = 0; half < 2; ++half) {
      const __m512i hash = Mullo64Avx512(keys[half], mult);
      _mm512_store_si512(
          digits + 8 * half,
          _mm512_srl_epi64(_mm512_sll_epi64(hash, left), right));
    }
    for (int d = 0; d < 16; ++d) ++histogram[digits[d]];
  }
  HashDigitHistogramScalar(data + i, n - i, multiplier, bit_offset,
                           bit_count, histogram);
}

MPSM_SIMD_TARGET("avx512f")
void KeyMinMaxAvx512(const Tuple* data, size_t n, uint64_t* min_key,
                     uint64_t* max_key) {
  if (n < 16) {
    KeyMinMaxScalar(data, n, min_key, max_key);
    return;
  }
  __m512i a0, b0;
  LoadKeys16Avx512(data, &a0, &b0);
  __m512i lo = _mm512_min_epu64(a0, b0);
  __m512i hi = _mm512_max_epu64(a0, b0);
  size_t i = 16;
  for (; i + 16 <= n; i += 16) {
    __m512i a, b;
    LoadKeys16Avx512(data + i, &a, &b);
    lo = _mm512_min_epu64(lo, _mm512_min_epu64(a, b));
    hi = _mm512_max_epu64(hi, _mm512_max_epu64(a, b));
  }
  uint64_t result_lo = _mm512_reduce_min_epu64(lo);
  uint64_t result_hi = _mm512_reduce_max_epu64(hi);
  for (; i < n; ++i) {
    result_lo = std::min(result_lo, data[i].key);
    result_hi = std::max(result_hi, data[i].key);
  }
  *min_key = result_lo;
  *max_key = result_hi;
}

#endif  // MPSM_SIMD_X86

}  // namespace

void RadixDigitHistogram(const Tuple* data, size_t n, uint32_t shift,
                         uint64_t* histogram, SimdKind kind) {
  switch (Resolve(kind)) {
#if MPSM_SIMD_X86
    case SimdKind::kAvx512:
      RadixDigitHistogramAvx512(data, n, shift, histogram);
      return;
    case SimdKind::kAvx2:
      RadixDigitHistogramAvx2(data, n, shift, histogram);
      return;
#endif
    default:
      RadixDigitHistogramScalar(data, n, shift, histogram);
  }
}

void ClusterHistogram(const Tuple* data, size_t n, uint64_t min_key,
                      uint32_t shift, uint32_t num_clusters,
                      uint64_t* histogram, SimdKind kind) {
  switch (Resolve(kind)) {
#if MPSM_SIMD_X86
    case SimdKind::kAvx512:
      ClusterHistogramAvx512(data, n, min_key, shift, num_clusters,
                             histogram);
      return;
    case SimdKind::kAvx2:
      ClusterHistogramAvx2(data, n, min_key, shift, num_clusters, histogram);
      return;
#endif
    default:
      ClusterHistogramScalar(data, n, min_key, shift, num_clusters,
                             histogram);
  }
}

void ClusterDigits(const Tuple* data, size_t n, uint64_t min_key,
                   uint32_t shift, uint32_t num_clusters, uint32_t* digits,
                   SimdKind kind) {
  switch (Resolve(kind)) {
#if MPSM_SIMD_X86
    case SimdKind::kAvx512:
      ClusterDigitsAvx512(data, n, min_key, shift, num_clusters, digits);
      return;
    case SimdKind::kAvx2:
      ClusterDigitsAvx2(data, n, min_key, shift, num_clusters, digits);
      return;
#endif
    default:
      ClusterDigitsScalar(data, n, min_key, shift, num_clusters, digits);
  }
}

void HashDigitHistogram(const Tuple* data, size_t n, uint64_t multiplier,
                        uint32_t bit_offset, uint32_t bit_count,
                        uint64_t* histogram, SimdKind kind) {
  switch (Resolve(kind)) {
#if MPSM_SIMD_X86
    case SimdKind::kAvx512:
      HashDigitHistogramAvx512(data, n, multiplier, bit_offset, bit_count,
                               histogram);
      return;
    case SimdKind::kAvx2:
      HashDigitHistogramAvx2(data, n, multiplier, bit_offset, bit_count,
                             histogram);
      return;
#endif
    default:
      HashDigitHistogramScalar(data, n, multiplier, bit_offset, bit_count,
                               histogram);
  }
}

void KeyMinMax(const Tuple* data, size_t n, uint64_t* min_key,
               uint64_t* max_key, SimdKind kind) {
  switch (Resolve(kind)) {
#if MPSM_SIMD_X86
    case SimdKind::kAvx512:
      KeyMinMaxAvx512(data, n, min_key, max_key);
      return;
    case SimdKind::kAvx2:
      KeyMinMaxAvx2(data, n, min_key, max_key);
      return;
#endif
    default:
      KeyMinMaxScalar(data, n, min_key, max_key);
  }
}

}  // namespace mpsm::simd

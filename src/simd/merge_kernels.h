// Vectorized merge-advance kernels: the key-comparison inner loop of
// the phase-4 merge join (§3.3), done one register of keys at a time.
//
// A merge join spends most of its cycles advancing the cursor whose
// key is behind. On sorted data "advance r until r[i].key >= s_key" is
// a forward lower-bound, and within a block of W consecutive tuples
// the number of keys below the pivot *is* the advance distance — so
// one packed compare + popcount replaces W scalar compare/branch
// pairs (keys are lifted out of the 16-byte tuples with unpack
// shuffles; no gathers). Long skips (skewed runs) switch to galloping:
// doubling probes bracket the target, a binary search narrows it to
// one vector block, and a final packed count finishes — O(log d) for
// an advance of d.
//
// The kernels are defined inline here, behind per-function target
// attributes (simd/arch.h), so the merge loop templates in
// core/merge_join.h — themselves stamped per ISA — inline them fully:
// no per-advance call, the pivot and bias constants live in registers.
// The AdvanceFn pointer form below serves the start-search paths,
// where one call per probe window is noise. Dispatch follows
// simd::Resolve (caps.h); the scalar advance is the oracle every kind
// is tested against (tests/simd_test.cc).
#pragma once

#include <cstddef>
#include <cstdint>

#include "simd/arch.h"
#include "simd/simd_kind.h"
#include "storage/tuple.h"

namespace mpsm::simd {

/// Forward lower bound on a sorted run: the first index in [begin, n)
/// with data[idx].key >= key (n when none).
using AdvanceFn = size_t (*)(const Tuple* data, size_t begin, size_t n,
                             uint64_t key);

/// Scalar reference advance (one compare per tuple).
inline size_t AdvanceLowerBoundScalar(const Tuple* data, size_t begin,
                                      size_t n, uint64_t key) {
  size_t i = begin;
  while (i < n && data[i].key < key) ++i;
  return i;
}

/// Advance kernel for a *resolved* kind (see simd::Resolve). Returns
/// nullptr for kScalar: search loops treat that as "keep the scalar
/// descent", preserving the A/B baseline bit for bit.
AdvanceFn AdvanceForKind(SimdKind resolved);

/// Full vector blocks to scan with early exit before concluding the
/// advance is a long skip and switching to galloping (also the shape
/// the search accounting assumes, so defined for every build).
inline constexpr int kGallopAfterBlocks = 4;

#if MPSM_SIMD_X86

/// Packed x < pivot needs unsigned 64-bit compares; SSE/AVX2 only have
/// signed ones, so keys and pivot are bias-flipped (a <u b  <=>
/// (a ^ 2^63) <s (b ^ 2^63)). AVX-512 compares unsigned natively.
inline constexpr long long kSignBias =
    static_cast<long long>(0x8000000000000000ull);

/// Keys below `key` among block[0..4) (16-byte tuples, keys unpacked
/// from pairs of loads — lane order inside the registers is a
/// permutation, which the count does not care about: on sorted data
/// the count is the advance distance either way).
MPSM_SIMD_TARGET("sse4.2")
inline size_t CountLessSse(const Tuple* block, uint64_t key) {
  const __m128i bias = _mm_set1_epi64x(kSignBias);
  const __m128i pivot =
      _mm_xor_si128(_mm_set1_epi64x(static_cast<long long>(key)), bias);
  const __m128i t0 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(block));
  const __m128i t1 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 1));
  const __m128i t2 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 2));
  const __m128i t3 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 3));
  const __m128i k01 = _mm_xor_si128(_mm_unpacklo_epi64(t0, t1), bias);
  const __m128i k23 = _mm_xor_si128(_mm_unpacklo_epi64(t2, t3), bias);
  const unsigned mask =
      static_cast<unsigned>(
          _mm_movemask_pd(_mm_castsi128_pd(_mm_cmpgt_epi64(pivot, k01)))) |
      (static_cast<unsigned>(_mm_movemask_pd(
           _mm_castsi128_pd(_mm_cmpgt_epi64(pivot, k23))))
       << 2);
  return static_cast<size_t>(__builtin_popcount(mask));
}

/// Keys below `key` among block[0..8).
MPSM_SIMD_TARGET("avx2")
inline size_t CountLessAvx2(const Tuple* block, uint64_t key) {
  const __m256i bias = _mm256_set1_epi64x(kSignBias);
  const __m256i pivot =
      _mm256_xor_si256(_mm256_set1_epi64x(static_cast<long long>(key)), bias);
  const __m256i t0 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(block));
  const __m256i t1 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(block + 2));
  const __m256i t2 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(block + 4));
  const __m256i t3 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(block + 6));
  const __m256i k03 = _mm256_xor_si256(_mm256_unpacklo_epi64(t0, t1), bias);
  const __m256i k47 = _mm256_xor_si256(_mm256_unpacklo_epi64(t2, t3), bias);
  const unsigned mask =
      static_cast<unsigned>(_mm256_movemask_pd(
          _mm256_castsi256_pd(_mm256_cmpgt_epi64(pivot, k03)))) |
      (static_cast<unsigned>(_mm256_movemask_pd(
           _mm256_castsi256_pd(_mm256_cmpgt_epi64(pivot, k47))))
       << 4);
  return static_cast<size_t>(__builtin_popcount(mask));
}

/// Keys below `key` among block[0..16) — 8 keys per compare.
MPSM_SIMD_TARGET("avx512f")
inline size_t CountLessAvx512(const Tuple* block, uint64_t key) {
  const __m512i pivot = _mm512_set1_epi64(static_cast<long long>(key));
  const __m512i t0 = _mm512_loadu_si512(block);
  const __m512i t1 = _mm512_loadu_si512(block + 4);
  const __m512i t2 = _mm512_loadu_si512(block + 8);
  const __m512i t3 = _mm512_loadu_si512(block + 12);
  // maskz variant: the plain unpack intrinsic routes through
  // _mm512_undefined_epi32, which trips -Wuninitialized in every
  // including TU on GCC; the all-ones-mask zero variant compiles to
  // the same vpunpcklqdq.
  const __m512i k07 =
      _mm512_maskz_unpacklo_epi64(static_cast<__mmask8>(0xFF), t0, t1);
  const __m512i k8f =
      _mm512_maskz_unpacklo_epi64(static_cast<__mmask8>(0xFF), t2, t3);
  const unsigned mask =
      static_cast<unsigned>(_mm512_cmplt_epu64_mask(k07, pivot)) |
      (static_cast<unsigned>(_mm512_cmplt_epu64_mask(k8f, pivot)) << 8);
  return static_cast<size_t>(__builtin_popcount(mask));
}

// The three advance kernels share one shape — a few early-exit vector
// blocks for the common short advance, then galloping + binary
// narrowing + one final packed count for long skips — stamped per ISA
// so each carries its target attribute and inlines its block counter.
#define MPSM_SIMD_DEFINE_ADVANCE(NAME, ISA, W, COUNT_LESS)                 \
  MPSM_SIMD_TARGET(ISA)                                                    \
  inline size_t NAME(const Tuple* data, size_t begin, size_t n,            \
                     uint64_t key) {                                       \
    size_t i = begin;                                                      \
    for (int block = 0; block < kGallopAfterBlocks; ++block) {             \
      if (i + (W) > n) return AdvanceLowerBoundScalar(data, i, n, key);    \
      const size_t count = COUNT_LESS(data + i, key);                      \
      i += count;                                                          \
      if (count < (W)) return i;                                           \
    }                                                                      \
    /* Everything before i is < key; bracket the target with doubling   */ \
    /* probes, keeping the invariant data[lo - 1].key < key.            */ \
    size_t lo = i;                                                         \
    size_t hi = n;                                                         \
    size_t step = W;                                                       \
    while (lo + step < n) {                                                \
      if (data[lo + step].key >= key) {                                    \
        hi = lo + step;                                                    \
        break;                                                             \
      }                                                                    \
      lo += step + 1;                                                      \
      step *= 2;                                                           \
    }                                                                      \
    /* Binary-narrow [lo, hi] to one vector block, then count it.       */ \
    while (hi - lo > (W)) {                                                \
      const size_t mid = lo + (hi - lo) / 2;                               \
      if (data[mid].key < key) {                                           \
        lo = mid + 1;                                                      \
      } else {                                                             \
        hi = mid;                                                          \
      }                                                                    \
    }                                                                      \
    if (lo + (W) <= n) return lo + COUNT_LESS(data + lo, key);             \
    return AdvanceLowerBoundScalar(data, lo, n, key);                      \
  }

MPSM_SIMD_DEFINE_ADVANCE(AdvanceLowerBoundSse, "sse4.2", 4, CountLessSse)
MPSM_SIMD_DEFINE_ADVANCE(AdvanceLowerBoundAvx2, "avx2", 8, CountLessAvx2)
MPSM_SIMD_DEFINE_ADVANCE(AdvanceLowerBoundAvx512, "avx512f", 16,
                         CountLessAvx512)

#undef MPSM_SIMD_DEFINE_ADVANCE

// ------------------------------------------------- cached key windows
// The merge loop's register-resident view of the next W public-run
// keys: loaded and unpacked once, then compared against many ascending
// pivots before the next reload (the typical per-pivot catch-up is a
// handful of tuples, far less than a window). CountLess exploits that
// the window is sorted: the number of keys below the pivot IS the
// pivot's lower-bound offset, whatever the unpack's lane permutation.

struct SKeyWindowSse {
  static constexpr size_t kWidth = 4;
  __m128i a, b;  // biased keys (see kSignBias)

  MPSM_SIMD_TARGET("sse4.2")
  inline void Load(const Tuple* block) {
    const __m128i bias = _mm_set1_epi64x(kSignBias);
    const __m128i t0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(block));
    const __m128i t1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 1));
    const __m128i t2 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 2));
    const __m128i t3 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 3));
    a = _mm_xor_si128(_mm_unpacklo_epi64(t0, t1), bias);
    b = _mm_xor_si128(_mm_unpacklo_epi64(t2, t3), bias);
  }

  MPSM_SIMD_TARGET("sse4.2")
  inline size_t CountLess(uint64_t key) const {
    const __m128i pivot =
        _mm_xor_si128(_mm_set1_epi64x(static_cast<long long>(key)),
                      _mm_set1_epi64x(kSignBias));
    const unsigned mask =
        static_cast<unsigned>(
            _mm_movemask_pd(_mm_castsi128_pd(_mm_cmpgt_epi64(pivot, a)))) |
        (static_cast<unsigned>(_mm_movemask_pd(
             _mm_castsi128_pd(_mm_cmpgt_epi64(pivot, b))))
         << 2);
    return static_cast<size_t>(__builtin_popcount(mask));
  }
};

struct SKeyWindowAvx2 {
  static constexpr size_t kWidth = 8;
  __m256i a, b;  // biased keys

  MPSM_SIMD_TARGET("avx2")
  inline void Load(const Tuple* block) {
    const __m256i bias = _mm256_set1_epi64x(kSignBias);
    const __m256i t0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(block));
    const __m256i t1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(block + 2));
    const __m256i t2 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(block + 4));
    const __m256i t3 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(block + 6));
    a = _mm256_xor_si256(_mm256_unpacklo_epi64(t0, t1), bias);
    b = _mm256_xor_si256(_mm256_unpacklo_epi64(t2, t3), bias);
  }

  MPSM_SIMD_TARGET("avx2")
  inline size_t CountLess(uint64_t key) const {
    const __m256i pivot =
        _mm256_xor_si256(_mm256_set1_epi64x(static_cast<long long>(key)),
                         _mm256_set1_epi64x(kSignBias));
    const unsigned mask =
        static_cast<unsigned>(_mm256_movemask_pd(
            _mm256_castsi256_pd(_mm256_cmpgt_epi64(pivot, a)))) |
        (static_cast<unsigned>(_mm256_movemask_pd(
             _mm256_castsi256_pd(_mm256_cmpgt_epi64(pivot, b))))
         << 4);
    return static_cast<size_t>(__builtin_popcount(mask));
  }
};

struct SKeyWindowAvx512 {
  static constexpr size_t kWidth = 16;
  __m512i a, b;  // raw keys (AVX-512 compares unsigned natively)

  MPSM_SIMD_TARGET("avx512f")
  inline void Load(const Tuple* block) {
    const __m512i t0 = _mm512_loadu_si512(block);
    const __m512i t1 = _mm512_loadu_si512(block + 4);
    const __m512i t2 = _mm512_loadu_si512(block + 8);
    const __m512i t3 = _mm512_loadu_si512(block + 12);
    // maskz unpack: see CountLessAvx512.
    a = _mm512_maskz_unpacklo_epi64(static_cast<__mmask8>(0xFF), t0, t1);
    b = _mm512_maskz_unpacklo_epi64(static_cast<__mmask8>(0xFF), t2, t3);
  }

  MPSM_SIMD_TARGET("avx512f")
  inline size_t CountLess(uint64_t key) const {
    const __m512i pivot = _mm512_set1_epi64(static_cast<long long>(key));
    const unsigned mask =
        static_cast<unsigned>(_mm512_cmplt_epu64_mask(a, pivot)) |
        (static_cast<unsigned>(_mm512_cmplt_epu64_mask(b, pivot)) << 8);
    return static_cast<size_t>(__builtin_popcount(mask));
  }
};

#endif  // MPSM_SIMD_X86

}  // namespace mpsm::simd

#include "simd/search_kernels.h"

namespace mpsm::simd {

size_t LowerBoundWindowed(const Tuple* data, size_t n, uint64_t key,
                          AdvanceFn advance, uint64_t* probes) {
  size_t lo = 0;
  size_t len = n;
  while (len > kSearchWindowTuples) {
    const size_t half = len / 2;
    if (probes != nullptr) ++*probes;
    if (data[lo + half].key < key) {
      lo += half + 1;
      len -= half + 1;
    } else {
      len = half;
    }
  }
  if (probes != nullptr) {
    *probes += len / 8 + 1;  // the packed finish, in block compares
  }
  return advance(data, lo, lo + len, key);
}

}  // namespace mpsm::simd

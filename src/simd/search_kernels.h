// Vectorized lower-bound search: the merge-start positioning probe
// (§3.2.2) with a packed-compare finish.
//
// Interpolation / binary search converge on a small range in a few
// random probes; the last levels of the descent are where branch
// mispredictions dominate. These kernels stop the scalar descent once
// the range fits a few vector blocks and finish with the same packed
// key-count primitive the merge kernels use (merge_kernels.h), turning
// the final log2(window) probe/branch pairs into one or two packed
// compares. The core search strategies (core/interpolation_search.h)
// call through here when a non-scalar SimdKind is selected.
#pragma once

#include <cstddef>
#include <cstdint>

#include "simd/merge_kernels.h"
#include "simd/simd_kind.h"
#include "storage/tuple.h"

namespace mpsm::simd {

/// Range width at which the scalar descent hands over to the packed
/// finish (one or two vector blocks for every kind). Wider windows
/// save more branchy probes but scan more blocks; 32 measured best on
/// the BM_Search* A/B — and each probe avoided is a *random* cache
/// line while the finish is sequential, so on cold remote runs the
/// balance tilts further toward the packed finish.
inline constexpr size_t kSearchWindowTuples = 32;

/// Lower bound of `key` in sorted data[0..n) via binary descent to
/// kSearchWindowTuples, then a forward packed scan with `advance`
/// (from AdvanceForKind; must not be nullptr). `probes` (nullable) is
/// incremented once per scalar probe and once per vector block — the
/// random-access traffic the counters charge.
size_t LowerBoundWindowed(const Tuple* data, size_t n, uint64_t key,
                          AdvanceFn advance, uint64_t* probes);

}  // namespace mpsm::simd

// Cost-balanced splitter computation (§4.3, phase 2.3).
//
// Given the global radix histogram of R (phase 2.2) and the CDF of S
// (phase 2.1), choose partition bounds — at the granularity of radix
// clusters — such that the maximum per-worker cost
//
//   split-relevant-cost_i = |Ri|*log(|Ri|) + T*|Ri|
//                           + CDF(Ri.high) - CDF(Ri.low)
//
// is minimized (the bottleneck worker determines response time; cf.
// Ross & Cieslewicz). Implemented as a binary search over the
// bottleneck cost with a greedy feasibility check — optimal for
// contiguous partitioning of a sequence.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "partition/cdf.h"
#include "partition/key_normalizer.h"
#include "partition/radix_histogram.h"

namespace mpsm {

/// The result of splitter computation: a non-decreasing map from radix
/// cluster to target partition ("splitter vector sp" in Figure 10).
struct Splitters {
  std::vector<uint32_t> cluster_to_partition;
  uint32_t num_partitions = 0;

  /// Estimated cost / R-cardinality / S-estimate per partition
  /// (diagnostics and tests).
  std::vector<double> partition_costs;
  std::vector<uint64_t> partition_r_sizes;
  std::vector<double> partition_s_estimates;

  /// Target partition of a radix cluster.
  uint32_t PartitionOfCluster(uint32_t cluster) const {
    return cluster_to_partition[cluster];
  }
};

/// Cost of one candidate partition holding `r` private tuples whose key
/// range covers an estimated `s` public tuples.
using PartitionCostFn = std::function<double(uint64_t r, double s)>;

/// The paper's split-relevant cost for a team of T workers.
PartitionCostFn MakePMpsmCost(uint32_t team_size);

/// Cardinality-only cost (|Ri|): produces the equi-height R
/// partitioning used as the strawman in Figure 16.
PartitionCostFn MakeEquiHeightRCost();

/// Estimates, per radix cluster, how many S tuples fall into the
/// cluster's key range (probing the CDF at the radix boundaries, as in
/// Figure 10's dashed probes).
std::vector<double> EstimateClusterS(const KeyNormalizer& normalizer,
                                     const Cdf& cdf);

/// Packs the 2^B radix clusters into at most `num_partitions` contiguous
/// partitions minimizing the maximum `cost(r, s)` over partitions.
/// `cluster_s` may be empty (treated as all-zero, e.g. for
/// cardinality-only balancing).
Splitters ComputeSplitters(const RadixHistogram& global_r,
                           const std::vector<double>& cluster_s,
                           uint32_t num_partitions,
                           const PartitionCostFn& cost);

}  // namespace mpsm

#include "partition/key_normalizer.h"

#include <cassert>

namespace mpsm {

KeyNormalizer::KeyNormalizer(uint64_t min_key, uint64_t max_key,
                             uint32_t bits)
    : min_key_(min_key), max_key_(max_key), bits_(bits) {
  assert(min_key <= max_key);
  assert(bits >= 1 && bits <= 32);
  num_clusters_ = uint32_t{1} << bits;
  const uint64_t range = max_key - min_key;
  const uint32_t range_width = bits::BitWidth(range);  // 0 when min==max
  shift_ = range_width > bits ? range_width - bits : 0;
}

uint64_t KeyNormalizer::ClusterHighKey(uint32_t cluster) const {
  const uint64_t span = uint64_t{1} << shift_;
  const uint64_t low = ClusterLowKey(cluster);
  // Saturate: the top cluster absorbs everything up to max_key.
  if (cluster == num_clusters_ - 1) return max_key_ + 1;
  return low + span;
}

}  // namespace mpsm

// Equi-height histograms on sorted runs (§4.1, phase 2.1).
//
// Because each public-input run is already sorted, an equi-height
// histogram is just a strided read of f*T keys — "almost no cost".
// The per-run histograms are merged into the global CDF of S.
#pragma once

#include <cstdint>
#include <vector>

#include "storage/run.h"

namespace mpsm {

/// An equi-height histogram of one sorted run: `bounds[j]` is the key
/// of the last tuple of the j-th equal-count bucket; each bucket covers
/// ~run_size / bounds.size() tuples.
struct EquiHeightHistogram {
  std::vector<uint64_t> bounds;
  uint64_t run_size = 0;
};

/// Extracts `num_bounds` equi-height bounds from a sorted run. The
/// paper proposes f*T bounds per worker (oversampling factor f) for
/// better CDF precision. Empty runs yield an empty histogram.
EquiHeightHistogram BuildEquiHeightHistogram(const Run& run,
                                             uint32_t num_bounds);

}  // namespace mpsm

#include "partition/splitters.h"

#include <cassert>
#include <cmath>

namespace mpsm {

PartitionCostFn MakePMpsmCost(uint32_t team_size) {
  return [team_size](uint64_t r, double s) {
    const double rd = static_cast<double>(r);
    const double sort_cost = r > 1 ? rd * std::log2(rd) : rd;
    const double scan_cost = static_cast<double>(team_size) * rd;
    return sort_cost + scan_cost + s;
  };
}

PartitionCostFn MakeEquiHeightRCost() {
  return [](uint64_t r, double s) {
    (void)s;
    return static_cast<double>(r);
  };
}

std::vector<double> EstimateClusterS(const KeyNormalizer& normalizer,
                                     const Cdf& cdf) {
  std::vector<double> estimates(normalizer.num_clusters());
  for (uint32_t c = 0; c < normalizer.num_clusters(); ++c) {
    estimates[c] = cdf.EstimateRange(normalizer.ClusterLowKey(c),
                                     normalizer.ClusterHighKey(c));
  }
  return estimates;
}

namespace {

// Greedily packs clusters into partitions of cost <= budget. Returns
// the number of partitions used, or UINT32_MAX when a single cluster
// already exceeds the budget... which cannot happen because a lone
// cluster always forms its own partition; instead infeasibility is
// "needs more than max_partitions partitions".
uint32_t GreedyPack(const RadixHistogram& r, const std::vector<double>& s,
                    const PartitionCostFn& cost, double budget,
                    uint32_t max_partitions,
                    std::vector<uint32_t>* assignment) {
  if (assignment != nullptr) {
    assignment->assign(r.size(), 0);
  }
  uint32_t partitions_used = 1;
  uint64_t acc_r = 0;
  double acc_s = 0;
  for (size_t c = 0; c < r.size(); ++c) {
    const uint64_t next_r = acc_r + r[c];
    const double next_s = acc_s + (s.empty() ? 0.0 : s[c]);
    const bool partition_empty = (acc_r == 0 && acc_s == 0);
    if (!partition_empty && cost(next_r, next_s) > budget) {
      // Close the current partition; this cluster starts the next one.
      ++partitions_used;
      if (partitions_used > max_partitions) return partitions_used;
      acc_r = r[c];
      acc_s = s.empty() ? 0.0 : s[c];
    } else {
      acc_r = next_r;
      acc_s = next_s;
    }
    if (assignment != nullptr) {
      (*assignment)[c] = partitions_used - 1;
    }
  }
  return partitions_used;
}

}  // namespace

Splitters ComputeSplitters(const RadixHistogram& global_r,
                           const std::vector<double>& cluster_s,
                           uint32_t num_partitions,
                           const PartitionCostFn& cost) {
  assert(num_partitions >= 1);
  assert(cluster_s.empty() || cluster_s.size() == global_r.size());

  Splitters result;
  result.num_partitions = num_partitions;
  if (global_r.empty()) return result;

  // The bottleneck cost is at least the cost of the heaviest single
  // cluster and at most the cost of everything in one partition.
  uint64_t total_r = 0;
  double total_s = 0;
  double lo = 0;
  for (size_t c = 0; c < global_r.size(); ++c) {
    total_r += global_r[c];
    const double s = cluster_s.empty() ? 0.0 : cluster_s[c];
    total_s += s;
    lo = std::max(lo, cost(global_r[c], s));
  }
  double hi = std::max(lo, cost(total_r, total_s));

  // Binary search the minimum feasible bottleneck cost.
  for (int iter = 0; iter < 64 && hi - lo > 1e-6 * (1.0 + hi); ++iter) {
    const double mid = lo + (hi - lo) / 2;
    if (GreedyPack(global_r, cluster_s, cost, mid, num_partitions,
                   nullptr) <= num_partitions) {
      hi = mid;
    } else {
      lo = mid;
    }
  }

  const uint32_t used = GreedyPack(global_r, cluster_s, cost, hi,
                                   num_partitions,
                                   &result.cluster_to_partition);
  assert(used <= num_partitions);
  (void)used;

  // Per-partition diagnostics.
  result.partition_costs.assign(num_partitions, 0);
  result.partition_r_sizes.assign(num_partitions, 0);
  result.partition_s_estimates.assign(num_partitions, 0);
  for (size_t c = 0; c < global_r.size(); ++c) {
    const uint32_t p = result.cluster_to_partition[c];
    result.partition_r_sizes[p] += global_r[c];
    if (!cluster_s.empty()) result.partition_s_estimates[p] += cluster_s[c];
  }
  for (uint32_t p = 0; p < num_partitions; ++p) {
    result.partition_costs[p] =
        cost(result.partition_r_sizes[p], result.partition_s_estimates[p]);
  }
  return result;
}

}  // namespace mpsm

// ScatterKind enum, split from prefix_scatter.h so option structs can
// name the knob without pulling in the scatter kernels (SSE
// intrinsics, staging-buffer templates).
#pragma once

#include <cstddef>
#include <cstdint>

namespace mpsm {

/// Scatter implementation used for the range-partitioning write phase.
enum class ScatterKind : uint8_t {
  kScalar,          // one random write per tuple (the paper's Figure 6)
  kWriteCombining,  // cache-line staging buffers + streaming stores
  kAuto,            // pick per call from fan-out/input size (tuning.md)
};

/// Name of a ScatterKind ("scalar", "write-combining", "auto").
const char* ScatterKindName(ScatterKind kind);

/// Fan-out at and above which write combining beats the scalar scatter
/// (measured crossover ~100 partitions, docs/tuning.md).
inline constexpr uint32_t kScatterAutoFanoutCrossover = 100;

/// Resolves kAuto against the measured crossover: write combining for
/// fan-outs of kScatterAutoFanoutCrossover+ partitions (given enough
/// tuples to fill its staging buffers), the scalar loop otherwise.
/// Non-auto kinds pass through.
inline ScatterKind ResolveScatterKind(ScatterKind kind, size_t num_tuples,
                                      uint32_t num_partitions) {
  if (kind != ScatterKind::kAuto) return kind;
  return num_partitions >= kScatterAutoFanoutCrossover &&
                 num_tuples >= num_partitions
             ? ScatterKind::kWriteCombining
             : ScatterKind::kScalar;
}

}  // namespace mpsm

// ScatterKind enum, split from prefix_scatter.h so option structs can
// name the knob without pulling in the scatter kernels (SSE
// intrinsics, staging-buffer templates).
#pragma once

#include <cstdint>

namespace mpsm {

/// Scatter implementation used for the range-partitioning write phase.
enum class ScatterKind : uint8_t {
  kScalar,          // one random write per tuple (the paper's Figure 6)
  kWriteCombining,  // cache-line staging buffers + streaming stores
};

/// Name of a ScatterKind ("scalar", "write-combining").
const char* ScatterKindName(ScatterKind kind);

}  // namespace mpsm

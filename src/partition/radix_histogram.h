// Radix histograms on private-input chunks (§3.2.1 / §4.2).
//
// Each worker scans its chunk once and counts tuples per radix cluster;
// this is branch-free and comparison-free. Raising the bit count B
// refines the histogram at almost no extra cost (Figure 9), which the
// splitter computation exploits for skew resilience.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "partition/key_normalizer.h"
#include "simd/simd_kind.h"
#include "storage/tuple.h"

namespace mpsm {

/// Counts of tuples per radix cluster.
using RadixHistogram = std::vector<uint64_t>;

/// Builds the histogram of data[0..n) under `normalizer`. `simd`
/// selects the digit-extraction kernel (simd/histogram_kernels.h);
/// every kind produces the identical histogram.
RadixHistogram BuildRadixHistogram(const Tuple* data, size_t n,
                                   const KeyNormalizer& normalizer,
                                   simd::SimdKind simd =
                                       simd::SimdKind::kAuto);

/// Element-wise sum of per-worker histograms (the "global R
/// distribution histogram" of phase 2.2). All inputs must have equal
/// size; empty input yields an empty histogram.
RadixHistogram CombineHistograms(const std::vector<RadixHistogram>& locals);

/// Sum of all buckets.
uint64_t HistogramTotal(const RadixHistogram& histogram);

/// Scans data[0..n) for min and max key. Returns {0, 0} for n == 0.
struct KeyRange {
  uint64_t min_key = 0;
  uint64_t max_key = 0;
};
KeyRange ScanKeyRange(const Tuple* data, size_t n,
                      simd::SimdKind simd = simd::SimdKind::kAuto);

/// Merges two key ranges (either side may come from an empty scan, in
/// which case the other side wins; track emptiness externally).
KeyRange MergeKeyRanges(const KeyRange& a, const KeyRange& b);

}  // namespace mpsm

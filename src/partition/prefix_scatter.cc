#include "partition/prefix_scatter.h"

#include <cassert>

namespace mpsm {

ScatterPlan ComputeScatterPlan(
    const std::vector<std::vector<uint64_t>>& worker_histograms) {
  ScatterPlan plan;
  if (worker_histograms.empty()) return plan;
  const size_t num_workers = worker_histograms.size();
  const size_t num_partitions = worker_histograms[0].size();

  plan.partition_sizes.assign(num_partitions, 0);
  plan.start_offset.assign(num_workers,
                           std::vector<uint64_t>(num_partitions, 0));

  for (size_t p = 0; p < num_partitions; ++p) {
    uint64_t offset = 0;
    for (size_t w = 0; w < num_workers; ++w) {
      assert(worker_histograms[w].size() == num_partitions);
      plan.start_offset[w][p] = offset;
      offset += worker_histograms[w][p];
    }
    plan.partition_sizes[p] = offset;
  }
  assert(ScatterPlanIsConsistent(plan, worker_histograms));
  return plan;
}

bool ScatterPlanIsConsistent(
    const ScatterPlan& plan,
    const std::vector<std::vector<uint64_t>>& worker_histograms) {
  const size_t num_workers = worker_histograms.size();
  if (plan.start_offset.size() != num_workers) return false;
  const size_t num_partitions = plan.partition_sizes.size();
  for (size_t w = 0; w < num_workers; ++w) {
    if (worker_histograms[w].size() != num_partitions) return false;
    if (plan.start_offset[w].size() != num_partitions) return false;
  }
  for (size_t p = 0; p < num_partitions; ++p) {
    uint64_t offset = 0;
    for (size_t w = 0; w < num_workers; ++w) {
      // Worker w's range [offset, offset + hist) must start exactly
      // where worker w-1's ended: disjoint and gap-free.
      if (plan.start_offset[w][p] != offset) return false;
      offset += worker_histograms[w][p];
    }
    if (plan.partition_sizes[p] != offset) return false;
  }
  return true;
}

const char* ScatterKindName(ScatterKind kind) {
  switch (kind) {
    case ScatterKind::kScalar:
      return "scalar";
    case ScatterKind::kWriteCombining:
      return "write-combining";
  }
  return "unknown";
}

}  // namespace mpsm

#include "partition/prefix_scatter.h"

#include <cassert>

namespace mpsm {

ScatterPlan ComputeScatterPlan(
    const std::vector<std::vector<uint64_t>>& worker_histograms) {
  ScatterPlan plan;
  if (worker_histograms.empty()) return plan;
  const size_t num_workers = worker_histograms.size();
  const size_t num_partitions = worker_histograms[0].size();

  plan.partition_sizes.assign(num_partitions, 0);
  plan.start_offset.assign(num_workers,
                           std::vector<uint64_t>(num_partitions, 0));

  for (size_t p = 0; p < num_partitions; ++p) {
    uint64_t offset = 0;
    for (size_t w = 0; w < num_workers; ++w) {
      assert(worker_histograms[w].size() == num_partitions);
      plan.start_offset[w][p] = offset;
      offset += worker_histograms[w][p];
    }
    plan.partition_sizes[p] = offset;
  }
  assert(ScatterPlanIsConsistent(plan, worker_histograms));
  return plan;
}

bool ScatterPlanIsConsistent(
    const ScatterPlan& plan,
    const std::vector<std::vector<uint64_t>>& worker_histograms) {
  const size_t num_workers = worker_histograms.size();
  if (plan.start_offset.size() != num_workers) return false;
  const size_t num_partitions = plan.partition_sizes.size();
  for (size_t w = 0; w < num_workers; ++w) {
    if (worker_histograms[w].size() != num_partitions) return false;
    if (plan.start_offset[w].size() != num_partitions) return false;
  }
  for (size_t p = 0; p < num_partitions; ++p) {
    uint64_t offset = 0;
    for (size_t w = 0; w < num_workers; ++w) {
      // Worker w's range [offset, offset + hist) must start exactly
      // where worker w-1's ended: disjoint and gap-free.
      if (plan.start_offset[w][p] != offset) return false;
      offset += worker_histograms[w][p];
    }
    if (plan.partition_sizes[p] != offset) return false;
  }
  return true;
}

bool ScatterBlocksTileChunks(const std::vector<ScatterBlock>& blocks,
                             const std::vector<uint64_t>& chunk_sizes) {
  // Gather each chunk's block ranges in slicing order. Blocks of one
  // chunk are emitted in ascending range order by the slicers, so an
  // order-preserving sweep suffices; an out-of-order, overlapping or
  // gapped tiling fails the cursor check below.
  std::vector<std::vector<std::pair<uint64_t, uint64_t>>> per_chunk(
      chunk_sizes.size());
  for (const ScatterBlock& block : blocks) {
    if (block.chunk >= chunk_sizes.size()) return false;
    if (block.begin > block.end) return false;
    per_chunk[block.chunk].emplace_back(block.begin, block.end);
  }
  for (size_t c = 0; c < chunk_sizes.size(); ++c) {
    uint64_t cursor = 0;
    for (const auto& [begin, end] : per_chunk[c]) {
      if (begin != cursor) return false;  // gap or overlap
      cursor = end;
    }
    if (cursor != chunk_sizes[c]) return false;  // tail not covered
  }
  return true;
}

const char* ScatterKindName(ScatterKind kind) {
  switch (kind) {
    case ScatterKind::kScalar:
      return "scalar";
    case ScatterKind::kWriteCombining:
      return "write-combining";
    case ScatterKind::kAuto:
      return "auto";
  }
  return "unknown";
}

}  // namespace mpsm

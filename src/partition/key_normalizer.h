// Key normalization for radix clustering (§3.2.1).
//
// Radix clustering uses the highest B bits of the join key. When the
// key domain does not start at zero or does not span a power of two,
// the keys are first normalized with a subtraction and a shift — the
// "preprocessing using bitwise shift operations" the paper mentions.
#pragma once

#include <cstdint>

#include "util/bits.h"

namespace mpsm {

/// Maps join keys from [min_key, max_key] onto radix clusters
/// [0, 2^B) via (key - min_key) >> shift. Comparison-free and
/// branch-free in the hot path.
class KeyNormalizer {
 public:
  KeyNormalizer() = default;

  /// Builds a normalizer for keys in [min_key, max_key] with 2^bits
  /// clusters. Requires min_key <= max_key and bits in [1, 32].
  KeyNormalizer(uint64_t min_key, uint64_t max_key, uint32_t bits);

  /// Cluster of `key`; keys outside [min, max] are clamped.
  uint32_t Cluster(uint64_t key) const {
    if (key <= min_key_) return 0;
    const uint64_t cluster = (key - min_key_) >> shift_;
    return cluster >= num_clusters_ ? num_clusters_ - 1
                                    : static_cast<uint32_t>(cluster);
  }

  /// Smallest key mapping to `cluster` (cluster 0 maps to min_key).
  uint64_t ClusterLowKey(uint32_t cluster) const {
    return min_key_ + (static_cast<uint64_t>(cluster) << shift_);
  }

  /// One-past-the-largest key of `cluster` (saturating at UINT64_MAX).
  uint64_t ClusterHighKey(uint32_t cluster) const;

  uint32_t num_clusters() const { return num_clusters_; }
  uint32_t bits() const { return bits_; }
  uint32_t shift() const { return shift_; }
  uint64_t min_key() const { return min_key_; }
  uint64_t max_key() const { return max_key_; }

 private:
  uint64_t min_key_ = 0;
  uint64_t max_key_ = 0;
  uint32_t shift_ = 0;
  uint32_t bits_ = 1;
  uint32_t num_clusters_ = 2;
};

}  // namespace mpsm

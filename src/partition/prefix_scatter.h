// Synchronization-free scatter via combined prefix sums (§3.2.1).
//
// Every worker builds a local histogram of its chunk over the target
// partitions. The local histograms are combined into prefix sums so
// that each (worker, partition) pair owns a precomputed, disjoint index
// range in the partition's target array. Workers then scatter their
// tuples with plain sequential writes — no latches, no atomics
// (Figure 6; adapted from He et al.'s GPU radix join).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "storage/tuple.h"

namespace mpsm {

/// The precomputed write plan for a scatter of W worker chunks into P
/// target partitions.
struct ScatterPlan {
  /// partition_sizes[p]: total tuples that will land in partition p.
  std::vector<uint64_t> partition_sizes;

  /// start_offset[w][p]: first index in partition p's array reserved
  /// for worker w (worker w writes [start, start + its_count)).
  std::vector<std::vector<uint64_t>> start_offset;

  uint32_t num_workers() const {
    return static_cast<uint32_t>(start_offset.size());
  }
  uint32_t num_partitions() const {
    return static_cast<uint32_t>(partition_sizes.size());
  }
};

/// Computes the plan from per-worker partition histograms
/// (worker_histograms[w][p] = tuples of worker w for partition p).
/// ps_i[j] = sum_{k<i} h_k[j], exactly the paper's formula.
ScatterPlan ComputeScatterPlan(
    const std::vector<std::vector<uint64_t>>& worker_histograms);

/// Scatters chunk[0..n) into per-partition destination arrays.
/// `partition_of(key)` maps a join key to its target partition;
/// `dest[p]` is the base pointer of partition p's array; `cursor[p]`
/// must be initialized to the worker's start offsets from the plan and
/// is advanced as tuples are written.
template <typename PartitionOf>
void ScatterChunk(const Tuple* chunk, size_t n, const PartitionOf& partition_of,
                  Tuple* const* dest, uint64_t* cursor) {
  for (size_t i = 0; i < n; ++i) {
    const uint32_t p = partition_of(chunk[i].key);
    dest[p][cursor[p]++] = chunk[i];
  }
}

}  // namespace mpsm

// Synchronization-free scatter via combined prefix sums (§3.2.1).
//
// Every worker builds a local histogram of its chunk over the target
// partitions. The local histograms are combined into prefix sums so
// that each (worker, partition) pair owns a precomputed, disjoint index
// range in the partition's target array. Workers then scatter their
// tuples with plain sequential writes — no latches, no atomics
// (Figure 6; adapted from He et al.'s GPU radix join).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "partition/scatter_kind.h"
#include "storage/tuple.h"

namespace mpsm {

/// The precomputed write plan for a scatter of W worker chunks into P
/// target partitions.
struct ScatterPlan {
  /// partition_sizes[p]: total tuples that will land in partition p.
  std::vector<uint64_t> partition_sizes;

  /// start_offset[w][p]: first index in partition p's array reserved
  /// for worker w (worker w writes [start, start + its_count)).
  std::vector<std::vector<uint64_t>> start_offset;

  uint32_t num_workers() const {
    return static_cast<uint32_t>(start_offset.size());
  }
  uint32_t num_partitions() const {
    return static_cast<uint32_t>(partition_sizes.size());
  }
};

/// Computes the plan from per-worker partition histograms
/// (worker_histograms[w][p] = tuples of worker w for partition p).
/// ps_i[j] = sum_{k<i} h_k[j], exactly the paper's formula.
ScatterPlan ComputeScatterPlan(
    const std::vector<std::vector<uint64_t>>& worker_histograms);

/// Checks the plan's invariants against the histograms it was built
/// from: per partition, worker ranges start at 0, are consecutive and
/// disjoint (offset[w+1] = offset[w] + hist[w]), and sum to
/// partition_sizes. Used in debug assertions before scattering.
bool ScatterPlanIsConsistent(
    const ScatterPlan& plan,
    const std::vector<std::vector<uint64_t>>& worker_histograms);

/// When the scatter runs as morsels, each plan row corresponds to a
/// *block* — a sub-range of a source chunk — instead of a whole worker
/// chunk. One block, one row.
struct ScatterBlock {
  uint32_t chunk = 0;   // source chunk index
  uint64_t begin = 0;   // tuple range within the chunk, half-open
  uint64_t end = 0;
};

/// Validates the morsel slicing behind a per-block ScatterPlan: the
/// blocks of each chunk must tile [0, chunk_sizes[c]) exactly once —
/// no gap, no overlap, no stray chunk ids, every chunk covered. Used in
/// debug assertions before a task-sliced scatter (with
/// ScatterPlanIsConsistent covering the per-row offset math).
bool ScatterBlocksTileChunks(const std::vector<ScatterBlock>& blocks,
                             const std::vector<uint64_t>& chunk_sizes);

/// Scatters chunk[0..n) into per-partition destination arrays.
/// `partition_of(key)` maps a join key to its target partition;
/// `dest[p]` is the base pointer of partition p's array; `cursor[p]`
/// must be initialized to the worker's start offsets from the plan and
/// is advanced as tuples are written.
template <typename PartitionOf>
void ScatterChunk(const Tuple* chunk, size_t n, const PartitionOf& partition_of,
                  Tuple* const* dest, uint64_t* cursor) {
  for (size_t i = 0; i < n; ++i) {
    const uint32_t p = partition_of(chunk[i].key);
    dest[p][cursor[p]++] = chunk[i];
  }
}

/// Tuples per software write-combining buffer: 256 B (four cache
/// lines) per partition — the measured sweet spot among 1/2/4-line
/// buffers. Current speedup-vs-fan-out numbers live in docs/tuning.md
/// and BENCH_kernels.json (bench_kernels BM_Scatter*); write combining
/// pays off above ~100 partitions and regresses below.
inline constexpr size_t kWcBufferTuples = 16;

namespace internal {

/// One partition's staging buffer, cache-line aligned so flushes read
/// whole lines.
struct alignas(64) WcBuffer {
  Tuple slot[kWcBufferTuples];
};

/// Flushes one full staging buffer to `dst`. When `dst` sits on a
/// cache-line boundary (the steady state after the head fix-up below),
/// the flush issues only full-line streaming stores: they bypass the
/// cache — right, because scattered partitions are far larger than L2
/// and are next read by a different pass — and never trigger
/// read-for-ownership of the destination lines. Unaligned destinations
/// (non-SSE2 builds, odd base pointers) fall back to memcpy.
inline void FlushWcBufferFull(Tuple* dst, const Tuple* src) {
#if defined(__SSE2__)
  if ((reinterpret_cast<uintptr_t>(dst) & 63) == 0) {
    for (size_t k = 0; k < kWcBufferTuples; k += 4) {
      const __m128i v0 =
          _mm_load_si128(reinterpret_cast<const __m128i*>(src + k));
      const __m128i v1 =
          _mm_load_si128(reinterpret_cast<const __m128i*>(src + k + 1));
      const __m128i v2 =
          _mm_load_si128(reinterpret_cast<const __m128i*>(src + k + 2));
      const __m128i v3 =
          _mm_load_si128(reinterpret_cast<const __m128i*>(src + k + 3));
      _mm_stream_si128(reinterpret_cast<__m128i*>(dst + k), v0);
      _mm_stream_si128(reinterpret_cast<__m128i*>(dst + k + 1), v1);
      _mm_stream_si128(reinterpret_cast<__m128i*>(dst + k + 2), v2);
      _mm_stream_si128(reinterpret_cast<__m128i*>(dst + k + 3), v3);
    }
    return;
  }
#endif
  std::memcpy(dst, src, kWcBufferTuples * sizeof(Tuple));
}

/// Core of the write-combining scatter, templated on how a partition's
/// staging buffer is addressed: direct array indexing for the
/// worker-local allocation (zero-overhead, the PR-1-tuned hot path),
/// one pointer hop for caller-provided destination-homed buffers.
template <typename PartitionOf, typename BufferAt>
void ScatterChunkWcImpl(const Tuple* chunk, size_t n,
                        const PartitionOf& partition_of, Tuple* const* dest,
                        uint64_t* cursor, uint32_t num_partitions,
                        const BufferAt& buffer_at) {
  std::vector<uint32_t> fill(num_partitions, 0);
  // First-flush size per partition: the tuples needed to reach the
  // next 64-byte boundary (0 head => a full buffer). Tuple bases are
  // always 16-byte aligned, so the head is 0..3 tuples.
  std::vector<uint32_t> target(num_partitions);
  for (uint32_t p = 0; p < num_partitions; ++p) {
    const uintptr_t addr = reinterpret_cast<uintptr_t>(dest[p] + cursor[p]);
    const uint32_t head =
        static_cast<uint32_t>((64 - (addr & 63)) & 63) / sizeof(Tuple);
    target[p] = head == 0 ? kWcBufferTuples : head;
  }

  for (size_t i = 0; i < n; ++i) {
    const uint32_t p = partition_of(chunk[i].key);
    buffer_at(p).slot[fill[p]++] = chunk[i];
    if (fill[p] == target[p]) {
      Tuple* dst = dest[p] + cursor[p];
      if (target[p] == kWcBufferTuples) {
        FlushWcBufferFull(dst, buffer_at(p).slot);
      } else {
        std::memcpy(dst, buffer_at(p).slot, fill[p] * sizeof(Tuple));
      }
      cursor[p] += fill[p];
      fill[p] = 0;
      target[p] = kWcBufferTuples;
    }
  }

  // Drain partially filled buffers (chunk sizes are rarely multiples
  // of the buffer size).
  for (uint32_t p = 0; p < num_partitions; ++p) {
    if (fill[p] > 0) {
      std::memcpy(dest[p] + cursor[p], buffer_at(p).slot,
                  fill[p] * sizeof(Tuple));
      cursor[p] += fill[p];
    }
  }
#if defined(__SSE2__)
  // Make the streaming stores visible before the post-scatter barrier.
  _mm_sfence();
#endif
}

}  // namespace internal

/// Write-combining variant of ScatterChunk: tuples are staged in
/// per-partition buffers and flushed in 256-byte bursts of full-line
/// streaming stores, turning the T random write streams of the scalar
/// scatter into ~n/kWcBufferTuples line-sized transactions (Balkesen et
/// al.; Polychroniou & Ross). A worker's first flush per partition is a
/// short scalar "head" that advances the destination to a cache-line
/// boundary (plan offsets are arbitrary), so every later flush is
/// line-aligned. Same contract as ScatterChunk, including partial-
/// buffer drain at chunk end; `num_partitions` is the number of entries
/// behind `dest`/`cursor`.
///
/// `staged` (optional) supplies the per-partition staging buffers:
/// `staged[p]` must point at a caller-owned WcBuffer, typically
/// arena-allocated on partition p's *destination* NUMA node so the
/// streaming flush crosses the interconnect exactly once (the
/// ROADMAP's scatter-interleaving item; P-MPSM passes its node-homed
/// set). nullptr keeps the worker-local allocation. Buffer contents
/// need not survive between calls — every call drains fully.
template <typename PartitionOf>
void ScatterChunkWriteCombining(const Tuple* chunk, size_t n,
                                const PartitionOf& partition_of,
                                Tuple* const* dest, uint64_t* cursor,
                                uint32_t num_partitions,
                                internal::WcBuffer* const* staged = nullptr) {
  if (n == 0) return;
  if (staged != nullptr) {
    internal::ScatterChunkWcImpl(
        chunk, n, partition_of, dest, cursor, num_partitions,
        [staged](uint32_t p) -> internal::WcBuffer& { return *staged[p]; });
    return;
  }
  // for_overwrite: every slot is written before it is read, so skip
  // the value-initialization memset (256 B/partition).
  auto buffers =
      std::make_unique_for_overwrite<internal::WcBuffer[]>(num_partitions);
  internal::ScatterChunkWcImpl(
      chunk, n, partition_of, dest, cursor, num_partitions,
      [&buffers](uint32_t p) -> internal::WcBuffer& { return buffers[p]; });
}

/// Dispatches to the scatter implementation selected by `kind`
/// (kAuto resolves against the fan-out crossover first). `staged`
/// passes destination-homed staging buffers to the write-combining
/// kernel (see ScatterChunkWriteCombining); ignored by the scalar
/// path.
template <typename PartitionOf>
void ScatterChunkWith(ScatterKind kind, const Tuple* chunk, size_t n,
                      const PartitionOf& partition_of, Tuple* const* dest,
                      uint64_t* cursor, uint32_t num_partitions,
                      internal::WcBuffer* const* staged = nullptr) {
  kind = ResolveScatterKind(kind, n, num_partitions);
  if (kind == ScatterKind::kWriteCombining) {
    ScatterChunkWriteCombining(chunk, n, partition_of, dest, cursor,
                               num_partitions, staged);
  } else {
    ScatterChunk(chunk, n, partition_of, dest, cursor);
  }
}

}  // namespace mpsm

#include "partition/equi_height.h"

#include <cassert>

namespace mpsm {

EquiHeightHistogram BuildEquiHeightHistogram(const Run& run,
                                             uint32_t num_bounds) {
  assert(num_bounds > 0);
  EquiHeightHistogram histogram;
  histogram.run_size = run.size;
  if (run.size == 0) return histogram;

  histogram.bounds.reserve(num_bounds);
  for (uint32_t j = 1; j <= num_bounds; ++j) {
    // Last element of the j-th equal-count bucket.
    const size_t index = static_cast<size_t>(
        (static_cast<unsigned __int128>(run.size) * j) / num_bounds);
    histogram.bounds.push_back(run.data[index == 0 ? 0 : index - 1].key);
  }
  return histogram;
}

}  // namespace mpsm

#include "partition/radix_histogram.h"

#include <algorithm>

#include "simd/histogram_kernels.h"

namespace mpsm {

RadixHistogram BuildRadixHistogram(const Tuple* data, size_t n,
                                   const KeyNormalizer& normalizer,
                                   simd::SimdKind simd) {
  RadixHistogram histogram(normalizer.num_clusters(), 0);
  simd::ClusterHistogram(data, n, normalizer.min_key(), normalizer.shift(),
                         normalizer.num_clusters(), histogram.data(), simd);
  return histogram;
}

RadixHistogram CombineHistograms(const std::vector<RadixHistogram>& locals) {
  if (locals.empty()) return {};
  RadixHistogram combined(locals[0].size(), 0);
  for (const RadixHistogram& local : locals) {
    for (size_t b = 0; b < combined.size(); ++b) combined[b] += local[b];
  }
  return combined;
}

uint64_t HistogramTotal(const RadixHistogram& histogram) {
  uint64_t total = 0;
  for (uint64_t count : histogram) total += count;
  return total;
}

KeyRange ScanKeyRange(const Tuple* data, size_t n, simd::SimdKind simd) {
  if (n == 0) return {};
  KeyRange range;
  simd::KeyMinMax(data, n, &range.min_key, &range.max_key, simd);
  return range;
}

KeyRange MergeKeyRanges(const KeyRange& a, const KeyRange& b) {
  return KeyRange{std::min(a.min_key, b.min_key),
                  std::max(a.max_key, b.max_key)};
}

}  // namespace mpsm

#include "partition/radix_histogram.h"

#include <algorithm>

namespace mpsm {

RadixHistogram BuildRadixHistogram(const Tuple* data, size_t n,
                                   const KeyNormalizer& normalizer) {
  RadixHistogram histogram(normalizer.num_clusters(), 0);
  for (size_t i = 0; i < n; ++i) {
    ++histogram[normalizer.Cluster(data[i].key)];
  }
  return histogram;
}

RadixHistogram CombineHistograms(const std::vector<RadixHistogram>& locals) {
  if (locals.empty()) return {};
  RadixHistogram combined(locals[0].size(), 0);
  for (const RadixHistogram& local : locals) {
    for (size_t b = 0; b < combined.size(); ++b) combined[b] += local[b];
  }
  return combined;
}

uint64_t HistogramTotal(const RadixHistogram& histogram) {
  uint64_t total = 0;
  for (uint64_t count : histogram) total += count;
  return total;
}

KeyRange ScanKeyRange(const Tuple* data, size_t n) {
  if (n == 0) return {};
  KeyRange range{data[0].key, data[0].key};
  for (size_t i = 1; i < n; ++i) {
    range.min_key = std::min(range.min_key, data[i].key);
    range.max_key = std::max(range.max_key, data[i].key);
  }
  return range;
}

KeyRange MergeKeyRanges(const KeyRange& a, const KeyRange& b) {
  return KeyRange{std::min(a.min_key, b.min_key),
                  std::max(a.max_key, b.max_key)};
}

}  // namespace mpsm

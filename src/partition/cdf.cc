#include "partition/cdf.h"

#include <algorithm>

namespace mpsm {

Cdf Cdf::FromHistograms(const std::vector<EquiHeightHistogram>& locals) {
  Cdf cdf;

  // Each bound of a run with n tuples and k bounds is a step of height
  // n/k ending at that key.
  struct Step {
    uint64_t key;
    double height;
  };
  std::vector<Step> steps;
  for (const EquiHeightHistogram& local : locals) {
    cdf.total_ += local.run_size;
    if (local.bounds.empty()) continue;
    const double height =
        static_cast<double>(local.run_size) / local.bounds.size();
    for (uint64_t key : local.bounds) steps.push_back(Step{key, height});
  }
  std::sort(steps.begin(), steps.end(),
            [](const Step& a, const Step& b) { return a.key < b.key; });

  // Collapse equal keys and accumulate.
  double cumulative = 0;
  for (size_t i = 0; i < steps.size();) {
    const uint64_t key = steps[i].key;
    double height = 0;
    while (i < steps.size() && steps[i].key == key) {
      height += steps[i].height;
      ++i;
    }
    cumulative += height;
    cdf.step_keys_.push_back(key);
    cdf.cumulative_.push_back(cumulative);
  }
  return cdf;
}

double Cdf::EstimateRank(uint64_t key) const {
  if (step_keys_.empty()) return 0;
  if (key >= step_keys_.back()) return static_cast<double>(total_);

  // First step with key strictly greater than `key`.
  const auto it = std::upper_bound(step_keys_.begin(), step_keys_.end(), key);
  const size_t next = static_cast<size_t>(it - step_keys_.begin());
  const double below = next == 0 ? 0.0 : cumulative_[next - 1];
  const uint64_t low_key = next == 0 ? 0 : step_keys_[next - 1];
  const uint64_t high_key = step_keys_[next];
  const double step_height =
      cumulative_[next] - (next == 0 ? 0.0 : cumulative_[next - 1]);
  if (high_key == low_key) return below;

  // Linear interpolation inside the step ("diagonal connection").
  const double fraction = static_cast<double>(key - low_key) /
                          static_cast<double>(high_key - low_key);
  return below + fraction * step_height;
}

}  // namespace mpsm

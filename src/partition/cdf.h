// Global cumulative distribution function of the public input S
// (§4.1, Figure 8).
//
// The per-run equi-height histogram bounds of all workers are merged
// into one step function; ranks between steps are linearly interpolated
// (the "diagonal connections" of Figure 8). The CDF answers "how many S
// tuples have key <= k" — the quantity the splitter computation needs
// to estimate per-partition join cost.
#pragma once

#include <cstdint>
#include <vector>

#include "partition/equi_height.h"

namespace mpsm {

/// Merged, interpolating CDF over all S runs.
class Cdf {
 public:
  Cdf() = default;

  /// Merges per-run equi-height histograms into the global CDF.
  static Cdf FromHistograms(const std::vector<EquiHeightHistogram>& locals);

  /// Estimated number of S tuples with key <= `key`. Monotonically
  /// non-decreasing in `key`; returns total() beyond the largest bound.
  double EstimateRank(uint64_t key) const;

  /// Estimated number of S tuples with key in [low, high).
  double EstimateRange(uint64_t low, uint64_t high) const {
    if (high <= low) return 0;
    return EstimateRank(high - 1) - (low == 0 ? 0.0 : EstimateRank(low - 1));
  }

  /// Total S cardinality represented.
  uint64_t total() const { return total_; }

  /// Number of merged steps (diagnostics).
  size_t num_steps() const { return step_keys_.size(); }

 private:
  std::vector<uint64_t> step_keys_;        // ascending
  std::vector<double> cumulative_;         // rank after each step
  uint64_t total_ = 0;
};

}  // namespace mpsm

#include "service/join_service.h"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <string>
#include <utility>

#include "engine/planner.h"
#include "obs/metrics.h"
#include "storage/tuple.h"

namespace mpsm::service {

namespace {

// mpsm_service_* instruments, resolved once (registry references are
// stable; the accessors keep the registry mutex off Submit/admit paths
// after first touch). The service outlives its queries, so these count
// live rather than folding at close.
obs::Counter& SubmittedCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().counter(
      "mpsm_service_submitted_total", "Queries accepted into the queue");
  return c;
}
obs::Counter& CompletedCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().counter(
      "mpsm_service_completed_total", "Queries whose Execute returned OK");
  return c;
}
obs::Counter& FailedCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().counter(
      "mpsm_service_failed_total", "Queries whose Execute returned an error");
  return c;
}
obs::Counter& RejectedCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().counter(
      "mpsm_service_rejected_total",
      "Queries refused by admission (queue full or budget-infeasible)");
  return c;
}
obs::Counter& DownBudgetedCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().counter(
      "mpsm_service_down_budgeted_total",
      "Queries re-planned to spill under a per-lane budget share");
  return c;
}
obs::Histogram& AdmissionWaitHistogram() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().histogram(
      "mpsm_service_admission_wait_ns",
      "Wall nanoseconds queries waited in the admission queue");
  return h;
}

/// Bytes the governor reserves while a planned query runs. In-memory
/// variants keep both inputs plus their runs resident; the spill path's
/// residency is its bounded page pools — the shared S staging pool plus
/// the per-worker private windows, which the pool capacity also bounds.
uint64_t PlanFootprintBytes(const engine::JoinPlan& plan) {
  if (plan.algorithm == engine::Algorithm::kDMpsm) {
    // A budget-capped buffer pool IS the spill path's resident RAM
    // (frames cover staging, readahead and dirty write-back pages);
    // charge it against admission directly. The legacy shape keeps the
    // old estimate: staging ring + an equal share for the windows.
    if (plan.dmpsm.pool_budget_bytes != 0) {
      return plan.dmpsm.pool_budget_bytes;
    }
    const uint64_t page_bytes =
        static_cast<uint64_t>(plan.dmpsm.tuples_per_page) * sizeof(Tuple);
    return 2 * static_cast<uint64_t>(plan.dmpsm.pool_pages) * page_bytes;
  }
  return plan.inputs.working_set_bytes;
}

}  // namespace

JoinService::JoinService(ServiceOptions options)
    : JoinService(numa::Topology::Probe(), std::move(options)) {}

JoinService::JoinService(const numa::Topology& topology, ServiceOptions options)
    : topology_(topology), options_(std::move(options)) {
  options_.lanes = std::max(options_.lanes, 1u);
  options_.max_batch = std::max(options_.max_batch, 1u);

  engine::EngineOptions lane_options = options_.engine;
  if (options_.io_inflight_budget_bytes != 0) {
    // Slice the device budget evenly; the IO scheduler's progress
    // guarantee (one batch always starts) makes any non-zero share safe.
    lane_options.dmpsm.io_max_inflight_bytes = std::max<uint64_t>(
        options_.io_inflight_budget_bytes / options_.lanes, 1);
  }
  if (options_.donation) donation_ = std::make_unique<DonationPool>();
  if (options_.run_cache_bytes != 0) {
    run_cache_ = std::make_unique<cache::RunCache>(
        cache::RunCacheOptions{.capacity_bytes = options_.run_cache_bytes});
  }
  engines_.reserve(options_.lanes);
  for (uint32_t i = 0; i < options_.lanes; ++i) {
    engines_.push_back(
        std::make_unique<engine::Engine>(topology_, lane_options));
    if (donation_ != nullptr) engines_.back()->set_donation(donation_.get());
    if (run_cache_ != nullptr) {
      engines_.back()->set_run_cache(run_cache_.get());
    }
  }
  lanes_.reserve(options_.lanes);
  for (uint32_t i = 0; i < options_.lanes; ++i) {
    lanes_.emplace_back(&JoinService::LaneLoop, this, i);
  }
}

JoinService::~JoinService() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    // Nothing queued may run anymore; fail it cleanly so Wait returns.
    for (StatePtr& q : queue_) {
      q->phase = QueryState::Phase::kDone;
      q->result.emplace(Status::Cancelled("join service shut down"));
      ++stats_.cancelled;
    }
    queue_.clear();
    work_cv_.notify_all();
    done_cv_.notify_all();
  }
  for (std::thread& lane : lanes_) lane.join();
}

Result<JoinService::QueryId> JoinService::Submit(const engine::JoinSpec& spec) {
  if (spec.r == nullptr || spec.s == nullptr) {
    return Status::InvalidArgument("JoinSpec needs both input relations");
  }
  if (spec.consumers == nullptr) {
    return Status::InvalidArgument("JoinSpec needs a consumer factory");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (stop_) return Status::Cancelled("join service is shutting down");
  if (queue_.size() >= options_.max_queue) {
    ++stats_.rejected;
    RejectedCounter().Add(1);
    return Status::ResourceExhausted(
        "admission queue is full (max_queue = " +
        std::to_string(options_.max_queue) + ")");
  }
  StatePtr state = std::make_shared<QueryState>();
  state->id = next_id_++;
  state->spec = spec;
  state->submitted_at = std::chrono::steady_clock::now();
  queue_.push_back(state);
  states_.emplace(state->id, state);
  ++stats_.submitted;
  SubmittedCounter().Add(1);
  stats_.peak_queue_depth = std::max<uint64_t>(stats_.peak_queue_depth,
                                               queue_.size());
  work_cv_.notify_one();
  return state->id;
}

Result<engine::JoinReport> JoinService::Wait(QueryId id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = states_.find(id);
  if (it == states_.end()) {
    return Status::InvalidArgument("unknown (or already waited) query id " +
                                   std::to_string(id));
  }
  StatePtr state = it->second;
  done_cv_.wait(lock,
                [&] { return state->phase == QueryState::Phase::kDone; });
  states_.erase(id);
  return std::move(*state->result);
}

Status JoinService::Cancel(QueryId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = states_.find(id);
  if (it == states_.end()) {
    return Status::InvalidArgument("unknown (or already waited) query id " +
                                   std::to_string(id));
  }
  StatePtr state = it->second;
  if (state->phase != QueryState::Phase::kQueued) {
    return Status::InvalidArgument(
        "query " + std::to_string(id) +
        " is already running or finished; only queued queries cancel");
  }
  queue_.erase(std::find(queue_.begin(), queue_.end(), state));
  state->phase = QueryState::Phase::kDone;
  state->result.emplace(Status::Cancelled("query cancelled while queued"));
  ++stats_.cancelled;
  done_cv_.notify_all();
  work_cv_.notify_all();
  return Status::OK();
}

void JoinService::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return queue_.empty() && running_groups_ == 0; });
}

ServiceStats JoinService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServiceStats out = stats_;
  if (donation_ != nullptr) out.donated_morsels = donation_->morsels_donated();
  if (run_cache_ != nullptr) {
    const cache::CacheStats cs = run_cache_->stats();
    out.cache_hits = cs.hits;
    out.cache_misses = cs.misses;
    out.cache_installs = cs.installs;
    out.cache_evictions = cs.evictions;
    out.cache_compactions = cs.compactions;
    out.cache_ingested_tuples = cs.ingested_tuples;
    out.cache_resident_bytes = run_cache_->resident_bytes();
  }
  return out;
}

obs::MetricsSnapshot JoinService::MetricsSnapshot() const {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  static obs::Gauge& queue_depth = registry.gauge(
      "mpsm_service_queue_depth", "Queries waiting in the admission queue");
  static obs::Gauge& reserved = registry.gauge(
      "mpsm_service_reserved_bytes",
      "Footprint bytes reserved by running queries against the budget");
  static obs::Gauge& cache_resident = registry.gauge(
      "mpsm_cache_resident_bytes", "Bytes resident in the shared run cache");
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_depth.Set(static_cast<int64_t>(queue_.size()));
    reserved.Set(static_cast<int64_t>(reserved_bytes_));
  }
  if (run_cache_ != nullptr) {
    cache_resident.Set(static_cast<int64_t>(run_cache_->resident_bytes()));
  }
  return registry.Snapshot();
}

Result<uint64_t> JoinService::Ingest(Relation& rel, const Tuple* tuples,
                                     size_t n) {
  if (run_cache_ == nullptr) {
    return Status::InvalidArgument(
        "Ingest needs the run cache: set ServiceOptions::run_cache_bytes");
  }
  if (rel.id() == 0) {
    return Status::InvalidArgument(
        "relation has no identity (default-constructed): ingest targets "
        "must come from Relation::Allocate or Relation::FromVector");
  }
  const uint64_t version = run_cache_->Ingest(rel, tuples, n);
  {
    std::lock_guard<std::mutex> lock(mu_);
    compact_hint_ = true;
  }
  work_cv_.notify_one();
  return version;
}

Status JoinService::PlanLocked(engine::Engine& engine, QueryState& q) {
  Result<engine::JoinPlan> plan = engine.Plan(q.spec);
  if (!plan.ok()) return plan.status();
  q.plan = std::move(plan).value();
  q.team_size = engine.TeamSizeFor(q.spec);
  q.footprint = PlanFootprintBytes(q.plan);
  q.planned = true;

  const uint64_t budget = options_.memory_budget_bytes;
  if (budget == 0 || q.footprint <= budget) return Status::OK();

  // The working set can never fit, even with the service idle. Down-
  // budget: re-plan against a per-lane share of the global budget so
  // the join spills through D-MPSM within bounds instead of OOMing.
  engine::JoinSpec probe = q.spec;
  probe.memory_budget_bytes = std::min<uint64_t>(
      budget,
      std::max<uint64_t>(budget / options_.lanes, uint64_t{1} << 20));
  Result<engine::JoinPlan> replan = engine.Plan(probe);
  if (replan.ok() && replan->algorithm == engine::Algorithm::kDMpsm) {
    const uint64_t footprint = PlanFootprintBytes(*replan);
    if (footprint <= budget) {
      q.plan = std::move(replan).value();
      q.footprint = footprint;
      q.down_budgeted = true;
      q.budget_override = probe.memory_budget_bytes;
      ++stats_.down_budgeted;
      DownBudgetedCounter().Add(1);
      return Status::OK();
    }
  }
  return Status::ResourceExhausted(
      "predicted working set (" + std::to_string(q.footprint) +
      " bytes) exceeds the service memory budget (" + std::to_string(budget) +
      " bytes) and the join cannot spill");
}

std::vector<JoinService::StatePtr> JoinService::TryAdmitLocked(
    engine::Engine& engine) {
  std::vector<StatePtr> group;
  const uint64_t budget = options_.memory_budget_bytes;

  // Queue -> running transition: stamp the admission wait (Execute
  // turns it into the retroactive admission.wait trace span) and feed
  // the service latency histogram.
  const auto admit = [](QueryState& q) {
    q.phase = QueryState::Phase::kRunning;
    q.admission_wait_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - q.submitted_at)
            .count());
    AdmissionWaitHistogram().Record(q.admission_wait_ns);
  };

  // Admission scan, queue order. A too-big head does not block smaller
  // queries behind it (its turn comes as reservations release — the
  // budget frees completely whenever the service idles, so it cannot
  // starve forever).
  StatePtr head;
  for (size_t i = 0; i < queue_.size();) {
    QueryState& q = *queue_[i];
    if (!q.planned) {
      Status admissible = PlanLocked(engine, q);
      if (!admissible.ok()) {
        StatePtr rejected = queue_[i];
        queue_.erase(queue_.begin() + static_cast<ptrdiff_t>(i));
        ++stats_.rejected;
        RejectedCounter().Add(1);
        rejected->footprint = 0;  // planned but never reserved
        FinishLocked(*rejected, admissible);
        continue;
      }
    }
    // Run-cache residency is charged against the same budget: under
    // admission pressure, LRU base entries are evicted to make room.
    // Delta logs are authoritative data (cache/run_cache.h) and never
    // block admission — a query outranks cached convenience bytes.
    if (budget != 0 && run_cache_ != nullptr &&
        reserved_bytes_ + q.footprint <= budget &&
        reserved_bytes_ + q.footprint + run_cache_->resident_bytes() >
            budget) {
      run_cache_->EvictToFit(budget - reserved_bytes_ - q.footprint);
    }
    if (budget == 0 || reserved_bytes_ + q.footprint <= budget) {
      head = queue_[i];
      queue_.erase(queue_.begin() + static_cast<ptrdiff_t>(i));
      break;
    }
    ++i;
  }
  if (head == nullptr) return group;

  admit(*head);
  reserved_bytes_ += head->footprint;
  group.push_back(head);

  // Shared-sort batching: pull compatible mates — same public input,
  // session options, no per-query budget, P-MPSM-able — into the
  // group. Mates skip their own planning: Execute plans them with
  // Algorithm::kPMpsm forced, and their reservation is the private
  // side only (the public runs are shared with the head).
  if (options_.shared_sort && !head->down_budgeted &&
      head->plan.algorithm == engine::Algorithm::kPMpsm &&
      head->spec.shared_public_runs == nullptr &&
      head->spec.options == nullptr && head->spec.memory_budget_bytes == 0) {
    for (auto it = queue_.begin();
         it != queue_.end() && group.size() < options_.max_batch;) {
      QueryState& q = **it;
      const bool compatible =
          q.spec.s == head->spec.s && q.spec.options == nullptr &&
          q.spec.shared_public_runs == nullptr &&
          q.spec.memory_budget_bytes == 0 &&
          (!q.spec.algorithm.has_value() ||
           *q.spec.algorithm == engine::Algorithm::kPMpsm) &&
          q.spec.r->num_chunks() == head->team_size &&
          q.spec.s->num_chunks() == head->team_size;
      const uint64_t mate_footprint =
          engine::Planner::WorkingSetBytes(q.spec.r->size(), 0);
      if (compatible &&
          (budget == 0 || reserved_bytes_ + mate_footprint <= budget)) {
        StatePtr mate = *it;
        it = queue_.erase(it);
        admit(*mate);
        mate->planned = true;
        mate->team_size = head->team_size;
        mate->footprint = mate_footprint;
        reserved_bytes_ += mate_footprint;
        group.push_back(std::move(mate));
      } else {
        ++it;
      }
    }
    if (group.size() > 1) {
      ++stats_.batches;
      stats_.batched_queries += group.size();
    }
  }
  stats_.peak_reserved_bytes =
      std::max(stats_.peak_reserved_bytes, reserved_bytes_);
  return group;
}

void JoinService::ExecuteGroup(engine::Engine& engine, uint32_t lane,
                               std::vector<StatePtr>& group) {
  // Tag the lane's team (1-based; 0 = outside a service) so donated
  // morsels executed by its idle workers attribute to this lane in the
  // owner query's trace.
  engine.EnsureTeam(group.front()->team_size).set_lane(lane + 1);
  // Sort the shared public input once for the whole group. On failure
  // fall back to per-query sorting — correctness never depends on the
  // batching fast path. With the run cache attached, the engine itself
  // provides pay-once semantics (the first member's cold sort installs
  // the runs; its mates hit them warm, deltas merged on read), so the
  // group-level build — which reads base storage only and would miss
  // ingested deltas — is skipped.
  std::optional<PublicRuns> shared;
  if (group.size() > 1 && run_cache_ == nullptr) {
    WorkerTeam& team = engine.EnsureTeam(group.front()->team_size);
    Result<PublicRuns> runs = BuildPublicRuns(
        team, *group.front()->spec.s, group.front()->plan.mpsm);
    if (runs.ok()) shared.emplace(std::move(runs).value());
  }
  for (StatePtr& q : group) {
    engine::JoinSpec spec = q->spec;
    spec.query_id = q->id;
    spec.admission_wait_ns = q->admission_wait_ns;
    if (shared.has_value()) {
      spec.shared_public_runs = &*shared;
      spec.algorithm = engine::Algorithm::kPMpsm;
    } else if (group.size() > 1) {
      spec.algorithm = engine::Algorithm::kPMpsm;  // cache-served batch
    }
    if (q->down_budgeted) spec.memory_budget_bytes = q->budget_override;
    Result<engine::JoinReport> result = engine.Execute(spec);
    if (result.ok() && result->dmpsm.has_value() && result->dmpsm->resumed) {
      // A resubmitted spilling query re-attached durable state from a
      // previous incarnation's manifest (docs/recovery.md).
      static obs::Counter& resumed_counter =
          obs::MetricsRegistry::Global().counter(
              "mpsm_service_resumed_queries_total",
              "Service queries that resumed from a crash-recovery "
              "manifest");
      resumed_counter.Add(1);
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.resumed_queries;
    }
    // Labeled per-lane throughput (one registration-path lookup per
    // query — off the hot path).
    obs::MetricsRegistry::Global()
        .counter("mpsm_service_lane_queries_total",
                 "Queries executed per service lane",
                 {{"lane", std::to_string(lane)}})
        .Add(1);
    std::lock_guard<std::mutex> lock(mu_);
    FinishLocked(*q, std::move(result));
  }
}

void JoinService::FinishLocked(QueryState& q,
                               Result<engine::JoinReport> result) {
  reserved_bytes_ -= q.footprint;
  q.footprint = 0;
  if (result.ok()) {
    ++stats_.completed;
    CompletedCounter().Add(1);
  } else if (result.status().code() != StatusCode::kResourceExhausted) {
    ++stats_.failed;
    FailedCounter().Add(1);
  }
  q.result.emplace(std::move(result));
  q.phase = QueryState::Phase::kDone;
  done_cv_.notify_all();
  work_cv_.notify_all();  // released budget may admit a waiter
}

void JoinService::LaneLoop(uint32_t lane) {
  engine::Engine& engine = *engines_[lane];
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock,
                  [&] { return stop_ || !queue_.empty() || compact_hint_; });
    if (stop_) return;
    if (queue_.empty()) {
      // Idle lane + pending deltas: run background compaction as
      // low-priority work. The morsels are guest-safe, so donated
      // workers from other lanes help (parallel/donation.h).
      compact_hint_ = false;
      if (run_cache_ != nullptr) {
        lock.unlock();
        run_cache_->CompactPending(engine.team());
        lock.lock();
      }
      continue;
    }
    std::vector<StatePtr> group = TryAdmitLocked(engine);
    if (group.empty()) {
      // Queue non-empty but nothing fits the remaining budget; sleep
      // until a completion releases bytes (or the queue changes).
      work_cv_.wait(lock);
      continue;
    }
    ++running_groups_;
    lock.unlock();
    ExecuteGroup(engine, lane, group);
    lock.lock();
    --running_groups_;
    done_cv_.notify_all();  // Drain watches running_groups_
  }
}

}  // namespace mpsm::service

// JoinService — the concurrent multi-session front end (docs/service.md).
//
// One engine::Engine runs one query at a time on one worker team. A
// server sees many concurrent clients, and simply serializing their
// queries behind a mutex leaves throughput on the table three ways.
// JoinService accepts queued JoinSpecs from any thread and runs them on
// a small fleet of engine sessions ("lanes"), recovering that
// throughput with three mechanisms:
//
//  1. Admission control. A memory governor holds every *running* query's
//     planner-predicted footprint against a global budget. Queries that
//     would overflow it wait in the queue (backpressure instead of
//     OOM); queries whose working set exceeds the whole budget are
//     re-planned against a per-lane share so they spill through D-MPSM
//     ("down-budgeting"); only joins that cannot spill fail, with a
//     clean ResourceExhausted.
//  2. Elastic worker teams. All lanes share one DonationPool
//     (parallel/donation.h): a lane's workers idling at a phase barrier
//     execute guest-safe morsels of other lanes' phases instead.
//  3. Shared-sort batching. Compatible queued queries joining different
//     private inputs against the *same* public relation are coalesced:
//     the public input is sorted once (core/public_runs.h) and every
//     member joins against the shared runs, paying P-MPSM phase 1 once
//     per batch instead of once per query.
//
// Threading model: Submit/Wait/Cancel/Drain are safe from any thread.
// Each lane is a dedicated thread owning its Engine (team, calibrated
// cost model); queries never migrate between lanes mid-flight, so the
// per-lane recalibration feedback loop stays race-free.
//
//   service::JoinService svc(options);
//   auto id = svc.Submit(spec);           // returns immediately
//   auto report = svc.Wait(*id);          // blocks for this query only
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cache/run_cache.h"
#include "core/public_runs.h"
#include "engine/engine.h"
#include "numa/topology.h"
#include "obs/metrics.h"
#include "parallel/donation.h"
#include "util/status.h"

namespace mpsm::service {

/// Service-level tuning; per-query knobs stay on engine::JoinSpec.
struct ServiceOptions {
  /// Concurrent engine sessions. Each lane owns one Engine (one worker
  /// team); at most `lanes` queries execute at once.
  uint32_t lanes = 2;

  /// Queued-query cap; Submit past it fails with ResourceExhausted
  /// (explicit backpressure toward the client).
  size_t max_queue = 4096;

  /// Global RAM budget across all running queries; 0 = unlimited. The
  /// admission governor reserves each query's planner-predicted
  /// footprint against it.
  uint64_t memory_budget_bytes = 0;

  /// Global in-flight device-read budget for spilling (D-MPSM)
  /// queries; 0 = each lane's backend-derived default. Sliced evenly
  /// into per-lane shares via DMpsmOverrides::io_max_inflight_bytes.
  uint64_t io_inflight_budget_bytes = 0;

  /// Coalesce compatible queued queries over one public input into a
  /// shared-sort batch (docs/service.md).
  bool shared_sort = true;

  /// Most queries per shared-sort batch (>= 1).
  uint32_t max_batch = 8;

  /// Share one DonationPool across the lanes' worker teams.
  bool donation = true;

  /// Capacity of the cross-query run cache shared by every lane
  /// (cache/run_cache.h): repeat joins of one public input reuse its
  /// sorted runs, Ingest appends delta runs merged on read, and idle
  /// lanes compact the delta log in the background. 0 disables the
  /// cache. Cached bytes are charged against memory_budget_bytes:
  /// admission pressure LRU-evicts base entries before a query waits.
  uint64_t run_cache_bytes = 0;

  /// Base options for every lane engine (workers, machine model,
  /// recalibrate, per-algorithm overrides). The service leaves
  /// memory_budget_bytes alone — admission is governed service-side.
  /// Set engine.recovery.enabled for crash-safe restartable spilling:
  /// a resubmitted query whose previous incarnation died mid-spill
  /// resumes from its durable manifest (docs/recovery.md,
  /// ServiceStats::resumed_queries).
  engine::EngineOptions engine;
};

/// Service-lifetime observability (all monotonic except the peaks).
struct ServiceStats {
  uint64_t submitted = 0;
  uint64_t completed = 0;   // Execute returned OK
  uint64_t failed = 0;      // Execute returned an error
  uint64_t cancelled = 0;   // Cancel() before admission / shutdown
  uint64_t rejected = 0;    // failed admission (queue full / never fits)
  /// Queries re-planned to spill because their in-memory working set
  /// exceeded the whole service budget.
  uint64_t down_budgeted = 0;
  /// Shared-sort groups executed with >= 2 members / their total size.
  uint64_t batches = 0;
  uint64_t batched_queries = 0;
  /// Queries that re-attached durable spill state from a crash-recovery
  /// manifest (docs/recovery.md): a resubmitted spilling query whose
  /// previous incarnation died mid-run picked up where it left off.
  /// Requires ServiceOptions::engine.recovery.enabled.
  uint64_t resumed_queries = 0;
  /// Morsels executed by guest workers across sessions (DonationPool).
  uint64_t donated_morsels = 0;
  uint64_t peak_queue_depth = 0;
  uint64_t peak_reserved_bytes = 0;

  /// Run-cache aggregate (all zero when run_cache_bytes == 0).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_installs = 0;
  uint64_t cache_evictions = 0;
  /// Delta-log merges performed by idle lanes (background compaction).
  uint64_t cache_compactions = 0;
  uint64_t cache_ingested_tuples = 0;
  uint64_t cache_resident_bytes = 0;
};

/// A concurrent join server over a fleet of engine sessions.
class JoinService {
 public:
  using QueryId = uint64_t;

  /// Probes the host topology once, shared by all lanes.
  explicit JoinService(ServiceOptions options = {});

  /// Uses an explicit (e.g. simulated) topology instead of probing.
  JoinService(const numa::Topology& topology, ServiceOptions options = {});

  /// Cancels still-queued queries, finishes running ones, joins lanes.
  ~JoinService();

  JoinService(const JoinService&) = delete;
  JoinService& operator=(const JoinService&) = delete;

  /// Enqueues one join. Returns immediately with a handle for Wait;
  /// fails fast only on structural errors (missing inputs/consumer,
  /// full queue, shutdown). The spec is copied; its pointees (relations,
  /// consumers, options, shared runs) must stay valid until Wait.
  Result<QueryId> Submit(const engine::JoinSpec& spec);

  /// Blocks until `id` finishes and returns its report (or the error
  /// that failed it — a cancelled query yields kCancelled, a query the
  /// governor can never admit yields kResourceExhausted). Consumes the
  /// handle: a second Wait on the same id is InvalidArgument.
  Result<engine::JoinReport> Wait(QueryId id);

  /// Cancels a still-queued query (its Wait returns kCancelled).
  /// Queries already running or finished are not interrupted —
  /// returns InvalidArgument.
  Status Cancel(QueryId id);

  /// Blocks until the queue is empty and no query is running.
  void Drain();

  ServiceStats stats() const;

  /// A point-in-time copy of the process metrics registry
  /// (obs/metrics.h) with the service's live gauges — queue depth,
  /// reserved admission bytes, cache residency — refreshed first.
  /// Export with ToPrometheusText() or ToJson().
  obs::MetricsSnapshot MetricsSnapshot() const;

  const numa::Topology& topology() const { return topology_; }
  const ServiceOptions& options() const { return options_; }

  /// The cross-lane run cache; nullptr when run_cache_bytes == 0.
  cache::RunCache* run_cache() const { return run_cache_.get(); }

  /// Appends tuples to `rel`'s logical content through the shared run
  /// cache as a sorted delta run (requires run_cache_bytes != 0) and
  /// wakes an idle lane for background compaction. Queries submitted
  /// after Ingest returns see the rows — merge-on-read against cached
  /// runs, via a materialized view otherwise. Returns the new relation
  /// version.
  Result<uint64_t> Ingest(Relation& rel, const Tuple* tuples, size_t n);
  Result<uint64_t> Ingest(Relation& rel, const std::vector<Tuple>& tuples) {
    return Ingest(rel, tuples.data(), tuples.size());
  }

 private:
  struct QueryState {
    QueryId id = 0;
    engine::JoinSpec spec;
    enum class Phase { kQueued, kRunning, kDone } phase = Phase::kQueued;
    /// Set exactly once, when phase turns kDone.
    std::optional<Result<engine::JoinReport>> result;

    /// Submit time; admission wait = admission time - this. Plumbed
    /// into JoinSpec::admission_wait_ns so the engine records the
    /// retroactive admission.wait trace span.
    std::chrono::steady_clock::time_point submitted_at;
    uint64_t admission_wait_ns = 0;

    /// Admission artifacts (set by PlanLocked on the admitting lane).
    bool planned = false;
    engine::JoinPlan plan;
    uint32_t team_size = 0;
    /// Bytes reserved against the service budget while running.
    uint64_t footprint = 0;
    bool down_budgeted = false;
    uint64_t budget_override = 0;
  };
  using StatePtr = std::shared_ptr<QueryState>;

  void LaneLoop(uint32_t lane);
  /// Plans `q` on the lane's engine and derives its footprint; applies
  /// the down-budget re-plan when the working set exceeds the whole
  /// budget. Error => q can never be admitted.
  Status PlanLocked(engine::Engine& engine, QueryState& q);
  /// Scans the queue in order and admits the first query whose
  /// footprint fits the remaining budget, plus (when batching) its
  /// compatible shared-sort mates. Empty => nothing admissible now.
  std::vector<StatePtr> TryAdmitLocked(engine::Engine& engine);
  /// Runs one admitted group on the lane's engine (shared public sort
  /// first when the group has >= 2 members) and finishes every member.
  /// `lane` tags the team for donated-morsel trace attribution.
  void ExecuteGroup(engine::Engine& engine, uint32_t lane,
                    std::vector<StatePtr>& group);
  void FinishLocked(QueryState& q, Result<engine::JoinReport> result);

  numa::Topology topology_;
  ServiceOptions options_;
  std::unique_ptr<DonationPool> donation_;
  /// Shared by every lane engine; outlives engines_ (declared first).
  std::unique_ptr<cache::RunCache> run_cache_;
  std::vector<std::unique_ptr<engine::Engine>> engines_;  // one per lane

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // lanes: queue/budget/stop changed
  std::condition_variable done_cv_;  // clients: some query finished
  bool stop_ = false;
  /// Set by Ingest, cleared by the lane that runs CompactPending: lets
  /// an idle lane wake for background compaction without polling.
  bool compact_hint_ = false;
  uint64_t next_id_ = 1;
  std::deque<StatePtr> queue_;
  std::unordered_map<QueryId, StatePtr> states_;
  uint64_t reserved_bytes_ = 0;
  uint32_t running_groups_ = 0;
  ServiceStats stats_;

  std::vector<std::thread> lanes_;  // last member: joined by ~JoinService
};

}  // namespace mpsm::service

#include "sim/machine_model.h"

#include <algorithm>

namespace mpsm::sim {

double MachineModel::PhaseSeconds(const PerfCounters& c) const {
  double ns = 0;
  ns += static_cast<double>(c.bytes_read_local_seq +
                            c.bytes_written_local_seq) *
        ns_per_byte_seq_local;
  ns += static_cast<double>(c.bytes_read_remote_seq +
                            c.bytes_written_remote_seq) *
        ns_per_byte_seq_remote;
  ns += static_cast<double>(c.bytes_read_local_rand +
                            c.bytes_written_local_rand) *
        ns_per_byte_rand_local;
  ns += static_cast<double>(c.bytes_read_remote_rand +
                            c.bytes_written_remote_rand) *
        ns_per_byte_rand_remote;
  ns += static_cast<double>(c.sort_tuple_logs) * ns_per_sort_unit;
  ns += static_cast<double>(c.sync_acquisitions) * ns_per_sync;
  ns += static_cast<double>(c.morsels_stolen) * ns_per_steal;
  ns += static_cast<double>(c.io_submits) * ns_per_io_submit;
  ns += static_cast<double>(c.hash_inserts) * ns_per_hash_insert;
  ns += static_cast<double>(c.hash_probes) * ns_per_hash_probe;
  return ns * 1e-9;
}

double MachineModel::IoBytesPerSec(size_t queue_depth) const {
  const double saturation = std::max<uint32_t>(io_saturation_depth, 1);
  const double depth =
      std::min(static_cast<double>(std::max<size_t>(queue_depth, 1)),
               saturation);
  return io_bytes_per_sec * depth / saturation;
}

ModeledExecution ModelExecution(const MachineModel& model,
                                const std::vector<WorkerStats>& workers) {
  ModeledExecution result;
  const uint32_t team_size = static_cast<uint32_t>(workers.size());
  // Oversubscription: with more workers than physical cores, each
  // worker effectively runs at cores/team_size speed.
  const double slowdown =
      team_size > model.cores
          ? static_cast<double>(team_size) / model.cores
          : 1.0;

  result.worker_seconds.assign(team_size, 0.0);
  for (uint32_t p = 0; p < kNumJoinPhases; ++p) {
    double slowest = 0;
    for (uint32_t w = 0; w < team_size; ++w) {
      const double seconds =
          model.PhaseSeconds(workers[w].phase_counters[p]) * slowdown;
      result.worker_seconds[w] += seconds;
      slowest = std::max(slowest, seconds);
    }
    result.phase_seconds[p] = slowest;
    result.total_seconds += slowest;
  }
  return result;
}

}  // namespace mpsm::sim

#include "sim/calibration.h"

#include "storage/tuple.h"

namespace mpsm::sim {

namespace {

// Below these unit counts the phase wall time is dominated by barrier
// and scheduling noise, not the coefficient being measured.
constexpr uint64_t kMinSortUnits = 1u << 16;
constexpr uint64_t kMinMergeKeys = 1u << 14;

void Fold(double& coefficient, double observed, double alpha) {
  if (observed <= 0) return;
  // Outlier guard: a descheduled development VM can inflate one run's
  // wall time arbitrarily; don't let a single sample drag the model
  // more than two orders of magnitude.
  if (observed > coefficient * 100.0 || observed < coefficient / 100.0) {
    return;
  }
  coefficient = (1.0 - alpha) * coefficient + alpha * observed;
}

}  // namespace

CalibrationObservation ObserveRun(const std::vector<WorkerStats>& workers,
                                  uint32_t keys_per_compare) {
  CalibrationObservation obs;
  double sort_seconds = 0;
  uint64_t sort_units = 0;
  double merge_seconds = 0;
  uint64_t merge_bytes = 0;
  for (const WorkerStats& stats : workers) {
    for (JoinPhase phase : {kPhaseSortPublic, kPhaseSortPrivate}) {
      sort_seconds += stats.phase_seconds[phase];
      sort_units += stats.phase_counters[phase].sort_tuple_logs;
    }
    merge_seconds += stats.phase_seconds[kPhaseJoin];
    const PerfCounters& join = stats.phase_counters[kPhaseJoin];
    merge_bytes += join.bytes_read_local_seq + join.bytes_read_remote_seq +
                   join.bytes_read_local_rand + join.bytes_read_remote_rand;
  }
  if (sort_units >= kMinSortUnits && sort_seconds > 0) {
    obs.sort_units = sort_units;
    obs.ns_per_sort_unit =
        sort_seconds * 1e9 / static_cast<double>(sort_units);
  }
  // Each merge-loop step advances one tuple read; the model prices the
  // phase at ns_per_merge_key / keys_per_compare per key, so the
  // scalar-equivalent coefficient multiplies the width back in.
  const uint64_t merge_keys = merge_bytes / sizeof(Tuple);
  if (merge_keys >= kMinMergeKeys && merge_seconds > 0 &&
      keys_per_compare > 0) {
    obs.merge_keys = merge_keys;
    obs.ns_per_merge_key = merge_seconds * 1e9 *
                           static_cast<double>(keys_per_compare) /
                           static_cast<double>(merge_keys);
  }
  return obs;
}

void Recalibrate(MachineModel& model,
                 const CalibrationObservation& observation, double alpha) {
  if (alpha <= 0) return;
  if (alpha > 1) alpha = 1;
  if (observation.sort_units > 0) {
    Fold(model.ns_per_sort_unit, observation.ns_per_sort_unit, alpha);
  }
  if (observation.merge_keys > 0) {
    Fold(model.ns_per_merge_key, observation.ns_per_merge_key, alpha);
  }
}

}  // namespace mpsm::sim

// Closing the planner's feedback loop: measured runs recalibrate the
// cost model.
//
// The planner prices candidates with a sim::MachineModel whose
// coefficients were calibrated from the paper's Figure 1 experiments
// on HyPer1. A long-lived session runs on *this* host, whose actual
// ns-per-sort-unit and ns-per-merge-key the executed joins reveal: the
// per-phase wall times and counters of every JoinRunInfo are exactly
// the quantities the model multiplies its coefficients by. ObserveRun
// inverts that relation, and Recalibrate folds the observation into
// the session model with an exponential moving average, so repeated
// sessions converge on the observed coefficients (the engine's
// `recalibrate` option; docs/service.md).
//
// The extracted coefficients are *effective*: wall time divided by the
// modeled unit count absorbs everything the linear model abstracts
// away (cache effects, oversubscription, SIMD inside the sort), which
// is precisely what makes the next prediction match the next
// measurement on the same host.
#pragma once

#include <cstdint>
#include <vector>

#include "parallel/counters.h"
#include "sim/machine_model.h"

namespace mpsm::sim {

/// Coefficients one measured run reveals (0 = no usable signal).
struct CalibrationObservation {
  /// Observed ns per n*log2(n) sort unit (phases 1 and 3).
  double ns_per_sort_unit = 0;
  uint64_t sort_units = 0;

  /// Observed ns per scalar merge-loop step (phase 4), normalized by
  /// the vector width the run used so it lands in the same unit as
  /// MachineModel::ns_per_merge_key.
  double ns_per_merge_key = 0;
  uint64_t merge_keys = 0;
};

/// Extracts effective coefficients from per-worker stats of one run.
/// `keys_per_compare` is the executed merge kernel's vector width
/// (simd::KeysPerCompare of the resolved kind the run reports).
CalibrationObservation ObserveRun(const std::vector<WorkerStats>& workers,
                                  uint32_t keys_per_compare);

/// Folds `observation` into `model` with EWMA weight `alpha` (0..1).
/// Low-signal observations (too few units for the wall clock to
/// resolve) and absurd outliers (beyond 100x of the current value,
/// i.e. a descheduled-VM artifact) are ignored per coefficient.
void Recalibrate(MachineModel& model,
                 const CalibrationObservation& observation,
                 double alpha = 0.3);

}  // namespace mpsm::sim

// Calibrated cost model of the paper's evaluation machine ("HyPer1":
// 4x Intel X7560, 32 cores, 1 TB RAM, Figure 11).
//
// The development environment has one core and no NUMA, so wall-clock
// speedups cannot reproduce the paper's charts. Instead, every join
// algorithm in this library runs for real and emits exact per-worker
// PerfCounters (bytes moved classified by locality and access pattern,
// sort work, latch acquisitions, hash operations). This model maps
// those counters to modeled execution times on HyPer1.
//
// Calibration sources (documented in EXPERIMENTS.md):
//  - Figure 1 experiment 1: local chunk sort 12946 ms vs globally
//    allocated array 41734 ms for 50M tuples/worker
//    -> ns_per_sort_unit = 9.6, global_sort_penalty = 3.22.
//  - Figure 1 experiment 2: precomputed scatter 7440 ms vs test-and-set
//    synchronized scatter 22756 ms for 50M tuples/worker
//    -> ns_per_byte_rand_remote ~= 8.75, ns_per_sync ~= 306.
//  - Figure 1 experiment 3: local merge join 837 ms vs remote 1000 ms
//    over 2x50M tuples -> ns_per_byte_seq_local = 0.52, remote = 0.625.
//
// The model is deliberately simple: per-worker phase time is a linear
// function of the counters; machine response time is the sum over
// phases of the slowest worker (barrier semantics).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "parallel/counters.h"

namespace mpsm::sim {

/// Linear cost coefficients (nanoseconds) for one machine.
struct MachineModel {
  /// Physical cores; teams larger than this timeshare (hyperthreading).
  uint32_t cores = 32;
  uint32_t nodes = 4;

  // Sequential bulk traffic (prefetcher-friendly), per byte.
  double ns_per_byte_seq_local = 0.52;
  double ns_per_byte_seq_remote = 0.625;

  // Random traffic (cache/TLB-missing), per byte touched.
  double ns_per_byte_rand_local = 2.9;
  double ns_per_byte_rand_remote = 8.75;

  // Sorting, per n*log2(n) unit (comparison + move amortized).
  double ns_per_sort_unit = 9.6;

  // One contended test-and-set latch acquisition.
  double ns_per_sync = 306.0;

  // Extra cost of one cross-node morsel steal: the victim queue's head
  // line bounces across the interconnect and the stolen morsel's
  // metadata is fetched remotely. The stolen morsel's *data* traffic is
  // already captured by the byte counters (a stealing worker classifies
  // its reads/writes against its own node). Roughly two remote cache
  // line transfers on the paper's 4-socket QPI box.
  double ns_per_steal = 500.0;

  // Hash-table operations (beyond their counted memory traffic).
  double ns_per_hash_insert = 40.0;
  double ns_per_hash_probe = 30.0;

  // CPU cost of one *scalar* merge-loop step (compare + branch +
  // cursor bump, ~1 key/cycle on the paper-era Nehalem). The planner
  // divides it by the resolved SIMD kind's keys-per-compare
  // (simd::KeysPerCompare), pricing the phase-4 merge at the vector
  // width the machine actually has (docs/simd.md).
  double ns_per_merge_key = 0.5;

  // Async batched page I/O (src/io/): CPU cost of building and
  // submitting one vectored read (syscall + sqe/queue bookkeeping).
  double ns_per_io_submit = 1500.0;

  // Spill device: streaming read bandwidth when fully saturated, and
  // the queue depth that saturates it. Effective bandwidth ramps
  // linearly with depth (IoBytesPerSec), so a sync backend (depth 1)
  // sees io_bytes_per_sec / io_saturation_depth — the classic reason
  // batched async submission turns a spilling operator compute-bound.
  // 2.0 GB/s at depth >= 8 models the paper-era enterprise SSD array.
  double io_bytes_per_sec = 2.0e9;
  uint32_t io_saturation_depth = 8;

  /// Figure 1 exp. 1: sorting in a globally allocated (interleaved)
  /// array instead of the local partition costs this factor.
  double global_sort_penalty = 3.22;

  /// The paper's machine.
  static MachineModel HyPer1() { return MachineModel{}; }

  /// Effective spill-device read bandwidth at the given queue depth
  /// (linear ramp up to io_saturation_depth).
  double IoBytesPerSec(size_t queue_depth) const;

  /// Modeled seconds one worker spends on the work in `counters`.
  /// io_submits is charged at ns_per_io_submit; the measured
  /// io_stall_ns stays observability-only (a wall-clock artifact of
  /// the run host, not a machine-independent count).
  double PhaseSeconds(const PerfCounters& counters) const;
};

/// Modeled response time of a join execution on the machine.
struct ModeledExecution {
  /// Per phase: modeled time of the slowest worker.
  std::array<double, kNumJoinPhases> phase_seconds{};
  /// Sum of phase maxima (barrier semantics).
  double total_seconds = 0;
  /// Per-worker modeled totals (for balance charts like Figure 16).
  std::vector<double> worker_seconds;
};

/// Models a full execution from per-worker stats. `team_size` workers
/// share the machine; beyond `model.cores` they timeshare, so per-
/// worker times scale by team_size / cores (the Figure 13 flatline at
/// parallelism 64).
ModeledExecution ModelExecution(const MachineModel& model,
                                const std::vector<WorkerStats>& workers);

}  // namespace mpsm::sim

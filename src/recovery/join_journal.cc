#include "recovery/join_journal.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace mpsm::recovery {

namespace {

// Record framing (see file comment in the header).
constexpr uint32_t kTypeHeader = 1;
constexpr uint32_t kTypeRun = 2;
constexpr uint32_t kTypeChunk = 3;

// A sane upper bound on one record's payload: a run of a billion pages
// would be framed long before this. Anything larger is a torn length
// field, not a record.
constexpr uint32_t kMaxPayloadBytes = 64u << 20;

void PutU32(std::string& out, uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutU64(std::string& out, uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

/// Bounds-checked little cursor over a replayed payload.
class Reader {
 public:
  Reader(const char* data, size_t size) : data_(data), size_(size) {}
  bool U32(uint32_t* v) { return Copy(v, sizeof(*v)); }
  bool U64(uint64_t* v) { return Copy(v, sizeof(*v)); }
  bool Bytes(std::string* out, size_t n) {
    if (size_ - pos_ < n) return false;
    out->assign(data_ + pos_, n);
    pos_ += n;
    return true;
  }
  bool Done() const { return pos_ == size_; }

 private:
  bool Copy(void* dest, size_t n) {
    if (size_ - pos_ < n) return false;
    std::memcpy(dest, data_ + pos_, n);
    pos_ += n;
    return true;
  }
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

std::string EncodeFingerprint(const QueryFingerprint& fp) {
  std::string out;
  PutU64(out, fp.r_id);
  PutU64(out, fp.r_version);
  PutU64(out, fp.r_tuples);
  PutU64(out, fp.s_id);
  PutU64(out, fp.s_version);
  PutU64(out, fp.s_tuples);
  PutU32(out, fp.join_kind);
  PutU32(out, fp.team_size);
  PutU64(out, fp.tuples_per_page);
  return out;
}

bool DecodeFingerprint(Reader& in, QueryFingerprint* fp) {
  return in.U64(&fp->r_id) && in.U64(&fp->r_version) &&
         in.U64(&fp->r_tuples) && in.U64(&fp->s_id) &&
         in.U64(&fp->s_version) && in.U64(&fp->s_tuples) &&
         in.U32(&fp->join_kind) && in.U32(&fp->team_size) &&
         in.U64(&fp->tuples_per_page);
}

std::string EncodeRun(const RunRecord& run) {
  std::string out;
  PutU32(out, run.run_id);
  PutU32(out, run.is_private ? 1 : 0);
  PutU64(out, run.content_checksum);
  PutU64(out, run.pages.size());
  for (const disk::PageIndexEntry& e : run.pages) {
    PutU64(out, e.min_key);
    PutU64(out, e.page);
    PutU32(out, e.tuple_count);
  }
  return out;
}

bool DecodeRun(Reader& in, RunRecord* run) {
  uint32_t is_private = 0;
  uint64_t num_pages = 0;
  if (!in.U32(&run->run_id) || !in.U32(&is_private) ||
      !in.U64(&run->content_checksum) || !in.U64(&num_pages)) {
    return false;
  }
  run->is_private = is_private != 0;
  if (num_pages > kMaxPayloadBytes / sizeof(disk::PageIndexEntry)) {
    return false;
  }
  run->pages.resize(num_pages);
  for (disk::PageIndexEntry& e : run->pages) {
    if (!in.U64(&e.min_key) || !in.U64(&e.page) || !in.U32(&e.tuple_count)) {
      return false;
    }
    e.run = run->run_id;
  }
  return in.Done();
}

std::string EncodeChunk(const ChunkRecord& chunk) {
  std::string out;
  PutU32(out, chunk.worker);
  PutU64(out, chunk.state.size());
  out.append(chunk.state);
  return out;
}

bool DecodeChunk(Reader& in, ChunkRecord* chunk) {
  uint64_t state_len = 0;
  if (!in.U32(&chunk->worker) || !in.U64(&state_len)) return false;
  if (state_len > kMaxPayloadBytes) return false;
  return in.Bytes(&chunk->state, state_len) && in.Done();
}

Status WriteAll(int fd, const char* data, size_t size) {
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("journal write: ") +
                             std::strerror(errno));
    }
    if (n == 0) return Status::IoError("journal write: no progress");
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status Fdatasync(int fd) {
  while (::fdatasync(fd) != 0) {
    if (errno == EINTR) continue;
    return Status::IoError(std::string("journal fdatasync: ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace

uint64_t Fnv1a(const void* data, size_t len, uint64_t seed) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint64_t hash = seed;
  for (size_t i = 0; i < len; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

uint64_t QueryFingerprint::Hash() const {
  const std::string encoded = EncodeFingerprint(*this);
  return Fnv1a(encoded.data(), encoded.size());
}

JoinJournal::JoinJournal(int fd, std::string path)
    : fd_(fd), path_(std::move(path)) {}

JoinJournal::~JoinJournal() {
  if (fd_ >= 0) {
    // Relaxed mode defers fdatasync; flush the tail at close so a
    // retained manifest is device-durable once the handle is gone.
    if (dirty_) (void)::fdatasync(fd_);
    ::close(fd_);
  }
}

Status JoinJournal::Sync() {
  std::lock_guard<std::mutex> guard(mu_);
  if (!dirty_) return Status::OK();
  MPSM_RETURN_NOT_OK(Fdatasync(fd_));
  dirty_ = false;
  return Status::OK();
}

void JoinJournal::Discard() {
  std::lock_guard<std::mutex> guard(mu_);
  dirty_ = false;
}

Result<std::unique_ptr<JoinJournal>> JoinJournal::Create(
    const std::string& path, const QueryFingerprint& fingerprint,
    bool strict_sync) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError(std::string("open ") + path + ": " +
                           std::strerror(errno));
  }
  auto journal = std::unique_ptr<JoinJournal>(new JoinJournal(fd, path));
  journal->strict_sync_ = strict_sync;
  std::lock_guard<std::mutex> guard(journal->mu_);
  MPSM_RETURN_NOT_OK(
      journal->AppendLocked(kTypeHeader, EncodeFingerprint(fingerprint)));
  journal->commits_ = 0;  // the header is not a commit
  return journal;
}

Result<std::unique_ptr<JoinJournal>> JoinJournal::OpenForAppend(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND, 0644);
  if (fd < 0) {
    return Status::IoError(std::string("open ") + path + ": " +
                           std::strerror(errno));
  }
  return std::unique_ptr<JoinJournal>(new JoinJournal(fd, path));
}

Status JoinJournal::AppendLocked(uint32_t type, const std::string& payload) {
  std::string frame;
  frame.reserve(payload.size() + 16);
  PutU32(frame, static_cast<uint32_t>(payload.size()));
  PutU32(frame, type);
  frame.append(payload);
  const uint64_t checksum =
      Fnv1a(payload.data(), payload.size(), Fnv1a(&type, sizeof(type)));
  PutU64(frame, checksum);
  MPSM_RETURN_NOT_OK(WriteAll(fd_, frame.data(), frame.size()));
  if (strict_sync_) {
    MPSM_RETURN_NOT_OK(Fdatasync(fd_));
  } else {
    dirty_ = true;
  }
  ++commits_;
  if (kill_after_commits_ != 0 && commits_ >= kill_after_commits_) {
    // Crash injection: die *after* the record is visible to a resume
    // (written to the page cache; in strict mode also device-durable),
    // so the resumed run must honor it (tools/crash_harness).
    ::kill(::getpid(), SIGKILL);
  }
  return Status::OK();
}

Status JoinJournal::CommitRun(const RunRecord& run) {
  std::lock_guard<std::mutex> guard(mu_);
  return AppendLocked(kTypeRun, EncodeRun(run));
}

Status JoinJournal::CommitChunk(const ChunkRecord& chunk) {
  std::lock_guard<std::mutex> guard(mu_);
  return AppendLocked(kTypeChunk, EncodeChunk(chunk));
}

uint64_t JoinJournal::commits() const {
  std::lock_guard<std::mutex> guard(mu_);
  return commits_;
}

Result<JoinJournal::Replay> JoinJournal::ReplayFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no manifest at " + path);
    }
    return Status::IoError(std::string("open ") + path + ": " +
                           std::strerror(errno));
  }

  // Slurp the whole file: manifests are a few records per worker, tiny
  // next to the spool they describe.
  std::string raw;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status st = Status::IoError(std::string("journal read: ") +
                                        std::strerror(errno));
      ::close(fd);
      return st;
    }
    if (n == 0) break;
    raw.append(buf, static_cast<size_t>(n));
  }

  Replay replay;
  size_t pos = 0;
  bool saw_header = false;
  bool torn = false;
  while (pos < raw.size()) {
    const size_t record_start = pos;
    uint32_t payload_len = 0;
    uint32_t type = 0;
    uint64_t stored_checksum = 0;
    if (raw.size() - pos < sizeof(payload_len) + sizeof(type)) {
      torn = true;
      break;
    }
    std::memcpy(&payload_len, raw.data() + pos, sizeof(payload_len));
    pos += sizeof(payload_len);
    std::memcpy(&type, raw.data() + pos, sizeof(type));
    pos += sizeof(type);
    if (payload_len > kMaxPayloadBytes ||
        raw.size() - pos < payload_len + sizeof(stored_checksum)) {
      torn = true;
      pos = record_start;
      break;
    }
    const char* payload = raw.data() + pos;
    pos += payload_len;
    std::memcpy(&stored_checksum, raw.data() + pos, sizeof(stored_checksum));
    pos += sizeof(stored_checksum);
    const uint64_t computed =
        Fnv1a(payload, payload_len, Fnv1a(&type, sizeof(type)));
    if (computed != stored_checksum) {
      torn = true;
      pos = record_start;
      break;
    }

    Reader in(payload, payload_len);
    bool ok = true;
    switch (type) {
      case kTypeHeader:
        ok = DecodeFingerprint(in, &replay.fingerprint) && in.Done() &&
             !saw_header;
        saw_header = saw_header || ok;
        break;
      case kTypeRun: {
        RunRecord run;
        ok = DecodeRun(in, &run);
        if (ok) replay.runs.push_back(std::move(run));
        break;
      }
      case kTypeChunk: {
        ChunkRecord chunk;
        ok = DecodeChunk(in, &chunk);
        if (ok) replay.chunks.push_back(std::move(chunk));
        break;
      }
      default:
        // An unknown type with a valid checksum is a format from the
        // future, not corruption; treat it as the end of what this
        // build understands.
        ok = false;
        break;
    }
    if (!ok) {
      torn = true;
      pos = record_start;
      break;
    }
  }

  if (!saw_header) {
    // Distinguishable from real device errors: the caller treats a
    // headerless manifest as stale garbage and falls back cold.
    ::close(fd);
    return Status::InvalidArgument("manifest at " + path +
                                   " has no valid header");
  }

  replay.tail_truncated = torn || pos < raw.size();
  replay.valid_bytes = pos;
  if (replay.tail_truncated) {
    // Truncate the torn tail in place so a later crash + replay sees a
    // clean record boundary (truncate-and-resume, never fatal).
    while (::ftruncate(fd, static_cast<off_t>(pos)) != 0) {
      if (errno == EINTR) continue;
      const Status st = Status::IoError(std::string("journal truncate: ") +
                                        std::strerror(errno));
      ::close(fd);
      return st;
    }
    if (Status st = Fdatasync(fd); !st.ok()) {
      ::close(fd);
      return st;
    }
  }
  ::close(fd);
  return replay;
}

void JoinJournal::Remove(const std::string& path) {
  ::unlink(path.c_str());
}

}  // namespace mpsm::recovery

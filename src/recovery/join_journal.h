// JoinJournal: the durable per-query manifest that makes long spilled
// joins restartable (docs/recovery.md).
//
// One append-only file per query records, in commit order:
//   1. a header fingerprinting the query (input relation ids/versions/
//      sizes, join kind, team size, page geometry) so a restarted
//      process can tell whether durable state still matches,
//   2. one record per spooled run — its page ids, per-page min keys and
//      tuple counts (enough to rebuild the S page index without
//      touching the data), and a checksum over the run's tuple content,
//   3. one record per completed phase-4 chunk walk — the worker id and
//      its consumer's serialized state.
//
// Commit discipline: a record is appended and fdatasync'd only after
// the state it describes is itself durable (the buffer pool's
// write-back for the run's pages has retired and the spool fd has been
// fdatasync'd through the IoScheduler's write barrier). The invariant
// that buys: *every prefix of the journal references only durable
// spool state*, so an arbitrary crash point is equivalent to some
// record-prefix of the file, and truncating the journal simulates any
// crash.
//
// Every record is framed [u32 payload_len][u32 type][payload]
// [u64 fnv1a(type + payload)]. Replay walks the frames and treats the
// first short or checksum-failing frame as a torn tail: the file is
// truncated to the last valid record and the valid prefix is returned
// — a torn tail is an expected crash artifact, never an error. Only a
// missing or corrupt *header* fails replay (the caller then falls back
// to a cold run).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "disk/page_index.h"
#include "util/status.h"

namespace mpsm::recovery {

/// Identity of one join query for crash recovery: durable state is
/// resumable only when every field matches the restarted query.
struct QueryFingerprint {
  uint64_t r_id = 0;
  uint64_t r_version = 0;
  uint64_t r_tuples = 0;
  uint64_t s_id = 0;
  uint64_t s_version = 0;
  uint64_t s_tuples = 0;
  uint32_t join_kind = 0;
  uint32_t team_size = 0;
  uint64_t tuples_per_page = 0;

  /// Stable 64-bit digest (names the journal/spool files on disk).
  uint64_t Hash() const;

  friend bool operator==(const QueryFingerprint&,
                         const QueryFingerprint&) = default;
};

/// One durably spooled run: everything needed to re-attach it without
/// re-sorting. `pages` is in spool order (ascending key); each entry's
/// `run` field equals `run_id`. `content_checksum` is fnv1a over the
/// run's sorted tuple bytes (verified on resume when the caller opts
/// in).
struct RunRecord {
  uint32_t run_id = 0;
  bool is_private = false;
  uint64_t content_checksum = 0;
  std::vector<disk::PageIndexEntry> pages;
};

/// One completed phase-4 chunk walk: worker `worker`'s consumer state
/// at walk completion (DurableConsumerFactory::SerializeWorker).
struct ChunkRecord {
  uint32_t worker = 0;
  std::string state;
};

/// fnv1a-64 over `len` bytes, continuing from `seed` (exposed so the
/// spool path can checksum run content incrementally).
uint64_t Fnv1a(const void* data, size_t len,
               uint64_t seed = 0xcbf29ce484222325ull);

/// Append side of the manifest. Thread-safe: workers commit their runs
/// and chunks concurrently; each Commit* call is one atomic
/// append+fdatasync under an internal latch.
class JoinJournal {
 public:
  /// Starts a fresh manifest at `path` (truncating any stale one) and
  /// writes the fingerprint header before returning — device-durably
  /// under `strict_sync`, else deferred with the same group-commit
  /// policy as the records (an unsynced header just means a power cut
  /// before the first sync falls back to a cold run).
  static Result<std::unique_ptr<JoinJournal>> Create(
      const std::string& path, const QueryFingerprint& fingerprint,
      bool strict_sync = true);

  /// Reopens an existing (replayed and validated) manifest for
  /// appending — the resume path keeps extending the same file.
  static Result<std::unique_ptr<JoinJournal>> OpenForAppend(
      const std::string& path);

  ~JoinJournal();
  JoinJournal(const JoinJournal&) = delete;
  JoinJournal& operator=(const JoinJournal&) = delete;

  /// Durably appends one spooled-run record. Call only after the run's
  /// pages are themselves durable (FlushUpTo + scheduler flush).
  Status CommitRun(const RunRecord& run);

  /// Durably appends one chunk-completion record.
  Status CommitChunk(const ChunkRecord& chunk);

  /// Records durably appended through this handle (header excluded).
  uint64_t commits() const;

  /// Per-commit fdatasync policy. Strict (the default) makes every
  /// Commit* power-loss durable before it returns. Relaxed defers the
  /// fdatasync to Sync()/close (group commit): records are appended
  /// with plain writes — visible to a resume after a process kill (the
  /// OS page cache survives SIGKILL) but a power cut may lose the
  /// un-synced tail, which resume treats as ordinary lost work. The
  /// D-MPSM spill path runs relaxed by default
  /// (DMpsmRecoveryOptions::strict_sync) — the per-query overhead
  /// budget cannot afford ~20 device flushes.
  void set_strict_sync(bool strict) { strict_sync_ = strict; }

  /// Flushes any deferred appends to the device (relaxed mode).
  Status Sync();

  /// Marks the journal as about-to-be-retired: the destructor skips
  /// the deferred-sync flush (no point making a file durable right
  /// before unlinking it).
  void Discard();

  /// Crash-injection hook (tools/crash_harness): SIGKILL this process
  /// immediately after the n-th successful commit is appended (and, in
  /// strict mode, fdatasync'd). 0 disables. The kill lands *after* the
  /// record is visible to a restarted process, so the resumed run must
  /// be able to use it.
  void set_kill_after_commits(uint64_t n) { kill_after_commits_ = n; }

  /// A replayed manifest: the validated prefix of one journal file.
  struct Replay {
    QueryFingerprint fingerprint;
    std::vector<RunRecord> runs;
    std::vector<ChunkRecord> chunks;
    /// True when a torn/corrupt tail was truncated away.
    bool tail_truncated = false;
    /// File size after truncation (the valid prefix).
    uint64_t valid_bytes = 0;
  };

  /// Replays `path`. NotFound when no manifest exists; any torn or
  /// corrupt tail is truncated in place and reported via
  /// `tail_truncated` (resume continues from the valid prefix). A
  /// missing/corrupt header is InvalidArgument — the caller treats the
  /// file as stale garbage and falls back to a cold run.
  static Result<Replay> ReplayFile(const std::string& path);

  /// Deletes the manifest file (query completed; durable state retired).
  static void Remove(const std::string& path);

 private:
  JoinJournal(int fd, std::string path);

  Status AppendLocked(uint32_t type, const std::string& payload);

  const int fd_;
  const std::string path_;
  mutable std::mutex mu_;
  uint64_t commits_ = 0;
  uint64_t kill_after_commits_ = 0;
  bool strict_sync_ = true;
  /// Appended-but-not-fdatasync'd bytes pending (relaxed mode).
  bool dirty_ = false;
};

}  // namespace mpsm::recovery

// RecoveryManager: discovery and validation of durable join state
// (docs/recovery.md).
//
// The manager maps a query fingerprint to its two on-disk artifacts —
// the manifest (JoinJournal) and the persistent spool file — replays
// and validates the manifest, and assembles a ResumeState the D-MPSM
// executor consumes: which spooled runs can be re-attached without
// re-sorting, which phase-4 chunk walks are already complete, and how
// many spool pages the restarted PageStore must adopt.
//
// Validation is strict and failure is always soft: a missing manifest,
// a fingerprint/version mismatch, or an implausible record each
// degrade to a cold run (stale artifacts are removed so they cannot be
// matched again); only a torn tail is *repaired* (truncated) and
// resumed past. The executor therefore never sees invalid state — a
// ResumeState either re-attaches verified durable work or is empty.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "recovery/join_journal.h"
#include "storage/relation.h"
#include "util/status.h"

namespace mpsm::recovery {

/// Validated durable state for one restarted query. Default-constructed
/// = cold start (nothing to re-attach).
struct ResumeState {
  /// Per-worker re-attachable spooled runs (slot w empty when worker
  /// w's run did not make it to the manifest before the crash).
  std::vector<std::optional<RunRecord>> public_runs;
  std::vector<std::optional<RunRecord>> private_runs;
  /// Per-worker serialized consumer state of completed phase-4 walks.
  std::vector<std::optional<std::string>> chunk_states;
  /// Page ids [0, adopted_pages) of the spool file hold durable data
  /// referenced above; the restarted PageStore adopts them.
  uint64_t adopted_pages = 0;
  /// A torn/corrupt manifest tail was truncated during replay.
  bool tail_truncated = false;

  /// True when any durable work can be skipped on resume.
  bool HasWork() const;
};

/// How the manager finds and checks durable state.
struct RecoveryManagerOptions {
  /// Directory holding manifests and persistent spool files.
  std::string dir = "/tmp";
  /// Re-read every re-attachable run from the spool file and verify its
  /// content checksum; mismatching runs are dropped from the
  /// ResumeState (re-spooled instead). Costs one full read of the
  /// durable runs — tests and paranoid deployments.
  bool verify_runs = false;
  /// Spool page geometry (must match the query's DMpsmOptions;
  /// verify_runs decodes pages with it).
  size_t tuples_per_page = 4096;
};

/// Fingerprint of a D-MPSM join of `r` (private) with `s` (public) on
/// `team_size` workers. D-MPSM is inner-only, so the kind is fixed.
QueryFingerprint FingerprintFor(const Relation& r, const Relation& s,
                                uint32_t team_size, size_t tuples_per_page);

class RecoveryManager {
 public:
  explicit RecoveryManager(RecoveryManagerOptions options);

  /// Artifact paths for `fp` (derived from its hash; stable across
  /// restarts of the same query).
  std::string JournalPath(const QueryFingerprint& fp) const;
  std::string SpoolPath(const QueryFingerprint& fp) const;

  /// Replays and validates the manifest for `fp`. No manifest, or a
  /// manifest whose header does not match `fp`, yields an empty (cold)
  /// ResumeState — never an error; stale mismatching artifacts are
  /// removed. I/O errors reading an existing manifest do surface.
  Result<ResumeState> Load(const QueryFingerprint& fp);

  /// Deletes both artifacts (the query completed; its durable state is
  /// retired).
  void Retire(const QueryFingerprint& fp) const;

  const RecoveryManagerOptions& options() const { return options_; }

 private:
  /// Drops runs whose spool content no longer matches their recorded
  /// checksum (options_.verify_runs).
  void VerifyRuns(const QueryFingerprint& fp, ResumeState& state) const;

  RecoveryManagerOptions options_;
};

}  // namespace mpsm::recovery

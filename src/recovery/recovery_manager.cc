#include "recovery/recovery_manager.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/tuple.h"

namespace mpsm::recovery {

namespace {

obs::Counter& ResumeCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().counter(
      "mpsm_recovery_resumes_total",
      "Queries that re-attached durable state from a manifest");
  return c;
}
obs::Counter& ColdFallbackCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().counter(
      "mpsm_recovery_cold_fallbacks_total",
      "Manifests rejected (fingerprint/version/header mismatch) in favor "
      "of a cold run");
  return c;
}
obs::Counter& TornTailCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().counter(
      "mpsm_recovery_torn_tails_total",
      "Torn/corrupt manifest tails truncated during replay");
  return c;
}
obs::Counter& RunsDroppedCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().counter(
      "mpsm_recovery_runs_dropped_total",
      "Recorded runs rejected at resume (implausible record or content "
      "checksum mismatch)");
  return c;
}

std::string HexHash(uint64_t hash) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

/// A run record is plausible when it could have been written by this
/// query: a legal worker id, at least one page, legal per-page counts,
/// and non-decreasing min keys (runs are spooled in sorted order).
bool PlausibleRun(const RunRecord& run, const QueryFingerprint& fp) {
  if (run.run_id >= fp.team_size || run.pages.empty()) return false;
  uint64_t prev_key = 0;
  for (const disk::PageIndexEntry& e : run.pages) {
    if (e.tuple_count == 0 || e.tuple_count > fp.tuples_per_page) {
      return false;
    }
    if (e.min_key < prev_key) return false;
    prev_key = e.min_key;
  }
  return true;
}

}  // namespace

bool ResumeState::HasWork() const {
  for (const auto& run : public_runs) {
    if (run.has_value()) return true;
  }
  for (const auto& run : private_runs) {
    if (run.has_value()) return true;
  }
  for (const auto& state : chunk_states) {
    if (state.has_value()) return true;
  }
  return false;
}

QueryFingerprint FingerprintFor(const Relation& r, const Relation& s,
                                uint32_t team_size, size_t tuples_per_page) {
  QueryFingerprint fp;
  fp.r_id = r.id();
  fp.r_version = r.version();
  fp.r_tuples = r.size();
  fp.s_id = s.id();
  fp.s_version = s.version();
  fp.s_tuples = s.size();
  fp.join_kind = 0;  // D-MPSM is inner-only
  fp.team_size = team_size;
  fp.tuples_per_page = tuples_per_page;
  return fp;
}

RecoveryManager::RecoveryManager(RecoveryManagerOptions options)
    : options_(std::move(options)) {}

std::string RecoveryManager::JournalPath(const QueryFingerprint& fp) const {
  return options_.dir + "/mpsm_manifest_" + HexHash(fp.Hash()) + ".jnl";
}

std::string RecoveryManager::SpoolPath(const QueryFingerprint& fp) const {
  return options_.dir + "/mpsm_spool_" + HexHash(fp.Hash()) + ".pages";
}

Result<ResumeState> RecoveryManager::Load(const QueryFingerprint& fp) {
  obs::TraceSpan span(obs::kCatRecovery, "recovery.load");
  ResumeState state;
  state.public_runs.resize(fp.team_size);
  state.private_runs.resize(fp.team_size);
  state.chunk_states.resize(fp.team_size);

  auto replay = JoinJournal::ReplayFile(JournalPath(fp));
  if (!replay.ok()) {
    if (replay.status().code() == StatusCode::kNotFound) {
      return state;  // first run of this query: cold, nothing stale
    }
    if (replay.status().code() == StatusCode::kInvalidArgument) {
      // Headerless garbage at our path: retire it so it cannot shadow
      // future manifests, then run cold.
      ColdFallbackCounter().Add();
      obs::TraceInstant(obs::kCatRecovery, "recovery.cold_fallback");
      Retire(fp);
      return state;
    }
    return replay.status();
  }

  if (replay->tail_truncated) {
    TornTailCounter().Add();
    obs::TraceInstant(obs::kCatRecovery, "recovery.torn_tail_truncated");
    state.tail_truncated = true;
  }

  if (!(replay->fingerprint == fp)) {
    // The inputs changed (relation version bump, different team size or
    // geometry): every durable artifact is stale. Cold run.
    ColdFallbackCounter().Add();
    obs::TraceInstant(obs::kCatRecovery, "recovery.cold_fallback");
    Retire(fp);
    return state;
  }

  uint64_t max_page = 0;
  bool any_pages = false;
  for (RunRecord& run : replay->runs) {
    if (!PlausibleRun(run, fp)) {
      RunsDroppedCounter().Add();
      continue;
    }
    for (const disk::PageIndexEntry& e : run.pages) {
      max_page = std::max(max_page, e.page);
    }
    any_pages = true;
    auto& slot = run.is_private ? state.private_runs[run.run_id]
                                : state.public_runs[run.run_id];
    slot = std::move(run);  // duplicate records: last wins
  }
  state.adopted_pages = any_pages ? max_page + 1 : 0;

  for (ChunkRecord& chunk : replay->chunks) {
    if (chunk.worker >= fp.team_size) continue;
    state.chunk_states[chunk.worker] = std::move(chunk.state);
  }

  // The spool file must be able to contain every recorded page; a
  // missing or short spool means the manifest outlived its data (e.g.
  // manual cleanup) and nothing is re-attachable.
  if (state.adopted_pages > 0) {
    const uint64_t page_bytes =
        fp.tuples_per_page * sizeof(Tuple) + sizeof(uint64_t);
    struct stat st{};
    if (::stat(SpoolPath(fp).c_str(), &st) != 0 ||
        static_cast<uint64_t>(st.st_size) < state.adopted_pages * page_bytes) {
      ColdFallbackCounter().Add();
      obs::TraceInstant(obs::kCatRecovery, "recovery.cold_fallback");
      Retire(fp);
      return ResumeState{};
    }
  }

  if (options_.verify_runs) VerifyRuns(fp, state);

  if (state.HasWork()) {
    ResumeCounter().Add();
    obs::TraceInstant(obs::kCatRecovery, "recovery.resume");
  }
  return state;
}

void RecoveryManager::VerifyRuns(const QueryFingerprint& fp,
                                 ResumeState& state) const {
  obs::TraceSpan span(obs::kCatRecovery, "recovery.verify_runs");
  const size_t page_bytes =
      fp.tuples_per_page * sizeof(Tuple) + sizeof(uint64_t);
  const int fd = ::open(SpoolPath(fp).c_str(), O_RDONLY);
  if (fd < 0) {
    // Already stat-checked above; a racing removal drops everything.
    for (auto& run : state.public_runs) run.reset();
    for (auto& run : state.private_runs) run.reset();
    return;
  }
  std::vector<char> page(page_bytes);
  auto verify_one = [&](const RunRecord& run) {
    // Checksum 0 means the producer opted out of content checksums
    // (DMpsmRecoveryOptions::checksum_runs); the structural ladder in
    // Load already validated the run, so keep it.
    if (run.content_checksum == 0) return true;
    uint64_t checksum = 0xcbf29ce484222325ull;
    for (const disk::PageIndexEntry& e : run.pages) {
      size_t done = 0;
      while (done < page_bytes) {
        const ssize_t n =
            ::pread(fd, page.data() + done, page_bytes - done,
                    static_cast<off_t>(e.page * page_bytes + done));
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) return false;
        done += static_cast<size_t>(n);
      }
      uint64_t stored_count = 0;
      std::memcpy(&stored_count, page.data(), sizeof(stored_count));
      if (stored_count != e.tuple_count) return false;
      checksum = Fnv1a(page.data() + sizeof(stored_count),
                       stored_count * sizeof(Tuple), checksum);
    }
    return checksum == run.content_checksum;
  };
  for (auto* runs : {&state.public_runs, &state.private_runs}) {
    for (auto& run : *runs) {
      if (run.has_value() && !verify_one(*run)) {
        RunsDroppedCounter().Add();
        run.reset();
      }
    }
  }
  ::close(fd);
}

void RecoveryManager::Retire(const QueryFingerprint& fp) const {
  JoinJournal::Remove(JournalPath(fp));
  ::unlink(SpoolPath(fp).c_str());
}

}  // namespace mpsm::recovery

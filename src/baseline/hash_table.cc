#include "baseline/hash_table.h"

#include "util/bits.h"

namespace mpsm::baseline {

ChainedHashTable::ChainedHashTable(size_t expected, uint32_t num_nodes,
                                   size_t latch_stripes)
    : num_nodes_(num_nodes == 0 ? 1 : num_nodes) {
  // At least two buckets so the bucket shift stays below 64 bits.
  const size_t buckets = bits::NextPowerOfTwo(std::max<size_t>(expected, 2));
  buckets_ = std::vector<std::atomic<Entry*>>(buckets);
  for (auto& bucket : buckets_) {
    bucket.store(nullptr, std::memory_order_relaxed);
  }
  shift_ = 64 - bits::Log2Floor(buckets);

  const size_t stripes =
      bits::NextPowerOfTwo(std::min(latch_stripes, buckets));
  latches_ = std::make_unique<std::atomic_flag[]>(stripes);
  for (size_t i = 0; i < stripes; ++i) latches_[i].clear();
  latch_mask_ = stripes - 1;
}

void ChainedHashTable::Insert(Entry* entry, numa::NodeId worker_node,
                              PerfCounters* counters) {
  const size_t bucket = BucketOf(entry->key);
  std::atomic_flag& latch = latches_[bucket & latch_mask_];
  while (latch.test_and_set(std::memory_order_acquire)) {
    // Spin: the Wisconsin join uses test-and-set bucket latches.
  }
  entry->next = buckets_[bucket].load(std::memory_order_relaxed);
  buckets_[bucket].store(entry, std::memory_order_release);
  latch.clear(std::memory_order_release);

  if (counters != nullptr) {
    ++counters->sync_acquisitions;
    ++counters->hash_inserts;
    CountInterleavedAccess(counters, worker_node,
                           sizeof(Entry*) + sizeof(Entry),
                           /*is_write=*/true);
  }
}

void ChainedHashTable::CountInterleavedAccess(PerfCounters* counters,
                                              numa::NodeId worker_node,
                                              uint64_t bytes,
                                              bool is_write) const {
  (void)worker_node;
  // Page-interleaved placement: a uniform random access is local with
  // probability 1/num_nodes.
  const uint64_t local = bytes / num_nodes_;
  const uint64_t remote = bytes - local;
  if (is_write) {
    counters->CountWrite(/*local=*/true, /*sequential=*/false, local);
    counters->CountWrite(/*local=*/false, /*sequential=*/false, remote);
  } else {
    counters->CountRead(/*local=*/true, /*sequential=*/false, local);
    counters->CountRead(/*local=*/false, /*sequential=*/false, remote);
  }
}

}  // namespace mpsm::baseline

#include "baseline/radix_join.h"

#include <memory>
#include <vector>

#include "baseline/hash_table.h"
#include "parallel/task_scheduler.h"
#include "partition/prefix_scatter.h"
#include "simd/histogram_kernels.h"
#include "util/bits.h"
#include "util/timer.h"

namespace mpsm::baseline {

namespace {

/// Radix digit of a key for a partitioning pass: `bit_count` bits of
/// the key's hash starting at `bit_offset` from the top.
inline uint32_t HashDigit(uint64_t key, uint32_t bit_offset,
                          uint32_t bit_count) {
  return static_cast<uint32_t>((HashKey(key) << bit_offset) >>
                               (64 - bit_count));
}

/// Node that owns partition p under block-cyclic placement.
inline numa::NodeId PartitionNode(uint32_t p, uint32_t num_nodes) {
  return p % num_nodes;
}

/// A borrowed slice of tuples.
struct Slice {
  const Tuple* data;
  size_t size;
};

/// Fragment-local chained hash join: build on `r`, probe with `s`.
void FragmentHashJoin(Slice r, Slice s, JoinConsumer& consumer,
                      PerfCounters& counters,
                      std::vector<int32_t>& heads_scratch,
                      std::vector<int32_t>& next_scratch) {
  if (r.size == 0 || s.size == 0) return;
  const size_t bucket_count = bits::NextPowerOfTwo(2 * r.size);
  const uint64_t mask = bucket_count - 1;
  heads_scratch.assign(bucket_count, -1);
  next_scratch.resize(r.size);

  for (size_t i = 0; i < r.size; ++i) {
    const uint64_t b = HashKey(r.data[i].key) & mask;
    next_scratch[i] = heads_scratch[b];
    heads_scratch[b] = static_cast<int32_t>(i);
  }
  counters.hash_inserts += r.size;

  for (size_t j = 0; j < s.size; ++j) {
    const Tuple& probe = s.data[j];
    for (int32_t i = heads_scratch[HashKey(probe.key) & mask]; i >= 0;
         i = next_scratch[i]) {
      if (r.data[i].key == probe.key) {
        consumer.OnMatch(r.data[i], &probe, 1);
        ++counters.output_tuples;
      }
    }
  }
  counters.hash_probes += s.size;
  // Fragments are cache-sized by construction; charge one sequential
  // pass over both fragments.
  counters.CountRead(/*local=*/true, /*sequential=*/true,
                     (r.size + s.size) * sizeof(Tuple));
}

}  // namespace

Status RadixJoinOptions::Validate() const {
  if (pass1_bits == 0 && pass2_bits != 0) {
    return Status::InvalidArgument(
        "pass2_bits requires explicit pass1_bits (pass1_bits == 0 "
        "selects auto for both passes)");
  }
  // 2^(B1+B2) fragment headers: beyond 24 total bits the partition
  // metadata dwarfs the data being joined.
  if (pass1_bits > 16) {
    return Status::InvalidArgument("pass1_bits must be <= 16");
  }
  if (pass1_bits + pass2_bits > 24) {
    return Status::InvalidArgument("pass1_bits + pass2_bits must be <= 24");
  }
  if (target_fragment_tuples == 0) {
    return Status::InvalidArgument("target_fragment_tuples must be >= 1");
  }
  return Status::OK();
}

std::pair<uint32_t, uint32_t> RadixHashJoin::EffectiveBits(
    size_t r_size) const {
  if (options_.pass1_bits != 0) {
    return {options_.pass1_bits, options_.pass2_bits};
  }
  const uint64_t fragments =
      bits::CeilDiv(std::max<size_t>(r_size, 1),
                    options_.target_fragment_tuples);
  uint32_t total = bits::Log2Ceil(std::max<uint64_t>(fragments, 2));
  total = std::min(total, 22u);
  // TLB-friendly first pass: at most 11 bits (2048 open write streams).
  const uint32_t pass1 = std::min(total, 11u);
  return {pass1, total - pass1};
}

Result<JoinRunInfo> RadixHashJoin::Execute(WorkerTeam& team,
                                           const Relation& r_build,
                                           const Relation& s_probe,
                                           ConsumerFactory& consumers) const {
  const uint32_t num_workers = team.size();
  if (r_build.num_chunks() != num_workers ||
      s_probe.num_chunks() != num_workers) {
    return Status::InvalidArgument(
        "relations must be chunked into team.size() chunks");
  }
  const auto [pass1_bits, pass2_bits] = EffectiveBits(r_build.size());
  const uint32_t p1 = 1u << pass1_bits;
  const uint32_t p2 = pass2_bits == 0 ? 1 : 1u << pass2_bits;
  const uint32_t num_nodes = team.topology().num_nodes();

  // Pass-1 output: one contiguous array per relation, partitions laid
  // out back to back (offsets from the scatter plan).
  std::vector<Tuple> r_out(r_build.size());
  std::vector<Tuple> s_out(s_probe.size());
  std::vector<std::vector<uint64_t>> r_hist(num_workers),
      s_hist(num_workers);
  ScatterPlan r_plan, s_plan;
  std::vector<uint64_t> r_part_offset(p1 + 1, 0), s_part_offset(p1 + 1, 0);

  // Per-worker pass-2 scratch (reused across claimed partitions).
  std::vector<std::vector<Tuple>> r_local(num_workers), s_local(num_workers);
  std::vector<std::vector<uint64_t>> r_sub(num_workers,
                                           std::vector<uint64_t>(p2 + 1)),
      s_sub(num_workers, std::vector<uint64_t>(p2 + 1));
  std::vector<std::vector<int32_t>> heads_scratch(num_workers),
      next_scratch(num_workers);

  const auto chunk_morsels = [num_workers] { return ChunkMorsels(num_workers); };

  PhasePipeline pipeline(team.topology(), num_workers, options_.scheduler);

  // ---------------- pass 1: histograms ----------------
  pipeline.AddPhase(
      kPhasePartition, chunk_morsels,
      [&](WorkerContext& ctx, const Morsel& morsel) {
        const uint32_t w = morsel.task;
        PerfCounters& counters = ctx.Counters(kPhasePartition);
        auto histogram = [&](const Chunk& chunk) {
          std::vector<uint64_t> h(p1, 0);
          simd::HashDigitHistogram(chunk.data, chunk.size, kHashMultiplier,
                                   /*bit_offset=*/0, pass1_bits, h.data(),
                                   options_.simd);
          counters.CountRead(chunk.node == ctx.node, /*sequential=*/true,
                             chunk.size * sizeof(Tuple));
          return h;
        };
        r_hist[w] = histogram(r_build.chunk(w));
        s_hist[w] = histogram(s_probe.chunk(w));
      });

  pipeline.AddSerial(kPhasePartition, [&](WorkerContext&) {
    r_plan = ComputeScatterPlan(r_hist);
    s_plan = ComputeScatterPlan(s_hist);
    for (uint32_t p = 0; p < p1; ++p) {
      r_part_offset[p + 1] = r_part_offset[p] + r_plan.partition_sizes[p];
      s_part_offset[p + 1] = s_part_offset[p] + s_plan.partition_sizes[p];
    }
  });

  // ---------------- pass 1: scatter (cross-NUMA) ----------------
  // Writes hop between 2^B1 open streams spread over all nodes — the
  // non-local partitioning the paper criticizes (Figure 2b). Plan rows
  // are per source chunk, so a stolen scatter morsel still writes only
  // chunk w's precomputed target ranges.
  pipeline.AddPhase(
      kPhasePartition, chunk_morsels,
      [&](WorkerContext& ctx, const Morsel& morsel) {
        const uint32_t w = morsel.task;
        PerfCounters& counters = ctx.Counters(kPhasePartition);
        auto scatter = [&](const Chunk& chunk, const ScatterPlan& plan,
                           const std::vector<uint64_t>& part_offset,
                           std::vector<Tuple>& out) {
          std::vector<Tuple*> dest(p1);
          std::vector<uint64_t> cursor(p1);
          for (uint32_t p = 0; p < p1; ++p) {
            dest[p] = out.data() + part_offset[p];
            cursor[p] = plan.start_offset[w][p];
          }
          const ScatterKind scatter_kind =
              ResolveScatterKind(options_.scatter, chunk.size, p1);
          ScatterChunkWith(
              scatter_kind, chunk.data, chunk.size,
              [&](uint64_t key) { return HashDigit(key, 0, pass1_bits); },
              dest.data(), cursor.data(), p1);
          counters.CountRead(chunk.node == ctx.node, /*sequential=*/true,
                             chunk.size * sizeof(Tuple));
          // Scalar pass-1 writes hop between 2^B1 streams (random
          // rate); write combining batches them into line bursts
          // (sequential).
          const bool combined_writes =
              scatter_kind == ScatterKind::kWriteCombining;
          for (uint32_t p = 0; p < p1; ++p) {
            const uint64_t written = cursor[p] - plan.start_offset[w][p];
            counters.CountWrite(PartitionNode(p, num_nodes) == ctx.node,
                                /*sequential=*/combined_writes,
                                written * sizeof(Tuple));
          }
        };
        scatter(r_build.chunk(w), r_plan, r_part_offset, r_out);
        scatter(s_probe.chunk(w), s_plan, s_part_offset, s_out);
      });

  // ------- pass 2 (local sub-partitioning) + fragment joins -------
  // One morsel per pass-1 partition, homed on a worker of the node that
  // owns the partition (block-cyclic placement): the scheduler hands
  // each node its local partitions first and lets idle workers steal —
  // the legacy atomic task counter, upgraded with locality.
  std::vector<std::vector<uint32_t>> node_workers(
      team.topology().num_nodes());
  for (uint32_t w = 0; w < num_workers; ++w) {
    node_workers[team.topology().NodeForWorker(w, num_workers)].push_back(w);
  }
  pipeline.AddPhase(
      kPhaseJoin,
      [&] {
        std::vector<Morsel> morsels;
        morsels.reserve(p1);
        for (uint32_t p = 0; p < p1; ++p) {
          const auto& owners = node_workers[PartitionNode(p, num_nodes)];
          const uint32_t home = owners.empty()
                                    ? p % num_workers
                                    : owners[(p / num_nodes) % owners.size()];
          morsels.push_back(Morsel{home, p, 0, 0});
        }
        return morsels;
      },
      [&](WorkerContext& ctx, const Morsel& morsel) {
        const uint32_t w = ctx.worker_id;
        const uint32_t p = morsel.task;
        JoinConsumer& consumer = consumers.ConsumerForWorker(w);

        const Slice r_part{r_out.data() + r_part_offset[p],
                           r_part_offset[p + 1] - r_part_offset[p]};
        const Slice s_part{s_out.data() + s_part_offset[p],
                           s_part_offset[p + 1] - s_part_offset[p]};
        const bool part_local = PartitionNode(p, num_nodes) == ctx.node;

        if (pass2_bits == 0) {
          PhaseScope scope(ctx, kPhaseJoin);
          PerfCounters& counters = ctx.Counters(kPhaseJoin);
          counters.CountRead(part_local, /*sequential=*/true,
                             (r_part.size + s_part.size) * sizeof(Tuple));
          FragmentHashJoin(r_part, s_part, consumer, counters,
                           heads_scratch[w], next_scratch[w]);
          return;
        }

        // Local second pass: copy into worker-local scratch grouped by
        // the next B2 hash bits (sequential local writes).
        {
          PhaseScope scope(ctx, kPhaseSortPrivate);
          PerfCounters& counters = ctx.Counters(kPhaseSortPrivate);
          auto subpartition = [&](const Slice& part,
                                  std::vector<Tuple>& local,
                                  std::vector<uint64_t>& sub_offset) {
            local.resize(part.size);
            std::vector<uint64_t> h(p2, 0);
            simd::HashDigitHistogram(part.data, part.size, kHashMultiplier,
                                     pass1_bits, pass2_bits, h.data(),
                                     options_.simd);
            sub_offset[0] = 0;
            for (uint32_t b = 0; b < p2; ++b) {
              sub_offset[b + 1] = sub_offset[b] + h[b];
            }
            std::vector<uint64_t> cursor(sub_offset.begin(),
                                         sub_offset.end() - 1);
            for (size_t i = 0; i < part.size; ++i) {
              const uint32_t b =
                  HashDigit(part.data[i].key, pass1_bits, pass2_bits);
              local[cursor[b]++] = part.data[i];
            }
            counters.CountRead(part_local, /*sequential=*/true,
                               2 * part.size * sizeof(Tuple));
            counters.CountWrite(/*local=*/true, /*sequential=*/true,
                                part.size * sizeof(Tuple));
          };
          subpartition(r_part, r_local[w], r_sub[w]);
          subpartition(s_part, s_local[w], s_sub[w]);
        }

        {
          PhaseScope scope(ctx, kPhaseJoin);
          PerfCounters& counters = ctx.Counters(kPhaseJoin);
          for (uint32_t b = 0; b < p2; ++b) {
            FragmentHashJoin(
                Slice{r_local[w].data() + r_sub[w][b],
                      r_sub[w][b + 1] - r_sub[w][b]},
                Slice{s_local[w].data() + s_sub[w][b],
                      s_sub[w][b + 1] - s_sub[w][b]},
                consumer, counters, heads_scratch[w], next_scratch[w]);
          }
        }
      },
      // Self-timed: the body splits its time between the pass-2 slot
      // and the join slot, mirroring the legacy per-task PhaseScopes.
      // Claims (the former explicit sync_acquisitions) are charged to
      // the join slot by the scheduler.
      PhasePipeline::PhaseOptions{.self_timed = true});

  WallTimer timer;
  pipeline.Run(team, /*phase_barriers=*/true);
  return CollectRunInfo(team, timer.ElapsedSeconds());
}

}  // namespace mpsm::baseline

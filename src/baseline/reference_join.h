// Single-threaded reference join: the test oracle.
//
// A straightforward std::sort-based sort-merge join supporting all join
// kinds. Slow and simple on purpose — every parallel algorithm in the
// library is validated against it.
#pragma once

#include <vector>

#include "core/consumers.h"
#include "core/join_types.h"
#include "storage/tuple.h"

namespace mpsm::baseline {

/// Joins `r` with `s` (by key) with the semantics of `kind`, streaming
/// output to `consumer`. Returns the output cardinality.
uint64_t ReferenceJoin(std::vector<Tuple> r, std::vector<Tuple> s,
                       JoinKind kind, JoinConsumer& consumer);

/// Convenience: reference answer to the paper's benchmark query
/// SELECT max(R.payload + S.payload) WHERE R.key = S.key.
/// Returns 0 for an empty join result.
uint64_t ReferenceMaxPayloadSum(const std::vector<Tuple>& r,
                                const std::vector<Tuple>& s);

}  // namespace mpsm::baseline

// Global chained hash table with striped latches — the data structure
// at the heart of the Wisconsin no-partition hash join (Blanas et al.
// SIGMOD'11), reimplemented as the paper's first contender.
//
// By design this violates the NUMA commandments: the bucket array is
// (page-)interleaved across all NUMA nodes, inserts are latched random
// writes (violates C1+C3) and probes are random reads across nodes
// (violates C2). The traffic classification below captures exactly
// that, so the machine model reproduces the Figure 12 behaviour.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "numa/arena.h"
#include "parallel/counters.h"
#include "storage/tuple.h"

namespace mpsm::baseline {

/// The Fibonacci hashing multiplier (named so the SIMD hash-digit
/// histogram kernels can be handed the exact same constant).
inline constexpr uint64_t kHashMultiplier = 0x9E3779B97F4A7C15ull;

/// Multiplicative 64-bit hash (Fibonacci hashing).
inline uint64_t HashKey(uint64_t key) { return key * kHashMultiplier; }

/// A chained hash table over join tuples, sized once up front.
/// Thread-safe latched inserts; probes are wait-free after a barrier.
class ChainedHashTable {
 public:
  struct Entry {
    uint64_t key;
    uint64_t payload;
    Entry* next;
  };

  /// Creates a table for ~`expected` entries (load factor <= 1) with
  /// `latch_stripes` insert latches, interleaved over `num_nodes`.
  ChainedHashTable(size_t expected, uint32_t num_nodes,
                   size_t latch_stripes = 1u << 14);

  /// Latched insert. `entry` must outlive the table. Counts the latch
  /// acquisition and the random (interleaved) write into `counters`.
  void Insert(Entry* entry, numa::NodeId worker_node,
              PerfCounters* counters);

  /// Probes `key`, invoking `fn(const Entry&)` for every match.
  /// Counts the random bucket + chain reads into `counters`.
  template <typename Fn>
  void Probe(uint64_t key, numa::NodeId worker_node, PerfCounters* counters,
             Fn&& fn) const {
    const size_t bucket = BucketOf(key);
    uint64_t chain_bytes = sizeof(Entry*);
    for (const Entry* e = buckets_[bucket].load(std::memory_order_acquire);
         e != nullptr; e = e->next) {
      chain_bytes += sizeof(Entry);
      if (e->key == key) fn(*e);
    }
    if (counters != nullptr) {
      CountInterleavedAccess(counters, worker_node, chain_bytes,
                             /*is_write=*/false);
      ++counters->hash_probes;
    }
  }

  size_t num_buckets() const { return buckets_.size(); }

  /// Classifies `bytes` of random traffic against the interleaved
  /// placement: 1/num_nodes of it is node-local, the rest remote.
  void CountInterleavedAccess(PerfCounters* counters,
                              numa::NodeId worker_node, uint64_t bytes,
                              bool is_write) const;

 private:
  size_t BucketOf(uint64_t key) const {
    return HashKey(key) >> shift_;
  }

  std::vector<std::atomic<Entry*>> buckets_;
  std::unique_ptr<std::atomic_flag[]> latches_;
  size_t latch_mask_;
  uint32_t shift_;
  uint32_t num_nodes_;
};

}  // namespace mpsm::baseline

// The Wisconsin no-partition hash join (Blanas et al., SIGMOD 2011) —
// the paper's hash-join contender (§2, Figure 2a; evaluated in §5.2).
//
// All workers build one global latched hash table over the build input
// in parallel, then probe it in parallel with the probe input. Simple
// and cache-oblivious, but it violates all three NUMA commandments,
// which is precisely why the paper uses it as a foil.
#pragma once

#include "core/consumers.h"
#include "core/join_stats.h"
#include "parallel/worker_team.h"
#include "storage/relation.h"
#include "util/status.h"

namespace mpsm::baseline {

/// No-partition hash join. Build side: `r_build` (the smaller input in
/// the paper's experiments); probe side: `s_probe`. Inner joins only.
/// Consumers receive OnMatch(build_tuple, &probe_tuple, 1).
class WisconsinHashJoin {
 public:
  /// Phase mapping for stats: build -> kPhaseSortPublic slot,
  /// probe -> kPhaseJoin slot.
  Result<JoinRunInfo> Execute(WorkerTeam& team, const Relation& r_build,
                              const Relation& s_probe,
                              ConsumerFactory& consumers) const;
};

}  // namespace mpsm::baseline

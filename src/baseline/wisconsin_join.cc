#include "baseline/wisconsin_join.h"

#include <memory>

#include "baseline/hash_table.h"
#include "util/timer.h"

namespace mpsm::baseline {

Result<JoinRunInfo> WisconsinHashJoin::Execute(
    WorkerTeam& team, const Relation& r_build, const Relation& s_probe,
    ConsumerFactory& consumers) const {
  const uint32_t num_workers = team.size();
  if (r_build.num_chunks() != num_workers ||
      s_probe.num_chunks() != num_workers) {
    return Status::InvalidArgument(
        "relations must be chunked into team.size() chunks");
  }

  ChainedHashTable table(r_build.size(), team.topology().num_nodes());
  // Entry storage: one contiguous pool per worker (allocated up front,
  // so the timed build phase measures insertion, not allocation).
  std::vector<std::vector<ChainedHashTable::Entry>> entry_pools(num_workers);
  for (uint32_t w = 0; w < num_workers; ++w) {
    entry_pools[w].resize(r_build.chunk(w).size);
  }

  WallTimer timer;
  team.Run([&](WorkerContext& ctx) {
    const uint32_t w = ctx.worker_id;

    // Build phase: latched inserts into the global table.
    {
      PhaseScope scope(ctx, kPhaseSortPublic);
      PerfCounters& counters = ctx.Counters(kPhaseSortPublic);
      const Chunk& chunk = r_build.chunk(w);
      counters.CountRead(chunk.node == ctx.node, /*sequential=*/true,
                         chunk.size * sizeof(Tuple));
      for (size_t i = 0; i < chunk.size; ++i) {
        ChainedHashTable::Entry* entry = &entry_pools[w][i];
        entry->key = chunk.data[i].key;
        entry->payload = chunk.data[i].payload;
        table.Insert(entry, ctx.node, &counters);
      }
    }
    ctx.barrier->Wait();

    // Probe phase: random reads across the interleaved table.
    {
      PhaseScope scope(ctx, kPhaseJoin);
      PerfCounters& counters = ctx.Counters(kPhaseJoin);
      JoinConsumer& consumer = consumers.ConsumerForWorker(w);
      const Chunk& chunk = s_probe.chunk(w);
      counters.CountRead(chunk.node == ctx.node, /*sequential=*/true,
                         chunk.size * sizeof(Tuple));
      for (size_t i = 0; i < chunk.size; ++i) {
        const Tuple& probe = chunk.data[i];
        table.Probe(probe.key, ctx.node, &counters,
                    [&](const ChainedHashTable::Entry& entry) {
                      const Tuple build{entry.key, entry.payload};
                      consumer.OnMatch(build, &probe, 1);
                      ++counters.output_tuples;
                    });
      }
    }
  });

  return CollectRunInfo(team, timer.ElapsedSeconds());
}

}  // namespace mpsm::baseline

#include "baseline/reference_join.h"

#include <algorithm>

namespace mpsm::baseline {

uint64_t ReferenceJoin(std::vector<Tuple> r, std::vector<Tuple> s,
                       JoinKind kind, JoinConsumer& consumer) {
  std::sort(r.begin(), r.end(), TupleKeyLess{});
  std::sort(s.begin(), s.end(), TupleKeyLess{});

  uint64_t output = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < r.size()) {
    const uint64_t key = r[i].key;
    while (j < s.size() && s[j].key < key) ++j;
    size_t j_end = j;
    while (j_end < s.size() && s[j_end].key == key) ++j_end;
    const size_t group = j_end - j;

    size_t i_end = i;
    while (i_end < r.size() && r[i_end].key == key) ++i_end;

    for (size_t k = i; k < i_end; ++k) {
      if (group > 0) {
        switch (kind) {
          case JoinKind::kInner:
          case JoinKind::kLeftOuter:
            consumer.OnMatch(r[k], s.data() + j, group);
            output += group;
            break;
          case JoinKind::kLeftSemi:
            consumer.OnMatch(r[k], s.data() + j, 1);
            ++output;
            break;
          case JoinKind::kLeftAnti:
            break;
        }
      } else {
        if (kind == JoinKind::kLeftAnti || kind == JoinKind::kLeftOuter) {
          consumer.OnUnmatchedR(r[k]);
          ++output;
        }
      }
    }
    i = i_end;
    j = j_end;
  }
  return output;
}

uint64_t ReferenceMaxPayloadSum(const std::vector<Tuple>& r,
                                const std::vector<Tuple>& s) {
  MaxPayloadSumFactory factory(1);
  ReferenceJoin(r, s, JoinKind::kInner, factory.ConsumerForWorker(0));
  return factory.Result().value_or(0);
}

}  // namespace mpsm::baseline

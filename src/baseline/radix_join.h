// Parallel radix hash join — the stand-in for Vectorwise's join engine.
//
// Vectorwise (the paper's strongest contender) builds on MonetDB's
// radix join [19]: repeatedly partition both inputs on join-key hash
// bits until fragments are cache-sized, then build+probe per fragment.
// This implementation follows the multi-core formulation of Kim et al.
// [17] / He et al. [14]: histogram + prefix-sum scatter per pass, a
// first cross-NUMA pass of B1 bits (TLB-bounded), a second node-local
// pass of B2 bits, and per-fragment hash join, with partitions load-
// balanced over workers through an atomic task counter.
#pragma once

#include "core/consumers.h"
#include "core/join_stats.h"
#include "parallel/scheduler_kind.h"
#include "parallel/worker_team.h"
#include "partition/scatter_kind.h"
#include "simd/simd_kind.h"
#include "storage/relation.h"
#include "util/status.h"

namespace mpsm::baseline {

/// Tuning for the radix join.
struct RadixJoinOptions {
  /// Bits of the first (cross-NUMA) partitioning pass; 0 = auto.
  uint32_t pass1_bits = 0;
  /// Bits of the second (local) pass; 0 = auto (may legitimately
  /// resolve to zero for small inputs).
  uint32_t pass2_bits = 0;
  /// Target tuples per final fragment for auto bit selection
  /// (cache-resident build side).
  uint32_t target_fragment_tuples = 2048;
  /// Scatter implementation of the pass-1 partitioning writes. kAuto
  /// resolves per the ~100-partition crossover (docs/tuning.md): the
  /// 2^B1-way fan-out picks write combining except for tiny inputs.
  ScatterKind scatter = ScatterKind::kAuto;

  /// How pass-2/join tasks are distributed (docs/scheduler.md).
  /// Stealing reproduces the legacy dynamic task counter but with
  /// NUMA-aware, locality-first dispatch: partitions queue on their
  /// owning node and idle workers steal cross-node. Static pre-assigns
  /// partitions round-robin to the owning node's workers (A/B knob).
  SchedulerKind scheduler = SchedulerKind::kStealing;

  /// Vector ISA of the partitioning hash-digit histograms
  /// (docs/simd.md); every kind counts identically.
  simd::SimdKind simd = simd::SimdKind::kAuto;

  /// Checks every knob against its legal range. The engine front door
  /// calls this before planning.
  Status Validate() const;
};

/// The radix-partitioned hash join (inner joins).
/// Consumers receive OnMatch(build_tuple, &probe_tuple, 1).
class RadixHashJoin {
 public:
  explicit RadixHashJoin(RadixJoinOptions options = {})
      : options_(options) {}

  /// Phase mapping for stats: pass 1 -> kPhasePartition, pass 2 ->
  /// kPhaseSortPrivate slot, build+probe -> kPhaseJoin.
  Result<JoinRunInfo> Execute(WorkerTeam& team, const Relation& r_build,
                              const Relation& s_probe,
                              ConsumerFactory& consumers) const;

  /// Resolved (pass1_bits, pass2_bits) for a build side of `r_size`.
  std::pair<uint32_t, uint32_t> EffectiveBits(size_t r_size) const;

 private:
  RadixJoinOptions options_;
};

}  // namespace mpsm::baseline

#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace mpsm::obs {

namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::atomic<uint64_t> g_next_sink_id{1};

/// Thread-local slot cache: remembers which ring this thread owns in
/// recently used sinks, keyed by process-unique sink id (a freed and
/// reallocated sink can never alias a stale entry). Four entries cover
/// the realistic working set — own query plus a donated one — with
/// round-robin replacement; a re-registered thread merely takes a
/// fresh ring.
struct SlotCacheEntry {
  uint64_t sink_id = 0;
  size_t slot = 0;
};
constexpr size_t kSlotCacheSize = 4;
thread_local SlotCacheEntry t_slot_cache[kSlotCacheSize];
thread_local size_t t_slot_cache_next = 0;

thread_local TraceSink* t_current_sink = nullptr;

TraceSinkOptions Sanitize(TraceSinkOptions options) {
  options.ring_events = std::max<size_t>(options.ring_events, 1);
  options.max_threads = std::max<size_t>(options.max_threads, 1);
  return options;
}

}  // namespace

TraceSink::TraceSink(uint64_t query_id, TraceSinkOptions options)
    : query_id_(query_id),
      options_(Sanitize(options)),
      sink_id_(g_next_sink_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_ns_(SteadyNowNs()) {
  rings_.resize(options_.max_threads);
}

TraceSink::~TraceSink() = default;

int64_t TraceSink::NowNs() const { return SteadyNowNs() - epoch_ns_; }

TraceSink::Ring* TraceSink::ThreadRing() {
  for (SlotCacheEntry& entry : t_slot_cache) {
    if (entry.sink_id == sink_id_) return rings_[entry.slot].get();
  }
  // First event from this thread (or its cache entry was replaced):
  // take the next ring.
  const size_t slot = next_slot_.fetch_add(1, std::memory_order_acq_rel);
  if (slot >= options_.max_threads) return nullptr;
  auto ring = std::make_unique<Ring>();
  ring->events.resize(options_.ring_events);
  rings_[slot] = std::move(ring);
  SlotCacheEntry& entry = t_slot_cache[t_slot_cache_next];
  t_slot_cache_next = (t_slot_cache_next + 1) % kSlotCacheSize;
  entry.sink_id = sink_id_;
  entry.slot = slot;
  return rings_[slot].get();
}

void TraceSink::Record(const TraceEvent& event, bool is_span) {
  Ring* ring = ThreadRing();
  if (ring == nullptr) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const size_t count = ring->count.load(std::memory_order_relaxed);
  const size_t capacity = ring->events.size();
  // Instants yield the tail of the ring to spans: phase/query spans
  // carry the wall-time coverage and must survive event storms.
  const size_t limit =
      is_span ? capacity
              : (capacity > kSpanReserve ? capacity - kSpanReserve : capacity);
  if (count >= limit) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ring->events[count] = event;
  ring->count.store(count + 1, std::memory_order_release);
}

void TraceSink::RecordSpan(const char* category, const char* name,
                           int64_t start_ns, int64_t dur_ns, const char* key1,
                           uint64_t arg1, const char* key2, uint64_t arg2) {
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.start_ns = start_ns;
  event.dur_ns = std::max<int64_t>(dur_ns, 0);
  event.key1 = key1;
  event.key2 = key2;
  event.arg1 = arg1;
  event.arg2 = arg2;
  Record(event, /*is_span=*/true);
}

void TraceSink::RecordInstant(const char* category, const char* name,
                              const char* key1, uint64_t arg1,
                              const char* key2, uint64_t arg2) {
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.start_ns = NowNs();
  event.dur_ns = 0;
  event.key1 = key1;
  event.key2 = key2;
  event.arg1 = arg1;
  event.arg2 = arg2;
  Record(event, /*is_span=*/false);
}

void TraceSink::LabelThread(const char* role, uint32_t role_id) {
  if (Ring* ring = ThreadRing()) {
    ring->role = role;
    ring->role_id = role_id;
  }
}

const TraceEvent* TraceSink::RingEvents(size_t slot, size_t* count) const {
  if (slot >= rings_.size() || rings_[slot] == nullptr) {
    *count = 0;
    return nullptr;
  }
  const Ring& ring = *rings_[slot];
  *count = std::min(ring.count.load(std::memory_order_acquire),
                    ring.events.size());
  return ring.events.data();
}

namespace {

void AppendEscaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
}

}  // namespace

std::string TraceSink::ToChromeJson() const {
  std::string out = "{\"traceEvents\":[";
  char buf[256];
  bool first = true;
  const size_t used = threads();
  for (size_t slot = 0; slot < used; ++slot) {
    size_t count = 0;
    const TraceEvent* events = RingEvents(slot, &count);
    if (events == nullptr) continue;
    const Ring& ring = *rings_[slot];
    // Thread name metadata so Perfetto shows "worker 3" not "tid 3".
    if (!first) out += ',';
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%" PRIu64
                  ",\"tid\":%zu,\"args\":{\"name\":\"",
                  query_id_, slot);
    out += buf;
    AppendEscaped(out, ring.role);
    std::snprintf(buf, sizeof(buf), " %u\"}}", ring.role_id);
    out += buf;
    for (size_t i = 0; i < count; ++i) {
      const TraceEvent& e = events[i];
      out += ',';
      out += "{\"name\":\"";
      AppendEscaped(out, e.name);
      out += "\",\"cat\":\"";
      AppendEscaped(out, e.category);
      // Complete ("X") events for spans, instant ("i") otherwise;
      // Chrome ts/dur are microseconds (fractional ok).
      if (e.dur_ns > 0) {
        std::snprintf(buf, sizeof(buf),
                      "\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%" PRIu64
                      ",\"tid\":%zu",
                      static_cast<double>(e.start_ns) / 1e3,
                      static_cast<double>(e.dur_ns) / 1e3, query_id_, slot);
      } else {
        std::snprintf(buf, sizeof(buf),
                      "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,\"pid\":%" PRIu64
                      ",\"tid\":%zu",
                      static_cast<double>(e.start_ns) / 1e3, query_id_, slot);
      }
      out += buf;
      if (e.key1 != nullptr || e.key2 != nullptr) {
        out += ",\"args\":{";
        if (e.key1 != nullptr) {
          out += '"';
          AppendEscaped(out, e.key1);
          std::snprintf(buf, sizeof(buf), "\":%" PRIu64, e.arg1);
          out += buf;
        }
        if (e.key2 != nullptr) {
          if (e.key1 != nullptr) out += ',';
          out += '"';
          AppendEscaped(out, e.key2);
          std::snprintf(buf, sizeof(buf), "\":%" PRIu64, e.arg2);
          out += buf;
        }
        out += '}';
      }
      out += '}';
    }
  }
  out += "]}";
  return out;
}

TraceSummary TraceSink::Summary() const {
  TraceSummary summary;
  summary.dropped_events = dropped_.load(std::memory_order_relaxed);
  bool any = false;
  const size_t used = threads();
  for (size_t slot = 0; slot < used; ++slot) {
    size_t count = 0;
    const TraceEvent* events = RingEvents(slot, &count);
    if (events == nullptr) continue;
    ++summary.threads;
    for (size_t i = 0; i < count; ++i) {
      const TraceEvent& e = events[i];
      ++summary.events;
      if (!any || e.start_ns < summary.begin_ns) summary.begin_ns = e.start_ns;
      if (!any || e.start_ns + e.dur_ns > summary.end_ns) {
        summary.end_ns = e.start_ns + e.dur_ns;
      }
      any = true;
      TraceSummary::CategoryTotal* total = nullptr;
      for (auto& existing : summary.categories) {
        if (std::strcmp(existing.category, e.category) == 0) {
          total = &existing;
          break;
        }
      }
      if (total == nullptr) {
        summary.categories.push_back({e.category, 0, 0});
        total = &summary.categories.back();
      }
      ++total->events;
      total->span_ns += static_cast<uint64_t>(e.dur_ns);
    }
  }
  return summary;
}

TraceSink* CurrentTraceSink() { return t_current_sink; }

ScopedTraceThread::ScopedTraceThread(TraceSink* sink, const char* role,
                                     uint32_t role_id)
    : previous_(t_current_sink) {
  t_current_sink = sink;
  if (sink != nullptr) sink->LabelThread(role, role_id);
}

ScopedTraceThread::~ScopedTraceThread() { t_current_sink = previous_; }

}  // namespace mpsm::obs

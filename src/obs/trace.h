// Per-query tracing: lock-free per-thread event rings, Chrome
// trace_event JSON export (docs/observability.md).
//
// A TraceSink is created per traced query (EngineOptions::trace) and
// collects TraceEvents — phase spans, morsel batches, io submits and
// stalls, pool pin/evict/write-back, cache lookup/install, admission
// wait — from every thread that touches the query: the session's
// caller thread, its worker team, the buffer pool's flusher, and guest
// workers donated by other sessions. Each thread appends into its own
// fixed-capacity ring (one atomic store per event, no locks, no
// allocation on the record path); rings are harvested after the query
// quiesces and exported as Chrome trace_event JSON loadable in
// chrome://tracing or Perfetto (JoinReport::trace).
//
// Tracing is compiled in but off by default. The record path is gated
// on a thread-local sink pointer: with no sink installed, a TraceSpan
// costs one thread-local load and a branch (measured < 1% of join
// throughput — BM_TraceOverheadOff), and allocates nothing.
//
//   obs::TraceSpan span(obs::kCatPhase, "phase 4 (join)");
//   span.arg1("morsels", 42);
//   ...                            // span records itself on scope exit
//
// Threads are attached with ScopedTraceThread (WorkerTeam::Run does
// this for workers; the engine for its caller; DonationPool::TryHelp
// swaps a guest onto the owner query's sink). Event names and
// categories must be string literals (the sink stores the pointers).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace mpsm::obs {

// Canonical event categories (trace schema, docs/observability.md).
inline constexpr const char* kCatQuery = "query";
inline constexpr const char* kCatPlan = "plan";
inline constexpr const char* kCatPhase = "phase";
inline constexpr const char* kCatMorsel = "morsel";
inline constexpr const char* kCatIo = "io";
inline constexpr const char* kCatPool = "pool";
inline constexpr const char* kCatCache = "cache";
inline constexpr const char* kCatService = "service";
inline constexpr const char* kCatDonation = "donation";
inline constexpr const char* kCatRecovery = "recovery";

/// One recorded event. 64 bytes; name/category/arg keys are borrowed
/// string literals.
struct TraceEvent {
  const char* name = nullptr;
  const char* category = nullptr;
  /// Nanoseconds relative to the sink's epoch (may be negative for
  /// retroactive events such as admission wait).
  int64_t start_ns = 0;
  /// 0 for instant events.
  int64_t dur_ns = 0;
  const char* key1 = nullptr;
  const char* key2 = nullptr;
  uint64_t arg1 = 0;
  uint64_t arg2 = 0;
};
static_assert(sizeof(TraceEvent) == 64);

/// Per-category span-time aggregate plus drop accounting; cheap enough
/// to embed in JoinReport::ToJson without shipping every event.
struct TraceSummary {
  uint64_t events = 0;
  uint64_t dropped_events = 0;
  uint64_t threads = 0;
  /// Trace extent: [min start, max end] over all events, ns.
  int64_t begin_ns = 0;
  int64_t end_ns = 0;
  struct CategoryTotal {
    const char* category = nullptr;
    uint64_t events = 0;
    uint64_t span_ns = 0;  // summed durations (overlaps not collapsed)
  };
  std::vector<CategoryTotal> categories;
};

/// Sink tuning (EngineOptions::trace_ring_events feeds capacity).
struct TraceSinkOptions {
  /// Events per thread ring. When a ring fills, further *instant*
  /// events are dropped first (kSpanReserve slots stay reserved for
  /// spans, so phase/query spans — the wall-time coverage — survive
  /// event storms); drops are counted, never blocked on.
  size_t ring_events = 4096;
  /// Thread rings (workers + caller + flusher + guest headroom).
  /// Threads past the last ring drop their events (counted).
  size_t max_threads = 64;
};

/// Ring slots reserved for span events once instants filled the rest.
inline constexpr size_t kSpanReserve = 256;

/// Collects one query's trace. Thread-safe for recording from any
/// attached thread; export (ToChromeJson / Summary) must run after the
/// query quiesced (no Record in flight).
class TraceSink {
 public:
  explicit TraceSink(uint64_t query_id, TraceSinkOptions options = {});
  ~TraceSink();

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  uint64_t query_id() const { return query_id_; }

  /// Monotonic now, ns relative to the sink's epoch.
  int64_t NowNs() const;

  /// Appends a completed span to the calling thread's ring.
  void RecordSpan(const char* category, const char* name, int64_t start_ns,
                  int64_t dur_ns, const char* key1 = nullptr,
                  uint64_t arg1 = 0, const char* key2 = nullptr,
                  uint64_t arg2 = 0);

  /// Appends an instant event to the calling thread's ring.
  void RecordInstant(const char* category, const char* name,
                     const char* key1 = nullptr, uint64_t arg1 = 0,
                     const char* key2 = nullptr, uint64_t arg2 = 0);

  /// Labels the calling thread's ring ("worker 3", "caller", "guest");
  /// becomes the tid name in the Chrome export. `role` must be a
  /// literal.
  void LabelThread(const char* role, uint32_t role_id);

  /// Chrome trace_event JSON ({"traceEvents": [...]}); pid is the
  /// query id, tid the thread ring index, ts/dur microseconds.
  std::string ToChromeJson() const;

  TraceSummary Summary() const;

  /// All events of thread ring `slot` in record order (tests).
  const TraceEvent* RingEvents(size_t slot, size_t* count) const;
  size_t threads() const {
    return std::min(next_slot_.load(std::memory_order_acquire),
                    options_.max_threads);
  }
  uint64_t dropped_events() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  friend class ScopedTraceThread;

  struct Ring {
    std::vector<TraceEvent> events;   // capacity fixed at construction
    std::atomic<size_t> count{0};     // single-producer append index
    const char* role = "thread";
    uint32_t role_id = 0;
  };

  /// The calling thread's ring, allocated on first use; nullptr once
  /// max_threads rings are taken (events then count as dropped).
  Ring* ThreadRing();
  void Record(const TraceEvent& event, bool is_span);

  const uint64_t query_id_;
  const TraceSinkOptions options_;
  const uint64_t sink_id_;  // process-unique; keys the thread-slot cache
  int64_t epoch_ns_ = 0;    // steady_clock ns at construction
  std::vector<std::unique_ptr<Ring>> rings_;
  std::atomic<size_t> next_slot_{0};
  std::atomic<uint64_t> dropped_{0};
};

/// The calling thread's current sink (nullptr = tracing off). This is
/// THE disabled-path gate: every record helper loads it first.
TraceSink* CurrentTraceSink();

/// Installs `sink` as the calling thread's current sink for the scope
/// (restoring the previous one on exit) and labels its ring. Null sink
/// = tracing stays off for the scope.
class ScopedTraceThread {
 public:
  ScopedTraceThread(TraceSink* sink, const char* role, uint32_t role_id);
  ~ScopedTraceThread();

  ScopedTraceThread(const ScopedTraceThread&) = delete;
  ScopedTraceThread& operator=(const ScopedTraceThread&) = delete;

 private:
  TraceSink* previous_;
};

/// RAII span against the thread's current sink. With tracing off the
/// constructor is one thread-local load and a branch; nothing is
/// recorded or allocated.
class TraceSpan {
 public:
  TraceSpan(const char* category, const char* name)
      : sink_(CurrentTraceSink()), category_(category), name_(name) {
    if (sink_ != nullptr) start_ns_ = sink_->NowNs();
  }
  ~TraceSpan() {
    if (sink_ != nullptr) {
      sink_->RecordSpan(category_, name_, start_ns_,
                        sink_->NowNs() - start_ns_, key1_, arg1_, key2_,
                        arg2_);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches up to two integer args (keys must be literals).
  void arg1(const char* key, uint64_t value) {
    key1_ = key;
    arg1_ = value;
  }
  void arg2(const char* key, uint64_t value) {
    key2_ = key;
    arg2_ = value;
  }

  bool enabled() const { return sink_ != nullptr; }

 private:
  TraceSink* sink_;
  const char* category_;
  const char* name_;
  int64_t start_ns_ = 0;
  const char* key1_ = nullptr;
  const char* key2_ = nullptr;
  uint64_t arg1_ = 0;
  uint64_t arg2_ = 0;
};

/// Instant event against the thread's current sink (no-op when off).
inline void TraceInstant(const char* category, const char* name,
                         const char* key1 = nullptr, uint64_t arg1 = 0,
                         const char* key2 = nullptr, uint64_t arg2 = 0) {
  if (TraceSink* sink = CurrentTraceSink()) {
    sink->RecordInstant(category, name, key1, arg1, key2, arg2);
  }
}

/// Retroactive span: records [now - dur_ns, now] against the current
/// sink (io stalls and admission waits are measured before they are
/// recorded; no-op when off).
inline void TraceSpanEndingNow(const char* category, const char* name,
                               int64_t dur_ns, const char* key1 = nullptr,
                               uint64_t arg1 = 0) {
  if (TraceSink* sink = CurrentTraceSink()) {
    const int64_t end = sink->NowNs();
    sink->RecordSpan(category, name, end - dur_ns, dur_ns, key1, arg1);
  }
}

}  // namespace mpsm::obs

#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>

namespace mpsm::obs {

size_t Histogram::BucketOf(uint64_t value) {
  // Sub-buckets 0..kSubBuckets-1 hold the exact small values; above
  // that, the octave is the bit width and the sub-bucket the next
  // log2(kSubBuckets) bits below the leading one.
  if (value < kSubBuckets) return static_cast<size_t>(value);
  const int msb = 63 - std::countl_zero(value);
  const int sub_bits = std::countr_zero(kSubBuckets);  // 3 for 8
  const uint64_t sub = (value >> (msb - sub_bits)) - kSubBuckets;
  const size_t octave = static_cast<size_t>(msb) - sub_bits;
  const size_t bucket = octave * kSubBuckets + static_cast<size_t>(sub) +
                        kSubBuckets;  // small-value buckets come first
  return std::min(bucket, kBuckets - 1);
}

uint64_t Histogram::BucketUpperEdge(size_t bucket) {
  if (bucket < kSubBuckets) return static_cast<uint64_t>(bucket);
  const size_t octave = (bucket - kSubBuckets) / kSubBuckets;
  const size_t sub = (bucket - kSubBuckets) % kSubBuckets;
  // Highest value mapping to this bucket: (kSubBuckets + sub + 1) <<
  // octave, minus one.
  const uint64_t base = (kSubBuckets + static_cast<uint64_t>(sub) + 1)
                        << octave;
  return base - 1;
}

void Histogram::Record(uint64_t value) {
  buckets_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

uint64_t Histogram::Quantile(double q) const {
  const uint64_t total = Count();
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th sample, 1-based ceil: the smallest bucket whose
  // cumulative count reaches it.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(q * static_cast<double>(total) + 0.5));
  uint64_t cumulative = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    cumulative += buckets_[b].load(std::memory_order_relaxed);
    if (cumulative >= rank) return BucketUpperEdge(b);
  }
  return BucketUpperEdge(kBuckets - 1);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

namespace {

std::string RenderLabels(const MetricLabels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (const auto& [key, value] : labels) {
    if (out.size() > 1) out += ',';
    out += key;
    out += "=\"";
    for (char c : value) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += '"';
  }
  out += '}';
  return out;
}

}  // namespace

MetricsRegistry::Instrument& MetricsRegistry::FindOrCreate(
    const std::string& name, const std::string& help,
    const MetricLabels& labels, MetricType type) {
  const std::string rendered = RenderLabels(labels);
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& instrument : instruments_) {
    if (instrument->name == name && instrument->labels == rendered) {
      return *instrument;
    }
  }
  auto instrument = std::make_unique<Instrument>();
  instrument->name = name;
  instrument->help = help;
  instrument->labels = rendered;
  instrument->type = type;
  switch (type) {
    case MetricType::kCounter:
      instrument->counter = std::make_unique<Counter>();
      break;
    case MetricType::kGauge:
      instrument->gauge = std::make_unique<Gauge>();
      break;
    case MetricType::kHistogram:
      instrument->histogram = std::make_unique<Histogram>();
      break;
  }
  instruments_.push_back(std::move(instrument));
  return *instruments_.back();
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help,
                                  const MetricLabels& labels) {
  return *FindOrCreate(name, help, labels, MetricType::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help,
                              const MetricLabels& labels) {
  return *FindOrCreate(name, help, labels, MetricType::kGauge).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help,
                                      const MetricLabels& labels) {
  return *FindOrCreate(name, help, labels, MetricType::kHistogram).histogram;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  snapshot.metrics.reserve(instruments_.size());
  for (const auto& instrument : instruments_) {
    MetricValue value;
    value.name = instrument->name;
    value.help = instrument->help;
    value.labels = instrument->labels;
    value.type = instrument->type;
    switch (instrument->type) {
      case MetricType::kCounter:
        value.value = static_cast<int64_t>(instrument->counter->Value());
        break;
      case MetricType::kGauge:
        value.value = instrument->gauge->Value();
        break;
      case MetricType::kHistogram: {
        const Histogram& h = *instrument->histogram;
        value.count = h.Count();
        value.sum = h.Sum();
        value.p50 = h.Quantile(0.50);
        value.p95 = h.Quantile(0.95);
        value.p99 = h.Quantile(0.99);
        break;
      }
    }
    snapshot.metrics.push_back(std::move(value));
  }
  return snapshot;
}

std::string MetricsSnapshot::ToPrometheusText() const {
  std::string out;
  char buf[256];
  const std::string* last_family = nullptr;
  for (const MetricValue& m : metrics) {
    // HELP/TYPE once per family (labelled series of one family are
    // registered consecutively).
    if (last_family == nullptr || *last_family != m.name) {
      out += "# HELP " + m.name + " " + m.help + "\n";
      out += "# TYPE " + m.name + " ";
      switch (m.type) {
        case MetricType::kCounter:
          out += "counter\n";
          break;
        case MetricType::kGauge:
          out += "gauge\n";
          break;
        case MetricType::kHistogram:
          out += "summary\n";
          break;
      }
      last_family = &m.name;
    }
    if (m.type == MetricType::kHistogram) {
      const auto quantile_line = [&](const char* q, uint64_t v) {
        out += m.name;
        if (m.labels.empty()) {
          out += "{quantile=\"";
        } else {
          out += m.labels.substr(0, m.labels.size() - 1) + ",quantile=\"";
        }
        out += q;
        std::snprintf(buf, sizeof(buf), "\"} %" PRIu64 "\n", v);
        out += buf;
      };
      quantile_line("0.5", m.p50);
      quantile_line("0.95", m.p95);
      quantile_line("0.99", m.p99);
      std::snprintf(buf, sizeof(buf), "_sum%s %" PRIu64 "\n",
                    m.labels.c_str(), m.sum);
      out += m.name + buf;
      std::snprintf(buf, sizeof(buf), "_count%s %" PRIu64 "\n",
                    m.labels.c_str(), m.count);
      out += m.name + buf;
    } else {
      std::snprintf(buf, sizeof(buf), "%s %" PRId64 "\n", m.labels.c_str(),
                    m.value);
      out += m.name + buf;
    }
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{";
  char buf[128];
  bool first = true;
  for (const MetricValue& m : metrics) {
    if (!first) out += ',';
    first = false;
    out += '"';
    for (char c : m.name + m.labels) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += "\":";
    if (m.type == MetricType::kHistogram) {
      std::snprintf(buf, sizeof(buf),
                    "{\"count\":%" PRIu64 ",\"sum\":%" PRIu64
                    ",\"p50\":%" PRIu64 ",\"p95\":%" PRIu64 ",\"p99\":%" PRIu64
                    "}",
                    m.count, m.sum, m.p50, m.p95, m.p99);
      out += buf;
    } else {
      std::snprintf(buf, sizeof(buf), "%" PRId64, m.value);
      out += buf;
    }
  }
  out += '}';
  return out;
}

}  // namespace mpsm::obs

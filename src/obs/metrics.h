// Process-wide metrics registry: named counters, gauges, and
// log-bucketed histograms with Prometheus text-format and JSON
// exporters (docs/observability.md).
//
// The service, engine, buffer pool, run cache, and io scheduler
// register their families once (registration is idempotent: the same
// name + labels returns the same instrument) and update them with
// plain relaxed atomics — the hot paths never take the registry lock.
// Per-query components (a query's IoScheduler or BufferPool) fold
// their final stats into the global counters when they close, so the
// steady-state overhead is a handful of atomic adds per query.
//
//   auto& hits = obs::MetricsRegistry::Global().counter(
//       "mpsm_pool_hits_total", "Buffer pool pins served from RAM");
//   hits.Add(stats.hits);
//
// Histograms are fixed-bucket log histograms: 8 sub-buckets per
// power of two (relative quantile error <= 12.5%), p50/p95/p99
// exported as Prometheus summary quantiles. Naming follows Prometheus
// conventions: `mpsm_<subsystem>_<what>_<unit>[_total]`, seconds for
// durations, bytes for sizes.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace mpsm::obs {

/// Monotonic counter (relaxed atomics; wait-free).
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Instantaneous value (set/add; may go down).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket log2 histogram of non-negative integer samples
/// (nanoseconds, bytes, counts): 8 sub-buckets per octave across 64
/// octaves, so a quantile estimate is off by at most one sub-bucket
/// width (12.5% relative). Record is a few relaxed atomic adds.
class Histogram {
 public:
  static constexpr size_t kSubBuckets = 8;   // per power of two
  static constexpr size_t kOctaves = 64;
  static constexpr size_t kBuckets = kSubBuckets * kOctaves;

  void Record(uint64_t value);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Value at quantile q in [0, 1]: the upper edge of the bucket
  /// holding the q-th sample (0 when empty). Monotone in q.
  uint64_t Quantile(double q) const;

  /// Bucket index a value lands in, and that bucket's upper edge
  /// (exposed for the oracle test).
  static size_t BucketOf(uint64_t value);
  static uint64_t BucketUpperEdge(size_t bucket);

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

enum class MetricType : uint8_t { kCounter, kGauge, kHistogram };

/// One exported metric at snapshot time.
struct MetricValue {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;
  /// Rendered label set ("{lane=\"0\"}") or empty.
  std::string labels;
  /// Counter/gauge value.
  int64_t value = 0;
  /// Histogram summary (valid when type == kHistogram).
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t p50 = 0;
  uint64_t p95 = 0;
  uint64_t p99 = 0;
};

/// A point-in-time copy of every registered instrument, with the two
/// exporters. JoinService::MetricsSnapshot returns one of these.
struct MetricsSnapshot {
  std::vector<MetricValue> metrics;

  /// Prometheus text exposition format (counters/gauges as-is,
  /// histograms as summaries with quantile labels).
  std::string ToPrometheusText() const;
  /// One JSON object keyed by metric name + labels.
  std::string ToJson() const;
};

/// Label set for registration ("lane" -> "0"). Order is preserved.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Thread-safe instrument registry. Instruments live as long as the
/// registry; references returned by counter()/gauge()/histogram() are
/// stable.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every subsystem registers into.
  static MetricsRegistry& Global();

  Counter& counter(const std::string& name, const std::string& help,
                   const MetricLabels& labels = {});
  Gauge& gauge(const std::string& name, const std::string& help,
               const MetricLabels& labels = {});
  Histogram& histogram(const std::string& name, const std::string& help,
                       const MetricLabels& labels = {});

  MetricsSnapshot Snapshot() const;

  /// Shorthand: Snapshot().ToPrometheusText() / ToJson().
  std::string ToPrometheusText() const { return Snapshot().ToPrometheusText(); }
  std::string ToJson() const { return Snapshot().ToJson(); }

 private:
  struct Instrument {
    std::string name;
    std::string help;
    std::string labels;  // pre-rendered
    MetricType type = MetricType::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Instrument& FindOrCreate(const std::string& name, const std::string& help,
                           const MetricLabels& labels, MetricType type);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Instrument>> instruments_;
};

}  // namespace mpsm::obs

// The paper's three-phase sorting routine (§2.3):
//
//   1. One in-place MSD radix partitioning pass producing 2^8 = 256
//      partitions on the 8 most significant (used) bits of the key
//      (histogram -> partition boundaries -> swap into place).
//   2. IntroSort on each partition: quicksort limited to 2*log2(n)
//      recursion levels, falling back to heapsort beyond that.
//   3. Partitions below 16 elements are left to a final insertion-sort
//      pass that establishes the total order.
//
// The routine sorts 16-byte tuples by their 64-bit key; it is what every
// MPSM worker uses to turn its local chunk into a run. Individual phases
// are exposed for unit testing and for the kernel benchmarks.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "simd/simd_kind.h"
#include "storage/tuple.h"
#include "util/status.h"

namespace mpsm::sort {

/// Number of buckets of the MSD radix pass (8 bits).
inline constexpr uint32_t kRadixBuckets = 256;

/// Quicksort-to-insertion-sort cutoff (paper: 16 elements).
inline constexpr size_t kInsertionThreshold = 16;

/// Which sort turns a chunk into a run.
enum class SortKind : uint8_t {
  kSinglePassRadix,  // the paper's single MSD pass + introsort (§2.3)
  kMultiPassRadix,   // recursive MSD passes above a bucket threshold
  kIntroSort,        // no radix pass (comparison baseline)
};

/// Name of a SortKind ("single-pass-radix", ...).
const char* SortKindName(SortKind kind);

/// Tuning knobs of the multi-pass MSD radix sort.
struct RadixSortConfig {
  /// Buckets larger than this many tuples are re-partitioned on the
  /// next 8 key bits instead of handed to introsort. The default keeps
  /// introsort working sets around 256 * 16 = 4096 tuples (64 KiB),
  /// comfortably inside L2.
  size_t repartition_threshold = kRadixBuckets * kInsertionThreshold;

  /// Hard cap on the number of 8-bit MSD passes (1 == the paper's
  /// single pass); bounds the recursion on adversarial distributions.
  uint32_t max_passes = 4;

  /// Vector ISA of the MSD digit-histogram pass (docs/simd.md); every
  /// kind partitions identically — the knob is an A/B axis.
  simd::SimdKind simd = simd::SimdKind::kAuto;

  /// Range-checks the knobs (callers embed this in their own
  /// Options::Validate()).
  Status Validate() const;
};

/// Sorts data[0..n) by key using the full Radix/IntroSort pipeline.
void RadixIntroSort(Tuple* data, size_t n);

/// Cache-conscious variant of RadixIntroSort: buckets that come out of
/// an MSD pass larger than config.repartition_threshold are recursively
/// re-partitioned on the next 8 key bits (up to config.max_passes
/// passes) before falling back to introsort, so the
/// comparison-sorted leaves always fit in cache.
void RadixIntroSortMultiPass(Tuple* data, size_t n,
                             const RadixSortConfig& config = {});

/// Dispatches to the sort selected by `kind`.
void SortTuples(Tuple* data, size_t n, SortKind kind,
                const RadixSortConfig& config = {});

/// Sorts data[0..n) by key with plain introsort (no radix pass); used
/// for small arrays and as a comparison point.
void IntroSort(Tuple* data, size_t n);

/// Insertion sort; exposed for testing. Sorts data[0..n) by key.
void InsertionSort(Tuple* data, size_t n);

/// Bottom-up heapsort; exposed for testing. Sorts data[0..n) by key.
void HeapSort(Tuple* data, size_t n);

/// In-place MSD radix partitioning ("American flag" pass): permutes
/// data[0..n) so that bucket b = (key >> shift) & 0xFF occupies
/// [bounds[b], bounds[b+1]). Returns the 257-entry boundary array.
/// `simd` selects the digit-histogram kernel; the permutation itself
/// is scalar (it is a data-dependent cycle walk).
std::array<size_t, kRadixBuckets + 1> MsdRadixPartition(
    Tuple* data, size_t n, uint32_t shift,
    simd::SimdKind simd = simd::SimdKind::kAuto);

/// Out-of-place MSD pass that fuses a copy into the partitioning
/// (the §2.3 amortization): dst[0..n) receives src's tuples grouped by
/// the 8-bit digit at `shift`, replacing the separate copy-then-permute
/// passes of copy + MsdRadixPartition. src and dst must not overlap.
/// Returns the same 257-entry boundary array.
std::array<size_t, kRadixBuckets + 1> MsdRadixPartitionCopy(
    const Tuple* src, size_t n, uint32_t shift, Tuple* dst,
    simd::SimdKind simd = simd::SimdKind::kAuto);

/// Finishes buckets [bucket_begin, bucket_end) of an MSD pass at
/// `shift` to a total order with the policy of `kind`/`config`
/// (further MSD passes for oversized buckets under kMultiPassRadix,
/// introsort otherwise; shift 0 buckets hold one repeated key and are
/// skipped). Exposed per bucket *range* so the morsel scheduler can
/// spread one oversized partition's bucket sorts over idle workers.
void SortMsdBuckets(Tuple* data,
                    const std::array<size_t, kRadixBuckets + 1>& bounds,
                    uint32_t bucket_begin, uint32_t bucket_end,
                    uint32_t shift, SortKind kind,
                    const RadixSortConfig& config = {});

/// Copies src[0..n) into dst[0..n) and sorts dst by key. For the radix
/// sort kinds the copy is fused with the first MSD pass; plain
/// memcpy + sort for kIntroSort and tiny inputs. No overlap allowed.
///
/// `src_is_local` steers the fusion around commandment C1 (touch
/// remote data once): a local source is swept three times
/// (max-key, histogram, scatter via MsdRadixPartitionCopy — cheaper
/// than copy-then-permute); a remote source is read exactly once by a
/// fused copy+max-key pass, with the radix pass running in place on
/// the local destination.
void SortCopyInto(const Tuple* src, size_t n, Tuple* dst, SortKind kind,
                  const RadixSortConfig& config = {},
                  bool src_is_local = true);

/// Shift such that the top 8 significant bits of keys <= max_key select
/// the radix bucket (0 when max_key < 256).
uint32_t RadixShiftForMaxKey(uint64_t max_key);

/// True iff data[0..n) is non-decreasing in key.
bool IsSortedByKey(const Tuple* data, size_t n);

}  // namespace mpsm::sort

#include "sort/radix_introsort.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "simd/histogram_kernels.h"
#include "util/bits.h"

namespace mpsm::sort {

bool IsSortedByKey(const Tuple* data, size_t n) {
  for (size_t i = 1; i < n; ++i) {
    if (data[i - 1].key > data[i].key) return false;
  }
  return true;
}

void InsertionSort(Tuple* data, size_t n) {
  for (size_t i = 1; i < n; ++i) {
    const Tuple value = data[i];
    size_t j = i;
    while (j > 0 && data[j - 1].key > value.key) {
      data[j] = data[j - 1];
      --j;
    }
    data[j] = value;
  }
}

namespace {

void SiftDown(Tuple* data, size_t start, size_t end) {
  size_t root = start;
  while (2 * root + 1 < end) {
    size_t child = 2 * root + 1;
    if (child + 1 < end && data[child].key < data[child + 1].key) ++child;
    if (data[root].key >= data[child].key) return;
    std::swap(data[root], data[child]);
    root = child;
  }
}

// Median-of-three pivot selection; places the median at data[mid].
uint64_t MedianOfThreeKey(Tuple* data, size_t lo, size_t mid, size_t hi) {
  if (data[mid].key < data[lo].key) std::swap(data[mid], data[lo]);
  if (data[hi].key < data[lo].key) std::swap(data[hi], data[lo]);
  if (data[hi].key < data[mid].key) std::swap(data[hi], data[mid]);
  return data[mid].key;
}

// Hoare partition around pivot key; returns the split point.
size_t HoarePartition(Tuple* data, size_t lo, size_t hi, uint64_t pivot) {
  size_t i = lo;
  size_t j = hi;
  while (true) {
    while (data[i].key < pivot) ++i;
    while (data[j].key > pivot) --j;
    if (i >= j) return j;
    std::swap(data[i], data[j]);
    ++i;
    --j;
  }
}

// Depth-limited quicksort; leaves sub-arrays below kInsertionThreshold
// unsorted (final insertion pass establishes total order, §2.3 step 2.2).
void IntroSortLoop(Tuple* data, size_t lo, size_t hi, int depth_limit) {
  while (hi - lo + 1 > kInsertionThreshold) {
    if (depth_limit == 0) {
      HeapSort(data + lo, hi - lo + 1);
      return;
    }
    --depth_limit;
    const size_t mid = lo + (hi - lo) / 2;
    const uint64_t pivot = MedianOfThreeKey(data, lo, mid, hi);
    const size_t split = HoarePartition(data, lo, hi, pivot);
    // Recurse into the smaller half, iterate on the larger: O(log n)
    // stack depth even for adversarial inputs.
    if (split - lo < hi - split) {
      if (split > lo) IntroSortLoop(data, lo, split, depth_limit);
      lo = split + 1;
    } else {
      if (split + 1 < hi) IntroSortLoop(data, split + 1, hi, depth_limit);
      if (split == 0) return;  // guard size_t underflow
      hi = split;
    }
  }
}

}  // namespace

void HeapSort(Tuple* data, size_t n) {
  if (n < 2) return;
  for (size_t start = n / 2; start > 0; --start) {
    SiftDown(data, start - 1, n);
  }
  for (size_t end = n - 1; end > 0; --end) {
    std::swap(data[0], data[end]);
    SiftDown(data, 0, end);
  }
}

void IntroSort(Tuple* data, size_t n) {
  if (n < 2) return;
  // Paper: "Use Quicksort to at most 2*log(N) recursion levels."
  const int depth_limit = 2 * static_cast<int>(bits::Log2Floor(n));
  IntroSortLoop(data, 0, n - 1, depth_limit);
  InsertionSort(data, n);
}

uint32_t RadixShiftForMaxKey(uint64_t max_key) {
  const uint32_t width = bits::BitWidth(max_key);
  return width > 8 ? width - 8 : 0;
}

std::array<size_t, kRadixBuckets + 1> MsdRadixPartition(Tuple* data, size_t n,
                                                        uint32_t shift,
                                                        simd::SimdKind simd) {
  std::array<size_t, kRadixBuckets + 1> bounds{};

  // Histogram of the 8-bit digit (packed digit extraction).
  std::array<uint64_t, kRadixBuckets> histogram{};
  simd::RadixDigitHistogram(data, n, shift, histogram.data(), simd);

  // Exclusive prefix sums: bucket b occupies [bounds[b], bounds[b+1]).
  size_t offset = 0;
  for (uint32_t b = 0; b < kRadixBuckets; ++b) {
    bounds[b] = offset;
    offset += static_cast<size_t>(histogram[b]);
  }
  bounds[kRadixBuckets] = offset;

  // American-flag in-place permutation: heads advance as elements land.
  std::array<size_t, kRadixBuckets> head;
  std::copy(bounds.begin(), bounds.begin() + kRadixBuckets, head.begin());
  for (uint32_t b = 0; b < kRadixBuckets; ++b) {
    const size_t bucket_end = bounds[b + 1];
    while (head[b] < bucket_end) {
      Tuple value = data[head[b]];
      uint32_t digit = static_cast<uint32_t>((value.key >> shift) & 0xFF);
      while (digit != b) {
        std::swap(value, data[head[digit]]);
        ++head[digit];
        digit = static_cast<uint32_t>((value.key >> shift) & 0xFF);
      }
      data[head[b]] = value;
      ++head[b];
    }
  }
  return bounds;
}

void RadixIntroSort(Tuple* data, size_t n) {
  if (n < 2) return;
  if (n <= kRadixBuckets * 4) {
    // Radix pass overhead does not pay off for tiny arrays.
    IntroSort(data, n);
    return;
  }

  uint64_t max_key = 0;
  for (size_t i = 0; i < n; ++i) max_key = std::max(max_key, data[i].key);
  const uint32_t shift = RadixShiftForMaxKey(max_key);

  const auto bounds = MsdRadixPartition(data, n, shift);
  for (uint32_t b = 0; b < kRadixBuckets; ++b) {
    const size_t size = bounds[b + 1] - bounds[b];
    if (size > 1) IntroSort(data + bounds[b], size);
  }
}

namespace {

// Invariant: all keys in data[0..n) agree on every bit >= shift + 8
// (the first call starts at the top of the significant bits, and each
// level fixes 8 more). Hence once shift reaches 0, a bucket holds one
// repeated key and needs no further sorting.
void MultiPassRecurse(Tuple* data, size_t n, uint32_t shift,
                      uint32_t passes_left, const RadixSortConfig& config) {
  const auto bounds = MsdRadixPartition(data, n, shift, config.simd);
  for (uint32_t b = 0; b < kRadixBuckets; ++b) {
    const size_t size = bounds[b + 1] - bounds[b];
    if (size < 2) continue;
    Tuple* bucket = data + bounds[b];
    if (shift == 0) continue;  // bucket keys are fully equal
    if (size > config.repartition_threshold && passes_left > 1) {
      MultiPassRecurse(bucket, size, shift >= 8 ? shift - 8 : 0,
                       passes_left - 1, config);
    } else {
      IntroSort(bucket, size);
    }
  }
}

}  // namespace

std::array<size_t, kRadixBuckets + 1> MsdRadixPartitionCopy(
    const Tuple* src, size_t n, uint32_t shift, Tuple* dst,
    simd::SimdKind simd) {
  std::array<size_t, kRadixBuckets + 1> bounds{};

  std::array<uint64_t, kRadixBuckets> histogram{};
  simd::RadixDigitHistogram(src, n, shift, histogram.data(), simd);

  size_t offset = 0;
  for (uint32_t b = 0; b < kRadixBuckets; ++b) {
    bounds[b] = offset;
    offset += static_cast<size_t>(histogram[b]);
  }
  bounds[kRadixBuckets] = offset;

  // The copy doubles as the scatter: each source tuple lands directly
  // in its bucket's range of dst.
  std::array<size_t, kRadixBuckets> head;
  std::copy(bounds.begin(), bounds.begin() + kRadixBuckets, head.begin());
  for (size_t i = 0; i < n; ++i) {
    dst[head[(src[i].key >> shift) & 0xFF]++] = src[i];
  }
  return bounds;
}

void SortMsdBuckets(Tuple* data,
                    const std::array<size_t, kRadixBuckets + 1>& bounds,
                    uint32_t bucket_begin, uint32_t bucket_end,
                    uint32_t shift, SortKind kind,
                    const RadixSortConfig& config) {
  for (uint32_t b = bucket_begin; b < bucket_end; ++b) {
    const size_t size = bounds[b + 1] - bounds[b];
    if (size < 2) continue;
    if (shift == 0) continue;  // one repeated key per bucket
    Tuple* bucket = data + bounds[b];
    if (kind == SortKind::kMultiPassRadix &&
        size > config.repartition_threshold && config.max_passes > 1) {
      MultiPassRecurse(bucket, size, shift >= 8 ? shift - 8 : 0,
                       config.max_passes - 1, config);
    } else {
      IntroSort(bucket, size);
    }
  }
}

void SortCopyInto(const Tuple* src, size_t n, Tuple* dst, SortKind kind,
                  const RadixSortConfig& config, bool src_is_local) {
  if (n == 0) return;
  if (kind == SortKind::kIntroSort || n <= kRadixBuckets * 4) {
    std::memcpy(dst, src, n * sizeof(Tuple));
    SortTuples(dst, n, kind, config);
    return;
  }

  if (!src_is_local) {
    // C1: cross the interconnect once — copy + max-key in one pass,
    // then radix-partition in place on the local destination (still
    // one sweep cheaper than copy + separate max scan + partition).
    uint64_t max_key = 0;
    for (size_t i = 0; i < n; ++i) {
      dst[i] = src[i];
      max_key = std::max(max_key, dst[i].key);
    }
    const uint32_t shift = RadixShiftForMaxKey(max_key);
    const auto bounds = MsdRadixPartition(dst, n, shift, config.simd);
    SortMsdBuckets(dst, bounds, 0, kRadixBuckets, shift, kind, config);
    return;
  }

  uint64_t min_key = 0;
  uint64_t max_key = 0;
  simd::KeyMinMax(src, n, &min_key, &max_key, config.simd);
  const uint32_t shift = RadixShiftForMaxKey(max_key);
  const auto bounds = MsdRadixPartitionCopy(src, n, shift, dst, config.simd);
  SortMsdBuckets(dst, bounds, 0, kRadixBuckets, shift, kind, config);
}

void RadixIntroSortMultiPass(Tuple* data, size_t n,
                             const RadixSortConfig& config) {
  if (n < 2) return;
  if (n <= kRadixBuckets * 4) {
    IntroSort(data, n);
    return;
  }

  uint64_t min_key = 0;
  uint64_t max_key = 0;
  simd::KeyMinMax(data, n, &min_key, &max_key, config.simd);
  MultiPassRecurse(data, n, RadixShiftForMaxKey(max_key),
                   std::max(config.max_passes, 1u), config);
}

void SortTuples(Tuple* data, size_t n, SortKind kind,
                const RadixSortConfig& config) {
  switch (kind) {
    case SortKind::kSinglePassRadix:
      RadixIntroSort(data, n);
      return;
    case SortKind::kMultiPassRadix:
      RadixIntroSortMultiPass(data, n, config);
      return;
    case SortKind::kIntroSort:
      IntroSort(data, n);
      return;
  }
}

Status RadixSortConfig::Validate() const {
  if (repartition_threshold == 0) {
    return Status::InvalidArgument(
        "sort_config.repartition_threshold must be >= 1");
  }
  if (max_passes == 0) {
    return Status::InvalidArgument(
        "sort_config.max_passes must be >= 1 (1 == the paper's single "
        "MSD pass)");
  }
  // 8 bits per pass over a 64-bit key: more than 8 passes cannot
  // consume new bits.
  if (max_passes > 8) {
    return Status::InvalidArgument(
        "sort_config.max_passes must be <= 8 (8-bit MSD passes over a "
        "64-bit key)");
  }
  return Status::OK();
}

const char* SortKindName(SortKind kind) {
  switch (kind) {
    case SortKind::kSinglePassRadix:
      return "single-pass-radix";
    case SortKind::kMultiPassRadix:
      return "multi-pass-radix";
    case SortKind::kIntroSort:
      return "introsort";
  }
  return "unknown";
}

}  // namespace mpsm::sort

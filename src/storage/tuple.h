// The tuple format used throughout the paper's evaluation:
// a 64-bit join key and a 64-bit payload (record id / data pointer).
#pragma once

#include <cstdint>

namespace mpsm {

/// 16-byte join tuple: [joinkey: 64-bit, payload: 64-bit] (paper §5.1).
struct Tuple {
  uint64_t key;
  uint64_t payload;

  friend bool operator==(const Tuple& a, const Tuple& b) {
    return a.key == b.key && a.payload == b.payload;
  }
};

static_assert(sizeof(Tuple) == 16, "tuple layout must stay 16 bytes");

/// Orders tuples by join key (payload is not part of the sort key).
struct TupleKeyLess {
  bool operator()(const Tuple& a, const Tuple& b) const {
    return a.key < b.key;
  }
};

}  // namespace mpsm

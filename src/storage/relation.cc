#include "storage/relation.h"

#include <algorithm>
#include <atomic>
#include <cassert>

namespace mpsm {

uint64_t Relation::NextId() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

Relation Relation::Allocate(const numa::Topology& topology, size_t num_tuples,
                            uint32_t num_chunks) {
  assert(num_chunks > 0);
  Relation rel;
  rel.id_ = NextId();
  rel.size_ = num_tuples;
  rel.storage_.resize(num_tuples);
  rel.chunks_.resize(num_chunks);
  rel.chunk_offsets_.resize(num_chunks);

  const size_t base = num_tuples / num_chunks;
  const size_t remainder = num_tuples % num_chunks;
  size_t offset = 0;
  for (uint32_t i = 0; i < num_chunks; ++i) {
    const size_t chunk_size = base + (i < remainder ? 1 : 0);
    rel.chunk_offsets_[i] = offset;
    rel.chunks_[i] = Chunk{rel.storage_.data() + offset, chunk_size,
                           topology.NodeForWorker(i, num_chunks)};
    offset += chunk_size;
  }
  return rel;
}

Relation Relation::FromVector(std::vector<Tuple> tuples) {
  Relation rel;
  rel.id_ = NextId();
  rel.size_ = tuples.size();
  rel.storage_ = std::move(tuples);
  rel.chunks_ = {Chunk{rel.storage_.data(), rel.size_, 0}};
  rel.chunk_offsets_ = {0};
  return rel;
}

const Tuple& Relation::At(size_t index) const {
  assert(index < size_);
  auto it = std::upper_bound(chunk_offsets_.begin(), chunk_offsets_.end(),
                             index);
  const size_t chunk_index = static_cast<size_t>(it - chunk_offsets_.begin()) - 1;
  return chunks_[chunk_index].data[index - chunk_offsets_[chunk_index]];
}

std::vector<Tuple> Relation::ToVector() const {
  std::vector<Tuple> out;
  out.reserve(size_);
  for (const Chunk& chunk : chunks_) {
    out.insert(out.end(), chunk.begin(), chunk.end());
  }
  return out;
}

}  // namespace mpsm

// In-memory relations, chunked across NUMA nodes.
//
// A Relation models a table column-group of join tuples as it arrives at
// the join operator: logically one sequence, physically divided into
// per-worker chunks, each homed on a NUMA node (the node of the worker
// that loaded/produced it). All MPSM phases operate on these chunks.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "numa/topology.h"
#include "storage/tuple.h"
#include "util/status.h"

namespace mpsm {

/// A contiguous slice of tuples homed on one NUMA node.
struct Chunk {
  Tuple* data = nullptr;
  size_t size = 0;
  numa::NodeId node = 0;

  Tuple* begin() const { return data; }
  Tuple* end() const { return data + size; }
};

/// A chunked in-memory relation.
///
/// Owns its tuple storage. Chunks are sized evenly; chunk i is tagged
/// with the node of worker i (socket-major placement), modeling data
/// that was loaded NUMA-partitioned as the paper assumes.
class Relation {
 public:
  Relation() = default;

  /// Allocates a relation of `num_tuples` tuples divided into
  /// `num_chunks` chunks placed per `topology`. Contents are
  /// uninitialized; use a workload generator to fill them.
  static Relation Allocate(const numa::Topology& topology, size_t num_tuples,
                           uint32_t num_chunks);

  /// Builds a single-chunk relation from an existing tuple vector
  /// (convenience for tests).
  static Relation FromVector(std::vector<Tuple> tuples);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  uint32_t num_chunks() const { return static_cast<uint32_t>(chunks_.size()); }

  const Chunk& chunk(uint32_t i) const { return chunks_[i]; }
  Chunk& chunk(uint32_t i) { return chunks_[i]; }

  /// Global tuple access (crosses chunk boundaries); O(log #chunks).
  const Tuple& At(size_t index) const;

  /// Copies all chunks into one contiguous vector (tests/debugging).
  std::vector<Tuple> ToVector() const;

  /// Process-unique identity, assigned at Allocate/FromVector time and
  /// carried through moves. Derived state cached elsewhere (e.g. sorted
  /// runs in a cache::RunCache) is keyed by (id, version): the id names
  /// the table, the version its content epoch.
  uint64_t id() const { return id_; }

  /// Content epoch. Any in-place mutation of the tuples after derived
  /// state was built must be announced with BumpVersion(), or caches
  /// keyed on (id, version) will serve stale runs.
  uint64_t version() const { return version_.load(std::memory_order_acquire); }

  /// Marks the content as changed; returns the new version.
  uint64_t BumpVersion() {
    return version_.fetch_add(1, std::memory_order_acq_rel) + 1;
  }

  Relation(Relation&& other) noexcept { *this = std::move(other); }
  Relation& operator=(Relation&& other) noexcept {
    storage_ = std::move(other.storage_);
    chunks_ = std::move(other.chunks_);
    chunk_offsets_ = std::move(other.chunk_offsets_);
    size_ = other.size_;
    id_ = other.id_;
    version_.store(other.version_.load(std::memory_order_acquire),
                   std::memory_order_release);
    return *this;
  }

 private:
  static uint64_t NextId();

  std::vector<Tuple> storage_;
  std::vector<Chunk> chunks_;
  std::vector<size_t> chunk_offsets_;  // start offset of each chunk
  size_t size_ = 0;
  uint64_t id_ = 0;  // 0 = default-constructed, never cached
  std::atomic<uint64_t> version_{0};
};

}  // namespace mpsm

// In-memory relations, chunked across NUMA nodes.
//
// A Relation models a table column-group of join tuples as it arrives at
// the join operator: logically one sequence, physically divided into
// per-worker chunks, each homed on a NUMA node (the node of the worker
// that loaded/produced it). All MPSM phases operate on these chunks.
#pragma once

#include <cstdint>
#include <vector>

#include "numa/topology.h"
#include "storage/tuple.h"
#include "util/status.h"

namespace mpsm {

/// A contiguous slice of tuples homed on one NUMA node.
struct Chunk {
  Tuple* data = nullptr;
  size_t size = 0;
  numa::NodeId node = 0;

  Tuple* begin() const { return data; }
  Tuple* end() const { return data + size; }
};

/// A chunked in-memory relation.
///
/// Owns its tuple storage. Chunks are sized evenly; chunk i is tagged
/// with the node of worker i (socket-major placement), modeling data
/// that was loaded NUMA-partitioned as the paper assumes.
class Relation {
 public:
  Relation() = default;

  /// Allocates a relation of `num_tuples` tuples divided into
  /// `num_chunks` chunks placed per `topology`. Contents are
  /// uninitialized; use a workload generator to fill them.
  static Relation Allocate(const numa::Topology& topology, size_t num_tuples,
                           uint32_t num_chunks);

  /// Builds a single-chunk relation from an existing tuple vector
  /// (convenience for tests).
  static Relation FromVector(std::vector<Tuple> tuples);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  uint32_t num_chunks() const { return static_cast<uint32_t>(chunks_.size()); }

  const Chunk& chunk(uint32_t i) const { return chunks_[i]; }
  Chunk& chunk(uint32_t i) { return chunks_[i]; }

  /// Global tuple access (crosses chunk boundaries); O(log #chunks).
  const Tuple& At(size_t index) const;

  /// Copies all chunks into one contiguous vector (tests/debugging).
  std::vector<Tuple> ToVector() const;

 private:
  std::vector<Tuple> storage_;
  std::vector<Chunk> chunks_;
  std::vector<size_t> chunk_offsets_;  // start offset of each chunk
  size_t size_ = 0;
};

}  // namespace mpsm

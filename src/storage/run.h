// Sorted runs: the intermediate representation of all MPSM variants.
#pragma once

#include <cstdint>
#include <vector>

#include "numa/topology.h"
#include "storage/tuple.h"

namespace mpsm {

/// A key-sorted array of tuples homed on one NUMA node.
struct Run {
  Tuple* data = nullptr;
  size_t size = 0;
  numa::NodeId node = 0;

  const Tuple* begin() const { return data; }
  const Tuple* end() const { return data + size; }
  bool empty() const { return size == 0; }

  /// Smallest / largest key; run must be non-empty.
  uint64_t MinKey() const { return data[0].key; }
  uint64_t MaxKey() const { return data[size - 1].key; }
};

/// All runs of one input, indexed by producing worker.
using RunSet = std::vector<Run>;

/// True iff `run` is non-decreasing in key.
bool IsSortedRun(const Run& run);

/// Total number of tuples across a run set.
size_t TotalSize(const RunSet& runs);

}  // namespace mpsm

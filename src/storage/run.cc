#include "storage/run.h"

namespace mpsm {

bool IsSortedRun(const Run& run) {
  for (size_t i = 1; i < run.size; ++i) {
    if (run.data[i - 1].key > run.data[i].key) return false;
  }
  return true;
}

size_t TotalSize(const RunSet& runs) {
  size_t total = 0;
  for (const Run& run : runs) total += run.size;
  return total;
}

}  // namespace mpsm

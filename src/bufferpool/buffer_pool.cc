#include "bufferpool/buffer_pool.h"

#include <algorithm>
#include <chrono>

#include "obs/metrics.h"
#include "util/timer.h"

namespace mpsm::bufferpool {

Status BufferPoolOptions::Validate() const {
  if (frames == 0) {
    return Status::InvalidArgument("buffer pool frames must be >= 1");
  }
  if (client_queues == 0) {
    return Status::InvalidArgument("client_queues must be >= 1");
  }
  if (flush_batch_pages == 0) {
    return Status::InvalidArgument("flush_batch_pages must be >= 1");
  }
  if (scheduler_load_queue == scheduler_write_queue) {
    return Status::InvalidArgument(
        "pool load and write-back scheduler queues must differ");
  }
  return Status::OK();
}

Result<std::unique_ptr<BufferPool>> BufferPool::Create(
    disk::PageStore* store, io::IoScheduler* scheduler,
    BufferPoolOptions options, const numa::Topology* topology) {
  MPSM_RETURN_NOT_OK(options.Validate());
  if (store == nullptr || scheduler == nullptr) {
    return Status::InvalidArgument("store and scheduler must be non-null");
  }
  const uint32_t scheduler_queues =
      scheduler->options().completion_queues;
  if (options.scheduler_load_queue >= scheduler_queues ||
      options.scheduler_write_queue >= scheduler_queues) {
    return Status::InvalidArgument(
        "pool scheduler queues out of range for this scheduler");
  }
  return std::unique_ptr<BufferPool>(
      new BufferPool(store, scheduler, std::move(options), topology));
}

BufferPool::BufferPool(disk::PageStore* store, io::IoScheduler* scheduler,
                       BufferPoolOptions options,
                       const numa::Topology* topology)
    : store_(store),
      scheduler_(scheduler),
      trace_(obs::CurrentTraceSink()),
      options_(std::move(options)),
      page_bytes_(store->page_bytes()),
      frames_(options_.frames),
      client_queues_(options_.client_queues) {
  // NUMA-interleaved frames: frame i comes from the arena homed on
  // node i % pool_nodes_, spreading the pool's bandwidth over every
  // memory controller (the same discipline the staging pool used
  // before the frames moved here).
  const uint32_t nodes =
      topology != nullptr ? std::max(1u, topology->num_nodes()) : 1;
  pool_nodes_ =
      static_cast<uint32_t>(std::min<size_t>(nodes, options_.frames));
  const size_t per_node =
      (options_.frames + pool_nodes_ - 1) / pool_nodes_;
  const size_t block_bytes =
      std::max<size_t>(per_node * page_bytes_, size_t{64} << 10);
  for (uint32_t n = 0; n < pool_nodes_; ++n) {
    arenas_.push_back(std::make_unique<numa::Arena>(n, block_bytes));
  }
  for (size_t i = 0; i < frames_.size(); ++i) {
    const auto node = static_cast<numa::NodeId>(i % pool_nodes_);
    frames_[i].data = arenas_[node]->AllocateArray<char>(page_bytes_);
    frames_[i].home = node;
  }
  table_.reserve(options_.frames * 2);
  flusher_ = std::thread([this] { FlusherLoop(); });
}

BufferPool::~BufferPool() { Close(); }

FrameId BufferPool::TryTakeFrameLocked() {
  bool want_flush = false;
  const size_t n = frames_.size();
  // Two clock laps: the first clears second-chance bits, the second
  // finds the victim those bits were protecting.
  for (size_t scanned = 0; scanned < 2 * n; ++scanned) {
    const auto fid = static_cast<FrameId>(clock_hand_);
    Frame& f = frames_[clock_hand_];
    clock_hand_ = (clock_hand_ + 1) % n;
    if (f.state == Frame::State::kFree) return fid;
    // Pinned frames are never evicted; loading/flushing frames are
    // owned by their in-flight operation.
    if (f.state == Frame::State::kLoading || f.pins > 0 || f.flushing) {
      continue;
    }
    if (f.referenced) {
      f.referenced = false;
      continue;
    }
    if (f.dirty) {
      // Dirty frames are flushed before reuse — nudge the flusher and
      // keep scanning for a clean victim.
      want_flush = true;
      continue;
    }
    table_.erase(f.page);
    ++evictions_;
    obs::TraceInstant(obs::kCatPool, "pool.evict", "page", f.page);
    f.state = Frame::State::kFree;
    f.pins = 0;
    f.referenced = false;
    f.waiters.clear();
    if (want_flush) flush_cv_.notify_one();
    return fid;
  }
  if (want_flush) flush_cv_.notify_one();
  return kInvalidFrame;
}

bool BufferPool::RoutePinLocked(const PagePinRequest& request,
                                std::vector<io::PageFetchRequest>& reads) {
  const auto it = table_.find(request.page);
  if (it != table_.end()) {
    Frame& f = frames_[it->second];
    if (f.state == Frame::State::kResident) {
      ++f.pins;
      f.referenced = true;
      ++hits_;
      obs::TraceInstant(obs::kCatPool, "pool.hit", "page", request.page);
      client_queues_[request.queue].push_back(
          PagePinCompletion{request.user_data, it->second, Status::OK()});
      return true;
    }
    // kLoading: join the in-flight read instead of issuing another.
    ++misses_;
    f.waiters.emplace_back(request.user_data, request.queue);
    return true;
  }
  const FrameId fid = TryTakeFrameLocked();
  if (fid == kInvalidFrame) return false;
  Frame& f = frames_[fid];
  f.page = request.page;
  f.state = Frame::State::kLoading;
  f.dirty = false;
  f.flushing = false;
  f.referenced = false;
  f.pins = 0;
  f.waiters.assign(1, {request.user_data, request.queue});
  table_[request.page] = fid;
  ++loading_frames_;
  ++misses_;
  obs::TraceInstant(obs::kCatPool, "pool.miss", "page", request.page);
  io::PageFetchRequest fetch;
  fetch.page = request.page;
  fetch.dest = f.data;
  fetch.user_data = fid;
  fetch.queue = options_.scheduler_load_queue;
  reads.push_back(fetch);
  return true;
}

void BufferPool::FailParkedLocked() {
  if (status_.ok()) return;
  while (!parked_pins_.empty()) {
    const PagePinRequest& request = parked_pins_.front();
    client_queues_[request.queue].push_back(
        PagePinCompletion{request.user_data, kInvalidFrame, status_});
    parked_pins_.pop_front();
  }
}

bool BufferPool::CollectParkedLocked(
    std::vector<io::PageFetchRequest>& reads) {
  if (closed_) return false;
  // A latched error means frames may never transition again (a failed
  // write-back leaves no retirement to wait for): fail parked pins now
  // instead of letting them wait on progress that cannot come.
  if (!status_.ok()) {
    const bool progressed = !parked_pins_.empty();
    FailParkedLocked();
    return progressed;
  }
  bool progressed = false;
  // FIFO: if the head can't get a frame, everyone behind it waits too.
  while (!parked_pins_.empty()) {
    if (!RoutePinLocked(parked_pins_.front(), reads)) break;
    parked_pins_.pop_front();
    progressed = true;
  }
  return progressed;
}

Status BufferPool::SubmitLoads(std::unique_lock<std::mutex>& lock,
                               std::vector<io::PageFetchRequest>& reads) {
  if (reads.empty()) return Status::OK();
  lock.unlock();
  const Status submitted = scheduler_->Submit(reads.data(), reads.size());
  lock.lock();
  if (!submitted.ok()) {
    // The scheduler rejects only malformed requests (a pool bug, not a
    // device error) — and all-or-nothing, so none of these reads
    // started: fail their waiters and free the frames.
    for (const io::PageFetchRequest& read : reads) {
      ProcessLoadLocked(static_cast<FrameId>(read.user_data), submitted);
    }
    if (status_.ok()) status_ = submitted;
  }
  return submitted;
}

Status BufferPool::SubmitPins(const PagePinRequest* requests,
                              size_t count) {
  std::unique_lock<std::mutex> lock(mu_);
  if (closed_) return Status::Internal("buffer pool closed");
  // All-or-nothing validation, matching the scheduler's contract.
  for (size_t i = 0; i < count; ++i) {
    if (requests[i].queue >= client_queues_.size()) {
      return Status::InvalidArgument("pin completion queue out of range");
    }
  }
  std::vector<io::PageFetchRequest> reads;
  bool parked = false;
  for (size_t i = 0; i < count; ++i) {
    // Once anything is parked, later pins queue behind it (FIFO).
    if (parked || !parked_pins_.empty()) {
      parked_pins_.push_back(requests[i]);
      ++deferred_pins_;
      parked = true;
      continue;
    }
    if (!RoutePinLocked(requests[i], reads)) {
      parked_pins_.push_back(requests[i]);
      ++deferred_pins_;
      parked = true;
    }
  }
  const Status submitted = SubmitLoads(lock, reads);
  lock.unlock();
  if (parked) flush_cv_.notify_one();  // dirty frames may block reuse
  progress_.notify_all();              // hits were delivered above
  return submitted;
}

bool BufferPool::DrainSchedulerQueues() {
  constexpr size_t kMaxDrain = 2 * io::kMaxIovPerRead;
  io::PageFetchCompletion done[kMaxDrain];
  bool progressed = false;
  for (;;) {
    const size_t n = scheduler_->Drain(options_.scheduler_load_queue,
                                       done, kMaxDrain);
    if (n == 0) break;
    progressed = true;
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < n; ++i) {
      ProcessLoadLocked(static_cast<FrameId>(done[i].user_data),
                        done[i].status);
    }
  }
  for (;;) {
    const size_t n = scheduler_->Drain(options_.scheduler_write_queue,
                                       done, kMaxDrain);
    if (n == 0) break;
    progressed = true;
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < n; ++i) {
      ProcessWriteLocked(static_cast<FrameId>(done[i].user_data),
                         done[i].status);
    }
  }
  if (progressed) {
    progress_.notify_all();
    flush_cv_.notify_one();
  }
  return progressed;
}

void BufferPool::ProcessLoadLocked(FrameId frame, const Status& status) {
  Frame& f = frames_[frame];
  --loading_frames_;
  if (status.ok()) {
    f.state = Frame::State::kResident;
    f.referenced = true;
    f.pins += static_cast<uint32_t>(f.waiters.size());
    for (const auto& [user_data, queue] : f.waiters) {
      client_queues_[queue].push_back(
          PagePinCompletion{user_data, frame, Status::OK()});
    }
  } else {
    if (status_.ok()) status_ = status;
    for (const auto& [user_data, queue] : f.waiters) {
      client_queues_[queue].push_back(
          PagePinCompletion{user_data, kInvalidFrame, status});
    }
    table_.erase(f.page);
    f.state = Frame::State::kFree;
    f.pins = 0;
    FailParkedLocked();
  }
  f.waiters.clear();
}

void BufferPool::ProcessWriteLocked(FrameId frame, const Status& status) {
  Frame& f = frames_[frame];
  f.flushing = false;
  --writes_inflight_;
  --dirty_frames_;
  if (status.ok()) {
    ++writebacks_;
  } else {
    if (status_.ok()) status_ = status;
    // A parked pin waiting for this frame to retire would otherwise
    // wait forever: deliver the latched failure now.
    FailParkedLocked();
  }
  // On failure the frame is marked clean anyway: the error is latched
  // (the query fails through status()/FlushAll), and retrying a dead
  // device forever would wedge Close. No frame is lost either way.
  f.dirty = false;
}

bool BufferPool::HasFlushCandidateLocked() const {
  for (const Frame& f : frames_) {
    if (f.dirty && !f.flushing && f.pins == 0 &&
        f.state == Frame::State::kResident) {
      return true;
    }
  }
  return false;
}

void BufferPool::FlusherLoop() {
  // Attach to the creating query's sink so background write-back shows
  // up on its own named track in that query's trace.
  obs::ScopedTraceThread trace_scope(trace_, "flusher", 0);
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (stop_flusher_) return;
    // Gather dirty unpinned frames, sorted by page id so the scheduler
    // coalesces adjacent spool pages into one vectored pwritev.
    std::vector<FrameId> batch;
    for (size_t i = 0;
         i < frames_.size() && batch.size() < options_.flush_batch_pages;
         ++i) {
      const Frame& f = frames_[i];
      if (f.dirty && !f.flushing && f.pins == 0 &&
          f.state == Frame::State::kResident) {
        batch.push_back(static_cast<FrameId>(i));
      }
    }
    if (!batch.empty()) {
      std::sort(batch.begin(), batch.end(), [&](FrameId a, FrameId b) {
        return frames_[a].page < frames_[b].page;
      });
      std::vector<io::PageWriteRequest> writes(batch.size());
      for (size_t i = 0; i < batch.size(); ++i) {
        Frame& f = frames_[batch[i]];
        f.flushing = true;
        writes[i].page = f.page;
        writes[i].src = f.data;
        writes[i].user_data = batch[i];
        writes[i].queue = options_.scheduler_write_queue;
      }
      writes_inflight_ += batch.size();
      lock.unlock();
      obs::TraceInstant(obs::kCatPool, "pool.writeback", "pages",
                        batch.size());
      const Status submitted =
          scheduler_->SubmitWrites(writes.data(), writes.size());
      if (!submitted.ok()) {
        // All-or-nothing reject (a pool bug): retire the batch as
        // failed so counters and Close stay consistent.
        std::lock_guard<std::mutex> relock(mu_);
        for (const FrameId fid : batch) {
          ProcessWriteLocked(fid, submitted);
        }
      }
      DrainSchedulerQueues();  // reap whatever already finished
      lock.lock();
      continue;
    }
    if (writes_inflight_ > 0) {
      // Only in-flight write-backs remain: park in the scheduler so
      // the flusher retires them even if no worker ever pumps.
      lock.unlock();
      scheduler_->Pump(/*block=*/true);
      DrainSchedulerQueues();
      lock.lock();
      continue;
    }
    flush_cv_.wait(lock, [&] {
      return stop_flusher_ || HasFlushCandidateLocked();
    });
  }
}

Status BufferPool::Pump(bool block) {
  MPSM_RETURN_NOT_OK(scheduler_->Pump(/*block=*/false));
  bool progressed = DrainSchedulerQueues();
  {
    std::unique_lock<std::mutex> lock(mu_);
    std::vector<io::PageFetchRequest> reads;
    if (CollectParkedLocked(reads)) progressed = true;
    SubmitLoads(lock, reads);  // errors surface via pin completions
  }
  if (!block || progressed) return Status::OK();
  if (scheduler_->Busy()) {
    MPSM_RETURN_NOT_OK(scheduler_->Pump(/*block=*/true));
    DrainSchedulerQueues();
    std::unique_lock<std::mutex> lock(mu_);
    std::vector<io::PageFetchRequest> reads;
    CollectParkedLocked(reads);
    SubmitLoads(lock, reads);
    return Status::OK();
  }
  // Device idle: wait briefly for another thread to free a frame or
  // retire a write-back. Bounded, so a wakeup racing this wait only
  // costs a timeout, never a hang — callers re-check and Pump again.
  std::unique_lock<std::mutex> lock(mu_);
  progress_.wait_for(lock, std::chrono::microseconds(200));
  return Status::OK();
}

size_t BufferPool::DrainPins(uint32_t queue, PagePinCompletion* out,
                             size_t max) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& q = client_queues_[queue];
  size_t n = 0;
  while (n < max && !q.empty()) {
    out[n++] = std::move(q.front());
    q.pop_front();
  }
  return n;
}

const char* BufferPool::Data(FrameId frame) const {
  return frames_[frame].data;
}

void BufferPool::Unpin(FrameId frame) {
  bool freed = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Frame& f = frames_[frame];
    if (f.pins > 0 && --f.pins == 0) freed = true;
  }
  if (freed) {
    progress_.notify_all();
    flush_cv_.notify_one();  // a dirty frame may now be flushable
  }
}

Result<disk::PageId> BufferPool::AppendPage(const Tuple* tuples,
                                            size_t count,
                                            uint64_t* stall_ns) {
  if (count > store_->tuples_per_page()) {
    return Status::InvalidArgument("page overflow");
  }
  uint64_t stalled = 0;
  std::unique_lock<std::mutex> lock(mu_);
  if (closed_) return Status::Internal("buffer pool closed");
  FrameId fid = TryTakeFrameLocked();
  while (fid == kInvalidFrame) {
    // Every frame is pinned, loading, or awaiting write-back. This
    // wait is the spool-write stall the sync/async A/B measures.
    flush_cv_.notify_one();
    lock.unlock();
    WallTimer wait;
    MPSM_RETURN_NOT_OK(Pump(/*block=*/true));
    stalled += static_cast<uint64_t>(wait.ElapsedSeconds() * 1e9);
    lock.lock();
    fid = TryTakeFrameLocked();
  }
  Frame& f = frames_[fid];
  const disk::PageId id = store_->AllocatePage();
  f.page = id;
  f.state = Frame::State::kResident;
  f.dirty = true;
  f.flushing = false;
  f.referenced = true;
  // Exclusive while encoding: no flush or eviction may touch the
  // frame. No reader can race the encode — the page id only becomes
  // known to other threads when this call returns it.
  f.pins = 1;
  table_[id] = fid;
  ++dirty_frames_;
  ++append_pages_;
  append_stall_ns_ += stalled;
  lock.unlock();
  store_->EncodePage(tuples, count, f.data);
  {
    std::lock_guard<std::mutex> relock(mu_);
    f.pins = 0;
  }
  flush_cv_.notify_one();
  if (stalled > 0) {
    obs::TraceSpanEndingNow(obs::kCatPool, "pool.append_stall",
                            static_cast<int64_t>(stalled));
  }
  if (stall_ns != nullptr) *stall_ns += stalled;
  return id;
}

Status BufferPool::FlushAll() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (dirty_frames_ == 0 && writes_inflight_ == 0) return status_;
    }
    flush_cv_.notify_one();
    MPSM_RETURN_NOT_OK(Pump(/*block=*/true));
  }
}

Status BufferPool::FlushUpTo(disk::PageId limit) {
  // Passive wait: the flusher thread both submits and reaps write-backs
  // on its own (it parks in the scheduler while writes are in flight),
  // so this caller only nudges it and sleeps on progress_ — it never
  // pumps the scheduler itself, keeping the recovery committer off the
  // completion path the workers and prefetcher contend on.
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (!status_.ok()) return status_;
    bool outstanding = false;
    for (const Frame& f : frames_) {
      // dirty covers mid-flush frames too (the flag clears when the
      // write-back *completes*, not when it is submitted).
      if (f.dirty && f.state == Frame::State::kResident &&
          f.page <= limit) {
        outstanding = true;
        break;
      }
    }
    if (!outstanding) return status_;
    flush_cv_.notify_one();
    // Bounded so a notify racing this wait costs a timeout, not a hang
    // (the flusher cannot flush a dirty frame while a reader pins it;
    // re-checking picks up the unpin).
    progress_.wait_for(lock, std::chrono::microseconds(200));
  }
}

Status BufferPool::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return status_;
    closed_ = true;  // rejects new appends/pins; parked pins fail below
  }
  FlushAll();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_flusher_ = true;
  }
  flush_cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
  // Reap outstanding loads: no backend write may land in a frame after
  // the arenas die with this pool.
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (loading_frames_ == 0 && writes_inflight_ == 0) break;
    }
    Pump(/*block=*/true);
  }
  std::lock_guard<std::mutex> lock(mu_);
  while (!parked_pins_.empty()) {
    const PagePinRequest& request = parked_pins_.front();
    client_queues_[request.queue].push_back(PagePinCompletion{
        request.user_data, kInvalidFrame,
        Status::Internal("buffer pool closed")});
    parked_pins_.pop_front();
  }
  // Fold this pool's lifetime totals into the global mpsm_pool_*
  // families (reached once: a second Close returns early above).
  auto& registry = obs::MetricsRegistry::Global();
  static obs::Counter& hits = registry.counter(
      "mpsm_pool_hits_total", "Pins served from a resident frame");
  static obs::Counter& misses = registry.counter(
      "mpsm_pool_misses_total", "Pins that required or joined a device read");
  static obs::Counter& evictions = registry.counter(
      "mpsm_pool_evictions_total", "Clean frames reclaimed by the clock hand");
  static obs::Counter& writebacks = registry.counter(
      "mpsm_pool_writebacks_total", "Dirty frames written back to the spool");
  static obs::Counter& appends = registry.counter(
      "mpsm_pool_append_pages_total", "Pages appended via the write-back path");
  static obs::Counter& deferred = registry.counter(
      "mpsm_pool_deferred_pins_total",
      "Pin requests parked because every frame was busy");
  static obs::Counter& append_stall = registry.counter(
      "mpsm_pool_append_stall_ns_total",
      "Appender wall time waiting for a free frame");
  hits.Add(hits_);
  misses.Add(misses_);
  evictions.Add(evictions_);
  writebacks.Add(writebacks_);
  appends.Add(append_pages_);
  deferred.Add(deferred_pins_);
  append_stall.Add(append_stall_ns_);
  return status_;
}

Status BufferPool::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return status_;
}

void BufferPool::AddStallNs(uint64_t ns) { scheduler_->AddStallNs(ns); }

BufferPoolStats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  BufferPoolStats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.evictions = evictions_;
  stats.writebacks = writebacks_;
  stats.append_pages = append_pages_;
  stats.append_stall_ns = append_stall_ns_;
  stats.deferred_pins = deferred_pins_;
  stats.frames = options_.frames;
  stats.pool_nodes = pool_nodes_;
  return stats;
}

}  // namespace mpsm::bufferpool

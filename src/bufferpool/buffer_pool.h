// BufferPool: a pinned-frame page cache between D-MPSM's disk clients
// and the async I/O subsystem (docs/storage.md).
//
// The pool owns a fixed budget of page-sized frames (NUMA-interleaved,
// arena-backed) and a page table mapping spool page ids to resident
// frames. Clients pin pages asynchronously — SubmitPins mirrors the
// IoScheduler's submit/drain shape, so a hit completes immediately
// from RAM while a miss flows through the coalescing scheduler — and
// release them with Unpin once decoded. Clock (second-chance) eviction
// reclaims clean, unpinned, unreferenced frames; pinned frames are
// never evicted, and dirty frames are written back before reuse.
//
// The write path makes run spooling non-blocking: AppendPage encodes
// the page into a frame and returns, while a background flusher thread
// gathers dirty unpinned frames (sorted by page id so the scheduler
// coalesces neighbors into vectored pwritev batches) and retires them
// through SubmitWrites. A worker only stalls when every frame is
// pinned, loading, or awaiting write-back — that wait is the
// spool-write stall the DMpsmReport A/B measures.
//
// There is no pool thread for reads and no completion callback: like
// the scheduler underneath, progress happens when some caller Pumps.
// Every blocking wait in the pool pumps the scheduler, so any stalled
// thread drives everyone's I/O forward (poll-or-steal, docs/io.md).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "disk/page_store.h"
#include "io/io_scheduler.h"
#include "numa/arena.h"
#include "numa/topology.h"
#include "obs/trace.h"
#include "util/status.h"

namespace mpsm::bufferpool {

/// Index into the pool's frame table; stable while the caller holds a
/// pin on the frame.
using FrameId = uint32_t;
inline constexpr FrameId kInvalidFrame = 0xffffffffu;

/// Pool tuning; Validate() is called by Create and by the front doors
/// that derive these knobs (DMpsmOptions::pool_budget_bytes).
struct BufferPoolOptions {
  /// Frame budget in pages (>= 1). frames * page_bytes is the pool's
  /// RAM footprint.
  size_t frames = 64;
  /// Client pin-completion queues (>= 1); pin requests name theirs.
  uint32_t client_queues = 1;
  /// Most dirty frames gathered into one flush submission (>= 1).
  size_t flush_batch_pages = 8;
  /// Scheduler completion queues the pool owns for its own traffic
  /// (loads and write-backs must differ).
  uint32_t scheduler_load_queue = 0;
  uint32_t scheduler_write_queue = 1;

  Status Validate() const;
};

/// One page pin: make `page` resident and deliver a pinned frame to
/// client queue `queue`, carrying `user_data`.
struct PagePinRequest {
  disk::PageId page = 0;
  uint64_t user_data = 0;
  uint32_t queue = 0;
};

/// One granted (or failed) pin. On success `frame` is pinned for the
/// caller: read its bytes via Data(frame), then Unpin(frame). On error
/// `frame` is kInvalidFrame and there is nothing to unpin.
struct PagePinCompletion {
  uint64_t user_data = 0;
  FrameId frame = kInvalidFrame;
  Status status;
};

/// Cumulative pool counters (DMpsmReport observability).
struct BufferPoolStats {
  /// Pins served from a resident frame (no device read).
  uint64_t hits = 0;
  /// Pins that required (or joined) a device read.
  uint64_t misses = 0;
  /// Clean frames reclaimed by the clock hand.
  uint64_t evictions = 0;
  /// Dirty frames successfully written back to the spool.
  uint64_t writebacks = 0;
  /// Pages appended through the write-back path.
  uint64_t append_pages = 0;
  /// Wall nanoseconds appenders spent waiting for a free frame.
  uint64_t append_stall_ns = 0;
  /// Pin requests that had to park because every frame was busy.
  uint64_t deferred_pins = 0;
  /// Configured frame budget.
  size_t frames = 0;
  /// Distinct NUMA nodes the frames are homed on.
  uint32_t pool_nodes = 1;
};

/// Pinned-frame buffer pool over one PageStore + IoScheduler.
class BufferPool {
 public:
  /// Creates a pool of options.frames frames of store->page_bytes()
  /// bytes each. `store` and `scheduler` are borrowed and must outlive
  /// the pool; the pool owns scheduler completion queues
  /// options.scheduler_{load,write}_queue (no other client may drain
  /// them). `topology` (optional) interleaves frames across its nodes.
  static Result<std::unique_ptr<BufferPool>> Create(
      disk::PageStore* store, io::IoScheduler* scheduler,
      BufferPoolOptions options, const numa::Topology* topology = nullptr);

  ~BufferPool();
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Queues `count` pins. Hits complete onto their client queue before
  /// this returns; misses complete once their read lands (drive with
  /// Pump, collect with DrainPins). When every frame is busy a miss
  /// parks and is retried as frames free up — Submit never fails for
  /// lack of frames.
  Status SubmitPins(const PagePinRequest* requests, size_t count);

  /// Drives the pool: pumps the scheduler, applies load/write-back
  /// completions, retries parked pins. With `block`, waits until
  /// something progresses (or a short timeout elapses — re-check your
  /// condition and call again).
  Status Pump(bool block);

  /// Pops up to `max` pin completions from client queue `queue`.
  size_t DrainPins(uint32_t queue, PagePinCompletion* out, size_t max);

  /// Bytes of a pinned frame (page_bytes() of them). Valid only
  /// between the pin completion and Unpin.
  const char* Data(FrameId frame) const;

  /// Releases one pin. The frame stays cached (second chance) until
  /// the clock evicts it.
  void Unpin(FrameId frame);

  /// Appends one page through the write-back cache: allocates the next
  /// spool page id, encodes the tuples into a frame, marks it dirty,
  /// and returns without touching the device. `stall_ns` (optional)
  /// accumulates the time spent waiting for a free frame.
  Result<disk::PageId> AppendPage(const Tuple* tuples, size_t count,
                                  uint64_t* stall_ns = nullptr);

  /// Blocks until no frame is dirty or mid-write-back (tests and the
  /// direct-read oracle; Close calls it). Returns the pool status.
  Status FlushAll();

  /// Durability barrier up to a spool position: blocks until every
  /// dirty frame holding a page id <= `limit` has retired its
  /// write-back. The data is then in the kernel's page cache — pair
  /// with IoScheduler::SubmitFlush (fdatasync) to make it durable. The
  /// recovery journal calls this before committing a run record
  /// (docs/recovery.md). Returns the pool status.
  Status FlushUpTo(disk::PageId limit);

  /// Flushes everything, stops the flusher thread, reaps every
  /// in-flight pool operation, and fails still-parked pins. Idempotent.
  /// After Close only stats() and status() are meaningful.
  Status Close();

  /// First I/O error the pool saw (reads or write-backs). A failed
  /// write-back latches here and surfaces through FlushAll/Close into
  /// the join's report.
  Status status() const;

  /// Forwards caller stall time to the scheduler's io_stall_ns.
  void AddStallNs(uint64_t ns);

  BufferPoolStats stats() const;
  const BufferPoolOptions& options() const { return options_; }
  size_t page_bytes() const { return page_bytes_; }
  /// The underlying scheduler (e.g. for its batch-size knobs). Its
  /// pool-owned completion queues must still not be drained directly.
  io::IoScheduler* scheduler() const { return scheduler_; }

 private:
  struct Frame {
    enum class State : uint8_t { kFree, kLoading, kResident };
    char* data = nullptr;
    numa::NodeId home = 0;
    disk::PageId page = 0;
    uint32_t pins = 0;
    State state = State::kFree;
    bool dirty = false;
    bool flushing = false;
    bool referenced = false;  // clock second-chance bit
    /// Pins awaiting this frame's in-flight load: (user_data, queue).
    std::vector<std::pair<uint64_t, uint32_t>> waiters;
  };

  BufferPool(disk::PageStore* store, io::IoScheduler* scheduler,
             BufferPoolOptions options, const numa::Topology* topology);

  /// Clock scan for a reusable frame: skips pinned/loading/flushing
  /// frames, clears referenced bits, nudges dirty frames toward the
  /// flusher, evicts a clean victim. kInvalidFrame when none exists.
  FrameId TryTakeFrameLocked();
  /// Routes one pin: hit, join-loading, fresh load (appended to
  /// `reads`), or parked. Returns false when parked.
  bool RoutePinLocked(const PagePinRequest& request,
                      std::vector<io::PageFetchRequest>& reads);
  /// Retries parked pins in FIFO order (or fails them all when the
  /// pool status has latched an error — a parked pin must never wait
  /// on a frame that will not transition). Returns true when any pin
  /// was routed or failed.
  bool CollectParkedLocked(std::vector<io::PageFetchRequest>& reads);
  /// Fails every parked pin with the latched status_ (no-op while OK).
  /// Called at the latch points so waiters learn promptly.
  void FailParkedLocked();
  /// Submits `reads` with mu_ dropped; on a rejected submit fails the
  /// affected frames' waiters.
  Status SubmitLoads(std::unique_lock<std::mutex>& lock,
                     std::vector<io::PageFetchRequest>& reads);
  /// Applies completions from the pool's scheduler queues. Returns
  /// true when at least one was processed.
  bool DrainSchedulerQueues();
  void ProcessLoadLocked(FrameId frame, const Status& status);
  void ProcessWriteLocked(FrameId frame, const Status& status);
  bool HasFlushCandidateLocked() const;
  void FlusherLoop();

  disk::PageStore* const store_;
  io::IoScheduler* const scheduler_;
  /// The creating thread's trace sink (the query being executed when
  /// the pool was built); the flusher thread attaches to it so
  /// write-back activity lands in that query's trace.
  obs::TraceSink* const trace_;
  const BufferPoolOptions options_;
  const size_t page_bytes_;
  uint32_t pool_nodes_ = 1;
  std::vector<std::unique_ptr<numa::Arena>> arenas_;

  mutable std::mutex mu_;
  /// Generic progress signal: a frame freed, a pin delivered, a
  /// write-back retired. Blocking Pumps wait here when the device is
  /// idle.
  std::condition_variable progress_;
  std::condition_variable flush_cv_;
  std::vector<Frame> frames_;
  std::unordered_map<disk::PageId, FrameId> table_;
  std::deque<PagePinRequest> parked_pins_;
  std::vector<std::deque<PagePinCompletion>> client_queues_;
  size_t clock_hand_ = 0;
  size_t dirty_frames_ = 0;     // dirty (whether or not mid-flush)
  size_t loading_frames_ = 0;
  size_t writes_inflight_ = 0;  // flush pages submitted, not completed
  bool stop_flusher_ = false;
  bool closed_ = false;
  Status status_;
  std::thread flusher_;

  // Stats (under mu_).
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  uint64_t writebacks_ = 0;
  uint64_t append_pages_ = 0;
  uint64_t append_stall_ns_ = 0;
  uint64_t deferred_pins_ = 0;
};

}  // namespace mpsm::bufferpool

// The D-MPSM page index (§3.1, Figure 4).
//
// During run generation every spooled page contributes one entry
// <v_ij, S_i> — the first (minimal) key on the j-th page of run S_i.
// Sorting the entries by key yields the order in which both the
// prefetcher and all workers move through the key domain. The index is
// read-only after construction, so it needs no synchronization.
#pragma once

#include <cstdint>
#include <vector>

#include "disk/page_store.h"

namespace mpsm::disk {

/// One index entry: page `page` of run `run` starts at key `min_key`
/// and holds `tuple_count` tuples.
struct PageIndexEntry {
  uint64_t min_key;
  uint32_t run;
  PageId page;
  uint32_t tuple_count;
};

/// The sorted page index over all spooled runs of one input.
class PageIndex {
 public:
  /// Adds an entry (any order). Not thread-safe; each worker collects
  /// its own entries and they are merged via Append.
  void Add(const PageIndexEntry& entry) { entries_.push_back(entry); }

  /// Appends another index's entries (used to merge per-worker parts).
  void Append(const PageIndex& other);

  /// Sorts entries by (min_key, run, page). Call once after all Adds.
  void Finalize();

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const PageIndexEntry& operator[](size_t i) const { return entries_[i]; }

  const std::vector<PageIndexEntry>& entries() const { return entries_; }

 private:
  std::vector<PageIndexEntry> entries_;
};

}  // namespace mpsm::disk

#include "disk/page_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>
#include <vector>

namespace mpsm::disk {

PageStore::PageStore(PageStoreOptions options)
    : options_(std::move(options)) {}

PageStore::~PageStore() {
  if (fd_ >= 0) ::close(fd_);
}

Status PageStore::Open() {
  if (!options_.persist_path.empty()) {
    // Persistent mode: a named file that survives the process, so a
    // restarted query can re-attach durable spooled runs. Never
    // unlinked here — RemovePersistent() deletes it once the recovery
    // manifest is retired.
    fd_ = ::open(options_.persist_path.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd_ < 0) {
      return Status::IoError(std::string("open ") + options_.persist_path +
                             ": " + std::strerror(errno));
    }
    return Status::OK();
  }
  std::string path = options_.directory + "/mpsm_spool_XXXXXX";
  std::vector<char> buf(path.begin(), path.end());
  buf.push_back('\0');
  fd_ = ::mkstemp(buf.data());
  if (fd_ < 0) {
    return Status::IoError(std::string("mkstemp: ") + std::strerror(errno));
  }
  // Unlink immediately: the file vanishes when the store closes.
  ::unlink(buf.data());
  return Status::OK();
}

Status PageStore::AdoptPages(uint64_t pages) {
  if (options_.persist_path.empty()) {
    return Status::InvalidArgument(
        "AdoptPages requires a persistent page store");
  }
  uint64_t expected = 0;
  if (!next_page_.compare_exchange_strong(expected, pages,
                                          std::memory_order_relaxed)) {
    return Status::Internal("AdoptPages after allocation started");
  }
  return Status::OK();
}

void PageStore::RemovePersistent() {
  if (!options_.persist_path.empty()) {
    ::unlink(options_.persist_path.c_str());
  }
}

PageId PageStore::AllocatePage() {
  pages_written_.fetch_add(1, std::memory_order_relaxed);
  return next_page_.fetch_add(1, std::memory_order_relaxed);
}

void PageStore::EncodePage(const Tuple* data, size_t count,
                           char* dest) const {
  // On-disk layout: [count: u64][tuples...][zero tail].
  const uint64_t count64 = count;
  std::memcpy(dest, &count64, sizeof(count64));
  std::memcpy(dest + sizeof(count64), data, count * sizeof(Tuple));
  const size_t used = sizeof(count64) + count * sizeof(Tuple);
  std::memset(dest + used, 0, page_bytes() - used);
}

Result<PageId> PageStore::WritePage(const Tuple* data, size_t count) {
  if (fd_ < 0) return Status::Internal("page store not open");
  if (count > options_.tuples_per_page) {
    return Status::InvalidArgument("page overflow");
  }
  const PageId id = next_page_.fetch_add(1, std::memory_order_relaxed);

  std::vector<char> page(page_bytes());
  EncodePage(data, count, page.data());

  // Resume partial writes (signals, quota boundaries) instead of
  // failing the query on a legal short pwrite.
  size_t done = 0;
  while (done < page.size()) {
    const ssize_t written =
        ::pwrite(fd_, page.data() + done, page.size() - done,
                 static_cast<off_t>(OffsetOfPage(id) + done));
    if (written < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("pwrite: ") +
                             std::strerror(errno));
    }
    if (written == 0) {
      return Status::IoError("pwrite: no progress (disk full?)");
    }
    done += static_cast<size_t>(written);
  }
  pages_written_.fetch_add(1, std::memory_order_relaxed);
  if (options_.io_delay_us > 0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(options_.io_delay_us));
  }
  return id;
}

Result<size_t> PageStore::ReadPage(PageId id, Tuple* out) const {
  if (fd_ < 0) return Status::Internal("page store not open");
  if (id >= next_page_.load(std::memory_order_relaxed)) {
    return Status::InvalidArgument("page id out of range");
  }
  std::vector<char> page(page_bytes());
  size_t done = 0;
  while (done < page.size()) {
    const ssize_t bytes =
        ::pread(fd_, page.data() + done, page.size() - done,
                static_cast<off_t>(OffsetOfPage(id) + done));
    if (bytes < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("pread: ") + std::strerror(errno));
    }
    if (bytes == 0) {
      // A fully written page can never hit EOF mid-range.
      return Status::IoError("pread: unexpected EOF (short read)");
    }
    done += static_cast<size_t>(bytes);
  }
  if (options_.io_delay_us > 0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(options_.io_delay_us));
  }
  return DecodePage(page.data(), out);
}

Result<size_t> PageStore::DecodePage(const char* raw, Tuple* out) const {
  uint64_t count = 0;
  std::memcpy(&count, raw, sizeof(count));
  if (count > options_.tuples_per_page) {
    return Status::Internal("corrupt page header");
  }
  std::memcpy(out, raw + sizeof(count), count * sizeof(Tuple));
  pages_read_.fetch_add(1, std::memory_order_relaxed);
  return static_cast<size_t>(count);
}

IoStats PageStore::io_stats() const {
  IoStats stats;
  stats.pages_written = pages_written_.load(std::memory_order_relaxed);
  stats.pages_read = pages_read_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace mpsm::disk

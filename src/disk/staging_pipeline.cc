#include "disk/staging_pipeline.h"

#include <cassert>

namespace mpsm::disk {

StagingPipeline::StagingPipeline(const PageStore& store,
                                 const PageIndex& index,
                                 size_t capacity_pages,
                                 uint32_t num_consumers,
                                 bool consumer_loads)
    : store_(store),
      index_(index),
      capacity_(capacity_pages == 0 ? 1 : capacity_pages),
      num_consumers_(num_consumers),
      consumer_loads_(consumer_loads),
      slots_(capacity_) {}

StagingPipeline::~StagingPipeline() { Stop(); }

void StagingPipeline::Start() {
  prefetch_thread_ = std::thread([this] { PrefetchLoop(); });
}

void StagingPipeline::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  frame_freed_.notify_all();
  frame_loaded_.notify_all();
  if (prefetch_thread_.joinable()) prefetch_thread_.join();
}

bool StagingPipeline::ClaimableLocked() const {
  if (stop_ || next_claim_ >= index_.size()) return false;
  const Slot& slot = slots_[next_claim_ % capacity_];
  // A ring slot is free once it holds no frame, no in-flight load, and
  // no pending releases of an older position.
  return slot.frame == nullptr && !slot.loading &&
         slot.releases_remaining == 0;
}

std::optional<size_t> StagingPipeline::TryClaimLocked() {
  if (!ClaimableLocked()) return std::nullopt;
  slots_[next_claim_ % capacity_].loading = true;
  return next_claim_++;
}

void StagingPipeline::LoadPosition(size_t pos) {
  // I/O happens outside the lock: a read (and any synthetic delay)
  // must not block consumers releasing other frames or other loaders.
  auto frame = std::make_unique<PageFrame>();
  frame->entry = index_[pos];
  frame->tuples.resize(store_.tuples_per_page());
  auto count = store_.ReadPage(frame->entry.page, frame->tuples.data());
  {
    std::lock_guard<std::mutex> lock(mu_);
    Slot& slot = slots_[pos % capacity_];
    slot.loading = false;
    if (!count.ok()) {
      if (status_.ok()) status_ = count.status();
      stop_ = true;
    } else if (stop_) {
      // Error shutdown elsewhere: drop the frame, consumers drain.
    } else {
      frame->tuples.resize(*count);
      slot.frame = std::move(frame);
      slot.pos = pos;
      slot.releases_remaining = num_consumers_;
      ++resident_;
      peak_resident_ = std::max(peak_resident_, resident_);
    }
  }
  frame_loaded_.notify_all();
  frame_freed_.notify_all();
}

void StagingPipeline::PrefetchLoop() {
  while (true) {
    size_t pos;
    {
      std::unique_lock<std::mutex> lock(mu_);
      frame_freed_.wait(lock, [&] {
        return stop_ || next_claim_ >= index_.size() || ClaimableLocked();
      });
      auto claimed = TryClaimLocked();
      if (!claimed.has_value()) {
        if (stop_ || next_claim_ >= index_.size()) return;
        continue;  // a consumer claimed it first; re-evaluate
      }
      pos = *claimed;
    }
    LoadPosition(pos);
  }
}

const PageFrame* StagingPipeline::Acquire(size_t pos,
                                          uint64_t* loads_performed) {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    Slot& slot = slots_[pos % capacity_];
    if (slot.pos == pos && slot.frame != nullptr) return slot.frame.get();
    if (stop_) return nullptr;
    if (consumer_loads_) {
      // Productive wait: fetch the next claimable page ourselves (it is
      // `pos` or an earlier/later position some consumer needs).
      if (auto claimed = TryClaimLocked()) {
        lock.unlock();
        LoadPosition(*claimed);
        if (loads_performed != nullptr) ++*loads_performed;
        lock.lock();
        continue;
      }
    }
    frame_loaded_.wait(lock, [&] {
      const Slot& s = slots_[pos % capacity_];
      return (s.pos == pos && s.frame != nullptr) || stop_ ||
             (consumer_loads_ && ClaimableLocked());
    });
  }
}

void StagingPipeline::Release(size_t pos) {
  bool freed = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Slot& slot = slots_[pos % capacity_];
    if (slot.pos != pos || slot.releases_remaining == 0) return;
    if (--slot.releases_remaining == 0) {
      slot.frame.reset();
      slot.pos = SIZE_MAX;
      --resident_;
      freed = true;
    }
  }
  if (freed) {
    frame_freed_.notify_all();
    // In consumer_loads mode a freed slot is also a claim opportunity
    // for consumers blocked in Acquire.
    if (consumer_loads_) frame_loaded_.notify_all();
  }
}

Status StagingPipeline::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return status_;
}

}  // namespace mpsm::disk

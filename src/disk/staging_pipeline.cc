#include "disk/staging_pipeline.h"

#include <algorithm>

#include "util/timer.h"

namespace mpsm::disk {

StagingPipeline::StagingPipeline(const PageStore& store,
                                 const PageIndex& index,
                                 size_t capacity_pages,
                                 uint32_t num_consumers,
                                 bufferpool::BufferPool* pool,
                                 bool consumer_loads,
                                 const numa::Topology* topology)
    : store_(store),
      index_(index),
      capacity_(capacity_pages == 0 ? 1 : capacity_pages),
      num_consumers_(num_consumers),
      consumer_loads_(consumer_loads),
      pool_(pool),
      slots_(capacity_) {
  const uint32_t nodes =
      topology != nullptr ? std::max(1u, topology->num_nodes()) : 1;
  staging_nodes_ = static_cast<uint32_t>(
      std::min<size_t>(nodes, capacity_));
  node_queues_ = std::min<uint32_t>(pool_->options().client_queues,
                                    staging_nodes_);
  // Slot i's pin completions route to node i % staging_nodes_'s queue,
  // so each consumer drains its own node's arrivals first. The page
  // bytes themselves live in the pool's NUMA-interleaved frames.
  for (size_t i = 0; i < capacity_; ++i) {
    slots_[i].home = static_cast<numa::NodeId>(i % staging_nodes_);
  }
}

StagingPipeline::~StagingPipeline() { Stop(); }

void StagingPipeline::Start() {
  prefetch_thread_ = std::thread([this] { PrefetchLoop(); });
}

void StagingPipeline::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  frame_freed_.notify_all();
  frame_loaded_.notify_all();
  // The prefetch loop only exits once every submitted pin has been
  // reaped, so joining it guarantees no pool frame stays pinned on our
  // behalf after this returns.
  if (prefetch_thread_.joinable()) prefetch_thread_.join();
  // Never-started pipelines (or consumer-submitted stragglers on an
  // error path) still need their in-flight pins reaped here.
  std::unique_lock<std::mutex> lock(mu_);
  while (outstanding_ > 0) {
    if (!DrainAndPublishLocked(lock, /*node=*/0)) {
      lock.unlock();
      pool_->Pump(/*block=*/true);
      lock.lock();
    }
  }
}

bool StagingPipeline::ClaimableLocked() const {
  if (stop_ || next_claim_ >= index_.size()) return false;
  // A ring slot is reusable once it holds no frame, no in-flight
  // fetch, and no pending releases of an older position.
  return slots_[next_claim_ % capacity_].state == SlotState::kFree;
}

bool StagingPipeline::ClaimAndSubmitLocked(
    std::unique_lock<std::mutex>& lock, FetchActivity* activity) {
  bufferpool::PagePinRequest requests[io::kMaxIovPerRead];
  const size_t batch_max = std::min(
      pool_->scheduler()->options().batch_pages, io::kMaxIovPerRead);
  size_t n = 0;
  while (n < batch_max && ClaimableLocked()) {
    const size_t pos = next_claim_++;
    Slot& slot = slots_[pos % capacity_];
    slot.state = SlotState::kInFlight;
    slot.pos = pos;
    requests[n].page = index_[pos].page;
    requests[n].user_data = pos;
    requests[n].queue = slot.home % node_queues_;
    ++n;
  }
  if (n == 0) return false;
  outstanding_ += n;
  lock.unlock();
  const Status submitted = pool_->SubmitPins(requests, n);
  lock.lock();
  // Wake the prefetch thread: with pins in flight it must park in the
  // pool (Pump) rather than on the ring condvar, or a completion could
  // land with every pipeline thread asleep.
  frame_freed_.notify_all();
  if (!submitted.ok()) {
    // SubmitPins rejects only malformed requests (a pipeline bug, not
    // a device error); fail the query and let the janitor loop drain.
    if (status_.ok()) status_ = submitted;
    stop_ = true;
    frame_loaded_.notify_all();
  }
  if (activity != nullptr) {
    activity->pages_loaded += n;
    activity->batches_submitted += 1;
  }
  return true;
}

bool StagingPipeline::DrainAndPublishLocked(
    std::unique_lock<std::mutex>& lock, numa::NodeId node) {
  lock.unlock();
  pool_->Pump(/*block=*/false);
  constexpr size_t kMaxDrain = 2 * io::kMaxIovPerRead;
  bufferpool::PagePinCompletion completions[kMaxDrain];
  size_t n = 0;
  // The caller's own node queue first (its arrivals are node-local),
  // then the other node queues round-robin.
  const uint32_t first = node % node_queues_;
  for (uint32_t q = 0; q < node_queues_ && n < kMaxDrain; ++q) {
    n += pool_->DrainPins((first + q) % node_queues_, completions + n,
                          kMaxDrain - n);
  }
  // Decode outside the lock: an in-flight slot is exclusively owned by
  // whoever holds its completion. The pool frame is borrowed only for
  // the copy-out and unpinned immediately (second chance keeps it
  // cached for other readers of the same page).
  std::vector<Status> decode_status(n);
  for (size_t i = 0; i < n; ++i) {
    if (!completions[i].status.ok()) {
      decode_status[i] = completions[i].status;
      continue;
    }
    const size_t pos = completions[i].user_data;
    Slot& slot = slots_[pos % capacity_];
    slot.frame.tuples.resize(store_.tuples_per_page());
    auto count = store_.DecodePage(pool_->Data(completions[i].frame),
                                   slot.frame.tuples.data());
    pool_->Unpin(completions[i].frame);
    if (!count.ok()) {
      decode_status[i] = count.status();
      continue;
    }
    slot.frame.tuples.resize(*count);
    slot.frame.entry = index_[pos];
  }
  lock.lock();
  for (size_t i = 0; i < n; ++i) {
    const size_t pos = completions[i].user_data;
    Slot& slot = slots_[pos % capacity_];
    --outstanding_;
    ++completed_positions_;
    if (!decode_status[i].ok()) {
      if (status_.ok()) status_ = decode_status[i];
      stop_ = true;
      slot.state = SlotState::kFree;
      slot.pos = SIZE_MAX;
    } else if (stop_) {
      // Error shutdown elsewhere: drop the frame, consumers drain.
      slot.state = SlotState::kFree;
      slot.pos = SIZE_MAX;
    } else {
      slot.state = SlotState::kResident;
      slot.releases_remaining = num_consumers_;
      ++resident_;
      peak_resident_ = std::max(peak_resident_, resident_);
    }
  }
  if (n > 0) {
    frame_loaded_.notify_all();
    frame_freed_.notify_all();
  }
  return n > 0;
}

void StagingPipeline::PrefetchLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    // Exit only once every claimed fetch has completed: this thread is
    // the janitor that guarantees Stop()'s no-pins-left contract.
    if (completed_positions_ >= index_.size()) return;
    if (stop_ && outstanding_ == 0) return;
    bool progressed = false;
    if (!stop_) progressed |= ClaimAndSubmitLocked(lock, nullptr);
    progressed |= DrainAndPublishLocked(lock, /*node=*/0);
    if (progressed) continue;
    if (outstanding_ > 0) {
      // Pins in flight: park in the pool until one lands.
      lock.unlock();
      pool_->Pump(/*block=*/true);
      lock.lock();
    } else {
      // Ring full and nothing in flight: wait for the slowest consumer
      // to free a slot — or for a consumer-submitted pin
      // (outstanding_) that this thread must then pump for.
      frame_freed_.wait(lock, [&] {
        return stop_ || ClaimableLocked() || outstanding_ > 0 ||
               completed_positions_ >= index_.size();
      });
    }
  }
}

const PageFrame* StagingPipeline::Acquire(size_t pos, numa::NodeId node,
                                          FetchActivity* activity) {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    Slot& slot = slots_[pos % capacity_];
    if (slot.pos == pos && slot.state == SlotState::kResident) {
      return &slot.frame;
    }
    if (stop_) return nullptr;
    if (consumer_loads_) {
      // Poll-or-steal: the fetch task is the stealable unit. Pin the
      // next unclaimed batch (it is `pos` or a position some consumer
      // needs) and/or decode+publish arrived pages for everyone.
      bool progressed = ClaimAndSubmitLocked(lock, activity);
      progressed |= DrainAndPublishLocked(lock, node);
      if (progressed) continue;
    }
    // Nothing productive left: this is true I/O stall time.
    WallTimer stall;
    frame_loaded_.wait(lock, [&] {
      const Slot& s = slots_[pos % capacity_];
      return (s.pos == pos && s.state == SlotState::kResident) || stop_ ||
             (consumer_loads_ && ClaimableLocked());
    });
    const auto stalled_ns =
        static_cast<uint64_t>(stall.ElapsedSeconds() * 1e9);
    if (activity != nullptr) activity->stall_ns += stalled_ns;
    pool_->AddStallNs(stalled_ns);
  }
}

void StagingPipeline::Release(size_t pos) {
  bool freed = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Slot& slot = slots_[pos % capacity_];
    if (slot.pos != pos || slot.state != SlotState::kResident ||
        slot.releases_remaining == 0) {
      return;
    }
    if (--slot.releases_remaining == 0) {
      slot.state = SlotState::kFree;
      slot.pos = SIZE_MAX;
      --resident_;
      freed = true;
    }
  }
  if (freed) {
    frame_freed_.notify_all();
    // In consumer_loads mode a freed slot is also a claim opportunity
    // for consumers blocked in Acquire.
    if (consumer_loads_) frame_loaded_.notify_all();
  }
}

Status StagingPipeline::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return status_;
}

}  // namespace mpsm::disk

#include "disk/staging_pipeline.h"

#include <cassert>

namespace mpsm::disk {

StagingPipeline::StagingPipeline(const PageStore& store,
                                 const PageIndex& index,
                                 size_t capacity_pages,
                                 uint32_t num_consumers)
    : store_(store),
      index_(index),
      capacity_(capacity_pages == 0 ? 1 : capacity_pages),
      num_consumers_(num_consumers),
      slots_(capacity_) {}

StagingPipeline::~StagingPipeline() { Stop(); }

void StagingPipeline::Start() {
  prefetch_thread_ = std::thread([this] { PrefetchLoop(); });
}

void StagingPipeline::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  frame_freed_.notify_all();
  frame_loaded_.notify_all();
  if (prefetch_thread_.joinable()) prefetch_thread_.join();
}

void StagingPipeline::PrefetchLoop() {
  while (true) {
    size_t pos;
    {
      std::unique_lock<std::mutex> lock(mu_);
      frame_freed_.wait(lock, [&] {
        return stop_ || (next_load_ < index_.size() &&
                         slots_[next_load_ % capacity_].frame == nullptr &&
                         slots_[next_load_ % capacity_].releases_remaining ==
                             0);
      });
      if (stop_ || next_load_ >= index_.size()) return;
      pos = next_load_;
    }

    // Load outside the lock: the I/O (and any synthetic delay) must not
    // block consumers releasing other frames.
    auto frame = std::make_unique<PageFrame>();
    frame->entry = index_[pos];
    frame->tuples.resize(store_.tuples_per_page());
    auto count = store_.ReadPage(frame->entry.page, frame->tuples.data());
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!count.ok()) {
        status_ = count.status();
        stop_ = true;
      } else {
        frame->tuples.resize(*count);
        Slot& slot = slots_[pos % capacity_];
        slot.frame = std::move(frame);
        slot.pos = pos;
        slot.releases_remaining = num_consumers_;
        ++next_load_;
        ++resident_;
        peak_resident_ = std::max(peak_resident_, resident_);
      }
    }
    frame_loaded_.notify_all();
  }
}

const PageFrame* StagingPipeline::Acquire(size_t pos) {
  std::unique_lock<std::mutex> lock(mu_);
  frame_loaded_.wait(lock, [&] {
    return (slots_[pos % capacity_].pos == pos &&
            slots_[pos % capacity_].frame != nullptr) ||
           (stop_ && next_load_ <= pos);
  });
  return slots_[pos % capacity_].pos == pos
             ? slots_[pos % capacity_].frame.get()
             : nullptr;
}

void StagingPipeline::Release(size_t pos) {
  bool freed = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Slot& slot = slots_[pos % capacity_];
    if (slot.pos != pos || slot.releases_remaining == 0) return;
    if (--slot.releases_remaining == 0) {
      slot.frame.reset();
      slot.pos = SIZE_MAX;
      --resident_;
      freed = true;
    }
  }
  if (freed) frame_freed_.notify_all();
}

Status StagingPipeline::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return status_;
}

}  // namespace mpsm::disk

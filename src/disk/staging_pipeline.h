// The D-MPSM staging pipeline: bounded buffer pool + prefetcher
// (the green/white/yellow page lifecycle of Figure 4).
//
// Workers consume the public input's pages in page-index order. A
// dedicated prefetch thread loads pages ahead of the fastest worker
// into a bounded pool of frames; a frame is released (RAM freed) once
// every worker has processed it — i.e. once the *slowest* worker has
// moved past it. Pool capacity bounds resident RAM; when it is full the
// prefetcher (and any worker that ran ahead) simply waits, throttling
// the fast workers to the slow ones plus the window.
//
// With `consumer_loads` (the stealing scheduler's mode), page fetches
// become stealable tasks: a consumer that would otherwise block on a
// non-resident page claims the next unclaimed index position itself and
// performs the read, so I/O spreads over idle workers instead of
// serializing behind the single prefetch thread.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "disk/page_index.h"
#include "disk/page_store.h"
#include "util/status.h"

namespace mpsm::disk {

/// A resident page: tuples plus the index entry it belongs to.
struct PageFrame {
  std::vector<Tuple> tuples;
  PageIndexEntry entry;
};

/// Shared pipeline over one finalized page index.
class StagingPipeline {
 public:
  /// `capacity_pages` bounds resident frames (>= 1); `num_consumers`
  /// workers will each acquire every index position exactly once.
  /// `consumer_loads` lets blocked consumers claim and perform page
  /// reads themselves (see file comment).
  StagingPipeline(const PageStore& store, const PageIndex& index,
                  size_t capacity_pages, uint32_t num_consumers,
                  bool consumer_loads = false);
  ~StagingPipeline();

  StagingPipeline(const StagingPipeline&) = delete;
  StagingPipeline& operator=(const StagingPipeline&) = delete;

  /// Starts the prefetch thread.
  void Start();

  /// Blocks until index position `pos` is resident; returns its frame,
  /// valid until this consumer calls Release(pos). Returns nullptr when
  /// the pipeline stopped on an I/O error (check status()). In
  /// consumer_loads mode the wait is productive: the caller loads
  /// claimable pages instead of sleeping, and `loads_performed` (when
  /// given) is incremented per page this caller read.
  const PageFrame* Acquire(size_t pos, uint64_t* loads_performed = nullptr);

  /// Signals that this consumer is done with position `pos`. After
  /// num_consumers releases the frame is freed ("green" in Figure 4).
  /// No-op for positions that never became resident (error shutdown).
  void Release(size_t pos);

  /// Stops the prefetcher (joins the thread). Called automatically by
  /// the destructor.
  void Stop();

  /// Highest number of simultaneously resident frames observed.
  size_t peak_resident_pages() const { return peak_resident_; }

  /// First I/O error encountered by a loader, if any.
  Status status() const;

 private:
  void PrefetchLoop();
  /// True when the next unclaimed index position's pool slot is free;
  /// caller must hold mu_. The single claim rule behind TryClaimLocked
  /// and every wait predicate that wakes a would-be loader.
  bool ClaimableLocked() const;
  /// Claims the next unclaimed index position whose pool slot is free;
  /// caller must hold mu_. Returns nullopt when nothing is claimable.
  std::optional<size_t> TryClaimLocked();
  /// Reads the page of claimed position `pos` (no lock held during
  /// I/O) and publishes or discards the frame.
  void LoadPosition(size_t pos);

  const PageStore& store_;
  const PageIndex& index_;
  const size_t capacity_;
  const uint32_t num_consumers_;
  const bool consumer_loads_;

  mutable std::mutex mu_;
  std::condition_variable frame_loaded_;
  std::condition_variable frame_freed_;
  // Ring keyed by index position: slot pos % capacity.
  struct Slot {
    std::unique_ptr<PageFrame> frame;
    size_t pos = SIZE_MAX;
    uint32_t releases_remaining = 0;
    bool loading = false;
  };
  std::vector<Slot> slots_;
  size_t next_claim_ = 0;      // next index position to claim for loading
  size_t resident_ = 0;
  size_t peak_resident_ = 0;
  bool stop_ = false;
  Status status_;
  std::thread prefetch_thread_;
};

}  // namespace mpsm::disk

// The D-MPSM staging pipeline: bounded frame ring + async prefetch
// (the green/white/yellow page lifecycle of Figure 4, fed by the
// buffer pool of src/bufferpool/ — docs/storage.md).
//
// Workers consume the public input's pages in page-index order. Page
// residency flows through a bufferpool::BufferPool: a loader claims a
// *batch* of upcoming index positions and pins their pages (a cached
// page completes immediately; a miss becomes a coalesced vectored read
// through the IoScheduler), and pin completions land in per-NUMA-node
// client queues. A dedicated prefetch thread keeps the ring full; each
// arrived page is decoded into its ring slot and unpinned at once, so
// the pool frame is only borrowed for the copy-out. A slot is released
// once every worker has processed it — i.e. once the *slowest* worker
// has moved past it. Ring capacity bounds resident decoded RAM.
//
// With `consumer_loads` (the stealing scheduler's mode), a consumer
// whose page is not yet resident does not sleep: it claims and pins
// the next unclaimed batch itself, drains pin queues (its own node's
// first), and decodes arrived pages for everyone — poll-or-steal,
// where the stealable unit is the page-fetch task. Only when no fetch
// work exists does it block, and that wait is recorded as io_stall_ns.
// (The phase-4 *walk* morsels themselves cannot be the steal unit: two
// walks serialized on one worker deadlock against the bounded ring's
// all-consumers-release rule — see docs/io.md.)
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bufferpool/buffer_pool.h"
#include "disk/page_index.h"
#include "disk/page_store.h"
#include "numa/topology.h"
#include "util/status.h"

namespace mpsm::disk {

/// A resident page: tuples plus the index entry it belongs to.
struct PageFrame {
  std::vector<Tuple> tuples;
  PageIndexEntry entry;
};

/// What one Acquire call did while it waited (the caller charges these
/// to its per-worker counters).
struct FetchActivity {
  /// Page fetches this caller claimed and submitted.
  uint64_t pages_loaded = 0;
  /// Submit batches this caller issued (PerfCounters::io_submits).
  uint64_t batches_submitted = 0;
  /// Wall nanoseconds blocked with no fetch work available
  /// (PerfCounters::io_stall_ns).
  uint64_t stall_ns = 0;
};

/// Shared pipeline over one finalized page index.
class StagingPipeline {
 public:
  /// `capacity_pages` bounds resident decoded frames (>= 1);
  /// `num_consumers` workers will each acquire every index position
  /// exactly once. Pages are pinned through `pool` (borrowed; must
  /// outlive the pipeline), whose client queues [0, nodes) this
  /// pipeline owns. `consumer_loads` lets blocked consumers claim and
  /// pin batches themselves (see file comment). `topology` (optional)
  /// routes each slot's pin completions to its node's queue.
  StagingPipeline(const PageStore& store, const PageIndex& index,
                  size_t capacity_pages, uint32_t num_consumers,
                  bufferpool::BufferPool* pool, bool consumer_loads = false,
                  const numa::Topology* topology = nullptr);
  ~StagingPipeline();

  StagingPipeline(const StagingPipeline&) = delete;
  StagingPipeline& operator=(const StagingPipeline&) = delete;

  /// Starts the prefetch thread.
  void Start();

  /// Blocks until index position `pos` is resident; returns its frame,
  /// valid until this consumer calls Release(pos). Returns nullptr when
  /// the pipeline stopped on an I/O error (check status()). `node` is
  /// the caller's NUMA node (its completion queue is drained first);
  /// `activity` (optional) accumulates the fetch work and stall time
  /// this call performed.
  const PageFrame* Acquire(size_t pos, numa::NodeId node = 0,
                           FetchActivity* activity = nullptr);

  /// Signals that this consumer is done with position `pos`. After
  /// num_consumers releases the frame is freed ("green" in Figure 4).
  /// No-op for positions that never became resident (error shutdown).
  void Release(size_t pos);

  /// Stops the prefetcher (joins the thread) and reaps every pin this
  /// pipeline still has in flight, so no pool frame stays pinned after
  /// destruction. Called automatically by the destructor.
  void Stop();

  /// Highest number of simultaneously resident frames observed.
  size_t peak_resident_pages() const { return peak_resident_; }

  /// Distinct NUMA nodes the ring's pin queues are spread over.
  uint32_t staging_nodes() const { return staging_nodes_; }

  /// First I/O error encountered, if any.
  Status status() const;

 private:
  enum class SlotState : uint8_t { kFree, kInFlight, kResident };
  struct Slot {
    numa::NodeId home = 0;
    PageFrame frame;  // tuple storage reused across positions
    SlotState state = SlotState::kFree;
    size_t pos = SIZE_MAX;
    uint32_t releases_remaining = 0;
  };

  void PrefetchLoop();
  /// True when the next unclaimed index position's ring slot is free;
  /// caller must hold mu_.
  bool ClaimableLocked() const;
  /// Claims up to the scheduler's batch size of consecutive claimable
  /// positions and pins them (lock dropped around the submit).
  /// Returns true when at least one pin was submitted.
  bool ClaimAndSubmitLocked(std::unique_lock<std::mutex>& lock,
                            FetchActivity* activity);
  /// Pumps the pool and drains pin queues (preferring `node`),
  /// decoding, unpinning and publishing arrived frames. Returns true
  /// when at least one completion was processed.
  bool DrainAndPublishLocked(std::unique_lock<std::mutex>& lock,
                             numa::NodeId node);

  const PageStore& store_;
  const PageIndex& index_;
  const size_t capacity_;
  const uint32_t num_consumers_;
  const bool consumer_loads_;
  bufferpool::BufferPool* const pool_;
  uint32_t node_queues_ = 1;  // pool client queues this pipeline owns
  uint32_t staging_nodes_ = 1;

  mutable std::mutex mu_;
  std::condition_variable frame_loaded_;
  std::condition_variable frame_freed_;
  // Ring keyed by index position: slot pos % capacity.
  std::vector<Slot> slots_;
  size_t next_claim_ = 0;  // next index position to claim for loading
  size_t completed_positions_ = 0;  // published or discarded
  size_t outstanding_ = 0;          // submitted, not yet completed
  size_t resident_ = 0;
  size_t peak_resident_ = 0;
  bool stop_ = false;
  Status status_;
  std::thread prefetch_thread_;
};

}  // namespace mpsm::disk

// The D-MPSM staging pipeline: bounded buffer pool + async prefetch
// (the green/white/yellow page lifecycle of Figure 4, now fed by the
// batched page-I/O subsystem of src/io/).
//
// Workers consume the public input's pages in page-index order. Page
// fetches flow through an io::IoScheduler: a loader claims a *batch*
// of upcoming index positions, submits them as coalesced vectored
// reads, and completions land in per-NUMA-node queues. A dedicated
// prefetch thread keeps the ring full; a frame is released (RAM freed)
// once every worker has processed it — i.e. once the *slowest* worker
// has moved past it. Pool capacity bounds resident RAM.
//
// With `consumer_loads` (the stealing scheduler's mode), a consumer
// whose page is not yet resident does not sleep: it claims and submits
// the next unclaimed batch itself, drains completion queues (its own
// node's first), and decodes arrived pages for everyone — poll-or-
// steal, where the stealable unit is the page-fetch task. Only when no
// fetch work exists does it block, and that wait is recorded as
// io_stall_ns. (The phase-4 *walk* morsels themselves cannot be the
// steal unit: two walks serialized on one worker deadlock against the
// bounded pool's all-consumers-release rule — see docs/io.md.)
//
// Frame buffers are pinned for the I/O subsystem and NUMA-interleaved:
// slot i's page buffer comes from a numa::Arena homed on node
// i % nodes, so the shared pool's bandwidth spreads over every memory
// controller instead of landing on whichever worker touched it first.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "disk/page_index.h"
#include "disk/page_store.h"
#include "io/io_scheduler.h"
#include "numa/arena.h"
#include "numa/topology.h"
#include "util/status.h"

namespace mpsm::disk {

/// A resident page: tuples plus the index entry it belongs to.
struct PageFrame {
  std::vector<Tuple> tuples;
  PageIndexEntry entry;
};

/// What one Acquire call did while it waited (the caller charges these
/// to its per-worker counters).
struct FetchActivity {
  /// Page fetches this caller claimed and submitted.
  uint64_t pages_loaded = 0;
  /// Submit batches this caller issued (PerfCounters::io_submits).
  uint64_t batches_submitted = 0;
  /// Wall nanoseconds blocked with no fetch work available
  /// (PerfCounters::io_stall_ns).
  uint64_t stall_ns = 0;
};

/// Shared pipeline over one finalized page index.
class StagingPipeline {
 public:
  /// `capacity_pages` bounds resident frames (>= 1); `num_consumers`
  /// workers will each acquire every index position exactly once.
  /// Fetches go through `scheduler` (borrowed; must outlive the
  /// pipeline), whose completion queues [0, nodes) this pipeline owns.
  /// `consumer_loads` lets blocked consumers claim and submit batches
  /// themselves (see file comment). `topology` (optional) homes the
  /// slot buffers round-robin across its nodes.
  StagingPipeline(const PageStore& store, const PageIndex& index,
                  size_t capacity_pages, uint32_t num_consumers,
                  io::IoScheduler* scheduler, bool consumer_loads = false,
                  const numa::Topology* topology = nullptr);
  ~StagingPipeline();

  StagingPipeline(const StagingPipeline&) = delete;
  StagingPipeline& operator=(const StagingPipeline&) = delete;

  /// Starts the prefetch thread.
  void Start();

  /// Blocks until index position `pos` is resident; returns its frame,
  /// valid until this consumer calls Release(pos). Returns nullptr when
  /// the pipeline stopped on an I/O error (check status()). `node` is
  /// the caller's NUMA node (its completion queue is drained first);
  /// `activity` (optional) accumulates the fetch work and stall time
  /// this call performed.
  const PageFrame* Acquire(size_t pos, numa::NodeId node = 0,
                           FetchActivity* activity = nullptr);

  /// Signals that this consumer is done with position `pos`. After
  /// num_consumers releases the frame is freed ("green" in Figure 4).
  /// No-op for positions that never became resident (error shutdown).
  void Release(size_t pos);

  /// Stops the prefetcher (joins the thread) and reaps every fetch
  /// this pipeline still has in flight, so slot buffers are never
  /// written after destruction. Called automatically by the destructor.
  void Stop();

  /// Highest number of simultaneously resident frames observed.
  size_t peak_resident_pages() const { return peak_resident_; }

  /// Distinct NUMA nodes the slot buffers are homed on.
  uint32_t staging_nodes() const { return staging_nodes_; }

  /// First I/O error encountered, if any.
  Status status() const;

 private:
  enum class SlotState : uint8_t { kFree, kInFlight, kResident };
  struct Slot {
    char* raw = nullptr;  // pinned page_bytes buffer (arena-backed)
    numa::NodeId home = 0;
    PageFrame frame;  // tuple storage reused across positions
    SlotState state = SlotState::kFree;
    size_t pos = SIZE_MAX;
    uint32_t releases_remaining = 0;
  };

  void PrefetchLoop();
  /// True when the next unclaimed index position's pool slot is free;
  /// caller must hold mu_.
  bool ClaimableLocked() const;
  /// Claims up to the scheduler's batch size of consecutive claimable
  /// positions and submits them (lock dropped around the submit).
  /// Returns true when at least one fetch was submitted.
  bool ClaimAndSubmitLocked(std::unique_lock<std::mutex>& lock,
                            FetchActivity* activity);
  /// Pumps the scheduler and drains completion queues (preferring
  /// `node`), decoding and publishing arrived frames. Returns true
  /// when at least one completion was processed.
  bool DrainAndPublishLocked(std::unique_lock<std::mutex>& lock,
                             numa::NodeId node);

  const PageStore& store_;
  const PageIndex& index_;
  const size_t capacity_;
  const uint32_t num_consumers_;
  const bool consumer_loads_;
  io::IoScheduler* const scheduler_;
  uint32_t node_queues_ = 1;  // scheduler queues this pipeline owns
  uint32_t staging_nodes_ = 1;

  // One arena per staging node; slot buffers interleave across them.
  std::vector<std::unique_ptr<numa::Arena>> arenas_;

  mutable std::mutex mu_;
  std::condition_variable frame_loaded_;
  std::condition_variable frame_freed_;
  // Ring keyed by index position: slot pos % capacity.
  std::vector<Slot> slots_;
  size_t next_claim_ = 0;  // next index position to claim for loading
  size_t completed_positions_ = 0;  // published or discarded
  size_t outstanding_ = 0;          // submitted, not yet completed
  size_t resident_ = 0;
  size_t peak_resident_ = 0;
  bool stop_ = false;
  Status status_;
  std::thread prefetch_thread_;
};

}  // namespace mpsm::disk

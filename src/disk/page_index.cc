#include "disk/page_index.h"

#include <algorithm>
#include <tuple>

namespace mpsm::disk {

void PageIndex::Append(const PageIndex& other) {
  entries_.insert(entries_.end(), other.entries_.begin(),
                  other.entries_.end());
}

void PageIndex::Finalize() {
  std::sort(entries_.begin(), entries_.end(),
            [](const PageIndexEntry& a, const PageIndexEntry& b) {
              return std::tie(a.min_key, a.run, a.page) <
                     std::tie(b.min_key, b.run, b.page);
            });
}

}  // namespace mpsm::disk

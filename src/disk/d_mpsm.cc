#include "disk/d_mpsm.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <memory>
#include <optional>
#include <vector>

#include "core/merge_join.h"
#include "disk/page_index.h"
#include "disk/staging_pipeline.h"
#include "parallel/task_scheduler.h"
#include "simd/caps.h"
#include "sort/radix_introsort.h"
#include "util/timer.h"

namespace mpsm::disk {

namespace {

/// One worker's spooled run: page ids in key order.
struct SpooledRun {
  std::vector<PageId> pages;
  std::vector<uint32_t> counts;
};

/// Sorts a chunk and spools it; records index entries when `index` is
/// given (public input) or returns the page list (private input).
/// `worker_node` is the executing worker's node: a stolen spool morsel
/// reads the chunk remotely (the sort scratch stays executor-local).
Status SortAndSpool(const Chunk& chunk, uint32_t run_id,
                    numa::NodeId worker_node, PageStore& store,
                    PerfCounters& counters, PageIndex* index,
                    SpooledRun* run_out, sort::SortKind sort_kind,
                    const sort::RadixSortConfig& sort_config) {
  // The materializing copy is fused into the sort's first MSD pass
  // (§2.3 amortization, SortCopyInto); counters keep charging copy +
  // sort so the model stays comparable across sort kinds. for_overwrite
  // scratch: every slot is written by the fused copy before it is read.
  auto sorted = std::make_unique_for_overwrite<Tuple[]>(chunk.size);
  sort::SortCopyInto(chunk.data, chunk.size, sorted.get(), sort_kind,
                     sort_config, /*src_is_local=*/chunk.node == worker_node);
  counters.CountSort(chunk.size);
  counters.CountRead(chunk.node == worker_node, /*sequential=*/true,
                     chunk.size * sizeof(Tuple));
  counters.CountWrite(/*local=*/true, /*sequential=*/true,
                      chunk.size * sizeof(Tuple));

  const size_t per_page = store.tuples_per_page();
  for (size_t offset = 0; offset < chunk.size; offset += per_page) {
    const size_t count = std::min(per_page, chunk.size - offset);
    auto page = store.WritePage(sorted.get() + offset, count);
    if (!page.ok()) return page.status();
    if (index != nullptr) {
      index->Add(PageIndexEntry{sorted[offset].key, run_id, *page,
                                static_cast<uint32_t>(count)});
    }
    if (run_out != nullptr) {
      run_out->pages.push_back(*page);
      run_out->counts.push_back(static_cast<uint32_t>(count));
    }
  }
  return Status::OK();
}

/// Sliding window over one worker's private spooled run, fed by async
/// readahead: upcoming pages are submitted to the shared IoScheduler
/// (own completion queue) while the worker merges the current ones, so
/// private-run fetch latency overlaps join compute.
class PrivateWindow {
 public:
  /// `queue` is this window's private completion queue on `scheduler`;
  /// `readahead_pages` bounds the in-flight ring. `counters` receives
  /// io_submits / io_stall_ns attribution.
  PrivateWindow(const PageStore& store, const SpooledRun& run,
                io::IoScheduler* scheduler, uint32_t queue,
                size_t readahead_pages, PerfCounters* counters)
      : store_(&store),
        run_(&run),
        scheduler_(scheduler),
        queue_(queue),
        readahead_(std::clamp<size_t>(readahead_pages, 1,
                                      io::kMaxIovPerRead)),
        counters_(counters),
        buffers_(readahead_ * store.page_bytes()),
        ring_(readahead_) {}

  ~PrivateWindow() {
    // Reap every read still targeting our ring buffers before they die.
    std::array<io::PageFetchCompletion, io::kMaxIovPerRead> sink;
    while (reaped_ < submitted_) {
      const size_t n =
          scheduler_->Drain(queue_, sink.data(), sink.size());
      if (n > 0) {
        reaped_ += n;
        continue;
      }
      scheduler_->Pump(/*block=*/true);
    }
  }

  /// Drops tuples with key < low_key, then loads pages until the window
  /// covers keys up to `high_key` (or the run is exhausted).
  Status AdvanceTo(uint64_t low_key, uint64_t high_key) {
    // Evict the prefix that can never match again (Figure 4: released
    // from RAM). Compact lazily to stay amortized O(1) per tuple.
    size_t drop = start_;
    while (drop < tuples_.size() && tuples_[drop].key < low_key) ++drop;
    start_ = drop;
    if (start_ > tuples_.size() / 2 && start_ > 4096) {
      tuples_.erase(tuples_.begin(),
                    tuples_.begin() + static_cast<ptrdiff_t>(start_));
      start_ = 0;
    }

    // Prefetch forward: keep loading while the last resident key could
    // still join with this public page.
    while (next_take_ < run_->pages.size() &&
           (tuples_.size() == start_ || tuples_.back().key <= high_key)) {
      MPSM_RETURN_NOT_OK(SubmitReadahead());
      MPSM_RETURN_NOT_OK(WaitForPage(next_take_));
      const size_t slot = next_take_ % readahead_;
      const size_t old_size = tuples_.size();
      tuples_.resize(old_size + store_->tuples_per_page());
      auto count = store_->DecodePage(buffers_.data() +
                                          slot * store_->page_bytes(),
                                      tuples_.data() + old_size);
      if (!count.ok()) return count.status();
      tuples_.resize(old_size + *count);
      ring_[slot].ready = false;  // slot reusable for readahead
      ++next_take_;
    }
    peak_tuples_ = std::max(peak_tuples_, tuples_.size() - start_);
    return Status::OK();
  }

  const Tuple* data() const { return tuples_.data() + start_; }
  size_t size() const { return tuples_.size() - start_; }
  size_t peak_tuples() const { return peak_tuples_; }

 private:
  struct RingSlot {
    bool ready = false;
    Status status;
  };

  /// Keeps up to `readahead_` pages of this run in flight.
  Status SubmitReadahead() {
    std::array<io::PageFetchRequest, io::kMaxIovPerRead> requests;
    size_t n = 0;
    while (next_submit_ < run_->pages.size() &&
           next_submit_ < next_take_ + readahead_) {
      const size_t slot = next_submit_ % readahead_;
      requests[n].page = run_->pages[next_submit_];
      requests[n].dest =
          buffers_.data() + slot * store_->page_bytes();
      requests[n].user_data = next_submit_;
      requests[n].queue = queue_;
      ++n;
      ++next_submit_;
    }
    if (n == 0) return Status::OK();
    submitted_ += n;
    if (counters_ != nullptr) ++counters_->io_submits;
    return scheduler_->Submit(requests.data(), n);
  }

  /// Blocks until page ordinal `ordinal` completed; pumping the
  /// scheduler while waiting (the wait itself is recorded as stall).
  Status WaitForPage(size_t ordinal) {
    const size_t slot = ordinal % readahead_;
    WallTimer stall;
    bool stalled = false;
    while (!ring_[slot].ready) {
      std::array<io::PageFetchCompletion, io::kMaxIovPerRead> done;
      const size_t n =
          scheduler_->Drain(queue_, done.data(), done.size());
      if (n == 0) {
        stalled = true;
        MPSM_RETURN_NOT_OK(scheduler_->Pump(/*block=*/true));
        continue;
      }
      reaped_ += n;
      for (size_t i = 0; i < n; ++i) {
        RingSlot& ring_slot = ring_[done[i].user_data % readahead_];
        ring_slot.ready = true;
        ring_slot.status = done[i].status;
      }
    }
    if (stalled) {
      const auto ns = static_cast<uint64_t>(stall.ElapsedSeconds() * 1e9);
      if (counters_ != nullptr) counters_->io_stall_ns += ns;
      scheduler_->AddStallNs(ns);
    }
    return ring_[slot].status;
  }

  const PageStore* store_;
  const SpooledRun* run_;
  io::IoScheduler* scheduler_;
  const uint32_t queue_;
  const size_t readahead_;
  PerfCounters* counters_;
  std::vector<char> buffers_;  // readahead_ page-sized pinned slots
  std::vector<RingSlot> ring_;
  size_t next_submit_ = 0;  // next page ordinal to submit
  size_t next_take_ = 0;    // next page ordinal to consume
  size_t submitted_ = 0;
  size_t reaped_ = 0;
  std::vector<Tuple> tuples_;
  size_t start_ = 0;
  size_t peak_tuples_ = 0;
};

}  // namespace

Status DMpsmOptions::Validate() const {
  if (tuples_per_page == 0) {
    return Status::InvalidArgument("tuples_per_page must be >= 1");
  }
  if (pool_pages == 0) {
    return Status::InvalidArgument("pool_pages must be >= 1");
  }
  if (directory.empty()) {
    return Status::InvalidArgument("directory must be non-empty");
  }
  // The io knobs share IoSchedulerOptions' legality rules; validating
  // through it keeps one source of truth.
  io::IoSchedulerOptions io_options;
  io_options.backend = io_backend;
  io_options.queue_depth = io_queue_depth;
  io_options.batch_pages = io_batch_pages;
  io_options.max_inflight_bytes = io_max_inflight_bytes;
  MPSM_RETURN_NOT_OK(io_options.Validate());
  return sort_config.Validate();
}

Result<JoinRunInfo> DMpsmJoin::Execute(WorkerTeam& team,
                                       const Relation& r_private,
                                       const Relation& s_public,
                                       ConsumerFactory& consumers,
                                       DMpsmReport* report) const {
  const uint32_t num_workers = team.size();
  if (r_private.num_chunks() != num_workers ||
      s_public.num_chunks() != num_workers) {
    return Status::InvalidArgument(
        "relations must be chunked into team.size() chunks");
  }
  MPSM_RETURN_NOT_OK(options_.Validate());
  const bool stealing = options_.scheduler == SchedulerKind::kStealing;

  PageStoreOptions store_options;
  store_options.tuples_per_page = options_.tuples_per_page;
  store_options.directory = options_.directory;
  store_options.io_delay_us = options_.io_delay_us;
  PageStore store(store_options);
  MPSM_RETURN_NOT_OK(store.Open());

  // One async page-I/O scheduler serves the shared staging pool (one
  // completion queue per NUMA node) and every worker's private window
  // (one queue per worker). A requested-but-unsupported backend fails
  // the query here — not the process.
  const uint32_t num_nodes = std::max(1u, team.topology().num_nodes());
  io::IoSchedulerOptions io_options;
  io_options.backend = options_.io_backend;
  io_options.queue_depth = options_.io_queue_depth;
  io_options.batch_pages = options_.io_batch_pages;
  io_options.max_inflight_bytes = options_.io_max_inflight_bytes;
  io_options.completion_queues = num_nodes + num_workers;
  MPSM_ASSIGN_OR_RETURN(
      auto io_scheduler,
      io::IoScheduler::Create(store.fd(), store.page_bytes(),
                              store.io_delay_us(), io_options));

  std::vector<PageIndex> index_parts(num_workers);
  std::vector<SpooledRun> r_runs(num_workers);
  PageIndex s_index;
  std::optional<StagingPipeline> pipeline;
  std::vector<Status> worker_status(num_workers);
  std::atomic<size_t> peak_window{0};
  std::atomic<uint64_t> consumer_loads{0};

  PhasePipeline phases(team.topology(), num_workers, options_.scheduler);

  // Phase 1: sort + spool the public chunks; collect index entries.
  // Spooling is already concurrency-safe (the page store hands out
  // page ids under its own latch), so the morsels are stealable.
  phases.AddPhase(
      kPhaseSortPublic, [&] { return ChunkMorsels(num_workers); },
      [&](WorkerContext& ctx, const Morsel& morsel) {
        const uint32_t w = morsel.task;
        worker_status[w] = SortAndSpool(
            s_public.chunk(w), w, ctx.node, store,
            ctx.Counters(kPhaseSortPublic), &index_parts[w], nullptr,
            options_.sort, options_.sort_config);
      });

  // Merge the page index and start the prefetch pipeline.
  phases.AddSerial(kPhasePartition, [&](WorkerContext&) {
    for (auto& part : index_parts) s_index.Append(part);
    s_index.Finalize();
    pipeline.emplace(store, s_index, options_.pool_pages, num_workers,
                     io_scheduler.get(), /*consumer_loads=*/stealing,
                     &team.topology());
    pipeline->Start();
  });

  // Phase 3: sort + spool the private chunks.
  phases.AddPhase(
      kPhaseSortPrivate, [&] { return ChunkMorsels(num_workers); },
      [&](WorkerContext& ctx, const Morsel& morsel) {
        const uint32_t w = morsel.task;
        Status st = SortAndSpool(r_private.chunk(w), w, ctx.node, store,
                                 ctx.Counters(kPhaseSortPrivate), nullptr,
                                 &r_runs[w], options_.sort,
                                 options_.sort_config);
        if (worker_status[w].ok()) worker_status[w] = st;
      });

  // Phase 4: walk the key domain in page-index order, joining each
  // public page against the private window. The walk is stateful per
  // consumer (window + in-order releases), so its morsels stay pinned;
  // the *page-fetch tasks* are the stealable unit instead: a blocked
  // consumer submits batches and decodes completions for everyone
  // (poll-or-steal, docs/io.md), and its private window keeps
  // readahead in flight while it merges.
  const simd::SimdKind merge_simd = simd::Resolve(options_.simd);
  phases.AddPhase(
      kPhaseJoin, [&] { return ChunkMorsels(num_workers); },
      [&](WorkerContext& ctx, const Morsel& morsel) {
        const uint32_t w = morsel.task;
        PerfCounters& counters = ctx.Counters(kPhaseJoin);
        JoinConsumer& consumer = consumers.ConsumerForWorker(w);
        PrivateWindow window(store, r_runs[w], io_scheduler.get(),
                             /*queue=*/num_nodes + w,
                             options_.io_batch_pages, &counters);
        FetchActivity activity;

        // On error — whether from this consumer's earlier spool phases
        // or mid-walk — the worker keeps draining (acquire + release)
        // so the other consumers and the pool never wedge waiting for
        // its releases.
        bool failed = !worker_status[w].ok();
        for (size_t pos = 0; pos < s_index.size(); ++pos) {
          const PageFrame* frame =
              pipeline->Acquire(pos, ctx.node, &activity);
          if (frame == nullptr) break;  // pipeline stopped on I/O error
          if (!failed && !frame->tuples.empty()) {
            const uint64_t high_key = frame->tuples.back().key;
            Status st = window.AdvanceTo(frame->entry.min_key, high_key);
            if (!st.ok()) {
              if (worker_status[w].ok()) worker_status[w] = st;
              failed = true;
            } else {
              const auto scan = MergeJoinRunPairWith(
                  options_.merge_prefetch_distance, merge_simd,
                  window.data(), window.size(), frame->tuples.data(),
                  frame->tuples.size(),
                  [&](size_t, const Tuple& r, const Tuple* s,
                      size_t count) {
                    consumer.OnMatch(r, s, count);
                    counters.output_tuples += count;
                  });
              counters.CountRead(/*local=*/true, /*sequential=*/true,
                                 (scan.r_end + scan.s_end) * sizeof(Tuple));
            }
          }
          pipeline->Release(pos);
        }
        // Each consumer-submitted page fetch was one stolen fetch task.
        counters.morsels_executed += activity.pages_loaded;
        counters.io_submits += activity.batches_submitted;
        counters.io_stall_ns += activity.stall_ns;
        consumer_loads.fetch_add(activity.pages_loaded,
                                 std::memory_order_relaxed);

        size_t expected = peak_window.load(std::memory_order_relaxed);
        while (window.peak_tuples() > expected &&
               !peak_window.compare_exchange_weak(expected,
                                                  window.peak_tuples())) {
        }
      },
      PhasePipeline::PhaseOptions{.pinned = true});

  WallTimer timer;
  phases.Run(team, /*phase_barriers=*/true);

  // The pipeline (and its in-flight fetches) must wind down before the
  // report snapshots the scheduler counters.
  if (pipeline.has_value()) pipeline->Stop();

  if (report != nullptr) {
    report->io = store.io_stats();
    report->io_sched = io_scheduler->stats();
    report->io_backend_used = io_scheduler->backend().kind();
    report->peak_pool_pages =
        pipeline ? pipeline->peak_resident_pages() : 0;
    report->staging_nodes = pipeline ? pipeline->staging_nodes() : 1;
    report->peak_window_tuples = peak_window.load(std::memory_order_relaxed);
    report->index_entries = s_index.size();
    report->consumer_page_loads =
        consumer_loads.load(std::memory_order_relaxed);
  }

  for (const Status& st : worker_status) {
    MPSM_RETURN_NOT_OK(st);
  }
  if (pipeline.has_value()) {
    MPSM_RETURN_NOT_OK(pipeline->status());
  }
  return CollectRunInfo(team, timer.ElapsedSeconds());
}

}  // namespace mpsm::disk

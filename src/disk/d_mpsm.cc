#include "disk/d_mpsm.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <optional>
#include <vector>

#include "core/merge_join.h"
#include "disk/page_index.h"
#include "disk/staging_pipeline.h"
#include "sort/radix_introsort.h"
#include "util/timer.h"

namespace mpsm::disk {

namespace {

/// One worker's spooled run: page ids in key order.
struct SpooledRun {
  std::vector<PageId> pages;
  std::vector<uint32_t> counts;
};

/// Sorts a chunk and spools it; records index entries when `index` is
/// given (public input) or returns the page list (private input).
Status SortAndSpool(const Chunk& chunk, uint32_t run_id, PageStore& store,
                    PerfCounters& counters, PageIndex* index,
                    SpooledRun* run_out, sort::SortKind sort_kind,
                    const sort::RadixSortConfig& sort_config) {
  std::vector<Tuple> sorted(chunk.begin(), chunk.end());
  sort::SortTuples(sorted.data(), sorted.size(), sort_kind, sort_config);
  counters.CountSort(sorted.size());
  counters.CountRead(/*local=*/true, /*sequential=*/true,
                     sorted.size() * sizeof(Tuple));
  counters.CountWrite(/*local=*/true, /*sequential=*/true,
                      sorted.size() * sizeof(Tuple));

  const size_t per_page = store.tuples_per_page();
  for (size_t offset = 0; offset < sorted.size(); offset += per_page) {
    const size_t count = std::min(per_page, sorted.size() - offset);
    auto page = store.WritePage(sorted.data() + offset, count);
    if (!page.ok()) return page.status();
    if (index != nullptr) {
      index->Add(PageIndexEntry{sorted[offset].key, run_id, *page,
                                static_cast<uint32_t>(count)});
    }
    if (run_out != nullptr) {
      run_out->pages.push_back(*page);
      run_out->counts.push_back(static_cast<uint32_t>(count));
    }
  }
  return Status::OK();
}

/// Sliding window over one worker's private spooled run.
class PrivateWindow {
 public:
  PrivateWindow(const PageStore& store, const SpooledRun& run)
      : store_(&store), run_(&run) {}

  /// Drops tuples with key < low_key, then loads pages until the window
  /// covers keys up to `high_key` (or the run is exhausted).
  Status AdvanceTo(uint64_t low_key, uint64_t high_key) {
    // Evict the prefix that can never match again (Figure 4: released
    // from RAM). Compact lazily to stay amortized O(1) per tuple.
    size_t drop = start_;
    while (drop < tuples_.size() && tuples_[drop].key < low_key) ++drop;
    start_ = drop;
    if (start_ > tuples_.size() / 2 && start_ > 4096) {
      tuples_.erase(tuples_.begin(),
                    tuples_.begin() + static_cast<ptrdiff_t>(start_));
      start_ = 0;
    }

    // Prefetch forward: keep loading while the last resident key could
    // still join with this public page.
    while (next_page_ < run_->pages.size() &&
           (tuples_.size() == start_ || tuples_.back().key <= high_key)) {
      const size_t old_size = tuples_.size();
      tuples_.resize(old_size + store_->tuples_per_page());
      auto count = store_->ReadPage(run_->pages[next_page_],
                                    tuples_.data() + old_size);
      if (!count.ok()) return count.status();
      tuples_.resize(old_size + *count);
      ++next_page_;
    }
    peak_tuples_ = std::max(peak_tuples_, tuples_.size() - start_);
    return Status::OK();
  }

  const Tuple* data() const { return tuples_.data() + start_; }
  size_t size() const { return tuples_.size() - start_; }
  size_t peak_tuples() const { return peak_tuples_; }

 private:
  const PageStore* store_;
  const SpooledRun* run_;
  std::vector<Tuple> tuples_;
  size_t start_ = 0;
  size_t next_page_ = 0;
  size_t peak_tuples_ = 0;
};

}  // namespace

Result<JoinRunInfo> DMpsmJoin::Execute(WorkerTeam& team,
                                       const Relation& r_private,
                                       const Relation& s_public,
                                       ConsumerFactory& consumers,
                                       DMpsmReport* report) const {
  const uint32_t num_workers = team.size();
  if (r_private.num_chunks() != num_workers ||
      s_public.num_chunks() != num_workers) {
    return Status::InvalidArgument(
        "relations must be chunked into team.size() chunks");
  }
  if (options_.pool_pages == 0) {
    return Status::InvalidArgument("pool_pages must be >= 1");
  }

  PageStoreOptions store_options;
  store_options.tuples_per_page = options_.tuples_per_page;
  store_options.directory = options_.directory;
  store_options.io_delay_us = options_.io_delay_us;
  PageStore store(store_options);
  MPSM_RETURN_NOT_OK(store.Open());

  std::vector<PageIndex> index_parts(num_workers);
  std::vector<SpooledRun> r_runs(num_workers);
  PageIndex s_index;
  std::optional<StagingPipeline> pipeline;
  std::vector<Status> worker_status(num_workers);
  std::atomic<size_t> peak_window{0};

  WallTimer timer;
  team.Run([&](WorkerContext& ctx) {
    const uint32_t w = ctx.worker_id;

    // Phase 1: sort + spool the public chunk; collect index entries.
    {
      PhaseScope scope(ctx, kPhaseSortPublic);
      worker_status[w] = SortAndSpool(s_public.chunk(w), w, store,
                                      ctx.Counters(kPhaseSortPublic),
                                      &index_parts[w], nullptr,
                                      options_.sort, options_.sort_config);
    }
    ctx.barrier->Wait();

    // Worker 0 merges the page index and starts the prefetch pipeline.
    if (w == 0) {
      PhaseScope scope(ctx, kPhasePartition);
      for (auto& part : index_parts) s_index.Append(part);
      s_index.Finalize();
      pipeline.emplace(store, s_index, options_.pool_pages, num_workers);
      pipeline->Start();
    }
    ctx.barrier->Wait();

    // Phase 3: sort + spool the private chunk.
    {
      PhaseScope scope(ctx, kPhaseSortPrivate);
      Status st = SortAndSpool(r_private.chunk(w), w, store,
                               ctx.Counters(kPhaseSortPrivate), nullptr,
                               &r_runs[w], options_.sort,
                               options_.sort_config);
      if (worker_status[w].ok()) worker_status[w] = st;
    }
    ctx.barrier->Wait();
    if (!worker_status[w].ok()) return;

    // Phase 4: walk the key domain in page-index order, joining each
    // public page against the private window.
    {
      PhaseScope scope(ctx, kPhaseJoin);
      PerfCounters& counters = ctx.Counters(kPhaseJoin);
      JoinConsumer& consumer = consumers.ConsumerForWorker(w);
      PrivateWindow window(store, r_runs[w]);

      // On error the worker keeps draining (acquire + release) so the
      // other consumers and the pool never wedge on its frames.
      bool failed = false;
      for (size_t pos = 0; pos < s_index.size(); ++pos) {
        const PageFrame* frame = pipeline->Acquire(pos);
        if (frame == nullptr) break;  // pipeline stopped on I/O error
        if (!failed && !frame->tuples.empty()) {
          const uint64_t high_key = frame->tuples.back().key;
          Status st = window.AdvanceTo(frame->entry.min_key, high_key);
          if (!st.ok()) {
            if (worker_status[w].ok()) worker_status[w] = st;
            failed = true;
          } else {
            const auto scan = MergeJoinRunPairWith(
                options_.merge_prefetch_distance, window.data(),
                window.size(), frame->tuples.data(), frame->tuples.size(),
                [&](size_t, const Tuple& r, const Tuple* s, size_t count) {
                  consumer.OnMatch(r, s, count);
                  counters.output_tuples += count;
                });
            counters.CountRead(/*local=*/true, /*sequential=*/true,
                               (scan.r_end + scan.s_end) * sizeof(Tuple));
          }
        }
        pipeline->Release(pos);
      }

      size_t expected = peak_window.load(std::memory_order_relaxed);
      while (window.peak_tuples() > expected &&
             !peak_window.compare_exchange_weak(expected,
                                                window.peak_tuples())) {
      }
    }
  });

  for (const Status& st : worker_status) {
    MPSM_RETURN_NOT_OK(st);
  }
  MPSM_RETURN_NOT_OK(pipeline->status());

  if (report != nullptr) {
    report->io = store.io_stats();
    report->peak_pool_pages =
        pipeline ? pipeline->peak_resident_pages() : 0;
    report->peak_window_tuples = peak_window.load(std::memory_order_relaxed);
    report->index_entries = s_index.size();
  }
  return CollectRunInfo(team, timer.ElapsedSeconds());
}

}  // namespace mpsm::disk

#include "disk/d_mpsm.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "core/merge_join.h"
#include "disk/page_index.h"
#include "disk/staging_pipeline.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/task_scheduler.h"
#include "recovery/join_journal.h"
#include "simd/caps.h"
#include "sort/radix_introsort.h"
#include "util/timer.h"

namespace mpsm::disk {

namespace {

/// One worker's spooled run: page ids in key order.
struct SpooledRun {
  std::vector<PageId> pages;
  std::vector<uint32_t> counts;
};

/// Scheduler completion queue the run-commit fdatasync barrier uses
/// (queues 0/1 are owned by the buffer pool).
constexpr uint32_t kJournalFlushQueue = 2;

obs::Counter& JournalCommitCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().counter(
      "mpsm_recovery_journal_commits_total",
      "Run/chunk records durably committed to join manifests");
  return c;
}
obs::Counter& ChunksSkippedCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().counter(
      "mpsm_recovery_chunks_skipped_total",
      "Phase-4 chunk walks skipped on resume via restored consumer state");
  return c;
}
obs::Counter& RunsReattachedCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().counter(
      "mpsm_recovery_runs_reattached_total",
      "Durable spooled runs re-attached on resume instead of re-sorted");
  return c;
}

/// Sorts a chunk and spools it; records index entries when `index` is
/// given (public input) or returns the page list (private input).
/// `worker_node` is the executing worker's node: a stolen spool morsel
/// reads the chunk remotely (the sort scratch stays executor-local).
/// Pages normally go through the pool's write-back cache (AppendPage:
/// encode into a frame, flush in the background); `synchronous_spool`
/// blocks on the device per page instead. Either way `spool_stall_ns`
/// accumulates the wall time this worker spent blocked spooling.
/// `content_checksum` (optional) receives fnv1a over the run's sorted
/// tuple bytes — the recovery manifest's per-run checksum.
Status SortAndSpool(const Chunk& chunk, uint32_t run_id,
                    numa::NodeId worker_node, PageStore& store,
                    bufferpool::BufferPool* pool, bool synchronous_spool,
                    PerfCounters& counters, PageIndex* index,
                    SpooledRun* run_out, sort::SortKind sort_kind,
                    const sort::RadixSortConfig& sort_config,
                    uint64_t* spool_stall_ns,
                    uint64_t* content_checksum = nullptr) {
  // The materializing copy is fused into the sort's first MSD pass
  // (§2.3 amortization, SortCopyInto); counters keep charging copy +
  // sort so the model stays comparable across sort kinds. for_overwrite
  // scratch: every slot is written by the fused copy before it is read.
  auto sorted = std::make_unique_for_overwrite<Tuple[]>(chunk.size);
  sort::SortCopyInto(chunk.data, chunk.size, sorted.get(), sort_kind,
                     sort_config, /*src_is_local=*/chunk.node == worker_node);
  counters.CountSort(chunk.size);
  counters.CountRead(chunk.node == worker_node, /*sequential=*/true,
                     chunk.size * sizeof(Tuple));
  counters.CountWrite(/*local=*/true, /*sequential=*/true,
                      chunk.size * sizeof(Tuple));
  if (content_checksum != nullptr) {
    *content_checksum =
        recovery::Fnv1a(sorted.get(), chunk.size * sizeof(Tuple));
  }

  const size_t per_page = store.tuples_per_page();
  for (size_t offset = 0; offset < chunk.size; offset += per_page) {
    const size_t count = std::min(per_page, chunk.size - offset);
    PageId id = 0;
    if (synchronous_spool) {
      // Blocking baseline: the worker eats the full device round trip.
      WallTimer write_timer;
      auto page = store.WritePage(sorted.get() + offset, count);
      if (!page.ok()) return page.status();
      *spool_stall_ns +=
          static_cast<uint64_t>(write_timer.ElapsedSeconds() * 1e9);
      id = *page;
    } else {
      auto page =
          pool->AppendPage(sorted.get() + offset, count, spool_stall_ns);
      if (!page.ok()) return page.status();
      id = *page;
    }
    if (index != nullptr) {
      index->Add(PageIndexEntry{sorted[offset].key, run_id, id,
                                static_cast<uint32_t>(count)});
    }
    if (run_out != nullptr) {
      run_out->pages.push_back(id);
      run_out->counts.push_back(static_cast<uint32_t>(count));
    }
  }
  return Status::OK();
}

/// Sliding window over one worker's private spooled run, fed by async
/// readahead: upcoming pages are pinned through the shared buffer pool
/// (own client queue) while the worker merges the current ones, so
/// private-run fetch latency overlaps join compute. Recently spooled
/// pages are often still frame-resident — those pins are pool hits and
/// cost no device read at all.
class PrivateWindow {
 public:
  /// `queue` is this window's private pin queue on `pool`;
  /// `readahead_pages` bounds the in-flight ring. `counters` receives
  /// io_submits / io_stall_ns attribution.
  PrivateWindow(const PageStore& store, const SpooledRun& run,
                bufferpool::BufferPool* pool, uint32_t queue,
                size_t readahead_pages, PerfCounters* counters)
      : store_(&store),
        run_(&run),
        pool_(pool),
        queue_(queue),
        readahead_(std::clamp<size_t>(readahead_pages, 1,
                                      io::kMaxIovPerRead)),
        counters_(counters),
        ring_(readahead_) {}

  ~PrivateWindow() {
    // Reap every pin still in flight, then release whatever the ring
    // holds: no frame may stay pinned after the window dies.
    std::array<bufferpool::PagePinCompletion, io::kMaxIovPerRead> sink;
    while (reaped_ < submitted_) {
      const size_t n = pool_->DrainPins(queue_, sink.data(), sink.size());
      if (n > 0) {
        reaped_ += n;
        for (size_t i = 0; i < n; ++i) {
          if (sink[i].frame != bufferpool::kInvalidFrame) {
            pool_->Unpin(sink[i].frame);
          }
        }
        continue;
      }
      pool_->Pump(/*block=*/true);
    }
    for (RingSlot& slot : ring_) {
      if (slot.ready && slot.frame != bufferpool::kInvalidFrame) {
        pool_->Unpin(slot.frame);
        slot.frame = bufferpool::kInvalidFrame;
      }
    }
  }

  /// Drops tuples with key < low_key, then loads pages until the window
  /// covers keys up to `high_key` (or the run is exhausted).
  Status AdvanceTo(uint64_t low_key, uint64_t high_key) {
    // Evict the prefix that can never match again (Figure 4: released
    // from RAM). Compact lazily to stay amortized O(1) per tuple.
    size_t drop = start_;
    while (drop < tuples_.size() && tuples_[drop].key < low_key) ++drop;
    start_ = drop;
    if (start_ > tuples_.size() / 2 && start_ > 4096) {
      tuples_.erase(tuples_.begin(),
                    tuples_.begin() + static_cast<ptrdiff_t>(start_));
      start_ = 0;
    }

    // Prefetch forward: keep loading while the last resident key could
    // still join with this public page.
    while (next_take_ < run_->pages.size() &&
           (tuples_.size() == start_ || tuples_.back().key <= high_key)) {
      MPSM_RETURN_NOT_OK(SubmitReadahead());
      MPSM_RETURN_NOT_OK(WaitForPage(next_take_));
      const size_t slot = next_take_ % readahead_;
      const size_t old_size = tuples_.size();
      tuples_.resize(old_size + store_->tuples_per_page());
      auto count = store_->DecodePage(pool_->Data(ring_[slot].frame),
                                      tuples_.data() + old_size);
      // Copy-out done: the frame goes back to the pool (second chance
      // keeps it cached) and the ring slot is reusable for readahead.
      pool_->Unpin(ring_[slot].frame);
      ring_[slot].frame = bufferpool::kInvalidFrame;
      ring_[slot].ready = false;
      if (!count.ok()) return count.status();
      tuples_.resize(old_size + *count);
      ++next_take_;
    }
    peak_tuples_ = std::max(peak_tuples_, tuples_.size() - start_);
    return Status::OK();
  }

  const Tuple* data() const { return tuples_.data() + start_; }
  size_t size() const { return tuples_.size() - start_; }
  size_t peak_tuples() const { return peak_tuples_; }

 private:
  struct RingSlot {
    bool ready = false;
    Status status;
    bufferpool::FrameId frame = bufferpool::kInvalidFrame;
  };

  /// Keeps up to `readahead_` pages of this run pinned or in flight.
  Status SubmitReadahead() {
    std::array<bufferpool::PagePinRequest, io::kMaxIovPerRead> requests;
    size_t n = 0;
    while (next_submit_ < run_->pages.size() &&
           next_submit_ < next_take_ + readahead_) {
      requests[n].page = run_->pages[next_submit_];
      requests[n].user_data = next_submit_;
      requests[n].queue = queue_;
      ++n;
      ++next_submit_;
    }
    if (n == 0) return Status::OK();
    submitted_ += n;
    if (counters_ != nullptr) ++counters_->io_submits;
    return pool_->SubmitPins(requests.data(), n);
  }

  /// Blocks until page ordinal `ordinal`'s pin completed; pumping the
  /// pool while waiting (the wait itself is recorded as stall).
  Status WaitForPage(size_t ordinal) {
    const size_t slot = ordinal % readahead_;
    WallTimer stall;
    bool stalled = false;
    while (!ring_[slot].ready) {
      std::array<bufferpool::PagePinCompletion, io::kMaxIovPerRead> done;
      const size_t n = pool_->DrainPins(queue_, done.data(), done.size());
      if (n == 0) {
        stalled = true;
        MPSM_RETURN_NOT_OK(pool_->Pump(/*block=*/true));
        continue;
      }
      reaped_ += n;
      for (size_t i = 0; i < n; ++i) {
        RingSlot& ring_slot = ring_[done[i].user_data % readahead_];
        ring_slot.ready = true;
        ring_slot.status = done[i].status;
        ring_slot.frame = done[i].frame;
      }
    }
    if (stalled) {
      const auto ns = static_cast<uint64_t>(stall.ElapsedSeconds() * 1e9);
      if (counters_ != nullptr) counters_->io_stall_ns += ns;
      pool_->AddStallNs(ns);
    }
    return ring_[slot].status;
  }

  const PageStore* store_;
  const SpooledRun* run_;
  bufferpool::BufferPool* pool_;
  const uint32_t queue_;
  const size_t readahead_;
  PerfCounters* counters_;
  std::vector<RingSlot> ring_;
  size_t next_submit_ = 0;  // next page ordinal to submit
  size_t next_take_ = 0;    // next page ordinal to consume
  size_t submitted_ = 0;
  size_t reaped_ = 0;
  std::vector<Tuple> tuples_;
  size_t start_ = 0;
  size_t peak_tuples_ = 0;
};

}  // namespace

Status DMpsmOptions::Validate() const {
  if (tuples_per_page == 0) {
    return Status::InvalidArgument("tuples_per_page must be >= 1");
  }
  if (pool_pages == 0) {
    return Status::InvalidArgument("pool_pages must be >= 1");
  }
  if (directory.empty()) {
    return Status::InvalidArgument("directory must be non-empty");
  }
  // The io knobs share IoSchedulerOptions' legality rules; validating
  // through it keeps one source of truth.
  io::IoSchedulerOptions io_options;
  io_options.backend = io_backend;
  io_options.queue_depth = io_queue_depth;
  io_options.batch_pages = io_batch_pages;
  io_options.max_inflight_bytes = io_max_inflight_bytes;
  MPSM_RETURN_NOT_OK(io_options.Validate());
  if (recovery.journal &&
      (recovery.journal_path.empty() || recovery.spool_path.empty())) {
    return Status::InvalidArgument(
        "recovery.journal requires journal_path and spool_path");
  }
  if (recovery.resume != nullptr && !recovery.journal) {
    return Status::InvalidArgument(
        "recovery.resume requires recovery.journal");
  }
  return sort_config.Validate();
}

Result<JoinRunInfo> DMpsmJoin::Execute(WorkerTeam& team,
                                       const Relation& r_private,
                                       const Relation& s_public,
                                       ConsumerFactory& consumers,
                                       DMpsmReport* report) const {
  const uint32_t num_workers = team.size();
  if (r_private.num_chunks() != num_workers ||
      s_public.num_chunks() != num_workers) {
    return Status::InvalidArgument(
        "relations must be chunked into team.size() chunks");
  }
  MPSM_RETURN_NOT_OK(options_.Validate());
  const bool stealing = options_.scheduler == SchedulerKind::kStealing;

  // Resume bookkeeping: which durable state a validated manifest lets
  // this execution skip. All empty on a cold start.
  const bool journaling = options_.recovery.journal;
  const recovery::ResumeState* resume = options_.recovery.resume;
  const bool resuming = resume != nullptr && resume->HasWork();
  std::vector<bool> public_reattached(num_workers, false);
  std::vector<bool> private_reattached(num_workers, false);
  std::vector<bool> chunk_done(num_workers, false);
  auto* durable_consumers =
      dynamic_cast<DurableConsumerFactory*>(&consumers);

  PageStoreOptions store_options;
  store_options.tuples_per_page = options_.tuples_per_page;
  store_options.directory = options_.directory;
  store_options.io_delay_us = options_.io_delay_us;
  if (journaling) store_options.persist_path = options_.recovery.spool_path;
  PageStore store(store_options);
  MPSM_RETURN_NOT_OK(store.Open());
  if (resuming && resume->adopted_pages > 0) {
    MPSM_RETURN_NOT_OK(store.AdoptPages(resume->adopted_pages));
  }

  // One async page-I/O scheduler, fully owned by the buffer pool (one
  // completion queue for frame loads, one for write-backs). A
  // requested-but-unsupported backend fails the query here — not the
  // process.
  const uint32_t num_nodes = std::max(1u, team.topology().num_nodes());
  io::IoSchedulerOptions io_options;
  io_options.backend = options_.io_backend;
  io_options.queue_depth = options_.io_queue_depth;
  io_options.batch_pages = options_.io_batch_pages;
  io_options.max_inflight_bytes = options_.io_max_inflight_bytes;
  // Queues 0/1 feed the buffer pool; journaling adds a third for the
  // run-commit fdatasync barrier.
  io_options.completion_queues = journaling ? 3 : 2;
  MPSM_ASSIGN_OR_RETURN(
      auto io_scheduler,
      io::IoScheduler::Create(store.fd(), store.page_bytes(),
                              store.io_delay_us(), io_options));

  // Frame budget. Legacy mode (pool_budget_bytes == 0) preserves the
  // pre-pool RAM shape: pool_pages staging slots plus full per-worker
  // readahead, with headroom for in-flight appends and flush batches.
  // Budget mode caps the frames at the byte budget and shrinks the
  // staging ring and readahead to fit — larger-than-RAM relations then
  // run on eviction + write-back instead of growing the pool.
  size_t readahead =
      std::clamp<size_t>(options_.io_batch_pages, 1, io::kMaxIovPerRead);
  size_t staging_capacity = options_.pool_pages;
  size_t frames = options_.pool_pages + num_workers * readahead +
                  2 * options_.io_batch_pages;
  if (options_.pool_budget_bytes != 0) {
    const size_t budget_frames =
        options_.pool_budget_bytes / store.page_bytes();
    // Floor: one frame per worker (pin or append in progress) plus a
    // flush/load slot pair, so the pool can always make progress.
    frames = std::max<size_t>(budget_frames, num_workers + 2);
    readahead = std::clamp<size_t>(frames / (2 * num_workers),
                                   size_t{1}, readahead);
    staging_capacity = std::max<size_t>(
        1, frames - num_workers * readahead - 2);
  }

  // The pool owns the scheduler's two queues; clients get one pin
  // queue per NUMA node (staging) plus one per worker (windows).
  bufferpool::BufferPoolOptions pool_options;
  pool_options.frames = frames;
  pool_options.client_queues = num_nodes + num_workers;
  pool_options.flush_batch_pages = options_.io_batch_pages;
  MPSM_ASSIGN_OR_RETURN(
      auto pool,
      bufferpool::BufferPool::Create(&store, io_scheduler.get(),
                                     pool_options, &team.topology()));

  std::vector<PageIndex> index_parts(num_workers);
  std::vector<SpooledRun> r_runs(num_workers);
  PageIndex s_index;
  std::optional<StagingPipeline> pipeline;
  std::vector<Status> worker_status(num_workers);
  std::vector<uint64_t> spool_stall(num_workers, 0);
  std::atomic<size_t> peak_window{0};
  std::atomic<uint64_t> consumer_loads{0};

  // Re-attach durable state before the phases run: recorded runs fill
  // their index parts / page lists directly (their sort+spool morsels
  // become no-ops), and restored consumer snapshots mark whole chunk
  // walks as done.
  uint32_t runs_reattached = 0;
  uint32_t chunks_skipped = 0;
  if (resuming) {
    for (uint32_t w = 0; w < num_workers; ++w) {
      if (resume->public_runs[w].has_value()) {
        for (const PageIndexEntry& e : resume->public_runs[w]->pages) {
          index_parts[w].Add(e);
        }
        public_reattached[w] = true;
        ++runs_reattached;
      }
      if (resume->private_runs[w].has_value()) {
        for (const PageIndexEntry& e : resume->private_runs[w]->pages) {
          r_runs[w].pages.push_back(e.page);
          r_runs[w].counts.push_back(e.tuple_count);
        }
        private_reattached[w] = true;
        ++runs_reattached;
      }
      if (durable_consumers != nullptr &&
          resume->chunk_states[w].has_value() &&
          durable_consumers->RestoreWorker(w, *resume->chunk_states[w])
              .ok()) {
        chunk_done[w] = true;
        ++chunks_skipped;
      }
    }
    RunsReattachedCounter().Add(runs_reattached);
    ChunksSkippedCounter().Add(chunks_skipped);
  }
  const uint32_t active_consumers =
      num_workers - static_cast<uint32_t>(std::count(
                        chunk_done.begin(), chunk_done.end(), true));

  // The manifest: fresh on a cold start (truncating any stale file),
  // extended in place on resume.
  std::unique_ptr<recovery::JoinJournal> journal;
  if (journaling) {
    if (resuming) {
      MPSM_ASSIGN_OR_RETURN(journal, recovery::JoinJournal::OpenForAppend(
                                         options_.recovery.journal_path));
    } else {
      const recovery::QueryFingerprint fp = recovery::FingerprintFor(
          r_private, s_public, num_workers, options_.tuples_per_page);
      MPSM_ASSIGN_OR_RETURN(journal,
                            recovery::JoinJournal::Create(
                                options_.recovery.journal_path, fp,
                                options_.recovery.strict_sync));
    }
    journal->set_kill_after_commits(options_.recovery.kill_after_commits);
    journal->set_strict_sync(options_.recovery.strict_sync);
  }

  // Commits one spooled run: pool write-back barrier for the run's
  // pages (their writes have *completed* — in the OS page cache, which
  // survives a process kill), then — under strict_sync — an fdatasync
  // on the spool fd through the scheduler's write barrier before the
  // manifest record (its own fdatasync). Either way a committed run is
  // re-attachable by a restarted process, so every manifest prefix
  // references only resume-visible spool state; strict additionally
  // makes each step power-loss durable in order. Serialized: commits
  // are per-run, a handful per query.
  std::mutex commit_mu;
  uint64_t flush_token = 0;
  // Write-back high-water mark: page ids are append-only and a page
  // never re-dirties after its write-back completes, so once the pool
  // has drained up to `flushed_limit` a later commit whose pages sit
  // below it can skip the barrier entirely (commits arrive in
  // per-phase bursts with overlapping page ranges).
  PageId flushed_limit = 0;
  bool flushed_any = false;
  auto commit_body = [&](const recovery::RunRecord& record,
                         PageId max_page) -> Status {
    std::lock_guard<std::mutex> guard(commit_mu);
    obs::TraceSpan span(obs::kCatRecovery, "recovery.commit_run");
    if (!flushed_any || max_page > flushed_limit) {
      MPSM_RETURN_NOT_OK(pool->FlushUpTo(max_page));
      flushed_limit = std::max(flushed_limit, max_page);
      flushed_any = true;
    }
    if (options_.recovery.strict_sync) {
      const uint64_t token = ++flush_token;
      MPSM_RETURN_NOT_OK(
          io_scheduler->SubmitFlush(token, kJournalFlushQueue));
      for (;;) {
        io::PageFetchCompletion done;
        if (io_scheduler->Drain(kJournalFlushQueue, &done, 1) == 1) {
          if (done.user_data != token) {
            return Status::Internal("unexpected flush completion");
          }
          MPSM_RETURN_NOT_OK(done.status);
          break;
        }
        MPSM_RETURN_NOT_OK(io_scheduler->Pump(/*block=*/true));
      }
    }
    return journal->CommitRun(record);
  };

  // Relaxed commits run on a dedicated committer thread so the
  // write-back drain (FlushUpTo) stays off the workers' critical path
  // — the whole journaling overhead would otherwise be un-overlapped
  // write waiting at every phase boundary. Strict mode keeps commits
  // inline: its point is that the phase does not advance past an
  // un-durable run.
  const bool async_commits =
      journal != nullptr && !options_.recovery.strict_sync;
  std::mutex committer_mu;
  std::condition_variable committer_cv;
  std::deque<std::function<Status()>> commit_queue;
  bool committer_stop = false;
  Status commit_status;  // first async-commit failure, latched
  std::thread committer;
  if (async_commits) {
    committer = std::thread([&] {
      for (;;) {
        std::function<Status()> fn;
        {
          std::unique_lock<std::mutex> lock(committer_mu);
          committer_cv.wait(lock, [&] {
            return committer_stop || !commit_queue.empty();
          });
          if (commit_queue.empty()) return;  // stop and drained
          fn = std::move(commit_queue.front());
          commit_queue.pop_front();
        }
        const Status st = fn();
        if (!st.ok()) {
          std::lock_guard<std::mutex> lock(committer_mu);
          if (commit_status.ok()) commit_status = st;
        }
      }
    });
  }
  auto submit_commit = [&](std::function<Status()> fn) -> Status {
    if (!async_commits) return fn();
    {
      std::lock_guard<std::mutex> lock(committer_mu);
      commit_queue.push_back(std::move(fn));
    }
    committer_cv.notify_one();
    return Status::OK();
  };
  auto commit_run = [&](recovery::RunRecord record,
                        PageId max_page) -> Status {
    return submit_commit(
        [&commit_body, record = std::move(record), max_page] {
          return commit_body(record, max_page);
        });
  };

  PhasePipeline phases(team.topology(), num_workers, options_.scheduler);

  // Phase 1: sort + spool the public chunks; collect index entries.
  // Spooling is already concurrency-safe (the page store hands out
  // page ids under its own latch), so the morsels are stealable.
  phases.AddPhase(
      kPhaseSortPublic, [&] { return ChunkMorsels(num_workers); },
      [&](WorkerContext& ctx, const Morsel& morsel) {
        const uint32_t w = morsel.task;
        if (public_reattached[w]) return;  // durable from a prior run
        uint64_t checksum = 0;
        worker_status[w] = SortAndSpool(
            s_public.chunk(w), w, ctx.node, store, pool.get(),
            options_.synchronous_spool, ctx.Counters(kPhaseSortPublic),
            &index_parts[w], nullptr, options_.sort, options_.sort_config,
            &spool_stall[w], (journal && options_.recovery.checksum_runs) ? &checksum
                                                          : nullptr);
        if (journal && worker_status[w].ok()) {
          recovery::RunRecord record;
          record.run_id = w;
          record.is_private = false;
          record.content_checksum = checksum;
          record.pages = index_parts[w].entries();
          PageId max_page = 0;
          for (const PageIndexEntry& e : record.pages) {
            max_page = std::max(max_page, e.page);
          }
          worker_status[w] = commit_run(std::move(record), max_page);
        }
      });

  // Merge the page index and start the prefetch pipeline. Workers
  // whose chunk walk is already done (restored consumer snapshots)
  // never acquire from the ring, so the pipeline's release gating
  // counts only the active consumers; with none active, phase 4 is a
  // no-op and the ring never spins up.
  phases.AddSerial(kPhasePartition, [&](WorkerContext&) {
    for (auto& part : index_parts) s_index.Append(part);
    s_index.Finalize();
    if (active_consumers > 0) {
      pipeline.emplace(store, s_index, staging_capacity, active_consumers,
                       pool.get(), /*consumer_loads=*/stealing,
                       &team.topology());
      pipeline->Start();
    }
  });

  // Phase 3: sort + spool the private chunks. A worker whose chunk
  // walk is already done needs no private run at all.
  phases.AddPhase(
      kPhaseSortPrivate, [&] { return ChunkMorsels(num_workers); },
      [&](WorkerContext& ctx, const Morsel& morsel) {
        const uint32_t w = morsel.task;
        if (private_reattached[w] || chunk_done[w]) return;
        uint64_t checksum = 0;
        // The journal path also collects index entries for the private
        // run: re-attachment needs its per-page min keys and counts.
        PageIndex private_part;
        Status st = SortAndSpool(
            r_private.chunk(w), w, ctx.node, store, pool.get(),
            options_.synchronous_spool, ctx.Counters(kPhaseSortPrivate),
            journal ? &private_part : nullptr, &r_runs[w], options_.sort,
            options_.sort_config, &spool_stall[w],
            (journal && options_.recovery.checksum_runs) ? &checksum
                                                          : nullptr);
        if (journal && st.ok()) {
          recovery::RunRecord record;
          record.run_id = w;
          record.is_private = true;
          record.content_checksum = checksum;
          record.pages = private_part.entries();
          PageId max_page = 0;
          for (const PageIndexEntry& e : record.pages) {
            max_page = std::max(max_page, e.page);
          }
          st = commit_run(std::move(record), max_page);
        }
        if (worker_status[w].ok()) worker_status[w] = st;
      });

  // Phase 4: walk the key domain in page-index order, joining each
  // public page against the private window. The walk is stateful per
  // consumer (window + in-order releases), so its morsels stay pinned;
  // the *page-fetch tasks* are the stealable unit instead: a blocked
  // consumer submits batches and decodes completions for everyone
  // (poll-or-steal, docs/io.md), and its private window keeps
  // readahead in flight while it merges.
  const simd::SimdKind merge_simd = simd::Resolve(options_.simd);
  phases.AddPhase(
      kPhaseJoin, [&] { return ChunkMorsels(num_workers); },
      [&](WorkerContext& ctx, const Morsel& morsel) {
        const uint32_t w = morsel.task;
        if (chunk_done[w]) return;  // restored snapshot covers this walk
        PerfCounters& counters = ctx.Counters(kPhaseJoin);
        JoinConsumer& consumer = consumers.ConsumerForWorker(w);
        PrivateWindow window(store, r_runs[w], pool.get(),
                             /*queue=*/num_nodes + w, readahead,
                             &counters);
        FetchActivity activity;

        // On error — whether from this consumer's earlier spool phases
        // or mid-walk — the worker keeps draining (acquire + release)
        // so the other consumers and the pool never wedge waiting for
        // its releases.
        bool failed = !worker_status[w].ok();
        for (size_t pos = 0; pos < s_index.size(); ++pos) {
          const PageFrame* frame =
              pipeline->Acquire(pos, ctx.node, &activity);
          if (frame == nullptr) break;  // pipeline stopped on I/O error
          if (!failed && !frame->tuples.empty()) {
            const uint64_t high_key = frame->tuples.back().key;
            Status st = window.AdvanceTo(frame->entry.min_key, high_key);
            if (!st.ok()) {
              if (worker_status[w].ok()) worker_status[w] = st;
              failed = true;
            } else {
              const auto scan = MergeJoinRunPairWith(
                  options_.merge_prefetch_distance, merge_simd,
                  window.data(), window.size(), frame->tuples.data(),
                  frame->tuples.size(),
                  [&](size_t, const Tuple& r, const Tuple* s,
                      size_t count) {
                    consumer.OnMatch(r, s, count);
                    counters.output_tuples += count;
                  });
              counters.CountRead(/*local=*/true, /*sequential=*/true,
                                 (scan.r_end + scan.s_end) * sizeof(Tuple));
            }
          }
          pipeline->Release(pos);
        }
        // Each consumer-submitted page fetch was one stolen fetch task.
        counters.morsels_executed += activity.pages_loaded;
        counters.io_submits += activity.batches_submitted;
        counters.io_stall_ns += activity.stall_ns;
        consumer_loads.fetch_add(activity.pages_loaded,
                                 std::memory_order_relaxed);

        // The walk finished: commit this chunk's consumer snapshot so
        // a restarted query can skip the whole walk. The snapshot is
        // self-contained — no spool barrier needed, just the record's
        // own fdatasync.
        if (!failed && worker_status[w].ok() && journal &&
            durable_consumers != nullptr) {
          obs::TraceSpan commit_span(obs::kCatRecovery,
                                     "recovery.commit_chunk");
          recovery::ChunkRecord record;
          record.worker = w;
          record.state = durable_consumers->SerializeWorker(w);
          worker_status[w] = submit_commit(
              [&journal, record = std::move(record)] {
                return journal->CommitChunk(record);
              });
        }

        size_t expected = peak_window.load(std::memory_order_relaxed);
        while (window.peak_tuples() > expected &&
               !peak_window.compare_exchange_weak(expected,
                                                  window.peak_tuples())) {
        }
      },
      PhasePipeline::PhaseOptions{.pinned = true});

  WallTimer timer;
  phases.Run(team, /*phase_barriers=*/true);

  // Drain the committer before the pool winds down (commits call
  // FlushUpTo) and before the report reads journal->commits().
  if (async_commits) {
    {
      std::lock_guard<std::mutex> lock(committer_mu);
      committer_stop = true;
    }
    committer_cv.notify_one();
    committer.join();
  }

  // The pipeline (and its in-flight pins) must wind down before the
  // pool closes; the pool's close flushes every dirty frame and
  // surfaces any write-back error, and must precede the report so the
  // counters are final.
  if (pipeline.has_value()) pipeline->Stop();
  const Status pool_status = pool->Close();

  if (report != nullptr) {
    report->io = store.io_stats();
    report->io_sched = io_scheduler->stats();
    report->io_backend_used = io_scheduler->backend().kind();
    report->peak_pool_pages =
        pipeline ? pipeline->peak_resident_pages() : 0;
    report->staging_nodes = pool->stats().pool_nodes;
    report->pool = pool->stats();
    for (const uint64_t ns : spool_stall) {
      report->spool_write_stall_ns += ns;
    }
    report->peak_window_tuples = peak_window.load(std::memory_order_relaxed);
    report->index_entries = s_index.size();
    report->consumer_page_loads =
        consumer_loads.load(std::memory_order_relaxed);
    report->resumed = resuming;
    report->runs_reattached = runs_reattached;
    report->chunks_skipped = chunks_skipped;
    report->journal_commits = journal ? journal->commits() : 0;
  }
  if (journal) JournalCommitCounter().Add(journal->commits());

  for (const Status& st : worker_status) {
    MPSM_RETURN_NOT_OK(st);
  }
  // Committer joined above; a failed async commit fails the query like
  // an inline one would (artifacts stay for the retry).
  MPSM_RETURN_NOT_OK(commit_status);
  if (pipeline.has_value()) {
    MPSM_RETURN_NOT_OK(pipeline->status());
  }
  MPSM_RETURN_NOT_OK(pool_status);

  // Success: the durable artifacts are retired (a failed or killed run
  // leaves them for the retry to resume from).
  if (journaling && !options_.recovery.retain_artifacts) {
    journal->Discard();  // skip the close-time sync of a doomed file
    journal.reset();
    recovery::JoinJournal::Remove(options_.recovery.journal_path);
    store.RemovePersistent();
  }
  return CollectRunInfo(team, timer.ElapsedSeconds());
}

}  // namespace mpsm::disk

// D-MPSM: the memory-constrained, disk-enabled MPSM join (§3.1).
//
// Both inputs are sorted into runs that are immediately spooled to a
// page store; only the pages around the key-domain position currently
// being joined are RAM-resident (Figure 4). All workers move through
// the key domain synchronously, following the page index; a prefetcher
// stages upcoming public pages ("yellow") into a bounded pool and pages
// processed by the slowest worker are released ("green"). Each worker
// keeps a sliding window of its own private run's pages; the window's
// low end advances with the index position.
#pragma once

#include <cstdint>
#include <string>

#include "bufferpool/buffer_pool.h"
#include "core/consumers.h"
#include "core/join_stats.h"
#include "core/join_types.h"
#include "disk/page_store.h"
#include "io/io_backend_kind.h"
#include "io/io_scheduler.h"
#include "parallel/scheduler_kind.h"
#include "parallel/worker_team.h"
#include "recovery/recovery_manager.h"
#include "simd/simd_kind.h"
#include "sort/radix_introsort.h"
#include "storage/relation.h"
#include "util/status.h"

namespace mpsm::disk {

/// Crash-recovery knobs of one D-MPSM execution (docs/recovery.md).
struct DMpsmRecoveryOptions {
  /// Maintain a durable manifest: spool through a persistent named
  /// file (`spool_path`) and commit a checksummed record to
  /// `journal_path` after each run's pages are durable and after each
  /// completed chunk walk. Off, the spool is an anonymous temp file
  /// that dies with the process.
  bool journal = false;
  std::string journal_path;
  std::string spool_path;

  /// Validated durable state from a previous incarnation of this query
  /// (RecoveryManager::Load). Borrowed; must outlive Execute. Null (or
  /// empty) = cold start. Requires `journal`.
  const recovery::ResumeState* resume = nullptr;

  /// Keep the manifest and spool file after a *successful* run instead
  /// of retiring them (tests and the crash harness inspect/truncate
  /// them). Failed runs always keep their artifacts for the retry.
  bool retain_artifacts = false;

  /// Record an fnv1a checksum over each run's tuple content in its
  /// manifest record (costs one pass over every spooled byte on the
  /// sort path). Only RecoveryManagerOptions::verify_runs reads it; a
  /// run committed without one (checksum 0) is re-attached on
  /// structural validation alone.
  bool checksum_runs = false;

  /// Per-commit durability. Relaxed (the default) makes every commit
  /// process-crash durable — the run's write-backs have completed and
  /// the manifest record is written before the commit returns, so a
  /// SIGKILL'd query resumes from it via the surviving OS page cache —
  /// and defers device fdatasyncs to query end (a power cut may lose
  /// the un-synced tail; resume treats it as ordinary lost work).
  /// Strict pays an fdatasync write barrier on the spool plus one on
  /// the manifest *per commit* (~2 device flushes each, D-MPSM commits
  /// 3x team_size times per query) for power-loss-grade durability.
  bool strict_sync = false;

  /// Crash injection (tools/crash_harness): SIGKILL this process right
  /// after the n-th durable manifest commit. 0 = off.
  uint64_t kill_after_commits = 0;
};

/// D-MPSM tuning.
struct DMpsmOptions {
  /// Page size in tuples for both spooled inputs.
  size_t tuples_per_page = 4096;
  /// Public-input staging ring capacity in pages (the RAM budget for
  /// decoded shared S pages). >= 1.
  size_t pool_pages = 64;

  /// Buffer-pool RAM budget in bytes (docs/storage.md). 0 derives a
  /// legacy-compatible frame count from pool_pages plus per-worker
  /// readahead headroom; nonzero caps the pool's frames at
  /// budget / page_bytes (floored at a small working minimum) and
  /// shrinks the staging ring and private-window readahead to fit, so
  /// relations far larger than the budget run with eviction and
  /// write-back instead of growing RAM.
  uint64_t pool_budget_bytes = 0;

  /// When true, run spooling bypasses the pool's write-back cache and
  /// blocks on the device for every page (the synchronous baseline the
  /// spool-stall A/B in DMpsmReport measures against).
  bool synchronous_spool = false;
  /// Spool directory and synthetic I/O delay (see PageStoreOptions).
  std::string directory = "/tmp";
  uint32_t io_delay_us = 0;

  /// Sort used when spooling chunks (docs/tuning.md).
  sort::SortKind sort = sort::SortKind::kMultiPassRadix;

  /// Bucket threshold / pass cap of the multi-pass radix sort.
  sort::RadixSortConfig sort_config;

  /// Software-prefetch lookahead (tuples) of the page merge-join
  /// kernel; 0 selects the scalar kernel.
  uint32_t merge_prefetch_distance = kDefaultMergePrefetchDistance;

  /// Vector ISA of the page merge-join kernel (docs/simd.md); the sort
  /// passes follow sort_config.simd.
  simd::SimdKind simd = simd::SimdKind::kAuto;

  /// Phase orchestration (docs/scheduler.md). Stealing makes the
  /// sort+spool work of phases 1/3 stealable morsels and turns page
  /// fetches into tasks blocked consumers execute themselves
  /// (StagingPipeline consumer_loads).
  SchedulerKind scheduler = SchedulerKind::kStatic;

  /// Async page-I/O engine for staging-pool and private-window fetches
  /// (docs/io.md). kSync is the blocking baseline (every fetch stalls
  /// its submitter for the device round-trip); kAuto picks io_uring
  /// when the kernel supports it, else the threadpool.
  io::IoBackendKind io_backend = io::IoBackendKind::kThreadpool;

  /// Most vectored reads in flight at the backend at once (>= 1).
  size_t io_queue_depth = 16;

  /// Most adjacent pages coalesced into one vectored read, and the
  /// per-worker private-window readahead depth
  /// (1 <= io_batch_pages <= io::kMaxIovPerRead).
  size_t io_batch_pages = 8;

  /// In-flight byte budget toward the I/O backend; 0 derives
  /// queue_depth * batch_pages * page_bytes (no extra cap). A join
  /// service running several spilling sessions concurrently divides
  /// its device budget across them through this knob.
  uint64_t io_max_inflight_bytes = 0;

  /// Crash-safe restartability (docs/recovery.md): durable manifest,
  /// persistent spool, resume state.
  DMpsmRecoveryOptions recovery;

  /// Checks every knob against its legal range (e.g. pool_pages >= 1).
  /// Execute and the engine front door both call this.
  Status Validate() const;
};

/// Observability for tests and the spill example.
struct DMpsmReport {
  IoStats io;
  /// Async I/O subsystem counters: pages read through the scheduler,
  /// vectored batches, coalescing wins, stall time, queue depths.
  io::IoSchedulerStats io_sched;
  /// Concrete backend the run used (kAuto resolved).
  io::IoBackendKind io_backend_used = io::IoBackendKind::kThreadpool;
  /// Peak resident S pages in the shared staging ring.
  size_t peak_pool_pages = 0;
  /// Distinct NUMA nodes the buffer pool's frames are homed on
  /// (NUMA-interleaved allocation; 1 on single-node hosts).
  uint32_t staging_nodes = 1;
  /// Buffer pool counters: hits, misses, evictions, write-backs,
  /// append stalls (docs/storage.md).
  bufferpool::BufferPoolStats pool;
  /// Wall nanoseconds workers spent blocked spooling run pages, summed
  /// over workers: the full device write in synchronous_spool mode, or
  /// only the wait for a free frame with async write-back.
  uint64_t spool_write_stall_ns = 0;
  /// Peak private-window tuples over all workers.
  size_t peak_window_tuples = 0;
  /// Entries in the S page index.
  size_t index_entries = 0;
  /// Page fetches submitted by consumers instead of the prefetch
  /// thread (stealing scheduler only — page fetches as stealable
  /// tasks).
  uint64_t consumer_page_loads = 0;

  // ---------------------------------- crash recovery (docs/recovery.md)
  /// A validated manifest contributed durable state to this execution.
  bool resumed = false;
  /// Spooled runs re-attached from the manifest (phases 1/3 skipped
  /// for them) instead of re-sorted and re-spooled.
  uint32_t runs_reattached = 0;
  /// Phase-4 chunk walks skipped via restored consumer snapshots.
  uint32_t chunks_skipped = 0;
  /// Run/chunk records this execution durably committed.
  uint64_t journal_commits = 0;
};

/// The disk-enabled MPSM join (inner joins).
class DMpsmJoin {
 public:
  explicit DMpsmJoin(DMpsmOptions options = {}) : options_(options) {}

  /// Joins `r_private` with `s_public`, spooling all runs through a
  /// page store. Relations must be chunked into team.size() chunks.
  Result<JoinRunInfo> Execute(WorkerTeam& team, const Relation& r_private,
                              const Relation& s_public,
                              ConsumerFactory& consumers,
                              DMpsmReport* report = nullptr) const;

  const DMpsmOptions& options() const { return options_; }

 private:
  DMpsmOptions options_;
};

}  // namespace mpsm::disk

// Temp-file backed page store for spooled runs (D-MPSM, §3.1).
//
// HyPer-style main-memory systems spool large intermediate results to
// disk to preserve RAM for the transactional working set. The store
// keeps fixed-size pages of tuples in an unlinked temporary file;
// workers append pages concurrently (atomic page allocation + pwrite at
// disjoint offsets) and read them back with pread. An optional
// synthetic per-page I/O delay models a disk; the development machine's
// page cache would otherwise hide all latency.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "storage/tuple.h"
#include "util/status.h"

namespace mpsm::disk {

/// Identifies a page within a PageStore.
using PageId = uint64_t;

/// Configuration of a page store.
struct PageStoreOptions {
  /// Page payload size in tuples.
  size_t tuples_per_page = 4096;
  /// Directory for the backing temp file.
  std::string directory = "/tmp";
  /// Synthetic I/O latency per page read/write, microseconds (0 = off).
  uint32_t io_delay_us = 0;
  /// Persistent mode: back the store with this *named* file (created if
  /// absent, reopened if present — never unlinked by the store), so
  /// spooled runs survive a process crash and a restarted query can
  /// re-attach them (docs/recovery.md). Empty = the default anonymous
  /// mkstemp+unlink temp file that vanishes with the process.
  std::string persist_path;
};

/// I/O statistics (reads/writes are page-granular).
struct IoStats {
  uint64_t pages_written = 0;
  uint64_t pages_read = 0;
};

/// Concurrent append/read page store.
class PageStore {
 public:
  explicit PageStore(PageStoreOptions options = {});
  ~PageStore();

  PageStore(const PageStore&) = delete;
  PageStore& operator=(const PageStore&) = delete;

  /// Creates (or, in persistent mode, creates-or-reopens) the backing
  /// file. Must be called before any I/O.
  Status Open();

  /// Persistent mode only: marks the first `pages` page ids as already
  /// allocated (they hold durable data from a previous incarnation of
  /// this spool file). Call after Open, before any allocation.
  Status AdoptPages(uint64_t pages);

  /// Deletes the persistent backing file (successful completion: the
  /// durable spool is no longer needed). No-op in anonymous mode.
  void RemovePersistent();

  /// The named backing file, empty in anonymous mode.
  const std::string& persist_path() const { return options_.persist_path; }

  /// Appends one page holding `count` <= tuples_per_page tuples.
  /// Thread-safe. Returns the new page's id.
  Result<PageId> WritePage(const Tuple* data, size_t count);

  /// Reserves the next page id without touching the device (the buffer
  /// pool's write-back path: the frame is encoded in RAM and flushed
  /// asynchronously). Thread-safe. Counts toward
  /// io_stats().pages_written — it is one logically spooled page,
  /// whichever path carries it to the device.
  PageId AllocatePage();

  /// Encodes `count` <= tuples_per_page tuples into `dest` (exactly
  /// page_bytes() bytes) in the on-disk layout; the tail is zeroed.
  void EncodePage(const Tuple* data, size_t count, char* dest) const;

  /// Reads page `id` into `out` (capacity >= tuples_per_page).
  /// Thread-safe. Returns the tuple count stored on the page.
  Result<size_t> ReadPage(PageId id, Tuple* out) const;

  /// Decodes one raw on-disk page (page_bytes() bytes, e.g. fetched by
  /// the async I/O subsystem) into `out`, returning the tuple count. A
  /// corrupt header is an Internal error; success counts toward
  /// io_stats().pages_read.
  Result<size_t> DecodePage(const char* raw, Tuple* out) const;

  /// File descriptor of the backing spool file (async reads submit
  /// preadv against it); -1 before Open().
  int fd() const { return fd_; }

  /// Byte offset of page `id` in the backing file.
  uint64_t OffsetOfPage(PageId id) const { return id * page_bytes(); }

  /// Synthetic per-page device latency (forwarded to the software I/O
  /// backends; see PageStoreOptions::io_delay_us).
  uint32_t io_delay_us() const { return options_.io_delay_us; }

  size_t tuples_per_page() const { return options_.tuples_per_page; }
  size_t page_bytes() const {
    return options_.tuples_per_page * sizeof(Tuple) + sizeof(uint64_t);
  }
  uint64_t num_pages() const {
    return next_page_.load(std::memory_order_relaxed);
  }

  /// Cumulative I/O counters.
  IoStats io_stats() const;

 private:
  PageStoreOptions options_;
  int fd_ = -1;
  std::atomic<uint64_t> next_page_{0};
  mutable std::atomic<uint64_t> pages_read_{0};
  std::atomic<uint64_t> pages_written_{0};
};

}  // namespace mpsm::disk

#include "core/p_mpsm.h"

#include <algorithm>
#include <memory>

#include "core/merge_join.h"
#include "core/run_generation.h"
#include "partition/equi_height.h"
#include "partition/prefix_scatter.h"
#include "partition/radix_histogram.h"
#include "sort/radix_introsort.h"
#include "util/bits.h"
#include "util/timer.h"

namespace mpsm {

uint32_t PMpsmJoin::EffectiveRadixBits(uint32_t team_size) const {
  if (options_.radix_bits != 0) {
    // B must be at least log2(T) so that T partitions are expressible.
    return std::max(options_.radix_bits, bits::Log2Ceil(team_size));
  }
  const uint32_t log_t = bits::Log2Ceil(std::max(team_size, 2u));
  return std::min(18u, std::max(log_t + 5, 10u));
}

namespace {

/// State shared by all workers of one execution. Workers write only
/// their own slots; the cross-worker combines happen on worker 0
/// between barriers.
struct SharedState {
  // Phase 1 products.
  RunSet s_runs;
  std::vector<EquiHeightHistogram> s_histograms;

  // Phase 2.2 products.
  std::vector<KeyRange> r_ranges;
  std::vector<bool> r_has_data;
  std::vector<RadixHistogram> r_histograms;

  // Phase 2.1 / 2.3 products (built by worker 0).
  Cdf cdf;
  KeyNormalizer normalizer;
  bool r_empty = true;
  Splitters splitters;
  ScatterPlan plan;

  // Scatter targets: partition p's array, owned by worker p's node.
  std::vector<Tuple*> partition_data;

  // Phase 3 products.
  RunSet r_runs;
};

}  // namespace

Result<JoinRunInfo> PMpsmJoin::Execute(WorkerTeam& team,
                                       const Relation& r_private,
                                       const Relation& s_public,
                                       ConsumerFactory& consumers,
                                       PMpsmDiagnostics* diagnostics) const {
  const uint32_t num_workers = team.size();
  if (r_private.num_chunks() != num_workers ||
      s_public.num_chunks() != num_workers) {
    return Status::InvalidArgument(
        "relations must be chunked into team.size() chunks");
  }
  const uint32_t radix_bits = EffectiveRadixBits(num_workers);
  const uint32_t num_bounds =
      std::max(1u, options_.equi_height_factor * num_workers);

  SharedState shared;
  shared.s_runs.resize(num_workers);
  shared.s_histograms.resize(num_workers);
  shared.r_ranges.resize(num_workers);
  shared.r_has_data.assign(num_workers, false);
  shared.r_histograms.resize(num_workers);
  shared.partition_data.resize(num_workers, nullptr);
  shared.r_runs.resize(num_workers);

  std::vector<std::unique_ptr<numa::Arena>> arenas(num_workers);
  for (uint32_t w = 0; w < num_workers; ++w) {
    arenas[w] = std::make_unique<numa::Arena>(
        team.topology().NodeForWorker(w, num_workers));
  }

  const MpsmOptions options = options_;
  WallTimer timer;
  team.Run([&](WorkerContext& ctx) {
    const uint32_t w = ctx.worker_id;
    numa::Arena& arena = *arenas[w];

    // ---------------------------------------------------- phase 1
    // Sort the public chunk into a local run; derive the equi-height
    // histogram from the sorted run (nearly free, §4.1).
    {
      PhaseScope scope(ctx, kPhaseSortPublic);
      shared.s_runs[w] = SortChunkIntoRun(s_public.chunk(w), arena, ctx.node,
                                          ctx.Counters(kPhaseSortPublic),
                                          options.sort, options.sort_config);
      shared.s_histograms[w] =
          BuildEquiHeightHistogram(shared.s_runs[w], num_bounds);
      ctx.Counters(kPhaseSortPublic)
          .CountRead(/*local=*/true, /*sequential=*/false,
                     uint64_t{num_bounds} * sizeof(Tuple));
    }
    // Mandatory synchronization: public runs + histograms complete.
    ctx.barrier->Wait();

    // ---------------------------------------------------- phase 2
    {
      PhaseScope scope(ctx, kPhasePartition);
      PerfCounters& counters = ctx.Counters(kPhasePartition);
      const Chunk& chunk = r_private.chunk(w);

      // Phase 2.2a: private key range (one sequential pass).
      shared.r_ranges[w] = ScanKeyRange(chunk.data, chunk.size);
      shared.r_has_data[w] = chunk.size > 0;
      counters.CountRead(chunk.node == ctx.node, /*sequential=*/true,
                         chunk.size * sizeof(Tuple));
      ctx.barrier->Wait();

      // Phase 2.1 + key-range merge (worker 0, cheap single-threaded).
      if (w == 0) {
        shared.cdf = Cdf::FromHistograms(shared.s_histograms);
        KeyRange global{};
        bool any = false;
        for (uint32_t i = 0; i < ctx.team_size; ++i) {
          if (!shared.r_has_data[i]) continue;
          global = any ? MergeKeyRanges(global, shared.r_ranges[i])
                       : shared.r_ranges[i];
          any = true;
        }
        shared.r_empty = !any;
        shared.normalizer =
            KeyNormalizer(any ? global.min_key : 0, any ? global.max_key : 0,
                          radix_bits);
      }
      ctx.barrier->Wait();

      // Phase 2.2b: B-bit radix histogram of the private chunk.
      shared.r_histograms[w] =
          BuildRadixHistogram(chunk.data, chunk.size, shared.normalizer);
      counters.CountRead(chunk.node == ctx.node, /*sequential=*/true,
                         chunk.size * sizeof(Tuple));
      ctx.barrier->Wait();

      // Phase 2.3a: splitters + prefix sums (worker 0).
      if (w == 0) {
        const RadixHistogram global_r =
            CombineHistograms(shared.r_histograms);
        std::vector<double> cluster_s;
        PartitionCostFn cost;
        if (options.cost_balanced_splitters) {
          cluster_s = EstimateClusterS(shared.normalizer, shared.cdf);
          cost = MakePMpsmCost(ctx.team_size);
        } else {
          cost = MakeEquiHeightRCost();
        }
        shared.splitters =
            ComputeSplitters(global_r, cluster_s, ctx.team_size, cost);

        // Per-worker histograms over target partitions.
        std::vector<std::vector<uint64_t>> worker_partition_hist(
            ctx.team_size, std::vector<uint64_t>(ctx.team_size, 0));
        for (uint32_t i = 0; i < ctx.team_size; ++i) {
          for (size_t c = 0; c < shared.r_histograms[i].size(); ++c) {
            worker_partition_hist[i]
                                 [shared.splitters.PartitionOfCluster(
                                     static_cast<uint32_t>(c))] +=
                shared.r_histograms[i][c];
          }
        }
        shared.plan = ComputeScatterPlan(worker_partition_hist);
      }
      ctx.barrier->Wait();

      // Phase 2.3b: allocate the local partition array (local first
      // touch places the pages on this worker's node).
      const uint64_t my_partition_size = shared.plan.partition_sizes[w];
      if (my_partition_size > 0) {
        shared.partition_data[w] =
            arena.AllocateArray<Tuple>(my_partition_size);
      }
      ctx.barrier->Wait();

      // Phase 2.3c: scatter. Every worker writes sequentially into its
      // precomputed sub-partitions — synchronization-free (Figure 6).
      if (chunk.size > 0) {
        std::vector<uint64_t> cursor = shared.plan.start_offset[w];
        const KeyNormalizer& normalizer = shared.normalizer;
        const Splitters& splitters = shared.splitters;
        ScatterChunkWith(
            options.scatter, chunk.data, chunk.size,
            [&](uint64_t key) {
              return splitters.PartitionOfCluster(normalizer.Cluster(key));
            },
            shared.partition_data.data(), cursor.data(), ctx.team_size);
        counters.CountRead(chunk.node == ctx.node, /*sequential=*/true,
                           chunk.size * sizeof(Tuple));
        // Classify written bytes per target partition's node. The
        // scalar scatter maintains T open write streams — the pattern
        // Figure 1 exp. 2 measured, charged at the calibrated
        // random-write rate. Write combining flushes line-sized bursts
        // instead, so it is charged at the sequential rate to keep the
        // model in step with the measured behavior (docs/tuning.md).
        const bool combined_writes =
            options.scatter == ScatterKind::kWriteCombining;
        for (uint32_t p = 0; p < ctx.team_size; ++p) {
          const uint64_t written =
              cursor[p] - shared.plan.start_offset[w][p];
          const numa::NodeId target_node =
              ctx.topology->NodeForWorker(p, ctx.team_size);
          counters.CountWrite(target_node == ctx.node,
                              /*sequential=*/combined_writes,
                              written * sizeof(Tuple));
        }
      }
    }
    ctx.barrier->Wait();

    // ---------------------------------------------------- phase 3
    // Sort the local range partition into the private run.
    {
      PhaseScope scope(ctx, kPhaseSortPrivate);
      PerfCounters& counters = ctx.Counters(kPhaseSortPrivate);
      Run& run = shared.r_runs[w];
      run.data = shared.partition_data[w];
      run.size = shared.plan.partition_sizes.empty()
                     ? 0
                     : shared.plan.partition_sizes[w];
      run.node = ctx.node;
      if (run.size > 0) {
        sort::SortTuples(run.data, run.size, options.sort,
                         options.sort_config);
        counters.CountSort(run.size);
      }
    }
    if (options.phase_barriers) ctx.barrier->Wait();

    // ---------------------------------------------------- phase 4
    {
      PhaseScope scope(ctx, kPhaseJoin);
      RunJoinOptions join_options;
      join_options.kind = options.kind;
      join_options.search = options.start_search;
      join_options.prefetch_distance = options.merge_prefetch_distance;
      join_options.skip_private_prefix = options.merge_skip_private_prefix;
      JoinPrivateAgainstRuns(shared.r_runs[w], shared.s_runs,
                             /*first_run=*/w, join_options,
                             consumers.ConsumerForWorker(w), ctx.node,
                             &ctx.Counters(kPhaseJoin));
    }
  });

  if (diagnostics != nullptr) {
    diagnostics->normalizer = shared.normalizer;
    diagnostics->cdf = shared.cdf;
    diagnostics->splitters = shared.splitters;
    diagnostics->partition_sizes = shared.plan.partition_sizes;
  }
  return CollectRunInfo(team, timer.ElapsedSeconds());
}

}  // namespace mpsm

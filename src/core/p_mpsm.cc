#include "core/p_mpsm.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <memory>
#include <utility>
#include <vector>

#include "core/merge_join.h"
#include "core/public_runs.h"
#include "core/run_generation.h"
#include "parallel/task_scheduler.h"
#include "partition/equi_height.h"
#include "partition/prefix_scatter.h"
#include "partition/radix_histogram.h"
#include "simd/caps.h"
#include "simd/histogram_kernels.h"
#include "sort/radix_introsort.h"
#include "util/bits.h"
#include "util/timer.h"

namespace mpsm {

uint32_t PMpsmJoin::EffectiveRadixBits(uint32_t team_size) const {
  if (options_.radix_bits != 0) {
    // B must be at least log2(T) so that T partitions are expressible.
    return std::max(options_.radix_bits, bits::Log2Ceil(team_size));
  }
  const uint32_t log_t = bits::Log2Ceil(std::max(team_size, 2u));
  return std::min(18u, std::max(log_t + 5, 10u));
}

namespace {

/// State shared by all workers of one execution. Each morsel writes
/// only its own slots; the cross-task combines happen in the
/// pipeline's serial steps between barriers.
struct SharedState {
  // Phase 1 products (copied views of shared_public when supplied).
  RunSet s_runs;
  std::vector<EquiHeightHistogram> s_histograms;
  RunGenState s_gen;

  // The private input sliced into scatter blocks; one plan row each.
  // Static scheduling keeps one block per chunk (the paper's layout:
  // row w == worker w); stealing slices to ~morsel_tuples.
  std::vector<ScatterBlock> blocks;

  // Phase 2.2 products, per block.
  std::vector<KeyRange> block_ranges;
  std::vector<uint8_t> block_has_data;
  std::vector<RadixHistogram> block_histograms;

  // Phase 2.1 / 2.3 products (built in serial steps).
  Cdf cdf;
  KeyNormalizer normalizer;
  Splitters splitters;
  std::vector<std::vector<uint64_t>> block_partition_hist;
  ScatterPlan plan;  // rows = blocks, columns = partitions

  // Scatter targets: partition p's array, owned by worker p's node.
  std::vector<Tuple*> partition_data;

  // Write-combining staging buffers, NUMA-homed on the *destination*:
  // wc_buffers[executor][p] lives on partition p's node (allocated by
  // worker p in the pinned 2.3b phase), so a flush's streaming stores
  // cross the interconnect exactly once — the remaining half of the
  // ROADMAP interleaving item. Empty when the scatter cannot resolve
  // to write combining.
  std::vector<std::vector<internal::WcBuffer*>> wc_buffers;

  // Phase-3/4 morsel slice, resolved in the 2.3a serial step once the
  // partition sizes are known (morsel_tuples == 0 adapts to their
  // variance, docs/scheduler.md).
  uint64_t partition_morsel_tuples = kDefaultMorselTuples;

  // Phase 3 products.
  RunSet r_runs;
  // Stealing mode splits an oversized partition sort into one MSD pass
  // plus stealable bucket-sort morsels; the pass's bucket bounds and
  // shift live here between the two sub-phases (core/run_generation.h).
  RunGenState r_gen;
};

}  // namespace

Result<JoinRunInfo> PMpsmJoin::Execute(WorkerTeam& team,
                                       const Relation& r_private,
                                       const Relation& s_public,
                                       ConsumerFactory& consumers,
                                       PMpsmDiagnostics* diagnostics,
                                       const PublicRuns* shared_public) const {
  const uint32_t num_workers = team.size();
  if (r_private.num_chunks() != num_workers ||
      s_public.num_chunks() != num_workers) {
    return Status::InvalidArgument(
        "relations must be chunked into team.size() chunks");
  }
  // Shared runs may exceed the team size: a run-cache view appends
  // sorted delta runs after the per-worker base runs (merge-on-read,
  // docs/cache.md), and phase 4 already joins each private run against
  // every public run. The *base* runs must still come from a team of
  // this exact size (their chunking fixes the per-run key coverage);
  // fewer runs than workers would leave phase-4 scripts without a home
  // run.
  if (shared_public != nullptr &&
      (shared_public->runs.size() < num_workers ||
       shared_public->histograms.size() != shared_public->runs.size() ||
       (shared_public->team_size != 0 &&
        shared_public->team_size != num_workers))) {
    return Status::InvalidArgument(
        "shared public runs were built for a different team size");
  }
  const uint32_t radix_bits = EffectiveRadixBits(num_workers);
  const uint32_t num_bounds =
      std::max(1u, options_.equi_height_factor * num_workers);
  const MpsmOptions options = options_;
  const bool stealing = options.scheduler == SchedulerKind::kStealing;

  SharedState shared;
  shared.s_runs.resize(num_workers);
  shared.s_histograms.resize(num_workers);
  std::vector<uint64_t> chunk_sizes(num_workers);
  for (uint32_t w = 0; w < num_workers; ++w) {
    chunk_sizes[w] = r_private.chunk(w).size;
  }
  // Phase-2 slicing sees only the chunk sizes (partitions do not exist
  // yet); the phase-3/4 slice is re-resolved from the partition sizes.
  const uint64_t chunk_morsel_tuples = ResolveMorselTuples(
      options.morsel_tuples, chunk_sizes.data(), chunk_sizes.size());
  for (uint32_t w = 0; w < num_workers; ++w) {
    const uint64_t chunk_size = chunk_sizes[w];
    const uint64_t slice = stealing ? chunk_morsel_tuples : chunk_size;
    for (const auto& [begin, end] : SliceRanges(chunk_size, slice)) {
      shared.blocks.push_back(ScatterBlock{w, begin, end});
    }
  }
  const uint32_t num_blocks = static_cast<uint32_t>(shared.blocks.size());
  shared.block_ranges.resize(num_blocks);
  shared.block_has_data.assign(num_blocks, 0);
  shared.block_histograms.resize(num_blocks);
  shared.partition_data.resize(num_workers, nullptr);
  // Destination-homed WC staging only when a block can actually
  // resolve to write combining (explicit, or auto at crossover
  // fan-out); T x T buffers of 256 B.
  if (options.scatter == ScatterKind::kWriteCombining ||
      (options.scatter == ScatterKind::kAuto &&
       num_workers >= kScatterAutoFanoutCrossover)) {
    shared.wc_buffers.assign(
        num_workers,
        std::vector<internal::WcBuffer*>(num_workers, nullptr));
  }
  shared.r_runs.resize(num_workers);
  shared.r_gen.Resize(num_workers);

  std::vector<std::unique_ptr<numa::Arena>> arenas(num_workers);
  for (uint32_t w = 0; w < num_workers; ++w) {
    arenas[w] = std::make_unique<numa::Arena>(
        team.topology().NodeForWorker(w, num_workers));
  }

  const auto chunk_morsels = [num_workers] { return ChunkMorsels(num_workers); };
  const auto block_morsels = [&shared] {
    std::vector<Morsel> morsels;
    morsels.reserve(shared.blocks.size());
    for (uint32_t b = 0; b < shared.blocks.size(); ++b) {
      morsels.push_back(Morsel{shared.blocks[b].chunk, b, 0, 0});
    }
    return morsels;
  };

  PhasePipeline pipeline(team.topology(), num_workers, options.scheduler);

  // ---------------------------------------------------- phase 1
  // Sort the public chunks into local runs; derive the equi-height
  // histograms from the sorted runs (nearly free, §4.1). The shared
  // run-generation steps (core/run_generation.h) slice below chunk
  // granularity under stealing. Mandatory closing barrier: runs +
  // histograms complete before phase 2 reads them. When the caller
  // supplies pre-built shared runs (the service's shared-sort
  // batching, core/public_runs.h), phase 1 vanishes: the run views and
  // histograms are copied in before the pipeline starts.
  if (shared_public != nullptr) {
    shared.s_runs = shared_public->runs;
    shared.s_histograms = shared_public->histograms;
  } else {
    AddRunGenerationPhases(
        pipeline, kPhaseSortPublic, s_public,
        [&arenas](uint32_t w) -> numa::Arena& { return *arenas[w]; },
        shared.s_runs, shared.s_gen, &shared.s_histograms, num_bounds,
        options.scheduler, options.sort, options.sort_config,
        options.morsel_tuples);
  }

  // ---------------------------------------------------- phase 2
  // Phase 2.2a: private key ranges (one sequential pass per block).
  pipeline.AddPhase(
      kPhasePartition, block_morsels,
      [&](WorkerContext& ctx, const Morsel& morsel) {
        const ScatterBlock& block = shared.blocks[morsel.task];
        const Chunk& chunk = r_private.chunk(block.chunk);
        const uint64_t size = block.end - block.begin;
        shared.block_ranges[morsel.task] =
            ScanKeyRange(chunk.data + block.begin, size, options.simd);
        shared.block_has_data[morsel.task] = size > 0;
        ctx.Counters(kPhasePartition)
            .CountRead(chunk.node == ctx.node, /*sequential=*/true,
                       size * sizeof(Tuple));
      },
      PhasePipeline::PhaseOptions{.guest_safe = true});

  // Phase 2.1 + key-range merge (cheap single-threaded).
  pipeline.AddSerial(kPhasePartition, [&](WorkerContext&) {
    shared.cdf = Cdf::FromHistograms(shared.s_histograms);
    KeyRange global{};
    bool any = false;
    for (uint32_t b = 0; b < num_blocks; ++b) {
      if (!shared.block_has_data[b]) continue;
      global = any ? MergeKeyRanges(global, shared.block_ranges[b])
                   : shared.block_ranges[b];
      any = true;
    }
    shared.normalizer =
        KeyNormalizer(any ? global.min_key : 0, any ? global.max_key : 0,
                      radix_bits);
  });

  // Phase 2.2b: B-bit radix histogram of each block.
  pipeline.AddPhase(
      kPhasePartition, block_morsels,
      [&](WorkerContext& ctx, const Morsel& morsel) {
        const ScatterBlock& block = shared.blocks[morsel.task];
        const Chunk& chunk = r_private.chunk(block.chunk);
        const uint64_t size = block.end - block.begin;
        shared.block_histograms[morsel.task] = BuildRadixHistogram(
            chunk.data + block.begin, size, shared.normalizer,
            options.simd);
        ctx.Counters(kPhasePartition)
            .CountRead(chunk.node == ctx.node, /*sequential=*/true,
                       size * sizeof(Tuple));
      },
      PhasePipeline::PhaseOptions{.guest_safe = true});

  // Phase 2.3a: splitters + prefix-sum scatter plan over blocks.
  pipeline.AddSerial(kPhasePartition, [&](WorkerContext& ctx) {
    const RadixHistogram global_r =
        CombineHistograms(shared.block_histograms);
    std::vector<double> cluster_s;
    PartitionCostFn cost;
    if (options.cost_balanced_splitters) {
      cluster_s = EstimateClusterS(shared.normalizer, shared.cdf);
      cost = MakePMpsmCost(ctx.team_size);
    } else {
      cost = MakeEquiHeightRCost();
    }
    shared.splitters =
        ComputeSplitters(global_r, cluster_s, ctx.team_size, cost);

    // Per-block histograms over target partitions: one plan row per
    // block, so every scatter morsel owns disjoint target ranges.
    shared.block_partition_hist.assign(
        num_blocks, std::vector<uint64_t>(ctx.team_size, 0));
    for (uint32_t b = 0; b < num_blocks; ++b) {
      for (size_t c = 0; c < shared.block_histograms[b].size(); ++c) {
        shared.block_partition_hist
            [b][shared.splitters.PartitionOfCluster(
                static_cast<uint32_t>(c))] += shared.block_histograms[b][c];
      }
    }
    shared.plan = ComputeScatterPlan(shared.block_partition_hist);
    // Phases 3/4 slice range partitions, whose sizes are now known:
    // re-resolve the adaptive morsel slice against their variance.
    shared.partition_morsel_tuples = ResolveMorselTuples(
        options.morsel_tuples, shared.plan.partition_sizes.data(),
        shared.plan.partition_sizes.size());

#ifndef NDEBUG
    // The morsel slicing must cover each chunk exactly once (no tuple
    // scattered twice, none dropped) and the plan rows must match it —
    // the invariants the synchronization-free scatter rests on.
    assert(ScatterBlocksTileChunks(shared.blocks, chunk_sizes));
    assert(ScatterPlanIsConsistent(shared.plan,
                                   shared.block_partition_hist));
#endif
  });

  // Phase 2.3b: allocate the partition arrays. Pinned to the owning
  // worker even under stealing: the local first touch is what places
  // the pages on the partition's node. The same pinned slot allocates
  // partition w's column of WC staging buffers (one per potential
  // executor) from w's arena, homing every stage-then-flush target for
  // this partition on its destination node.
  pipeline.AddPhase(
      kPhasePartition, chunk_morsels,
      [&](WorkerContext&, const Morsel& morsel) {
        const uint32_t w = morsel.task;
        const uint64_t size =
            shared.plan.partition_sizes.empty()
                ? 0
                : shared.plan.partition_sizes[w];
        if (size > 0) {
          shared.partition_data[w] = arenas[w]->AllocateArray<Tuple>(size);
        }
        if (!shared.wc_buffers.empty()) {
          internal::WcBuffer* column =
              arenas[w]->AllocateArray<internal::WcBuffer>(num_workers);
          for (uint32_t e = 0; e < num_workers; ++e) {
            shared.wc_buffers[e][w] = column + e;
          }
        }
      },
      PhasePipeline::PhaseOptions{.pinned = true});

  // Phase 2.3c: scatter. Every block writes sequentially into its
  // precomputed sub-partitions — synchronization-free (Figure 6) even
  // across stolen morsels, because each plan row is block-private.
  pipeline.AddPhase(
      kPhasePartition, block_morsels,
      [&](WorkerContext& ctx, const Morsel& morsel) {
        const uint32_t b = morsel.task;
        const ScatterBlock& block = shared.blocks[b];
        const Chunk& chunk = r_private.chunk(block.chunk);
        const uint64_t size = block.end - block.begin;
        if (size == 0) return;
        PerfCounters& counters = ctx.Counters(kPhasePartition);
        std::vector<uint64_t> cursor = shared.plan.start_offset[b];
        const KeyNormalizer& normalizer = shared.normalizer;
        const Splitters& splitters = shared.splitters;
        const ScatterKind scatter =
            ResolveScatterKind(options.scatter, size, ctx.team_size);
        internal::WcBuffer* const* staged =
            shared.wc_buffers.empty()
                ? nullptr
                : shared.wc_buffers[ctx.worker_id].data();
        // The per-tuple partition digit is a subtract-shift-clamp plus
        // a splitter-vector lookup. With the knob on, the arithmetic
        // part runs vectorized over the whole block first
        // (simd::ClusterDigits) and the scatter consumes the digit
        // stream in step — both scatter kernels visit tuples strictly
        // in source order, exactly once. A scalar-resolved ISA keeps
        // the fused loop: a scalar precompute pass would only add a
        // second trip over the block.
        if (options.simd_scatter_digits &&
            simd::Resolve(options.simd) != simd::SimdKind::kScalar) {
          std::vector<uint32_t> digits(size);
          simd::ClusterDigits(chunk.data + block.begin, size,
                              normalizer.min_key(), normalizer.shift(),
                              normalizer.num_clusters(), digits.data(),
                              options.simd);
          const uint32_t* next_digit = digits.data();
          ScatterChunkWith(
              scatter, chunk.data + block.begin, size,
              [&](uint64_t) {
                return splitters.PartitionOfCluster(*next_digit++);
              },
              shared.partition_data.data(), cursor.data(), ctx.team_size,
              staged);
        } else {
          ScatterChunkWith(
              scatter, chunk.data + block.begin, size,
              [&](uint64_t key) {
                return splitters.PartitionOfCluster(normalizer.Cluster(key));
              },
              shared.partition_data.data(), cursor.data(), ctx.team_size,
              staged);
        }
        counters.CountRead(chunk.node == ctx.node, /*sequential=*/true,
                           size * sizeof(Tuple));
        // Classify written bytes per target partition's node. The
        // scalar scatter maintains T open write streams — the pattern
        // Figure 1 exp. 2 measured, charged at the calibrated
        // random-write rate. Write combining flushes line-sized bursts
        // instead, so it is charged at the sequential rate to keep the
        // model in step with the measured behavior (docs/tuning.md).
        const bool combined_writes =
            scatter == ScatterKind::kWriteCombining;
        for (uint32_t p = 0; p < ctx.team_size; ++p) {
          const uint64_t written =
              cursor[p] - shared.plan.start_offset[b][p];
          const numa::NodeId target_node =
              ctx.topology->NodeForWorker(p, ctx.team_size);
          counters.CountWrite(target_node == ctx.node,
                              /*sequential=*/combined_writes,
                              written * sizeof(Tuple));
        }
      });

  // ---------------------------------------------------- phase 3
  // Sort each range partition into the private run. Static mode sorts
  // partition w whole on worker w (the paper's script). Stealing mode
  // splits oversized partitions: one MSD radix pass per partition
  // (morsel below), then stealable bucket-sort morsels (next phase) so
  // idle workers absorb a hot partition's sort.
  pipeline.AddPhase(
      kPhaseSortPrivate, chunk_morsels,
      [&](WorkerContext& ctx, const Morsel& morsel) {
        const uint32_t w = morsel.task;
        PerfCounters& counters = ctx.Counters(kPhaseSortPrivate);
        Run& run = shared.r_runs[w];
        run.data = shared.partition_data[w];
        run.size = shared.plan.partition_sizes.empty()
                       ? 0
                       : shared.plan.partition_sizes[w];
        run.node = team.topology().NodeForWorker(w, num_workers);
        if (run.size == 0) return;
        const uint64_t split_threshold =
            std::max<uint64_t>(2 * shared.partition_morsel_tuples,
                               2 * sort::kRadixBuckets);
        const bool split = stealing &&
                           options.sort != sort::SortKind::kIntroSort &&
                           run.size > split_threshold;
        if (!split) {
          sort::SortTuples(run.data, run.size, options.sort,
                           options.sort_config);
          counters.CountSort(run.size);
          return;
        }
        uint64_t min_key = 0;
        uint64_t max_key = 0;
        simd::KeyMinMax(run.data, run.size, &min_key, &max_key,
                        options.sort_config.simd);
        shared.r_gen.shift[w] = sort::RadixShiftForMaxKey(max_key);
        shared.r_gen.bounds[w] = sort::MsdRadixPartition(
            run.data, run.size, shared.r_gen.shift[w],
            options.sort_config.simd);
        shared.r_gen.split[w] = 1;
        // One 256-way pass fixes 8 key bits: charge 8 n*log units; the
        // bucket morsels charge the rest (CountSort per bucket).
        counters.sort_tuple_logs += uint64_t{8} * run.size;
      },
      // The legacy phase_barriers knob only made the sort/join barrier
      // optional; preserved here (static mode only — worker w's phase-4
      // script reads nothing but its own partition's run).
      PhasePipeline::PhaseOptions{.optional_barrier = true,
                                  .guest_safe = true});

  if (stealing) {
    // Phase 3 (continued): bucket-sort morsels of the split partitions
    // (shared helpers, core/run_generation.h).
    pipeline.AddPhase(
        kPhaseSortPrivate,
        [&] {
          return BucketSortMorsels(shared.r_gen,
                                   shared.partition_morsel_tuples);
        },
        [&](WorkerContext& ctx, const Morsel& morsel) {
          SortRunBuckets(shared.r_runs[morsel.task], shared.r_gen, morsel,
                         options.sort, options.sort_config,
                         ctx.Counters(kPhaseSortPrivate));
        },
        PhasePipeline::PhaseOptions{.eager = false, .guest_safe = true});
  }

  // ---------------------------------------------------- phase 4
  RunJoinOptions join_options;
  join_options.kind = options.kind;
  join_options.search = options.start_search;
  join_options.prefetch_distance = options.merge_prefetch_distance;
  join_options.skip_private_prefix = options.merge_skip_private_prefix;
  join_options.simd = options.simd;
  if (!stealing) {
    pipeline.AddPhase(
        kPhaseJoin, chunk_morsels,
        [&](WorkerContext& ctx, const Morsel& morsel) {
          JoinPrivateAgainstRuns(shared.r_runs[morsel.task], shared.s_runs,
                                 /*first_run=*/morsel.task, join_options,
                                 consumers.ConsumerForWorker(ctx.worker_id),
                                 ctx.node, &ctx.Counters(kPhaseJoin));
        });
  } else {
    pipeline.AddPhase(
        kPhaseJoin,
        [&] {
          // s_runs.size() (not num_workers): cache views append delta
          // runs past the per-worker base runs, and each needs a
          // (private run x public run) morsel family.
          return MergeJoinMorsels(
              shared.r_runs, static_cast<uint32_t>(shared.s_runs.size()),
              options.kind, shared.partition_morsel_tuples);
        },
        [&](WorkerContext& ctx, const Morsel& morsel) {
          ExecuteMergeJoinMorsel(morsel, shared.r_runs, shared.s_runs,
                                 join_options,
                                 consumers.ConsumerForWorker(ctx.worker_id),
                                 ctx.node, &ctx.Counters(kPhaseJoin));
        },
        PhasePipeline::PhaseOptions{.eager = false});
  }

  WallTimer timer;
  pipeline.Run(team, options.phase_barriers);

  if (diagnostics != nullptr) {
    diagnostics->normalizer = shared.normalizer;
    diagnostics->cdf = shared.cdf;
    diagnostics->splitters = shared.splitters;
    diagnostics->partition_sizes = shared.plan.partition_sizes;
  }
  return CollectRunInfo(team, timer.ElapsedSeconds());
}

}  // namespace mpsm

// Pre-sorted public runs shared across joins: the shared-sort layer.
//
// The dominant cost of a P-MPSM join over a large public input S is
// phase 1 — sorting S into runs. When several queued queries join
// *different* private inputs against the *same* S (the fact-table
// pattern a join service sees), that sort is identical work repeated
// per query. BuildPublicRuns materializes S's runs and equi-height
// histograms once; PMpsmJoin::Execute then accepts the result in place
// of its own phase 1, so N compatible queries pay for one sort
// (docs/service.md "Shared-sort batching").
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/join_types.h"
#include "numa/arena.h"
#include "parallel/worker_team.h"
#include "partition/equi_height.h"
#include "storage/relation.h"
#include "storage/run.h"
#include "util/status.h"

namespace mpsm {

/// Phase-1 products of a P-MPSM join over one public input, detached
/// from any single execution: one sorted NUMA-homed run per worker
/// plus the equi-height histograms the CDF is built from. Owns the run
/// memory (arenas); immutable once built, so any number of concurrent
/// joins may read it.
struct PublicRuns {
  RunSet runs;
  std::vector<EquiHeightHistogram> histograms;
  /// Equi-height bounds per histogram (f*T at build time).
  uint32_t num_bounds = 0;
  /// Team size the base runs were built on. `runs` may hold *more*
  /// than team_size entries — a run-cache view appends sorted delta
  /// runs after the per-worker base runs (docs/cache.md) — but never
  /// fewer, and a consumer team must match this size exactly. 0 =
  /// unknown (hand-assembled), validated by run count alone.
  uint32_t team_size = 0;

  /// Resident size of the materialized runs.
  uint64_t bytes() const {
    uint64_t total = 0;
    for (const Run& run : runs) total += run.size * sizeof(Tuple);
    return total;
  }

  /// Owns the runs' tuples; one arena per producing worker.
  std::vector<std::unique_ptr<numa::Arena>> arenas;
};

/// Sorts `s_public` (chunked into team.size() chunks) into a PublicRuns
/// usable by any PMpsmJoin on a team of the same size. `num_bounds`
/// == 0 derives the paper's f*T from options.equi_height_factor. Uses
/// the same run-generation phases as a normal join (sliced stealing
/// under SchedulerKind::kStealing).
Result<PublicRuns> BuildPublicRuns(WorkerTeam& team, const Relation& s_public,
                                   const MpsmOptions& options = {},
                                   uint32_t num_bounds = 0);

}  // namespace mpsm

// The merge-join kernel and the per-worker run-join driver.
//
// MPSM never merges runs into a global sort order; instead every worker
// merge-joins its private run against each public run independently
// (Figure 3 phase 3 / Figure 5 phase 4). The kernel below joins one
// (R-run, S-run) pair with full duplicate handling; the driver iterates
// a private run over all public runs, staggering the starting run so
// workers fan out across NUMA nodes, and implements the semi / anti /
// outer variants via a per-run match bitmap.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/consumers.h"
#include "core/join_types.h"
#include "numa/topology.h"
#include "parallel/counters.h"
#include "parallel/task_scheduler.h"
#include "storage/run.h"

namespace mpsm {

/// Dense bitmap tracking which private tuples found a join partner
/// (needed by semi/anti/outer joins across multiple public runs).
class MatchBitmap {
 public:
  MatchBitmap() = default;
  explicit MatchBitmap(size_t n) : size_(n), words_((n + 63) / 64, 0) {}

  void Set(size_t i) { words_[i >> 6] |= uint64_t{1} << (i & 63); }
  bool Get(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  size_t size() const { return size_; }

 private:
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

/// Scan positions after a kernel invocation (for traffic accounting).
struct MergeScan {
  size_t r_end = 0;  // one past the last private index examined
  size_t s_end = 0;  // one past the last public index examined
  uint64_t matches = 0;
};

namespace internal {

/// Shared merge loop; `kPrefetch` selects the pipelined variant that
/// keeps both run cursors `prefetch_tuples` ahead in flight.
template <bool kPrefetch, typename OnMatch>
MergeScan MergeJoinLoop(const Tuple* r, size_t nr, const Tuple* s, size_t ns,
                        size_t prefetch_tuples, OnMatch&& on_match) {
  MergeScan scan;
  size_t i = 0;
  size_t j = 0;
  while (i < nr && j < ns) {
    if constexpr (kPrefetch) {
      // Touch the line `prefetch_tuples` ahead of each cursor. Reads
      // past the run tail are harmless (prefetch never faults), and
      // duplicate prefetches of a resident line are ~free.
      __builtin_prefetch(r + i + prefetch_tuples, /*rw=*/0, /*locality=*/3);
      __builtin_prefetch(s + j + prefetch_tuples, /*rw=*/0, /*locality=*/3);
    }
    const uint64_t r_key = r[i].key;
    if (r_key < s[j].key) {
      ++i;
    } else if (r_key > s[j].key) {
      ++j;
    } else {
      size_t j_end = j + 1;
      while (j_end < ns && s[j_end].key == r_key) ++j_end;
      const size_t group = j_end - j;
      do {
        on_match(i, r[i], s + j, group);
        scan.matches += group;
        ++i;
      } while (i < nr && r[i].key == r_key);
      j = j_end;
    }
  }
  scan.r_end = i;
  scan.s_end = j;
  return scan;
}

}  // namespace internal

/// Merge-joins sorted arrays r[0..nr) and s[0..ns).
///
/// `on_match(r_index, r_tuple, s_group_begin, s_group_count)` fires once
/// per private tuple per equal-key group of public tuples. Handles
/// duplicates on both sides.
template <typename OnMatch>
MergeScan MergeJoinRunPair(const Tuple* r, size_t nr, const Tuple* s,
                           size_t ns, OnMatch&& on_match) {
  return internal::MergeJoinLoop<false>(r, nr, s, ns, 0,
                                        std::forward<OnMatch>(on_match));
}

/// Prefetch-pipelined variant of MergeJoinRunPair: issues software
/// prefetches `prefetch_tuples` ahead of both run cursors so the merge
/// streams from memory instead of stalling on each new cache line
/// (public runs are mostly remote, §3.3). Identical output contract.
template <typename OnMatch>
MergeScan MergeJoinRunPairPrefetch(const Tuple* r, size_t nr, const Tuple* s,
                                   size_t ns, size_t prefetch_tuples,
                                   OnMatch&& on_match) {
  return internal::MergeJoinLoop<true>(r, nr, s, ns, prefetch_tuples,
                                       std::forward<OnMatch>(on_match));
}

/// Kernel dispatch: the pipelined variant when `prefetch_tuples` > 0,
/// the scalar kernel otherwise (the `merge_prefetch_distance` knob).
template <typename OnMatch>
MergeScan MergeJoinRunPairWith(size_t prefetch_tuples, const Tuple* r,
                               size_t nr, const Tuple* s, size_t ns,
                               OnMatch&& on_match) {
  return prefetch_tuples > 0
             ? MergeJoinRunPairPrefetch(r, nr, s, ns, prefetch_tuples,
                                        std::forward<OnMatch>(on_match))
             : MergeJoinRunPair(r, nr, s, ns,
                                std::forward<OnMatch>(on_match));
}

/// Options for the per-worker run-join driver.
struct RunJoinOptions {
  JoinKind kind = JoinKind::kInner;
  StartSearch search = StartSearch::kInterpolation;

  /// Software-prefetch lookahead of the merge kernel, in tuples;
  /// 0 selects the scalar kernel.
  uint32_t prefetch_distance = kDefaultMergePrefetchDistance;

  /// Skip the private run's non-overlapping prefix with the same start
  /// search used for the public run (the scalar driver only skips the
  /// public side), saving one-by-one advances when Ri starts below Sj.
  bool skip_private_prefix = true;
};

/// Joins private run `ri` against every run in `s_runs`, starting with
/// run `first_run` and wrapping around (staggering remote accesses).
///
/// Counts memory traffic into `counters` (nullable) classifying each S
/// run as local/remote against `worker_node`. Returns the number of
/// output tuples delivered to `consumer`.
uint64_t JoinPrivateAgainstRuns(const Run& ri, const RunSet& s_runs,
                                uint32_t first_run,
                                const RunJoinOptions& options,
                                JoinConsumer& consumer,
                                numa::NodeId worker_node,
                                PerfCounters* counters);

/// Builds the stealing scheduler's phase-4 morsels. Inner joins are
/// sliced finely — one morsel per (private run i, public run j, tuple
/// range of i), task = i * |s_runs| + j, public runs staggered per i —
/// so a hot partition's merge work spreads over idle workers. The
/// bitmap-carrying kinds (semi/anti/outer) get one morsel per private
/// run (task = i, the full driver): the match bitmap spans all public
/// runs and must stay single-owner.
std::vector<Morsel> MergeJoinMorsels(const RunSet& r_runs,
                                     uint32_t num_public_runs, JoinKind kind,
                                     uint64_t morsel_tuples);

/// Executes one MergeJoinMorsels morsel. `worker_node` is the
/// *executing* worker's node; locality is classified against the runs'
/// homes, so stolen morsels are charged remote traffic.
void ExecuteMergeJoinMorsel(const Morsel& morsel, const RunSet& r_runs,
                            const RunSet& s_runs,
                            const RunJoinOptions& options,
                            JoinConsumer& consumer, numa::NodeId worker_node,
                            PerfCounters* counters);

}  // namespace mpsm

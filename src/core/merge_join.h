// The merge-join kernel and the per-worker run-join driver.
//
// MPSM never merges runs into a global sort order; instead every worker
// merge-joins its private run against each public run independently
// (Figure 3 phase 3 / Figure 5 phase 4). The kernel below joins one
// (R-run, S-run) pair with full duplicate handling; the driver iterates
// a private run over all public runs, staggering the starting run so
// workers fan out across NUMA nodes, and implements the semi / anti /
// outer variants via a per-run match bitmap.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/consumers.h"
#include "core/join_types.h"
#include "numa/topology.h"
#include "parallel/counters.h"
#include "parallel/task_scheduler.h"
#include "simd/caps.h"
#include "simd/merge_kernels.h"
#include "simd/simd_kind.h"
#include "storage/run.h"

namespace mpsm {

/// Dense bitmap tracking which private tuples found a join partner
/// (needed by semi/anti/outer joins across multiple public runs).
class MatchBitmap {
 public:
  MatchBitmap() = default;
  explicit MatchBitmap(size_t n) : size_(n), words_((n + 63) / 64, 0) {}

  void Set(size_t i) { words_[i >> 6] |= uint64_t{1} << (i & 63); }
  bool Get(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  size_t size() const { return size_; }

 private:
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

/// Scan positions after a kernel invocation (for traffic accounting).
struct MergeScan {
  size_t r_end = 0;  // one past the last private index examined
  size_t s_end = 0;  // one past the last public index examined
  uint64_t matches = 0;
};

namespace internal {

/// Shared merge loop; `kPrefetch` selects the pipelined variant that
/// keeps both run cursors `prefetch_tuples` ahead in flight.
template <bool kPrefetch, typename OnMatch>
MergeScan MergeJoinLoop(const Tuple* r, size_t nr, const Tuple* s, size_t ns,
                        size_t prefetch_tuples, OnMatch&& on_match) {
  MergeScan scan;
  size_t i = 0;
  size_t j = 0;
  while (i < nr && j < ns) {
    if constexpr (kPrefetch) {
      // Touch the line `prefetch_tuples` ahead of each cursor. Reads
      // past the run tail are harmless (prefetch never faults), and
      // duplicate prefetches of a resident line are ~free.
      __builtin_prefetch(r + i + prefetch_tuples, /*rw=*/0, /*locality=*/3);
      __builtin_prefetch(s + j + prefetch_tuples, /*rw=*/0, /*locality=*/3);
    }
    const uint64_t r_key = r[i].key;
    if (r_key < s[j].key) {
      ++i;
    } else if (r_key > s[j].key) {
      ++j;
    } else {
      size_t j_end = j + 1;
      while (j_end < ns && s[j_end].key == r_key) ++j_end;
      const size_t group = j_end - j;
      do {
        on_match(i, r[i], s + j, group);
        scan.matches += group;
        ++i;
      } while (i < nr && r[i].key == r_key);
      j = j_end;
    }
  }
  scan.r_end = i;
  scan.s_end = j;
  return scan;
}

#if MPSM_SIMD_X86

// SIMD variants of MergeJoinLoop, stamped per ISA so the kernels
// (simd/merge_kernels.h) inline fully. The public-run cursor — the one
// that moves ~multiplicity tuples per step — catches up against a
// register-resident window of W unpacked keys (SKeyWindow*): one
// packed compare per pivot, one load+unpack per W tuples of progress,
// galloping via the advance kernel when a pivot clears several whole
// windows (skewed runs). The private cursor steps scalar (it moves ~1
// tuple per iteration) and equal-key groups keep the scalar duplicate
// handling, so the match sequence is bit-identical to the scalar loop.
// Composes with the prefetch pipeline: the lookahead is issued per
// outer iteration, ahead of both cursors.
#define MPSM_MERGE_LOOP_SIMD(NAME, ISA, WINDOW, ADVANCE)                   \
  template <bool kPrefetch, typename OnMatch>                              \
  MPSM_SIMD_TARGET(ISA)                                                    \
  MergeScan NAME(const Tuple* r, size_t nr, const Tuple* s, size_t ns,     \
                 size_t prefetch_tuples, OnMatch&& on_match) {             \
    constexpr size_t kW = simd::WINDOW::kWidth;                            \
    constexpr size_t kNoWindow = static_cast<size_t>(-1);                  \
    MergeScan scan;                                                        \
    size_t i = 0;                                                          \
    size_t j = 0;                                                          \
    simd::WINDOW window;                                                   \
    size_t jw = kNoWindow; /* s index the cached window starts at */       \
    while (i < nr && j < ns) {                                             \
      if constexpr (kPrefetch) {                                           \
        __builtin_prefetch(r + i + prefetch_tuples, /*rw=*/0,              \
                           /*locality=*/3);                                \
        /* The public cursor outruns the private one by the        */      \
        /* multiplicity; a vector step consumes a whole window per */      \
        /* compare, so keep several windows' worth of s in flight. */      \
        __builtin_prefetch(s + j + 4 * prefetch_tuples, /*rw=*/0,          \
                           /*locality=*/3);                                \
        __builtin_prefetch(s + j + 4 * prefetch_tuples + 4, /*rw=*/0,      \
                           /*locality=*/3);                                \
      }                                                                    \
      const uint64_t pivot = r[i].key;                                     \
      /* Catch s up to the pivot's lower bound. Pivots ascend, so  */      \
      /* against one window the count of keys below the pivot only */      \
      /* grows: j never moves backward, and a cached window can be */      \
      /* compared unconditionally — no load dependent on j in the  */      \
      /* common path, so consecutive pivots pipeline.              */      \
      bool catch_up;                                                       \
      if (jw != kNoWindow) {                                               \
        const size_t count = window.CountLess(pivot);                      \
        j = jw + count;                                                    \
        catch_up = count == kW;                                            \
        if (catch_up) jw = kNoWindow; /* window exhausted */               \
      } else {                                                             \
        catch_up = s[j].key < pivot;                                       \
      }                                                                    \
      if (catch_up) {                                                      \
        int blocks = 0;                                                    \
        for (;;) {                                                         \
          if (jw == kNoWindow || j >= jw + kW) {                           \
            if (j + kW > ns) {                                             \
              while (j < ns && s[j].key < pivot) ++j;                      \
              break;                                                       \
            }                                                              \
            jw = j;                                                        \
            window.Load(s + jw);                                           \
          }                                                                \
          const size_t count = window.CountLess(pivot);                    \
          j = jw + count;                                                  \
          if (count < kW) break;                                           \
          jw = kNoWindow; /* window exhausted */                           \
          if (++blocks >= simd::kGallopAfterBlocks) {                      \
            j = simd::ADVANCE(s, j, ns, pivot);                            \
            break;                                                         \
          }                                                                \
        }                                                                  \
        if (j >= ns) break;                                                \
      }                                                                    \
      if (s[j].key == pivot) {                                             \
        size_t j_end = j + 1;                                              \
        while (j_end < ns && s[j_end].key == pivot) ++j_end;               \
        const size_t group = j_end - j;                                    \
        do {                                                               \
          on_match(i, r[i], s + j, group);                                 \
          scan.matches += group;                                           \
          ++i;                                                             \
        } while (i < nr && r[i].key == pivot);                             \
        j = j_end;                                                         \
        jw = kNoWindow; /* the group scan may leave the window */          \
      } else {                                                             \
        ++i; /* pivot unmatched; private side steps scalar */              \
      }                                                                    \
    }                                                                      \
    scan.r_end = i;                                                        \
    scan.s_end = j;                                                        \
    return scan;                                                           \
  }

MPSM_MERGE_LOOP_SIMD(MergeJoinLoopSse, "sse4.2", SKeyWindowSse,
                     AdvanceLowerBoundSse)
MPSM_MERGE_LOOP_SIMD(MergeJoinLoopAvx2, "avx2", SKeyWindowAvx2,
                     AdvanceLowerBoundAvx2)
MPSM_MERGE_LOOP_SIMD(MergeJoinLoopAvx512, "avx512f", SKeyWindowAvx512,
                     AdvanceLowerBoundAvx512)

#undef MPSM_MERGE_LOOP_SIMD

#endif  // MPSM_SIMD_X86

}  // namespace internal

/// Merge-joins sorted arrays r[0..nr) and s[0..ns).
///
/// `on_match(r_index, r_tuple, s_group_begin, s_group_count)` fires once
/// per private tuple per equal-key group of public tuples. Handles
/// duplicates on both sides.
template <typename OnMatch>
MergeScan MergeJoinRunPair(const Tuple* r, size_t nr, const Tuple* s,
                           size_t ns, OnMatch&& on_match) {
  return internal::MergeJoinLoop<false>(r, nr, s, ns, 0,
                                        std::forward<OnMatch>(on_match));
}

/// Prefetch-pipelined variant of MergeJoinRunPair: issues software
/// prefetches `prefetch_tuples` ahead of both run cursors so the merge
/// streams from memory instead of stalling on each new cache line
/// (public runs are mostly remote, §3.3). Identical output contract.
template <typename OnMatch>
MergeScan MergeJoinRunPairPrefetch(const Tuple* r, size_t nr, const Tuple* s,
                                   size_t ns, size_t prefetch_tuples,
                                   OnMatch&& on_match) {
  return internal::MergeJoinLoop<true>(r, nr, s, ns, prefetch_tuples,
                                       std::forward<OnMatch>(on_match));
}

/// Kernel dispatch over both axes: the pipelined variant when
/// `prefetch_tuples` > 0 (the `merge_prefetch_distance` knob), and the
/// per-ISA SIMD-advance loop selected by `simd` (resolved via
/// simd::Resolve; kScalar keeps the paper's one-key-per-compare loop —
/// the `simd` knob). Every combination emits the identical match
/// sequence.
template <typename OnMatch>
MergeScan MergeJoinRunPairWith(size_t prefetch_tuples, simd::SimdKind simd,
                               const Tuple* r, size_t nr, const Tuple* s,
                               size_t ns, OnMatch&& on_match) {
#if MPSM_SIMD_X86
  const auto simd_loop = [&](auto&& loop) {
    return prefetch_tuples > 0
               ? loop.template operator()<true>(prefetch_tuples)
               : loop.template operator()<false>(size_t{0});
  };
  switch (simd::Resolve(simd)) {
    case simd::SimdKind::kSse:
      return simd_loop([&]<bool kPrefetch>(size_t distance) {
        return internal::MergeJoinLoopSse<kPrefetch>(
            r, nr, s, ns, distance, std::forward<OnMatch>(on_match));
      });
    case simd::SimdKind::kAvx2:
      return simd_loop([&]<bool kPrefetch>(size_t distance) {
        return internal::MergeJoinLoopAvx2<kPrefetch>(
            r, nr, s, ns, distance, std::forward<OnMatch>(on_match));
      });
    case simd::SimdKind::kAvx512:
      return simd_loop([&]<bool kPrefetch>(size_t distance) {
        return internal::MergeJoinLoopAvx512<kPrefetch>(
            r, nr, s, ns, distance, std::forward<OnMatch>(on_match));
      });
    default:
      break;  // kScalar
  }
#else
  (void)simd;
#endif
  return prefetch_tuples > 0
             ? MergeJoinRunPairPrefetch(r, nr, s, ns, prefetch_tuples,
                                        std::forward<OnMatch>(on_match))
             : MergeJoinRunPair(r, nr, s, ns,
                                std::forward<OnMatch>(on_match));
}

/// Options for the per-worker run-join driver.
struct RunJoinOptions {
  JoinKind kind = JoinKind::kInner;
  StartSearch search = StartSearch::kInterpolation;

  /// Software-prefetch lookahead of the merge kernel, in tuples;
  /// 0 selects the scalar kernel.
  uint32_t prefetch_distance = kDefaultMergePrefetchDistance;

  /// Skip the private run's non-overlapping prefix with the same start
  /// search used for the public run (the scalar driver only skips the
  /// public side), saving one-by-one advances when Ri starts below Sj.
  bool skip_private_prefix = true;

  /// Vector ISA of the merge-advance and start-search kernels
  /// (docs/simd.md); kScalar selects the one-key-per-compare loops.
  simd::SimdKind simd = simd::SimdKind::kAuto;
};

/// Joins private run `ri` against every run in `s_runs`, starting with
/// run `first_run` and wrapping around (staggering remote accesses).
///
/// Counts memory traffic into `counters` (nullable) classifying each S
/// run as local/remote against `worker_node`. Returns the number of
/// output tuples delivered to `consumer`.
uint64_t JoinPrivateAgainstRuns(const Run& ri, const RunSet& s_runs,
                                uint32_t first_run,
                                const RunJoinOptions& options,
                                JoinConsumer& consumer,
                                numa::NodeId worker_node,
                                PerfCounters* counters);

/// Builds the stealing scheduler's phase-4 morsels. Inner joins are
/// sliced finely — one morsel per (private run i, public run j, tuple
/// range of i), task = i * |s_runs| + j, public runs staggered per i —
/// so a hot partition's merge work spreads over idle workers. The
/// bitmap-carrying kinds (semi/anti/outer) get one morsel per private
/// run (task = i, the full driver): the match bitmap spans all public
/// runs and must stay single-owner.
std::vector<Morsel> MergeJoinMorsels(const RunSet& r_runs,
                                     uint32_t num_public_runs, JoinKind kind,
                                     uint64_t morsel_tuples);

/// Executes one MergeJoinMorsels morsel. `worker_node` is the
/// *executing* worker's node; locality is classified against the runs'
/// homes, so stolen morsels are charged remote traffic.
void ExecuteMergeJoinMorsel(const Morsel& morsel, const RunSet& r_runs,
                            const RunSet& s_runs,
                            const RunJoinOptions& options,
                            JoinConsumer& consumer, numa::NodeId worker_node,
                            PerfCounters* counters);

}  // namespace mpsm

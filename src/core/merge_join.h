// The merge-join kernel and the per-worker run-join driver.
//
// MPSM never merges runs into a global sort order; instead every worker
// merge-joins its private run against each public run independently
// (Figure 3 phase 3 / Figure 5 phase 4). The kernel below joins one
// (R-run, S-run) pair with full duplicate handling; the driver iterates
// a private run over all public runs, staggering the starting run so
// workers fan out across NUMA nodes, and implements the semi / anti /
// outer variants via a per-run match bitmap.
#pragma once

#include <cstdint>
#include <vector>

#include "core/consumers.h"
#include "core/join_types.h"
#include "numa/topology.h"
#include "parallel/counters.h"
#include "storage/run.h"

namespace mpsm {

/// Dense bitmap tracking which private tuples found a join partner
/// (needed by semi/anti/outer joins across multiple public runs).
class MatchBitmap {
 public:
  MatchBitmap() = default;
  explicit MatchBitmap(size_t n) : size_(n), words_((n + 63) / 64, 0) {}

  void Set(size_t i) { words_[i >> 6] |= uint64_t{1} << (i & 63); }
  bool Get(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  size_t size() const { return size_; }

 private:
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

/// Scan positions after a kernel invocation (for traffic accounting).
struct MergeScan {
  size_t r_end = 0;  // one past the last private index examined
  size_t s_end = 0;  // one past the last public index examined
  uint64_t matches = 0;
};

/// Merge-joins sorted arrays r[0..nr) and s[0..ns).
///
/// `on_match(r_index, r_tuple, s_group_begin, s_group_count)` fires once
/// per private tuple per equal-key group of public tuples. Handles
/// duplicates on both sides.
template <typename OnMatch>
MergeScan MergeJoinRunPair(const Tuple* r, size_t nr, const Tuple* s,
                           size_t ns, OnMatch&& on_match) {
  MergeScan scan;
  size_t i = 0;
  size_t j = 0;
  while (i < nr && j < ns) {
    const uint64_t r_key = r[i].key;
    if (r_key < s[j].key) {
      ++i;
    } else if (r_key > s[j].key) {
      ++j;
    } else {
      size_t j_end = j + 1;
      while (j_end < ns && s[j_end].key == r_key) ++j_end;
      const size_t group = j_end - j;
      do {
        on_match(i, r[i], s + j, group);
        scan.matches += group;
        ++i;
      } while (i < nr && r[i].key == r_key);
      j = j_end;
    }
  }
  scan.r_end = i;
  scan.s_end = j;
  return scan;
}

/// Options for the per-worker run-join driver.
struct RunJoinOptions {
  JoinKind kind = JoinKind::kInner;
  StartSearch search = StartSearch::kInterpolation;
};

/// Joins private run `ri` against every run in `s_runs`, starting with
/// run `first_run` and wrapping around (staggering remote accesses).
///
/// Counts memory traffic into `counters` (nullable) classifying each S
/// run as local/remote against `worker_node`. Returns the number of
/// output tuples delivered to `consumer`.
uint64_t JoinPrivateAgainstRuns(const Run& ri, const RunSet& s_runs,
                                uint32_t first_run,
                                const RunJoinOptions& options,
                                JoinConsumer& consumer,
                                numa::NodeId worker_node,
                                PerfCounters* counters);

}  // namespace mpsm

#include "core/join_types.h"

#include <string>

#include "util/bits.h"

namespace mpsm {

Status MpsmOptions::Validate(uint32_t team_size) const {
  if (team_size == 0) {
    return Status::InvalidArgument("team_size must be >= 1");
  }
  const uint32_t log_t = bits::Log2Ceil(team_size);
  if (radix_bits != 0 && radix_bits < log_t) {
    return Status::InvalidArgument(
        "radix_bits = " + std::to_string(radix_bits) +
        " cannot express the " + std::to_string(team_size) +
        " partitions of this team (need >= ceil(log2(T)) = " +
        std::to_string(log_t) + ", or 0 for auto)");
  }
  // 2^B histogram buckets per scatter block: beyond 24 bits the
  // histograms dwarf the data being partitioned.
  if (radix_bits > 24) {
    return Status::InvalidArgument("radix_bits must be <= 24");
  }
  if (equi_height_factor == 0) {
    return Status::InvalidArgument(
        "equi_height_factor must be >= 1 (f*T CDF bounds per worker)");
  }
  // morsel_tuples == 0 is legal: adaptive slicing from partition-size
  // variance (docs/scheduler.md).
  return sort_config.Validate();
}

}  // namespace mpsm

// Interpolation search for the merge-join start position (§3.2.2).
//
// After range partitioning, a private run Ri joins only a narrow key
// range of each public run Sj. Scanning for the start would cost many
// comparisons; interpolation search finds it by repeatedly applying the
// rule of proportion over the current search space, converging in
// O(log log n) steps on smooth distributions. A binary-search safety
// net bounds the worst case for adversarial key distributions.
#pragma once

#include <cstddef>
#include <cstdint>

#include "simd/merge_kernels.h"
#include "storage/tuple.h"

namespace mpsm {

/// Probe statistics for ablation benchmarks.
struct SearchStats {
  uint64_t probes = 0;
};

/// First index i in the sorted array data[0..n) with data[i].key >= key
/// (lower bound), found via interpolation search.
size_t InterpolationLowerBound(const Tuple* data, size_t n, uint64_t key,
                               SearchStats* stats = nullptr);

/// Same contract via binary search (ablation baseline).
size_t BinaryLowerBound(const Tuple* data, size_t n, uint64_t key,
                        SearchStats* stats = nullptr);

/// Same contract via linear scan (ablation baseline; the "numerous
/// expensive comparisons" the paper avoids).
size_t LinearLowerBound(const Tuple* data, size_t n, uint64_t key,
                        SearchStats* stats = nullptr);

// ------------------------------------------------ vectorized finishes
// SIMD variants of the three strategies (docs/simd.md): the scalar
// descent stops once the range fits a few vector blocks and a packed
// forward scan (`advance`, a resolved kernel from simd::AdvanceForKind
// — must not be nullptr) finishes, replacing the final branchy probe
// levels with one or two register compares. Same position contract as
// the scalar functions; `stats` counts the vector finish at block
// granularity, so probe totals are not comparable across kinds.

/// Interpolation descent to a vector-window range, packed finish.
size_t InterpolationLowerBoundWindowed(const Tuple* data, size_t n,
                                       uint64_t key, simd::AdvanceFn advance,
                                       SearchStats* stats = nullptr);

/// Binary descent to a vector-window range, packed finish.
size_t BinaryLowerBoundWindowed(const Tuple* data, size_t n, uint64_t key,
                                simd::AdvanceFn advance,
                                SearchStats* stats = nullptr);

/// Packed forward scan from index 0 (the vectorized linear baseline;
/// `advance` gallops, so this is O(log n) despite the name's lineage).
size_t LinearLowerBoundWindowed(const Tuple* data, size_t n, uint64_t key,
                                simd::AdvanceFn advance,
                                SearchStats* stats = nullptr);

}  // namespace mpsm

// B-MPSM: the basic massively parallel sort-merge join (§2.1).
//
// Both inputs are chunked among the T workers; every worker sorts its
// chunks into runs in local memory, then merge-joins its private run
// against all T public runs. No range partitioning: absolutely
// skew-immune, at the price of every worker scanning the whole public
// input (complexity §2.2). One mandatory synchronization point: public
// runs must be complete before the join phase starts.
#pragma once

#include "core/consumers.h"
#include "core/join_stats.h"
#include "core/join_types.h"
#include "parallel/worker_team.h"
#include "storage/relation.h"
#include "util/status.h"

namespace mpsm {

/// The basic MPSM join.
class BMpsmJoin {
 public:
  explicit BMpsmJoin(MpsmOptions options = {}) : options_(options) {}

  /// Joins `r_private` with `s_public` on `team`, streaming results to
  /// `consumers`. Both relations must be chunked into team.size()
  /// chunks. Safe to call repeatedly.
  Result<JoinRunInfo> Execute(WorkerTeam& team, const Relation& r_private,
                              const Relation& s_public,
                              ConsumerFactory& consumers) const;

  const MpsmOptions& options() const { return options_; }

 private:
  MpsmOptions options_;
};

}  // namespace mpsm

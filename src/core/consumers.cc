#include "core/consumers.h"

#include <algorithm>
#include <cstring>

namespace mpsm {

namespace {

// Little helpers for the durable snapshots: fixed-width little-endian
// fields, bounds-checked on restore.
void PutU64(std::string& out, uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutU8(std::string& out, uint8_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}
bool GetU64(const std::string& in, size_t& pos, uint64_t* v) {
  if (in.size() - pos < sizeof(*v)) return false;
  std::memcpy(v, in.data() + pos, sizeof(*v));
  pos += sizeof(*v);
  return true;
}
bool GetU8(const std::string& in, size_t& pos, uint8_t* v) {
  if (in.size() - pos < sizeof(*v)) return false;
  std::memcpy(v, in.data() + pos, sizeof(*v));
  pos += sizeof(*v);
  return true;
}

}  // namespace

// ---------------------------------------------------------------- max agg

class MaxPayloadSumFactory::Consumer : public JoinConsumer {
 public:
  void OnMatch(const Tuple& r, const Tuple* s_begin, size_t s_count) override {
    // max(R.payload + S.payload) over the group needs only the max S
    // payload of the equal-key group.
    uint64_t max_s = 0;
    for (size_t i = 0; i < s_count; ++i) {
      max_s = std::max(max_s, s_begin[i].payload);
    }
    const uint64_t candidate = r.payload + max_s;
    if (!best_ || candidate > *best_) best_ = candidate;
  }

  void OnUnmatchedR(const Tuple& r) override {
    if (!best_ || r.payload > *best_) best_ = r.payload;
  }

  std::optional<uint64_t> best() const { return best_; }
  void set_best(std::optional<uint64_t> best) { best_ = best; }

 private:
  std::optional<uint64_t> best_;
};

MaxPayloadSumFactory::MaxPayloadSumFactory(uint32_t team_size) {
  workers_.reserve(team_size);
  for (uint32_t w = 0; w < team_size; ++w) {
    workers_.push_back(std::make_unique<Consumer>());
  }
}

MaxPayloadSumFactory::~MaxPayloadSumFactory() = default;

JoinConsumer& MaxPayloadSumFactory::ConsumerForWorker(uint32_t w) {
  return *workers_[w];
}

std::string MaxPayloadSumFactory::SerializeWorker(uint32_t w) const {
  std::string out;
  const auto best = workers_[w]->best();
  PutU8(out, best.has_value() ? 1 : 0);
  PutU64(out, best.value_or(0));
  return out;
}

Status MaxPayloadSumFactory::RestoreWorker(uint32_t w,
                                           const std::string& state) {
  size_t pos = 0;
  uint8_t has = 0;
  uint64_t value = 0;
  if (w >= workers_.size() || !GetU8(state, pos, &has) ||
      !GetU64(state, pos, &value) || pos != state.size()) {
    return Status::InvalidArgument("malformed max-aggregate snapshot");
  }
  workers_[w]->set_best(has != 0 ? std::optional<uint64_t>(value)
                                 : std::nullopt);
  return Status::OK();
}

std::optional<uint64_t> MaxPayloadSumFactory::Result() const {
  std::optional<uint64_t> best;
  for (const auto& worker : workers_) {
    const auto local = worker->best();
    if (local && (!best || *local > *best)) best = local;
  }
  return best;
}

// ------------------------------------------------------------------ count

class CountFactory::Consumer : public JoinConsumer {
 public:
  void OnMatch(const Tuple&, const Tuple*, size_t s_count) override {
    count_ += s_count;
  }
  void OnUnmatchedR(const Tuple&) override { ++count_; }
  uint64_t count() const { return count_; }
  void set_count(uint64_t count) { count_ = count; }

 private:
  uint64_t count_ = 0;
};

CountFactory::CountFactory(uint32_t team_size) {
  workers_.reserve(team_size);
  for (uint32_t w = 0; w < team_size; ++w) {
    workers_.push_back(std::make_unique<Consumer>());
  }
}

CountFactory::~CountFactory() = default;

JoinConsumer& CountFactory::ConsumerForWorker(uint32_t w) {
  return *workers_[w];
}

std::string CountFactory::SerializeWorker(uint32_t w) const {
  std::string out;
  PutU64(out, workers_[w]->count());
  return out;
}

Status CountFactory::RestoreWorker(uint32_t w, const std::string& state) {
  size_t pos = 0;
  uint64_t count = 0;
  if (w >= workers_.size() || !GetU64(state, pos, &count) ||
      pos != state.size()) {
    return Status::InvalidArgument("malformed count snapshot");
  }
  workers_[w]->set_count(count);
  return Status::OK();
}

uint64_t CountFactory::Result() const {
  uint64_t total = 0;
  for (const auto& worker : workers_) total += worker->count();
  return total;
}

// ------------------------------------------------------------ materialize

class MaterializeFactory::Consumer : public JoinConsumer {
 public:
  void OnMatch(const Tuple& r, const Tuple* s_begin, size_t s_count) override {
    for (size_t i = 0; i < s_count; ++i) {
      rows_.push_back(OutputRow{r.key, r.payload, s_begin[i].payload});
    }
  }
  void OnUnmatchedR(const Tuple& r) override {
    rows_.push_back(OutputRow{r.key, r.payload, std::nullopt});
  }
  const std::vector<OutputRow>& rows() const { return rows_; }
  void set_rows(std::vector<OutputRow> rows) { rows_ = std::move(rows); }

 private:
  std::vector<OutputRow> rows_;
};

MaterializeFactory::MaterializeFactory(uint32_t team_size) {
  workers_.reserve(team_size);
  for (uint32_t w = 0; w < team_size; ++w) {
    workers_.push_back(std::make_unique<Consumer>());
  }
}

MaterializeFactory::~MaterializeFactory() = default;

JoinConsumer& MaterializeFactory::ConsumerForWorker(uint32_t w) {
  return *workers_[w];
}

std::string MaterializeFactory::SerializeWorker(uint32_t w) const {
  const std::vector<OutputRow>& rows = workers_[w]->rows();
  std::string out;
  out.reserve(rows.size() * 25 + 8);
  PutU64(out, rows.size());
  for (const OutputRow& row : rows) {
    PutU64(out, row.key);
    PutU64(out, row.r_payload);
    PutU8(out, row.s_payload.has_value() ? 1 : 0);
    PutU64(out, row.s_payload.value_or(0));
  }
  return out;
}

Status MaterializeFactory::RestoreWorker(uint32_t w,
                                         const std::string& state) {
  if (w >= workers_.size()) {
    return Status::InvalidArgument("worker out of range");
  }
  size_t pos = 0;
  uint64_t n = 0;
  if (!GetU64(state, pos, &n) || (state.size() - pos) / 25 < n) {
    return Status::InvalidArgument("malformed materialize snapshot");
  }
  std::vector<OutputRow> rows;
  rows.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    OutputRow row{};
    uint8_t has_s = 0;
    uint64_t s_payload = 0;
    if (!GetU64(state, pos, &row.key) || !GetU64(state, pos, &row.r_payload) ||
        !GetU8(state, pos, &has_s) || !GetU64(state, pos, &s_payload)) {
      return Status::InvalidArgument("malformed materialize snapshot");
    }
    if (has_s != 0) row.s_payload = s_payload;
    rows.push_back(row);
  }
  if (pos != state.size()) {
    return Status::InvalidArgument("malformed materialize snapshot");
  }
  workers_[w]->set_rows(std::move(rows));
  return Status::OK();
}

const std::vector<OutputRow>& MaterializeFactory::RowsOfWorker(
    uint32_t w) const {
  return workers_[w]->rows();
}

std::vector<OutputRow> MaterializeFactory::AllRows() const {
  std::vector<OutputRow> all;
  for (const auto& worker : workers_) {
    all.insert(all.end(), worker->rows().begin(), worker->rows().end());
  }
  return all;
}

}  // namespace mpsm

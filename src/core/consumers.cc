#include "core/consumers.h"

#include <algorithm>

namespace mpsm {

// ---------------------------------------------------------------- max agg

class MaxPayloadSumFactory::Consumer : public JoinConsumer {
 public:
  void OnMatch(const Tuple& r, const Tuple* s_begin, size_t s_count) override {
    // max(R.payload + S.payload) over the group needs only the max S
    // payload of the equal-key group.
    uint64_t max_s = 0;
    for (size_t i = 0; i < s_count; ++i) {
      max_s = std::max(max_s, s_begin[i].payload);
    }
    const uint64_t candidate = r.payload + max_s;
    if (!best_ || candidate > *best_) best_ = candidate;
  }

  void OnUnmatchedR(const Tuple& r) override {
    if (!best_ || r.payload > *best_) best_ = r.payload;
  }

  std::optional<uint64_t> best() const { return best_; }

 private:
  std::optional<uint64_t> best_;
};

MaxPayloadSumFactory::MaxPayloadSumFactory(uint32_t team_size) {
  workers_.reserve(team_size);
  for (uint32_t w = 0; w < team_size; ++w) {
    workers_.push_back(std::make_unique<Consumer>());
  }
}

MaxPayloadSumFactory::~MaxPayloadSumFactory() = default;

JoinConsumer& MaxPayloadSumFactory::ConsumerForWorker(uint32_t w) {
  return *workers_[w];
}

std::optional<uint64_t> MaxPayloadSumFactory::Result() const {
  std::optional<uint64_t> best;
  for (const auto& worker : workers_) {
    const auto local = worker->best();
    if (local && (!best || *local > *best)) best = local;
  }
  return best;
}

// ------------------------------------------------------------------ count

class CountFactory::Consumer : public JoinConsumer {
 public:
  void OnMatch(const Tuple&, const Tuple*, size_t s_count) override {
    count_ += s_count;
  }
  void OnUnmatchedR(const Tuple&) override { ++count_; }
  uint64_t count() const { return count_; }

 private:
  uint64_t count_ = 0;
};

CountFactory::CountFactory(uint32_t team_size) {
  workers_.reserve(team_size);
  for (uint32_t w = 0; w < team_size; ++w) {
    workers_.push_back(std::make_unique<Consumer>());
  }
}

CountFactory::~CountFactory() = default;

JoinConsumer& CountFactory::ConsumerForWorker(uint32_t w) {
  return *workers_[w];
}

uint64_t CountFactory::Result() const {
  uint64_t total = 0;
  for (const auto& worker : workers_) total += worker->count();
  return total;
}

// ------------------------------------------------------------ materialize

class MaterializeFactory::Consumer : public JoinConsumer {
 public:
  void OnMatch(const Tuple& r, const Tuple* s_begin, size_t s_count) override {
    for (size_t i = 0; i < s_count; ++i) {
      rows_.push_back(OutputRow{r.key, r.payload, s_begin[i].payload});
    }
  }
  void OnUnmatchedR(const Tuple& r) override {
    rows_.push_back(OutputRow{r.key, r.payload, std::nullopt});
  }
  const std::vector<OutputRow>& rows() const { return rows_; }

 private:
  std::vector<OutputRow> rows_;
};

MaterializeFactory::MaterializeFactory(uint32_t team_size) {
  workers_.reserve(team_size);
  for (uint32_t w = 0; w < team_size; ++w) {
    workers_.push_back(std::make_unique<Consumer>());
  }
}

MaterializeFactory::~MaterializeFactory() = default;

JoinConsumer& MaterializeFactory::ConsumerForWorker(uint32_t w) {
  return *workers_[w];
}

const std::vector<OutputRow>& MaterializeFactory::RowsOfWorker(
    uint32_t w) const {
  return workers_[w]->rows();
}

std::vector<OutputRow> MaterializeFactory::AllRows() const {
  std::vector<OutputRow> all;
  for (const auto& worker : workers_) {
    all.insert(all.end(), worker->rows().begin(), worker->rows().end());
  }
  return all;
}

}  // namespace mpsm

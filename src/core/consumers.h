// Join result consumers.
//
// The paper's benchmark query — SELECT max(R.payload + S.payload) —
// feeds all payload data through the join but aggregates to a single
// tuple. Consumers generalize that: each worker owns a private consumer
// (no shared state, commandment C3) and results merge once at the end.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "storage/tuple.h"
#include "util/status.h"

namespace mpsm {

/// Receives join output for one worker. Implementations are not
/// thread-safe; every worker gets its own instance.
class JoinConsumer {
 public:
  virtual ~JoinConsumer() = default;

  /// `r` matched the `s_count` public tuples starting at `s_begin`
  /// (all carrying the same join key).
  virtual void OnMatch(const Tuple& r, const Tuple* s_begin,
                       size_t s_count) = 0;

  /// `r` found no partner (anti and outer joins only).
  virtual void OnUnmatchedR(const Tuple& r) { (void)r; }
};

/// Hands out per-worker consumers and merges their results.
class ConsumerFactory {
 public:
  virtual ~ConsumerFactory() = default;

  /// Consumer owned by worker `w`; the factory retains ownership.
  /// Called once per worker before the join starts.
  virtual JoinConsumer& ConsumerForWorker(uint32_t w) = 0;
};

/// A consumer factory whose per-worker state can be snapshotted and
/// restored. Crash recovery (docs/recovery.md) uses this to skip a
/// worker's entire phase-4 walk on resume: the serialized state a
/// completed walk committed to the manifest is restored into a fresh
/// factory, and that worker's chunk is never re-joined. Factories
/// without this interface still resume (durable runs are re-attached)
/// but re-run every walk.
class DurableConsumerFactory : public ConsumerFactory {
 public:
  /// Worker `w`'s complete consumer state, as an opaque byte string.
  /// Called after the worker's walk finished and before results merge.
  virtual std::string SerializeWorker(uint32_t w) const = 0;

  /// Replaces worker `w`'s state with a previously serialized snapshot.
  /// A malformed snapshot fails (the caller then re-runs the walk).
  virtual Status RestoreWorker(uint32_t w, const std::string& state) = 0;
};

/// Computes max(R.payload + S.payload), the paper's §5.1 query.
/// For unmatched R tuples (outer join) the S payload contributes 0.
class MaxPayloadSumFactory : public DurableConsumerFactory {
 public:
  explicit MaxPayloadSumFactory(uint32_t team_size);
  ~MaxPayloadSumFactory() override;
  JoinConsumer& ConsumerForWorker(uint32_t w) override;
  std::string SerializeWorker(uint32_t w) const override;
  Status RestoreWorker(uint32_t w, const std::string& state) override;

  /// The aggregate over all workers; nullopt when no tuple was emitted.
  std::optional<uint64_t> Result() const;

 private:
  class Consumer;
  std::vector<std::unique_ptr<Consumer>> workers_;
};

/// Counts output tuples (matches, plus unmatched emissions for
/// anti/outer joins).
class CountFactory : public DurableConsumerFactory {
 public:
  explicit CountFactory(uint32_t team_size);
  ~CountFactory() override;
  JoinConsumer& ConsumerForWorker(uint32_t w) override;
  std::string SerializeWorker(uint32_t w) const override;
  Status RestoreWorker(uint32_t w, const std::string& state) override;

  /// Total output cardinality across workers.
  uint64_t Result() const;

 private:
  class Consumer;
  std::vector<std::unique_ptr<Consumer>> workers_;
};

/// A materialized join output row. For unmatched R tuples (anti/outer)
/// `s_payload` is nullopt.
struct OutputRow {
  uint64_t key;
  uint64_t r_payload;
  std::optional<uint64_t> s_payload;

  friend bool operator==(const OutputRow&, const OutputRow&) = default;
};

/// Materializes all output rows, per worker. MPSM's output arrives as
/// sorted runs per worker — the "interesting physical property" §6
/// mentions; rows_of_worker preserves that order.
class MaterializeFactory : public DurableConsumerFactory {
 public:
  explicit MaterializeFactory(uint32_t team_size);
  ~MaterializeFactory() override;
  JoinConsumer& ConsumerForWorker(uint32_t w) override;
  std::string SerializeWorker(uint32_t w) const override;
  Status RestoreWorker(uint32_t w, const std::string& state) override;

  /// Rows produced by worker w, in emission order.
  const std::vector<OutputRow>& RowsOfWorker(uint32_t w) const;

  /// All rows concatenated (unspecified global order).
  std::vector<OutputRow> AllRows() const;

 private:
  class Consumer;
  std::vector<std::unique_ptr<Consumer>> workers_;
};

}  // namespace mpsm

#include "core/merge_join.h"

#include "core/interpolation_search.h"
#include "simd/caps.h"

namespace mpsm {

const char* JoinKindName(JoinKind kind) {
  switch (kind) {
    case JoinKind::kInner:
      return "inner";
    case JoinKind::kLeftSemi:
      return "left-semi";
    case JoinKind::kLeftAnti:
      return "left-anti";
    case JoinKind::kLeftOuter:
      return "left-outer";
  }
  return "unknown";
}

namespace {

size_t FindStart(const Tuple* data, size_t n, uint64_t key,
                 StartSearch search, simd::AdvanceFn advance,
                 SearchStats* stats) {
  if (advance != nullptr) {
    switch (search) {
      case StartSearch::kInterpolation:
        return InterpolationLowerBoundWindowed(data, n, key, advance, stats);
      case StartSearch::kBinary:
        return BinaryLowerBoundWindowed(data, n, key, advance, stats);
      case StartSearch::kLinear:
        return LinearLowerBoundWindowed(data, n, key, advance, stats);
    }
    return 0;
  }
  switch (search) {
    case StartSearch::kInterpolation:
      return InterpolationLowerBound(data, n, key, stats);
    case StartSearch::kBinary:
      return BinaryLowerBound(data, n, key, stats);
    case StartSearch::kLinear:
      return LinearLowerBound(data, n, key, stats);
  }
  return 0;
}

}  // namespace

uint64_t JoinPrivateAgainstRuns(const Run& ri, const RunSet& s_runs,
                                uint32_t first_run,
                                const RunJoinOptions& options,
                                JoinConsumer& consumer,
                                numa::NodeId worker_node,
                                PerfCounters* counters) {
  if (ri.empty()) return 0;

  // The private run is local to its producing worker, but a stolen
  // phase-4 morsel executes on another node — classify against the
  // run's actual home.
  const bool r_local = ri.node == worker_node;
  const bool needs_bitmap = options.kind != JoinKind::kInner;
  MatchBitmap matched;
  if (needs_bitmap) matched = MatchBitmap(ri.size);

  // One kind resolution per driver call: the resolved kind selects the
  // merge loops, its pointer form serves the start searches.
  const simd::SimdKind simd_kind = simd::Resolve(options.simd);
  const simd::AdvanceFn advance = simd::AdvanceForKind(simd_kind);

  uint64_t output = 0;
  const uint32_t num_runs = static_cast<uint32_t>(s_runs.size());
  for (uint32_t offset = 0; offset < num_runs; ++offset) {
    const uint32_t j = (first_run + offset) % num_runs;
    const Run& sj = s_runs[j];
    if (sj.empty()) continue;
    const bool s_local = sj.node == worker_node;

    // Locate the first public tuple that can join with this private
    // run (§3.2.2). The search probes are random accesses.
    SearchStats search_stats;
    const size_t start =
        FindStart(sj.data, sj.size, ri.MinKey(), options.search, advance,
                  &search_stats);
    if (counters != nullptr) {
      counters->CountRead(s_local, /*sequential=*/false,
                          search_stats.probes * sizeof(Tuple));
    }
    // No overlap: either this run ends below the private range or it
    // starts above it. With location skew (§5.5) this skips (T-1) of
    // the public runs after just the search probes.
    if (start == sj.size) continue;
    if (sj.data[start].key > ri.MaxKey()) continue;

    // Symmetric skip: private tuples below the public run's first
    // relevant key cannot match either; locate the private start with
    // the same search instead of advancing the merge one-by-one.
    size_t r_start = 0;
    if (options.skip_private_prefix) {
      SearchStats r_search;
      r_start = FindStart(ri.data, ri.size, sj.data[start].key,
                          options.search, advance, &r_search);
      if (counters != nullptr) {
        counters->CountRead(r_local, /*sequential=*/false,
                            r_search.probes * sizeof(Tuple));
      }
      if (r_start == ri.size) continue;
    }

    const Tuple* r_base = ri.data + r_start;
    const size_t r_size = ri.size - r_start;
    const Tuple* s_base = sj.data + start;
    const size_t s_size = sj.size - start;
    const auto merge = [&](auto&& on_match) {
      return MergeJoinRunPairWith(options.prefetch_distance, simd_kind,
                                  r_base, r_size, s_base, s_size, on_match);
    };

    MergeScan scan;
    switch (options.kind) {
      case JoinKind::kInner:
        scan = merge([&](size_t, const Tuple& r, const Tuple* s,
                         size_t count) {
          consumer.OnMatch(r, s, count);
          output += count;
        });
        break;
      case JoinKind::kLeftSemi:
        scan = merge([&](size_t idx, const Tuple& r, const Tuple* s,
                         size_t) {
          idx += r_start;
          if (!matched.Get(idx)) {
            matched.Set(idx);
            consumer.OnMatch(r, s, 1);
            ++output;
          }
        });
        break;
      case JoinKind::kLeftAnti:
        scan = merge([&](size_t idx, const Tuple&, const Tuple*, size_t) {
          matched.Set(idx + r_start);
        });
        break;
      case JoinKind::kLeftOuter:
        scan = merge([&](size_t idx, const Tuple& r, const Tuple* s,
                         size_t count) {
          matched.Set(idx + r_start);
          consumer.OnMatch(r, s, count);
          output += count;
        });
        break;
    }

    if (counters != nullptr) {
      // The private run is rescanned for every public run (sequential,
      // local unless this is a stolen morsel); the public run is
      // scanned from the start position to wherever the merge stopped
      // (sequential).
      counters->CountRead(r_local, /*sequential=*/true,
                          scan.r_end * sizeof(Tuple));
      counters->CountRead(s_local, /*sequential=*/true,
                          scan.s_end * sizeof(Tuple));
    }
  }

  // Emit unmatched private tuples for anti/outer joins.
  if (options.kind == JoinKind::kLeftAnti ||
      options.kind == JoinKind::kLeftOuter) {
    for (size_t i = 0; i < ri.size; ++i) {
      if (!matched.Get(i)) {
        consumer.OnUnmatchedR(ri.data[i]);
        ++output;
      }
    }
    if (counters != nullptr) {
      counters->CountRead(r_local, /*sequential=*/true,
                          ri.size * sizeof(Tuple));
    }
  }

  if (counters != nullptr) counters->output_tuples += output;
  return output;
}

std::vector<Morsel> MergeJoinMorsels(const RunSet& r_runs,
                                     uint32_t num_public_runs, JoinKind kind,
                                     uint64_t morsel_tuples) {
  std::vector<Morsel> morsels;
  const uint32_t num_private = static_cast<uint32_t>(r_runs.size());
  for (uint32_t i = 0; i < num_private; ++i) {
    const Run& ri = r_runs[i];
    if (ri.empty()) continue;
    if (kind != JoinKind::kInner) {
      morsels.push_back(Morsel{i, i, 0, ri.size});
      continue;
    }
    const auto ranges = SliceRanges(ri.size, morsel_tuples);
    for (uint32_t offset = 0; offset < num_public_runs; ++offset) {
      // Stagger the public runs per private run, like the static
      // driver, so concurrent morsels fan out across nodes.
      const uint32_t j = (i + offset) % num_public_runs;
      for (const auto& [begin, end] : ranges) {
        morsels.push_back(Morsel{i, i * num_public_runs + j, begin, end});
      }
    }
  }
  return morsels;
}

void ExecuteMergeJoinMorsel(const Morsel& morsel, const RunSet& r_runs,
                            const RunSet& s_runs,
                            const RunJoinOptions& options,
                            JoinConsumer& consumer, numa::NodeId worker_node,
                            PerfCounters* counters) {
  const uint32_t num_public = static_cast<uint32_t>(s_runs.size());
  if (options.kind != JoinKind::kInner) {
    JoinPrivateAgainstRuns(r_runs[morsel.task], s_runs,
                           /*first_run=*/morsel.task, options, consumer,
                           worker_node, counters);
    return;
  }
  const uint32_t i = morsel.task / num_public;
  const uint32_t j = morsel.task % num_public;
  if (morsel.end <= morsel.begin) return;
  const Run& ri = r_runs[i];
  // An inner join emits independently per private tuple, so a tuple
  // range of the private run joined against one public run is a
  // self-contained unit of work.
  const Run segment{ri.data + morsel.begin, morsel.end - morsel.begin,
                    ri.node};
  const RunSet single{s_runs[j]};
  JoinPrivateAgainstRuns(segment, single, /*first_run=*/0, options, consumer,
                         worker_node, counters);
}

}  // namespace mpsm

#include "core/run_generation.h"

#include "sort/radix_introsort.h"

namespace mpsm {

Run SortChunkIntoRun(const Chunk& chunk, numa::Arena& arena,
                     numa::NodeId worker_node, PerfCounters& counters,
                     sort::SortKind sort_kind,
                     const sort::RadixSortConfig& sort_config) {
  Run run;
  run.size = chunk.size;
  run.node = arena.node();
  if (chunk.size == 0) return run;

  run.data = arena.AllocateArray<Tuple>(chunk.size);
  // The copy into local memory is fused with the sort's first MSD
  // radix pass (§2.3's amortization; SortCopyInto), saving one full
  // read+write sweep over the chunk. The counters keep charging the
  // materializing copy plus the full sort so that the cost model stays
  // comparable across sort kinds (the fusion is a wall-clock win the
  // tab_sort bench measures, not a modeled-bytes change).
  sort::SortCopyInto(chunk.data, chunk.size, run.data, sort_kind,
                     sort_config, /*src_is_local=*/chunk.node == worker_node);
  counters.CountRead(chunk.node == worker_node, /*sequential=*/true,
                     chunk.size * sizeof(Tuple));
  // The run stays homed on the arena's node; a stolen run-generation
  // morsel writes it across the interconnect.
  counters.CountWrite(run.node == worker_node, /*sequential=*/true,
                      chunk.size * sizeof(Tuple));
  counters.CountSort(run.size);
  return run;
}

}  // namespace mpsm

#include "core/run_generation.h"

#include <algorithm>

#include "simd/histogram_kernels.h"
#include "sort/radix_introsort.h"

namespace mpsm {

Run SortChunkIntoRun(const Chunk& chunk, numa::Arena& arena,
                     numa::NodeId worker_node, PerfCounters& counters,
                     sort::SortKind sort_kind,
                     const sort::RadixSortConfig& sort_config) {
  Run run;
  run.size = chunk.size;
  run.node = arena.node();
  if (chunk.size == 0) return run;

  run.data = arena.AllocateArray<Tuple>(chunk.size);
  // The copy into local memory is fused with the sort's first MSD
  // radix pass (§2.3's amortization; SortCopyInto), saving one full
  // read+write sweep over the chunk. The counters keep charging the
  // materializing copy plus the full sort so that the cost model stays
  // comparable across sort kinds (the fusion is a wall-clock win the
  // tab_sort bench measures, not a modeled-bytes change).
  sort::SortCopyInto(chunk.data, chunk.size, run.data, sort_kind,
                     sort_config, /*src_is_local=*/chunk.node == worker_node);
  counters.CountRead(chunk.node == worker_node, /*sequential=*/true,
                     chunk.size * sizeof(Tuple));
  // The run stays homed on the arena's node; a stolen run-generation
  // morsel writes it across the interconnect.
  counters.CountWrite(run.node == worker_node, /*sequential=*/true,
                      chunk.size * sizeof(Tuple));
  counters.CountSort(run.size);
  return run;
}

Run GenerateRunInto(const Chunk& chunk, numa::Arena& arena,
                    numa::NodeId worker_node, PerfCounters& counters,
                    sort::SortKind sort_kind,
                    const sort::RadixSortConfig& sort_config,
                    uint64_t split_threshold, RunGenState* state,
                    uint32_t task) {
  const bool splittable = split_threshold != 0 && state != nullptr &&
                          sort_kind != sort::SortKind::kIntroSort &&
                          chunk.size > split_threshold;
  if (!splittable) {
    return SortChunkIntoRun(chunk, arena, worker_node, counters, sort_kind,
                            sort_config);
  }

  Run run;
  run.size = chunk.size;
  run.node = arena.node();
  run.data = arena.AllocateArray<Tuple>(chunk.size);
  uint64_t min_key = 0;
  uint64_t max_key = 0;
  simd::KeyMinMax(chunk.data, chunk.size, &min_key, &max_key,
                  sort_config.simd);
  const uint32_t shift = sort::RadixShiftForMaxKey(max_key);
  state->bounds[task] = sort::MsdRadixPartitionCopy(
      chunk.data, chunk.size, shift, run.data, sort_config.simd);
  state->shift[task] = shift;
  state->split[task] = 1;
  // Same modeled traffic as the fused whole-chunk sort (the extra
  // min/max sweep is a wall-clock artifact, like the fusion itself);
  // the one 256-way pass fixes 8 key bits, so charge 8 n*log units —
  // the bucket morsels charge the rest.
  counters.CountRead(chunk.node == worker_node, /*sequential=*/true,
                     chunk.size * sizeof(Tuple));
  counters.CountWrite(run.node == worker_node, /*sequential=*/true,
                      chunk.size * sizeof(Tuple));
  counters.sort_tuple_logs += uint64_t{8} * chunk.size;
  return run;
}

std::vector<Morsel> BucketSortMorsels(const RunGenState& state,
                                      uint64_t morsel_tuples) {
  std::vector<Morsel> morsels;
  for (uint32_t t = 0; t < state.split.size(); ++t) {
    if (!state.split[t]) continue;
    const auto& bounds = state.bounds[t];
    uint32_t first = 0;
    uint64_t acc = 0;
    for (uint32_t b = 0; b < sort::kRadixBuckets; ++b) {
      acc += bounds[b + 1] - bounds[b];
      if (acc >= morsel_tuples || b + 1 == sort::kRadixBuckets) {
        if (acc > 0) {
          morsels.push_back(Morsel{t, t, first, b + 1});
        }
        first = b + 1;
        acc = 0;
      }
    }
  }
  return morsels;
}

void SortRunBuckets(const Run& run, const RunGenState& state,
                    const Morsel& morsel, sort::SortKind sort_kind,
                    const sort::RadixSortConfig& sort_config,
                    PerfCounters& counters) {
  const uint32_t t = morsel.task;
  const auto& bounds = state.bounds[t];
  sort::SortMsdBuckets(run.data, bounds, static_cast<uint32_t>(morsel.begin),
                       static_cast<uint32_t>(morsel.end), state.shift[t],
                       sort_kind, sort_config);
  for (uint64_t b = morsel.begin; b < morsel.end; ++b) {
    counters.CountSort(bounds[b + 1] - bounds[b]);
  }
}

void AddRunGenerationPhases(PhasePipeline& pipeline, JoinPhase slot,
                            const Relation& input,
                            const std::function<numa::Arena&(uint32_t)>& arena_of,
                            RunSet& runs, RunGenState& state,
                            std::vector<EquiHeightHistogram>* histograms,
                            uint32_t num_bounds, SchedulerKind scheduler,
                            sort::SortKind sort_kind,
                            const sort::RadixSortConfig& sort_config,
                            uint64_t morsel_tuples_knob,
                            bool optional_barrier) {
  const uint32_t num_chunks = input.num_chunks();
  state.Resize(num_chunks);
  const bool stealing = scheduler == SchedulerKind::kStealing;

  std::vector<uint64_t> chunk_sizes(num_chunks);
  for (uint32_t w = 0; w < num_chunks; ++w) {
    chunk_sizes[w] = input.chunk(w).size;
  }
  const uint64_t morsel_tuples = ResolveMorselTuples(
      morsel_tuples_knob, chunk_sizes.data(), chunk_sizes.size());
  // Only split chunks whose bucket sorts amount to more than one
  // morsel; below that the split costs a barrier without spreading any
  // work.
  const uint64_t split_threshold =
      stealing ? std::max<uint64_t>(2 * morsel_tuples,
                                    2 * sort::kRadixBuckets)
               : 0;

  const auto arenas = arena_of;  // copy: the reference param dies at return
  pipeline.AddPhase(
      slot, [num_chunks] { return ChunkMorsels(num_chunks); },
      [&input, &runs, &state, arenas, histograms, num_bounds, slot,
       sort_kind, sort_config, split_threshold,
       stealing](WorkerContext& ctx, const Morsel& morsel) {
        const uint32_t w = morsel.task;
        PerfCounters& counters = ctx.Counters(slot);
        runs[w] = GenerateRunInto(input.chunk(w), arenas(w), ctx.node,
                                  counters, sort_kind, sort_config,
                                  split_threshold, &state, w);
        // Static mode keeps the paper's fused script: the run is fully
        // sorted here, so the histogram rides along for free (§4.1).
        // Stealing mode defers it until the bucket sorts finished.
        if (!stealing && histograms != nullptr) {
          (*histograms)[w] = BuildEquiHeightHistogram(runs[w], num_bounds);
          counters.CountRead(runs[w].node == ctx.node, /*sequential=*/false,
                             uint64_t{num_bounds} * sizeof(Tuple));
        }
      },
      PhasePipeline::PhaseOptions{.optional_barrier =
                                      !stealing && optional_barrier,
                                  .guest_safe = true});

  if (stealing) {
    pipeline.AddPhase(
        slot,
        [&state, morsel_tuples] {
          return BucketSortMorsels(state, morsel_tuples);
        },
        [&runs, &state, slot, sort_kind, sort_config](WorkerContext& ctx,
                                                      const Morsel& morsel) {
          SortRunBuckets(runs[morsel.task], state, morsel, sort_kind,
                         sort_config, ctx.Counters(slot));
        },
        PhasePipeline::PhaseOptions{.eager = false,
                                    .optional_barrier =
                                        histograms == nullptr &&
                                        optional_barrier,
                                    .guest_safe = true});
    if (histograms != nullptr) {
      pipeline.AddPhase(
          slot, [num_chunks] { return ChunkMorsels(num_chunks); },
          [&runs, histograms, num_bounds, slot](WorkerContext& ctx,
                                                const Morsel& morsel) {
            const uint32_t w = morsel.task;
            (*histograms)[w] = BuildEquiHeightHistogram(runs[w], num_bounds);
            ctx.Counters(slot).CountRead(runs[w].node == ctx.node,
                                         /*sequential=*/false,
                                         uint64_t{num_bounds} * sizeof(Tuple));
          },
          PhasePipeline::PhaseOptions{.optional_barrier = optional_barrier,
                                      .guest_safe = true});
    }
  }
}

}  // namespace mpsm

#include "core/run_generation.h"

#include <cstring>

#include "sort/radix_introsort.h"

namespace mpsm {

Run SortChunkIntoRun(const Chunk& chunk, numa::Arena& arena,
                     numa::NodeId worker_node, PerfCounters& counters,
                     sort::SortKind sort_kind,
                     const sort::RadixSortConfig& sort_config) {
  Run run;
  run.size = chunk.size;
  run.node = arena.node();
  if (chunk.size == 0) return run;

  run.data = arena.AllocateArray<Tuple>(chunk.size);
  std::memcpy(run.data, chunk.data, chunk.size * sizeof(Tuple));
  counters.CountRead(chunk.node == worker_node, /*sequential=*/true,
                     chunk.size * sizeof(Tuple));
  counters.CountWrite(/*local=*/true, /*sequential=*/true,
                      chunk.size * sizeof(Tuple));

  sort::SortTuples(run.data, run.size, sort_kind, sort_config);
  counters.CountSort(run.size);
  return run;
}

}  // namespace mpsm

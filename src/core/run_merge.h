// Exploiting MPSM's quasi-sorted output (§6 / §7 future work).
//
// MPSM does not produce one global sort order, but each worker's output
// is a short sequence of sorted runs (one per public run scanned, all
// within the worker's key partition, and partitions are ordered by
// key). A cheap T-way merge therefore restores a totally sorted stream
// per partition — enabling sort-based aggregation, merge-group-by and
// order-preserving parents without a full sort.
//
// The merger is a classic loser tree (tournament tree): O(log k)
// comparisons per produced element for k runs.
#pragma once

#include <cstdint>
#include <vector>

#include "storage/run.h"
#include "storage/tuple.h"

namespace mpsm {

/// k-way merge of sorted tuple runs via a loser tree.
class LoserTreeMerger {
 public:
  /// `runs` must each be key-sorted; empty runs are allowed.
  explicit LoserTreeMerger(std::vector<Run> runs);

  /// True while tuples remain.
  bool HasNext() const { return remaining_ > 0; }

  /// Pops the globally smallest remaining tuple (stable across equal
  /// keys in run order is NOT guaranteed; key order is).
  Tuple Next();

  /// Total tuples left.
  size_t remaining() const { return remaining_; }

 private:
  uint32_t Winner(uint32_t a, uint32_t b) const;
  void Replay(uint32_t run);

  std::vector<Run> runs_;
  std::vector<size_t> cursor_;
  std::vector<uint32_t> tree_;  // internal nodes: losers; tree_[0] winner
  uint32_t k_ = 0;
  size_t remaining_ = 0;
};

/// Merges sorted runs into one sorted vector (convenience).
std::vector<Tuple> MergeRuns(std::vector<Run> runs);

/// Sort-based group-by over a sequence of sorted runs: for every
/// distinct key, `emit(key, count, payload_sum, payload_max)` fires
/// exactly once, in ascending key order — the "early aggregation"
/// consumers downstream of MPSM can use.
template <typename Emit>
void SortedGroupBy(std::vector<Run> runs, Emit&& emit) {
  LoserTreeMerger merger(std::move(runs));
  if (!merger.HasNext()) return;
  Tuple current = merger.Next();
  uint64_t count = 1;
  uint64_t sum = current.payload;
  uint64_t max = current.payload;
  while (merger.HasNext()) {
    const Tuple t = merger.Next();
    if (t.key == current.key) {
      ++count;
      sum += t.payload;
      max = t.payload > max ? t.payload : max;
    } else {
      emit(current.key, count, sum, max);
      current = t;
      count = 1;
      sum = t.payload;
      max = t.payload;
    }
  }
  emit(current.key, count, sum, max);
}

}  // namespace mpsm

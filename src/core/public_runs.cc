#include "core/public_runs.h"

#include <algorithm>

#include "core/run_generation.h"
#include "parallel/task_scheduler.h"

namespace mpsm {

Result<PublicRuns> BuildPublicRuns(WorkerTeam& team, const Relation& s_public,
                                   const MpsmOptions& options,
                                   uint32_t num_bounds) {
  const uint32_t num_workers = team.size();
  if (s_public.num_chunks() != num_workers) {
    return Status::InvalidArgument(
        "public relation must be chunked into team.size() chunks");
  }
  if (num_bounds == 0) {
    num_bounds = std::max(1u, options.equi_height_factor * num_workers);
  }

  PublicRuns out;
  out.runs.resize(num_workers);
  out.histograms.resize(num_workers);
  out.num_bounds = num_bounds;
  out.team_size = num_workers;
  out.arenas.reserve(num_workers);
  for (uint32_t w = 0; w < num_workers; ++w) {
    out.arenas.push_back(std::make_unique<numa::Arena>(
        team.topology().NodeForWorker(w, num_workers)));
  }

  RunGenState state;
  PhasePipeline pipeline(team.topology(), num_workers, options.scheduler);
  AddRunGenerationPhases(
      pipeline, kPhaseSortPublic, s_public,
      [&out](uint32_t w) -> numa::Arena& { return *out.arenas[w]; }, out.runs,
      state, &out.histograms, num_bounds, options.scheduler, options.sort,
      options.sort_config, options.morsel_tuples);
  pipeline.Run(team, options.phase_barriers);
  return out;
}

}  // namespace mpsm

// P-MPSM: the range-partitioned massively parallel sort-merge join
// (§3.2, §4) — the paper's flagship algorithm.
//
// Phases (Figure 5):
//   1   Sort the public input S into local runs; build equi-height
//       histograms en passant (f*T bounds per run, §4.1).
//   2.1 Merge local histograms into the global CDF of S.
//   2.2 Scan private chunks: key range + B-bit radix histograms (§4.2).
//   2.3 Compute cost-balanced splitters; combine local histograms into
//       prefix sums; scatter private chunks into range partitions with
//       synchronization-free sequential writes (§4.3, Figure 10).
//   3   Sort each private partition locally.
//   4   Merge join: each worker joins its partition against all public
//       runs, locating the start position via interpolation search.
#pragma once

#include "core/consumers.h"
#include "core/join_stats.h"
#include "core/join_types.h"
#include "parallel/worker_team.h"
#include "partition/cdf.h"
#include "partition/key_normalizer.h"
#include "partition/splitters.h"
#include "storage/relation.h"
#include "util/status.h"

namespace mpsm {

struct PublicRuns;

/// Introspection data exposed for tests and the skew-balancing bench.
struct PMpsmDiagnostics {
  KeyNormalizer normalizer;
  Cdf cdf;
  Splitters splitters;
  /// Actual tuples scattered into each partition.
  std::vector<uint64_t> partition_sizes;
};

/// The range-partitioned MPSM join.
class PMpsmJoin {
 public:
  explicit PMpsmJoin(MpsmOptions options = {}) : options_(options) {}

  /// Joins `r_private` with `s_public` on `team`, streaming results to
  /// `consumers`. Both relations must be chunked into team.size()
  /// chunks. `diagnostics` (optional) receives splitter internals.
  /// `shared_public` (optional) supplies pre-sorted runs + histograms
  /// of `s_public` built by BuildPublicRuns on a team of the same
  /// size; phase 1 is then skipped entirely — the shared-sort
  /// amortization of the join service (core/public_runs.h). The caller
  /// keeps it alive and unmodified for the duration.
  Result<JoinRunInfo> Execute(WorkerTeam& team, const Relation& r_private,
                              const Relation& s_public,
                              ConsumerFactory& consumers,
                              PMpsmDiagnostics* diagnostics = nullptr,
                              const PublicRuns* shared_public = nullptr) const;

  const MpsmOptions& options() const { return options_; }

  /// Effective radix bits B for a team of `team_size` (resolves the
  /// options' auto default: max(ceil(log2 T) + 5, 10), capped at 18).
  uint32_t EffectiveRadixBits(uint32_t team_size) const;

 private:
  MpsmOptions options_;
};

}  // namespace mpsm

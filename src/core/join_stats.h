// Execution statistics returned by every join algorithm.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "parallel/counters.h"
#include "parallel/worker_team.h"

namespace mpsm {

/// Everything a caller (tests, benches, the machine model) needs to
/// know about one join execution.
struct JoinRunInfo {
  /// End-to-end wall time observed by the driver.
  double wall_seconds = 0;

  /// Sum over phases of the slowest worker's phase time — the
  /// barrier-to-barrier response time the paper's charts show.
  double critical_path_seconds = 0;

  /// Per-worker stats (index == worker id).
  std::vector<WorkerStats> workers;

  /// Stats summed over workers.
  WorkerStats aggregate;

  /// Output tuples delivered to consumers.
  uint64_t output_tuples = 0;

  /// Max over workers of each phase's wall time (phase breakdown).
  std::array<double, kNumJoinPhases> MaxPhaseSeconds() const;

  /// Multi-line human-readable phase breakdown.
  std::string PhaseBreakdownString() const;
};

/// Gathers a JoinRunInfo from a team after Run() returned.
JoinRunInfo CollectRunInfo(const WorkerTeam& team, double wall_seconds);

}  // namespace mpsm

#include "core/run_merge.h"

#include <algorithm>

#include "util/bits.h"

namespace mpsm {

LoserTreeMerger::LoserTreeMerger(std::vector<Run> runs)
    : runs_(std::move(runs)) {
  k_ = static_cast<uint32_t>(
      std::max<size_t>(1, bits::NextPowerOfTwo(runs_.size())));
  runs_.resize(k_);  // pad with empty runs
  cursor_.assign(k_, 0);
  for (const Run& run : runs_) remaining_ += run.size;

  // Build the tree bottom-up: tree_ holds k_ internal nodes; node 0 is
  // the overall winner, nodes [1, k_) store the loser of their match.
  tree_.assign(k_, 0);
  std::vector<uint32_t> winners(2 * k_);
  for (uint32_t i = 0; i < k_; ++i) winners[k_ + i] = i;
  for (uint32_t node = k_ - 1; node >= 1; --node) {
    const uint32_t a = winners[2 * node];
    const uint32_t b = winners[2 * node + 1];
    const uint32_t winner = Winner(a, b);
    winners[node] = winner;
    tree_[node] = (winner == a) ? b : a;  // store the loser
  }
  tree_[0] = winners.size() > 1 ? winners[1] : 0;
}

uint32_t LoserTreeMerger::Winner(uint32_t a, uint32_t b) const {
  // Exhausted runs always lose — no key sentinel, so tuples with key
  // UINT64_MAX merge correctly.
  const bool a_done = cursor_[a] >= runs_[a].size;
  const bool b_done = cursor_[b] >= runs_[b].size;
  if (a_done || b_done) return b_done ? a : b;
  return runs_[a].data[cursor_[a]].key <= runs_[b].data[cursor_[b]].key
             ? a
             : b;
}

void LoserTreeMerger::Replay(uint32_t run) {
  // Walk from the run's leaf to the root, swapping with stored losers
  // whenever they now win.
  uint32_t winner = run;
  for (uint32_t node = (k_ + run) / 2; node >= 1; node /= 2) {
    const uint32_t challenger = tree_[node];
    if (Winner(winner, challenger) == challenger) {
      tree_[node] = winner;
      winner = challenger;
    }
  }
  tree_[0] = winner;
}

Tuple LoserTreeMerger::Next() {
  const uint32_t winner = tree_[0];
  const Tuple result = runs_[winner].data[cursor_[winner]];
  ++cursor_[winner];
  --remaining_;
  Replay(winner);
  return result;
}

std::vector<Tuple> MergeRuns(std::vector<Run> runs) {
  LoserTreeMerger merger(std::move(runs));
  std::vector<Tuple> out;
  out.reserve(merger.remaining());
  while (merger.HasNext()) out.push_back(merger.Next());
  return out;
}

}  // namespace mpsm

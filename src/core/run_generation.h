// Run generation: copy a chunk into node-local memory and sort it.
//
// Shared by all MPSM variants (phases 1 and 3). Copying remote chunks
// to local memory before sorting is commandment C1; the copy is fused
// into the sort's first MSD radix pass (the §2.3 amortization the
// paper notes), so the chunk is materialized locally already grouped
// by its top radix digit.
#pragma once

#include "numa/arena.h"
#include "parallel/counters.h"
#include "sort/radix_introsort.h"
#include "storage/relation.h"
#include "storage/run.h"

namespace mpsm {

/// Copies `chunk` into `arena` (homed on `worker_node`), sorts it with
/// the sort selected by `sort_kind`, and returns the resulting run.
/// Counts the copy traffic and the sort work into `counters`. The sort
/// kind is deliberately not defaulted: callers must thread the
/// options' choice through (the default policy lives in MpsmOptions).
Run SortChunkIntoRun(const Chunk& chunk, numa::Arena& arena,
                     numa::NodeId worker_node, PerfCounters& counters,
                     sort::SortKind sort_kind,
                     const sort::RadixSortConfig& sort_config = {});

}  // namespace mpsm

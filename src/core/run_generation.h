// Run generation: copy a chunk into node-local memory and sort it.
//
// Shared by all MPSM variants (phases 1 and 3). Copying remote chunks
// to local memory before sorting is commandment C1; the copy is fused
// into the sort's first MSD radix pass (the §2.3 amortization the
// paper notes), so the chunk is materialized locally already grouped
// by its top radix digit.
//
// Under the stealing scheduler, run generation is additionally sliced
// *below* chunk granularity: a large chunk's generating morsel performs
// only the fused copy + first MSD pass and publishes the 257 bucket
// bounds; stealable bucket-sort morsels finish the run. This removes
// the one-coarse-morsel-per-worker shape that made claim races land a
// worker two whole chunk sorts (docs/scheduler.md "Measured A/B") and
// is what lets stealing be the default scheduler.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "numa/arena.h"
#include "parallel/counters.h"
#include "parallel/task_scheduler.h"
#include "partition/equi_height.h"
#include "sort/radix_introsort.h"
#include "storage/relation.h"
#include "storage/run.h"

namespace mpsm {

/// Copies `chunk` into `arena` (homed on `worker_node`), sorts it with
/// the sort selected by `sort_kind`, and returns the resulting run.
/// Counts the copy traffic and the sort work into `counters`. The sort
/// kind is deliberately not defaulted: callers must thread the
/// options' choice through (the default policy lives in MpsmOptions).
Run SortChunkIntoRun(const Chunk& chunk, numa::Arena& arena,
                     numa::NodeId worker_node, PerfCounters& counters,
                     sort::SortKind sort_kind,
                     const sort::RadixSortConfig& sort_config = {});

/// Per-task state of a split run generation: when task t was split, the
/// generating morsel ran only the copy fused with one MSD radix pass
/// and left bounds/shift here for the bucket-sort morsels. One slot per
/// task (chunk or partition); each morsel writes only its own slot.
struct RunGenState {
  std::vector<std::array<size_t, sort::kRadixBuckets + 1>> bounds;
  std::vector<uint32_t> shift;
  std::vector<uint8_t> split;

  void Resize(size_t tasks) {
    bounds.resize(tasks);
    shift.assign(tasks, 0);
    split.assign(tasks, 0);
  }
};

/// Like SortChunkIntoRun, but when the chunk exceeds `split_threshold`
/// (and the sort is a radix kind) only the copy + first MSD pass runs;
/// state->split[task] is set and SortRunBuckets morsels must finish
/// the run. split_threshold == 0 disables splitting (always sorts
/// fully). Counter policy matches the phase-3 split: the one pass
/// charges 8 n*log units (it fixes 8 key bits); the bucket morsels
/// charge the rest.
Run GenerateRunInto(const Chunk& chunk, numa::Arena& arena,
                    numa::NodeId worker_node, PerfCounters& counters,
                    sort::SortKind sort_kind,
                    const sort::RadixSortConfig& sort_config,
                    uint64_t split_threshold, RunGenState* state,
                    uint32_t task);

/// Morsels of ~morsel_tuples of consecutive buckets for every split
/// task (home == task; begin/end = bucket range) — the eager=false
/// factory of the bucket-sort phase that follows GenerateRunInto.
std::vector<Morsel> BucketSortMorsels(const RunGenState& state,
                                      uint64_t morsel_tuples);

/// Executes one BucketSortMorsels morsel: finishes buckets
/// [morsel.begin, morsel.end) of run `run` (== task morsel.task's run)
/// and charges the per-bucket sort work.
void SortRunBuckets(const Run& run, const RunGenState& state,
                    const Morsel& morsel, sort::SortKind sort_kind,
                    const sort::RadixSortConfig& sort_config,
                    PerfCounters& counters);

/// Appends the run-generation steps for `input` to `pipeline`: one
/// morsel per chunk generating runs[w] from input.chunk(w) out of
/// arena_of(w), plus — in stealing mode — the stealable bucket-sort
/// continuation and (when `histograms` is non-null) a final per-chunk
/// step building `num_bounds` equi-height bounds from each finished
/// run. `state` and all referenced containers must outlive the
/// pipeline's Run. The sub-chunk split threshold is derived from the
/// chunk sizes (2 * ResolveMorselTuples, at least 2 * kRadixBuckets);
/// static mode keeps the paper's fused one-morsel-per-chunk script.
/// All steps are guest-safe: their bodies key everything off
/// morsel.task, so a donated worker from another session may execute
/// them (docs/service.md). `optional_barrier` marks the *last* added
/// step's closing barrier as elidable under phase_barriers == false
/// (static mode only, PhaseOptions::optional_barrier).
void AddRunGenerationPhases(PhasePipeline& pipeline, JoinPhase slot,
                            const Relation& input,
                            const std::function<numa::Arena&(uint32_t)>& arena_of,
                            RunSet& runs, RunGenState& state,
                            std::vector<EquiHeightHistogram>* histograms,
                            uint32_t num_bounds, SchedulerKind scheduler,
                            sort::SortKind sort_kind,
                            const sort::RadixSortConfig& sort_config,
                            uint64_t morsel_tuples_knob,
                            bool optional_barrier = false);

}  // namespace mpsm

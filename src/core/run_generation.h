// Run generation: copy a chunk into node-local memory and sort it.
//
// Shared by all MPSM variants (phases 1 and 3). Copying remote chunks
// to local memory before sorting is commandment C1; the paper notes the
// copy can be amortized with the first partitioning step of sorting —
// here it is a separate sequential pass, which the counters capture.
#pragma once

#include "numa/arena.h"
#include "parallel/counters.h"
#include "storage/relation.h"
#include "storage/run.h"

namespace mpsm {

/// Copies `chunk` into `arena` (homed on `worker_node`), sorts it with
/// Radix/IntroSort, and returns the resulting run. Counts the copy
/// traffic and the sort work into `counters`.
Run SortChunkIntoRun(const Chunk& chunk, numa::Arena& arena,
                     numa::NodeId worker_node, PerfCounters& counters);

}  // namespace mpsm

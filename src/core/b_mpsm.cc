#include "core/b_mpsm.h"

#include <memory>
#include <vector>

#include "core/merge_join.h"
#include "core/run_generation.h"
#include "parallel/task_scheduler.h"
#include "util/timer.h"

namespace mpsm {

Result<JoinRunInfo> BMpsmJoin::Execute(WorkerTeam& team,
                                       const Relation& r_private,
                                       const Relation& s_public,
                                       ConsumerFactory& consumers) const {
  const uint32_t num_workers = team.size();
  if (r_private.num_chunks() != num_workers ||
      s_public.num_chunks() != num_workers) {
    return Status::InvalidArgument(
        "relations must be chunked into team.size() chunks");
  }

  RunSet s_runs(num_workers);
  RunSet r_runs(num_workers);
  std::vector<std::unique_ptr<numa::Arena>> arenas(num_workers);
  for (uint32_t w = 0; w < num_workers; ++w) {
    arenas[w] = std::make_unique<numa::Arena>(
        team.topology().NodeForWorker(w, num_workers));
  }

  const MpsmOptions options = options_;
  RunJoinOptions join_options;
  join_options.kind = options.kind;
  join_options.search = options.start_search;
  join_options.prefetch_distance = options.merge_prefetch_distance;
  join_options.skip_private_prefix = options.merge_skip_private_prefix;
  join_options.simd = options.simd;

  PhasePipeline pipeline(team.topology(), num_workers, options.scheduler);
  const auto arena_of = [&arenas](uint32_t w) -> numa::Arena& {
    return *arenas[w];
  };

  // Phase 1: sort each public chunk into a local run via the shared
  // run-generation steps (core/run_generation.h; sliced below chunk
  // granularity under stealing). The run stays homed on the chunk's
  // worker even when a morsel is stolen (the arena belongs to the
  // task, not the executor). The closing barrier is the one mandatory
  // synchronization point: all public runs must be complete before any
  // worker starts joining against them.
  RunGenState s_gen;
  AddRunGenerationPhases(pipeline, kPhaseSortPublic, s_public, arena_of,
                         s_runs, s_gen, /*histograms=*/nullptr,
                         /*num_bounds=*/0, options.scheduler, options.sort,
                         options.sort_config, options.morsel_tuples);

  // Phase 3 slot: sort the private chunks (B-MPSM has no partition
  // phase; the kPhasePartition slot stays empty).
  RunGenState r_gen;
  AddRunGenerationPhases(pipeline, kPhaseSortPrivate, r_private, arena_of,
                         r_runs, r_gen, /*histograms=*/nullptr,
                         /*num_bounds=*/0, options.scheduler, options.sort,
                         options.sort_config, options.morsel_tuples,
                         /*optional_barrier=*/true);

  // Phase 4: merge join the private runs against all public runs.
  if (options.scheduler == SchedulerKind::kStatic) {
    // The paper's script: worker w drives its own run i = w over every
    // public run, staggering the starting run.
    pipeline.AddPhase(
        kPhaseJoin, [&] { return ChunkMorsels(num_workers); },
        [&](WorkerContext& ctx, const Morsel& morsel) {
          JoinPrivateAgainstRuns(r_runs[morsel.task], s_runs,
                                 /*first_run=*/morsel.task, join_options,
                                 consumers.ConsumerForWorker(ctx.worker_id),
                                 ctx.node, &ctx.Counters(kPhaseJoin));
        });
  } else {
    // Range-sliced (run pair x merge range) morsels; built lazily so
    // the slicing sees the actual run sizes (morsel_tuples == 0 adapts
    // to their variance, docs/scheduler.md).
    pipeline.AddPhase(
        kPhaseJoin,
        [&] {
          std::vector<uint64_t> run_sizes(num_workers);
          for (uint32_t w = 0; w < num_workers; ++w) {
            run_sizes[w] = r_runs[w].size;
          }
          const uint64_t morsel_tuples = ResolveMorselTuples(
              options.morsel_tuples, run_sizes.data(), run_sizes.size());
          return MergeJoinMorsels(r_runs, num_workers, options.kind,
                                  morsel_tuples);
        },
        [&](WorkerContext& ctx, const Morsel& morsel) {
          ExecuteMergeJoinMorsel(morsel, r_runs, s_runs, join_options,
                                 consumers.ConsumerForWorker(ctx.worker_id),
                                 ctx.node, &ctx.Counters(kPhaseJoin));
        },
        PhasePipeline::PhaseOptions{.eager = false});
  }

  WallTimer timer;
  pipeline.Run(team, options.phase_barriers);
  return CollectRunInfo(team, timer.ElapsedSeconds());
}

}  // namespace mpsm

#include "core/b_mpsm.h"

#include <memory>

#include "core/merge_join.h"
#include "core/run_generation.h"
#include "util/timer.h"

namespace mpsm {

Result<JoinRunInfo> BMpsmJoin::Execute(WorkerTeam& team,
                                       const Relation& r_private,
                                       const Relation& s_public,
                                       ConsumerFactory& consumers) const {
  const uint32_t num_workers = team.size();
  if (r_private.num_chunks() != num_workers ||
      s_public.num_chunks() != num_workers) {
    return Status::InvalidArgument(
        "relations must be chunked into team.size() chunks");
  }

  RunSet s_runs(num_workers);
  RunSet r_runs(num_workers);
  std::vector<std::unique_ptr<numa::Arena>> arenas(num_workers);
  for (uint32_t w = 0; w < num_workers; ++w) {
    arenas[w] = std::make_unique<numa::Arena>(
        team.topology().NodeForWorker(w, num_workers));
  }

  const MpsmOptions options = options_;
  WallTimer timer;
  team.Run([&](WorkerContext& ctx) {
    const uint32_t w = ctx.worker_id;
    numa::Arena& arena = *arenas[w];

    // Phase 1: sort the public input chunk into a local run.
    {
      PhaseScope scope(ctx, kPhaseSortPublic);
      s_runs[w] = SortChunkIntoRun(s_public.chunk(w), arena, ctx.node,
                                   ctx.Counters(kPhaseSortPublic),
                                   options.sort, options.sort_config);
    }
    // The one mandatory synchronization point: all public runs must be
    // complete before any worker starts joining against them.
    ctx.barrier->Wait();

    // Phase 3 slot: sort the private input chunk (B-MPSM has no
    // partition phase; the kPhasePartition slot stays empty).
    {
      PhaseScope scope(ctx, kPhaseSortPrivate);
      r_runs[w] = SortChunkIntoRun(r_private.chunk(w), arena, ctx.node,
                                   ctx.Counters(kPhaseSortPrivate),
                                   options.sort, options.sort_config);
    }
    if (options.phase_barriers) ctx.barrier->Wait();

    // Phase 4: merge join the private run against all public runs.
    {
      PhaseScope scope(ctx, kPhaseJoin);
      RunJoinOptions join_options;
      join_options.kind = options.kind;
      join_options.search = options.start_search;
      join_options.prefetch_distance = options.merge_prefetch_distance;
      join_options.skip_private_prefix = options.merge_skip_private_prefix;
      JoinPrivateAgainstRuns(r_runs[w], s_runs, /*first_run=*/w,
                             join_options, consumers.ConsumerForWorker(w),
                             ctx.node, &ctx.Counters(kPhaseJoin));
    }
  });

  return CollectRunInfo(team, timer.ElapsedSeconds());
}

}  // namespace mpsm

#include "core/join_stats.h"

#include <algorithm>
#include <cstdio>

namespace mpsm {

std::array<double, kNumJoinPhases> JoinRunInfo::MaxPhaseSeconds() const {
  std::array<double, kNumJoinPhases> result{};
  for (const WorkerStats& stats : workers) {
    for (uint32_t p = 0; p < kNumJoinPhases; ++p) {
      result[p] = std::max(result[p], stats.phase_seconds[p]);
    }
  }
  return result;
}

std::string JoinRunInfo::PhaseBreakdownString() const {
  const auto phases = MaxPhaseSeconds();
  std::string out;
  char buf[128];
  for (uint32_t p = 0; p < kNumJoinPhases; ++p) {
    std::snprintf(buf, sizeof(buf), "  %-24s %10.2f ms\n",
                  JoinPhaseName(static_cast<JoinPhase>(p)),
                  phases[p] * 1e3);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "  %-24s %10.2f ms\n", "critical path",
                critical_path_seconds * 1e3);
  out += buf;
  return out;
}

JoinRunInfo CollectRunInfo(const WorkerTeam& team, double wall_seconds) {
  JoinRunInfo info;
  info.wall_seconds = wall_seconds;
  info.critical_path_seconds = team.CriticalPathSeconds();
  info.workers.reserve(team.size());
  for (uint32_t w = 0; w < team.size(); ++w) {
    info.workers.push_back(team.stats(w));
    info.aggregate += team.stats(w);
  }
  info.output_tuples = info.aggregate.TotalCounters().output_tuples;
  return info;
}

}  // namespace mpsm

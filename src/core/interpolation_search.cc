#include "core/interpolation_search.h"

#include <algorithm>

namespace mpsm {

namespace {
inline void CountProbe(SearchStats* stats) {
  if (stats != nullptr) ++stats->probes;
}
}  // namespace

size_t InterpolationLowerBound(const Tuple* data, size_t n, uint64_t key,
                               SearchStats* stats) {
  if (n == 0) return 0;
  size_t lo = 0;
  size_t hi = n - 1;  // inclusive

  CountProbe(stats);
  if (data[lo].key >= key) return 0;
  CountProbe(stats);
  if (data[hi].key < key) return n;

  // Invariant: data[lo].key < key <= data[hi].key.
  // Interpolation converges fast on smooth key distributions; cap the
  // number of proportion steps and fall back to binary search so that
  // adversarial distributions stay O(log n).
  int interpolation_steps = 0;
  while (hi - lo > 1) {
    size_t mid;
    if (interpolation_steps < 32) {
      ++interpolation_steps;
      const uint64_t key_lo = data[lo].key;
      const uint64_t key_hi = data[hi].key;
      // rule of proportion: lo + (hi-lo) * (key-key_lo)/(key_hi-key_lo)
      const unsigned __int128 numerator =
          static_cast<unsigned __int128>(key - key_lo) * (hi - lo);
      mid = lo + static_cast<size_t>(numerator / (key_hi - key_lo));
      // Keep strictly inside (lo, hi) to guarantee progress.
      mid = std::clamp(mid, lo + 1, hi - 1);
    } else {
      mid = lo + (hi - lo) / 2;
    }
    CountProbe(stats);
    if (data[mid].key < key) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

size_t BinaryLowerBound(const Tuple* data, size_t n, uint64_t key,
                        SearchStats* stats) {
  size_t lo = 0;
  size_t len = n;
  while (len > 0) {
    const size_t half = len / 2;
    CountProbe(stats);
    if (data[lo + half].key < key) {
      lo += half + 1;
      len -= half + 1;
    } else {
      len = half;
    }
  }
  return lo;
}

size_t LinearLowerBound(const Tuple* data, size_t n, uint64_t key,
                        SearchStats* stats) {
  size_t i = 0;
  while (i < n) {
    CountProbe(stats);
    if (data[i].key >= key) break;
    ++i;
  }
  return i;
}

}  // namespace mpsm

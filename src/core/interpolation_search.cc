#include "core/interpolation_search.h"

#include <algorithm>
#include <bit>

#include "simd/search_kernels.h"

namespace mpsm {

namespace {
inline void CountProbe(SearchStats* stats) {
  if (stats != nullptr) ++stats->probes;
}
}  // namespace

size_t InterpolationLowerBound(const Tuple* data, size_t n, uint64_t key,
                               SearchStats* stats) {
  if (n == 0) return 0;
  size_t lo = 0;
  size_t hi = n - 1;  // inclusive

  CountProbe(stats);
  if (data[lo].key >= key) return 0;
  CountProbe(stats);
  if (data[hi].key < key) return n;

  // Invariant: data[lo].key < key <= data[hi].key.
  // Interpolation converges fast on smooth key distributions; cap the
  // number of proportion steps and fall back to binary search so that
  // adversarial distributions stay O(log n).
  int interpolation_steps = 0;
  while (hi - lo > 1) {
    size_t mid;
    if (interpolation_steps < 32) {
      ++interpolation_steps;
      const uint64_t key_lo = data[lo].key;
      const uint64_t key_hi = data[hi].key;
      // rule of proportion: lo + (hi-lo) * (key-key_lo)/(key_hi-key_lo)
      const unsigned __int128 numerator =
          static_cast<unsigned __int128>(key - key_lo) * (hi - lo);
      mid = lo + static_cast<size_t>(numerator / (key_hi - key_lo));
      // Keep strictly inside (lo, hi) to guarantee progress.
      mid = std::clamp(mid, lo + 1, hi - 1);
    } else {
      mid = lo + (hi - lo) / 2;
    }
    CountProbe(stats);
    if (data[mid].key < key) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

size_t BinaryLowerBound(const Tuple* data, size_t n, uint64_t key,
                        SearchStats* stats) {
  size_t lo = 0;
  size_t len = n;
  while (len > 0) {
    const size_t half = len / 2;
    CountProbe(stats);
    if (data[lo + half].key < key) {
      lo += half + 1;
      len -= half + 1;
    } else {
      len = half;
    }
  }
  return lo;
}

size_t LinearLowerBound(const Tuple* data, size_t n, uint64_t key,
                        SearchStats* stats) {
  size_t i = 0;
  while (i < n) {
    CountProbe(stats);
    if (data[i].key >= key) break;
    ++i;
  }
  return i;
}

namespace {

/// Block-granular probe accounting for a packed scan over `width`
/// tuples (the window finishes below).
void CountWindowProbes(SearchStats* stats, size_t width) {
  if (stats != nullptr) stats->probes += width / 8 + 1;
}

}  // namespace

size_t InterpolationLowerBoundWindowed(const Tuple* data, size_t n,
                                       uint64_t key, simd::AdvanceFn advance,
                                       SearchStats* stats) {
  if (n == 0) return 0;
  size_t lo = 0;
  size_t hi = n - 1;  // inclusive

  CountProbe(stats);
  if (data[lo].key >= key) return 0;
  CountProbe(stats);
  if (data[hi].key < key) return n;

  // Same descent as InterpolationLowerBound, stopped early: once the
  // bracket fits a few vector blocks, the packed forward scan beats
  // further (mispredicting) proportion steps.
  int interpolation_steps = 0;
  while (hi - lo > simd::kSearchWindowTuples) {
    size_t mid;
    if (interpolation_steps < 32) {
      ++interpolation_steps;
      const uint64_t key_lo = data[lo].key;
      const uint64_t key_hi = data[hi].key;
      const unsigned __int128 numerator =
          static_cast<unsigned __int128>(key - key_lo) * (hi - lo);
      mid = lo + static_cast<size_t>(numerator / (key_hi - key_lo));
      mid = std::clamp(mid, lo + 1, hi - 1);
    } else {
      mid = lo + (hi - lo) / 2;
    }
    CountProbe(stats);
    if (data[mid].key < key) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  // Invariant: data[lo].key < key <= data[hi].key — the answer lies in
  // (lo, hi], which the packed scan covers from lo + 1.
  CountWindowProbes(stats, hi - lo);
  return advance(data, lo + 1, hi + 1, key);
}

size_t BinaryLowerBoundWindowed(const Tuple* data, size_t n, uint64_t key,
                                simd::AdvanceFn advance,
                                SearchStats* stats) {
  uint64_t probes = 0;
  const size_t pos = simd::LowerBoundWindowed(data, n, key, advance,
                                              stats != nullptr ? &probes
                                                               : nullptr);
  if (stats != nullptr) stats->probes += probes;
  return pos;
}

size_t LinearLowerBoundWindowed(const Tuple* data, size_t n, uint64_t key,
                                simd::AdvanceFn advance,
                                SearchStats* stats) {
  const size_t pos = advance(data, 0, n, key);
  if (stats != nullptr) {
    // The advance kernel scans a few early-exit blocks and then
    // gallops (doubling probes + binary narrowing + one final block):
    // charge the blocks it actually touches, not a linear sweep.
    const size_t early = std::min<size_t>(
        pos / 8 + 1, static_cast<size_t>(simd::kGallopAfterBlocks));
    size_t probes = early;
    if (pos > size_t{8} * simd::kGallopAfterBlocks) {
      probes += 2 * static_cast<size_t>(std::bit_width(pos));
    }
    stats->probes += probes;
  }
  return pos;
}

}  // namespace mpsm

// Join kinds and shared option types for the MPSM algorithm family.
#pragma once

#include <cstdint>
#include <functional>

#include "parallel/scheduler_kind.h"
#include "partition/scatter_kind.h"
#include "partition/splitters.h"
#include "simd/simd_kind.h"
#include "sort/radix_introsort.h"
#include "util/status.h"

namespace mpsm {

/// Supported equi-join variants. Inner is the paper's focus; semi,
/// anti and left-outer are the §7 future-work variants, implemented on
/// top of the same merge kernel via per-run match bitmaps.
enum class JoinKind : uint8_t {
  kInner,
  kLeftSemi,
  kLeftAnti,
  kLeftOuter,
};

/// Name of a JoinKind ("inner", "left-semi", ...).
const char* JoinKindName(JoinKind kind);

/// Default lookahead (in tuples) of the prefetch-pipelined merge
/// kernel: 16 tuples = 4 cache lines, roughly one memory latency ahead
/// of a ~1 tuple/cycle merge loop.
inline constexpr uint32_t kDefaultMergePrefetchDistance = 16;

/// Strategy for locating the merge-join start position in a public run
/// (§3.2.2 ablation).
enum class StartSearch : uint8_t {
  kInterpolation,  // the paper's choice
  kBinary,
  kLinear,
};

/// Tuning knobs of the MPSM variants.
struct MpsmOptions {
  /// Join variant to compute.
  JoinKind kind = JoinKind::kInner;

  /// Number of radix bits B for private-input clustering; log2(T) <= B.
  /// 0 selects the default max(ceil(log2(T)) + 5, 10), giving the
  /// splitter computation fine-grained histograms (Figure 9 shows the
  /// extra precision is almost free).
  uint32_t radix_bits = 0;

  /// Oversampling factor f: each worker contributes f*T equi-height
  /// bounds to the global CDF (§4.1).
  uint32_t equi_height_factor = 4;

  /// How workers locate the join start within each public run.
  StartSearch start_search = StartSearch::kInterpolation;

  /// Balance partitions by the split-relevant cost (true, §4.3) or by
  /// R cardinality only (false; Figure 16's equi-height strawman).
  bool cost_balanced_splitters = true;

  /// Insert barriers between phases so per-phase wall times are
  /// comparable across workers (the paper's phase breakdown charts).
  /// The algorithm itself only requires the single sort/join barrier.
  bool phase_barriers = true;

  // ------------------------------------------------ phase orchestration
  /// How phase work is distributed over the team: the paper's static
  /// per-worker scripts, or morsel-driven NUMA-aware work stealing so
  /// idle workers absorb stragglers' run generation, phase-3 sorts and
  /// phase-4 merges (docs/scheduler.md). Identical join output either
  /// way. Stealing is the default since run generation was sliced
  /// below chunk granularity (a claim race can no longer hand one
  /// worker two whole chunk sorts); kStatic remains the paper-fidelity
  /// A/B knob.
  SchedulerKind scheduler = SchedulerKind::kStealing;

  /// Target tuples per stealable morsel (scatter blocks, sort buckets,
  /// merge ranges). Smaller morsels balance better but add claim
  /// overhead; 2^14 tuples = 256 KiB keeps a morsel around one L2.
  /// 0 = adaptive: each phase derives its slice from the variance of
  /// the work-unit sizes it is about to slice (ResolveMorselTuples,
  /// docs/scheduler.md) — uniform partitions keep the 2^14 default,
  /// skewed ones slice finer so the hot partition's surplus spreads.
  uint32_t morsel_tuples = 1u << 14;

  // ------------------------------------------- cache-conscious kernels
  // Each hot path keeps its scalar implementation selectable for A/B
  // benchmarking (docs/tuning.md); the defaults are the fast variants.

  /// Sort that turns chunks/partitions into runs (phases 1 and 3).
  sort::SortKind sort = sort::SortKind::kMultiPassRadix;

  /// Bucket threshold / pass cap of the multi-pass radix sort.
  sort::RadixSortConfig sort_config;

  /// Scatter implementation for phase 2.3 range partitioning. kAuto
  /// picks per execution from the fan-out/input size (write combining
  /// above the ~100-partition crossover, the scalar loop below —
  /// docs/tuning.md). P-MPSM's fan-out equals the team size, so small
  /// teams resolve to scalar and only 100+-worker teams flip to write
  /// combining; explicit kScalar/kWriteCombining still force a kernel
  /// for A/B runs.
  ScatterKind scatter = ScatterKind::kAuto;

  /// Precompute the scatter's partition digits blockwise with the
  /// vectorized cluster kernel (simd/histogram_kernels.h ClusterDigits)
  /// instead of the fused scalar subtract-shift-clamp per tuple. Takes
  /// effect only when `simd` resolves past kScalar; false keeps the
  /// fused loop as the A/B baseline (BM_ScatterDigits*).
  bool simd_scatter_digits = true;

  /// Software-prefetch lookahead (tuples) of the merge-join kernel;
  /// 0 selects the scalar kernel.
  uint32_t merge_prefetch_distance = kDefaultMergePrefetchDistance;

  /// Skip non-overlapping private-run prefixes in the join phase with
  /// the same start search used for public runs.
  bool merge_skip_private_prefix = true;

  /// Vector ISA of the merge-advance, start-search, key-range and
  /// radix-histogram kernels (docs/simd.md). kAuto resolves to the
  /// widest ISA this build and CPU support; kScalar keeps the paper's
  /// one-key-per-compare loops as the A/B baseline. The sort's digit
  /// histograms follow sort_config.simd (the engine front door sets
  /// both from its one canonical knob).
  simd::SimdKind simd = simd::SimdKind::kAuto;

  /// Checks every knob against its legal range for a team of
  /// `team_size` workers. The engine front door calls this before
  /// planning; the variant classes themselves stay lenient (e.g.
  /// EffectiveRadixBits clamps an undersized radix_bits) so the
  /// internal layer keeps its paper-fidelity behavior.
  Status Validate(uint32_t team_size) const;
};

}  // namespace mpsm

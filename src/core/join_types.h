// Join kinds and shared option types for the MPSM algorithm family.
#pragma once

#include <cstdint>
#include <functional>

#include "partition/splitters.h"

namespace mpsm {

/// Supported equi-join variants. Inner is the paper's focus; semi,
/// anti and left-outer are the §7 future-work variants, implemented on
/// top of the same merge kernel via per-run match bitmaps.
enum class JoinKind : uint8_t {
  kInner,
  kLeftSemi,
  kLeftAnti,
  kLeftOuter,
};

/// Name of a JoinKind ("inner", "left-semi", ...).
const char* JoinKindName(JoinKind kind);

/// Strategy for locating the merge-join start position in a public run
/// (§3.2.2 ablation).
enum class StartSearch : uint8_t {
  kInterpolation,  // the paper's choice
  kBinary,
  kLinear,
};

/// Tuning knobs of the MPSM variants.
struct MpsmOptions {
  /// Join variant to compute.
  JoinKind kind = JoinKind::kInner;

  /// Number of radix bits B for private-input clustering; log2(T) <= B.
  /// 0 selects the default max(ceil(log2(T)) + 5, 10), giving the
  /// splitter computation fine-grained histograms (Figure 9 shows the
  /// extra precision is almost free).
  uint32_t radix_bits = 0;

  /// Oversampling factor f: each worker contributes f*T equi-height
  /// bounds to the global CDF (§4.1).
  uint32_t equi_height_factor = 4;

  /// How workers locate the join start within each public run.
  StartSearch start_search = StartSearch::kInterpolation;

  /// Balance partitions by the split-relevant cost (true, §4.3) or by
  /// R cardinality only (false; Figure 16's equi-height strawman).
  bool cost_balanced_splitters = true;

  /// Insert barriers between phases so per-phase wall times are
  /// comparable across workers (the paper's phase breakdown charts).
  /// The algorithm itself only requires the single sort/join barrier.
  bool phase_barriers = true;
};

}  // namespace mpsm

// Figure 12: MPSM, Vectorwise (radix-join stand-in), and Wisconsin hash
// join on uniform data, multiplicity 1/4/8/16, with phase breakdown.
//
// Paper result: MPSM outperforms Vectorwise by ~4x and Wisconsin by up
// to an order of magnitude at all multiplicities.
#include <vector>

#include "bench/common.h"

namespace mpsm::bench {
namespace {

// Values read off Figure 12 (ms, HyPer1, |R| = 1600M).
struct PaperRow {
  double mpsm, vw, wisconsin;
};
const std::vector<std::pair<int, PaperRow>> kPaper = {
    {1, {33482, 123498, 581196}},
    {4, {59202, 223369, 675132}},
    {8, {97027, 355280, 812937}},
    {16, {169267, 621983, 1080205}},
};

void Main() {
  Banner("Figure 12", "uniform data, multiplicity sweep");
  const auto topology = numa::Topology::HyPer1();
  auto engine = MakeBenchEngine(topology);

  TablePrinter table;
  table.SetHeader({"multiplicity", "algorithm", "paper[ms]", "model[ms]",
                   "wall[ms]", "model vs mpsm", "paper vs mpsm"});

  TablePrinter phases;
  phases.SetHeader({"multiplicity", "algorithm", "ph1[ms]", "ph2[ms]",
                    "ph3[ms]", "ph4[ms]"});

  for (const auto& [multiplicity, paper] : kPaper) {
    workload::DatasetSpec spec;
    spec.r_tuples = BenchRTuples();
    spec.multiplicity = multiplicity;
    spec.seed = 42;
    const auto dataset = workload::Generate(topology, BenchWorkers(), spec);

    const auto mpsm = RunAndModel(workload::Algorithm::kPMpsm, engine,
                                  dataset.r, dataset.s);
    const auto vw = RunAndModel(workload::Algorithm::kRadix, engine,
                                dataset.r, dataset.s);
    const auto wisconsin = RunAndModel(workload::Algorithm::kWisconsin,
                                       engine, dataset.r, dataset.s);

    auto add = [&](const char* name, const BenchRun& run, double paper_ms) {
      table.AddRow({std::to_string(multiplicity), name, Ms(paper_ms),
                    Ms(run.modeled_ms), Ms(run.wall_ms),
                    Ratio(run.modeled_ms, mpsm.modeled_ms),
                    Ratio(paper_ms, paper.mpsm)});
      phases.AddRow({std::to_string(multiplicity), name,
                     Ms(run.modeled.phase_seconds[0] * 1e3),
                     Ms(run.modeled.phase_seconds[1] * 1e3),
                     Ms(run.modeled.phase_seconds[2] * 1e3),
                     Ms(run.modeled.phase_seconds[3] * 1e3)});
    };
    add("p-mpsm", mpsm, paper.mpsm);
    add("radix (vw)", vw, paper.vw);
    add("wisconsin", wisconsin, paper.wisconsin);
  }

  table.Print();
  std::printf("\nModeled phase breakdown (slot semantics per algorithm):\n");
  phases.Print();
  std::printf(
      "\nShape checks: p-mpsm < radix < wisconsin at every multiplicity;\n"
      "all series grow ~linearly in |S|. Paper's absolute gap vs the\n"
      "commercial Vectorwise engine is larger (see EXPERIMENTS.md).\n");
}

}  // namespace
}  // namespace mpsm::bench

int main() { mpsm::bench::Main(); }

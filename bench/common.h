// Shared helpers for the figure-reproduction benches.
//
// Every bench prints three kinds of numbers side by side:
//   paper[ms]    — the value reported in the paper (HyPer1, |R|=1600M),
//                  where the figure states one;
//   model[ms]    — our algorithms' counters mapped through the
//                  calibrated HyPer1 machine model at the bench's
//                  (scaled-down) data size;
//   wall[ms]     — measured wall clock on this machine (single-core
//                  development VM: parallel speedups are not visible
//                  here, the machine model carries that signal).
// Shapes — who wins, by what factor, how series scale — are compared
// via the relative columns; absolute paper values differ by the data
// scale factor.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "core/join_stats.h"
#include "engine/engine.h"
#include "sim/machine_model.h"
#include "util/env.h"
#include "util/table.h"
#include "workload/generator.h"
#include "workload/query.h"

namespace mpsm::bench {

/// log2 of |R| for benches; MPSM_BENCH_R_LOG2 overrides (default 2^18).
inline size_t BenchRTuples() {
  return size_t{1} << GetEnvInt("MPSM_BENCH_R_LOG2", 18);
}

/// Worker-team size for benches; MPSM_BENCH_WORKERS overrides.
inline uint32_t BenchWorkers() {
  return static_cast<uint32_t>(GetEnvInt("MPSM_BENCH_WORKERS", 32));
}

/// The benches' engine session: HyPer1 topology, team of
/// BenchWorkers() workers, reused across every query of a bench run
/// (one topology probe, one team spawn).
inline engine::Engine MakeBenchEngine(const numa::Topology& topology,
                                      uint32_t workers = BenchWorkers()) {
  engine::EngineOptions options;
  options.workers = workers;
  return engine::Engine(topology, options);
}

/// One benchmarked execution: measured + modeled.
struct BenchRun {
  /// The engine's full report (plan, measured phases, counters).
  engine::JoinReport report;
  JoinRunInfo info;
  sim::ModeledExecution modeled;
  double wall_ms = 0;
  double modeled_ms = 0;
};

/// Runs the benchmark query with `algorithm` on the engine session and
/// models it on HyPer1. With MPSM_BENCH_REPORT_JSON set, every
/// executed query's JoinReport::ToJson() line is appended to stderr
/// (one JSON object per line, machine-consumable alongside the table).
inline BenchRun RunAndModel(workload::Algorithm algorithm,
                            engine::Engine& engine, const Relation& r,
                            const Relation& s,
                            const MpsmOptions& options = {}) {
  auto result = workload::RunBenchmarkQuery(algorithm, engine, r, s, options);
  if (!result.ok()) {
    std::fprintf(stderr, "bench: %s failed: %s\n",
                 workload::AlgorithmName(algorithm),
                 result.status().ToString().c_str());
    std::exit(1);
  }
  BenchRun run;
  run.report = std::move(result->report);
  run.info = run.report.info;
  run.modeled =
      sim::ModelExecution(sim::MachineModel::HyPer1(), run.info.workers);
  run.wall_ms = run.info.wall_seconds * 1e3;
  run.modeled_ms = run.modeled.total_seconds * 1e3;
  if (GetEnvInt("MPSM_BENCH_REPORT_JSON", 0) != 0) {
    std::fprintf(stderr, "%s\n", run.report.ToJson().c_str());
  }
  return run;
}

/// Formats a ratio like "1.00x".
inline std::string Ratio(double value, double base) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", base > 0 ? value / base : 0.0);
  return buf;
}

/// Formats milliseconds with one decimal; "-" for NaN/absent.
inline std::string Ms(double ms) {
  if (ms <= 0) return "-";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", ms);
  return buf;
}

/// Prints the standard bench banner.
inline void Banner(const char* figure, const char* description) {
  std::printf("=== %s — %s ===\n", figure, description);
  std::printf(
      "|R| = %zu tuples, %u workers (paper: |R| = 1600M, 32 cores on "
      "HyPer1)\n"
      "model[ms] = counters x calibrated HyPer1 cost model; wall[ms] = "
      "this machine.\n\n",
      BenchRTuples(), BenchWorkers());
}

}  // namespace mpsm::bench

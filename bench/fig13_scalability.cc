// Figure 13: scalability in the number of cores (parallelism 2..64),
// MPSM vs Vectorwise stand-in, multiplicity 4.
//
// Paper result: MPSM scales almost linearly up to the 32 physical
// cores and stays flat at 64 (hyperthreading); Vectorwise scales
// sub-linearly.
#include <vector>

#include "bench/common.h"

namespace mpsm::bench {
namespace {

// Figure 13 series (ms): MPSM at parallelism 2..64. (Vectorwise's bar
// at parallelism 2 is annotated 2346427 in the figure; intermediate VW
// values are not legible and are omitted.)
const std::vector<std::pair<uint32_t, double>> kPaperMpsm = {
    {2, 773809}, {4, 396322}, {8, 201971},
    {16, 103580}, {32, 59202}, {64, 67278},
};
constexpr double kPaperVw2 = 2346427;
constexpr double kPaperVw32 = 223369;  // fig12, multiplicity 4

void Main() {
  Banner("Figure 13", "scalability in cores, multiplicity 4");
  const auto topology = numa::Topology::HyPer1();

  TablePrinter table;
  table.SetHeader({"parallelism", "algorithm", "paper[ms]", "model[ms]",
                   "wall[ms]", "model speedup", "paper speedup"});

  double mpsm_base = 0, vw_base = 0;
  for (const auto& [parallelism, paper_ms] : kPaperMpsm) {
    workload::DatasetSpec spec;
    spec.r_tuples = BenchRTuples();
    spec.multiplicity = 4;
    spec.seed = 42;
    // One engine per parallelism: the sweep varies the team size, so
    // each step is its own session (both queries inside it reuse the
    // team).
    auto engine = MakeBenchEngine(topology, parallelism);
    const auto dataset = workload::Generate(topology, parallelism, spec);

    const auto mpsm = RunAndModel(workload::Algorithm::kPMpsm, engine,
                                  dataset.r, dataset.s);
    const auto vw = RunAndModel(workload::Algorithm::kRadix, engine,
                                dataset.r, dataset.s);
    if (parallelism == 2) {
      mpsm_base = mpsm.modeled_ms;
      vw_base = vw.modeled_ms;
    }

    table.AddRow({std::to_string(parallelism), "p-mpsm", Ms(paper_ms),
                  Ms(mpsm.modeled_ms), Ms(mpsm.wall_ms),
                  Ratio(mpsm_base, mpsm.modeled_ms),
                  Ratio(kPaperMpsm[0].second, paper_ms)});
    const double paper_vw = parallelism == 2    ? kPaperVw2
                            : parallelism == 32 ? kPaperVw32
                                                : 0;
    table.AddRow({std::to_string(parallelism), "radix (vw)", Ms(paper_vw),
                  Ms(vw.modeled_ms), Ms(vw.wall_ms),
                  Ratio(vw_base, vw.modeled_ms),
                  paper_vw > 0 ? Ratio(kPaperVw2, paper_vw) : "-"});
  }

  table.Print();
  std::printf(
      "\nShape checks: p-mpsm speedup ~doubles per core doubling up to 32\n"
      "and flattens at 64 (hyperthreads timeshare the 32 physical cores).\n");
}

}  // namespace
}  // namespace mpsm::bench

int main() { mpsm::bench::Main(); }

// Ablation (§3.2.2): locating the merge-join start position in each
// public run — interpolation search vs binary search vs linear scan.
// Real measurements of P-MPSM's phase 4 under each strategy.
#include "bench/common.h"
#include "core/interpolation_search.h"
#include "sort/radix_introsort.h"
#include "util/timer.h"

namespace mpsm::bench {
namespace {

void Main() {
  Banner("Ablation", "join start search strategy (real times)");
  const auto topology = numa::Topology::HyPer1();
  auto engine = MakeBenchEngine(topology);

  workload::DatasetSpec spec;
  spec.r_tuples = BenchRTuples();
  spec.multiplicity = 4;
  spec.seed = 42;
  const auto dataset = workload::Generate(topology, BenchWorkers(), spec);

  TablePrinter table;
  table.SetHeader({"strategy", "join wall[ms]", "total wall[ms]",
                   "rand probe bytes"});
  for (const auto& [search, name] :
       {std::pair{StartSearch::kInterpolation, "interpolation"},
        std::pair{StartSearch::kBinary, "binary"},
        std::pair{StartSearch::kLinear, "linear"}}) {
    MpsmOptions options;
    options.start_search = search;
    const auto run = RunAndModel(workload::Algorithm::kPMpsm, engine,
                                 dataset.r, dataset.s, options);
    double join_wall = 0;
    uint64_t probe_bytes = 0;
    for (const auto& stats : run.info.workers) {
      join_wall = std::max(join_wall, stats.phase_seconds[kPhaseJoin]);
      probe_bytes += stats.phase_counters[kPhaseJoin].bytes_read_local_rand +
                     stats.phase_counters[kPhaseJoin].bytes_read_remote_rand;
    }
    table.AddRow({name, Ms(join_wall * 1e3), Ms(run.wall_ms),
                  std::to_string(probe_bytes)});
  }
  table.Print();

  // Raw probe counts on a single large run.
  std::printf("\nProbe counts on one %zu-tuple run (1000 searches):\n",
              BenchRTuples() * 4);
  workload::DatasetSpec big;
  big.r_tuples = BenchRTuples() * 4;
  big.multiplicity = 0;
  big.seed = 1;
  auto sorted = workload::Generate(topology, 1, big).r.ToVector();
  sort::RadixIntroSort(sorted.data(), sorted.size());

  TablePrinter probes;
  probes.SetHeader({"strategy", "avg probes/search"});
  Xoshiro256 rng(5);
  for (const auto& [fn, name] :
       {std::pair{&InterpolationLowerBound, "interpolation"},
        std::pair{&BinaryLowerBound, "binary"},
        std::pair{&LinearLowerBound, "linear"}}) {
    SearchStats stats;
    for (int i = 0; i < 1000; ++i) {
      fn(sorted.data(), sorted.size(),
         rng.NextBounded(uint64_t{1} << 32), &stats);
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f", stats.probes / 1000.0);
    probes.AddRow({name, buf});
  }
  probes.Print();
  std::printf(
      "\nShape check: interpolation needs O(log log n) probes on uniform\n"
      "keys — far fewer than binary search — which is why the paper uses\n"
      "it to position the merge join in every public run.\n");
}

}  // namespace
}  // namespace mpsm::bench

int main() { mpsm::bench::Main(); }

// Figure 1: the three NUMA micro-benchmarks that motivate the MPSM
// commandments.
//
//   (1) sort chunks in NUMA-local memory  vs  in a globally allocated
//       (interleaved) array                       -> factor ~3.2
//   (2) scatter with precomputed prefix-sum targets  vs  with a
//       test-and-set synchronized write cursor       -> factor ~3.1
//   (3) merge join with the second run local  vs  remote (sequential
//       scan, prefetcher-friendly)                 -> factor ~1.19
//
// All six code paths run for real (wall[ms]); the NUMA latency
// consequences come from the calibrated model (model[ms]) since the
// development machine has a single node. Paper values are the Figure 1
// bar annotations (50M tuples per worker, 32 workers).
#include <atomic>
#include <memory>
#include <vector>

#include "bench/common.h"
#include "core/merge_join.h"
#include "core/run_generation.h"
#include "partition/prefix_scatter.h"
#include "sort/radix_introsort.h"
#include "util/timer.h"

namespace mpsm::bench {
namespace {

void Main() {
  Banner("Figure 1", "NUMA-affine vs NUMA-agnostic micro-benchmarks");
  const auto topology = numa::Topology::HyPer1();
  const uint32_t workers = BenchWorkers();
  WorkerTeam team(topology, workers);
  const auto model = sim::MachineModel::HyPer1();

  workload::DatasetSpec spec;
  spec.r_tuples = BenchRTuples() * 4;
  spec.multiplicity = 0;
  spec.seed = 42;
  const auto dataset = workload::Generate(topology, workers, spec);
  const Relation& rel = dataset.r;

  TablePrinter table;
  table.SetHeader({"experiment", "variant", "paper[ms]", "model[ms]",
                   "wall[ms]", "model penalty", "paper penalty"});

  // ------------------------------------------------- (1) sort
  {
    // NUMA-affine: each worker copies its chunk to its local arena and
    // sorts there (the MPSM run-generation path).
    WallTimer wall;
    team.Run([&](WorkerContext& ctx) {
      PhaseScope scope(ctx, kPhaseSortPublic);
      // Pin the paper's single-pass sort: the "paper[ms]" column is
      // calibrated against §2.3, not the multi-pass default.
      SortChunkIntoRun(rel.chunk(ctx.worker_id), *ctx.arena, ctx.node,
                       ctx.Counters(kPhaseSortPublic),
                       sort::SortKind::kSinglePassRadix);
    });
    const double local_wall = wall.ElapsedMillis();
    double local_model = 0;
    for (uint32_t w = 0; w < workers; ++w) {
      local_model = std::max(
          local_model,
          model.PhaseSeconds(team.stats(w).phase_counters[kPhaseSortPublic]) *
              1e3);
    }

    // NUMA-agnostic: sort segments of one globally allocated array.
    std::vector<Tuple> global_array = rel.ToVector();
    wall.Reset();
    team.Run([&](WorkerContext& ctx) {
      const size_t per = global_array.size() / ctx.team_size;
      const size_t begin = ctx.worker_id * per;
      const size_t end = ctx.worker_id + 1 == ctx.team_size
                             ? global_array.size()
                             : begin + per;
      sort::RadixIntroSort(global_array.data() + begin, end - begin);
    });
    const double global_wall = wall.ElapsedMillis();
    // The interleaved array makes the sort's accesses remote on 3/4 of
    // the pages; Figure 1 measured factor 3.22 (the model's calibrated
    // global_sort_penalty).
    const double global_model = local_model * model.global_sort_penalty;

    table.AddRow({"(1) sort", "local RAM", "12946", Ms(local_model),
                  Ms(local_wall), "1.00x", "1.00x"});
    table.AddRow({"(1) sort", "global array", "41734", Ms(global_model),
                  Ms(global_wall), Ratio(global_model, local_model),
                  Ratio(41734, 12946)});
  }

  // ---------------------------------------------- (2) partitioning
  {
    const uint32_t partitions = workers;
    // Shared target arrays, partition p owned by worker p.
    std::vector<std::vector<uint64_t>> worker_hist(
        workers, std::vector<uint64_t>(partitions, 0));
    auto partition_of = [&](uint64_t key) {
      return static_cast<uint32_t>(key % partitions);
    };
    for (uint32_t w = 0; w < workers; ++w) {
      const Chunk& chunk = rel.chunk(w);
      for (size_t i = 0; i < chunk.size; ++i) {
        ++worker_hist[w][partition_of(chunk.data[i].key)];
      }
    }
    const auto plan = ComputeScatterPlan(worker_hist);
    std::vector<std::vector<Tuple>> targets(partitions);
    for (uint32_t p = 0; p < partitions; ++p) {
      targets[p].resize(plan.partition_sizes[p]);
    }

    // Green: precomputed sub-partitions, sequential synchronization-
    // free writes.
    WallTimer wall;
    team.Run([&](WorkerContext& ctx) {
      PhaseScope scope(ctx, kPhasePartition);
      const Chunk& chunk = rel.chunk(ctx.worker_id);
      std::vector<Tuple*> dest(partitions);
      for (uint32_t p = 0; p < partitions; ++p) dest[p] = targets[p].data();
      std::vector<uint64_t> cursor = plan.start_offset[ctx.worker_id];
      ScatterChunk(chunk.data, chunk.size, partition_of, dest.data(),
                   cursor.data());
      // T open write streams across nodes: the pattern Figure 1 exp. 2
      // measured at 7440 ms, i.e. the model's random-write rate.
      ctx.Counters(kPhasePartition)
          .CountWrite(false, false, chunk.size * sizeof(Tuple));
      ctx.Counters(kPhasePartition)
          .CountRead(true, true, chunk.size * sizeof(Tuple));
    });
    const double plain_wall = wall.ElapsedMillis();
    double plain_model = 0;
    for (uint32_t w = 0; w < workers; ++w) {
      plain_model = std::max(
          plain_model,
          model.PhaseSeconds(team.stats(w).phase_counters[kPhasePartition]) *
              1e3);
    }

    // Red: a test-and-set synchronized write cursor per partition.
    auto cursors = std::make_unique<std::atomic<uint64_t>[]>(partitions);
    for (uint32_t p = 0; p < partitions; ++p) cursors[p] = 0;
    wall.Reset();
    team.Run([&](WorkerContext& ctx) {
      PhaseScope scope(ctx, kPhasePartition);
      PerfCounters& counters = ctx.Counters(kPhasePartition);
      const Chunk& chunk = rel.chunk(ctx.worker_id);
      for (size_t i = 0; i < chunk.size; ++i) {
        const uint32_t p = partition_of(chunk.data[i].key);
        const uint64_t slot =
            cursors[p].fetch_add(1, std::memory_order_relaxed);
        targets[p][slot] = chunk.data[i];
        ++counters.sync_acquisitions;
      }
      counters.CountWrite(false, false, chunk.size * sizeof(Tuple));
      counters.CountRead(true, true, chunk.size * sizeof(Tuple));
    });
    const double sync_wall = wall.ElapsedMillis();
    double sync_model = 0;
    for (uint32_t w = 0; w < workers; ++w) {
      sync_model = std::max(
          sync_model,
          model.PhaseSeconds(team.stats(w).phase_counters[kPhasePartition]) *
              1e3);
    }

    table.AddRow({"(2) partition", "precomputed", "7440", Ms(plain_model),
                  Ms(plain_wall), "1.00x", "1.00x"});
    table.AddRow({"(2) partition", "synchronized", "22756", Ms(sync_model),
                  Ms(sync_wall), Ratio(sync_model, plain_model),
                  Ratio(22756, 7440)});
  }

  // ------------------------------------------------ (3) merge join
  {
    // Two sorted runs per worker; the second run is local or remote.
    std::vector<std::vector<Tuple>> runs_a(workers), runs_b(workers);
    for (uint32_t w = 0; w < workers; ++w) {
      const Chunk& chunk = rel.chunk(w);
      const size_t half = chunk.size / 2;
      runs_a[w].assign(chunk.data, chunk.data + half);
      runs_b[w].assign(chunk.data + half, chunk.data + chunk.size);
      sort::RadixIntroSort(runs_a[w].data(), runs_a[w].size());
      sort::RadixIntroSort(runs_b[w].data(), runs_b[w].size());
    }

    auto run_merge = [&](bool remote) {
      WallTimer wall;
      team.Run([&](WorkerContext& ctx) {
        PhaseScope scope(ctx, kPhaseJoin);
        PerfCounters& counters = ctx.Counters(kPhaseJoin);
        const uint32_t w = ctx.worker_id;
        // Remote: merge against the next worker's run (other node under
        // socket-major placement); local: own second run.
        const auto& other =
            remote ? runs_b[(w + 1) % ctx.team_size] : runs_b[w];
        uint64_t matches = 0;
        MergeJoinRunPair(runs_a[w].data(), runs_a[w].size(), other.data(),
                         other.size(),
                         [&](size_t, const Tuple&, const Tuple*,
                             size_t count) { matches += count; });
        counters.CountRead(true, true,
                           runs_a[w].size() * sizeof(Tuple));
        counters.CountRead(!remote, true, other.size() * sizeof(Tuple));
        counters.output_tuples = matches;
      });
      const double wall_ms = wall.ElapsedMillis();
      double model_ms = 0;
      for (uint32_t w = 0; w < workers; ++w) {
        model_ms = std::max(
            model_ms,
            model.PhaseSeconds(team.stats(w).phase_counters[kPhaseJoin]) *
                1e3);
      }
      return std::make_pair(model_ms, wall_ms);
    };

    const auto [local_model, local_wall] = run_merge(false);
    const auto [remote_model, remote_wall] = run_merge(true);
    table.AddRow({"(3) merge join", "local", "837", Ms(local_model),
                  Ms(local_wall), "1.00x", "1.00x"});
    table.AddRow({"(3) merge join", "remote", "1000", Ms(remote_model),
                  Ms(remote_wall), Ratio(remote_model, local_model),
                  Ratio(1000, 837)});
  }

  table.Print();
  std::printf(
      "\nShape checks: ~3x penalty for NUMA-agnostic sorting, ~3x for\n"
      "fine-grained synchronization, but only ~1.2x for *sequential*\n"
      "remote scans — the basis of commandments C1-C3.\n");
}

}  // namespace
}  // namespace mpsm::bench

int main() { mpsm::bench::Main(); }

// google-benchmark micro-kernels for the primitives every MPSM phase is
// built from: sorting, merge join, histograms, scatter, search, CDF.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <vector>

#include "core/interpolation_search.h"
#include "core/merge_join.h"
#include "partition/cdf.h"
#include "partition/equi_height.h"
#include "partition/key_normalizer.h"
#include "partition/prefix_scatter.h"
#include "partition/radix_histogram.h"
#include "sort/radix_introsort.h"
#include "storage/run.h"
#include "util/rng.h"

namespace mpsm {
namespace {

std::vector<Tuple> RandomTuples(size_t n, uint64_t seed = 42) {
  Xoshiro256 rng(seed);
  std::vector<Tuple> data(n);
  for (auto& t : data) {
    t = Tuple{rng.NextBounded(uint64_t{1} << 32), rng.Next() & 0xFFFFFFFF};
  }
  return data;
}

void BM_RadixIntroSort(benchmark::State& state) {
  const auto input = RandomTuples(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto data = input;
    state.ResumeTiming();
    sort::RadixIntroSort(data.data(), data.size());
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RadixIntroSort)->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 22);

void BM_RadixSortMultiPass(benchmark::State& state) {
  const auto input = RandomTuples(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto data = input;
    state.ResumeTiming();
    sort::RadixIntroSortMultiPass(data.data(), data.size());
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RadixSortMultiPass)->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 22);

void BM_StdSort(benchmark::State& state) {
  const auto input = RandomTuples(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto data = input;
    state.ResumeTiming();
    std::sort(data.begin(), data.end(), TupleKeyLess{});
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StdSort)->Arg(1 << 16)->Arg(1 << 20);

// A/B pair for the merge kernel: identical workload, scalar kernel vs
// the prefetch-pipelined variant (distance = kDefaultMergePrefetchDistance).
void MergeJoinBench(benchmark::State& state, uint32_t prefetch_distance) {
  auto r = RandomTuples(state.range(0), 1);
  auto s = RandomTuples(state.range(0) * 4, 2);
  sort::RadixIntroSort(r.data(), r.size());
  sort::RadixIntroSort(s.data(), s.size());
  for (auto _ : state) {
    uint64_t matches = 0;
    MergeJoinRunPairWith(prefetch_distance, r.data(), r.size(), s.data(),
                         s.size(),
                         [&](size_t, const Tuple&, const Tuple*,
                             size_t count) { matches += count; });
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(state.iterations() * (r.size() + s.size()));
}

void BM_MergeJoinKernel(benchmark::State& state) {
  MergeJoinBench(state, 0);
}
BENCHMARK(BM_MergeJoinKernel)->Arg(1 << 16)->Arg(1 << 19)->Arg(1 << 21);

void BM_MergeJoinKernelPrefetch(benchmark::State& state) {
  MergeJoinBench(state, kDefaultMergePrefetchDistance);
}
BENCHMARK(BM_MergeJoinKernelPrefetch)->Arg(1 << 16)->Arg(1 << 19)->Arg(1 << 21);

void BM_RadixHistogram(benchmark::State& state) {
  const auto data = RandomTuples(1 << 20);
  const KeyNormalizer normalizer(0, (uint64_t{1} << 32) - 1,
                                 static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    auto histogram =
        BuildRadixHistogram(data.data(), data.size(), normalizer);
    benchmark::DoNotOptimize(histogram.data());
  }
  state.SetItemsProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_RadixHistogram)->Arg(5)->Arg(8)->Arg(11)->Arg(14);

void BM_ScatterPrefixSum(benchmark::State& state) {
  const auto data = RandomTuples(1 << 20);
  const uint32_t partitions = 32;
  std::vector<Tuple> out(data.size());
  for (auto _ : state) {
    std::vector<uint64_t> histogram(partitions, 0);
    for (const auto& t : data) ++histogram[t.key % partitions];
    std::vector<Tuple*> dest(partitions);
    uint64_t offset = 0;
    for (uint32_t p = 0; p < partitions; ++p) {
      dest[p] = out.data() + offset;
      offset += histogram[p];
    }
    std::vector<uint64_t> cursor(partitions, 0);
    for (const auto& t : data) {
      const uint32_t p = static_cast<uint32_t>(t.key % partitions);
      dest[p][cursor[p]++] = t;
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_ScatterPrefixSum);

void BM_ScatterAtomicCursor(benchmark::State& state) {
  const auto data = RandomTuples(1 << 20);
  const uint32_t partitions = 32;
  std::vector<Tuple> out(data.size());
  std::vector<uint64_t> histogram(partitions, 0);
  for (const auto& t : data) ++histogram[t.key % partitions];
  std::vector<Tuple*> dest(partitions);
  uint64_t offset = 0;
  for (uint32_t p = 0; p < partitions; ++p) {
    dest[p] = out.data() + offset;
    offset += histogram[p];
  }
  for (auto _ : state) {
    std::vector<std::atomic<uint64_t>> cursor(partitions);
    for (auto& c : cursor) c = 0;
    for (const auto& t : data) {
      const uint32_t p = static_cast<uint32_t>(t.key % partitions);
      dest[p][cursor[p].fetch_add(1, std::memory_order_relaxed)] = t;
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_ScatterAtomicCursor);

// A/B pair for the phase-2.3 scatter: one plan (histogram + prefix
// sums) built outside the timed region, then the scalar loop vs. the
// write-combining kernel scatter the same tuples into the same layout.
// args: {log2 tuples, partition fan-out (power of two)}.
void ScatterBench(benchmark::State& state, ScatterKind kind) {
  const size_t n = size_t{1} << state.range(0);
  const uint32_t partitions = static_cast<uint32_t>(state.range(1));
  const uint64_t mask = partitions - 1;
  const auto data = RandomTuples(n);
  const auto partition_of = [mask](uint64_t key) {
    return static_cast<uint32_t>(key & mask);
  };

  std::vector<uint64_t> histogram(partitions, 0);
  for (const auto& t : data) ++histogram[partition_of(t.key)];
  std::vector<Tuple> out(n);
  std::vector<Tuple*> dest(partitions);
  uint64_t offset = 0;
  for (uint32_t p = 0; p < partitions; ++p) {
    dest[p] = out.data() + offset;
    offset += histogram[p];
  }

  std::vector<uint64_t> cursor(partitions);
  for (auto _ : state) {
    std::fill(cursor.begin(), cursor.end(), 0);
    ScatterChunkWith(kind, data.data(), n, partition_of, dest.data(),
                     cursor.data(), partitions);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_ScatterScalar(benchmark::State& state) {
  ScatterBench(state, ScatterKind::kScalar);
}
BENCHMARK(BM_ScatterScalar)
    ->Args({20, 32})
    ->Args({20, 512})
    ->Args({20, 2048})
    ->Args({22, 1024});

void BM_ScatterWriteCombining(benchmark::State& state) {
  ScatterBench(state, ScatterKind::kWriteCombining);
}
BENCHMARK(BM_ScatterWriteCombining)
    ->Args({20, 32})
    ->Args({20, 512})
    ->Args({20, 2048})
    ->Args({22, 1024});

void BM_LowerBound(benchmark::State& state) {
  auto data = RandomTuples(1 << 22);
  sort::RadixIntroSort(data.data(), data.size());
  Xoshiro256 rng(3);
  const bool interpolate = state.range(0) == 1;
  for (auto _ : state) {
    const uint64_t key = rng.NextBounded(uint64_t{1} << 32);
    const size_t pos =
        interpolate
            ? InterpolationLowerBound(data.data(), data.size(), key)
            : BinaryLowerBound(data.data(), data.size(), key);
    benchmark::DoNotOptimize(pos);
  }
}
BENCHMARK(BM_LowerBound)->Arg(0)->Arg(1);

void BM_CdfEstimateRank(benchmark::State& state) {
  auto data = RandomTuples(1 << 20);
  sort::RadixIntroSort(data.data(), data.size());
  Run run{data.data(), data.size(), 0};
  const Cdf cdf = Cdf::FromHistograms({BuildEquiHeightHistogram(run, 128)});
  Xoshiro256 rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cdf.EstimateRank(rng.NextBounded(uint64_t{1} << 32)));
  }
}
BENCHMARK(BM_CdfEstimateRank);

}  // namespace
}  // namespace mpsm

BENCHMARK_MAIN();

// google-benchmark micro-kernels for the primitives every MPSM phase is
// built from: sorting, merge join, histograms, scatter, search, CDF —
// plus the phase-scheduler A/B (static vs stealing) on a skewed join.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "bufferpool/buffer_pool.h"
#include "cache/run_cache.h"
#include "core/consumers.h"
#include "core/interpolation_search.h"
#include "core/merge_join.h"
#include "core/p_mpsm.h"
#include "disk/d_mpsm.h"
#include "engine/engine.h"
#include "io/io_backend.h"
#include "numa/topology.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/worker_team.h"
#include "partition/cdf.h"
#include "partition/equi_height.h"
#include "partition/key_normalizer.h"
#include "partition/prefix_scatter.h"
#include "partition/radix_histogram.h"
#include "service/join_service.h"
#include "sim/machine_model.h"
#include "simd/caps.h"
#include "simd/histogram_kernels.h"
#include "sort/radix_introsort.h"
#include "storage/run.h"
#include "util/env.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace mpsm {
namespace {

std::vector<Tuple> RandomTuples(size_t n, uint64_t seed = 42) {
  Xoshiro256 rng(seed);
  std::vector<Tuple> data(n);
  for (auto& t : data) {
    t = Tuple{rng.NextBounded(uint64_t{1} << 32), rng.Next() & 0xFFFFFFFF};
  }
  return data;
}

void BM_RadixIntroSort(benchmark::State& state) {
  const auto input = RandomTuples(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto data = input;
    state.ResumeTiming();
    sort::RadixIntroSort(data.data(), data.size());
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RadixIntroSort)->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 22);

void BM_RadixSortMultiPass(benchmark::State& state) {
  const auto input = RandomTuples(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto data = input;
    state.ResumeTiming();
    sort::RadixIntroSortMultiPass(data.data(), data.size());
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RadixSortMultiPass)->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 22);

void BM_StdSort(benchmark::State& state) {
  const auto input = RandomTuples(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto data = input;
    state.ResumeTiming();
    std::sort(data.begin(), data.end(), TupleKeyLess{});
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StdSort)->Arg(1 << 16)->Arg(1 << 20);

// A/B pair for the merge kernel: identical workload, scalar kernel vs
// the prefetch-pipelined variant (distance = kDefaultMergePrefetchDistance).
void MergeJoinBench(benchmark::State& state, uint32_t prefetch_distance,
                    simd::SimdKind simd_kind = simd::SimdKind::kScalar) {
  if (simd::Resolve(simd_kind) != simd_kind) {
    state.SkipWithError("simd kind unsupported on this host");
    return;
  }
  auto r = RandomTuples(state.range(0), 1);
  auto s = RandomTuples(state.range(0) * 4, 2);
  sort::RadixIntroSort(r.data(), r.size());
  sort::RadixIntroSort(s.data(), s.size());
  for (auto _ : state) {
    uint64_t matches = 0;
    MergeJoinRunPairWith(prefetch_distance, simd_kind, r.data(), r.size(),
                         s.data(), s.size(),
                         [&](size_t, const Tuple&, const Tuple*,
                             size_t count) { matches += count; });
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(state.iterations() * (r.size() + s.size()));
}

void BM_MergeJoinKernel(benchmark::State& state) {
  MergeJoinBench(state, 0);
}
BENCHMARK(BM_MergeJoinKernel)->Arg(1 << 16)->Arg(1 << 19)->Arg(1 << 21);

void BM_MergeJoinKernelPrefetch(benchmark::State& state) {
  MergeJoinBench(state, kDefaultMergePrefetchDistance);
}
BENCHMARK(BM_MergeJoinKernelPrefetch)->Arg(1 << 16)->Arg(1 << 19)->Arg(1 << 21);

// SIMD A/B family for the merge compare (docs/simd.md): same workload
// and prefetch pipeline, only the advance kernel varies. Unsupported
// kinds skip with an error so the JSON row says why.
void BM_MergeScalar(benchmark::State& state) {
  MergeJoinBench(state, kDefaultMergePrefetchDistance,
                 simd::SimdKind::kScalar);
}
BENCHMARK(BM_MergeScalar)->Arg(1 << 20)->Arg(1 << 21);

void BM_MergeSse(benchmark::State& state) {
  MergeJoinBench(state, kDefaultMergePrefetchDistance, simd::SimdKind::kSse);
}
BENCHMARK(BM_MergeSse)->Arg(1 << 20)->Arg(1 << 21);

void BM_MergeAvx2(benchmark::State& state) {
  MergeJoinBench(state, kDefaultMergePrefetchDistance,
                 simd::SimdKind::kAvx2);
}
BENCHMARK(BM_MergeAvx2)->Arg(1 << 20)->Arg(1 << 21);

void BM_MergeAvx512(benchmark::State& state) {
  MergeJoinBench(state, kDefaultMergePrefetchDistance,
                 simd::SimdKind::kAvx512);
}
BENCHMARK(BM_MergeAvx512)->Arg(1 << 20)->Arg(1 << 21);

void BM_RadixHistogram(benchmark::State& state) {
  const auto data = RandomTuples(1 << 20);
  const KeyNormalizer normalizer(0, (uint64_t{1} << 32) - 1,
                                 static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    auto histogram =
        BuildRadixHistogram(data.data(), data.size(), normalizer);
    benchmark::DoNotOptimize(histogram.data());
  }
  state.SetItemsProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_RadixHistogram)->Arg(5)->Arg(8)->Arg(11)->Arg(14);

// SIMD A/B pair for the cluster-histogram pass (arg = radix bits).
void HistogramSimdBench(benchmark::State& state, simd::SimdKind simd_kind) {
  if (simd::Resolve(simd_kind) != simd_kind) {
    state.SkipWithError("simd kind unsupported on this host");
    return;
  }
  const auto data = RandomTuples(1 << 20);
  const KeyNormalizer normalizer(0, (uint64_t{1} << 32) - 1,
                                 static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    auto histogram =
        BuildRadixHistogram(data.data(), data.size(), normalizer, simd_kind);
    benchmark::DoNotOptimize(histogram.data());
  }
  state.SetItemsProcessed(state.iterations() * data.size());
}

void BM_HistogramScalar(benchmark::State& state) {
  HistogramSimdBench(state, simd::SimdKind::kScalar);
}
BENCHMARK(BM_HistogramScalar)->Arg(11)->Arg(14);

void BM_HistogramSimd(benchmark::State& state) {
  HistogramSimdBench(state, simd::Resolve(simd::SimdKind::kAuto));
}
BENCHMARK(BM_HistogramSimd)->Arg(11)->Arg(14);

// SIMD A/B for the phase-2.3 digit precompute (MpsmOptions::
// simd_scatter_digits): the per-tuple cluster digit stream the scatter
// consumes instead of recomputing each key's cluster in its fused
// scalar lambda. arg = log2 tuples.
void ScatterDigitsBench(benchmark::State& state, simd::SimdKind simd_kind) {
  if (simd::Resolve(simd_kind) != simd_kind) {
    state.SkipWithError("simd kind unsupported on this host");
    return;
  }
  const size_t n = size_t{1} << state.range(0);
  const auto data = RandomTuples(n);
  std::vector<uint32_t> digits(n);
  for (auto _ : state) {
    simd::ClusterDigits(data.data(), n, 0, 22, 1024, digits.data(),
                        simd_kind);
    benchmark::DoNotOptimize(digits.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_ScatterDigitsScalar(benchmark::State& state) {
  ScatterDigitsBench(state, simd::SimdKind::kScalar);
}
BENCHMARK(BM_ScatterDigitsScalar)->Arg(20)->Arg(22);

void BM_ScatterDigitsSimd(benchmark::State& state) {
  ScatterDigitsBench(state, simd::Resolve(simd::SimdKind::kAuto));
}
BENCHMARK(BM_ScatterDigitsSimd)->Arg(20)->Arg(22);

void BM_ScatterPrefixSum(benchmark::State& state) {
  const auto data = RandomTuples(1 << 20);
  const uint32_t partitions = 32;
  std::vector<Tuple> out(data.size());
  for (auto _ : state) {
    std::vector<uint64_t> histogram(partitions, 0);
    for (const auto& t : data) ++histogram[t.key % partitions];
    std::vector<Tuple*> dest(partitions);
    uint64_t offset = 0;
    for (uint32_t p = 0; p < partitions; ++p) {
      dest[p] = out.data() + offset;
      offset += histogram[p];
    }
    std::vector<uint64_t> cursor(partitions, 0);
    for (const auto& t : data) {
      const uint32_t p = static_cast<uint32_t>(t.key % partitions);
      dest[p][cursor[p]++] = t;
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_ScatterPrefixSum);

void BM_ScatterAtomicCursor(benchmark::State& state) {
  const auto data = RandomTuples(1 << 20);
  const uint32_t partitions = 32;
  std::vector<Tuple> out(data.size());
  std::vector<uint64_t> histogram(partitions, 0);
  for (const auto& t : data) ++histogram[t.key % partitions];
  std::vector<Tuple*> dest(partitions);
  uint64_t offset = 0;
  for (uint32_t p = 0; p < partitions; ++p) {
    dest[p] = out.data() + offset;
    offset += histogram[p];
  }
  for (auto _ : state) {
    std::vector<std::atomic<uint64_t>> cursor(partitions);
    for (auto& c : cursor) c = 0;
    for (const auto& t : data) {
      const uint32_t p = static_cast<uint32_t>(t.key % partitions);
      dest[p][cursor[p].fetch_add(1, std::memory_order_relaxed)] = t;
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_ScatterAtomicCursor);

// A/B pair for the phase-2.3 scatter: one plan (histogram + prefix
// sums) built outside the timed region, then the scalar loop vs. the
// write-combining kernel scatter the same tuples into the same layout.
// args: {log2 tuples, partition fan-out (power of two)}.
void ScatterBench(benchmark::State& state, ScatterKind kind) {
  const size_t n = size_t{1} << state.range(0);
  const uint32_t partitions = static_cast<uint32_t>(state.range(1));
  const uint64_t mask = partitions - 1;
  const auto data = RandomTuples(n);
  const auto partition_of = [mask](uint64_t key) {
    return static_cast<uint32_t>(key & mask);
  };

  std::vector<uint64_t> histogram(partitions, 0);
  for (const auto& t : data) ++histogram[partition_of(t.key)];
  std::vector<Tuple> out(n);
  std::vector<Tuple*> dest(partitions);
  uint64_t offset = 0;
  for (uint32_t p = 0; p < partitions; ++p) {
    dest[p] = out.data() + offset;
    offset += histogram[p];
  }

  std::vector<uint64_t> cursor(partitions);
  for (auto _ : state) {
    std::fill(cursor.begin(), cursor.end(), 0);
    ScatterChunkWith(kind, data.data(), n, partition_of, dest.data(),
                     cursor.data(), partitions);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_ScatterScalar(benchmark::State& state) {
  ScatterBench(state, ScatterKind::kScalar);
}
BENCHMARK(BM_ScatterScalar)
    ->Args({20, 32})
    ->Args({20, 512})
    ->Args({20, 2048})
    ->Args({22, 1024});

void BM_ScatterWriteCombining(benchmark::State& state) {
  ScatterBench(state, ScatterKind::kWriteCombining);
}
BENCHMARK(BM_ScatterWriteCombining)
    ->Args({20, 32})
    ->Args({20, 512})
    ->Args({20, 2048})
    ->Args({22, 1024});

void BM_LowerBound(benchmark::State& state) {
  auto data = RandomTuples(1 << 22);
  sort::RadixIntroSort(data.data(), data.size());
  Xoshiro256 rng(3);
  const bool interpolate = state.range(0) == 1;
  for (auto _ : state) {
    const uint64_t key = rng.NextBounded(uint64_t{1} << 32);
    const size_t pos =
        interpolate
            ? InterpolationLowerBound(data.data(), data.size(), key)
            : BinaryLowerBound(data.data(), data.size(), key);
    benchmark::DoNotOptimize(pos);
  }
}
BENCHMARK(BM_LowerBound)->Arg(0)->Arg(1);

// SIMD A/B pair for the merge-start search: scalar interpolation
// descent to hi-lo == 1 vs the windowed descent with a packed finish.
void SearchSimdBench(benchmark::State& state, simd::SimdKind simd_kind) {
  if (simd::Resolve(simd_kind) != simd_kind) {
    state.SkipWithError("simd kind unsupported on this host");
    return;
  }
  auto data = RandomTuples(1 << 22);
  sort::RadixIntroSort(data.data(), data.size());
  const simd::AdvanceFn advance = simd::AdvanceForKind(simd_kind);
  Xoshiro256 rng(3);
  for (auto _ : state) {
    const uint64_t key = rng.NextBounded(uint64_t{1} << 32);
    const size_t pos =
        advance == nullptr
            ? InterpolationLowerBound(data.data(), data.size(), key)
            : InterpolationLowerBoundWindowed(data.data(), data.size(), key,
                                              advance);
    benchmark::DoNotOptimize(pos);
  }
}

void BM_SearchScalar(benchmark::State& state) {
  SearchSimdBench(state, simd::SimdKind::kScalar);
}
BENCHMARK(BM_SearchScalar);

void BM_SearchSimd(benchmark::State& state) {
  SearchSimdBench(state, simd::Resolve(simd::SimdKind::kAuto));
}
BENCHMARK(BM_SearchSimd);

// Scheduler A/B on the Figure 16 workload: negatively correlated 80:20
// skew with the equi-height strawman splitters, so the static scripts
// leave the low-key workers with most of the phase-4 merge work. The
// stealing scheduler spreads those merges as morsels. Wall time on a
// single-core dev VM cannot show parallel balance, so the modeled
// HyPer1 phase times are exported as counters (bench/common.h
// convention: the machine model carries the parallelism signal);
// model_phase4_ms is the number the scheduler A/B is judged on.
// MPSM_SKEW_BENCH_LOG2 scales |R| (default 2^16; CI smoke uses less).
void PMpsmSkewBench(benchmark::State& state, SchedulerKind scheduler) {
  const auto topology = numa::Topology::HyPer1();
  const uint32_t team_size = 32;
  workload::DatasetSpec spec;
  spec.r_tuples = size_t{1} << GetEnvInt("MPSM_SKEW_BENCH_LOG2", 16);
  spec.multiplicity = 4;
  spec.key_domain = spec.r_tuples * 5 / 2;
  spec.r_distribution = workload::KeyDistribution::kSkewHighEnd;
  spec.s_distribution = workload::KeyDistribution::kSkewLowEnd;
  spec.s_mode = workload::SKeyMode::kIndependent;
  spec.seed = 42;
  const auto dataset = workload::Generate(topology, team_size, spec);
  WorkerTeam team(topology, team_size);

  MpsmOptions options;
  options.scheduler = scheduler;
  options.cost_balanced_splitters = false;  // fig 16b: skewed phase 4

  double phase4_ms = 0;
  double total_ms = 0;
  double stolen = 0;
  for (auto _ : state) {
    CountFactory counts(team_size);
    auto info = PMpsmJoin(options).Execute(team, dataset.r, dataset.s,
                                           counts);
    if (!info.ok()) {
      state.SkipWithError("join failed");
      return;
    }
    benchmark::DoNotOptimize(counts.Result());
    const auto modeled =
        sim::ModelExecution(sim::MachineModel::HyPer1(), info->workers);
    phase4_ms = modeled.phase_seconds[kPhaseJoin] * 1e3;
    total_ms = modeled.total_seconds * 1e3;
    stolen = static_cast<double>(
        info->aggregate.TotalCounters().morsels_stolen);
  }
  state.counters["model_phase4_ms"] = phase4_ms;
  state.counters["model_total_ms"] = total_ms;
  state.counters["morsels_stolen"] = stolen;
  state.SetItemsProcessed(state.iterations() *
                          (dataset.r.size() + dataset.s.size()));
}

void BM_PMpsmSkewJoinStatic(benchmark::State& state) {
  PMpsmSkewBench(state, SchedulerKind::kStatic);
}
BENCHMARK(BM_PMpsmSkewJoinStatic)->Unit(benchmark::kMillisecond);

void BM_PMpsmSkewJoinStealing(benchmark::State& state) {
  PMpsmSkewBench(state, SchedulerKind::kStealing);
}
BENCHMARK(BM_PMpsmSkewJoinStealing)->Unit(benchmark::kMillisecond);

// Engine-path overhead A/B: the same P-MPSM join once through the
// direct variant class and once through the engine front door (plan +
// validate + dispatch on a reused session). The engine run forces
// P-MPSM so both sides execute identical work; the delta is the
// planner, which must stay under 1% of wall time (tracked in
// BENCH_kernels.json). MPSM_ENGINE_BENCH_LOG2 scales |R| (default
// 2^16).
void PMpsmEnginePathBench(benchmark::State& state, bool through_engine) {
  const auto topology = numa::Topology::HyPer1();
  const uint32_t team_size = 32;
  workload::DatasetSpec spec;
  spec.r_tuples = size_t{1} << GetEnvInt("MPSM_ENGINE_BENCH_LOG2", 16);
  spec.multiplicity = 4;
  spec.seed = 42;
  const auto dataset = workload::Generate(topology, team_size, spec);

  engine::EngineOptions engine_options;
  engine_options.workers = team_size;
  engine::Engine engine(topology, engine_options);
  WorkerTeam team(topology, team_size);

  double plan_ms = 0;
  for (auto _ : state) {
    CountFactory counts(team_size);
    if (through_engine) {
      engine::JoinSpec join;
      join.r = &dataset.r;
      join.s = &dataset.s;
      join.consumers = &counts;
      join.algorithm = engine::Algorithm::kPMpsm;
      auto report = engine.Execute(join);
      if (!report.ok()) {
        state.SkipWithError("engine join failed");
        return;
      }
      plan_ms = report->plan_seconds * 1e3;
    } else {
      auto info = PMpsmJoin().Execute(team, dataset.r, dataset.s, counts);
      if (!info.ok()) {
        state.SkipWithError("join failed");
        return;
      }
    }
    benchmark::DoNotOptimize(counts.Result());
  }
  if (through_engine) state.counters["plan_ms"] = plan_ms;
  state.SetItemsProcessed(state.iterations() *
                          (dataset.r.size() + dataset.s.size()));
}

void BM_PMpsmJoinDirect(benchmark::State& state) {
  PMpsmEnginePathBench(state, /*through_engine=*/false);
}
BENCHMARK(BM_PMpsmJoinDirect)->Unit(benchmark::kMillisecond);

void BM_PMpsmJoinEngine(benchmark::State& state) {
  PMpsmEnginePathBench(state, /*through_engine=*/true);
}
BENCHMARK(BM_PMpsmJoinEngine)->Unit(benchmark::kMillisecond);

// Tracing overhead A/B (docs/observability.md): the identical
// engine-path P-MPSM join with tracing off (the default — every
// record helper is one thread-local load and a taken-not branch) vs
// on (per-thread ring appends into the query's TraceSink). The Off
// row must stay within 1% of BM_PMpsmJoinEngine; the On-Off delta is
// the full cost of a Perfetto-loadable trace.
void TraceOverheadBench(benchmark::State& state, bool trace) {
  const auto topology = numa::Topology::HyPer1();
  const uint32_t team_size = 32;
  workload::DatasetSpec spec;
  spec.r_tuples = size_t{1} << GetEnvInt("MPSM_ENGINE_BENCH_LOG2", 16);
  spec.multiplicity = 4;
  spec.seed = 42;
  const auto dataset = workload::Generate(topology, team_size, spec);

  engine::EngineOptions engine_options;
  engine_options.workers = team_size;
  engine_options.trace = trace;
  engine::Engine engine(topology, engine_options);

  uint64_t trace_events = 0;
  for (auto _ : state) {
    CountFactory counts(team_size);
    engine::JoinSpec join;
    join.r = &dataset.r;
    join.s = &dataset.s;
    join.consumers = &counts;
    join.algorithm = engine::Algorithm::kPMpsm;
    auto report = engine.Execute(join);
    if (!report.ok()) {
      state.SkipWithError("engine join failed");
      return;
    }
    if (report->trace != nullptr) {
      trace_events = report->trace->Summary().events;
    }
    benchmark::DoNotOptimize(counts.Result());
  }
  if (trace) state.counters["trace_events"] = static_cast<double>(trace_events);
  state.SetItemsProcessed(state.iterations() *
                          (dataset.r.size() + dataset.s.size()));
}

void BM_TraceOverheadOff(benchmark::State& state) {
  TraceOverheadBench(state, /*trace=*/false);
}
BENCHMARK(BM_TraceOverheadOff)->Unit(benchmark::kMillisecond);

void BM_TraceOverheadOn(benchmark::State& state) {
  TraceOverheadBench(state, /*trace=*/true);
}
BENCHMARK(BM_TraceOverheadOn)->Unit(benchmark::kMillisecond);

// Metrics hot path: one Histogram::Record (bucket index from a bit
// scan + three relaxed fetch_adds) — the cost every io stall, query
// duration, and admission wait sample pays.
void BM_MetricsHistogramRecord(benchmark::State& state) {
  obs::Histogram histogram;
  uint64_t value = 1;
  for (auto _ : state) {
    histogram.Record(value);
    value = value * 6364136223846793005ull + 1442695040888963407ull;
    benchmark::DoNotOptimize(&histogram);
  }
  benchmark::DoNotOptimize(histogram.Count());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsHistogramRecord);

// Cross-query run-cache A/B (docs/cache.md): the same P-MPSM join over
// a 2^22-tuple public input, cold (phase 1 re-sorts S every query) vs
// warm (sorted runs served from the cache, only phases 2-4 run). The
// warm/cold ratio is what a repeat-join workload banks per query;
// |S| = 2^MPSM_CACHE_BENCH_LOG2 (default 22), |R| = |S|/4.
void RunCacheJoinBench(benchmark::State& state, bool warm) {
  const auto topology = numa::Topology::HyPer1();
  const uint32_t team = 32;
  workload::DatasetSpec spec;
  const int s_log2 = GetEnvInt("MPSM_CACHE_BENCH_LOG2", 22);
  spec.r_tuples = size_t{1} << (s_log2 - 2);
  spec.multiplicity = 4;  // |S| = 2^s_log2: phase 1 dominates
  spec.seed = 9;
  const auto dataset = workload::Generate(topology, team, spec);

  cache::RunCache run_cache;
  engine::EngineOptions options;
  options.workers = team;
  engine::Engine engine(topology, options);
  engine::JoinSpec join;
  join.r = &dataset.r;
  join.s = &dataset.s;
  join.algorithm = engine::Algorithm::kPMpsm;
  if (warm) {
    engine.set_run_cache(&run_cache);
    CountFactory prime(team);
    join.consumers = &prime;
    if (!engine.Execute(join).ok()) {
      state.SkipWithError("priming join failed");
      return;
    }
  }
  for (auto _ : state) {
    CountFactory counts(team);
    join.consumers = &counts;
    auto report = engine.Execute(join);
    if (!report.ok() ||
        (warm && report->run_source != engine::RunSource::kCachedBase)) {
      state.SkipWithError("join failed or missed the cache");
      return;
    }
    benchmark::DoNotOptimize(counts.Result());
  }
  state.SetItemsProcessed(state.iterations() *
                          (dataset.r.size() + dataset.s.size()));
}

void BM_RunCacheColdJoin(benchmark::State& state) {
  RunCacheJoinBench(state, /*warm=*/false);
}
BENCHMARK(BM_RunCacheColdJoin)->Unit(benchmark::kMillisecond);

void BM_RunCacheWarmJoin(benchmark::State& state) {
  RunCacheJoinBench(state, /*warm=*/true);
}
BENCHMARK(BM_RunCacheWarmJoin)->Unit(benchmark::kMillisecond);

// Freshness A/B after a 1% ingest: merge the delta runs on read
// against the cached base (what the cache does) vs re-sort the grown
// input from scratch every query (what a session without the cache
// must do once the rows are in the base table).
void RunCacheDeltaBench(benchmark::State& state, bool merge_on_read) {
  const auto topology = numa::Topology::HyPer1();
  const uint32_t team = 32;
  workload::DatasetSpec spec;
  const int s_log2 = GetEnvInt("MPSM_CACHE_BENCH_LOG2", 22);
  spec.r_tuples = size_t{1} << (s_log2 - 2);
  spec.multiplicity = 4;
  spec.seed = 9;
  auto dataset = workload::Generate(topology, team, spec);
  const auto delta = RandomTuples(dataset.s.size() / 100, 77);

  cache::RunCache run_cache;
  engine::EngineOptions options;
  options.workers = team;
  engine::Engine engine(topology, options);
  engine::JoinSpec join;
  join.r = &dataset.r;
  join.s = &dataset.s;
  join.algorithm = engine::Algorithm::kPMpsm;

  std::shared_ptr<const Relation> grown;
  if (merge_on_read) {
    engine.set_run_cache(&run_cache);
    CountFactory prime(team);
    join.consumers = &prime;
    if (!engine.Execute(join).ok()) {
      state.SkipWithError("priming join failed");
      return;
    }
    run_cache.Ingest(dataset.s, delta);
  } else {
    // Fold the delta into one grown relation outside the timed region;
    // every iteration then pays the full sort of 1.01 * |S|.
    run_cache.Ingest(dataset.s, delta);
    grown = run_cache.MaterializedView(dataset.s, topology, team);
    join.s = grown.get();
  }
  for (auto _ : state) {
    CountFactory counts(team);
    join.consumers = &counts;
    auto report = engine.Execute(join);
    if (!report.ok() ||
        (merge_on_read &&
         report->run_source != engine::RunSource::kCachedMerge)) {
      state.SkipWithError("join failed or missed the cache");
      return;
    }
    benchmark::DoNotOptimize(counts.Result());
  }
  state.SetItemsProcessed(state.iterations() *
                          (dataset.r.size() + dataset.s.size() +
                           delta.size()));
}

void BM_RunCacheDeltaMergeJoin(benchmark::State& state) {
  RunCacheDeltaBench(state, /*merge_on_read=*/true);
}
BENCHMARK(BM_RunCacheDeltaMergeJoin)->Unit(benchmark::kMillisecond);

void BM_RunCacheDeltaResortJoin(benchmark::State& state) {
  RunCacheDeltaBench(state, /*merge_on_read=*/false);
}
BENCHMARK(BM_RunCacheDeltaResortJoin)->Unit(benchmark::kMillisecond);

// Write-side cost: sorting + logging one delta batch (arg = log2
// batch tuples) — the price paid at ingest time so reads can merge.
void BM_RunCacheIngest(benchmark::State& state) {
  const size_t batch_n = size_t{1} << state.range(0);
  auto rel = Relation::FromVector(RandomTuples(1024, 5));
  const auto batch = RandomTuples(batch_n, 7);
  cache::RunCache run_cache;
  size_t since_reset = 0;
  for (auto _ : state) {
    run_cache.Ingest(rel, batch);
    if (++since_reset == 256) {  // bound the accumulating delta log
      state.PauseTiming();
      run_cache.InvalidateRelation(rel.id());
      since_reset = 0;
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations() * batch_n);
}
BENCHMARK(BM_RunCacheIngest)->Arg(12)->Arg(16);

// Spill-path I/O backend A/B on the lowmem join: D-MPSM with a
// synthetic 100 us/page device (PageStoreOptions::io_delay_us burns
// inside the software backends' reads). The sync backend eats the
// delay in every submitter — io_stall_ms tracks exactly that wait —
// while the threadpool overlaps it with merge compute (poll-or-steal,
// docs/io.md). The uring backend rides the real page cache (no
// synthetic delay is injectable into the kernel), so its row tracks
// raw subsystem overhead instead. MPSM_IO_BENCH_LOG2 scales |R|
// (default 2^15; CI smoke uses less).
void DMpsmIoBench(benchmark::State& state, io::IoBackendKind backend) {
  if (backend == io::IoBackendKind::kUring && !io::UringSupported()) {
    state.SkipWithError("io_uring unavailable on this host");
    return;
  }
  const auto topology = numa::Topology::Probe();
  const uint32_t team_size = 4;
  workload::DatasetSpec spec;
  spec.r_tuples = size_t{1} << GetEnvInt("MPSM_IO_BENCH_LOG2", 15);
  spec.multiplicity = 2;
  spec.seed = 42;
  const auto dataset = workload::Generate(topology, team_size, spec);
  WorkerTeam team(topology, team_size);

  disk::DMpsmOptions options;
  options.tuples_per_page = 512;
  options.pool_pages = 16;
  options.scheduler = SchedulerKind::kStealing;
  options.io_backend = backend;
  if (backend != io::IoBackendKind::kUring) options.io_delay_us = 100;

  double stall_ms = 0;
  double mean_depth = 0;
  double batches = 0;
  double pages = 0;
  for (auto _ : state) {
    CountFactory counts(team_size);
    disk::DMpsmReport report;
    auto info = disk::DMpsmJoin(options).Execute(team, dataset.r,
                                                 dataset.s, counts, &report);
    if (!info.ok()) {
      state.SkipWithError("join failed");
      return;
    }
    benchmark::DoNotOptimize(counts.Result());
    stall_ms = report.io_sched.io_stall_ns / 1e6;
    mean_depth = report.io_sched.mean_queue_depth;
    batches = static_cast<double>(report.io_sched.io_batches);
    pages = static_cast<double>(report.io_sched.pages_read);
  }
  state.counters["io_stall_ms"] = stall_ms;
  state.counters["mean_queue_depth"] = mean_depth;
  state.counters["io_batches"] = batches;
  state.counters["pages_read"] = pages;
  state.SetItemsProcessed(state.iterations() *
                          (dataset.r.size() + dataset.s.size()));
}

void BM_DMpsmIoSync(benchmark::State& state) {
  DMpsmIoBench(state, io::IoBackendKind::kSync);
}
BENCHMARK(BM_DMpsmIoSync)->Unit(benchmark::kMillisecond);

void BM_DMpsmIoThreadpool(benchmark::State& state) {
  DMpsmIoBench(state, io::IoBackendKind::kThreadpool);
}
BENCHMARK(BM_DMpsmIoThreadpool)->Unit(benchmark::kMillisecond);

void BM_DMpsmIoUring(benchmark::State& state) {
  DMpsmIoBench(state, io::IoBackendKind::kUring);
}
BENCHMARK(BM_DMpsmIoUring)->Unit(benchmark::kMillisecond);

// Crash-recovery journaling overhead A/B (docs/recovery.md): the same
// spilling join with the durable manifest off vs on. On pays one
// persistent named spool file plus ~3 records per worker, each an
// append + fdatasync behind a write barrier — the per-run/per-chunk
// commit discipline. The Off/On delta is the price of restartability
// on the BM_DMpsmIoThreadpool shape (budgeted under 3%).
void DMpsmJournalBench(benchmark::State& state, bool journal) {
  const auto topology = numa::Topology::Probe();
  const uint32_t team_size = 4;
  workload::DatasetSpec spec;
  spec.r_tuples = size_t{1} << GetEnvInt("MPSM_IO_BENCH_LOG2", 15);
  spec.multiplicity = 2;
  spec.seed = 42;
  const auto dataset = workload::Generate(topology, team_size, spec);
  WorkerTeam team(topology, team_size);

  disk::DMpsmOptions options;
  options.tuples_per_page = 512;
  options.pool_pages = 16;
  options.scheduler = SchedulerKind::kStealing;
  options.io_backend = io::IoBackendKind::kThreadpool;
  options.io_delay_us = 100;
  char dir_template[] = "/tmp/mpsm_bench_journal_XXXXXX";
  if (journal) {
    if (::mkdtemp(dir_template) == nullptr) {
      state.SkipWithError("mkdtemp failed");
      return;
    }
    options.directory = dir_template;
    options.recovery.journal = true;
    options.recovery.journal_path = std::string(dir_template) + "/m.jnl";
    options.recovery.spool_path = std::string(dir_template) + "/s.pages";
  }

  double commits = 0;
  for (auto _ : state) {
    CountFactory counts(team_size);
    disk::DMpsmReport report;
    auto info = disk::DMpsmJoin(options).Execute(team, dataset.r,
                                                 dataset.s, counts, &report);
    if (!info.ok()) {
      state.SkipWithError("join failed");
      return;
    }
    benchmark::DoNotOptimize(counts.Result());
    commits = static_cast<double>(report.journal_commits);
  }
  state.counters["journal_commits"] = commits;
  state.SetItemsProcessed(state.iterations() *
                          (dataset.r.size() + dataset.s.size()));
  if (journal) (void)::rmdir(dir_template);  // artifacts retired on success
}

void BM_DMpsmJournalOff(benchmark::State& state) {
  DMpsmJournalBench(state, /*journal=*/false);
}
BENCHMARK(BM_DMpsmJournalOff)->Unit(benchmark::kMillisecond);

void BM_DMpsmJournalOn(benchmark::State& state) {
  DMpsmJournalBench(state, /*journal=*/true);
}
BENCHMARK(BM_DMpsmJournalOn)->Unit(benchmark::kMillisecond);

// Buffer pool frame micro-costs (docs/storage.md): one pin+decode+
// unpin round trip when the page is resident (hit: pure frame-table
// work), when it must be read and another frame evicted (miss: one
// device round trip through the scheduler at page-cache speed), and
// one AppendPage when write-back absorbs the device write (the
// foreground cost of spooling a page).
struct PoolBenchHarness {
  explicit PoolBenchHarness(size_t frames, size_t tuples_per_page = 512) {
    disk::PageStoreOptions store_options;
    store_options.tuples_per_page = tuples_per_page;
    store = std::make_unique<disk::PageStore>(store_options);
    if (!store->Open().ok()) return;
    io::IoSchedulerOptions io_options;
    io_options.backend = io::IoBackendKind::kThreadpool;
    io_options.completion_queues = 2;
    auto sched = io::IoScheduler::Create(store->fd(), store->page_bytes(),
                                         store->io_delay_us(), io_options);
    if (!sched.ok()) return;
    scheduler = std::move(*sched);
    bufferpool::BufferPoolOptions pool_options;
    pool_options.frames = frames;
    auto created = bufferpool::BufferPool::Create(store.get(),
                                                  scheduler.get(),
                                                  pool_options);
    if (created.ok()) pool = std::move(*created);
  }

  ~PoolBenchHarness() {
    if (pool != nullptr) (void)pool->Close();
  }

  /// Pin `page`, decode it into `out`, unpin. False on any failure.
  bool PinDecodeUnpin(disk::PageId page, Tuple* out) {
    bufferpool::PagePinRequest request;
    request.page = page;
    bufferpool::PagePinCompletion completion;
    if (!pool->SubmitPins(&request, 1).ok()) return false;
    while (pool->DrainPins(0, &completion, 1) == 0) {
      if (!pool->Pump(true).ok()) return false;
    }
    if (!completion.status.ok()) return false;
    const auto count = store->DecodePage(pool->Data(completion.frame), out);
    pool->Unpin(completion.frame);
    return count.ok();
  }

  std::unique_ptr<disk::PageStore> store;
  std::unique_ptr<io::IoScheduler> scheduler;
  std::unique_ptr<bufferpool::BufferPool> pool;
};

void BM_BufferPoolHit(benchmark::State& state) {
  constexpr size_t kPages = 64;
  PoolBenchHarness harness(/*frames=*/kPages + 8);
  std::vector<Tuple> tuples(harness.store->tuples_per_page(), Tuple{1, 2});
  for (size_t p = 0; p < kPages; ++p) {
    if (!harness.store->WritePage(tuples.data(), tuples.size()).ok()) {
      state.SkipWithError("spool write failed");
      return;
    }
  }
  // Warm: after one pass everything is resident.
  std::vector<Tuple> out(harness.store->tuples_per_page());
  for (size_t p = 0; p < kPages; ++p) {
    if (!harness.PinDecodeUnpin(p, out.data())) {
      state.SkipWithError("warmup pin failed");
      return;
    }
  }
  size_t page = 0;
  for (auto _ : state) {
    if (!harness.PinDecodeUnpin(page, out.data())) {
      state.SkipWithError("pin failed");
      return;
    }
    page = (page + 1) % kPages;
  }
  const auto stats = harness.pool->stats();
  state.counters["hit_rate"] =
      static_cast<double>(stats.hits) / (stats.hits + stats.misses);
  state.SetItemsProcessed(state.iterations() * tuples.size());
}
BENCHMARK(BM_BufferPoolHit);

void BM_BufferPoolMiss(benchmark::State& state) {
  // 4 frames cycling over 64 pages: every pin evicts and reads.
  constexpr size_t kPages = 64;
  PoolBenchHarness harness(/*frames=*/4);
  std::vector<Tuple> tuples(harness.store->tuples_per_page(), Tuple{1, 2});
  for (size_t p = 0; p < kPages; ++p) {
    if (!harness.store->WritePage(tuples.data(), tuples.size()).ok()) {
      state.SkipWithError("spool write failed");
      return;
    }
  }
  std::vector<Tuple> out(harness.store->tuples_per_page());
  size_t page = 0;
  for (auto _ : state) {
    if (!harness.PinDecodeUnpin(page, out.data())) {
      state.SkipWithError("pin failed");
      return;
    }
    page = (page + 1) % kPages;
  }
  const auto stats = harness.pool->stats();
  state.counters["evictions"] = static_cast<double>(stats.evictions);
  state.SetItemsProcessed(state.iterations() * tuples.size());
}
BENCHMARK(BM_BufferPoolMiss);

void BM_BufferPoolWriteback(benchmark::State& state) {
  // Foreground AppendPage cost while the flusher retires frames in
  // the background; append_stall_ms is the time the appender actually
  // waited for a free frame.
  PoolBenchHarness harness(/*frames=*/32);
  std::vector<Tuple> tuples(harness.store->tuples_per_page(), Tuple{1, 2});
  for (auto _ : state) {
    if (!harness.pool->AppendPage(tuples.data(), tuples.size()).ok()) {
      state.SkipWithError("append failed");
      return;
    }
  }
  if (!harness.pool->FlushAll().ok()) {
    state.SkipWithError("flush failed");
    return;
  }
  const auto stats = harness.pool->stats();
  state.counters["writebacks"] = static_cast<double>(stats.writebacks);
  state.counters["append_stall_ms"] = stats.append_stall_ns / 1e6;
  state.SetItemsProcessed(state.iterations() * tuples.size());
}
BENCHMARK(BM_BufferPoolWriteback);

// Spool-write A/B on the synthetic device (docs/storage.md): the same
// D-MPSM join with run spooling blocking on every page write (sync)
// vs riding the pool's write-back cache. spool_stall_ms is
// DMpsmReport::spool_write_stall_ns — the wait the flusher removes
// from the foreground sort phases.
void DMpsmSpoolBench(benchmark::State& state, bool synchronous_spool) {
  const auto topology = numa::Topology::Probe();
  const uint32_t team_size = 4;
  workload::DatasetSpec spec;
  spec.r_tuples = size_t{1} << GetEnvInt("MPSM_IO_BENCH_LOG2", 15);
  spec.multiplicity = 2;
  spec.seed = 42;
  const auto dataset = workload::Generate(topology, team_size, spec);
  WorkerTeam team(topology, team_size);

  disk::DMpsmOptions options;
  options.tuples_per_page = 512;
  options.pool_pages = 16;
  options.io_backend = io::IoBackendKind::kThreadpool;
  options.io_delay_us = 100;
  options.synchronous_spool = synchronous_spool;

  double spool_stall_ms = 0;
  double writebacks = 0;
  for (auto _ : state) {
    CountFactory counts(team_size);
    disk::DMpsmReport report;
    auto info = disk::DMpsmJoin(options).Execute(team, dataset.r,
                                                 dataset.s, counts, &report);
    if (!info.ok()) {
      state.SkipWithError("join failed");
      return;
    }
    benchmark::DoNotOptimize(counts.Result());
    spool_stall_ms = report.spool_write_stall_ns / 1e6;
    writebacks = static_cast<double>(report.pool.writebacks);
  }
  state.counters["spool_stall_ms"] = spool_stall_ms;
  state.counters["writebacks"] = writebacks;
  state.SetItemsProcessed(state.iterations() *
                          (dataset.r.size() + dataset.s.size()));
}

void BM_DMpsmSpoolSync(benchmark::State& state) {
  DMpsmSpoolBench(state, /*synchronous_spool=*/true);
}
BENCHMARK(BM_DMpsmSpoolSync)->Unit(benchmark::kMillisecond);

void BM_DMpsmSpoolWriteback(benchmark::State& state) {
  DMpsmSpoolBench(state, /*synchronous_spool=*/false);
}
BENCHMARK(BM_DMpsmSpoolWriteback)->Unit(benchmark::kMillisecond);

void BM_CdfEstimateRank(benchmark::State& state) {
  auto data = RandomTuples(1 << 20);
  sort::RadixIntroSort(data.data(), data.size());
  Run run{data.data(), data.size(), 0};
  const Cdf cdf = Cdf::FromHistograms({BuildEquiHeightHistogram(run, 128)});
  Xoshiro256 rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cdf.EstimateRank(rng.NextBounded(uint64_t{1} << 32)));
  }
}
BENCHMARK(BM_CdfEstimateRank);

// Concurrent join service throughput A/B (docs/service.md): N
// closed-loop clients each submit MPSM_SERVICE_BENCH_QUERIES queries
// joining their own private input against one shared public relation.
// Baseline: one Engine serialized behind a mutex (what a server
// without the service layer would do). Service: JoinService with
// admission control and shared-sort batching. Counters report
// queries/sec and client-observed p50/p99 latency; the arg is the
// client count. `cached` wires the cross-lane run cache: the shared
// public input is sorted once and every later query merges on read.
void ServiceThroughputBench(benchmark::State& state, bool through_service,
                            bool cached = false) {
  const auto topology = numa::Topology::Simulated(2, 4);
  constexpr uint32_t kTeam = 4;
  const size_t clients = static_cast<size_t>(state.range(0));
  const size_t per_client =
      static_cast<size_t>(GetEnvInt("MPSM_SERVICE_BENCH_QUERIES", 4));

  workload::DatasetSpec public_spec;
  public_spec.r_tuples = size_t{1}
                         << GetEnvInt("MPSM_SERVICE_BENCH_LOG2", 15);
  public_spec.multiplicity = 2;
  public_spec.s_mode = workload::SKeyMode::kIndependent;
  public_spec.seed = 7;
  const auto shared = workload::Generate(topology, kTeam, public_spec);

  std::vector<workload::Dataset> privates;
  privates.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    workload::DatasetSpec private_spec;
    private_spec.r_tuples = 1024;
    private_spec.multiplicity = 1;  // this side's S is unused
    private_spec.s_mode = workload::SKeyMode::kIndependent;
    private_spec.seed = 100 + c;
    privates.push_back(workload::Generate(topology, kTeam, private_spec));
  }

  engine::EngineOptions engine_options;
  engine_options.workers = kTeam;
  // Pin the algorithm so both sides run identical per-query work; the
  // delta is the concurrency layer.
  engine_options.force_algorithm = engine::Algorithm::kPMpsm;

  std::vector<double> latencies_ms;
  double elapsed_s = 0;
  for (auto _ : state) {
    latencies_ms.clear();
    latencies_ms.reserve(clients * per_client);
    std::mutex latency_mu;

    std::optional<service::JoinService> service;
    std::optional<engine::Engine> serial_engine;
    std::mutex serial_mu;
    if (through_service) {
      service::ServiceOptions options;
      options.lanes =
          static_cast<uint32_t>(GetEnvInt("MPSM_SERVICE_BENCH_LANES", 2));
      options.max_batch = 32;
      if (cached) options.run_cache_bytes = uint64_t{1} << 30;
      options.engine = engine_options;
      service.emplace(topology, options);
    } else {
      serial_engine.emplace(topology, engine_options);
    }

    std::atomic<bool> failed{false};
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        for (size_t k = 0; k < per_client; ++k) {
          CountFactory counts(kTeam);
          engine::JoinSpec spec;
          spec.r = &privates[c].r;
          spec.s = &shared.s;
          spec.consumers = &counts;
          const auto q0 = std::chrono::steady_clock::now();
          bool ok = false;
          if (through_service) {
            auto id = service->Submit(spec);
            ok = id.ok() && service->Wait(*id).ok();
          } else {
            std::lock_guard<std::mutex> lock(serial_mu);
            ok = serial_engine->Execute(spec).ok();
          }
          if (!ok) failed.store(true);
          const double ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - q0)
                                .count();
          std::lock_guard<std::mutex> lock(latency_mu);
          latencies_ms.push_back(ms);
        }
      });
    }
    for (auto& t : threads) t.join();
    elapsed_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              start)
                    .count();
    service.reset();  // lanes joined inside the timed region's iteration
    if (failed.load()) {
      state.SkipWithError("join failed");
      return;
    }
  }
  std::sort(latencies_ms.begin(), latencies_ms.end());
  if (!latencies_ms.empty() && elapsed_s > 0) {
    const size_t n = latencies_ms.size();
    state.counters["qps"] = static_cast<double>(n) / elapsed_s;
    state.counters["p50_ms"] = latencies_ms[n / 2];
    state.counters["p99_ms"] = latencies_ms[std::min(n - 1, n * 99 / 100)];
  }
  state.SetItemsProcessed(state.iterations() * clients * per_client);
}

void BM_ServiceThroughputSerial(benchmark::State& state) {
  ServiceThroughputBench(state, /*through_service=*/false);
}
BENCHMARK(BM_ServiceThroughputSerial)
    ->Arg(1)
    ->Arg(8)
    ->Arg(64)
    ->Arg(512)
    ->Unit(benchmark::kMillisecond);

void BM_ServiceThroughputService(benchmark::State& state) {
  ServiceThroughputBench(state, /*through_service=*/true);
}
BENCHMARK(BM_ServiceThroughputService)
    ->Arg(1)
    ->Arg(8)
    ->Arg(64)
    ->Arg(512)
    ->Unit(benchmark::kMillisecond);

void BM_ServiceThroughputCached(benchmark::State& state) {
  ServiceThroughputBench(state, /*through_service=*/true, /*cached=*/true);
}
BENCHMARK(BM_ServiceThroughputCached)
    ->Arg(1)
    ->Arg(8)
    ->Arg(64)
    ->Arg(512)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mpsm

BENCHMARK_MAIN();

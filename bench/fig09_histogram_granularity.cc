// Figure 9: fine-grained histograms at little overhead.
//
// Sweeps the radix-histogram granularity 32..2048 buckets (B = 5..11)
// over the phase-2 pipeline — histogram build, prefix-sum/splitter
// computation, partitioning (scatter) — and compares against
// comparison-based partitioning with explicit bounds (binary search
// per tuple).
//
// Paper result: raising the granularity costs almost nothing (the
// histogram pass is branch-free), while comparison-based partitioning
// is far slower. These are real single-thread kernel measurements —
// no machine model involved.
#include <algorithm>
#include <vector>

#include "bench/common.h"
#include "partition/key_normalizer.h"
#include "partition/prefix_scatter.h"
#include "partition/radix_histogram.h"
#include "partition/splitters.h"
#include "util/timer.h"

namespace mpsm::bench {
namespace {

void Main() {
  Banner("Figure 9", "histogram granularity sweep (real kernel times)");
  const auto topology = numa::Topology::HyPer1();
  const uint32_t team_size = BenchWorkers();

  workload::DatasetSpec spec;
  spec.r_tuples = BenchRTuples() * 4;  // single-threaded kernel: use more
  spec.multiplicity = 0;               // R only
  spec.r_distribution = workload::KeyDistribution::kSkewLowEnd;
  spec.seed = 42;
  const auto dataset = workload::Generate(topology, 1, spec);
  const Chunk& chunk = dataset.r.chunk(0);

  TablePrinter table;
  table.SetHeader({"granularity", "histogram[ms]", "prefix+splitters[ms]",
                   "partition[ms]", "total[ms]"});

  std::vector<Tuple> out(chunk.size);
  for (uint32_t bits = 5; bits <= 11; ++bits) {
    KeyNormalizer normalizer(0, spec.key_domain - 1, bits);

    WallTimer t1;
    const auto histogram =
        BuildRadixHistogram(chunk.data, chunk.size, normalizer);
    const double hist_ms = t1.ElapsedMillis();

    WallTimer t2;
    const auto splitters =
        ComputeSplitters(histogram, {}, team_size, MakePMpsmCost(team_size));
    std::vector<uint64_t> partition_hist(team_size, 0);
    for (size_t c = 0; c < histogram.size(); ++c) {
      partition_hist[splitters.PartitionOfCluster(static_cast<uint32_t>(c))] +=
          histogram[c];
    }
    const auto plan = ComputeScatterPlan({partition_hist});
    const double prefix_ms = t2.ElapsedMillis();

    WallTimer t3;
    std::vector<Tuple*> dest(team_size);
    std::vector<uint64_t> offsets(team_size + 1, 0);
    for (uint32_t p = 0; p < team_size; ++p) {
      offsets[p + 1] = offsets[p] + plan.partition_sizes[p];
      dest[p] = out.data() + offsets[p];
    }
    std::vector<uint64_t> cursor(team_size, 0);
    ScatterChunk(chunk.data, chunk.size,
                 [&](uint64_t key) {
                   return splitters.PartitionOfCluster(
                       normalizer.Cluster(key));
                 },
                 dest.data(), cursor.data());
    const double scatter_ms = t3.ElapsedMillis();

    table.AddRow({std::to_string(1u << bits), Ms(hist_ms), Ms(prefix_ms),
                  Ms(scatter_ms), Ms(hist_ms + prefix_ms + scatter_ms)});
  }

  // Comparison-based partitioning with explicit bounds (the right-hand
  // bar of Figure 9): binary-search each tuple into T range bounds.
  {
    std::vector<uint64_t> bounds;
    for (uint32_t p = 1; p < team_size; ++p) {
      bounds.push_back(spec.key_domain / team_size * p);
    }
    WallTimer t1;
    std::vector<uint64_t> histogram(team_size, 0);
    for (size_t i = 0; i < chunk.size; ++i) {
      const auto it = std::upper_bound(bounds.begin(), bounds.end(),
                                       chunk.data[i].key);
      ++histogram[it - bounds.begin()];
    }
    const double hist_ms = t1.ElapsedMillis();

    WallTimer t3;
    std::vector<Tuple*> dest(team_size);
    std::vector<uint64_t> offsets(team_size + 1, 0);
    for (uint32_t p = 0; p < team_size; ++p) {
      offsets[p + 1] = offsets[p] + histogram[p];
      dest[p] = out.data() + offsets[p];
    }
    std::vector<uint64_t> cursor(team_size, 0);
    ScatterChunk(chunk.data, chunk.size,
                 [&](uint64_t key) {
                   const auto it =
                       std::upper_bound(bounds.begin(), bounds.end(), key);
                   return static_cast<uint32_t>(it - bounds.begin());
                 },
                 dest.data(), cursor.data());
    const double scatter_ms = t3.ElapsedMillis();
    table.AddRow({"explicit bounds", Ms(hist_ms), "-", Ms(scatter_ms),
                  Ms(hist_ms + scatter_ms)});
  }

  table.Print();
  std::printf(
      "\nShape checks: histogram/partition cost ~flat from 32 to 2048\n"
      "buckets (higher precision is free); comparison-based explicit\n"
      "bounds pay a branchy binary search per tuple.\n");
}

}  // namespace
}  // namespace mpsm::bench

int main() { mpsm::bench::Main(); }

// §2.3 claim: the three-phase Radix/IntroSort is ~30% faster than the
// STL sort on 16-byte key/payload tuples. Real measurements.
#include <algorithm>
#include <vector>

#include "bench/common.h"
#include "sort/radix_introsort.h"
#include "util/timer.h"

namespace mpsm::bench {
namespace {

double MeasureMs(const std::vector<Tuple>& input,
                 void (*sorter)(Tuple*, size_t), int repeats) {
  double best = 1e300;
  for (int rep = 0; rep < repeats; ++rep) {
    auto data = input;
    WallTimer timer;
    sorter(data.data(), data.size());
    best = std::min(best, timer.ElapsedMillis());
    if (!sort::IsSortedByKey(data.data(), data.size())) {
      std::fprintf(stderr, "sort produced unsorted output!\n");
      std::exit(1);
    }
  }
  return best;
}

void StdSort(Tuple* data, size_t n) {
  std::sort(data, data + n, TupleKeyLess{});
}

void Main() {
  Banner("Table (§2.3)", "Radix/IntroSort vs std::sort (real times)");

  TablePrinter table;
  table.SetHeader({"tuples", "distribution", "std::sort[ms]",
                   "introsort[ms]", "radix/intro[ms]", "speedup vs stl"});

  const auto topology = numa::Topology::HyPer1();
  for (const size_t n : {BenchRTuples(), BenchRTuples() * 4}) {
    for (const auto dist : {workload::KeyDistribution::kUniform,
                            workload::KeyDistribution::kSkewLowEnd}) {
      workload::DatasetSpec spec;
      spec.r_tuples = n;
      spec.multiplicity = 0;
      spec.r_distribution = dist;
      spec.seed = 42;
      const auto dataset = workload::Generate(topology, 1, spec);
      const auto input = dataset.r.ToVector();

      const double stl_ms = MeasureMs(input, &StdSort, 3);
      const double intro_ms = MeasureMs(input, &sort::IntroSort, 3);
      const double radix_ms = MeasureMs(input, &sort::RadixIntroSort, 3);
      table.AddRow(
          {std::to_string(n),
           dist == workload::KeyDistribution::kUniform ? "uniform"
                                                       : "skew 80:20",
           Ms(stl_ms), Ms(intro_ms), Ms(radix_ms), Ratio(stl_ms, radix_ms)});
    }
  }

  table.Print();
  std::printf(
      "\nShape check: the paper reports ~30%% (1.3x) over the STL sort;\n"
      "the MSD radix pass plus introsort should beat std::sort here too.\n");
}

}  // namespace
}  // namespace mpsm::bench

int main() { mpsm::bench::Main(); }

// Figure 15: location skew in S (multiplicity 4, 32 workers).
//
// Three arrangements:
//   - no location skew: every private run joins against all T public
//     runs ("T join partitions");
//   - extreme location skew, partners local: S arrives roughly key-
//     ordered, so worker i's range partition finds all partners in its
//     own run S_i ("1 local join partition");
//   - extreme location skew, partners remote: same but the chunk that
//     holds worker i's key range was loaded by worker i+1 ("1 remote
//     join partition").
//
// Paper result: location skew *helps* — the join phase shrinks because
// (T-1) of the interpolation probes find no relevant data — and the
// local/remote difference is small (sequential remote reads, C2).
#include <vector>

#include "bench/common.h"

namespace mpsm::bench {
namespace {

/// Rotates chunk contents: new chunk i gets old chunk (i+1) % T.
Relation RotateChunks(const numa::Topology& topology, const Relation& rel) {
  Relation rotated =
      Relation::Allocate(topology, rel.size(), rel.num_chunks());
  const uint32_t chunks = rel.num_chunks();
  for (uint32_t c = 0; c < chunks; ++c) {
    const Chunk& src = rel.chunk((c + 1) % chunks);
    Chunk& dst = rotated.chunk(c);
    // Equal-size chunks by construction (same total, same count) except
    // possibly the remainder chunks; copy the overlap and wrap the rest.
    const size_t n = std::min(src.size, dst.size);
    std::copy(src.begin(), src.begin() + n, dst.data);
    for (size_t i = n; i < dst.size; ++i) dst.data[i] = src.data[n - 1];
  }
  return rotated;
}

void Main() {
  Banner("Figure 15", "location skew in S (multiplicity 4)");
  const auto topology = numa::Topology::HyPer1();
  auto engine = MakeBenchEngine(topology);

  workload::DatasetSpec spec;
  spec.r_tuples = BenchRTuples();
  spec.multiplicity = 4;
  spec.seed = 42;

  spec.s_arrangement = workload::Arrangement::kShuffled;
  const auto shuffled = workload::Generate(topology, BenchWorkers(), spec);
  spec.s_arrangement = workload::Arrangement::kKeyOrdered;
  const auto ordered = workload::Generate(topology, BenchWorkers(), spec);
  const Relation rotated = RotateChunks(topology, ordered.s);

  const auto none = RunAndModel(workload::Algorithm::kPMpsm, engine,
                                shuffled.r, shuffled.s);
  const auto local = RunAndModel(workload::Algorithm::kPMpsm, engine,
                                 ordered.r, ordered.s);
  const auto remote = RunAndModel(workload::Algorithm::kPMpsm, engine,
                                  ordered.r, rotated);

  TablePrinter table;
  table.SetHeader({"location skew", "model[ms]", "join ph4[ms]", "wall[ms]",
                   "vs no-skew"});
  auto add = [&](const char* name, const BenchRun& run) {
    table.AddRow({name, Ms(run.modeled_ms),
                  Ms(run.modeled.phase_seconds[kPhaseJoin] * 1e3),
                  Ms(run.wall_ms), Ratio(run.modeled_ms, none.modeled_ms)});
  };
  add("T join partitions", none);
  add("1 local join partition", local);
  add("1 remote join partition", remote);

  table.Print();
  std::printf(
      "\nShape checks: extreme location skew reduces the join phase (only\n"
      "one S run holds partners); remote vs local partner run differs by\n"
      "only the sequential-remote factor (~1.2x on phase 4 traffic).\n");
}

}  // namespace
}  // namespace mpsm::bench

int main() { mpsm::bench::Main(); }

// Figure 16: negatively correlated skew and splitter quality.
//
// Dataset: R with 80% of keys at the HIGH 20% of the domain, S (4x) with
// 80% of keys at the LOW 20% — the worst case for static partitioning.
// Compare equi-height R partitioning (Figure 16b) against equi-cost
// R-and-S splitters (Figure 16c), with B = 10 histogram bits as in the
// paper.
//
// Paper result: equi-height partitioning leaves the low-key workers
// with far more join work (unbalanced "green" phase-4 bars); the
// cost-balanced splitters even out per-worker totals.
#include <algorithm>
#include <vector>

#include "bench/common.h"
#include "core/p_mpsm.h"

namespace mpsm::bench {
namespace {

struct Balance {
  BenchRun run;
  double worker_max_ms = 0;
  double worker_min_ms = 0;
  double worker_avg_ms = 0;
  double phase4_ms = 0;
};

Balance RunWithSplitters(engine::Engine& engine, const Relation& r,
                         const Relation& s, bool cost_balanced,
                         SchedulerKind scheduler = SchedulerKind::kStatic) {
  MpsmOptions options;
  options.cost_balanced_splitters = cost_balanced;
  options.radix_bits = 10;  // paper: granularity 1024 for this experiment
  options.scheduler = scheduler;
  Balance balance;
  balance.run =
      RunAndModel(workload::Algorithm::kPMpsm, engine, r, s, options);
  const auto& per_worker = balance.run.modeled.worker_seconds;
  balance.worker_max_ms =
      *std::max_element(per_worker.begin(), per_worker.end()) * 1e3;
  balance.worker_min_ms =
      *std::min_element(per_worker.begin(), per_worker.end()) * 1e3;
  double sum = 0;
  for (double t : per_worker) sum += t;
  balance.worker_avg_ms = sum / per_worker.size() * 1e3;
  balance.phase4_ms = balance.run.modeled.phase_seconds[kPhaseJoin] * 1e3;
  return balance;
}

void Main() {
  Banner("Figure 16", "negatively correlated 80:20 skew, splitter quality");
  const auto topology = numa::Topology::HyPer1();
  auto engine = MakeBenchEngine(topology);

  workload::DatasetSpec spec;
  spec.r_tuples = BenchRTuples();
  spec.multiplicity = 4;
  // Scale the key domain with |R| (the paper's 2^32 / 1600M ~ 2.56
  // keys per R tuple) so the match density — and with it the join-phase
  // imbalance — survives the scale-down.
  spec.key_domain = spec.r_tuples * 5 / 2;
  spec.r_distribution = workload::KeyDistribution::kSkewHighEnd;
  spec.s_distribution = workload::KeyDistribution::kSkewLowEnd;
  spec.s_mode = workload::SKeyMode::kIndependent;
  spec.seed = 42;
  const auto dataset = workload::Generate(topology, BenchWorkers(), spec);

  const auto equi_height =
      RunWithSplitters(engine, dataset.r, dataset.s, /*cost_balanced=*/false);
  const auto equi_cost =
      RunWithSplitters(engine, dataset.r, dataset.s, /*cost_balanced=*/true);
  // Scheduler A/B (docs/scheduler.md): the same splitters with morsel-
  // driven work stealing, so idle workers absorb the overloaded
  // workers' phase-4 merges.
  const auto equi_height_stealing =
      RunWithSplitters(engine, dataset.r, dataset.s, /*cost_balanced=*/false,
                       SchedulerKind::kStealing);
  const auto equi_cost_stealing =
      RunWithSplitters(engine, dataset.r, dataset.s, /*cost_balanced=*/true,
                       SchedulerKind::kStealing);

  TablePrinter table;
  table.SetHeader({"partitioning", "model total[ms]", "model p4[ms]",
                   "worker max[ms]", "worker min[ms]", "imbalance max/avg",
                   "wall[ms]"});
  auto add = [&](const char* name, const Balance& b) {
    table.AddRow({name, Ms(b.run.modeled_ms), Ms(b.phase4_ms),
                  Ms(b.worker_max_ms), Ms(b.worker_min_ms),
                  Ratio(b.worker_max_ms, b.worker_avg_ms),
                  Ms(b.run.wall_ms)});
  };
  add("equi-height R (fig 16b)", equi_height);
  add("equi-cost R+S (fig 16c)", equi_cost);
  add("equi-height + stealing", equi_height_stealing);
  add("equi-cost + stealing", equi_cost_stealing);
  table.Print();
  std::printf("\nscheduler A/B: stealing cuts the equi-height phase-4 "
              "bottleneck %s (model)\n",
              Ratio(equi_height.phase4_ms, equi_height_stealing.phase4_ms)
                  .c_str());

  // Per-worker profile (modeled), the bar chart of Figures 16b/16c.
  std::printf("\nPer-worker modeled totals [ms]:\n");
  TablePrinter workers;
  workers.SetHeader({"worker", "equi-height", "equi-cost"});
  for (uint32_t w = 0; w < BenchWorkers(); ++w) {
    workers.AddRow({std::to_string(w),
                    Ms(equi_height.run.modeled.worker_seconds[w] * 1e3),
                    Ms(equi_cost.run.modeled.worker_seconds[w] * 1e3)});
  }
  workers.Print();
  std::printf(
      "\nShape checks: equi-height shows a steep per-worker gradient\n"
      "(low-key workers overloaded by S); equi-cost flattens it and\n"
      "reduces the bottleneck (response) time.\n");
}

}  // namespace
}  // namespace mpsm::bench

int main() { mpsm::bench::Main(); }

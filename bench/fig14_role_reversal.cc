// Figure 14: effect of role reversal — R (smaller) vs S (larger) as the
// private input, multiplicity 1/4/8/16.
//
// Paper result: with |S| = m*|R|, m > 1, making the smaller relation
// private wins, and the gap grows with m (complexity §3.2:
// |R|/T + |R| + |S|/T  vs  |S|/T + |S| + |R|/T).
#include <vector>

#include "bench/common.h"

namespace mpsm::bench {
namespace {

// Figure 14 (ms): R private (same series as fig. 12) vs S private.
struct PaperRow {
  double r_private, s_private;
};
const std::vector<std::pair<int, PaperRow>> kPaper = {
    {1, {33482, 32790}},
    {4, {59202, 110822}},
    {8, {97027, 221183}},
    {16, {169267, 455114}},
};

void Main() {
  Banner("Figure 14", "role reversal: private input choice");
  const auto topology = numa::Topology::HyPer1();
  auto engine = MakeBenchEngine(topology);

  TablePrinter table;
  table.SetHeader({"multiplicity", "private", "paper[ms]", "model[ms]",
                   "wall[ms]", "model penalty", "paper penalty"});

  for (const auto& [multiplicity, paper] : kPaper) {
    workload::DatasetSpec spec;
    spec.r_tuples = BenchRTuples();
    spec.multiplicity = multiplicity;
    spec.seed = 42;
    const auto dataset = workload::Generate(topology, BenchWorkers(), spec);

    const auto r_private =
        RunAndModel(workload::Algorithm::kPMpsm, engine, dataset.r, dataset.s);
    // Role reversal: swap the arguments.
    const auto s_private =
        RunAndModel(workload::Algorithm::kPMpsm, engine, dataset.s, dataset.r);

    table.AddRow({std::to_string(multiplicity), "R (|R|)",
                  Ms(paper.r_private), Ms(r_private.modeled_ms),
                  Ms(r_private.wall_ms), "1.00x", "1.00x"});
    table.AddRow({std::to_string(multiplicity), "S (m*|R|)",
                  Ms(paper.s_private), Ms(s_private.modeled_ms),
                  Ms(s_private.wall_ms),
                  Ratio(s_private.modeled_ms, r_private.modeled_ms),
                  Ratio(paper.s_private, paper.r_private)});
  }

  table.Print();
  std::printf(
      "\nShape checks: equal at multiplicity 1; S-private penalty grows\n"
      "with multiplicity (the larger input should stay public).\n");
}

}  // namespace
}  // namespace mpsm::bench

int main() { mpsm::bench::Main(); }

// Observability layer (src/obs): trace-sink ring invariants, the log
// histogram against a sorted-vector oracle, exporter goldens, the
// tracing-off zero-allocation guarantee, and per-query trace isolation
// under a concurrent JoinService sweep.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/consumers.h"
#include "engine/engine.h"
#include "numa/topology.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/join_service.h"
#include "workload/generator.h"

namespace mpsm::obs {

// Allocation hooks for the zero-allocation check; external linkage so
// the replaced global operator new (bottom of this file) can see them.
// Counting is scoped to the guard so gtest's own allocations stay out.
std::atomic<uint64_t> g_test_allocations{0};
std::atomic<bool> g_count_allocations{false};

namespace {

// --- TraceSink ring invariants -------------------------------------

TEST(TraceSinkTest, SpansRecordInEndOrderAndNest) {
  TraceSink sink(/*query_id=*/7);
  ScopedTraceThread scope(&sink, "caller", 0);
  {
    TraceSpan outer(kCatQuery, "outer");
    {
      TraceSpan inner(kCatPhase, "inner");
      inner.arg1("morsels", 3);
    }
    TraceInstant(kCatIo, "tick", "pages", 1);
  }

  size_t count = 0;
  const TraceEvent* events = sink.RingEvents(0, &count);
  ASSERT_EQ(count, 3u);
  // RAII spans close inner-first: ring order is inner, tick, outer.
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_STREQ(events[1].name, "tick");
  EXPECT_STREQ(events[2].name, "outer");
  EXPECT_EQ(events[0].arg1, 3u);
  EXPECT_EQ(events[1].dur_ns, 0);  // instant

  // Nesting: outer contains inner.
  const TraceEvent& inner = events[0];
  const TraceEvent& outer = events[2];
  EXPECT_LE(outer.start_ns, inner.start_ns);
  EXPECT_GE(outer.start_ns + outer.dur_ns, inner.start_ns + inner.dur_ns);
  EXPECT_GE(inner.dur_ns, 0);
  EXPECT_GE(outer.dur_ns, inner.dur_ns);
}

TEST(TraceSinkTest, EachThreadGetsItsOwnRing) {
  TraceSink sink(/*query_id=*/1);
  constexpr int kThreads = 4;
  constexpr int kEventsPerThread = 32;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&sink, t] {
      ScopedTraceThread scope(&sink, "worker", static_cast<uint32_t>(t));
      for (int i = 0; i < kEventsPerThread; ++i) {
        TraceInstant(kCatMorsel, "morsel", "i", static_cast<uint64_t>(i));
      }
    });
  }
  for (auto& thread : threads) thread.join();

  ASSERT_EQ(sink.threads(), static_cast<size_t>(kThreads));
  EXPECT_EQ(sink.dropped_events(), 0u);
  for (int t = 0; t < kThreads; ++t) {
    size_t count = 0;
    const TraceEvent* events = sink.RingEvents(static_cast<size_t>(t), &count);
    ASSERT_EQ(count, static_cast<size_t>(kEventsPerThread));
    for (int i = 0; i < kEventsPerThread; ++i) {
      // Per-ring order is the thread's own program order.
      EXPECT_EQ(events[i].arg1, static_cast<uint64_t>(i));
    }
  }
  const TraceSummary summary = sink.Summary();
  EXPECT_EQ(summary.events, uint64_t{kThreads} * kEventsPerThread);
  EXPECT_EQ(summary.threads, static_cast<uint64_t>(kThreads));
}

TEST(TraceSinkTest, FullRingDropsInstantsButKeepsSpans) {
  TraceSinkOptions options;
  options.ring_events = kSpanReserve + 8;
  TraceSink sink(/*query_id=*/1, options);
  ScopedTraceThread scope(&sink, "caller", 0);
  // Flood with instants: at most ring_events - kSpanReserve may land.
  for (size_t i = 0; i < options.ring_events; ++i) {
    TraceInstant(kCatIo, "flood");
  }
  // Spans still record into the reserved tail.
  sink.RecordSpan(kCatPhase, "phase", 0, 100);
  EXPECT_GT(sink.dropped_events(), 0u);
  size_t count = 0;
  const TraceEvent* events = sink.RingEvents(0, &count);
  ASSERT_GT(count, 0u);
  EXPECT_STREQ(events[count - 1].name, "phase");
}

TEST(TraceSinkTest, ChromeJsonIsWellFormed) {
  TraceSink sink(/*query_id=*/42);
  {
    ScopedTraceThread scope(&sink, "caller", 0);
    TraceSpan span(kCatQuery, "query");
    TraceInstant(kCatPool, "pool.hit", "page", 9);
  }
  const std::string json = sink.ToChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":42"), std::string::npos);
  EXPECT_NE(json.find("pool.hit"), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness proxy; the CI leg
  // parses the real export with tools/check_trace.py).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

// --- Histogram vs sorted-vector oracle -----------------------------

TEST(HistogramTest, QuantilesMatchOracleWithinBucketBounds) {
  std::mt19937_64 rng(7);
  // Log-uniform samples: exercise many octaves.
  std::vector<uint64_t> samples;
  Histogram histogram;
  for (int i = 0; i < 20000; ++i) {
    const int shift = static_cast<int>(rng() % 40);
    const uint64_t value = (uint64_t{1} << shift) + rng() % 1000;
    samples.push_back(value);
    histogram.Record(value);
  }
  std::sort(samples.begin(), samples.end());

  EXPECT_EQ(histogram.Count(), samples.size());
  for (const double q : {0.5, 0.95, 0.99}) {
    // Same 1-based rank the histogram uses.
    const uint64_t rank = std::max<uint64_t>(
        1, static_cast<uint64_t>(q * static_cast<double>(samples.size()) +
                                 0.5));
    const uint64_t oracle = samples[rank - 1];
    const uint64_t estimate = histogram.Quantile(q);
    // The estimate is the upper edge of the oracle's bucket: never
    // below the oracle, and within one sub-bucket width (12.5%).
    EXPECT_GE(estimate, oracle) << "q=" << q;
    EXPECT_EQ(estimate,
              Histogram::BucketUpperEdge(Histogram::BucketOf(oracle)))
        << "q=" << q;
    EXPECT_LE(static_cast<double>(estimate),
              static_cast<double>(oracle) * 1.125 + 1.0)
        << "q=" << q;
  }
}

TEST(HistogramTest, BucketEdgesRoundTrip) {
  for (uint64_t value : {uint64_t{0}, uint64_t{1}, uint64_t{7}, uint64_t{8},
                         uint64_t{9}, uint64_t{100}, uint64_t{1000},
                         (uint64_t{1} << 20) + 17, (uint64_t{1} << 40) + 123}) {
    const size_t bucket = Histogram::BucketOf(value);
    EXPECT_LE(value, Histogram::BucketUpperEdge(bucket)) << value;
    if (bucket > 0) {
      EXPECT_GT(value, Histogram::BucketUpperEdge(bucket - 1)) << value;
    }
  }
}

// --- Exporter goldens on a local registry --------------------------

TEST(MetricsRegistryTest, PrometheusTextGolden) {
  MetricsRegistry registry;
  registry.counter("test_requests_total", "Requests served").Add(3);
  registry.gauge("test_queue_depth", "Waiting requests").Set(2);
  Histogram& h = registry.histogram("test_latency_ns", "Request latency");
  h.Record(100);
  h.Record(200);

  const std::string text = registry.ToPrometheusText();
  const std::string expected =
      "# HELP test_requests_total Requests served\n"
      "# TYPE test_requests_total counter\n"
      "test_requests_total 3\n"
      "# HELP test_queue_depth Waiting requests\n"
      "# TYPE test_queue_depth gauge\n"
      "test_queue_depth 2\n"
      "# HELP test_latency_ns Request latency\n"
      "# TYPE test_latency_ns summary\n"
      "test_latency_ns{quantile=\"0.5\"} 103\n"
      "test_latency_ns{quantile=\"0.95\"} 207\n"
      "test_latency_ns{quantile=\"0.99\"} 207\n"
      "test_latency_ns_sum 300\n"
      "test_latency_ns_count 2\n";
  EXPECT_EQ(text, expected);
}

TEST(MetricsRegistryTest, LabeledSeriesAndJson) {
  MetricsRegistry registry;
  registry.counter("test_lane_queries_total", "Per lane", {{"lane", "0"}})
      .Add(5);
  registry.counter("test_lane_queries_total", "Per lane", {{"lane", "1"}})
      .Add(7);
  // Idempotent registration: same name + labels, same instrument.
  registry.counter("test_lane_queries_total", "Per lane", {{"lane", "0"}})
      .Add(1);

  const std::string text = registry.ToPrometheusText();
  EXPECT_NE(text.find("test_lane_queries_total{lane=\"0\"} 6"),
            std::string::npos);
  EXPECT_NE(text.find("test_lane_queries_total{lane=\"1\"} 7"),
            std::string::npos);
  // One HELP/TYPE header for the family, not one per series.
  EXPECT_EQ(text.find("# HELP test_lane_queries_total"),
            text.rfind("# HELP test_lane_queries_total"));

  const std::string json = registry.ToJson();
  EXPECT_EQ(json,
            "{\"test_lane_queries_total{lane=\\\"0\\\"}\":6,"
            "\"test_lane_queries_total{lane=\\\"1\\\"}\":7}");
}

// --- Tracing off: zero allocation, zero recording ------------------

TEST(TraceDisabledTest, RecordHelpersAllocateNothing) {
  ASSERT_EQ(CurrentTraceSink(), nullptr);
  const uint64_t before = g_test_allocations.load();
  g_count_allocations.store(true);
  for (int i = 0; i < 1000; ++i) {
    TraceSpan span(kCatPhase, "phase");
    span.arg1("k", 1);
    TraceInstant(kCatIo, "io.batch", "pages", 4);
    TraceSpanEndingNow(kCatIo, "io.stall", 100);
  }
  g_count_allocations.store(false);
  EXPECT_EQ(g_test_allocations.load(), before);
}

// --- Per-query trace isolation under a concurrent service ----------

TEST(ServiceTraceTest, ConcurrentQueriesGetIsolatedTraces) {
  const auto topology = numa::Topology::Simulated(2, 4);

  workload::DatasetSpec data;
  data.r_tuples = 1u << 12;
  data.multiplicity = 2.0;
  const auto dataset = workload::Generate(topology, 4, data);

  service::ServiceOptions options;
  options.lanes = 2;
  options.engine.workers = 4;
  options.engine.trace = true;
  options.shared_sort = false;  // every query runs + traces on its own
  service::JoinService service(topology, options);

  constexpr int kQueries = 8;
  std::vector<std::unique_ptr<MaxPayloadSumFactory>> consumers;
  std::vector<service::JoinService::QueryId> ids;
  for (int i = 0; i < kQueries; ++i) {
    consumers.push_back(
        std::make_unique<MaxPayloadSumFactory>(options.engine.workers));
    engine::JoinSpec spec;
    spec.r = &dataset.r;
    spec.s = &dataset.s;
    spec.consumers = consumers.back().get();
    auto id = service.Submit(spec);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ids.push_back(*id);
  }

  std::vector<engine::JoinReport> reports;
  for (const auto id : ids) {
    auto report = service.Wait(id);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    reports.push_back(std::move(*report));
  }

  std::vector<uint64_t> seen_ids;
  for (const engine::JoinReport& report : reports) {
    ASSERT_NE(report.trace, nullptr);
    // The sink carries exactly this query's id (per-query sink =
    // isolation by construction; this asserts the service plumbed
    // distinct sinks, not one shared).
    EXPECT_EQ(report.trace->query_id(), report.query_id);
    seen_ids.push_back(report.query_id);
    const TraceSummary summary = report.trace->Summary();
    EXPECT_GT(summary.events, 0u);
    // Every trace has its own query-root span under its own pid.
    const std::string json = report.trace->ToChromeJson();
    EXPECT_NE(json.find("\"name\":\"query\""), std::string::npos);
    EXPECT_NE(json.find("\"pid\":" + std::to_string(report.query_id)),
              std::string::npos);
  }
  std::sort(seen_ids.begin(), seen_ids.end());
  EXPECT_EQ(std::adjacent_find(seen_ids.begin(), seen_ids.end()),
            seen_ids.end())
      << "duplicate query ids across concurrent traces";
}

}  // namespace
}  // namespace mpsm::obs

// Replaced global operator new: counts allocations while the
// TraceDisabledTest guard is on (the whole test binary routes through
// here; array new's default implementation calls this too).
void* operator new(std::size_t size) {
  if (mpsm::obs::g_count_allocations.load(std::memory_order_relaxed)) {
    mpsm::obs::g_test_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

// Cross-query run cache (cache/run_cache.h + engine/service wiring):
// cold-install / warm-hit identity against the reference join, delta
// ingest with merge-on-read, stale-plan failover after an external
// version bump, LRU eviction under a byte budget (delta logs survive),
// tiered compaction (inline and on a worker team), the materialized
// logical view, and a concurrent service sweep with a live ingester.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "baseline/reference_join.h"
#include "cache/run_cache.h"
#include "core/consumers.h"
#include "core/public_runs.h"
#include "engine/engine.h"
#include "numa/topology.h"
#include "service/join_service.h"
#include "storage/relation.h"
#include "workload/generator.h"

namespace mpsm::cache {
namespace {

numa::Topology Topo() { return numa::Topology::Simulated(2, 4); }

constexpr uint32_t kChunks = 4;
/// The engine derives cache histogram bounds as equi_height_factor * T.
constexpr uint32_t kBounds = 4 * kChunks;

workload::Dataset MakeDataset(const numa::Topology& topology, size_t r_tuples,
                              uint64_t seed, double multiplicity = 1.5) {
  workload::DatasetSpec spec;
  spec.r_tuples = r_tuples;
  spec.multiplicity = multiplicity;
  spec.key_domain = 4 * r_tuples;  // duplicates and unmatched keys exist
  spec.s_mode = workload::SKeyMode::kIndependent;
  spec.seed = seed;
  return workload::Generate(topology, kChunks, spec);
}

uint64_t Reference(std::vector<Tuple> r, std::vector<Tuple> s, JoinKind kind) {
  CountFactory reference(1);
  return baseline::ReferenceJoin(std::move(r), std::move(s), kind,
                                 reference.ConsumerForWorker(0));
}

std::vector<Tuple> RandomBatch(std::mt19937_64& rng, size_t n,
                               uint64_t key_domain) {
  std::vector<Tuple> batch(n);
  for (size_t i = 0; i < n; ++i) {
    batch[i] = Tuple{rng() % key_domain, rng()};
  }
  return batch;
}

engine::JoinSpec PMpsmSpec(const workload::Dataset& dataset,
                           ConsumerFactory* consumers,
                           JoinKind kind = JoinKind::kInner) {
  engine::JoinSpec spec;
  spec.r = &dataset.r;
  spec.s = &dataset.s;
  spec.kind = kind;
  spec.consumers = consumers;
  // Datasets small enough for a fast suite would otherwise plan the
  // tiny-input hash baseline and never touch the run-cache path.
  spec.algorithm = engine::Algorithm::kPMpsm;
  return spec;
}

engine::Engine MakeEngine(const numa::Topology& topology) {
  engine::EngineOptions options;
  options.workers = kChunks;
  return engine::Engine(topology, options);
}

// ------------------------------------------------- cold miss, warm hit

TEST(RunCacheEngineTest, ColdMissInstallsThenWarmHitMatchesReference) {
  const auto topology = Topo();
  const auto dataset = MakeDataset(topology, 20000, 71);
  const uint64_t expected =
      Reference(dataset.r.ToVector(), dataset.s.ToVector(), JoinKind::kInner);

  RunCache cache;
  auto engine = MakeEngine(topology);
  engine.set_run_cache(&cache);

  CountFactory cold(kChunks);
  auto spec = PMpsmSpec(dataset, &cold);
  auto report = engine.Execute(spec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->run_source, engine::RunSource::kFreshSort);
  EXPECT_EQ(cold.Result(), expected);
  EXPECT_EQ(engine.stats().cache_misses, 1u);
  EXPECT_EQ(engine.stats().cache_installs, 1u);

  // EXPLAIN now sees the warm entry and prices the merge.
  auto plan = engine.Plan(spec);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(plan->cached_runs.available);
  EXPECT_TRUE(plan->cached_runs.use);
  EXPECT_EQ(plan->cached_runs.delta_tuples, 0u);
  EXPECT_NE(plan->ToString().find("cache:"), std::string::npos);

  CountFactory warm(kChunks);
  spec.consumers = &warm;
  report = engine.Execute(spec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->run_source, engine::RunSource::kCachedBase);
  EXPECT_EQ(report->cache_delta_tuples, 0u);
  EXPECT_EQ(warm.Result(), expected);
  EXPECT_EQ(engine.stats().cache_hits, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().installs, 1u);
  EXPECT_GT(cache.stats().base_bytes, 0u);
}

TEST(RunCacheEngineTest, IngestMergesOnRead) {
  const auto topology = Topo();
  auto dataset = MakeDataset(topology, 16000, 72);
  std::vector<Tuple> s_mirror = dataset.s.ToVector();

  RunCache cache;
  auto engine = MakeEngine(topology);
  engine.set_run_cache(&cache);

  CountFactory cold(kChunks);
  auto spec = PMpsmSpec(dataset, &cold);
  ASSERT_TRUE(engine.Execute(spec).ok());

  std::mt19937_64 rng(1234);
  const uint64_t domain = 4 * 16000;
  for (const size_t batch_size : {size_t{1000}, size_t{500}}) {
    const auto batch = RandomBatch(rng, batch_size, domain);
    auto version = engine.Ingest(dataset.s, batch);
    ASSERT_TRUE(version.ok()) << version.status().ToString();
    EXPECT_EQ(*version, dataset.s.version());
    s_mirror.insert(s_mirror.end(), batch.begin(), batch.end());
  }

  CountFactory warm(kChunks);
  spec.consumers = &warm;
  auto report = engine.Execute(spec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->run_source, engine::RunSource::kCachedMerge);
  EXPECT_EQ(report->cache_delta_tuples, 1500u);
  EXPECT_EQ(warm.Result(),
            Reference(dataset.r.ToVector(), s_mirror, JoinKind::kInner));
  EXPECT_EQ(cache.stats().ingested_tuples, 1500u);
  EXPECT_GT(cache.stats().delta_bytes, 0u);
}

TEST(RunCacheEngineTest, IngestRequiresCacheAndIdentity) {
  auto engine = MakeEngine(Topo());
  auto dataset = MakeDataset(engine.topology(), 1000, 5);
  const std::vector<Tuple> batch{Tuple{1, 2}};
  EXPECT_FALSE(engine.Ingest(dataset.s, batch).ok());  // no cache attached

  RunCache cache;
  engine.set_run_cache(&cache);
  Relation anonymous;  // id 0: content can never be cache-keyed
  EXPECT_FALSE(engine.Ingest(anonymous, batch).ok());
  EXPECT_TRUE(engine.Ingest(dataset.s, batch).ok());
}

// ------------------------------------------- randomized interleaving

TEST(RunCacheEngineTest, RandomizedInterleavedIngestExecuteMatchesReference) {
  const auto topology = Topo();
  auto dataset = MakeDataset(topology, 8000, 73, 2.0);
  std::vector<Tuple> r_mirror = dataset.r.ToVector();
  std::vector<Tuple> s_mirror = dataset.s.ToVector();

  RunCache cache;
  auto engine = MakeEngine(topology);
  engine.set_run_cache(&cache);

  std::mt19937_64 rng(4321);
  const uint64_t domain = 4 * 8000;
  const JoinKind kinds[] = {JoinKind::kInner, JoinKind::kLeftSemi,
                            JoinKind::kLeftOuter};
  for (int round = 0; round < 10; ++round) {
    const size_t batch_size = rng() % 800;
    const auto batch = RandomBatch(rng, batch_size, domain);
    ASSERT_TRUE(engine.Ingest(dataset.s, batch).ok());
    s_mirror.insert(s_mirror.end(), batch.begin(), batch.end());
    if (round % 3 == 2) {
      // R deltas exercise the materialized-view path: R is not served
      // from cached runs, so its pending rows must be folded into the
      // input relation before the join.
      const auto r_batch = RandomBatch(rng, 200, domain);
      ASSERT_TRUE(engine.Ingest(dataset.r, r_batch).ok());
      r_mirror.insert(r_mirror.end(), r_batch.begin(), r_batch.end());
    }

    const JoinKind kind = kinds[round % 3];
    CountFactory consumers(kChunks);
    auto spec = PMpsmSpec(dataset, &consumers, kind);
    auto report = engine.Execute(spec);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(consumers.Result(), Reference(r_mirror, s_mirror, kind))
        << "round " << round << " " << JoinKindName(kind);
    if (round > 0 && batch_size > 0) {  // round 0 is the cold install
      EXPECT_EQ(report->run_source, engine::RunSource::kCachedMerge)
          << "round " << round;
    }
  }
  EXPECT_GT(engine.stats().cache_hits, 0u);
  EXPECT_GT(engine.stats().cache_materializations, 0u);
}

// -------------------------------------------------- stale-plan hazard

TEST(RunCacheEngineTest, ExternalBumpFailsOverToFreshSort) {
  const auto topology = Topo();
  auto dataset = MakeDataset(topology, 12000, 74);
  const uint64_t expected =
      Reference(dataset.r.ToVector(), dataset.s.ToVector(), JoinKind::kInner);

  RunCache cache;
  auto engine = MakeEngine(topology);
  engine.set_run_cache(&cache);

  CountFactory cold(kChunks);
  auto spec = PMpsmSpec(dataset, &cold);
  ASSERT_TRUE(engine.Execute(spec).ok());

  // An in-place mutation the cache never saw: the delta log has a gap,
  // so the entry can no longer compose a coherent view. The cached
  // report must never appear; the query re-sorts and reinstalls.
  dataset.s.BumpVersion();
  auto view = cache.Lookup(dataset.s, kChunks, kBounds);
  EXPECT_FALSE(view.valid());
  EXPECT_EQ(cache.stats().stale_invalidations, 1u);

  CountFactory after(kChunks);
  spec.consumers = &after;
  auto report = engine.Execute(spec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->run_source, engine::RunSource::kFreshSort);
  EXPECT_EQ(after.Result(), expected);

  // The reinstall covers the bumped version: warm again.
  CountFactory warm(kChunks);
  spec.consumers = &warm;
  report = engine.Execute(spec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->run_source, engine::RunSource::kCachedBase);
  EXPECT_EQ(warm.Result(), expected);
}

TEST(RunCacheEngineTest, IngestBetweenPlanAndExecuteStaysCorrect) {
  // The plan's cached decision is advisory: Execute re-validates. A
  // delta ingested after EXPLAIN said "warm, zero deltas" must still be
  // joined (merge-on-read picks it up), never silently dropped.
  const auto topology = Topo();
  auto dataset = MakeDataset(topology, 12000, 75);
  std::vector<Tuple> s_mirror = dataset.s.ToVector();

  RunCache cache;
  auto engine = MakeEngine(topology);
  engine.set_run_cache(&cache);

  CountFactory cold(kChunks);
  auto spec = PMpsmSpec(dataset, &cold);
  ASSERT_TRUE(engine.Execute(spec).ok());

  auto plan = engine.Plan(spec);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(plan->cached_runs.use);
  ASSERT_EQ(plan->cached_runs.delta_tuples, 0u);

  std::mt19937_64 rng(99);
  const auto batch = RandomBatch(rng, 700, 4 * 12000);
  ASSERT_TRUE(engine.Ingest(dataset.s, batch).ok());
  s_mirror.insert(s_mirror.end(), batch.begin(), batch.end());

  CountFactory consumers(kChunks);
  spec.consumers = &consumers;
  auto report = engine.Execute(spec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->run_source, engine::RunSource::kCachedMerge);
  EXPECT_EQ(report->cache_delta_tuples, 700u);
  EXPECT_EQ(consumers.Result(),
            Reference(dataset.r.ToVector(), s_mirror, JoinKind::kInner));
}

// ------------------------------------------------------------ eviction

TEST(RunCacheEngineTest, LruEvictionUnderCapacityStaysCorrect) {
  const auto topology = Topo();
  const auto a = MakeDataset(topology, 16000, 76);
  const auto b = MakeDataset(topology, 16000, 77);

  // Room for one public input's runs (|S| ~ 24k tuples ~ 384 KiB), not
  // two: every switch of the joined table evicts the other entry.
  RunCacheOptions options;
  options.capacity_bytes = 600u << 10;
  RunCache cache(options);
  auto engine = MakeEngine(topology);
  engine.set_run_cache(&cache);

  const auto run = [&](const workload::Dataset& dataset) {
    CountFactory consumers(kChunks);
    auto spec = PMpsmSpec(dataset, &consumers);
    auto report = engine.Execute(spec);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(consumers.Result(), Reference(dataset.r.ToVector(),
                                            dataset.s.ToVector(),
                                            JoinKind::kInner));
  };
  run(a);  // install A
  run(b);  // install B, evict A
  EXPECT_GE(cache.stats().evictions, 1u);
  run(a);  // miss again: fresh sort, correct, reinstall
  EXPECT_GE(engine.stats().cache_misses, 3u);
  EXPECT_LE(cache.resident_bytes(), options.capacity_bytes);
}

TEST(RunCacheEngineTest, DeltaLogSurvivesEviction) {
  const auto topology = Topo();
  auto dataset = MakeDataset(topology, 10000, 78);
  std::vector<Tuple> s_mirror = dataset.s.ToVector();

  RunCache cache;
  auto engine = MakeEngine(topology);
  engine.set_run_cache(&cache);

  CountFactory cold(kChunks);
  auto spec = PMpsmSpec(dataset, &cold);
  ASSERT_TRUE(engine.Execute(spec).ok());

  std::mt19937_64 rng(11);
  const auto batch = RandomBatch(rng, 900, 4 * 10000);
  ASSERT_TRUE(engine.Ingest(dataset.s, batch).ok());
  s_mirror.insert(s_mirror.end(), batch.begin(), batch.end());

  // Evict everything evictable. Delta tuples exist nowhere else — they
  // are data, not cache — so they must survive and reach the next join
  // through the materialized fallback input.
  cache.EvictToFit(0);
  EXPECT_EQ(cache.stats().base_bytes, 0u);
  EXPECT_EQ(cache.PendingDeltaTuples(dataset.s), 900u);

  CountFactory consumers(kChunks);
  spec.consumers = &consumers;
  auto report = engine.Execute(spec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->run_source, engine::RunSource::kFreshSort);
  EXPECT_EQ(consumers.Result(),
            Reference(dataset.r.ToVector(), s_mirror, JoinKind::kInner));
  EXPECT_GE(engine.stats().cache_materializations, 1u);

  // The fresh sort re-installed runs covering the delta: warm again,
  // and the deltas are already folded into the base view.
  CountFactory warm(kChunks);
  spec.consumers = &warm;
  report = engine.Execute(spec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->run_source, engine::RunSource::kCachedBase);
  EXPECT_EQ(warm.Result(),
            Reference(dataset.r.ToVector(), s_mirror, JoinKind::kInner));
}

// ---------------------------------------------------------- compaction

TEST(RunCacheTest, CompactionTiersTheDeltaLog) {
  const auto topology = Topo();
  auto dataset = MakeDataset(topology, 10000, 79);
  std::vector<Tuple> s_mirror = dataset.s.ToVector();

  RunCache cache;
  auto engine = MakeEngine(topology);
  engine.set_run_cache(&cache);

  CountFactory cold(kChunks);
  auto spec = PMpsmSpec(dataset, &cold);
  ASSERT_TRUE(engine.Execute(spec).ok());

  std::mt19937_64 rng(22);
  for (int i = 0; i < 8; ++i) {
    const auto batch = RandomBatch(rng, 100, 4 * 10000);
    ASSERT_TRUE(engine.Ingest(dataset.s, batch).ok());
    s_mirror.insert(s_mirror.end(), batch.begin(), batch.end());
  }
  EXPECT_EQ(cache.Peek(dataset.s, kChunks, kBounds).delta_runs, 8u);

  // Eight contiguous L0 segments above the entry's install point: one
  // tiered merge collapses them into a single L1 segment.
  EXPECT_EQ(cache.CompactPending(nullptr), 1u);
  EXPECT_EQ(cache.stats().compactions, 1u);
  EXPECT_EQ(cache.stats().compacted_segments, 8u);
  const auto peek = cache.Peek(dataset.s, kChunks, kBounds);
  ASSERT_TRUE(peek.hit);  // the entry still composes across the merge
  EXPECT_EQ(peek.delta_runs, 1u);
  EXPECT_EQ(peek.delta_tuples, 800u);

  CountFactory warm(kChunks);
  spec.consumers = &warm;
  auto report = engine.Execute(spec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->run_source, engine::RunSource::kCachedMerge);
  EXPECT_EQ(warm.Result(),
            Reference(dataset.r.ToVector(), s_mirror, JoinKind::kInner));
}

TEST(RunCacheTest, CompactionNeverCrossesALiveInstallPoint) {
  const auto topology = Topo();
  auto dataset = MakeDataset(topology, 10000, 80);

  RunCache cache;
  auto engine = MakeEngine(topology);
  engine.set_run_cache(&cache);

  CountFactory cold(kChunks);
  auto spec = PMpsmSpec(dataset, &cold);
  ASSERT_TRUE(engine.Execute(spec).ok());

  std::mt19937_64 rng(33);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(engine.Ingest(dataset.s, RandomBatch(rng, 50, 40000)).ok());
  }
  // A second entry installed mid-log (same base runs under a different
  // bound count): its install point fences the log. Merging across it
  // would straddle the boundary and invalidate a warm entry.
  auto view = cache.Lookup(dataset.s, kChunks, kBounds);
  ASSERT_TRUE(view.valid());
  ASSERT_TRUE(cache.Install(dataset.s.id(), kChunks, kBounds + 1,
                            dataset.s.version(), view.base));
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(engine.Ingest(dataset.s, RandomBatch(rng, 50, 40000)).ok());
  }

  // Two fenced stretches of four L0 segments -> two jobs; with a team
  // they run as stealable guest-safe morsels.
  EXPECT_EQ(cache.CompactPending(&engine.EnsureTeam(kChunks)), 2u);
  const auto first = cache.Peek(dataset.s, kChunks, kBounds);
  ASSERT_TRUE(first.hit);
  EXPECT_EQ(first.delta_runs, 2u);
  EXPECT_EQ(first.delta_tuples, 400u);
  const auto second = cache.Peek(dataset.s, kChunks, kBounds + 1);
  ASSERT_TRUE(second.hit);
  EXPECT_EQ(second.delta_runs, 1u);
  EXPECT_EQ(second.delta_tuples, 200u);
}

// --------------------------------------------------- materialized view

TEST(RunCacheTest, MaterializedViewReflectsLogicalContent) {
  const auto topology = Topo();
  auto dataset = MakeDataset(topology, 5000, 81);
  std::vector<Tuple> expected = dataset.s.ToVector();

  RunCache cache;
  std::mt19937_64 rng(44);
  const auto batch = RandomBatch(rng, 300, 20000);
  cache.Ingest(dataset.s, batch);
  expected.insert(expected.end(), batch.begin(), batch.end());

  uint64_t version = 0;
  const auto view = cache.MaterializedView(dataset.s, topology, kChunks,
                                           &version);
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(version, dataset.s.version());
  EXPECT_EQ(view->num_chunks(), kChunks);
  auto actual = view->ToVector();
  const auto by_key_payload = [](const Tuple& a, const Tuple& b) {
    return a.key != b.key ? a.key < b.key : a.payload < b.payload;
  };
  std::sort(actual.begin(), actual.end(), by_key_payload);
  std::sort(expected.begin(), expected.end(), by_key_payload);
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < actual.size(); ++i) {
    ASSERT_EQ(actual[i].key, expected[i].key) << i;
    ASSERT_EQ(actual[i].payload, expected[i].payload) << i;
  }

  // Memoized until the version moves.
  EXPECT_EQ(cache.MaterializedView(dataset.s, topology, kChunks), view);
  cache.Ingest(dataset.s, batch);
  EXPECT_NE(cache.MaterializedView(dataset.s, topology, kChunks), view);
}

// ------------------------------------------------------------- service

TEST(RunCacheServiceTest, WarmRepeatAcrossLanesAndServiceIngest) {
  const auto topology = Topo();
  auto dataset = MakeDataset(topology, 16000, 82);
  std::vector<Tuple> s_mirror = dataset.s.ToVector();

  service::ServiceOptions options;
  options.lanes = 2;
  options.run_cache_bytes = 256u << 20;
  options.engine.workers = kChunks;
  service::JoinService svc(topology, options);
  ASSERT_NE(svc.run_cache(), nullptr);

  std::vector<std::unique_ptr<CountFactory>> consumers;
  std::vector<service::JoinService::QueryId> ids;
  for (int i = 0; i < 4; ++i) {
    consumers.push_back(std::make_unique<CountFactory>(kChunks));
    auto spec = PMpsmSpec(dataset, consumers.back().get());
    auto id = svc.Submit(spec);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ids.push_back(*id);
  }
  const uint64_t expected =
      Reference(dataset.r.ToVector(), dataset.s.ToVector(), JoinKind::kInner);
  for (size_t i = 0; i < ids.size(); ++i) {
    auto report = svc.Wait(ids[i]);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(consumers[i]->Result(), expected) << i;
  }
  // One sort fed all four queries (whether batched or cache-served).
  EXPECT_GE(svc.stats().cache_installs, 1u);
  EXPECT_GT(svc.stats().cache_hits, 0u);

  std::mt19937_64 rng(55);
  const auto batch = RandomBatch(rng, 800, 4 * 16000);
  auto version = svc.Ingest(dataset.s, batch);
  ASSERT_TRUE(version.ok()) << version.status().ToString();
  s_mirror.insert(s_mirror.end(), batch.begin(), batch.end());

  CountFactory after(kChunks);
  auto spec = PMpsmSpec(dataset, &after);
  auto id = svc.Submit(spec);
  ASSERT_TRUE(id.ok());
  auto report = svc.Wait(*id);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->run_source, engine::RunSource::kCachedMerge);
  EXPECT_EQ(after.Result(),
            Reference(dataset.r.ToVector(), s_mirror, JoinKind::kInner));
  EXPECT_EQ(svc.stats().cache_ingested_tuples, 800u);
}

TEST(RunCacheServiceTest, ConcurrentSweepWithLiveIngester) {
  const auto topology = Topo();
  auto dataset = MakeDataset(topology, 12000, 83);
  const uint64_t base_expected =
      Reference(dataset.r.ToVector(), dataset.s.ToVector(), JoinKind::kInner);

  service::ServiceOptions options;
  options.lanes = 2;
  options.run_cache_bytes = 256u << 20;
  options.memory_budget_bytes = 512u << 20;  // finite: admission prices it
  options.engine.workers = kChunks;
  service::JoinService svc(topology, options);

  // Ingested keys sit far outside R's key domain, so the inner-join
  // count is invariant no matter when a query observes a delta — every
  // concurrent result has one deterministic expectation.
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::thread ingester([&] {
    std::mt19937_64 rng(66);
    while (!stop.load(std::memory_order_acquire)) {
      std::vector<Tuple> batch(200);
      for (auto& t : batch) {
        t = Tuple{(uint64_t{1} << 40) + rng() % 100000, rng()};
      }
      if (!svc.Ingest(dataset.s, batch).ok()) ++failures;
      std::this_thread::yield();
    }
  });

  constexpr int kClients = 4;
  constexpr int kQueriesPerClient = 6;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int q = 0; q < kQueriesPerClient; ++q) {
        CountFactory consumers(kChunks);
        auto spec = PMpsmSpec(dataset, &consumers);
        auto id = svc.Submit(spec);
        if (!id.ok()) {
          ++failures;
          continue;
        }
        auto report = svc.Wait(*id);
        if (!report.ok() || consumers.Result() != base_expected) {
          ++failures;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  stop.store(true, std::memory_order_release);
  ingester.join();
  svc.Drain();

  EXPECT_EQ(failures.load(), 0);
  const auto stats = svc.stats();
  EXPECT_EQ(stats.completed, uint64_t{kClients * kQueriesPerClient});
  EXPECT_GT(stats.cache_hits + stats.cache_misses, 0u);
  EXPECT_GT(stats.cache_ingested_tuples, 0u);
}

TEST(RunCacheServiceTest, TinyCacheCapacityEvictsButNeverBreaks) {
  const auto topology = Topo();
  const auto a = MakeDataset(topology, 12000, 84);
  const auto b = MakeDataset(topology, 12000, 85);

  service::ServiceOptions options;
  options.lanes = 1;
  options.run_cache_bytes = 400u << 10;  // one entry fits, two never do
  options.engine.workers = kChunks;
  service::JoinService svc(topology, options);

  for (int round = 0; round < 3; ++round) {
    for (const auto* dataset : {&a, &b}) {
      CountFactory consumers(kChunks);
      auto spec = PMpsmSpec(*dataset, &consumers);
      auto id = svc.Submit(spec);
      ASSERT_TRUE(id.ok());
      ASSERT_TRUE(svc.Wait(*id).ok());
      EXPECT_EQ(consumers.Result(),
                Reference(dataset->r.ToVector(), dataset->s.ToVector(),
                          JoinKind::kInner));
    }
  }
  EXPECT_GE(svc.stats().cache_evictions, 1u);
  EXPECT_LE(svc.stats().cache_resident_bytes, options.run_cache_bytes);
}

}  // namespace
}  // namespace mpsm::cache

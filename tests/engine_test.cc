// Engine front door: planner golden decisions, front-door validation,
// session reuse, and the engine round-trip matrix (every planned
// algorithm must reproduce the reference join for every JoinKind it
// supports).
#include <gtest/gtest.h>

#include <string>

#include "baseline/reference_join.h"
#include "core/consumers.h"
#include "engine/engine.h"
#include "io/io_backend.h"
#include "numa/topology.h"
#include "storage/tuple.h"
#include "workload/generator.h"

namespace mpsm::engine {
namespace {

numa::Topology Topo() { return numa::Topology::Simulated(4, 8); }

/// A uniform FK dataset big enough to clear the tiny-input rule.
workload::Dataset MediumDataset(const numa::Topology& topology,
                                uint32_t chunks) {
  workload::DatasetSpec spec;
  spec.r_tuples = 1u << 16;
  spec.multiplicity = 2.0;
  spec.seed = 7;
  return workload::Generate(topology, chunks, spec);
}

// ----------------------------------------------------- planner golden

TEST(PlannerGoldenTest, InMemoryUniformChoosesPMpsm) {
  const auto topology = Topo();
  const auto dataset = MediumDataset(topology, 8);
  EngineOptions options;
  options.workers = 8;
  Engine engine(topology, options);

  JoinSpec spec;
  spec.r = &dataset.r;
  spec.s = &dataset.s;
  auto plan = engine.Plan(spec);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->algorithm, Algorithm::kPMpsm);
  EXPECT_GT(plan->predicted_seconds, 0.0);
  // The estimate is near-uniform and the candidate list is complete.
  EXPECT_LT(plan->inputs.skew, 2.0);
  EXPECT_EQ(plan->candidates.size(), kNumAlgorithms);
  // Planning must not spawn worker threads.
  EXPECT_EQ(engine.team(), nullptr);
  EXPECT_EQ(engine.stats().team_spawns, 0u);
}

TEST(PlannerGoldenTest, MemoryBudgetSpillsToDMpsm) {
  const auto topology = Topo();
  const auto dataset = MediumDataset(topology, 8);
  EngineOptions options;
  options.workers = 8;
  Engine engine(topology, options);

  JoinSpec spec;
  spec.r = &dataset.r;
  spec.s = &dataset.s;
  // Working set = 2 * (|R| + |S|) * 16 bytes ~ 6.3 MB; budget 1 MB.
  spec.memory_budget_bytes = 1u << 20;
  auto plan = engine.Plan(spec);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->algorithm, Algorithm::kDMpsm);
  // Budget-driven staging pool: half the budget in pages.
  const uint64_t page_bytes = plan->dmpsm.tuples_per_page * sizeof(Tuple);
  EXPECT_EQ(plan->dmpsm.pool_pages, (spec.memory_budget_bytes / 2) / page_bytes);
  // In-memory candidates are marked infeasible, with the reason.
  const auto& pmpsm = plan->candidates[static_cast<size_t>(Algorithm::kPMpsm)];
  EXPECT_FALSE(pmpsm.feasible);
  EXPECT_NE(pmpsm.note.find("budget"), std::string::npos);
}

TEST(PlannerGoldenTest, GenerousBudgetStaysInMemory) {
  const auto topology = Topo();
  const auto dataset = MediumDataset(topology, 8);
  EngineOptions options;
  options.workers = 8;
  Engine engine(topology, options);

  JoinSpec spec;
  spec.r = &dataset.r;
  spec.s = &dataset.s;
  spec.memory_budget_bytes = uint64_t{1} << 30;
  auto plan = engine.Plan(spec);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->algorithm, Algorithm::kPMpsm);
}

TEST(PlannerGoldenTest, TinyInputsChooseWisconsin) {
  const auto topology = Topo();
  workload::DatasetSpec spec;
  spec.r_tuples = 1000;
  spec.multiplicity = 2.0;
  const auto dataset = workload::Generate(topology, 4, spec);

  EngineOptions options;
  options.workers = 4;
  Engine engine(topology, options);
  JoinSpec join;
  join.r = &dataset.r;
  join.s = &dataset.s;
  auto plan = engine.Plan(join);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->algorithm, Algorithm::kWisconsin);
  EXPECT_NE(plan->rationale.find("tiny"), std::string::npos);
}

TEST(PlannerGoldenTest, AsyncIoBackendPricesDMpsmCheaperThanSync) {
  // The machine model charges the spill device at depth-scaled
  // bandwidth and overlaps it with merge compute for async backends;
  // the sync baseline serializes depth-1 reads behind the compute.
  PlannerInputs in;
  in.r_tuples = uint64_t{1} << 24;
  in.s_tuples = uint64_t{1} << 26;
  in.team_size = 32;
  in.numa_nodes = 4;
  const auto machine = sim::MachineModel::HyPer1();
  const MpsmOptions mpsm;

  disk::DMpsmOptions sync_options;
  sync_options.io_backend = io::IoBackendKind::kSync;
  disk::DMpsmOptions async_options;
  async_options.io_backend = io::IoBackendKind::kThreadpool;
  async_options.io_queue_depth = 16;

  const auto sync_cost = Planner::EstimateCost(Algorithm::kDMpsm, in,
                                               machine, mpsm, sync_options);
  const auto async_cost = Planner::EstimateCost(Algorithm::kDMpsm, in,
                                                machine, mpsm, async_options);
  EXPECT_LT(async_cost.total_seconds, sync_cost.total_seconds);
  // The whole gap is the join phase, where the reads happen.
  EXPECT_LT(async_cost.phase_seconds[kPhaseJoin],
            sync_cost.phase_seconds[kPhaseJoin]);
  EXPECT_DOUBLE_EQ(async_cost.phase_seconds[kPhaseSortPublic],
                   sync_cost.phase_seconds[kPhaseSortPublic]);
}

TEST(PlannerGoldenTest, ResolvesIoKnobsIntoDMpsmOptions) {
  EngineOptions options;
  options.dmpsm.io_backend = io::IoBackendKind::kAuto;
  options.dmpsm.io_queue_depth = 4;
  options.dmpsm.io_batch_pages = 2;
  const auto resolved = ResolveDMpsmOptions(options, /*budget=*/0);
  EXPECT_EQ(resolved.io_backend, io::IoBackendKind::kAuto);
  EXPECT_EQ(resolved.io_queue_depth, 4u);
  EXPECT_EQ(resolved.io_batch_pages, 2u);
}

TEST(PlannerGoldenTest, RejectsBadIoKnobsAtTheFrontDoor) {
  const auto topology = Topo();
  const auto dataset = MediumDataset(topology, 8);
  EngineOptions options;
  options.workers = 8;
  options.dmpsm.io_queue_depth = 0;
  Engine engine(topology, options);
  JoinSpec spec;
  spec.r = &dataset.r;
  spec.s = &dataset.s;
  auto plan = engine.Plan(spec);
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument);
}

TEST(PlannerGoldenTest, NonInnerJoinsStayInTheMpsmFamily) {
  const auto topology = Topo();
  workload::DatasetSpec spec;
  spec.r_tuples = 1000;  // tiny on purpose: rule 3 precedes rule 4
  spec.multiplicity = 2.0;
  const auto dataset = workload::Generate(topology, 4, spec);

  EngineOptions options;
  options.workers = 4;
  Engine engine(topology, options);
  for (const JoinKind kind :
       {JoinKind::kLeftSemi, JoinKind::kLeftAnti, JoinKind::kLeftOuter}) {
    JoinSpec join;
    join.r = &dataset.r;
    join.s = &dataset.s;
    join.kind = kind;
    auto plan = engine.Plan(join);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    EXPECT_TRUE(plan->algorithm == Algorithm::kPMpsm ||
                plan->algorithm == Algorithm::kBMpsm)
        << AlgorithmName(plan->algorithm);
  }
}

TEST(PlannerGoldenTest, SkewedDataRaisesTheSkewEstimate) {
  const auto topology = Topo();
  workload::DatasetSpec spec;
  spec.r_tuples = 1u << 16;
  spec.multiplicity = 1.0;
  spec.r_distribution = workload::KeyDistribution::kSkewHighEnd;
  spec.s_distribution = workload::KeyDistribution::kSkewLowEnd;
  spec.s_mode = workload::SKeyMode::kIndependent;
  const auto dataset = workload::Generate(topology, 4, spec);
  const double skew = Planner::EstimateSkew(dataset.r, dataset.s);
  EXPECT_GT(skew, 2.0);

  const auto uniform = MediumDataset(topology, 4);
  EXPECT_LT(Planner::EstimateSkew(uniform.r, uniform.s), 2.0);
}

TEST(PlannerGoldenTest, ForcedAlgorithmWinsAndPlanExplains) {
  const auto topology = Topo();
  const auto dataset = MediumDataset(topology, 8);
  EngineOptions options;
  options.workers = 8;
  Engine engine(topology, options);

  JoinSpec spec;
  spec.r = &dataset.r;
  spec.s = &dataset.s;
  spec.algorithm = Algorithm::kBMpsm;
  auto plan = engine.Plan(spec);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->algorithm, Algorithm::kBMpsm);
  EXPECT_NE(plan->rationale.find("forced"), std::string::npos);
  // The EXPLAIN dump names the chosen algorithm.
  EXPECT_NE(plan->ToString().find("b-mpsm"), std::string::npos);
}

TEST(PlannerGoldenTest, SpillWithNonInnerKindIsNotSupported) {
  const auto topology = Topo();
  const auto dataset = MediumDataset(topology, 8);
  EngineOptions options;
  options.workers = 8;
  Engine engine(topology, options);

  JoinSpec spec;
  spec.r = &dataset.r;
  spec.s = &dataset.s;
  spec.kind = JoinKind::kLeftOuter;
  spec.memory_budget_bytes = 1u << 20;
  auto plan = engine.Plan(spec);
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kNotSupported);
}

// ------------------------------------------------ front-door validation

TEST(EngineValidationTest, RejectsUndersizedRadixBits) {
  const auto topology = Topo();
  const auto dataset = MediumDataset(topology, 16);
  EngineOptions options;
  options.workers = 16;
  options.mpsm.radix_bits = 3;  // < ceil(log2(16)) = 4
  Engine engine(topology, options);

  JoinSpec spec;
  spec.r = &dataset.r;
  spec.s = &dataset.s;
  auto plan = engine.Plan(spec);
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(plan.status().message().find("radix_bits"), std::string::npos);
}

TEST(EngineValidationTest, RejectsZeroPoolPagesOverride) {
  disk::DMpsmOptions options;
  options.pool_pages = 0;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  options.pool_pages = 1;
  EXPECT_TRUE(options.Validate().ok());
}

TEST(EngineValidationTest, RejectsIllegalRadixJoinBits) {
  baseline::RadixJoinOptions options;
  options.pass1_bits = 0;
  options.pass2_bits = 4;  // pass2 without pass1
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  options.pass1_bits = 20;  // > 16
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  options = {};
  EXPECT_TRUE(options.Validate().ok());
}

TEST(EngineValidationTest, RejectsBadMpsmKnobsThroughTheEngine) {
  const auto topology = Topo();
  const auto dataset = MediumDataset(topology, 4);
  EngineOptions options;
  options.workers = 4;
  options.mpsm.equi_height_factor = 0;
  Engine engine(topology, options);

  CountFactory counts(4);
  JoinSpec spec;
  spec.r = &dataset.r;
  spec.s = &dataset.s;
  spec.consumers = &counts;
  auto report = engine.Execute(spec);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineValidationTest, RejectsMismatchedChunking) {
  const auto topology = Topo();
  const auto dataset = MediumDataset(topology, 4);
  EngineOptions options;
  options.workers = 8;  // != the inputs' 4 chunks
  Engine engine(topology, options);

  CountFactory counts(8);
  JoinSpec spec;
  spec.r = &dataset.r;
  spec.s = &dataset.s;
  spec.consumers = &counts;
  auto report = engine.Execute(spec);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

// ------------------------------------------------------ session reuse

TEST(EngineSessionTest, ConsecutiveQueriesReuseTeamAndTopology) {
  const auto topology = Topo();
  const auto dataset = MediumDataset(topology, 8);
  EngineOptions options;
  options.workers = 8;
  Engine engine(topology, options);
  // Injected topology: the engine never probes.
  EXPECT_EQ(engine.stats().topology_probes, 0u);

  for (int query = 0; query < 3; ++query) {
    CountFactory counts(8);
    JoinSpec spec;
    spec.r = &dataset.r;
    spec.s = &dataset.s;
    spec.consumers = &counts;
    auto report = engine.Execute(spec);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_GT(counts.Result(), 0u);
  }
  EXPECT_EQ(engine.stats().queries_executed, 3u);
  EXPECT_EQ(engine.stats().plans_created, 3u);
  EXPECT_EQ(engine.stats().team_spawns, 1u);
}

TEST(EngineSessionTest, AutoTeamSizeFollowsChunkingAndRespawnsOnce) {
  const auto topology = Topo();
  EngineOptions options;  // workers = 0: size from the inputs
  Engine engine(topology, options);

  const auto four = MediumDataset(topology, 4);
  const auto eight = MediumDataset(topology, 8);
  auto run = [&](const workload::Dataset& dataset, uint32_t chunks) {
    CountFactory counts(chunks);
    JoinSpec spec;
    spec.r = &dataset.r;
    spec.s = &dataset.s;
    spec.consumers = &counts;
    ASSERT_TRUE(engine.Execute(spec).ok());
  };
  run(four, 4);
  run(four, 4);
  EXPECT_EQ(engine.stats().team_spawns, 1u);
  run(eight, 8);  // different chunking: one re-spawn
  EXPECT_EQ(engine.stats().team_spawns, 2u);
  EXPECT_EQ(engine.team()->size(), 8u);
}

// ------------------------------------------------- round-trip matrix

struct MatrixCase {
  Algorithm algorithm;
  JoinKind kind;
  io::IoBackendKind io_backend;
};

std::string MatrixName(const testing::TestParamInfo<MatrixCase>& info) {
  std::string name = std::string(AlgorithmName(info.param.algorithm)) + "_" +
                     JoinKindName(info.param.kind) + "_" +
                     io::IoBackendKindName(info.param.io_backend);
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

class EngineMatrixTest : public testing::TestWithParam<MatrixCase> {};

TEST_P(EngineMatrixTest, MatchesReferenceJoin) {
  const auto [algorithm, kind, io_backend] = GetParam();
  if (io_backend == io::IoBackendKind::kUring && !io::UringSupported()) {
    GTEST_SKIP() << "io_uring unavailable on this host";
  }
  const auto topology = Topo();
  constexpr uint32_t kWorkers = 4;

  workload::DatasetSpec spec;
  spec.r_tuples = 6000;
  spec.multiplicity = 1.5;
  spec.key_domain = 15000;  // duplicates and unmatched tuples exist
  spec.s_mode = workload::SKeyMode::kIndependent;
  spec.seed = 321;
  const auto dataset = workload::Generate(topology, kWorkers, spec);

  EngineOptions options;
  options.workers = kWorkers;
  options.dmpsm.io_backend = io_backend;
  Engine engine(topology, options);

  CountFactory counts(kWorkers);
  JoinSpec join;
  join.r = &dataset.r;
  join.s = &dataset.s;
  join.kind = kind;
  join.consumers = &counts;
  join.algorithm = algorithm;

  auto report = engine.Execute(join);
  if (!SupportsKind(algorithm, kind)) {
    ASSERT_FALSE(report.ok());
    EXPECT_EQ(report.status().code(), StatusCode::kNotSupported);
    return;
  }
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->plan.algorithm, algorithm);

  CountFactory reference(1);
  const uint64_t expected =
      baseline::ReferenceJoin(dataset.r.ToVector(), dataset.s.ToVector(),
                              kind, reference.ConsumerForWorker(0));
  EXPECT_EQ(counts.Result(), expected);
  EXPECT_EQ(report->info.output_tuples, expected);

  // Variant-specific diagnostics land in the unified report.
  EXPECT_EQ(report->pmpsm.has_value(), algorithm == Algorithm::kPMpsm);
  EXPECT_EQ(report->dmpsm.has_value(), algorithm == Algorithm::kDMpsm);
}

std::vector<MatrixCase> AllMatrixCases() {
  // The 5x4 algorithm x JoinKind matrix under every io backend (the
  // backend only steers the D-MPSM spill path, but the whole matrix
  // must stay green regardless of the session-level knob).
  std::vector<MatrixCase> cases;
  for (const io::IoBackendKind backend :
       {io::IoBackendKind::kSync, io::IoBackendKind::kThreadpool,
        io::IoBackendKind::kUring}) {
    for (const Algorithm a :
         {Algorithm::kPMpsm, Algorithm::kBMpsm, Algorithm::kDMpsm,
          Algorithm::kRadix, Algorithm::kWisconsin}) {
      for (const JoinKind k : {JoinKind::kInner, JoinKind::kLeftSemi,
                               JoinKind::kLeftAnti, JoinKind::kLeftOuter}) {
        cases.push_back({a, k, backend});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Matrix, EngineMatrixTest,
                         testing::ValuesIn(AllMatrixCases()), MatrixName);

}  // namespace
}  // namespace mpsm::engine

// The async batched page-I/O subsystem (src/io/): backend conformance
// across sync / threadpool / uring, IoScheduler coalescing, queue-depth
// and byte-budget enforcement, completion routing, fault injection via
// a flaky mock backend, and the D-MPSM io_backend x scheduler sweep.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "baseline/reference_join.h"
#include "bufferpool/buffer_pool.h"
#include "core/consumers.h"
#include "disk/d_mpsm.h"
#include "disk/page_index.h"
#include "disk/page_store.h"
#include "disk/staging_pipeline.h"
#include "flaky_backend.h"
#include "io/backend_factories.h"
#include "io/io_backend.h"
#include "io/io_scheduler.h"
#include "numa/topology.h"
#include "workload/generator.h"

namespace mpsm {
namespace {

using disk::PageIndex;
using disk::PageIndexEntry;
using disk::PageStore;
using disk::PageStoreOptions;
using disk::StagingPipeline;
using io::AsyncIoBackend;
using io::IoBackendKind;
using io::IoCompletion;
using io::IoScheduler;
using io::IoSchedulerOptions;
using io::PageFetchCompletion;
using io::PageFetchRequest;

// Backends available on this host (uring only when the runtime probe
// succeeds — CI containers without io_uring still run the suite).
std::vector<IoBackendKind> AvailableBackends() {
  std::vector<IoBackendKind> kinds = {IoBackendKind::kSync,
                                      IoBackendKind::kThreadpool};
  if (io::UringSupported()) kinds.push_back(IoBackendKind::kUring);
  return kinds;
}

std::string BackendName(const testing::TestParamInfo<IoBackendKind>& info) {
  return IoBackendKindName(info.param);
}

/// A store with `num_pages` pages; page p holds tuples {key=p, pay=i}.
void FillStore(PageStore& store, uint64_t num_pages, size_t per_page) {
  for (uint64_t p = 0; p < num_pages; ++p) {
    std::vector<Tuple> tuples(per_page);
    for (size_t i = 0; i < per_page; ++i) {
      tuples[i] = Tuple{p, static_cast<uint64_t>(i)};
    }
    ASSERT_TRUE(store.WritePage(tuples.data(), tuples.size()).ok());
  }
}

// ------------------------------------------------ kind names / parse

TEST(IoBackendKindTest, NamesRoundTrip) {
  for (const IoBackendKind kind :
       {IoBackendKind::kSync, IoBackendKind::kThreadpool,
        IoBackendKind::kUring, IoBackendKind::kAuto}) {
    const auto parsed = io::ParseIoBackendKind(IoBackendKindName(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(io::ParseIoBackendKind("aio").has_value());
}

TEST(IoBackendKindTest, AutoResolvesToConcreteKind) {
  const IoBackendKind resolved =
      io::ResolveIoBackendKind(IoBackendKind::kAuto);
  EXPECT_NE(resolved, IoBackendKind::kAuto);
  EXPECT_EQ(resolved, io::UringSupported() ? IoBackendKind::kUring
                                           : IoBackendKind::kThreadpool);
}

// ------------------------------------------- backend conformance suite

class IoBackendConformanceTest
    : public testing::TestWithParam<IoBackendKind> {};

TEST_P(IoBackendConformanceTest, CompletesAllReadsInAnyOrder) {
  PageStoreOptions options;
  options.tuples_per_page = 16;
  PageStore store(options);
  ASSERT_TRUE(store.Open().ok());
  constexpr uint64_t kPages = 24;
  FillStore(store, kPages, 16);

  auto backend = io::CreateIoBackend(GetParam(), /*queue_depth=*/8);
  ASSERT_TRUE(backend.ok()) << backend.status().ToString();

  // Submit in waves of the queue depth; completions may arrive in any
  // order but every user_data must appear exactly once.
  std::vector<std::vector<char>> buffers(kPages);
  std::set<uint64_t> seen;
  uint64_t next = 0;
  size_t in_flight = 0;
  while (seen.size() < kPages) {
    while (next < kPages && in_flight < 8) {
      buffers[next].resize(store.page_bytes());
      io::IoRead read;
      read.fd = store.fd();
      read.offset = store.OffsetOfPage(next);
      read.iov_count = 1;
      read.iov[0] = {buffers[next].data(), store.page_bytes()};
      read.user_data = next;
      ASSERT_TRUE((*backend)->SubmitRead(read).ok());
      ++next;
      ++in_flight;
    }
    IoCompletion done[8];
    const size_t n = (*backend)->PollCompletions(done, 8, /*block=*/true);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(done[i].status.ok()) << done[i].status.ToString();
      EXPECT_TRUE(seen.insert(done[i].user_data).second)
          << "duplicate completion " << done[i].user_data;
      --in_flight;
    }
  }
  EXPECT_EQ((*backend)->InFlight(), 0u);

  // Every buffer holds its page (first tuple key == page id).
  for (uint64_t p = 0; p < kPages; ++p) {
    std::vector<Tuple> tuples(16);
    auto count = store.DecodePage(buffers[p].data(), tuples.data());
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(tuples[0].key, p);
  }
}

TEST_P(IoBackendConformanceTest, ReadPastEofFailsCleanly) {
  PageStoreOptions options;
  options.tuples_per_page = 8;
  PageStore store(options);
  ASSERT_TRUE(store.Open().ok());
  FillStore(store, 2, 8);

  auto backend = io::CreateIoBackend(GetParam(), /*queue_depth=*/2);
  ASSERT_TRUE(backend.ok());
  std::vector<char> buffer(store.page_bytes());
  io::IoRead read;
  read.fd = store.fd();
  read.offset = store.OffsetOfPage(100);  // far past EOF
  read.iov_count = 1;
  read.iov[0] = {buffer.data(), store.page_bytes()};
  read.user_data = 7;
  ASSERT_TRUE((*backend)->SubmitRead(read).ok());
  IoCompletion done;
  size_t n = 0;
  while (n == 0) n = (*backend)->PollCompletions(&done, 1, /*block=*/true);
  EXPECT_EQ(done.user_data, 7u);
  EXPECT_FALSE(done.status.ok());
  EXPECT_EQ(done.status.code(), StatusCode::kIoError);
}

INSTANTIATE_TEST_SUITE_P(Backends, IoBackendConformanceTest,
                         testing::ValuesIn(AvailableBackends()),
                         BackendName);

// ------------------------------------------------- scheduler policies

class IoSchedulerTest : public testing::TestWithParam<IoBackendKind> {
 protected:
  void Open(size_t per_page, uint64_t num_pages) {
    PageStoreOptions options;
    options.tuples_per_page = per_page;
    store_.emplace(options);
    ASSERT_TRUE(store_->Open().ok());
    FillStore(*store_, num_pages, per_page);
  }

  std::optional<PageStore> store_;
};

TEST_P(IoSchedulerTest, CoalescesAdjacentPagesIntoVectoredReads) {
  Open(/*per_page=*/16, /*num_pages=*/32);
  IoSchedulerOptions options;
  options.backend = GetParam();
  options.queue_depth = 4;
  options.batch_pages = 8;
  auto scheduler =
      IoScheduler::Create(store_->fd(), store_->page_bytes(),
                          store_->io_delay_us(), options);
  ASSERT_TRUE(scheduler.ok());

  // 32 adjacent page ids submitted in order -> at most ceil(32/8) = 4
  // vectored reads, 28 pages riding along.
  std::vector<std::vector<char>> buffers(32);
  std::vector<PageFetchRequest> requests(32);
  for (uint64_t p = 0; p < 32; ++p) {
    buffers[p].resize(store_->page_bytes());
    requests[p] = PageFetchRequest{p, buffers[p].data(), p, 0};
  }
  ASSERT_TRUE((*scheduler)->Submit(requests.data(), requests.size()).ok());

  size_t completed = 0;
  PageFetchCompletion done[8];
  while (completed < 32) {
    ASSERT_TRUE((*scheduler)->Pump(/*block=*/true).ok());
    size_t n;
    while ((n = (*scheduler)->Drain(0, done, 8)) > 0) {
      for (size_t i = 0; i < n; ++i) {
        ASSERT_TRUE(done[i].status.ok());
        std::vector<Tuple> tuples(16);
        auto count =
            store_->DecodePage(buffers[done[i].user_data].data(),
                               tuples.data());
        ASSERT_TRUE(count.ok());
        EXPECT_EQ(tuples[0].key, done[i].user_data);
      }
      completed += n;
    }
  }
  const auto stats = (*scheduler)->stats();
  EXPECT_EQ(stats.pages_read, 32u);
  EXPECT_EQ(stats.io_batches, 4u);
  EXPECT_EQ(stats.coalesced_pages, 28u);
}

TEST_P(IoSchedulerTest, EnforcesQueueDepthCap) {
  Open(/*per_page=*/8, /*num_pages=*/40);
  IoSchedulerOptions options;
  options.backend = GetParam();
  options.queue_depth = 2;
  options.batch_pages = 1;  // every page its own read
  auto scheduler =
      IoScheduler::Create(store_->fd(), store_->page_bytes(),
                          store_->io_delay_us(), options);
  ASSERT_TRUE(scheduler.ok());

  std::vector<std::vector<char>> buffers(40);
  std::vector<PageFetchRequest> requests(40);
  for (uint64_t p = 0; p < 40; ++p) {
    buffers[p].resize(store_->page_bytes());
    requests[p] = PageFetchRequest{p, buffers[p].data(), p, 0};
  }
  ASSERT_TRUE((*scheduler)->Submit(requests.data(), requests.size()).ok());
  size_t completed = 0;
  PageFetchCompletion done[8];
  while (completed < 40) {
    ASSERT_TRUE((*scheduler)->Pump(/*block=*/true).ok());
    completed += (*scheduler)->Drain(0, done, 8);
  }
  EXPECT_LE((*scheduler)->stats().peak_inflight_reads, 2u);
  EXPECT_GT((*scheduler)->stats().mean_queue_depth, 0.0);
}

TEST_P(IoSchedulerTest, EnforcesInFlightByteBudget) {
  Open(/*per_page=*/8, /*num_pages=*/24);
  IoSchedulerOptions options;
  options.backend = GetParam();
  options.queue_depth = 16;
  options.batch_pages = 1;
  // Budget of one page: only one read may be in flight at a time.
  options.max_inflight_bytes = store_->page_bytes();
  auto scheduler =
      IoScheduler::Create(store_->fd(), store_->page_bytes(),
                          store_->io_delay_us(), options);
  ASSERT_TRUE(scheduler.ok());

  std::vector<std::vector<char>> buffers(24);
  std::vector<PageFetchRequest> requests(24);
  for (uint64_t p = 0; p < 24; ++p) {
    buffers[p].resize(store_->page_bytes());
    requests[p] = PageFetchRequest{p, buffers[p].data(), p, 0};
  }
  ASSERT_TRUE((*scheduler)->Submit(requests.data(), requests.size()).ok());
  size_t completed = 0;
  PageFetchCompletion done[8];
  while (completed < 24) {
    ASSERT_TRUE((*scheduler)->Pump(/*block=*/true).ok());
    completed += (*scheduler)->Drain(0, done, 8);
  }
  EXPECT_EQ((*scheduler)->stats().peak_inflight_reads, 1u);
}

INSTANTIATE_TEST_SUITE_P(Backends, IoSchedulerTest,
                         testing::ValuesIn(AvailableBackends()),
                         BackendName);

TEST(IoSchedulerTest, RoutesCompletionsToTheirQueues) {
  PageStoreOptions store_options;
  store_options.tuples_per_page = 8;
  PageStore store(store_options);
  ASSERT_TRUE(store.Open().ok());
  FillStore(store, 8, 8);

  IoSchedulerOptions options;
  options.backend = IoBackendKind::kThreadpool;
  options.completion_queues = 2;
  options.batch_pages = 1;
  auto scheduler = IoScheduler::Create(store.fd(), store.page_bytes(),
                                       store.io_delay_us(), options);
  ASSERT_TRUE(scheduler.ok());

  std::vector<std::vector<char>> buffers(8);
  std::vector<PageFetchRequest> requests(8);
  for (uint64_t p = 0; p < 8; ++p) {
    buffers[p].resize(store.page_bytes());
    requests[p] =
        PageFetchRequest{p, buffers[p].data(), p,
                         static_cast<uint32_t>(p % 2)};  // odd -> queue 1
  }
  ASSERT_TRUE((*scheduler)->Submit(requests.data(), requests.size()).ok());

  size_t completed = 0;
  std::set<uint64_t> q0, q1;
  PageFetchCompletion done[8];
  while (completed < 8) {
    ASSERT_TRUE((*scheduler)->Pump(/*block=*/true).ok());
    size_t n = (*scheduler)->Drain(0, done, 8);
    for (size_t i = 0; i < n; ++i) q0.insert(done[i].user_data);
    completed += n;
    n = (*scheduler)->Drain(1, done, 8);
    for (size_t i = 0; i < n; ++i) q1.insert(done[i].user_data);
    completed += n;
  }
  for (const uint64_t p : q0) EXPECT_EQ(p % 2, 0u);
  for (const uint64_t p : q1) EXPECT_EQ(p % 2, 1u);
  EXPECT_EQ(q0.size() + q1.size(), 8u);
}

TEST(IoSchedulerTest, RejectsOutOfRangeQueue) {
  PageStoreOptions store_options;
  PageStore store(store_options);
  ASSERT_TRUE(store.Open().ok());
  IoSchedulerOptions options;
  options.backend = IoBackendKind::kSync;
  auto scheduler = IoScheduler::Create(store.fd(), store.page_bytes(),
                                       store.io_delay_us(), options);
  ASSERT_TRUE(scheduler.ok());
  char buffer[8];
  PageFetchRequest bad{0, buffer, 0, /*queue=*/5};
  EXPECT_EQ((*scheduler)->Submit(&bad, 1).code(),
            StatusCode::kInvalidArgument);
}

TEST(IoSchedulerOptionsTest, ValidateRejectsIllegalKnobs) {
  IoSchedulerOptions options;
  options.queue_depth = 0;
  EXPECT_FALSE(options.Validate().ok());
  options = {};
  options.batch_pages = 0;
  EXPECT_FALSE(options.Validate().ok());
  options = {};
  options.batch_pages = io::kMaxIovPerRead + 1;
  EXPECT_FALSE(options.Validate().ok());
  options = {};
  options.completion_queues = 0;
  EXPECT_FALSE(options.Validate().ok());
  EXPECT_TRUE(IoSchedulerOptions{}.Validate().ok());
}

// ---------------------------------------------------- fault injection

using io::FlakyBackend;  // shared injection backend (flaky_backend.h)

TEST(IoFaultInjectionTest, SchedulerSurfacesInjectedErrors) {
  PageStoreOptions store_options;
  store_options.tuples_per_page = 8;
  PageStore store(store_options);
  ASSERT_TRUE(store.Open().ok());
  FillStore(store, 12, 8);

  IoSchedulerOptions options;
  options.batch_pages = 1;
  auto scheduler = IoScheduler::CreateWithBackend(
      std::make_unique<FlakyBackend>(8, /*failure_period=*/3), store.fd(),
      store.page_bytes(), store.io_delay_us(), options);
  ASSERT_TRUE(scheduler.ok());

  std::vector<std::vector<char>> buffers(12);
  std::vector<PageFetchRequest> requests(12);
  for (uint64_t p = 0; p < 12; ++p) {
    buffers[p].resize(store.page_bytes());
    requests[p] = PageFetchRequest{p, buffers[p].data(), p, 0};
  }
  ASSERT_TRUE((*scheduler)->Submit(requests.data(), requests.size()).ok());
  size_t completed = 0, failed = 0;
  PageFetchCompletion done[8];
  while (completed < 12) {
    ASSERT_TRUE((*scheduler)->Pump(/*block=*/true).ok());
    const size_t n = (*scheduler)->Drain(0, done, 8);
    for (size_t i = 0; i < n; ++i) {
      if (!done[i].status.ok()) ++failed;
    }
    completed += n;
  }
  EXPECT_EQ(failed, 4u);  // every 3rd of 12
}

TEST(IoFaultInjectionTest, TransientFailuresAreRetriedNotSurfaced) {
  PageStoreOptions store_options;
  store_options.tuples_per_page = 8;
  PageStore store(store_options);
  ASSERT_TRUE(store.Open().ok());
  FillStore(store, 12, 8);

  // The first three reads come back kUnavailable (EINTR/EAGAIN-class);
  // the scheduler's bounded backoff must absorb them invisibly.
  FlakyBackend::Options flaky;
  flaky.fail_once_reads = 3;
  flaky.failure_code = StatusCode::kUnavailable;
  IoSchedulerOptions options;
  options.batch_pages = 1;
  options.retry_backoff_us = 1;
  auto scheduler = IoScheduler::CreateWithBackend(
      std::make_unique<FlakyBackend>(8, flaky), store.fd(),
      store.page_bytes(), store.io_delay_us(), options);
  ASSERT_TRUE(scheduler.ok());

  std::vector<std::vector<char>> buffers(12);
  std::vector<PageFetchRequest> requests(12);
  for (uint64_t p = 0; p < 12; ++p) {
    buffers[p].resize(store.page_bytes());
    requests[p] = PageFetchRequest{p, buffers[p].data(), p, 0};
  }
  ASSERT_TRUE((*scheduler)->Submit(requests.data(), requests.size()).ok());
  size_t completed = 0;
  PageFetchCompletion done[8];
  while (completed < 12) {
    ASSERT_TRUE((*scheduler)->Pump(/*block=*/true).ok());
    const size_t n = (*scheduler)->Drain(0, done, 8);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_TRUE(done[i].status.ok()) << done[i].status.ToString();
    }
    completed += n;
  }
  EXPECT_GE((*scheduler)->stats().retries, 3u);
  EXPECT_EQ((*scheduler)->stats().pages_read, 12u);
}

TEST(IoFaultInjectionTest, RetryBudgetExhaustionSurfacesTransientError) {
  PageStoreOptions store_options;
  store_options.tuples_per_page = 8;
  PageStore store(store_options);
  ASSERT_TRUE(store.Open().ok());
  FillStore(store, 1, 8);

  FlakyBackend::Options flaky;
  flaky.fail_once_reads = 1000;  // never recovers
  flaky.failure_code = StatusCode::kUnavailable;
  IoSchedulerOptions options;
  options.batch_pages = 1;
  options.max_retries = 2;
  options.retry_backoff_us = 1;
  auto scheduler = IoScheduler::CreateWithBackend(
      std::make_unique<FlakyBackend>(8, flaky), store.fd(),
      store.page_bytes(), store.io_delay_us(), options);
  ASSERT_TRUE(scheduler.ok());

  std::vector<char> buffer(store.page_bytes());
  PageFetchRequest request{0, buffer.data(), 7, 0};
  ASSERT_TRUE((*scheduler)->Submit(&request, 1).ok());
  PageFetchCompletion done[4];
  size_t n = 0;
  while (n == 0) {
    ASSERT_TRUE((*scheduler)->Pump(/*block=*/true).ok());
    n = (*scheduler)->Drain(0, done, 4);
  }
  ASSERT_EQ(n, 1u);
  // The retry budget preserves the transient code so callers can tell
  // a saturated device from a dying one.
  EXPECT_EQ(done[0].status.code(), StatusCode::kUnavailable);
  EXPECT_EQ((*scheduler)->stats().retries, 2u);
}

TEST(IoFaultInjectionTest, PipelineFailsTheQueryNotTheProcess) {
  PageStoreOptions store_options;
  store_options.tuples_per_page = 8;
  PageStore store(store_options);
  ASSERT_TRUE(store.Open().ok());
  constexpr uint64_t kPages = 30;
  PageIndex index;
  for (uint64_t p = 0; p < kPages; ++p) {
    std::vector<Tuple> tuples(8, Tuple{p, p});
    auto id = store.WritePage(tuples.data(), tuples.size());
    ASSERT_TRUE(id.ok());
    index.Add(PageIndexEntry{p, 0, *id, 8});
  }
  index.Finalize();

  IoSchedulerOptions options;
  options.batch_pages = 2;
  options.completion_queues = 2;
  auto scheduler = IoScheduler::CreateWithBackend(
      std::make_unique<FlakyBackend>(8, /*failure_period=*/5), store.fd(),
      store.page_bytes(), store.io_delay_us(), options);
  ASSERT_TRUE(scheduler.ok());
  bufferpool::BufferPoolOptions pool_options;
  pool_options.frames = 8;
  auto pool = bufferpool::BufferPool::Create(&store, scheduler->get(),
                                             pool_options);
  ASSERT_TRUE(pool.ok());

  constexpr uint32_t kConsumers = 2;
  StagingPipeline pipeline(store, index, /*capacity_pages=*/4, kConsumers,
                           pool->get(), /*consumer_loads=*/true);
  pipeline.Start();

  // Every consumer sees a nullptr frame at some position and drains the
  // rest; the pipeline records the first injected error.
  std::vector<std::thread> consumers;
  std::atomic<uint32_t> saw_error{0};
  for (uint32_t c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      for (size_t pos = 0; pos < kPages; ++pos) {
        const auto* frame = pipeline.Acquire(pos);
        if (frame == nullptr) {
          ++saw_error;
          break;
        }
        pipeline.Release(pos);
      }
    });
  }
  for (auto& consumer : consumers) consumer.join();
  EXPECT_GT(saw_error.load(), 0u);
  EXPECT_FALSE(pipeline.status().ok());
  EXPECT_EQ(pipeline.status().code(), StatusCode::kIoError);
}

TEST(IoFaultInjectionTest, WriteFaultsSurfaceThroughFlush) {
  PageStoreOptions store_options;
  store_options.tuples_per_page = 8;
  PageStore store(store_options);
  ASSERT_TRUE(store.Open().ok());

  IoSchedulerOptions options;
  options.batch_pages = 1;  // one write per batch: failures are per page
  options.completion_queues = 2;
  auto scheduler = IoScheduler::CreateWithBackend(
      std::make_unique<FlakyBackend>(8, /*failure_period=*/1000000,
                                     /*write_failure_period=*/3),
      store.fd(), store.page_bytes(), store.io_delay_us(), options);
  ASSERT_TRUE(scheduler.ok());
  bufferpool::BufferPoolOptions pool_options;
  pool_options.frames = 4;
  pool_options.flush_batch_pages = 1;
  auto pool = bufferpool::BufferPool::Create(&store, scheduler->get(),
                                             pool_options);
  ASSERT_TRUE(pool.ok());

  // Append more pages than frames so write-back (and frame reuse under
  // failed flushes) is forced; the injected EIO must surface as Status
  // through FlushAll/Close, with no frame lost or stuck dirty.
  std::vector<Tuple> tuples(8, Tuple{1, 1});
  for (int p = 0; p < 12; ++p) {
    auto id = (*pool)->AppendPage(tuples.data(), tuples.size());
    ASSERT_TRUE(id.ok()) << id.status().ToString();
  }
  const Status flushed = (*pool)->FlushAll();
  EXPECT_FALSE(flushed.ok());
  EXPECT_EQ(flushed.code(), StatusCode::kIoError);
  // Close terminates cleanly even with the latched error: every frame
  // was retired exactly once (a lost frame would wedge this call).
  EXPECT_EQ((*pool)->Close().code(), StatusCode::kIoError);
}

// --------------------------------- d-mpsm io_backend x scheduler sweep

struct SweepCase {
  IoBackendKind backend;
  SchedulerKind scheduler;
};

std::string SweepName(const testing::TestParamInfo<SweepCase>& info) {
  return std::string(IoBackendKindName(info.param.backend)) + "_" +
         SchedulerKindName(info.param.scheduler);
}

class DMpsmIoSweepTest : public testing::TestWithParam<SweepCase> {};

TEST_P(DMpsmIoSweepTest, MatchesReferenceWithSaneIoStats) {
  const auto [backend, scheduler] = GetParam();
  if (backend == IoBackendKind::kUring && !io::UringSupported()) {
    GTEST_SKIP() << "io_uring unavailable on this host";
  }
  const auto topology = numa::Topology::Simulated(2, 8);
  workload::DatasetSpec spec;
  spec.r_tuples = 6000;
  spec.multiplicity = 2.0;
  spec.key_domain = 18000;
  spec.seed = 53;
  const uint32_t team_size = 4;
  const auto dataset = workload::Generate(topology, team_size, spec);
  WorkerTeam team(topology, team_size);

  disk::DMpsmOptions options;
  options.tuples_per_page = 64;
  options.pool_pages = 4;
  options.scheduler = scheduler;
  options.io_backend = backend;
  options.io_queue_depth = 8;
  options.io_batch_pages = 4;
  CountFactory counts(team_size);
  disk::DMpsmReport report;
  auto info = disk::DMpsmJoin(options).Execute(team, dataset.r, dataset.s,
                                               counts, &report);
  ASSERT_TRUE(info.ok()) << info.status().ToString();

  CountFactory reference(1);
  const uint64_t expected = baseline::ReferenceJoin(
      dataset.r.ToVector(), dataset.s.ToVector(), JoinKind::kInner,
      reference.ConsumerForWorker(0));
  EXPECT_EQ(counts.Result(), expected);

  // Every index position is pinned exactly once; a pin is either a
  // device read through the scheduler or a buffer-pool hit on a frame
  // still resident from spooling. Plus the private windows' run pages
  // (bounded by what was spooled — a window stops submitting when the
  // walk ends early).
  EXPECT_GE(report.io_sched.pages_read + report.pool.hits,
            report.index_entries);
  EXPECT_LE(report.io_sched.pages_read, report.io.pages_written);
  EXPECT_GT(report.io_sched.io_batches, 0u);
  EXPECT_LE(report.io_sched.peak_inflight_reads, options.io_queue_depth);
  EXPECT_GT(report.io_sched.mean_queue_depth, 0.0);
  EXPECT_EQ(report.io_backend_used, backend);
  EXPECT_LE(report.peak_pool_pages, options.pool_pages);
  EXPECT_GE(report.staging_nodes, 1u);
  if (scheduler == SchedulerKind::kStealing) {
    EXPECT_GT(report.consumer_page_loads, 0u);
  } else {
    EXPECT_EQ(report.consumer_page_loads, 0u);
  }
}

std::vector<SweepCase> AllSweepCases() {
  std::vector<SweepCase> cases;
  for (const IoBackendKind backend :
       {IoBackendKind::kSync, IoBackendKind::kThreadpool,
        IoBackendKind::kUring}) {
    for (const SchedulerKind scheduler :
         {SchedulerKind::kStatic, SchedulerKind::kStealing}) {
      cases.push_back({backend, scheduler});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, DMpsmIoSweepTest,
                         testing::ValuesIn(AllSweepCases()), SweepName);

TEST(DMpsmIoOptionsTest, ValidateRejectsBadIoKnobs) {
  const auto topology = numa::Topology::Simulated(2, 4);
  WorkerTeam team(topology, 4);
  workload::DatasetSpec spec;
  spec.r_tuples = 200;
  const auto dataset = workload::Generate(topology, 4, spec);

  for (auto mutate : {+[](disk::DMpsmOptions& o) { o.io_queue_depth = 0; },
                      +[](disk::DMpsmOptions& o) { o.io_batch_pages = 0; },
                      +[](disk::DMpsmOptions& o) {
                        o.io_batch_pages = io::kMaxIovPerRead + 1;
                      }}) {
    disk::DMpsmOptions options;
    mutate(options);
    CountFactory counts(4);
    auto info =
        disk::DMpsmJoin(options).Execute(team, dataset.r, dataset.s, counts);
    EXPECT_FALSE(info.ok());
    EXPECT_EQ(info.status().code(), StatusCode::kInvalidArgument);
  }
}

}  // namespace
}  // namespace mpsm
